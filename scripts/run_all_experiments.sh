#!/usr/bin/env bash
# Regenerate every paper table/figure plus the ablations and baselines.
# Usage: scripts/run_all_experiments.sh [build-dir] [extra flags, e.g. --scale=0.01 --csv]
set -euo pipefail

build="${1:-build}"
shift || true

benches=(
  table1_machines
  table2_graphs
  fig02_scaling_estimates
  fig06_degree_distribution
  fig08a_ccr_same_domain
  fig08b_ccr_cross_domain
  fig09_case1_ec2
  fig10a_case2_local
  fig10b_case3_freq
  fig11_cost_pareto
  ablation_partitioners
  ablation_proxy_sensitivity
  ablation_comm_aware
  baseline_dynamic_migration
  profiling_overhead
)

for b in "${benches[@]}"; do
  "${build}/bench/${b}" "$@"
done

# Microbenchmarks (google-benchmark binaries take their own flags).
for b in micro_alpha_solver micro_generator micro_engine; do
  "${build}/bench/${b}"
done
