#!/usr/bin/env bash
# ThreadSanitizer gate for the thread-pool and service concurrency code.
#
# Configures a dedicated build tree with -DPGLB_SANITIZE=thread, builds the
# tsan- and fault-labelled test binaries, and runs `ctest -L "tsan|fault"` —
# the fault-injection suite exercises exactly the cross-thread cancellation
# and breaker paths tsan is here to watch.  Run from the repo root:
#
#   scripts/check_tsan.sh [build-dir]
#
# The build tree (default: build-tsan) is kept between runs for fast
# incremental re-checks.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DPGLB_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
# pglb_chaos/pglb_loadgen/pglb_serve back the fault-labelled chaos_drill and
# dynamic_drill, so the proxy's pump threads, the hardened transport, and the
# delta-planning path all run under tsan too.
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target test_thread_pool test_parallel_determinism test_service_server \
           test_obs_trace test_resilience test_service_resilience \
           test_fleet test_fleet_resilience test_autoscale \
           test_wire_server test_tcp_backend test_persist \
           test_wire test_netfault test_dynamic test_dynamic_protocol \
           pglb_chaos pglb_loadgen pglb_serve
ctest --test-dir "$BUILD_DIR" -L 'tsan|fault' --output-on-failure -j"$(nproc)"
echo "check_tsan: all tsan- and fault-labelled tests passed"
