// Scenario: a PageRank job ran slower than expected on your heterogeneous
// cluster and you want to know *which machine stalled which supersteps* —
// and whether better ingress weights would have helped.  Uses the engine's
// per-superstep straggler trace to print a post-mortem timeline, then re-runs
// with CCR weights to show the counterfactual.
//
// Usage: straggler_postmortem [--scale=0.004] [--slowdown=0.4]

#include <iostream>

#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "machine/catalog.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pglb;

namespace {

void print_timeline(const ExecReport& report, const Cluster& cluster) {
  std::cout << "superstep timeline (one row per superstep; '#' scaled to duration):\n";
  double longest = 0.0;
  for (const SuperstepTrace& s : report.trace) longest = std::max(longest, s.window_seconds);
  for (std::size_t i = 0; i < report.trace.size(); ++i) {
    const SuperstepTrace& s = report.trace[i];
    const int bar = std::max(1, static_cast<int>(40.0 * s.window_seconds / longest));
    std::cout << "  " << (i < 10 ? " " : "") << i << " |" << std::string(bar, '#')
              << std::string(41 - bar, ' ') << "| "
              << format_double(s.window_seconds * 1e3, 1) << " ms, stalled by "
              << cluster.machine(s.straggler).name << "\n";
  }
  for (MachineId m = 0; m < cluster.size(); ++m) {
    std::cout << "  " << cluster.machine(m).name << " stalled "
              << format_percent(report.straggler_fraction(m)) << " of supersteps\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const double slowdown = cli.get_double("slowdown", 0.4);

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  const EdgeList graph = make_corpus_graph(corpus_entry("citation"), scale);
  const auto traits = traits_from_stats(compute_stats(graph), scale);

  // The "incident": uniform ingress plus a mid-run slowdown of the big box.
  PageRankOptions options;
  options.max_iterations = 12;
  options.interference = InterferenceSchedule(
      {{.machine = 1, .from_step = 4, .to_step = 8, .slowdown = slowdown}});

  const auto assignment =
      RandomHashPartitioner{}.partition(graph, uniform_weights(cluster.size()), 1);
  const auto dg = build_distributed(graph, assignment);
  const auto incident = run_pagerank(graph, dg, cluster, traits, options);

  std::cout << "=== incident run (uniform ingress + transient slowdown) ===\n";
  std::cout << incident.report.summary() << "\n\n";
  print_timeline(incident.report, cluster);

  // Counterfactual: CCR-guided ingress under the same interference.
  ProxySuite proxies(scale);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto pool = profile_cluster(cluster, proxies, apps);
  const auto ccr = pool.ccr_for(AppKind::kPageRank, 2.1);
  const auto guided_assignment = RandomHashPartitioner{}.partition(graph, ccr, 1);
  const auto guided_dg = build_distributed(graph, guided_assignment);
  const auto counterfactual = run_pagerank(graph, guided_dg, cluster, traits, options);

  std::cout << "\n=== counterfactual (CCR-guided ingress, same interference) ===\n";
  std::cout << counterfactual.report.summary() << "\n\n";
  print_timeline(counterfactual.report, cluster);

  std::cout << "\nverdict: CCR ingress would have been "
            << format_speedup(incident.report.makespan_seconds /
                              counterfactual.report.makespan_seconds)
            << " faster; the supersteps stalled by the slowed machine shrink but do\n"
               "not vanish — transient interference needs runtime balancing on top\n"
               "(see bench/ablation_interference).\n";
  return 0;
}
