// Scenario: a cloud user with a graph workload wants to pick the EC2 machine
// type with the best cost efficiency *before* renting anything (Sec. V-C).
// Profiles the synthetic proxies on every candidate, prints the Fig.-11-style
// cost/performance table and recommends the Pareto-optimal picks under an
// optional deadline.
//
// Usage: cloud_cost_advisor [--app=triangle_count] [--max-runtime=100]
//        [--scale=0.004]

#include <algorithm>
#include <iostream>

#include "cost/cost_model.hpp"
#include "cost/pareto.hpp"
#include "machine/catalog.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pglb;

namespace {

AppKind app_from_string(const std::string& name) {
  for (const AppKind kind : {AppKind::kPageRank, AppKind::kColoring,
                             AppKind::kConnectedComponents, AppKind::kTriangleCount}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown app '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const AppKind app = app_from_string(cli.get_string("app", "triangle_count"));
  // Deadline in virtual seconds (0 = no deadline).
  const double max_runtime = cli.get_double("max-runtime", 0.0);

  const std::vector<MachineSpec> machines = {
      machine_by_name("c4.xlarge"),  machine_by_name("c4.2xlarge"),
      machine_by_name("m4.2xlarge"), machine_by_name("r3.2xlarge"),
      machine_by_name("c4.4xlarge"), machine_by_name("c4.8xlarge")};

  ProxySuite proxies(scale);
  const AppKind apps[] = {app};
  const auto points = cost_efficiency(machines, apps, proxies, "c4.xlarge");
  const auto frontier = pareto_frontier(points);

  std::cout << "Cost advisor for " << to_string(app) << " (profiled on synthetic proxies"
            << ", no machines rented)\n\n";
  Table table({"machine", "est. runtime (s)", "speedup", "cost/task ($)", "verdict"});
  const CostPoint* best = nullptr;
  for (const std::size_t i : frontier) {
    const CostPoint& p = points[i];
    if (max_runtime > 0.0 && p.runtime_seconds > max_runtime) continue;
    if (best == nullptr || p.cost_per_task < best->cost_per_task) best = &p;
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CostPoint& p = points[i];
    std::string verdict;
    const bool pareto =
        std::find(frontier.begin(), frontier.end(), i) != frontier.end();
    if (max_runtime > 0.0 && p.runtime_seconds > max_runtime) {
      verdict = "misses deadline";
    } else if (&p == best) {
      verdict = "RECOMMENDED";
    } else if (pareto) {
      verdict = "pareto-optimal";
    } else {
      verdict = "dominated";
    }
    table.row()
        .cell(p.machine)
        .cell(p.runtime_seconds, 1)
        .cell(format_speedup(p.speedup))
        .cell(p.cost_per_task, 5)
        .cell(verdict);
  }
  table.print(std::cout);

  if (best != nullptr) {
    std::cout << "\nrecommendation: " << best->machine << " at $"
              << format_double(best->cost_per_task, 5) << " per task\n";
  } else {
    std::cout << "\nno machine meets the deadline; relax --max-runtime\n";
  }
  return 0;
}
