// Quickstart: the full proxy-guided load-balancing flow in ~60 lines.
//
//   1. describe a heterogeneous cluster,
//   2. generate the synthetic power-law proxy suite (one-time),
//   3. profile each machine group on the proxies -> CCR pool,
//   4. run an application through the Fig. 7b flow with CCR-guided
//      partitioning, and compare against the homogeneous default.
//
// Build:  cmake --build build --target quickstart
// Run:    ./build/examples/quickstart [--scale=0.004]

#include <iostream>

#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "machine/catalog.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pglb;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);

  // 1. A small heterogeneous cluster: one wimpy and one beefy local server.
  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  std::cout << "cluster: " << cluster.label() << "\n";

  // 2. The proxy suite: three Algorithm-1 power-law graphs (Table II alphas).
  ProxySuite proxies(scale);
  std::cout << "generated " << proxies.proxies().size() << " proxies in "
            << format_double(proxies.generation_seconds(), 2) << "s\n";

  // 3. One-time offline profiling: every app x every proxy, one machine per
  //    group, no communication interference.
  const AppKind apps[] = {AppKind::kPageRank};
  const CcrPool pool = profile_cluster(cluster, proxies, apps);
  const auto ccr = pool.ccr_for(AppKind::kPageRank, /*graph_alpha=*/2.1);
  std::cout << "profiled PageRank CCR: " << format_double(ccr[0], 2) << " : "
            << format_double(ccr[1], 2) << "\n";

  // 4. Run PageRank on a natural-graph workload, default vs CCR-guided.
  const EdgeList graph = make_corpus_graph(corpus_entry("wiki"), scale);
  FlowOptions options;
  options.scale = scale;
  options.partitioner = PartitionerKind::kHybrid;

  const UniformEstimator uniform;
  const ProxyCcrEstimator guided(pool);
  const FlowResult before = run_flow(graph, AppKind::kPageRank, cluster, uniform, options);
  const FlowResult after = run_flow(graph, AppKind::kPageRank, cluster, guided, options);

  std::cout << "\ndefault (uniform) : " << before.app.report.summary() << "\n";
  std::cout << "ccr-guided        : " << after.app.report.summary() << "\n";
  std::cout << "speedup: "
            << format_speedup(before.app.report.makespan_seconds /
                              after.app.report.makespan_seconds)
            << ", energy saved: "
            << format_percent(1.0 - after.app.report.total_joules /
                                        before.app.report.total_joules)
            << "\n";
  return 0;
}
