// Scenario: a data-center operator is adding wimpy (ARM-like) nodes next to
// beefy Xeons and wants to know how aggressively the small nodes can be
// derated before a graph workload's latency/energy trade-off collapses —
// and how much proxy-guided balancing recovers at each point.  This extends
// the paper's Case 3 (one frequency point) into a frequency sweep.
//
// Usage: datacenter_energy_planner [--app=connected_components] [--scale=0.004]

#include <iostream>

#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "machine/catalog.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pglb;

namespace {

AppKind app_from_string(const std::string& name) {
  for (const AppKind kind : {AppKind::kPageRank, AppKind::kColoring,
                             AppKind::kConnectedComponents, AppKind::kTriangleCount}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown app '" + name + "'");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const AppKind app = app_from_string(cli.get_string("app", "connected_components"));

  const EdgeList graph = make_corpus_graph(corpus_entry("citation"), scale, seed);
  const AppKind apps[] = {app};

  std::cout << "Derating sweep of xeon_server_s next to xeon_server_l, app = "
            << to_string(app) << "\n\n";

  Table table({"S frequency", "CCR (profiled)", "thread ratio", "ccr vs prior speedup",
               "ccr energy save", "prior energy save"});

  for (const double ghz : {2.5, 2.2, 2.0, 1.8, 1.6, 1.4}) {
    const auto& base_s = machine_by_name("xeon_server_s");
    const MachineSpec small =
        ghz == base_s.freq_ghz ? base_s : with_frequency(base_s, ghz);
    const Cluster cluster({small, machine_by_name("xeon_server_l")});

    // Re-profile: a changed machine type invalidates its CCR pool entries
    // (Sec. III-B re-profiling rule).
    ProxySuite proxies(scale, seed + 100);
    const CcrPool pool = profile_cluster(cluster, proxies, apps);
    const auto ccr_values = pool.ccr_for(app, 2.1);

    const UniformEstimator uniform;
    const ThreadCountEstimator threads;
    const ProxyCcrEstimator guided(pool);

    FlowOptions options;
    options.scale = scale;
    options.seed = seed;
    options.partitioner = PartitionerKind::kRandomHash;

    const auto r_default = run_flow(graph, app, cluster, uniform, options);
    const auto r_prior = run_flow(graph, app, cluster, threads, options);
    const auto r_ccr = run_flow(graph, app, cluster, guided, options);

    table.row()
        .cell(format_double(ghz, 1) + " GHz")
        .cell("1 : " + format_double(ccr_values[1], 2))
        .cell("1 : 5.00")
        .cell(format_speedup(r_prior.app.report.makespan_seconds /
                             r_ccr.app.report.makespan_seconds))
        .cell(format_percent(1.0 - r_ccr.app.report.total_joules /
                                       r_default.app.report.total_joules))
        .cell(format_percent(1.0 - r_prior.app.report.total_joules /
                                       r_default.app.report.total_joules));
  }
  table.print(std::cout);

  std::cout << "\nThe wider the gap between the profiled CCR and the static 1:5 thread\n"
               "ratio, the more the proxy-guided system recovers — the paper's Case 3\n"
               "conclusion, here as a planning curve.\n";
  return 0;
}
