// Scenario: you operate a mixed EC2 fleet and want to know, for a specific
// graph and application, which partitioning algorithm and capability
// estimator to deploy.  Sweeps all applicable partitioners x estimators and
// prints runtime, energy, replication factor and balance.
//
// Usage:
//   heterogeneous_cluster_study [--graph=social_network] [--app=pagerank]
//       [--machines=m4.2xlarge,c4.2xlarge,c4.4xlarge,c4.xlarge]
//       [--scale=0.004] [--seed=1]

#include <iostream>
#include <sstream>

#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "machine/catalog.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pglb;

namespace {

AppKind app_from_string(const std::string& name) {
  for (const AppKind kind : {AppKind::kPageRank, AppKind::kColoring,
                             AppKind::kConnectedComponents, AppKind::kTriangleCount}) {
    if (name == to_string(kind)) return kind;
  }
  throw std::invalid_argument("unknown app '" + name + "' (pagerank, coloring, "
                              "connected_components, triangle_count)");
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string graph_name = cli.get_string("graph", "social_network");
  const AppKind app = app_from_string(cli.get_string("app", "pagerank"));
  const auto machine_names =
      split_csv(cli.get_string("machines", "m4.2xlarge,c4.2xlarge,c4.4xlarge,c4.xlarge"));

  const Cluster cluster = cluster_from_names(machine_names);
  std::cout << "cluster: " << cluster.label() << " (" << cluster.total_compute_threads()
            << " compute threads)\napp: " << to_string(app) << ", graph: " << graph_name
            << "\n\n";

  const EdgeList graph = make_corpus_graph(corpus_entry(graph_name), scale, seed);
  ProxySuite proxies(scale, seed + 100);
  const AppKind apps[] = {app};
  const CcrPool pool = profile_cluster(cluster, proxies, apps);

  const UniformEstimator uniform;
  const ThreadCountEstimator threads;
  const ProxyCcrEstimator ccr(pool);
  const CapabilityEstimator* estimators[] = {&uniform, &threads, &ccr};

  FlowOptions options;
  options.scale = scale;
  options.seed = seed;

  Table table({"partitioner", "estimator", "runtime (s)", "energy (kJ)", "replication",
               "imbalance", "speedup vs uniform"});
  for (const PartitionerKind kind : applicable_partitioner_kinds(cluster.size())) {
    double uniform_runtime = 0.0;
    for (const CapabilityEstimator* estimator : estimators) {
      options.partitioner = kind;
      const FlowResult r = run_flow(graph, app, cluster, *estimator, options);
      if (estimator == &uniform) uniform_runtime = r.app.report.makespan_seconds;
      table.row()
          .cell(to_string(kind))
          .cell(estimator->name())
          .cell(r.app.report.makespan_seconds, 3)
          .cell(r.app.report.total_joules / 1e3, 2)
          .cell(r.replication_factor, 3)
          .cell(r.partition.weighted_imbalance, 3)
          .cell(format_speedup(uniform_runtime / r.app.report.makespan_seconds));
    }
  }
  table.print(std::cout);

  const auto unused = cli.unused_keys();
  if (!unused.empty()) {
    std::cerr << "\nwarning: unused flags were ignored\n";
    return 2;
  }
  return 0;
}
