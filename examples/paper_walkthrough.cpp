// The paper's three contributions (Sec. I), reproduced in order in one
// program.  Slower than `quickstart` but narrates every step — start here to
// understand what the library does and why.
//
// Usage: paper_walkthrough [--scale=0.004]

#include <algorithm>
#include <iostream>

#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "cost/cost_model.hpp"
#include "cost/pareto.hpp"
#include "gen/alpha_solver.hpp"
#include "gen/corpus.hpp"
#include "machine/catalog.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

using namespace pglb;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);

  std::cout <<
      "==========================================================================\n"
      "Contribution 1: synthetic power-law proxies measure machine capability\n"
      "==========================================================================\n";

  // A heterogeneous pair that prior work [5] would call 1 : 5 (thread counts).
  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  std::cout << "cluster: " << cluster.label() << "  (thread-count ratio 1 : "
            << format_double(static_cast<double>(cluster.machine(1).compute_threads) /
                                 cluster.machine(0).compute_threads,
                             1)
            << ")\n\n";

  // Generate the three Table II proxies and profile all four paper apps.
  ProxySuite proxies(scale);
  const AppKind apps[] = {AppKind::kPageRank, AppKind::kColoring,
                          AppKind::kConnectedComponents, AppKind::kTriangleCount};
  const CcrPool pool = profile_cluster(cluster, proxies, apps);

  Table ccr_table({"app", "proxy CCR", "real-graph CCR (oracle)", "error"});
  const auto probe = make_corpus_graph(corpus_entry("citation"), scale);
  for (const AppKind app : apps) {
    const double proxy_ccr = pool.ccr_for(app, 2.1)[1];
    const auto oracle_times = profile_groups_on_graph(cluster, app, probe, scale);
    const double oracle_ccr = oracle_times[0] / oracle_times[1];
    ccr_table.row()
        .cell(to_string(app))
        .cell("1 : " + format_double(proxy_ccr, 2))
        .cell("1 : " + format_double(oracle_ccr, 2))
        .cell(format_percent(relative_error(proxy_ccr, oracle_ccr)));
  }
  ccr_table.print(std::cout);
  std::cout << "-> proxies recover per-app capability within a few percent, while\n"
               "   the hardware-configuration estimate (1 : 5) misses by ~50%.\n\n";

  std::cout <<
      "==========================================================================\n"
      "Contribution 2: CCR-guided partitioning -> speedups and energy savings\n"
      "==========================================================================\n";

  const ProxyCcrEstimator ccr(pool);
  const ThreadCountEstimator prior;
  const UniformEstimator uniform;
  FlowOptions options;
  options.scale = scale;
  options.partitioner = PartitionerKind::kHybrid;

  Table run_table({"policy", "pagerank makespan (s)", "energy (kJ)", "idle share"});
  const auto graph = make_corpus_graph(corpus_entry("social_network"), scale);
  const CapabilityEstimator* estimators[] = {&uniform, &prior, &ccr};
  for (const CapabilityEstimator* estimator : estimators) {
    const auto r = run_flow(graph, AppKind::kPageRank, cluster, *estimator, options);
    run_table.row()
        .cell(estimator->name())
        .cell(r.app.report.makespan_seconds, 3)
        .cell(r.app.report.total_joules / 1e3, 2)
        .cell(format_percent(r.app.report.idle_fraction()));
  }
  run_table.print(std::cout);
  std::cout << "-> idle time at the barrier is what CCR weights eliminate; energy\n"
               "   follows the idle share down.\n\n";

  std::cout <<
      "==========================================================================\n"
      "Contribution 3: proxy profiling ranks cloud machines by cost efficiency\n"
      "==========================================================================\n";

  const std::vector<MachineSpec> machines = {
      machine_by_name("c4.xlarge"), machine_by_name("c4.2xlarge"),
      machine_by_name("c4.4xlarge"), machine_by_name("c4.8xlarge")};
  const AppKind one_app[] = {AppKind::kPageRank};
  const auto points = cost_efficiency(machines, one_app, proxies, "c4.xlarge");
  const auto frontier = pareto_frontier(points);

  Table cost_table({"machine", "speedup", "cost/task ($)", "pareto-optimal"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const bool on_frontier =
        std::find(frontier.begin(), frontier.end(), i) != frontier.end();
    cost_table.row()
        .cell(points[i].machine)
        .cell(format_speedup(points[i].speedup))
        .cell(points[i].cost_per_task, 5)
        .cell(on_frontier ? "yes" : "");
  }
  cost_table.print(std::cout);
  std::cout << "-> all numbers above came from the proxies alone: no cluster was\n"
               "   rented, no production graph was touched (Sec. V-C).\n";
  return 0;
}
