// Scenario: fitting a *new* application into the proxy-guided flow
// (Sec. III-B: "any special-purpose application can be sampled and fit into
// our flow").  SSSP is not one of the paper's four evaluation apps; this
// example profiles it on the proxy suite, inspects its CCR next to the
// others', and runs it CCR-guided end to end.
//
// Usage: custom_app_sssp [--scale=0.004]

#include <iostream>

#include "apps/sssp.hpp"
#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "machine/catalog.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pglb;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});

  // Profile SSSP alongside two paper apps to see where it lands.
  ProxySuite proxies(scale);
  const AppKind apps[] = {AppKind::kPageRank, AppKind::kTriangleCount, AppKind::kSssp};
  const CcrPool pool = profile_cluster(cluster, proxies, apps);

  Table ccr_table({"app", "CCR (alpha=2.1 proxy)"});
  for (const AppKind app : apps) {
    const auto ccr = pool.ccr_for(app, 2.1);
    ccr_table.row().cell(to_string(app)).cell("1 : " + format_double(ccr[1], 2));
  }
  ccr_table.print(std::cout);
  std::cout << "\nSSSP profiles like the propagation apps, not like Triangle Count —\n"
               "exactly why per-application CCRs beat a single hardware number.\n\n";

  // Run it CCR-guided.
  const EdgeList graph = make_corpus_graph(corpus_entry("amazon"), scale);
  const ProxyCcrEstimator guided(pool);
  const UniformEstimator uniform;
  FlowOptions options;
  options.scale = scale;
  options.partitioner = PartitionerKind::kHybrid;

  const auto before = run_flow(graph, AppKind::kSssp, cluster, uniform, options);
  const auto after = run_flow(graph, AppKind::kSssp, cluster, guided, options);
  std::cout << "SSSP from vertex 0: reached "
            << static_cast<std::uint64_t>(after.app.digest) << " vertices\n";
  std::cout << "uniform:    " << before.app.report.summary() << "\n";
  std::cout << "ccr-guided: " << after.app.report.summary() << "\n";
  std::cout << "speedup: "
            << format_speedup(before.app.report.makespan_seconds /
                              after.app.report.makespan_seconds)
            << "\n";
  return 0;
}
