// Figure 10a: Case 2 — local cluster of Xeon Server S (4 hw threads) and
// Xeon Server L (12 hw threads) at the same frequency.  CCRs sit near 1:3.5
// while thread counting says 1:5, so prior work overloads the big machine:
// it wins some runtime but wastes energy.

#include "bench_common.hpp"
#include "fig10_common.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // --trace-out=<path>: one Chrome trace, each estimator on its own vtrack.
  const std::string trace_out = cli.get_string("trace-out", "");
  check_unused_flags(cli);

  print_header("Fig. 10a - Case 2: local Xeon S + L, same frequency", "Fig. 10a");

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  run_local_case(cluster, scale, seed,
                 "prior 1.27x / 8.4% energy; ccr 1.45x avg, 1.67x max / 23.6% energy",
                 trace_out);
  return 0;
}
