// Microbenchmark (google-benchmark): the Eq. 7 Newton solver.  Sec. III-A3
// claims the alpha computation is "extremely quick (less than 1 ms)"; this
// measures it across graph sizes and degree supports.

#include <benchmark/benchmark.h>

#include "gen/alpha_solver.hpp"

namespace {

void BM_SolveAlpha(benchmark::State& state) {
  const auto vertices = static_cast<pglb::VertexId>(state.range(0));
  const auto edges = static_cast<pglb::EdgeId>(state.range(0)) * 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pglb::solve_alpha(vertices, edges));
  }
}
BENCHMARK(BM_SolveAlpha)->Arg(100'000)->Arg(1'000'000)->Arg(4'847'571);

void BM_SolveAlphaSupport(benchmark::State& state) {
  pglb::AlphaSolverOptions options;
  options.support_cap = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pglb::solve_alpha(1'000'000, 10'000'000, options));
  }
}
BENCHMARK(BM_SolveAlphaSupport)->Arg(10'000)->Arg(100'000)->Arg(1'000'000);

void BM_PowerlawMeanDegree(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pglb::powerlaw_mean_degree(2.1, static_cast<std::uint64_t>(state.range(0))));
  }
}
BENCHMARK(BM_PowerlawMeanDegree)->Arg(10'000)->Arg(1'000'000);

}  // namespace

BENCHMARK_MAIN();
