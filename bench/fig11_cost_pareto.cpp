// Figure 11: cost/performance Pareto space of the EC2 machines, per
// application, derived purely from synthetic-proxy profiling (no rented
// cluster needed).  Paper takeaways: the three 2xlarge machines cluster
// together (~2x speedup, ~0.2x cost); 8xlarge is the most expensive per task;
// 2xlarge/4xlarge are the sensible graph-workload picks.

#include <set>

#include "bench_common.hpp"
#include "cost/cost_model.hpp"
#include "cost/pareto.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 128.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Fig. 11 - cost vs performance Pareto space (EC2)", "Fig. 11");

  // The six EC2 machines of Table I.
  const std::vector<MachineSpec> machines = {
      machine_by_name("c4.xlarge"),  machine_by_name("c4.2xlarge"),
      machine_by_name("m4.2xlarge"), machine_by_name("r3.2xlarge"),
      machine_by_name("c4.4xlarge"), machine_by_name("c4.8xlarge")};

  ProxySuite suite(scale, seed + 100);
  const auto points = cost_efficiency(machines, kAllApps, suite, "c4.xlarge");

  // Pareto dominance is judged within each application's point cloud.
  std::set<std::size_t> on_frontier;
  for (const AppKind app : kAllApps) {
    std::vector<CostPoint> app_points;
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (points[i].app == app) {
        app_points.push_back(points[i]);
        indices.push_back(i);
      }
    }
    for (const std::size_t local : pareto_frontier(app_points)) {
      on_frontier.insert(indices[local]);
    }
  }

  Table table({"app", "machine", "speedup vs c4.xlarge", "cost/task ($)",
               "relative cost", "pareto"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const CostPoint& p = points[i];
    table.row()
        .cell(short_app_name(p.app))
        .cell(p.machine)
        .cell(format_speedup(p.speedup))
        .cell(p.cost_per_task, 5)
        .cell(format_double(p.relative_cost, 2) + "x")
        .cell(on_frontier.contains(i) ? "*" : "");
  }
  emit_table(table, csv);

  std::cout << "\n'*' marks the Pareto frontier (maximise speedup, minimise cost).\n"
               "Paper: 2xlarge ~2x speedup at ~0.2x cost; 8xlarge most expensive per\n"
               "task; 4xlarge/2xlarge are the reasonable graph-workload candidates.\n";
  return 0;
}
