// Table II: the graph corpus.  Regenerates every graph at the requested scale
// and prints paper-reported vs reproduced vertex/edge counts, footprints and
// the Eq. 7 fitted alpha.

#include "bench_common.hpp"
#include "gen/alpha_solver.hpp"
#include "graph/stats.hpp"

using namespace pglb;
using namespace pglb::bench;

namespace {

void add_row(Table& table, const CorpusEntry& entry, double scale, std::uint64_t seed) {
  const auto graph = make_corpus_graph(entry, scale, seed);
  const auto stats = compute_stats(graph);
  const double fitted = solve_alpha(stats.num_vertices, stats.num_edges).alpha;
  table.row()
      .cell(entry.name)
      .cell(static_cast<std::uint64_t>(entry.paper_vertices))
      .cell(static_cast<std::uint64_t>(entry.paper_edges))
      .cell(entry.paper_footprint_mb, 0)
      .cell(entry.synthetic ? format_double(entry.paper_alpha, 2) : std::string("-"))
      .cell(static_cast<std::uint64_t>(stats.num_vertices))
      .cell(static_cast<std::uint64_t>(stats.num_edges))
      .cell(static_cast<double>(stats.footprint_bytes) / 1e6, 1)
      .cell(fitted, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 64.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Table II - graph corpus at scale " + format_double(scale, 4), "Table II");

  Table table({"name", "paper |V|", "paper |E|", "paper MB", "paper alpha", "ours |V|",
               "ours |E|", "ours MB", "fitted alpha (Eq. 7)"});
  for (const CorpusEntry& entry : natural_graph_entries()) add_row(table, entry, scale, seed);
  for (const CorpusEntry& entry : synthetic_graph_entries()) add_row(table, entry, scale, seed);
  emit_table(table, csv);

  std::cout << "\nNatural rows are Chung-Lu surrogates matched in (|V|, |E|, alpha);\n"
               "synthetic rows are Algorithm 1 proxies with the Table II alphas.\n"
               "Counts/footprints scale by the --scale factor; mean degree and alpha\n"
               "are scale-invariant.\n";
  return 0;
}
