// Ablation (Sec. II): partitioner quality on a heterogeneous cluster.
// For each algorithm x weight policy: replication factor, balance against
// the target shares, and end-to-end PageRank runtime.  Shows the paper's
// design-space trade-off — mixed cuts (hybrid/ginger) buy low replication,
// the hash/greedy family buys tight balance, and CCR weights help all of
// them.

#include "bench_common.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string graph_name = cli.get_string("graph", "social_network");
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Ablation - partitioning algorithms x weight policies", "Sec. II design space");

  const auto& m4 = machine_by_name("m4.2xlarge");
  const auto& c4 = machine_by_name("c4.2xlarge");
  const auto& big = machine_by_name("c4.4xlarge");
  const Cluster cluster({m4, c4, big, big});

  const auto graph = make_corpus_graph(corpus_entry(graph_name), scale, seed);
  ProxySuite suite(scale, seed + 100);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto pool = profile_cluster(cluster, suite, apps);

  const UniformEstimator uniform;
  const ProxyCcrEstimator ccr(pool);
  const CapabilityEstimator* estimators[] = {&uniform, &ccr};

  Table table({"partitioner", "weights", "replication", "imbalance vs target",
               "pagerank runtime (s)"});
  FlowOptions options;
  options.scale = scale;
  options.seed = seed;

  for (const PartitionerKind kind : extended_partitioner_kinds()) {
    for (const CapabilityEstimator* estimator : estimators) {
      options.partitioner = kind;
      const auto result = run_flow(graph, AppKind::kPageRank, cluster, *estimator, options);
      table.row()
          .cell(to_string(kind))
          .cell(estimator->name())
          .cell(result.replication_factor, 3)
          .cell(result.partition.weighted_imbalance, 3)
          .cell(result.app.report.makespan_seconds, 3);
    }
  }
  emit_table(table, csv);

  std::cout << "\ngraph: " << graph_name << " at scale " << format_double(scale, 4)
            << "; cluster: " << cluster.label() << "\n";
  return 0;
}
