// Microbenchmark (google-benchmark): thread-pool scaling of the deterministic
// pipeline stages.  Every benchmark runs the same work at pool sizes 1/2/4/8
// (the Arg) — outputs are bit-identical across the sweep, only wall-clock
// moves, so the series reads directly as parallel speedup.
//
// The acceptance bar for this PR: the profiler suite at 4 threads should run
// at least ~1.5x faster than at 1 thread on a 4-way host.

#include <benchmark/benchmark.h>

#include "core/profiler.hpp"
#include "core/proxy_suite.hpp"
#include "gen/corpus.hpp"
#include "gen/powerlaw.hpp"
#include "machine/catalog.hpp"
#include "partition/metrics.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace pglb;

constexpr double kScale = 1.0 / 256.0;
constexpr AppKind kApps[] = {AppKind::kPageRank, AppKind::kColoring,
                             AppKind::kConnectedComponents, AppKind::kTriangleCount};

/// Full profiling pass (4 apps x 3 proxies x 2 machine groups) over a pool of
/// state.range(0) threads.
void BM_ProfilerSuite(benchmark::State& state) {
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  const ProxySuite suite(kScale, 17, &pool);
  for (auto _ : state) {
    const CcrPool ccr = profile_cluster(cluster, suite, kApps, &pool);
    benchmark::DoNotOptimize(ccr.entries().size());
  }
  state.SetLabel(std::to_string(pool.threads()) + " threads");
}
BENCHMARK(BM_ProfilerSuite)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// Proxy generation (Algorithm 1) — the serial degree pass plus the sharded
/// edge fan-out.
void BM_PowerlawGenerate(benchmark::State& state) {
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  PowerLawConfig config;
  config.num_vertices = 200'000;
  config.alpha = 2.1;
  config.seed = 42;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_powerlaw(config, &pool).num_edges());
  }
  state.SetLabel(std::to_string(pool.threads()) + " threads");
}
BENCHMARK(BM_PowerlawGenerate)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// Replication/balance metrics over a partitioned corpus surrogate.
void BM_PartitionMetrics(benchmark::State& state) {
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  const EdgeList graph = make_corpus_graph(corpus_entry("amazon"), 1.0 / 16.0, 3, &pool);
  const RandomHashPartitioner partitioner;
  const auto weights = uniform_weights(8);
  const auto assignment = partitioner.partition(graph, weights, 1);
  for (auto _ : state) {
    const auto metrics = compute_partition_metrics(graph, assignment, weights, &pool);
    benchmark::DoNotOptimize(metrics.replication_factor);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(graph.num_edges()));
  state.SetLabel(std::to_string(pool.threads()) + " threads");
}
BENCHMARK(BM_PartitionMetrics)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
