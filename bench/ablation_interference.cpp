// Ablation: static proxy-guided ingress vs reactive migration under
// multi-tenant interference.
//
// The paper's CCRs are measured offline; if a machine transiently slows down
// mid-run (noisy neighbour on EC2), the static split is wrong until the event
// passes.  This bench quantifies when the Mizan-style reactive baseline
// overtakes static CCR ingress: sweep the interference intensity on the big
// machine and report both policies' makespans.

#include "baselines/dynamic_migration.hpp"
#include "bench_common.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Ablation - static CCR vs reactive migration under interference",
               "multi-tenant robustness");

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  ProxySuite suite(scale, seed + 100);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto pool = profile_cluster(cluster, suite, apps);
  const auto ccr = pool.ccr_for(AppKind::kPageRank, 2.1);

  const auto graph = make_corpus_graph(corpus_entry("citation"), scale, seed);
  const auto traits = traits_from_stats(compute_stats(graph), scale);
  const auto ccr_assignment = RandomHashPartitioner{}.partition(graph, ccr, seed);

  Table table({"slowdown of fast machine", "static ccr (s)", "reactive (s)",
               "migrated edges", "winner"});
  for (const double slowdown : {1.0, 0.8, 0.6, 0.4, 0.25}) {
    DynamicMigrationOptions base;
    base.pagerank.max_iterations = 20;
    if (slowdown < 1.0) {
      // The event hits the big machine for the middle half of the run.
      base.pagerank.interference = InterferenceSchedule(
          {{.machine = 1, .from_step = 5, .to_step = 15, .slowdown = slowdown}});
    }

    DynamicMigrationOptions frozen = base;
    frozen.migration_aggressiveness = 0.0;
    const auto r_static =
        run_pagerank_with_migration(graph, ccr_assignment, cluster, traits, frozen);
    const auto r_reactive =
        run_pagerank_with_migration(graph, ccr_assignment, cluster, traits, base);

    table.row()
        .cell(slowdown == 1.0 ? std::string("none")
                              : format_percent(1.0 - slowdown) + " slower")
        .cell(r_static.report.makespan_seconds, 3)
        .cell(r_reactive.report.makespan_seconds, 3)
        .cell(static_cast<std::uint64_t>(r_reactive.edges_migrated))
        .cell(r_reactive.report.makespan_seconds < r_static.report.makespan_seconds
                  ? "reactive"
                  : "static");
  }
  emit_table(table, csv);

  std::cout << "\nWith stable machines the static CCR split is already optimal and\n"
               "migration only adds traffic; as interference grows, reacting wins —\n"
               "static ingress and runtime balancing are complements, not rivals.\n";
  return 0;
}
