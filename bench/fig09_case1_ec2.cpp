// Figure 9 (a-d): Case 1 — heterogeneous EC2 cluster of m4.2xlarge and
// c4.2xlarge nodes.  Prior work [5] sees identical thread counts and
// partitions uniformly; CCR-guided partitioning exploits the ~1.2x real gap.
// One table per application: per graph x partitioning algorithm, the
// prior-work runtime, the CCR runtime, and the speedup.
//
// The cluster uses two nodes of each type (4 total, a perfect square) so all
// five partitioning algorithms of Sec. II apply, matching Fig. 9's x-axis.

#include "bench_common.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // Partitioner hashes are seed-dependent; averaging over several partition
  // seeds smooths heuristic noise (the paper averages over repeated runs).
  const auto trials = static_cast<std::uint64_t>(cli.get_int("trials", 1));
  const bool csv = cli.get_bool("csv", false);
  // --trace-out=<path>: also emit one Chrome trace replaying the PageRank run
  // on the first graph once per estimator, each on its own virtual track.
  const std::string trace_out = cli.get_string("trace-out", "");
  check_unused_flags(cli);

  print_header("Fig. 9 - Case 1: m4.2xlarge + c4.2xlarge EC2 cluster", "Fig. 9a-9d");

  const auto& m4 = machine_by_name("m4.2xlarge");
  const auto& c4 = machine_by_name("c4.2xlarge");
  const Cluster cluster({m4, m4, c4, c4});

  const auto graphs = load_natural_graphs(scale, seed);
  ProxySuite suite(scale, seed + 100);
  const auto pool = profile_cluster(cluster, suite, kAllApps);

  const ProxyCcrEstimator ccr(pool);
  const ThreadCountEstimator prior;  // == uniform here: equal thread counts

  FlowOptions options;
  options.scale = scale;
  options.seed = seed;

  double grand_total = 0.0;
  int grand_samples = 0;
  double best = 0.0;
  std::string best_at;

  for (const AppKind app : kAllApps) {
    Table table({"graph", "partitioner", "prior-work (s)", "ccr-guided (s)", "speedup"});
    std::vector<double> speedups;
    for (const NamedGraph& g : graphs) {
      for (const PartitionerKind kind : all_partitioner_kinds()) {
        options.partitioner = kind;
        double prior_seconds = 0.0, ccr_seconds = 0.0;
        for (std::uint64_t trial = 0; trial < trials; ++trial) {
          options.seed = seed + trial;
          prior_seconds +=
              run_flow(g.graph, app, cluster, prior, options).app.report.makespan_seconds;
          ccr_seconds +=
              run_flow(g.graph, app, cluster, ccr, options).app.report.makespan_seconds;
        }
        prior_seconds /= static_cast<double>(trials);
        ccr_seconds /= static_cast<double>(trials);
        const double speedup = prior_seconds / ccr_seconds;
        speedups.push_back(speedup);
        grand_total += speedup;
        ++grand_samples;
        if (speedup > best) {
          best = speedup;
          best_at = g.name + "/" + to_string(kind) + "/" + short_app_name(app);
        }
        table.row()
            .cell(g.name)
            .cell(to_string(kind))
            .cell(prior_seconds, 3)
            .cell(ccr_seconds, 3)
            .cell(format_speedup(speedup));
      }
    }
    std::cout << "--- Fig. 9" << static_cast<char>('a' + (&app - kAllApps)) << ": "
              << short_app_name(app) << " ---\n";
    emit_table(table, csv);
    std::cout << "mean speedup: " << format_speedup(mean_of(speedups)) << "\n\n";
  }

  std::cout << "overall mean speedup: " << format_speedup(grand_total / grand_samples)
            << "   (paper: 1.16x average over prior work in Case 1)\n";
  std::cout << "best: " << format_speedup(best) << " at " << best_at
            << "   (paper: 1.45x max, CC/hybrid/amazon)\n";

  if (!trace_out.empty()) {
    options.seed = seed;
    options.partitioner = PartitionerKind::kRandomHash;
    write_estimator_trace(trace_out, graphs.front().graph, cluster,
                          {{"prior-work (thread counts)", &prior}, {"ccr-guided", &ccr}},
                          options);
  }
  return 0;
}
