#pragma once
// Shared plumbing for the figure/table reproduction benches.
//
// Every bench accepts:
//   --scale=<0..1>   corpus down-scaling factor (default 1/128 for the heavy
//                    cluster benches, 1/64 for the lighter ones)
//   --seed=<n>       generator seed
// and prints the paper's reported numbers next to the reproduced ones.

#include <iostream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "cluster/cluster.hpp"
#include "core/estimators.hpp"
#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "core/proxy_suite.hpp"
#include "engine/exec_report.hpp"
#include "gen/corpus.hpp"
#include "machine/catalog.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/math.hpp"
#include "util/table.hpp"

namespace pglb::bench {

inline constexpr AppKind kAllApps[] = {AppKind::kPageRank, AppKind::kColoring,
                                       AppKind::kConnectedComponents,
                                       AppKind::kTriangleCount};

/// Short display names in paper order.
inline const char* short_app_name(AppKind kind) {
  switch (kind) {
    case AppKind::kPageRank: return "Pagerank";
    case AppKind::kColoring: return "Coloring";
    case AppKind::kConnectedComponents: return "CC";
    case AppKind::kTriangleCount: return "TC";
    case AppKind::kSssp: return "SSSP";
    case AppKind::kKCore: return "kcore";
  }
  return "?";
}

struct NamedGraph {
  std::string name;
  EdgeList graph;
};

/// Materialise the four Table II natural-graph surrogates at `scale`.
inline std::vector<NamedGraph> load_natural_graphs(double scale, std::uint64_t seed) {
  std::vector<NamedGraph> graphs;
  for (const CorpusEntry& entry : natural_graph_entries()) {
    graphs.push_back({entry.name, make_corpus_graph(entry, scale, seed)});
  }
  return graphs;
}

/// Per-app mean of a metric across graphs, formatted for the summary row.
inline double mean_of(const std::vector<double>& xs) { return mean(xs); }

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "(reproduces " << paper_ref << ")\n\n";
}


/// Print a table as aligned ASCII or CSV depending on the --csv flag.
inline void emit_table(const Table& table, bool csv) {
  if (csv) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
}

/// --trace-out support for the multi-run benches: replay one representative
/// configuration (PageRank on `graph`) once per estimator, bridging each
/// run's virtual BSP schedule onto its OWN virtual track of the "pglb
/// virtual cluster" process (pid 2), then write a single Chrome trace — open
/// it and the estimators' schedules sit stacked for side-by-side comparison
/// (balanced CCR barriers vs the stragglers prior work produces).
inline void write_estimator_trace(
    const std::string& trace_out, const EdgeList& graph, const Cluster& cluster,
    const std::vector<std::pair<std::string, const CapabilityEstimator*>>& estimators,
    FlowOptions options) {
  if (trace_out.empty()) return;
  set_tracing_enabled(true);
  std::int32_t track = 0;
  for (const auto& [label, estimator] : estimators) {
    const auto result = run_flow(graph, AppKind::kPageRank, cluster, *estimator, options);
    append_trace_spans(result.app.report, track++);
    std::cerr << "trace track " << (track - 1) << ": " << label << "\n";
  }
  write_chrome_trace(trace_out);
  set_tracing_enabled(false);
  std::cerr << "trace written to " << trace_out << " ("
            << estimators.size() << " virtual track(s), one per estimator)\n";
}

inline void check_unused_flags(const Cli& cli) {
  const auto unused = cli.unused_keys();
  if (!unused.empty()) {
    std::cerr << "unknown flags:";
    for (const auto& k : unused) std::cerr << " --" << k;
    std::cerr << '\n';
    std::exit(2);
  }
}

}  // namespace pglb::bench
