// Table I: machine configurations (EC2 instances + local Xeons) together with
// the calibrated model parameters this reproduction adds.

#include "bench_common.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Table I - machine catalog", "Table I");

  Table table({"name", "hw threads", "compute threads", "$/hour", "category", "freq GHz",
               "mem GB/s", "LLC MB", "TDP W"});
  for (const MachineSpec& m : table1_machines()) {
    table.row()
        .cell(m.name)
        .cell(static_cast<std::int64_t>(m.hw_threads))
        .cell(static_cast<std::int64_t>(m.compute_threads))
        .cell(m.cost_per_hour, 3)
        .cell(to_string(m.category))
        .cell(m.freq_ghz, 1)
        .cell(m.mem_bw_gbs, 1)
        .cell(m.llc_mb, 1)
        .cell(m.tdp_watts, 0);
  }
  emit_table(table, csv);
  std::cout << "\nhw/compute threads and $/hour are Table I verbatim; the remaining\n"
               "columns are the calibrated virtual-cluster model (see DESIGN.md).\n";
  return 0;
}
