// Figure 10b: Case 3 — projecting wimpy-core data centers: Xeon Server S
// derated to 1.8 GHz next to Xeon Server L at 2.5 GHz.  CCRs widen past the
// thread-count ratio for PageRank/CC/Coloring (TC lands near it), so the
// CCR advantage over prior work grows relative to Case 2.

#include "bench_common.hpp"
#include "fig10_common.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  // --trace-out=<path>: one Chrome trace, each estimator on its own vtrack.
  const std::string trace_out = cli.get_string("trace-out", "");
  check_unused_flags(cli);

  print_header("Fig. 10b - Case 3: Xeon S @ 1.8 GHz + Xeon L @ 2.5 GHz", "Fig. 10b");

  const Cluster cluster({with_frequency(machine_by_name("xeon_server_s"), 1.8),
                         machine_by_name("xeon_server_l")});
  run_local_case(cluster, scale, seed,
                 "prior 1.37x / ~12% energy; ccr 1.58x avg / 26.4% energy",
                 trace_out);
  return 0;
}
