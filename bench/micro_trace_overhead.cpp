// Microbenchmark (google-benchmark): per-span cost of the tracer in its
// three states — compiled in but runtime-disabled (the default for every
// pipeline run: one relaxed atomic load), runtime-enabled (two clock reads
// plus a buffer slot write), and emit_complete with caller-supplied
// timestamps (no clock reads).
//
// The enabled benchmarks use fixed iteration counts: the tracer's per-thread
// buffers cap at Tracer::kMaxSpansPerThread spans and clear() moves a
// watermark without replenishing capacity, so letting google-benchmark pick
// the iteration count could silently saturate the buffer and measure the
// dropped-span path instead.

#include <benchmark/benchmark.h>

#include "obs/trace.hpp"

namespace {

using namespace pglb;

// Comfortably below kMaxSpansPerThread (1 << 18) per benchmark so every
// measured span takes the record path, never the drop path.
constexpr std::int64_t kEnabledIterations = 1 << 15;

void BM_SpanDisabled(benchmark::State& state) {
  set_tracing_enabled(false);
  for (auto _ : state) {
    PGLB_TRACE_SPAN("bench.disabled", "bench");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanDisabled)->Unit(benchmark::kNanosecond);

void BM_SpanEnabled(benchmark::State& state) {
  Tracer::instance().clear();
  set_tracing_enabled(true);
  for (auto _ : state) {
    PGLB_TRACE_SPAN("bench.enabled", "bench");
  }
  set_tracing_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpanEnabled)->Iterations(kEnabledIterations)->Unit(benchmark::kNanosecond);

void BM_EmitComplete(benchmark::State& state) {
  Tracer::instance().clear();
  set_tracing_enabled(true);
  std::uint64_t t = 0;
  for (auto _ : state) {
    Tracer::instance().emit_complete("bench.complete", "bench", t, t + 10);
    t += 10;
  }
  set_tracing_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EmitComplete)->Iterations(kEnabledIterations)->Unit(benchmark::kNanosecond);

}  // namespace

BENCHMARK_MAIN();
