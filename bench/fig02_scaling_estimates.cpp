// Figure 2: "Speedup estimated by prior work vs. real speedup."
//
// For the four c4 machines (xlarge -> 8xlarge) and the four MLDM apps, print
// the real speedup over c4.xlarge obtained by running on natural graphs,
// next to the prior-work estimate (compute-thread ratio).  The paper's
// takeaway: applications scale very differently (PageRank saturates, TC jumps
// at 8xlarge) and core counting wildly overestimates.

#include "bench_common.hpp"
#include "core/ccr.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 128.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Fig. 2 - real scaling vs thread-count estimates", "Fig. 2");

  const auto graphs = load_natural_graphs(scale, seed);
  const auto family = c4_family();

  Table table({"app", "machine", "threads-estimate", "real speedup (mean over graphs)"});
  double total_estimate_error = 0.0;
  int samples = 0;

  for (const AppKind app : kAllApps) {
    // Mean real speedup across the natural graphs.
    std::vector<std::vector<double>> per_graph_speedups;
    for (const NamedGraph& g : graphs) {
      std::vector<double> times;
      for (const MachineSpec& m : family) {
        times.push_back(profile_single_machine(m, app, g.graph, scale));
      }
      per_graph_speedups.push_back(speedups_vs_baseline(times, 0));
    }
    for (std::size_t i = 0; i < family.size(); ++i) {
      std::vector<double> s;
      for (const auto& sp : per_graph_speedups) s.push_back(sp[i]);
      const double real = mean_of(s);
      const double estimate = static_cast<double>(family[i].compute_threads) /
                              family[0].compute_threads;
      table.row()
          .cell(short_app_name(app))
          .cell(family[i].name)
          .cell(format_speedup(estimate))
          .cell(format_speedup(real));
      if (i > 0) {
        total_estimate_error += relative_error(estimate, real);
        ++samples;
      }
    }
  }
  emit_table(table, csv);

  std::cout << "\nmean thread-count estimation error: "
            << format_percent(total_estimate_error / samples)
            << "   (paper: ~108% on the c4 family)\n";
  return 0;
}
