// Microbenchmark (google-benchmark): synthetic graph generation and
// partitioning throughput.  Sec. III-A2 reports 67 s to generate the three
// full-size proxies; this measures our generator's edges/second so the
// full-scale cost can be extrapolated.

#include <benchmark/benchmark.h>

#include "gen/chung_lu.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "partition/weights.hpp"

namespace {

void BM_PowerlawGenerate(benchmark::State& state) {
  pglb::PowerLawConfig config;
  config.num_vertices = static_cast<pglb::VertexId>(state.range(0));
  config.alpha = 2.1;
  std::uint64_t edges = 0;
  for (auto _ : state) {
    config.seed++;
    const auto g = pglb::generate_powerlaw(config);
    edges += g.num_edges();
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(edges));
}
BENCHMARK(BM_PowerlawGenerate)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_ChungLuGenerate(benchmark::State& state) {
  pglb::ChungLuConfig config;
  config.num_vertices = static_cast<pglb::VertexId>(state.range(0));
  config.target_edges = static_cast<pglb::EdgeId>(state.range(0)) * 12;
  config.alpha = 2.1;
  for (auto _ : state) {
    config.seed++;
    benchmark::DoNotOptimize(pglb::generate_chung_lu(config).num_edges());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 12);
}
BENCHMARK(BM_ChungLuGenerate)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_Partitioner(benchmark::State& state) {
  pglb::PowerLawConfig config;
  config.num_vertices = 50'000;
  config.alpha = 2.1;
  const auto g = pglb::generate_powerlaw(config);
  const auto kind = static_cast<pglb::PartitionerKind>(state.range(0));
  const auto partitioner = pglb::make_partitioner(kind);
  const auto weights = pglb::uniform_weights(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner->partition(g, weights, 1).num_machines);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(g.num_edges()));
  state.SetLabel(pglb::to_string(kind));
}
BENCHMARK(BM_Partitioner)
    ->DenseRange(0, 4, 1)  // the five PartitionerKind values
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
