// Microbenchmarks of the planning service: warm-cache planner latency (the
// steady-state cost of one plan once its profile is cached), the protocol
// round trip, and end-to-end server throughput at varying worker counts.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "fleet/local_backend.hpp"
#include "fleet/router.hpp"
#include "service/server.hpp"

namespace {

using namespace pglb;

PlannerOptions bench_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;  // tiny proxies: profiling cost stays bounded
  return options;
}

PlanRequest sample_request(int variant) {
  PlanRequest request;
  request.id = "bench";
  request.app = variant % 2 == 0 ? AppKind::kPageRank : AppKind::kColoring;
  request.machines = variant % 4 < 2
                         ? std::vector<std::string>{"m4.2xlarge", "c4.2xlarge"}
                         : std::vector<std::string>{"xeon_server_s", "xeon_server_l"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000;
  return request;
}

/// Planner::plan with the profile already cached — the hot path every
/// repeated request takes.
void BM_planner_warm_cache(benchmark::State& state) {
  Planner planner(bench_options());
  const PlanRequest request = sample_request(0);
  planner.plan(request);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_planner_warm_cache);

/// Parse + serialize round trip without any planning.
void BM_protocol_round_trip(benchmark::State& state) {
  const std::string line = serialize_request(sample_request(0));
  Planner planner(bench_options());
  const PlanResponse response = planner.plan(parse_plan_request(line));
  const std::string response_line = serialize_response(response);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_plan_request(line));
    benchmark::DoNotOptimize(parse_plan_response(response_line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_protocol_round_trip);

/// End-to-end submit()->future throughput through the bounded queue and the
/// worker pool, request mix of 4 cached profiles.
void BM_server_throughput(benchmark::State& state) {
  ServiceMetrics metrics;
  Planner planner(bench_options(), &metrics);
  ServerOptions server_options;
  server_options.threads = static_cast<int>(state.range(0));
  PlanServer server(planner, metrics, server_options);
  std::vector<std::string> lines;
  for (int v = 0; v < 4; ++v) {
    lines.push_back(serialize_request(sample_request(v)));
    server.submit(lines.back()).get();  // warm every profile
  }
  constexpr int kBatch = 64;
  for (auto _ : state) {
    std::vector<std::future<std::string>> pending;
    pending.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      pending.push_back(server.submit(lines[static_cast<std::size_t>(i) % lines.size()]));
    }
    for (auto& future : pending) benchmark::DoNotOptimize(future.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_server_throughput)->Arg(1)->Arg(2)->Arg(4);

/// Warm-cache routing through the fleet layer (docs/FLEET.md): the cost the
/// router adds on top of a replica's own submit()->get().  Counters expose
/// the route-latency distribution from the registry's full bucket vectors
/// (stage_buckets), not just a point quantile.
void BM_router_warm_fleet(benchmark::State& state) {
  Registry router_metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  Router router(options, &router_metrics);
  for (int k = 0; k < static_cast<int>(state.range(0)); ++k) {
    router.add_backend(std::make_shared<LocalBackend>("b" + std::to_string(k),
                                                      bench_options()));
  }
  std::vector<std::string> lines;
  for (int v = 0; v < 4; ++v) {
    lines.push_back(serialize_request(sample_request(v)));
    router.route(lines.back());  // warm the owning replica's profile cache
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(lines[i++ % lines.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));

  const auto buckets = router_metrics.stage_buckets("router.route");
  std::uint64_t observations = 0;
  for (const LatencyBucket& bucket : buckets) observations += bucket.count;
  state.counters["route_p50_us"] =
      router_metrics.stage_quantile_seconds("router.route", 0.50) * 1e6;
  state.counters["route_p99_us"] =
      router_metrics.stage_quantile_seconds("router.route", 0.99) * 1e6;
  state.counters["route_buckets"] = static_cast<double>(buckets.size());
  state.counters["route_observations"] = static_cast<double>(observations);
}
BENCHMARK(BM_router_warm_fleet)->Arg(1)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
