// Microbenchmarks of the planning service: warm-cache planner latency (the
// steady-state cost of one plan once its profile is cached), the protocol
// round trip, end-to-end server throughput at varying worker counts, and the
// wire-transport comparison (line-JSON vs the multiplexed binary framing,
// docs/WIRE.md).
//
// `service_throughput --transport-gate` skips the benchmarks and runs the
// transport acceptance gate instead: at concurrency 8 the binary transport
// must not be slower than line-JSON (ctest test wire_transport_gate).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "fleet/local_backend.hpp"
#include "fleet/router.hpp"
#include "service/server.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <deque>
#include <ext/stdio_filebuf.h>  // libstdc++: iostream over a file descriptor
#include <thread>

#include "fleet/tcp_backend.hpp"
#endif

namespace {

using namespace pglb;

PlannerOptions bench_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;  // tiny proxies: profiling cost stays bounded
  return options;
}

PlanRequest sample_request(int variant) {
  PlanRequest request;
  request.id = "bench";
  request.app = variant % 2 == 0 ? AppKind::kPageRank : AppKind::kColoring;
  request.machines = variant % 4 < 2
                         ? std::vector<std::string>{"m4.2xlarge", "c4.2xlarge"}
                         : std::vector<std::string>{"xeon_server_s", "xeon_server_l"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000;
  return request;
}

/// Planner::plan with the profile already cached — the hot path every
/// repeated request takes.
void BM_planner_warm_cache(benchmark::State& state) {
  Planner planner(bench_options());
  const PlanRequest request = sample_request(0);
  planner.plan(request);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.plan(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_planner_warm_cache);

/// Parse + serialize round trip without any planning.
void BM_protocol_round_trip(benchmark::State& state) {
  const std::string line = serialize_request(sample_request(0));
  Planner planner(bench_options());
  const PlanResponse response = planner.plan(parse_plan_request(line));
  const std::string response_line = serialize_response(response);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_plan_request(line));
    benchmark::DoNotOptimize(parse_plan_response(response_line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_protocol_round_trip);

/// End-to-end submit()->future throughput through the bounded queue and the
/// worker pool, request mix of 4 cached profiles.
void BM_server_throughput(benchmark::State& state) {
  ServiceMetrics metrics;
  Planner planner(bench_options(), &metrics);
  ServerOptions server_options;
  server_options.threads = static_cast<int>(state.range(0));
  PlanServer server(planner, metrics, server_options);
  std::vector<std::string> lines;
  for (int v = 0; v < 4; ++v) {
    lines.push_back(serialize_request(sample_request(v)));
    server.submit(lines.back()).get();  // warm every profile
  }
  constexpr int kBatch = 64;
  for (auto _ : state) {
    std::vector<std::future<std::string>> pending;
    pending.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      pending.push_back(server.submit(lines[static_cast<std::size_t>(i) % lines.size()]));
    }
    for (auto& future : pending) benchmark::DoNotOptimize(future.get());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_server_throughput)->Arg(1)->Arg(2)->Arg(4);

/// Warm-cache routing through the fleet layer (docs/FLEET.md): the cost the
/// router adds on top of a replica's own submit()->get().  Counters expose
/// the route-latency distribution from the registry's full bucket vectors
/// (stage_buckets), not just a point quantile.
void BM_router_warm_fleet(benchmark::State& state) {
  Registry router_metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  Router router(options, &router_metrics);
  for (int k = 0; k < static_cast<int>(state.range(0)); ++k) {
    router.add_backend(std::make_shared<LocalBackend>("b" + std::to_string(k),
                                                      bench_options()));
  }
  std::vector<std::string> lines;
  for (int v = 0; v < 4; ++v) {
    lines.push_back(serialize_request(sample_request(v)));
    router.route(lines.back());  // warm the owning replica's profile cache
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(lines[i++ % lines.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));

  const auto buckets = router_metrics.stage_buckets("router.route");
  std::uint64_t observations = 0;
  for (const LatencyBucket& bucket : buckets) observations += bucket.count;
  state.counters["route_p50_us"] =
      router_metrics.stage_quantile_seconds("router.route", 0.50) * 1e6;
  state.counters["route_p99_us"] =
      router_metrics.stage_quantile_seconds("router.route", 0.99) * 1e6;
  state.counters["route_buckets"] = static_cast<double>(buckets.size());
  state.counters["route_observations"] = static_cast<double>(observations);
}
BENCHMARK(BM_router_warm_fleet)->Arg(1)->Arg(3);

#ifdef __unix__

/// One closed-loop run over a real socket stream: a PlanServer serving a
/// socketpair on its own thread, a TcpBackend client keeping `concurrency`
/// requests in flight until `total` have completed.  Returns the wall seconds
/// of the timed loop (profiles pre-warmed; the handshake happens before the
/// clock starts).
double measure_transport_seconds(WireMode mode, std::size_t concurrency,
                                 std::size_t total) {
  ServiceMetrics metrics;
  Planner planner(bench_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 4, .queue_capacity = 256});

  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return -1.0;
  std::thread serving([&server, fd = fds[1]] {
    __gnu_cxx::stdio_filebuf<char> in_buf(fd, std::ios::in);
    __gnu_cxx::stdio_filebuf<char> out_buf(::dup(fd), std::ios::out);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    server.serve_stream(in, out);
  });

  double seconds = 0.0;
  {
    TcpBackend backend("bench", fds[0], mode);
    std::vector<std::string> lines;
    for (int v = 0; v < 4; ++v) {
      lines.push_back(serialize_request(sample_request(v)));
      backend.submit(lines.back()).get();  // warm profile + handshake
    }
    const auto start = std::chrono::steady_clock::now();
    std::deque<std::future<std::string>> inflight;
    std::size_t sent = 0;
    std::size_t completed = 0;
    while (completed < total) {
      while (inflight.size() < concurrency && sent < total) {
        inflight.push_back(backend.submit(lines[sent % lines.size()]));
        ++sent;
      }
      inflight.front().get();
      inflight.pop_front();
      ++completed;
    }
    seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  }  // backend teardown closes its end; the server sees EOF and returns
  serving.join();
  return seconds;
}

/// Whole-stack transport round trips: range(0) picks the transport
/// (0 = line-JSON, 1 = binary frames), range(1) the in-flight concurrency.
void BM_tcp_transport(benchmark::State& state) {
  const WireMode mode =
      state.range(0) == 0 ? WireMode::kLineJson : WireMode::kBinary;
  const auto concurrency = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kTotal = 512;
  for (auto _ : state) {
    state.SetIterationTime(measure_transport_seconds(mode, concurrency, kTotal));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTotal));
}
BENCHMARK(BM_tcp_transport)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

/// The PR acceptance gate (docs/WIRE.md): with 8 requests in flight, the
/// multiplexed binary transport must not be slower than line-JSON.  Best of
/// three runs per transport to shave scheduler noise; 0.85x tolerance so the
/// gate trips on regressions, not on CI jitter.
int run_transport_gate() {
  constexpr std::size_t kConcurrency = 8;
  constexpr std::size_t kRequests = 1024;
  const auto best_throughput = [&](WireMode mode) {
    double best = 1e100;
    for (int run = 0; run < 3; ++run) {
      const double seconds =
          measure_transport_seconds(mode, kConcurrency, kRequests);
      if (seconds > 0.0 && seconds < best) best = seconds;
    }
    return static_cast<double>(kRequests) / best;
  };
  const double line_rps = best_throughput(WireMode::kLineJson);
  const double binary_rps = best_throughput(WireMode::kBinary);
  std::printf(
      "transport-gate: line-json %.0f req/s, binary %.0f req/s (%.2fx) at "
      "concurrency %zu\n",
      line_rps, binary_rps, binary_rps / line_rps, kConcurrency);
  if (binary_rps < 0.85 * line_rps) {
    std::fprintf(stderr,
                 "transport-gate: FAIL — binary framing is slower than the "
                 "line protocol it replaces\n");
    return 1;
  }
  return 0;
}

#endif  // __unix__

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--transport-gate") {
#ifdef __unix__
      return run_transport_gate();
#else
      std::printf("transport-gate: POSIX-only, skipping\n");
      return 0;
#endif
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
