// Figure 8a: CCR accuracy within one EC2 domain.  For the four c4 machines
// and four apps, compare the speedup-over-xlarge measured on real graphs
// (oracle) with the one predicted from synthetic proxies, and with the
// thread-count estimate.  Paper: proxies hit 92% accuracy, core counting
// errs by 108%.

#include "bench_common.hpp"
#include "core/ccr.hpp"
#include "gen/alpha_solver.hpp"
#include "graph/stats.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 128.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Fig. 8a - CCR from real vs synthetic graphs (c4 family)", "Fig. 8a");

  const auto family = c4_family();
  const auto graphs = load_natural_graphs(scale, seed);
  ProxySuite suite(scale, seed + 100);

  Table table({"app", "machine", "real (mean)", "synthetic", "threads-estimate"});
  double proxy_error_total = 0.0, thread_error_total = 0.0;
  int samples = 0;

  for (const AppKind app : kAllApps) {
    // Synthetic prediction: profile the proxies, pick per-graph by alpha;
    // since all four graphs share the proxy set, report the alpha-weighted
    // mean prediction.
    std::vector<std::vector<double>> proxy_speedups;  // per proxy
    for (const auto& proxy : suite.proxies()) {
      std::vector<double> times;
      for (const MachineSpec& m : family) {
        times.push_back(profile_single_machine(m, app, proxy.graph, scale));
      }
      proxy_speedups.push_back(speedups_vs_baseline(times, 0));
    }

    for (std::size_t i = 0; i < family.size(); ++i) {
      std::vector<double> real_s, synth_s;
      for (const NamedGraph& g : graphs) {
        std::vector<double> times;
        for (const MachineSpec& m : family) {
          times.push_back(profile_single_machine(m, app, g.graph, scale));
        }
        real_s.push_back(speedups_vs_baseline(times, 0)[i]);

        // Per-graph proxy choice by fitted alpha (the flow's pool lookup).
        const auto stats = compute_stats(g.graph);
        const double alpha = solve_alpha(stats.num_vertices, stats.num_edges).alpha;
        std::size_t best = 0;
        double best_gap = 1e300;
        for (std::size_t p = 0; p < suite.proxies().size(); ++p) {
          const double gap = std::abs(suite.proxies()[p].alpha - alpha);
          if (gap < best_gap) {
            best_gap = gap;
            best = p;
          }
        }
        synth_s.push_back(proxy_speedups[best][i]);
      }

      const double real = mean_of(real_s);
      const double synth = mean_of(synth_s);
      const double estimate = static_cast<double>(family[i].compute_threads) /
                              family[0].compute_threads;
      table.row()
          .cell(short_app_name(app))
          .cell(family[i].name)
          .cell(format_speedup(real))
          .cell(format_speedup(synth))
          .cell(format_speedup(estimate));
      if (i > 0) {
        proxy_error_total += relative_error(synth, real);
        thread_error_total += relative_error(estimate, real);
        ++samples;
      }
    }
  }
  emit_table(table, csv);

  std::cout << "\nproxy CCR accuracy:        "
            << format_percent(1.0 - proxy_error_total / samples)
            << "   (paper: ~92%)\n";
  std::cout << "thread-count estimate err: "
            << format_percent(thread_error_total / samples) << "   (paper: ~108%)\n";
  return 0;
}
