// Figure 6: power-law degree distribution of a large social graph (the paper
// plots Friendster).  We plot our largest natural-graph surrogate
// (social_network) plus a Table II proxy, in log-log space, with the fitted
// tail exponent.

#include "bench_common.hpp"
#include "gen/powerlaw.hpp"
#include "graph/stats.hpp"
#include "util/histogram.hpp"

using namespace pglb;
using namespace pglb::bench;

namespace {

void show(const std::string& name, const EdgeList& graph) {
  const auto hist = out_degree_histogram(graph);
  const auto bins = log_bin(hist);
  std::cout << name << " (" << graph.num_vertices() << " vertices, "
            << graph.num_edges() << " edges)\n";
  std::cout << ascii_loglog(bins);
  std::cout << "fitted tail exponent alpha ~ " << format_double(fit_powerlaw_exponent(bins), 2)
            << "  (natural graphs: 1.9-2.4 per Sec. III-A3)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 64.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  check_unused_flags(cli);

  print_header("Fig. 6 - log-log degree distributions", "Fig. 6");

  // The paper plots Friendster; materialise its surrogate at a much smaller
  // slice than the Table II graphs (1.8B edges at full size).
  show("friendster surrogate (Fig. 6's graph)",
       make_corpus_graph(friendster_entry(), scale / 32.0, seed));
  show("social_network surrogate",
       make_corpus_graph(corpus_entry("social_network"), scale, seed));
  show("synthetic proxy (alpha=2.1)",
       make_corpus_graph(corpus_entry("synthetic_two"), scale, seed));
  return 0;
}
