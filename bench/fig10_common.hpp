#pragma once
// Shared driver for Fig. 10a/10b: local two-machine clusters, comparing the
// default system (uniform), prior work (thread counts) and CCR-guided
// partitioning on runtime and energy.

#include "bench_common.hpp"

namespace pglb::bench {

inline void run_local_case(const Cluster& cluster, double scale, std::uint64_t seed,
                           const std::string& paper_speedups,
                           const std::string& trace_out = "") {
  const auto graphs = load_natural_graphs(scale, seed);
  ProxySuite suite(scale, seed + 100);
  const auto pool = profile_cluster(cluster, suite, kAllApps);

  const UniformEstimator uniform;
  const ThreadCountEstimator prior;
  const ProxyCcrEstimator ccr(pool);

  FlowOptions options;
  options.scale = scale;
  options.seed = seed;
  options.partitioner = PartitionerKind::kRandomHash;  // PowerGraph's default ingress

  Table table({"app", "prior speedup", "ccr speedup", "prior energy save", "ccr energy save"});
  std::vector<double> prior_speedups, ccr_speedups, prior_saves, ccr_saves;
  double ccr_best = 0.0;

  for (const AppKind app : kAllApps) {
    std::vector<double> app_prior_s, app_ccr_s, app_prior_e, app_ccr_e;
    for (const NamedGraph& g : graphs) {
      const auto r_default = run_flow(g.graph, app, cluster, uniform, options);
      const auto r_prior = run_flow(g.graph, app, cluster, prior, options);
      const auto r_ccr = run_flow(g.graph, app, cluster, ccr, options);

      app_prior_s.push_back(r_default.app.report.makespan_seconds /
                            r_prior.app.report.makespan_seconds);
      app_ccr_s.push_back(r_default.app.report.makespan_seconds /
                          r_ccr.app.report.makespan_seconds);
      app_prior_e.push_back(1.0 - r_prior.app.report.total_joules /
                                      r_default.app.report.total_joules);
      app_ccr_e.push_back(1.0 - r_ccr.app.report.total_joules /
                                    r_default.app.report.total_joules);
      ccr_best = std::max(ccr_best, app_ccr_s.back());
    }
    table.row()
        .cell(short_app_name(app))
        .cell(format_speedup(mean_of(app_prior_s)))
        .cell(format_speedup(mean_of(app_ccr_s)))
        .cell(format_percent(mean_of(app_prior_e)))
        .cell(format_percent(mean_of(app_ccr_e)));
    prior_speedups.push_back(mean_of(app_prior_s));
    ccr_speedups.push_back(mean_of(app_ccr_s));
    prior_saves.push_back(mean_of(app_prior_e));
    ccr_saves.push_back(mean_of(app_ccr_e));
  }
  table.print(std::cout);

  std::cout << "\naverages vs default system:\n";
  std::cout << "  prior work: " << format_speedup(mean_of(prior_speedups)) << " speedup, "
            << format_percent(mean_of(prior_saves)) << " energy saved\n";
  std::cout << "  ccr-guided: " << format_speedup(mean_of(ccr_speedups)) << " speedup ("
            << format_speedup(ccr_best) << " max), " << format_percent(mean_of(ccr_saves))
            << " energy saved\n";
  std::cout << "  (paper: " << paper_speedups << ")\n";

  if (!trace_out.empty()) {
    write_estimator_trace(trace_out, graphs.front().graph, cluster,
                          {{"default (uniform)", &uniform},
                           {"prior-work (thread counts)", &prior},
                           {"ccr-guided", &ccr}},
                          options);
  }
}

}  // namespace pglb::bench
