// Baseline comparison (Sec. VI): static proxy-guided ingress vs Mizan-style
// reactive migration.  For each natural graph, PageRank on the Case 2
// cluster under four regimes:
//   - static uniform (default PowerGraph),
//   - dynamic migration starting from uniform (Mizan-like),
//   - static thread-count ingress (prior work [5]),
//   - static CCR-guided ingress (this paper).
// Expected shape: the reactive controller recovers most of the imbalance but
// pays migration traffic and bad early supersteps; CCR ingress gets there
// from superstep one.

#include "baselines/dynamic_migration.hpp"
#include "bench_common.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Baseline - static CCR ingress vs dynamic migration", "Sec. VI comparison");

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  ProxySuite suite(scale, seed + 100);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto pool = profile_cluster(cluster, suite, apps);

  Table table({"graph", "uniform (s)", "dynamic (s)", "migrated edges", "prior-work (s)",
               "ccr-guided (s)", "ccr vs dynamic"});

  for (const NamedGraph& g : load_natural_graphs(scale, seed)) {
    const auto traits = traits_from_stats(compute_stats(g.graph), scale);
    const RandomHashPartitioner hash;

    const auto uniform_assignment =
        hash.partition(g.graph, uniform_weights(cluster.size()), seed);
    const auto thread_assignment =
        hash.partition(g.graph, thread_count_weights(cluster), seed);
    const auto ccr = pool.ccr_for(AppKind::kPageRank, 2.1);
    const auto ccr_assignment = hash.partition(g.graph, ccr, seed);

    DynamicMigrationOptions frozen;
    frozen.migration_aggressiveness = 0.0;
    const auto r_uniform = run_pagerank_with_migration(g.graph, uniform_assignment,
                                                       cluster, traits, frozen);
    const auto r_dynamic =
        run_pagerank_with_migration(g.graph, uniform_assignment, cluster, traits);
    const auto r_prior = run_pagerank_with_migration(g.graph, thread_assignment, cluster,
                                                     traits, frozen);
    const auto r_ccr =
        run_pagerank_with_migration(g.graph, ccr_assignment, cluster, traits, frozen);

    table.row()
        .cell(g.name)
        .cell(r_uniform.report.makespan_seconds, 3)
        .cell(r_dynamic.report.makespan_seconds, 3)
        .cell(static_cast<std::uint64_t>(r_dynamic.edges_migrated))
        .cell(r_prior.report.makespan_seconds, 3)
        .cell(r_ccr.report.makespan_seconds, 3)
        .cell(format_speedup(r_dynamic.report.makespan_seconds /
                             r_ccr.report.makespan_seconds));
  }
  emit_table(table, csv);

  std::cout << "\nDynamic balancing reacts from a cold uniform start; proxy-guided\n"
               "ingress starts balanced and ships zero migration traffic.\n";
  return 0;
}
