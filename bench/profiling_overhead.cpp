// Profiling-overhead amortisation (Sec. III-B: "each profiling set only
// needs to be executed once... All generated CCR information is reusable
// over future executions, as graph applications are often reused to analyze
// dozens of different real world graphs").
//
// Quantifies the break-even point: how many production runs pay back the
// one-time proxy generation + profiling cost?

#include "bench_common.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Profiling-overhead amortisation", "Sec. III-B one-time-cost argument");

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});

  // One-time cost, in *virtual* seconds: generating proxies is host work (the
  // paper reports 67 s at full size); profiling runs are virtual executions.
  // profile_cluster fans the (app, proxy, group) cells out over the global
  // pool; the virtual totals are thread-count-invariant, only the host
  // wall-clock shrinks.
  ProxySuite suite(scale, seed + 100);
  const Stopwatch profile_timer;
  const CcrPool pool = profile_cluster(cluster, suite, kAllApps);
  const double profiling_wall_seconds = profile_timer.seconds();
  double profiling_virtual_seconds = 0.0;
  for (const CcrPool::Entry& entry : pool.entries()) {
    for (const double t : entry.group_times) profiling_virtual_seconds += t;
  }

  // Per-run payoff: time saved by CCR vs prior work on each (app, graph).
  const ProxyCcrEstimator ccr(pool);
  const ThreadCountEstimator prior;
  FlowOptions options;
  options.scale = scale;
  options.seed = seed;
  options.partitioner = PartitionerKind::kRandomHash;

  Table table({"app", "mean run (prior) s", "mean run (ccr) s", "saved/run s",
               "runs to amortise profiling"});
  double total_saved = 0.0;
  for (const AppKind app : kAllApps) {
    double prior_total = 0.0, ccr_total = 0.0;
    int runs = 0;
    for (const NamedGraph& g : load_natural_graphs(scale, seed)) {
      prior_total += run_flow(g.graph, app, cluster, prior, options)
                         .app.report.makespan_seconds;
      ccr_total += run_flow(g.graph, app, cluster, ccr, options)
                       .app.report.makespan_seconds;
      ++runs;
    }
    const double saved = (prior_total - ccr_total) / runs;
    total_saved += saved;
    table.row()
        .cell(short_app_name(app))
        .cell(prior_total / runs, 3)
        .cell(ccr_total / runs, 3)
        .cell(saved, 3)
        .cell(saved > 0 ? format_double(profiling_virtual_seconds / 4.0 / saved, 1)
                        : std::string("-"));
  }
  emit_table(table, csv);

  std::cout << "\none-time profiling cost: " << format_double(profiling_virtual_seconds, 2)
            << " virtual s total (" << format_double(suite.generation_seconds(), 2)
            << " host s proxy generation, " << format_double(profiling_wall_seconds, 3)
            << " host s profiler wall-clock on " << global_pool().threads()
            << " pool threads)\n";
  std::cout << "mean saving per production run: " << format_double(total_saved / 4.0, 3)
            << " s.  Break-even arrives fastest for the heavy apps (TC), and the\n"
            << "pool is shared by every future graph, cluster composition and run —\n"
            << "the paper's amortisation argument (profiling sets execute once per\n"
            << "machine *type*, not per job).\n";
  return 0;
}
