// Ablation (future work, Sec. III-B): communication-aware weight refinement
// on top of CCR.  For each app x graph on the Case 2 cluster, compare plain
// CCR shares against the theta-refined shares (analytic replication model),
// both executed for real through the flow.

#include "bench_common.hpp"
#include "core/comm_aware.hpp"

using namespace pglb;
using namespace pglb::bench;

namespace {

/// Estimator wrapper exposing comm-aware shares to run_flow().
class CommAwareEstimator final : public CapabilityEstimator {
 public:
  CommAwareEstimator(const CcrPool& pool, double scale) : pool_(&pool), scale_(scale) {}

  std::string name() const override { return "comm_aware_ccr"; }

  std::vector<double> weights(const Cluster& cluster, AppKind app, const EdgeList& graph,
                              const GraphStats& stats) const override {
    const auto capabilities =
        expand_group_values(cluster, group_machines(cluster),
                            pool_->ccr_for(app, stats.empirical_alpha));
    const auto traits = traits_from_stats(stats, scale_);
    const auto hist = total_degree_histogram(graph);
    return comm_aware_shares(cluster, profile_for(app), traits, hist, graph.num_edges(),
                             capabilities)
        .shares;
  }

 private:
  const CcrPool* pool_;
  double scale_;
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Ablation - comm-aware refinement of CCR shares", "Sec. III-B future work");

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  ProxySuite suite(scale, seed + 100);
  const auto pool = profile_cluster(cluster, suite, kAllApps);

  const ProxyCcrEstimator plain(pool);
  const CommAwareEstimator refined(pool, scale);

  FlowOptions options;
  options.scale = scale;
  options.seed = seed;
  options.partitioner = PartitionerKind::kRandomHash;

  Table table({"app", "graph", "ccr (s)", "comm-aware (s)", "gain"});
  std::vector<double> gains;
  for (const AppKind app : kAllApps) {
    for (const NamedGraph& g : load_natural_graphs(scale, seed)) {
      const auto r_plain = run_flow(g.graph, app, cluster, plain, options);
      const auto r_refined = run_flow(g.graph, app, cluster, refined, options);
      const double gain = r_plain.app.report.makespan_seconds /
                          r_refined.app.report.makespan_seconds;
      gains.push_back(gain);
      table.row()
          .cell(short_app_name(app))
          .cell(g.name)
          .cell(r_plain.app.report.makespan_seconds, 3)
          .cell(r_refined.app.report.makespan_seconds, 3)
          .cell(format_speedup(gain));
    }
  }
  emit_table(table, csv);
  std::cout << "\nmean gain of the refinement: " << format_speedup(geomean(gains))
            << " (1.00x = the shared-exchange traffic is already negligible)\n";
  return 0;
}
