// Ablation (Secs. II-A, III): proxy-design sensitivity.
//  1. Proxy alpha: how far does the predicted CCR drift from the real-graph
//     (oracle) CCR as the proxy's degree distribution departs from the
//     input's?  Motivates the multi-proxy pool + alpha-nearest lookup.
//  2. Proxy size: the paper claims graph size is a "trivial factor" for CCR
//     (Sec. II-A) — CCRs from proxies at different scales should agree.

#include "bench_common.hpp"
#include "core/ccr.hpp"
#include "gen/powerlaw.hpp"

using namespace pglb;
using namespace pglb::bench;

namespace {

double group_ccr_ratio(const Cluster& cluster, AppKind app, const EdgeList& graph,
                       double scale) {
  const auto times = profile_groups_on_graph(cluster, app, graph, scale);
  return times[0] / times[1];  // slow-over-fast time = fast machine's CCR
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  check_unused_flags(cli);

  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  const auto target = make_corpus_graph(corpus_entry("social_network"), scale, seed);

  print_header("Ablation 1 - proxy alpha sweep vs oracle CCR", "Sec. III-A3 coverage argument");

  Table alpha_table({"app", "oracle CCR", "a=1.7", "a=1.95", "a=2.1", "a=2.3", "a=2.6"});
  const double alphas[] = {1.7, 1.95, 2.1, 2.3, 2.6};
  for (const AppKind app : kAllApps) {
    const double oracle = group_ccr_ratio(cluster, app, target, scale);
    Table& row = alpha_table.row().cell(short_app_name(app)).cell(oracle, 3);
    for (const double alpha : alphas) {
      PowerLawConfig config;
      config.num_vertices = static_cast<VertexId>(3'200'000.0 * scale);
      config.alpha = alpha;
      config.seed = seed + 7;
      const auto proxy = generate_powerlaw(config);
      row.cell(group_ccr_ratio(cluster, app, proxy, scale), 3);
    }
  }
  alpha_table.print(std::cout);

  print_header("Ablation 2 - proxy size is a trivial factor for CCR", "Sec. II-A");

  Table size_table({"app", "proxy@1/512", "proxy@1/256", "proxy@1/128"});
  for (const AppKind app : kAllApps) {
    Table& row = size_table.row().cell(short_app_name(app));
    for (const double proxy_scale : {1.0 / 512.0, 1.0 / 256.0, 1.0 / 128.0}) {
      PowerLawConfig config;
      config.num_vertices = static_cast<VertexId>(3'200'000.0 * proxy_scale);
      config.alpha = 2.1;
      config.seed = seed + 7;
      const auto proxy = generate_powerlaw(config);
      row.cell(group_ccr_ratio(cluster, app, proxy, proxy_scale), 3);
    }
  }
  size_table.print(std::cout);

  std::cout << "\nCCR varies with the proxy's alpha (coverage matters) but is stable\n"
               "across proxy sizes — runtime magnitude cancels out of Eq. 1.\n";
  return 0;
}
