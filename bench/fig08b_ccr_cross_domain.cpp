// Figure 8b: CCR accuracy across EC2 categories at equal thread count
// (m4.2xlarge baseline vs c4.2xlarge / r3.2xlarge).  Prior work considers
// these machines identical; real and proxy-predicted speedups show c4 ~1.2x
// and r3 ~1.1x, with ~96% proxy accuracy.

#include "bench_common.hpp"
#include "core/ccr.hpp"
#include "gen/alpha_solver.hpp"
#include "graph/stats.hpp"

using namespace pglb;
using namespace pglb::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double scale = cli.get_double("scale", 1.0 / 128.0);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const bool csv = cli.get_bool("csv", false);
  check_unused_flags(cli);

  print_header("Fig. 8b - CCR across categories at equal thread count", "Fig. 8b");

  const auto family = category_2xlarge_family();  // m4 first (baseline)
  const auto graphs = load_natural_graphs(scale, seed);
  ProxySuite suite(scale, seed + 100);

  Table table({"app", "machine", "real (mean)", "synthetic", "threads-estimate"});
  double proxy_error_total = 0.0;
  int samples = 0;

  for (const AppKind app : kAllApps) {
    std::vector<std::vector<double>> proxy_speedups;
    for (const auto& proxy : suite.proxies()) {
      std::vector<double> times;
      for (const MachineSpec& m : family) {
        times.push_back(profile_single_machine(m, app, proxy.graph, scale));
      }
      proxy_speedups.push_back(speedups_vs_baseline(times, 0));
    }

    for (std::size_t i = 0; i < family.size(); ++i) {
      std::vector<double> real_s, synth_s;
      for (const NamedGraph& g : graphs) {
        std::vector<double> times;
        for (const MachineSpec& m : family) {
          times.push_back(profile_single_machine(m, app, g.graph, scale));
        }
        real_s.push_back(speedups_vs_baseline(times, 0)[i]);

        const auto stats = compute_stats(g.graph);
        const double alpha = solve_alpha(stats.num_vertices, stats.num_edges).alpha;
        std::size_t best = 0;
        double best_gap = 1e300;
        for (std::size_t p = 0; p < suite.proxies().size(); ++p) {
          const double gap = std::abs(suite.proxies()[p].alpha - alpha);
          if (gap < best_gap) {
            best_gap = gap;
            best = p;
          }
        }
        synth_s.push_back(proxy_speedups[best][i]);
      }

      const double real = mean_of(real_s);
      const double synth = mean_of(synth_s);
      table.row()
          .cell(short_app_name(app))
          .cell(family[i].name)
          .cell(format_speedup(real))
          .cell(format_speedup(synth))
          .cell(format_speedup(1.0));  // same thread count => prior work sees 1.0x
      if (i > 0) {
        proxy_error_total += relative_error(synth, real);
        ++samples;
      }
    }
  }
  emit_table(table, csv);

  std::cout << "\nproxy CCR accuracy: " << format_percent(1.0 - proxy_error_total / samples)
            << "   (paper: ~96%; prior work predicts 1.0x everywhere)\n";
  return 0;
}
