// Microbenchmark (google-benchmark): host-side throughput of the application
// kernels and the finalisation step — how fast the simulator itself chews
// through edges (distinct from the *virtual* times it reports).

#include <benchmark/benchmark.h>

#include "apps/registry.hpp"
#include "gen/powerlaw.hpp"
#include "machine/catalog.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"

namespace {

using namespace pglb;

struct Fixture {
  EdgeList graph;
  EdgeList prepared;
  Cluster cluster;
  DistributedGraph dg;
  WorkloadTraits traits;

  explicit Fixture(AppKind app)
      : cluster({machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")}) {
    PowerLawConfig config;
    config.num_vertices = 20'000;
    config.alpha = 2.1;
    graph = generate_powerlaw(config);
    prepared = prepare_graph_for(app, graph);
    const auto assignment =
        RandomHashPartitioner{}.partition(prepared, uniform_weights(cluster.size()), 1);
    dg = build_distributed(prepared, assignment);
    traits = traits_from_stats(compute_stats(prepared), 1.0);
  }
};

void BM_AppKernel(benchmark::State& state) {
  const auto app = static_cast<AppKind>(state.range(0));
  const Fixture f(app);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_app(app, f.prepared, f.dg, f.cluster, f.traits).digest);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(f.prepared.num_edges()));
  state.SetLabel(to_string(app));
}
BENCHMARK(BM_AppKernel)->DenseRange(0, 4, 1)->Unit(benchmark::kMillisecond);

void BM_Finalization(benchmark::State& state) {
  PowerLawConfig config;
  config.num_vertices = static_cast<VertexId>(state.range(0));
  config.alpha = 2.1;
  const auto graph = generate_powerlaw(config);
  const auto assignment =
      RandomHashPartitioner{}.partition(graph, uniform_weights(4), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_distributed(graph, assignment).replication_factor());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.num_edges()));
}
BENCHMARK(BM_Finalization)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
