#include "partition/hybrid.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/metrics.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

EdgeList sample_graph() {
  PowerLawConfig config;
  config.num_vertices = 15'000;
  config.alpha = 2.0;
  config.seed = 41;
  return generate_powerlaw(config);
}

TEST(Hybrid, LowDegreeInEdgesAreColocated) {
  // Every in-edge of a low-degree vertex must land on one machine (edge-cut
  // phase 1) — zero mirrors for the target.
  const auto g = sample_graph();
  HybridOptions options;
  options.high_degree_threshold = 100;
  const auto a = HybridPartitioner(options).partition(g, uniform_weights(4), 1);

  const auto in_degree = g.in_degrees();
  std::vector<MachineId> home(g.num_vertices(), kInvalidMachine);
  EdgeId index = 0;
  for (const Edge& e : g.edges()) {
    const MachineId m = a.edge_to_machine[index++];
    if (in_degree[e.dst] > options.high_degree_threshold) continue;
    if (home[e.dst] == kInvalidMachine) {
      home[e.dst] = m;
    } else {
      EXPECT_EQ(home[e.dst], m) << "split in-edges of low-degree vertex " << e.dst;
    }
  }
}

TEST(Hybrid, HighDegreeInEdgesAreScattered) {
  // A hub above the threshold must have its in-edges spread over machines
  // (vertex-cut phase 2) — that is how Hybrid bounds hub mirrors.
  const auto g = testing::star_graph(2000);  // hub 0 -> spokes: spokes have in-degree 1
  // Reverse the star so vertex 0 has huge *in*-degree.
  EdgeList reversed(2000);
  for (const Edge& e : g.edges()) reversed.add(e.dst, e.src);

  const auto a = HybridPartitioner().partition(reversed, uniform_weights(4), 1);
  std::vector<bool> used(4, false);
  for (const MachineId m : a.edge_to_machine) used[m] = true;
  for (const bool u : used) EXPECT_TRUE(u);
}

TEST(Hybrid, ThresholdBoundaryIsExclusive) {
  // Exactly-at-threshold vertices stay low-degree ("higher than" in Sec.
  // II-C1).
  HybridOptions options;
  options.high_degree_threshold = 5;
  EdgeList g(12);
  for (VertexId v = 1; v <= 5; ++v) g.add(v, 0);   // in-degree(0) == 5 == threshold
  for (VertexId v = 1; v <= 6; ++v) g.add(v, 11);  // in-degree(11) == 6 > threshold

  const auto a = HybridPartitioner(options).partition(g, uniform_weights(4), 2);
  // Vertex 0: all in-edges on one machine.
  for (EdgeId i = 1; i < 5; ++i) EXPECT_EQ(a.edge_to_machine[i], a.edge_to_machine[0]);
  // Vertex 11: edges keyed by distinct sources — extremely unlikely to all
  // match vertex 0's placement pattern; just require more than one machine.
  std::vector<bool> used(4, false);
  for (EdgeId i = 5; i < 11; ++i) used[a.edge_to_machine[i]] = true;
  int distinct = 0;
  for (const bool u : used) distinct += u;
  EXPECT_GT(distinct, 1);
}

TEST(Hybrid, WeightsShiftLoads) {
  const auto g = sample_graph();
  const std::vector<double> weights = {1.0, 3.0};
  const auto a = HybridPartitioner().partition(g, weights, 1);
  const auto counts = a.machine_edge_counts();
  const double share1 =
      static_cast<double>(counts[1]) / static_cast<double>(g.num_edges());
  EXPECT_NEAR(share1, 0.75, 0.06);
}

TEST(Hybrid, LowerReplicationThanRandomHashOnSkewedGraphs) {
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto random = RandomHashPartitioner{}.partition(g, weights, 1);
  const auto hybrid = HybridPartitioner().partition(g, weights, 1);
  EXPECT_LT(compute_partition_metrics(g, hybrid, weights).replication_factor,
            compute_partition_metrics(g, random, weights).replication_factor);
}

TEST(Hybrid, Deterministic) {
  const auto g = sample_graph();
  const auto a = HybridPartitioner().partition(g, uniform_weights(3), 4);
  const auto b = HybridPartitioner().partition(g, uniform_weights(3), 4);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
}

}  // namespace
}  // namespace pglb
