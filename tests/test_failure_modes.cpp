// Failure injection and degenerate-input coverage across the whole stack:
// the library must fail loudly (typed exceptions) on bad inputs and behave
// sensibly on pathological-but-legal graphs.

#include <gtest/gtest.h>

#include <limits>

#include "apps/registry.hpp"
#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "partition/factory.hpp"
#include "partition/weights.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

const double kNan = std::numeric_limits<double>::quiet_NaN();
const double kInf = std::numeric_limits<double>::infinity();

TEST(FailureModes, PartitionersRejectNonFiniteWeights) {
  EdgeList g(4);
  g.add(0, 1);
  for (const PartitionerKind kind : all_partitioner_kinds()) {
    const auto p = make_partitioner(kind);
    const std::vector<double> nan_weights = {1.0, kNan, 1.0, 1.0};
    const std::vector<double> inf_weights = {1.0, kInf, 1.0, 1.0};
    EXPECT_THROW(p->partition(g, nan_weights, 1), std::invalid_argument) << to_string(kind);
    EXPECT_THROW(p->partition(g, inf_weights, 1), std::invalid_argument) << to_string(kind);
  }
}

TEST(FailureModes, SharesRejectNonFiniteCapabilities) {
  const std::vector<double> bad = {1.0, kNan};
  EXPECT_THROW(shares_from_capabilities(bad), std::invalid_argument);
}

TEST(FailureModes, AllAppsHandleSingleVertexGraph) {
  const EdgeList g(1);  // one vertex, zero edges
  const auto cluster = testing::case1_cluster();
  const auto a = make_partitioner(PartitionerKind::kRandomHash)
                     ->partition(g, uniform_weights(cluster.size()), 1);
  const auto dg = build_distributed(g, a);
  WorkloadTraits traits;
  for (const AppKind app : {AppKind::kPageRank, AppKind::kColoring,
                            AppKind::kConnectedComponents, AppKind::kTriangleCount,
                            AppKind::kSssp}) {
    const auto prepared = prepare_graph_for(app, g);
    const auto pa = make_partitioner(PartitionerKind::kRandomHash)
                        ->partition(prepared, uniform_weights(cluster.size()), 1);
    const auto pdg = build_distributed(prepared, pa);
    EXPECT_NO_THROW(run_app(app, prepared, pdg, cluster, traits)) << to_string(app);
  }
}

TEST(FailureModes, AllAppsHandleAllIsolatedVertices) {
  const EdgeList g(50);  // 50 isolated vertices
  const auto cluster = testing::case2_cluster();
  WorkloadTraits traits;
  for (const AppKind app : {AppKind::kPageRank, AppKind::kColoring,
                            AppKind::kConnectedComponents, AppKind::kSssp}) {
    const auto a = make_partitioner(PartitionerKind::kRandomHash)
                       ->partition(g, uniform_weights(cluster.size()), 1);
    const auto dg = build_distributed(g, a);
    const auto result = run_app(app, g, dg, cluster, traits);
    EXPECT_TRUE(result.report.converged) << to_string(app);
  }
}

TEST(FailureModes, SelfLoopOnlyGraphIsHandled) {
  EdgeList g(3);
  g.add(0, 0);
  g.add(1, 1);
  const auto cluster = testing::case1_cluster();
  WorkloadTraits traits;
  for (const AppKind app : {AppKind::kColoring, AppKind::kConnectedComponents,
                            AppKind::kTriangleCount}) {
    const auto prepared = prepare_graph_for(app, g);
    const auto a = make_partitioner(PartitionerKind::kRandomHash)
                       ->partition(prepared, uniform_weights(cluster.size()), 1);
    const auto dg = build_distributed(prepared, a);
    EXPECT_NO_THROW(run_app(app, prepared, dg, cluster, traits)) << to_string(app);
  }
}

TEST(FailureModes, FlowOnDenseTinyGraph) {
  // Complete graph: every partitioner and app must survive maximum density.
  const auto g = testing::complete_graph(24);
  const auto cluster = testing::case1_cluster();
  const UniformEstimator uniform;
  for (const PartitionerKind kind : applicable_partitioner_kinds(cluster.size())) {
    FlowOptions options;
    options.partitioner = kind;
    const auto result = run_flow(g, AppKind::kTriangleCount, cluster, uniform, options);
    // K24 has C(24,3) = 2024 triangles.
    EXPECT_DOUBLE_EQ(result.app.digest, 2024.0) << to_string(kind);
  }
}

TEST(FailureModes, SixtyFourMachineCeilingEnforced) {
  EdgeList g(4);
  g.add(0, 1);
  const auto p = make_partitioner(PartitionerKind::kRandomHash);
  const auto a65 = p->partition(g, uniform_weights(65), 1);
  // Random hash itself has no mask limit, but finalisation does.
  EXPECT_THROW(build_distributed(g, a65), std::invalid_argument);
  const auto a64 = p->partition(g, uniform_weights(64), 1);
  EXPECT_NO_THROW(build_distributed(g, a64));
}

TEST(FailureModes, ProfilerRejectsUnknownScale) {
  const auto g = testing::cycle_graph(10);
  EXPECT_THROW(
      profile_single_machine(machine_by_name("c4.xlarge"), AppKind::kPageRank, g, 0.0),
      std::invalid_argument);
  EXPECT_THROW(
      profile_single_machine(machine_by_name("c4.xlarge"), AppKind::kPageRank, g, 2.0),
      std::invalid_argument);
}

TEST(FailureModes, CorpusVertexIdSpaceConsistent) {
  // Every corpus graph must keep edges inside its declared vertex space
  // (EdgeList::add throws otherwise, so constructing is the assertion).
  for (const CorpusEntry& entry : natural_graph_entries()) {
    EXPECT_NO_THROW(make_corpus_graph(entry, 1.0 / 512.0)) << entry.name;
  }
}

}  // namespace
}  // namespace pglb
