#include "core/online.hpp"

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "gen/corpus.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

OnlineCcrManager make_manager() {
  const AppKind apps[] = {AppKind::kPageRank};
  return OnlineCcrManager(ProxySuite(kScale), apps);
}

TEST(OnlineCcr, FirstRefreshProfilesEveryGroup) {
  auto manager = make_manager();
  const auto cluster = testing::case2_cluster();
  // 1 app x 3 proxies x 2 machine types.
  EXPECT_EQ(manager.refresh(cluster), 6u);
}

TEST(OnlineCcr, SecondRefreshIsFree) {
  auto manager = make_manager();
  const auto cluster = testing::case2_cluster();
  manager.refresh(cluster);
  EXPECT_EQ(manager.refresh(cluster), 0u);
  EXPECT_EQ(manager.total_profiling_runs(), 6u);
}

TEST(OnlineCcr, CompositionChangeAmongKnownTypesIsFree) {
  // Sec. III-B: "Varying the cluster composition among existing machines
  // does not require CCR updates."
  auto manager = make_manager();
  manager.refresh(testing::case2_cluster());
  const Cluster bigger({machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l"),
                        machine_by_name("xeon_server_l"),
                        machine_by_name("xeon_server_s")});
  EXPECT_EQ(manager.refresh(bigger), 0u);
  const auto ccr = manager.ccr_for(bigger, AppKind::kPageRank, 2.1);
  ASSERT_EQ(ccr.size(), 4u);
  EXPECT_DOUBLE_EQ(ccr[0], ccr[3]);
  EXPECT_DOUBLE_EQ(ccr[1], ccr[2]);
  EXPECT_GT(ccr[1], ccr[0]);
}

TEST(OnlineCcr, NewMachineTypeProfilesIncrementally) {
  auto manager = make_manager();
  manager.refresh(testing::case2_cluster());
  const Cluster upgraded({machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l"),
                          machine_by_name("c4.4xlarge")});
  // Only the new type, across the 3 proxies.
  EXPECT_EQ(manager.refresh(upgraded), 3u);
  EXPECT_NO_THROW(manager.ccr_for(upgraded, AppKind::kPageRank, 2.1));
}

TEST(OnlineCcr, PreloadedDatabaseAvoidsProfiling) {
  auto first = make_manager();
  const auto cluster = testing::case2_cluster();
  first.refresh(cluster);

  auto second = make_manager();
  second.preload(first.database());
  EXPECT_EQ(second.refresh(cluster), 0u);
}

TEST(OnlineCcr, UnprofiledClusterThrows) {
  const auto manager = make_manager();
  EXPECT_THROW(manager.ccr_for(testing::case2_cluster(), AppKind::kPageRank, 2.1),
               std::out_of_range);
}

TEST(OnlineCcrEstimator, PlugsIntoTheFlow) {
  auto manager = make_manager();
  const auto cluster = testing::case2_cluster();
  manager.refresh(cluster);

  const auto graph = make_corpus_graph(corpus_entry("wiki"), kScale);
  FlowOptions options;
  options.scale = kScale;
  const OnlineCcrEstimator online(manager);
  const UniformEstimator uniform;
  const auto guided = run_flow(graph, AppKind::kPageRank, cluster, online, options);
  const auto plain = run_flow(graph, AppKind::kPageRank, cluster, uniform, options);
  EXPECT_LT(guided.app.report.makespan_seconds, plain.app.report.makespan_seconds);
  EXPECT_EQ(online.name(), "online_ccr");
}

}  // namespace
}  // namespace pglb
