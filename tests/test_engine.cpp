#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

WorkloadTraits traits() {
  WorkloadTraits t;
  t.num_vertices_m = 1.0;
  t.footprint_mb = 100.0;
  t.degree_skew = 100.0;
  return t;
}

TEST(Executor, BarrierMakesStragglerDefineTheSuperstep) {
  const auto cluster = testing::case2_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());

  // Hand the slow machine (0) most of the work: its compute time dominates.
  const std::vector<double> ops = {1e9, 1e9};
  const std::vector<double> comm = {0.0, 0.0};
  exec.record_superstep(ops, comm);
  const auto report = exec.finish("test", true);

  const double t0 = 1e9 / exec.throughput(0);
  const double t1 = 1e9 / exec.throughput(1);
  EXPECT_GT(t0, t1);  // machine 0 is the straggler
  EXPECT_NEAR(report.makespan_seconds, t0, 1e-9);
  EXPECT_NEAR(report.per_machine[1].idle_seconds, t0 - t1, 1e-9);
  EXPECT_NEAR(report.per_machine[0].idle_seconds, 0.0, 1e-12);
}

TEST(Executor, SuperstepsAddUp) {
  const auto cluster = testing::case2_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> ops = {1e8, 1e8};
  const std::vector<double> comm = {0.0, 0.0};
  exec.record_superstep(ops, comm);
  exec.record_superstep(ops, comm);
  const auto report = exec.finish("test", true);
  EXPECT_EQ(report.supersteps, 2);
  EXPECT_NEAR(report.makespan_seconds, 2.0 * 1e8 / exec.throughput(0), 1e-9);
  EXPECT_DOUBLE_EQ(report.total_ops, 4e8);
}

TEST(Executor, HeavyCommunicationAddsToBusyTime) {
  const auto cluster = testing::case1_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> ops = {1e8, 1e8};
  const std::vector<double> no_comm = {0.0, 0.0};
  const std::vector<double> heavy_comm = {1e10, 1e10};  // a long exchange phase
  exec.record_superstep(ops, heavy_comm);
  const auto report = exec.finish("test", true);
  EXPECT_GT(report.per_machine[0].comm_seconds, 0.0);

  VirtualClusterExecutor exec2(cluster, profile_for(AppKind::kPageRank), traits());
  exec2.record_superstep(ops, no_comm);
  const auto report2 = exec2.finish("test", true);
  EXPECT_GT(report.makespan_seconds, report2.makespan_seconds);
}

TEST(Executor, ZeroTrafficCostsNothing) {
  // Single-machine profiling runs have no mirrors: the exchange phase (and
  // its latency) must vanish so CCRs are pure throughput ratios.
  const auto cluster = testing::case1_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> ops = {1e9, 1e9};
  const std::vector<double> no_comm = {0.0, 0.0};
  exec.record_superstep(ops, no_comm);
  const auto report = exec.finish("test", true);
  EXPECT_DOUBLE_EQ(report.per_machine[0].comm_seconds, 0.0);
  EXPECT_NEAR(report.makespan_seconds, 1e9 / exec.throughput(0), 1e-9);
}

TEST(Executor, ExchangePhaseIsSharedByAllMachines) {
  // The mirror exchange is a collective: both machines are busy for the same
  // exchange duration, which adds to the superstep after the compute barrier.
  const auto cluster = testing::case1_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> ops = {1e9, 1e9};
  const std::vector<double> comm = {1.25e9, 1.25e9};  // 2 seconds of traffic
  exec.record_superstep(ops, comm);
  const auto report = exec.finish("test", true);
  const double exchange = cluster.network().exchange_seconds(2.5e9);
  EXPECT_DOUBLE_EQ(report.per_machine[0].comm_seconds, exchange);
  EXPECT_DOUBLE_EQ(report.per_machine[1].comm_seconds, exchange);
  EXPECT_NEAR(report.makespan_seconds, 1e9 / exec.throughput(0) + exchange, 1e-9);
}

TEST(Executor, AsyncModeSkipsPerStepBarriers) {
  // Coloring profile is asynchronous: two supersteps with alternating
  // stragglers cost max(total) rather than sum of per-step maxima.
  const auto cluster = testing::case2_cluster();
  const AppProfile& async_app = profile_for(AppKind::kColoring);
  ASSERT_FALSE(async_app.synchronous);

  VirtualClusterExecutor exec(cluster, async_app, traits());
  const std::vector<double> step1 = {1e9, 1e7};
  const std::vector<double> step2 = {1e7, 1e9};
  const std::vector<double> comm = {0.0, 0.0};
  exec.record_superstep(step1, comm);
  exec.record_superstep(step2, comm);
  const auto report = exec.finish("coloring", true);

  const double busy0 = (1e9 + 1e7) / exec.throughput(0);
  const double busy1 = (1e7 + 1e9) / exec.throughput(1);
  EXPECT_NEAR(report.makespan_seconds, std::max(busy0, busy1), 1e-9);

  // A synchronous executor over the same schedule must be slower.
  VirtualClusterExecutor sync_exec(cluster, profile_for(AppKind::kConnectedComponents),
                                   traits());
  sync_exec.record_superstep(step1, comm);
  sync_exec.record_superstep(step2, comm);
  const auto sync_report = sync_exec.finish("cc", true);
  // Step 1 straggler: slow machine with 1e9 ops; step 2 straggler: whichever
  // of {slow at 1e7, fast at 1e9} takes longer.
  const double step1_window = 1e9 / sync_exec.throughput(0);
  const double step2_window =
      std::max(1e7 / sync_exec.throughput(0), 1e9 / sync_exec.throughput(1));
  EXPECT_NEAR(sync_report.makespan_seconds, step1_window + step2_window, 1e-9);
}

TEST(Executor, EnergyMatchesBusyIdleIntegration) {
  const auto cluster = testing::case2_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> ops = {1e9, 1e9};
  const std::vector<double> comm = {0.0, 0.0};
  exec.record_superstep(ops, comm);
  const auto report = exec.finish("test", true);

  const auto& s = cluster.machine(0);
  const auto& l = cluster.machine(1);
  const double t0 = 1e9 / exec.throughput(0);
  const double t1 = 1e9 / exec.throughput(1);
  const double expected =
      s.tdp_watts * t0 + l.tdp_watts * t1 + l.idle_watts * (t0 - t1);
  EXPECT_NEAR(report.total_joules, expected, expected * 1e-9);
}

TEST(Executor, GuardsAgainstMisuse) {
  const auto cluster = testing::case1_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> wrong_size = {1.0};
  const std::vector<double> comm = {0.0, 0.0};
  EXPECT_THROW(exec.record_superstep(wrong_size, comm), std::invalid_argument);
  (void)exec.finish("test", true);
  EXPECT_THROW(exec.finish("test", true), std::logic_error);
  const std::vector<double> ops = {1.0, 1.0};
  EXPECT_THROW(exec.record_superstep(ops, comm), std::logic_error);
}

TEST(MirrorSyncBytes, ProportionalToMirrors) {
  EdgeList g(3);
  g.add(0, 1);
  g.add(1, 0);
  g.add(1, 2);
  PartitionAssignment a;
  a.num_machines = 2;
  a.edge_to_machine = {0, 0, 1};
  const auto dg = build_distributed(g, a);
  const auto bytes = mirror_sync_bytes(dg, profile_for(AppKind::kPageRank));
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_DOUBLE_EQ(bytes[0], 0.0);  // no mirrors on machine 0
  EXPECT_DOUBLE_EQ(bytes[1],
                   2.0 * profile_for(AppKind::kPageRank).bytes_per_mirror);
}

TEST(Executor, TraceRecordsWindowsAndStragglers) {
  const auto cluster = testing::case2_cluster();  // machine 0 slow, 1 fast
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> comm = {0.0, 0.0};
  const std::vector<double> slow_heavy = {1e9, 1e8};
  const std::vector<double> fast_heavy = {1e6, 1e9};
  exec.record_superstep(slow_heavy, comm);
  exec.record_superstep(fast_heavy, comm);
  const auto report = exec.finish("test", true);

  ASSERT_EQ(report.trace.size(), 2u);
  EXPECT_EQ(report.trace[0].straggler, 0u);
  EXPECT_EQ(report.trace[1].straggler, 1u);
  EXPECT_DOUBLE_EQ(report.trace[0].exchange_seconds, 0.0);
  double window_sum = 0.0;
  for (const SuperstepTrace& step : report.trace) window_sum += step.window_seconds;
  EXPECT_NEAR(window_sum, report.makespan_seconds, 1e-12);
  EXPECT_DOUBLE_EQ(report.trace[0].total_ops, 1.1e9);

  EXPECT_DOUBLE_EQ(report.straggler_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(report.straggler_fraction(1), 0.5);
}

TEST(Executor, AsyncRunsHaveNoTrace) {
  const auto cluster = testing::case2_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kColoring), traits());
  const std::vector<double> ops = {1e8, 1e8};
  const std::vector<double> comm = {0.0, 0.0};
  exec.record_superstep(ops, comm);
  const auto report = exec.finish("coloring", true);
  EXPECT_TRUE(report.trace.empty());
  EXPECT_DOUBLE_EQ(report.straggler_fraction(0), 0.0);
}

TEST(Executor, EnergyBoundedByPowerEnvelope) {
  // Conservation property: total energy must lie between "everyone idle for
  // the whole makespan" and "everyone at TDP for the whole makespan".
  const auto cluster = testing::case2_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> comm = {1e7, 1e7};
  const std::vector<double> step1 = {1e9, 3e8};
  const std::vector<double> step2 = {2e8, 9e8};
  exec.record_superstep(step1, comm);
  exec.record_superstep(step2, comm);
  const auto report = exec.finish("test", true);

  double idle_floor = 0.0, tdp_ceiling = 0.0;
  for (const MachineSpec& m : cluster.machines()) {
    idle_floor += m.idle_watts * report.makespan_seconds;
    tdp_ceiling += m.tdp_watts * report.makespan_seconds;
  }
  EXPECT_GE(report.total_joules, idle_floor);
  EXPECT_LE(report.total_joules, tdp_ceiling);
}

TEST(Executor, ActivityAccountingIsConsistent) {
  // Per machine: compute + comm + idle must equal the makespan (sync mode).
  const auto cluster = testing::case1_cluster();
  VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits());
  const std::vector<double> comm = {2e9, 1e9};
  const std::vector<double> step1 = {5e8, 1e9};
  const std::vector<double> step2 = {1e9, 2e8};
  exec.record_superstep(step1, comm);
  exec.record_superstep(step2, comm);
  const auto report = exec.finish("test", true);
  for (const MachineActivity& a : report.per_machine) {
    EXPECT_NEAR(a.compute_seconds + a.comm_seconds + a.idle_seconds,
                report.makespan_seconds, 1e-9);
  }
}

TEST(ExecReport, IdleFractionAndSummary) {
  ExecReport report;
  report.app_name = "x";
  report.per_machine.resize(2);
  report.per_machine[0].compute_seconds = 3.0;
  report.per_machine[1].compute_seconds = 1.0;
  report.per_machine[1].idle_seconds = 2.0;
  EXPECT_NEAR(report.idle_fraction(), 2.0 / 6.0, 1e-12);
  EXPECT_NE(report.summary().find("x"), std::string::npos);
}

}  // namespace
}  // namespace pglb
