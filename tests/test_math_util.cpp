#include "util/math.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pglb {
namespace {

TEST(KahanSum, MatchesExactSmallSums) {
  KahanSum s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.value(), 6.0);
}

TEST(KahanSum, CompensatesTinyIncrements) {
  // 1 + 1e-16 * 1e4: naive double summation loses every increment.
  KahanSum s;
  s.add(1.0);
  for (int i = 0; i < 10'000; ++i) s.add(1e-16);
  EXPECT_NEAR(s.value(), 1.0 + 1e-12, 1e-15);

  double naive = 1.0;
  for (int i = 0; i < 10'000; ++i) naive += 1e-16;
  EXPECT_DOUBLE_EQ(naive, 1.0);  // demonstrates why we need Kahan
}

TEST(KahanSum, ResetClears) {
  KahanSum s;
  s += 5.0;
  s.reset();
  EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(MeanStdev, KnownValues) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stdev(xs), 2.138089935, 1e-8);
}

TEST(MeanStdev, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(stdev(one), 0.0);
}

TEST(RelativeError, PaperMetricSemantics) {
  EXPECT_NEAR(relative_error(1.08, 1.0), 0.08, 1e-12);  // "8% error"
  EXPECT_NEAR(relative_error(2.08, 1.0), 1.08, 1e-12);  // "108% error"
  EXPECT_NEAR(relative_error(0.5, 1.0), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(1.0, 0.0)));
}

TEST(Geomean, KnownValues) {
  const std::vector<double> xs = {1.0, 4.0};
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, RejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), std::invalid_argument);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
  EXPECT_TRUE(approx_equal(1e6, 1e6 * (1 + 1e-10)));
}

}  // namespace
}  // namespace pglb
