#include "engine/distributed_graph.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"

namespace pglb {
namespace {

TEST(DistributedGraph, HandExample) {
  // v1 has 2 edges on m0 and 1 on m1 -> master m0, mirror on m1.
  EdgeList g(3);
  g.add(0, 1);  // m0
  g.add(1, 0);  // m0
  g.add(1, 2);  // m1
  PartitionAssignment a;
  a.num_machines = 2;
  a.edge_to_machine = {0, 0, 1};

  const auto dg = build_distributed(g, a);
  EXPECT_EQ(dg.num_vertices(), 3u);
  EXPECT_EQ(dg.num_edges(), 3u);
  EXPECT_EQ(dg.local_edges(0).size(), 2u);
  EXPECT_EQ(dg.local_edges(1).size(), 1u);

  EXPECT_EQ(dg.master(0), 0u);
  EXPECT_EQ(dg.master(1), 0u);
  EXPECT_EQ(dg.master(2), 1u);
  EXPECT_EQ(dg.replica_mask(1), 0b11u);
  EXPECT_EQ(dg.mirrors_on(1), 1u);   // v1's mirror
  EXPECT_EQ(dg.mirrors_on(0), 0u);
  EXPECT_EQ(dg.masters_on(0), 2u);
  EXPECT_EQ(dg.masters_on(1), 1u);
  EXPECT_EQ(dg.total_mirrors(), 1u);
  EXPECT_NEAR(dg.replication_factor(), 4.0 / 3.0, 1e-12);
}

TEST(DistributedGraph, IsolatedVertexHasNoMaster) {
  EdgeList g(3);
  g.add(0, 1);
  PartitionAssignment a;
  a.num_machines = 1;
  a.edge_to_machine = {0};
  const auto dg = build_distributed(g, a);
  EXPECT_EQ(dg.master(2), kInvalidMachine);
  EXPECT_EQ(dg.replica_mask(2), 0u);
}

TEST(DistributedGraph, EdgesArePreservedPerMachine) {
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.1;
  const auto g = generate_powerlaw(config);
  const auto a = RandomHashPartitioner{}.partition(g, uniform_weights(4), 3);
  const auto dg = build_distributed(g, a);

  EdgeId total = 0;
  for (MachineId m = 0; m < 4; ++m) total += dg.local_edges(m).size();
  EXPECT_EQ(total, g.num_edges());
}

TEST(DistributedGraph, MastersPartitionTheNonIsolatedVertices) {
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.1;
  const auto g = generate_powerlaw(config);
  const auto a = RandomHashPartitioner{}.partition(g, uniform_weights(4), 3);
  const auto dg = build_distributed(g, a);

  VertexId masters = 0;
  for (MachineId m = 0; m < 4; ++m) masters += dg.masters_on(m);
  VertexId present = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (dg.replica_mask(v) != 0) {
      ++present;
      // Master must be one of the replicas.
      EXPECT_NE(dg.replica_mask(v) & (std::uint64_t{1} << dg.master(v)), 0u);
    }
  }
  EXPECT_EQ(masters, present);
}

TEST(DistributedGraph, ReplicationFactorAtLeastOne) {
  PowerLawConfig config;
  config.num_vertices = 2000;
  config.alpha = 2.2;
  const auto g = generate_powerlaw(config);
  const auto a = RandomHashPartitioner{}.partition(g, uniform_weights(8), 3);
  const auto dg = build_distributed(g, a);
  EXPECT_GE(dg.replication_factor(), 1.0);
  EXPECT_LE(dg.replication_factor(), 8.0);
}

TEST(DistributedGraph, RejectsMalformedInputs) {
  EdgeList g(2);
  g.add(0, 1);
  PartitionAssignment a;
  a.num_machines = 0;
  a.edge_to_machine = {0};
  EXPECT_THROW(build_distributed(g, a), std::invalid_argument);
  a.num_machines = 1;
  a.edge_to_machine = {};
  EXPECT_THROW(build_distributed(g, a), std::invalid_argument);
}

}  // namespace
}  // namespace pglb
