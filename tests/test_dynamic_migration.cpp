#include "baselines/dynamic_migration.hpp"

#include <gtest/gtest.h>

#include "apps/reference.hpp"
#include "gen/corpus.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

struct Harness {
  Cluster cluster = testing::case2_cluster();
  EdgeList graph = make_corpus_graph(corpus_entry("citation"), kScale);
  WorkloadTraits traits;
  PartitionAssignment uniform_assignment;

  Harness() {
    traits = traits_from_stats(compute_stats(graph), kScale);
    uniform_assignment =
        RandomHashPartitioner{}.partition(graph, uniform_weights(cluster.size()), 3);
  }
};

TEST(DynamicMigration, ZeroAggressivenessMatchesStaticRun) {
  Harness s;
  DynamicMigrationOptions options;
  options.migration_aggressiveness = 0.0;
  const auto result =
      run_pagerank_with_migration(s.graph, s.uniform_assignment, s.cluster, s.traits, options);
  EXPECT_EQ(result.edges_migrated, 0u);
  EXPECT_DOUBLE_EQ(result.migration_seconds, 0.0);

  const auto dg = build_distributed(s.graph, s.uniform_assignment);
  const auto static_run = run_pagerank(s.graph, dg, s.cluster, s.traits);
  EXPECT_NEAR(result.report.makespan_seconds, static_run.report.makespan_seconds,
              static_run.report.makespan_seconds * 1e-9);
}

TEST(DynamicMigration, RanksStayCorrectUnderMigration) {
  Harness s;
  const auto result =
      run_pagerank_with_migration(s.graph, s.uniform_assignment, s.cluster, s.traits);
  PageRankOptions pr;
  const auto expected = pagerank_reference(s.graph, pr.damping, pr.max_iterations);
  ASSERT_EQ(result.ranks.size(), expected.size());
  for (VertexId v = 0; v < s.graph.num_vertices(); v += 13) {
    EXPECT_NEAR(result.ranks[v], expected[v], 1e-9);
  }
}

TEST(DynamicMigration, ImprovesOnBadInitialPartitionDespiteCost) {
  Harness s;
  DynamicMigrationOptions options;
  options.pagerank.max_iterations = 20;  // give the controller time to settle
  const auto dynamic =
      run_pagerank_with_migration(s.graph, s.uniform_assignment, s.cluster, s.traits, options);

  DynamicMigrationOptions frozen = options;
  frozen.migration_aggressiveness = 0.0;
  const auto static_uniform =
      run_pagerank_with_migration(s.graph, s.uniform_assignment, s.cluster, s.traits, frozen);

  EXPECT_GT(dynamic.edges_migrated, 0u);
  EXPECT_LT(dynamic.report.makespan_seconds, static_uniform.report.makespan_seconds);
}

TEST(DynamicMigration, ConvergesTowardCapabilityShares) {
  Harness s;
  DynamicMigrationOptions options;
  options.pagerank.max_iterations = 25;
  const auto result =
      run_pagerank_with_migration(s.graph, s.uniform_assignment, s.cluster, s.traits, options);
  // Fast machine ends up with clearly more than half the edges.
  ASSERT_EQ(result.final_shares.size(), 2u);
  EXPECT_GT(result.final_shares[1], 0.65);
  EXPECT_NEAR(result.final_shares[0] + result.final_shares[1], 1.0, 1e-9);
}

TEST(DynamicMigration, GoodInitialPartitionMakesMigrationNearlyIdle) {
  // The paper's thesis: with CCR-proportional ingress there is little left
  // for the reactive controller to fix.
  Harness s;
  const std::vector<double> ccr_weights = {1.0, 3.2};
  const auto ccr_assignment =
      RandomHashPartitioner{}.partition(s.graph, ccr_weights, 3);
  const auto from_good =
      run_pagerank_with_migration(s.graph, ccr_assignment, s.cluster, s.traits);
  const auto from_bad =
      run_pagerank_with_migration(s.graph, s.uniform_assignment, s.cluster, s.traits);
  EXPECT_LT(from_good.edges_migrated, from_bad.edges_migrated / 2);
  EXPECT_LE(from_good.report.makespan_seconds, from_bad.report.makespan_seconds);
}

TEST(DynamicMigration, RejectsBadOptions) {
  Harness s;
  DynamicMigrationOptions options;
  options.migration_aggressiveness = 1.5;
  EXPECT_THROW(
      run_pagerank_with_migration(s.graph, s.uniform_assignment, s.cluster, s.traits, options),
      std::invalid_argument);

  PartitionAssignment wrong = s.uniform_assignment;
  wrong.num_machines = 5;
  EXPECT_THROW(run_pagerank_with_migration(s.graph, wrong, s.cluster, s.traits),
               std::invalid_argument);
}

}  // namespace
}  // namespace pglb
