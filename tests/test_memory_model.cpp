#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "gen/corpus.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

DistributedGraph make_dg(const EdgeList& g, MachineId machines) {
  const auto a = RandomHashPartitioner{}.partition(g, uniform_weights(machines), 3);
  return build_distributed(g, a);
}

TEST(MemoryModel, ScalesWithWorkScale) {
  const auto g = make_corpus_graph(corpus_entry("wiki"), kScale);
  const auto dg = make_dg(g, 2);
  const auto at_paper = estimated_memory_gb(dg, 256.0);
  const auto at_host = estimated_memory_gb(dg, 1.0);
  ASSERT_EQ(at_paper.size(), 2u);
  for (MachineId m = 0; m < 2; ++m) {
    EXPECT_NEAR(at_paper[m], 256.0 * at_host[m], 1e-12);
    EXPECT_GT(at_host[m], 0.0);
  }
  EXPECT_THROW(estimated_memory_gb(dg, 0.5), std::invalid_argument);
}

TEST(MemoryModel, PaperScaleWikiFitsEveryTableOneMachine) {
  // wiki is 64 MB of text -> a few hundred MB resident; even c4.xlarge's
  // 7.5 GB holds its half.
  const auto g = make_corpus_graph(corpus_entry("wiki"), kScale);
  const auto dg = make_dg(g, 2);
  const auto gb = estimated_memory_gb(dg, 256.0);
  for (const double x : gb) EXPECT_LT(x, 7.5);
}

TEST(MemoryModel, FlowFlagsOverCommittedMachines) {
  // A toy machine with 0.001 GB of DRAM cannot hold half of wiki.
  MachineSpec tiny = machine_by_name("xeon_server_s");
  tiny.name = "tiny_ram";
  tiny.mem_gb = 0.001;
  const Cluster cluster({tiny, machine_by_name("xeon_server_l")});

  const auto graph = make_corpus_graph(corpus_entry("wiki"), kScale);
  const UniformEstimator uniform;
  FlowOptions options;
  options.scale = kScale;
  const auto result = run_flow(graph, AppKind::kPageRank, cluster, uniform, options);
  EXPECT_FALSE(result.memory_feasible);
  ASSERT_EQ(result.memory_gb.size(), 2u);
  EXPECT_GT(result.memory_gb[0], tiny.mem_gb);
}

TEST(MemoryModel, FlowAcceptsFeasiblePartitions) {
  const auto graph = make_corpus_graph(corpus_entry("amazon"), kScale);
  const auto cluster = testing::case2_cluster();  // 32 + 64 GB
  const UniformEstimator uniform;
  FlowOptions options;
  options.scale = kScale;
  const auto result = run_flow(graph, AppKind::kPageRank, cluster, uniform, options);
  EXPECT_TRUE(result.memory_feasible);
}

TEST(MemoryModel, UnspecifiedCapacityIsUnbounded) {
  MachineSpec unbounded = machine_by_name("xeon_server_s");
  unbounded.name = "no_capacity_info";
  unbounded.mem_gb = 0.0;
  const Cluster cluster({unbounded, machine_by_name("xeon_server_l")});
  const auto graph = make_corpus_graph(corpus_entry("social_network"), kScale);
  const UniformEstimator uniform;
  FlowOptions options;
  options.scale = kScale;
  const auto result = run_flow(graph, AppKind::kPageRank, cluster, uniform, options);
  EXPECT_TRUE(result.memory_feasible);
}

TEST(MemoryModel, CatalogHasEc2DocumentedCapacities) {
  EXPECT_DOUBLE_EQ(machine_by_name("r3.2xlarge").mem_gb, 61.0);  // memory-optimized
  EXPECT_DOUBLE_EQ(machine_by_name("c4.xlarge").mem_gb, 7.5);
  EXPECT_GT(machine_by_name("r3.2xlarge").mem_gb,
            machine_by_name("c4.2xlarge").mem_gb);  // the R-family's point
}

}  // namespace
}  // namespace pglb
