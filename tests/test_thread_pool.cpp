// ThreadPool correctness: coverage, nesting, exceptions, concurrent callers,
// and the determinism contracts (static shard layout, ordered reductions,
// derived shard seeds).

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace pglb {
namespace {

TEST(ThreadPool, RunShardsExecutesEveryShardExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kShards = 257;
  std::vector<std::atomic<int>> hits(kShards);
  pool.run_shards(kShards, [&](std::size_t shard) { hits[shard].fetch_add(1); });
  for (std::size_t s = 0; s < kShards; ++s) EXPECT_EQ(hits[s].load(), 1) << s;
}

TEST(ThreadPool, SingleThreadPoolRunsInlineInShardOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<std::size_t> order;
  pool.run_shards(8, [&](std::size_t shard) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    order.push_back(shard);
  });
  std::vector<std::size_t> expected(8);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, ParallelForCoversTheWholeRange) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'001;
  std::vector<int> marks(kN, 0);
  parallel_for(pool, kN, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++marks[i];
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(marks[i], 1) << i;
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<double> out(64, 0.0);
  parallel_for(pool, 64, 8, [&](std::size_t begin, std::size_t end) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    // A nested fan-out must not deadlock; it runs inline on this thread.
    parallel_for(pool, end - begin, 2, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) out[begin + i] = static_cast<double>(begin + i);
    });
  });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<double>(i));
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_shards(32,
                      [&](std::size_t shard) {
                        if (shard == 7) throw std::runtime_error("shard 7 failed");
                      }),
      std::runtime_error);
  // The pool stays usable after a failed region.
  std::atomic<int> count{0};
  pool.run_shards(16, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ConcurrentTopLevelCallersAreSerializedAndCorrect) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 4096;
  std::vector<int> a(kN, 0), b(kN, 0);
  std::thread other([&] {
    parallel_for(pool, kN, 32, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++a[i];
    });
  });
  parallel_for(pool, kN, 32, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) ++b[i];
  });
  other.join();
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(a[i], 1) << i;
    ASSERT_EQ(b[i], 1) << i;
  }
}

TEST(ThreadPool, OrderedKahanSumIsThreadCountInvariant) {
  constexpr std::size_t kN = 9'973;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    values[i] = std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (1.0 + static_cast<double>(i));
  }
  const auto sum_with = [&](unsigned threads) {
    ThreadPool pool(threads);
    return ordered_kahan_sum(pool, kN, 128, [&](std::size_t i) { return values[i]; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));  // exact bit equality
  EXPECT_EQ(serial, sum_with(8));
}

TEST(ThreadPool, OrderedKahanSumInvariantOnAdversarialInput) {
  // Regression: parallel_for's old 1-thread shortcut collapsed the shard
  // layout into one fn(0, n) call, so the serial result was a single Kahan
  // pass while >1 threads folded per-shard partials — a different FP
  // association.  These magnitude-staggered values make the two associations
  // disagree unless the shard layout is preserved at every thread count.
  constexpr std::size_t kN = 1024;
  constexpr std::size_t kGrain = 64;
  std::vector<double> values(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;
    values[i] = sign * std::ldexp(1.0 + static_cast<double>(i % 7) / 8.0,
                                  static_cast<int>(i % 53) - 26);
  }
  const auto sum_with = [&](unsigned threads) {
    ThreadPool pool(threads);
    return ordered_kahan_sum(pool, kN, kGrain, [&](std::size_t i) { return values[i]; });
  };
  const double serial = sum_with(1);
  EXPECT_EQ(serial, sum_with(2));
  EXPECT_EQ(serial, sum_with(3));
  EXPECT_EQ(serial, sum_with(8));
  // And the serial result really is the per-shard fold, not a collapsed pass.
  KahanSum expected;
  for (std::size_t begin = 0; begin < kN; begin += kGrain) {
    KahanSum shard;
    for (std::size_t i = begin; i < std::min(kN, begin + kGrain); ++i) shard.add(values[i]);
    expected.add(shard.value());
  }
  EXPECT_EQ(serial, expected.value());
}

TEST(ThreadPool, ShardSeedsAreDistinctDerivedStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t shard = 0; shard < 1000; ++shard) {
    seeds.insert(shard_seed(42, shard));
  }
  EXPECT_EQ(seeds.size(), 1000u);                    // no collisions in practice
  EXPECT_EQ(shard_seed(42, 7), shard_seed(42, 7));   // pure function
  EXPECT_NE(shard_seed(42, 7), shard_seed(43, 7));   // base seed matters
}

TEST(ThreadPool, ShardCountLayout) {
  EXPECT_EQ(shard_count(0, 64), 0u);
  EXPECT_EQ(shard_count(1, 64), 1u);
  EXPECT_EQ(shard_count(64, 64), 1u);
  EXPECT_EQ(shard_count(65, 64), 2u);
  EXPECT_EQ(shard_count(10, 0), 0u);
}

TEST(ThreadPool, StressManyConsecutiveRegions) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run_shards(16, [&](std::size_t shard) { total.fetch_add(shard); });
  }
  EXPECT_EQ(total.load(), 200u * (15u * 16u / 2u));
}

TEST(ThreadPool, StressTinyRegionsDoNotRaceRegionTeardown) {
  // Regression: run_shards could observe completed==total && refs==0 and tear
  // down the stack-allocated region while a late-waking worker — already past
  // the wake predicate but not yet counted in refs — still held a pointer.
  // Tiny regions maximize that window: the caller usually claims every shard
  // itself before any worker wakes.  Validated under TSan via `ctest -L tsan`.
  ThreadPool pool(8);
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.run_shards(2, [&](std::size_t shard) { total.fetch_add(shard + 1); });
  }
  EXPECT_EQ(total.load(), 2000u * 3u);
}

TEST(ThreadPool, GlobalPoolIsASingleton) {
  ThreadPool& a = global_pool();
  ThreadPool& b = global_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.threads(), 1u);
  EXPECT_EQ(&pool_or_global(nullptr), &a);
  ThreadPool own(2);
  EXPECT_EQ(&pool_or_global(&own), &own);
}

}  // namespace
}  // namespace pglb
