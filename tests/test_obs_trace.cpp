// Span tracer: disabled-span no-op, runtime toggle, concurrent emission
// safety (run under the tsan ctest label), Chrome export validity, and the
// tentpole invariant — tracing is purely observational, so determinism
// goldens hold bit-for-bit with tracing on or off at any thread count.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/profiler.hpp"
#include "gen/powerlaw.hpp"
#include "machine/catalog.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "partition/chunking.hpp"
#include "partition/weights.hpp"
#include "service/protocol.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace pglb {
namespace {

/// Restores the tracing switch on scope exit so tests compose in any order.
struct TracingGuard {
  TracingGuard() : previous(tracing_enabled()) {}
  ~TracingGuard() { set_tracing_enabled(previous); }
  bool previous;
};

/// Same for the ring-reuse switch.
struct RingGuard {
  RingGuard() : previous(trace_ring_reuse()) {}
  ~RingGuard() { set_trace_ring_reuse(previous); }
  bool previous;
};

std::uint64_t edge_digest(const EdgeList& g) {
  std::uint64_t h = hash_u64(g.num_vertices(), 0xABCD);
  for (const Edge& e : g.edges()) h = hash_combine(h, hash_edge(e.src, e.dst));
  return h;
}

EdgeList golden_powerlaw(ThreadPool* pool) {
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.1;
  config.seed = 42;
  return generate_powerlaw(config, pool);
}

TEST(TraceRuntime, DisabledSpansRecordNothing) {
  const TracingGuard guard;
  set_tracing_enabled(false);
  const std::uint64_t before = Tracer::instance().spans_recorded();
  for (int i = 0; i < 100; ++i) {
    PGLB_TRACE_SPAN("noop", "test");
  }
  EXPECT_EQ(Tracer::instance().spans_recorded(), before);
}

#ifndef PGLB_DISABLE_TRACING

TEST(TraceRuntime, EnabledSpansAreRecorded) {
  const TracingGuard guard;
  set_tracing_enabled(true);
  const std::uint64_t before = Tracer::instance().spans_recorded();
  {
    PGLB_TRACE_SPAN("outer", "test");
    PGLB_TRACE_SPAN_ARG("inner", "test", 7);
  }
  set_tracing_enabled(false);
  EXPECT_EQ(Tracer::instance().spans_recorded(), before + 2);

  bool saw_inner = false;
  for (const SpanEvent& event : Tracer::instance().snapshot()) {
    if (std::string(event.name) == "inner") {
      saw_inner = true;
      EXPECT_EQ(event.arg, 7u);
      EXPECT_GE(event.end_ns, event.start_ns);
      EXPECT_EQ(event.vtrack, -1);
    }
  }
  EXPECT_TRUE(saw_inner);
}

TEST(TraceRuntime, ClearMovesTheWatermark) {
  const TracingGuard guard;
  set_tracing_enabled(true);
  { PGLB_TRACE_SPAN("pre-clear", "test"); }
  set_tracing_enabled(false);
  ASSERT_GT(Tracer::instance().spans_recorded(), 0u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().spans_recorded(), 0u);
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

// Concurrent emission from many threads while another thread snapshots: the
// per-thread buffers must neither lose published spans nor tear records.
// Runs under `ctest -L tsan` via scripts/check_tsan.sh.
TEST(TraceConcurrency, ParallelEmissionIsLossless) {
  const TracingGuard guard;
  Tracer::instance().clear();
  set_tracing_enabled(true);

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 10'000;
  const std::uint64_t before = Tracer::instance().spans_recorded();

  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        PGLB_TRACE_SPAN("burst", "test");
      }
    });
  }
  // Concurrent readers: snapshots taken mid-emission must be well-formed.
  for (int round = 0; round < 50; ++round) {
    for (const SpanEvent& event : Tracer::instance().snapshot()) {
      ASSERT_NE(event.name, nullptr);
      ASSERT_GE(event.end_ns, event.start_ns);
    }
  }
  for (std::thread& emitter : emitters) emitter.join();
  set_tracing_enabled(false);

  EXPECT_EQ(Tracer::instance().spans_recorded() - before,
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(Tracer::instance().spans_dropped(), 0u);
}

TEST(ChromeTrace, ExportsValidSortedJson) {
  const TracingGuard guard;
  Tracer::instance().clear();
  set_tracing_enabled(true);
  {
    PGLB_TRACE_SPAN("parent", "test");
    PGLB_TRACE_SPAN_ARG("child", "test", 3);
  }
  Tracer::instance().emit_complete("virtual-span", "virtual", 1000, 2000,
                                   kTraceNoArg, /*vtrack=*/0);
  set_tracing_enabled(false);

  const auto events = Tracer::instance().snapshot();
  const std::string json = chrome_trace_json(events);
  const JsonValue parsed = parse_json(json);  // throws on malformed output
  const JsonValue* trace_events = parsed.find("traceEvents");
  ASSERT_NE(trace_events, nullptr);

  bool saw_host_meta = false, saw_virtual_meta = false, saw_span = false;
  for (const JsonValue& event : trace_events->as_array()) {
    const std::string ph = event.find("ph")->as_string();
    if (ph == "M") {
      const double pid = event.find("pid")->as_number();
      saw_host_meta = saw_host_meta || pid == 1.0;
      saw_virtual_meta = saw_virtual_meta || pid == 2.0;
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_GE(event.find("ts")->as_number(), 0.0);
    EXPECT_GE(event.find("dur")->as_number(), 0.0);
    saw_span = true;
  }
  EXPECT_TRUE(saw_host_meta);
  EXPECT_TRUE(saw_virtual_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_EQ(json, chrome_trace_json(events));  // byte-stable for a span set
}

// The mini-pipeline of the acceptance criterion: profiling, a partitioner
// pass, and a virtual engine run must each leave their spans in the trace.
TEST(ChromeTrace, PipelineStagesLeaveSpans) {
  const TracingGuard guard;
  Tracer::instance().clear();
  set_tracing_enabled(true);

  ThreadPool pool(2);
  const EdgeList graph = golden_powerlaw(&pool);
  profile_single_machine(machine_by_name("xeon_server_s"), AppKind::kPageRank,
                         graph, 0.002);
  const ChunkingPartitioner partitioner;
  partitioner.partition(graph, uniform_weights(2), 1);
  set_tracing_enabled(false);

  bool saw_profile = false, saw_partition = false, saw_superstep = false;
  for (const SpanEvent& event : Tracer::instance().snapshot()) {
    const std::string name = event.name;
    saw_profile = saw_profile || name == "profile.cell";
    saw_partition = saw_partition || name == "partition.chunking";
    saw_superstep = saw_superstep || name == "engine.superstep";
  }
  EXPECT_TRUE(saw_profile);
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_superstep);
}

TEST(TraceRuntime, StringArgsAreRecordedAndInterned) {
  const TracingGuard guard;
  Tracer::instance().clear();
  // Interning is idempotent: equal text, same stable pointer.
  const char* label = intern_trace_label("backend-7");
  EXPECT_EQ(label, intern_trace_label(std::string("backend-") + "7"));

  set_tracing_enabled(true);
  { PGLB_TRACE_SPAN_SARG("routed", "test", label); }
  {
    TraceSpan span("late-bound", "test");
    // The router idiom: attach the label once the backend is known.
    span.set_sarg(intern_trace_label("machines=4"));
  }
  set_tracing_enabled(false);

  bool saw_routed = false, saw_late = false;
  for (const SpanEvent& event : Tracer::instance().snapshot()) {
    const std::string name = event.name;
    if (name == "routed") {
      saw_routed = true;
      EXPECT_EQ(event.sarg, label);  // pointer-stable, no copy
    }
    if (name == "late-bound") {
      saw_late = true;
      ASSERT_NE(event.sarg, nullptr);
      EXPECT_STREQ(event.sarg, "machines=4");
    }
  }
  EXPECT_TRUE(saw_routed);
  EXPECT_TRUE(saw_late);

  // The Chrome export carries the payload as an args "label" entry.
  const std::string json = chrome_trace_json(Tracer::instance().snapshot());
  EXPECT_NE(json.find("\"label\":\"backend-7\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"machines=4\""), std::string::npos);
}

// Ring-reuse satellite: with set_trace_ring_reuse(true), clear() replenishes
// per-thread capacity by rewinding to the first chunk, so a long-running
// service that flushes periodically never starts dropping.  Each round must
// see exactly its own spans — nothing lost, nothing resurrected.
TEST(TraceRing, ClearReplenishesCapacityViaChunkRewind) {
  const TracingGuard guard;
  const RingGuard ring_guard;
  set_trace_ring_reuse(true);
  Tracer::instance().clear();
  set_tracing_enabled(true);

  constexpr int kRounds = 3;
  constexpr int kSpansPerRound = 1000;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kSpansPerRound; ++i) {
      PGLB_TRACE_SPAN("ring-span", "test");
    }
    EXPECT_EQ(Tracer::instance().spans_recorded(),
              static_cast<std::uint64_t>(kSpansPerRound))
        << "round " << round;
    const auto events = Tracer::instance().snapshot();
    EXPECT_EQ(events.size(), static_cast<std::size_t>(kSpansPerRound))
        << "round " << round;
    for (const SpanEvent& event : events) {
      ASSERT_STREQ(event.name, "ring-span");
      ASSERT_GE(event.end_ns, event.start_ns);
    }
    Tracer::instance().clear();
    EXPECT_EQ(Tracer::instance().spans_recorded(), 0u);
  }
  set_tracing_enabled(false);
  EXPECT_EQ(Tracer::instance().spans_dropped(), 0u);
}

#endif  // PGLB_DISABLE_TRACING

// The tentpole invariant: tracing is purely observational.  The generator
// golden (from test_parallel_determinism) must hold bit-for-bit with tracing
// enabled at every thread count.
TEST(TraceDeterminism, GoldensHoldWithTracingEnabled) {
  const TracingGuard guard;
  for (const bool enabled : {false, true}) {
    set_tracing_enabled(enabled);
    for (const unsigned threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      const EdgeList g = golden_powerlaw(&pool);
      EXPECT_EQ(g.num_edges(), 19128u) << enabled << "/" << threads;
      EXPECT_EQ(edge_digest(g), 0x9a127e2dd78af95full) << enabled << "/" << threads;
    }
  }
}

TEST(TraceDeterminism, ProfilerMatchesWithTracingToggled) {
  const TracingGuard guard;
  ThreadPool pool(4);
  const EdgeList graph = golden_powerlaw(&pool);

  set_tracing_enabled(false);
  const double reference = profile_single_machine(
      machine_by_name("xeon_server_s"), AppKind::kPageRank, graph, 0.002);
  set_tracing_enabled(true);
  const double traced = profile_single_machine(
      machine_by_name("xeon_server_s"), AppKind::kPageRank, graph, 0.002);
  set_tracing_enabled(false);
  EXPECT_EQ(traced, reference);  // exact bit equality
}

}  // namespace
}  // namespace pglb
