// PlanServer: bounded queue semantics, stream serving in input order, and
// determinism of per-request results under concurrent load.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/server.hpp"

namespace pglb {
namespace {

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;
  return options;
}

std::string plan_line(int variant, int sequence) {
  PlanRequest request;
  request.id = "q" + std::to_string(sequence);
  request.app = variant % 2 == 0 ? AppKind::kPageRank : AppKind::kColoring;
  request.machines = variant % 4 < 2
                         ? std::vector<std::string>{"m4.2xlarge", "c4.2xlarge"}
                         : std::vector<std::string>{"xeon_server_s", "xeon_server_l"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000 + static_cast<std::uint64_t>(variant % 4) * 1'000'000;
  return serialize_request(request);
}

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
}

TEST(BoundedQueue, PushBlocksUntilPopped) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::thread producer([&] { EXPECT_TRUE(queue.push(2)); });  // blocks: full
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  producer.join();
}

TEST(BoundedQueue, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));        // closed: rejected
  EXPECT_EQ(queue.pop(), 1);          // backlog still drains
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), std::nullopt);  // drained + closed
}

TEST(BoundedQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  queue.close();
  consumer.join();
}

TEST(PlanServer, SubmitAnswersOneRequest) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});

  const PlanResponse response =
      parse_plan_response(server.submit(plan_line(0, 0)).get());
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.id, "q0");
  EXPECT_EQ(metrics.counter("requests_total"), 1u);
  EXPECT_EQ(metrics.counter("requests_failed"), 0u);
}

TEST(PlanServer, MalformedLineYieldsErrorAndServiceContinues) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});

  const PlanResponse bad = parse_plan_response(server.submit("{oops").get());
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_EQ(metrics.counter("requests_failed"), 1u);

  EXPECT_TRUE(parse_plan_response(server.submit(plan_line(0, 1)).get()).ok);
}

TEST(PlanServer, MetricsRequestReturnsRegistrySnapshot) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});
  server.submit(plan_line(0, 0)).get();

  const JsonValue snapshot =
      parse_json(server.submit(R"({"type":"metrics"})").get());
  ASSERT_TRUE(snapshot.is_object());
  EXPECT_DOUBLE_EQ(snapshot.find("counters")->find("requests_total")->as_number(), 2.0);
  ASSERT_NE(snapshot.find("stages"), nullptr);
  EXPECT_GE(snapshot.find("stages")->find("plan")->find("count")->as_number(), 1.0);
  const JsonValue* cache = snapshot.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_DOUBLE_EQ(cache->find("misses")->as_number(), 1.0);
}

TEST(PlanServer, SubmitAfterStopAnswersShutdownError) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});
  server.stop();
  const PlanResponse response =
      parse_plan_response(server.submit(plan_line(0, 0)).get());
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("shutting down"), std::string::npos);
}

TEST(PlanServer, ServeStreamKeepsInputOrder) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 4, .queue_capacity = 16});

  std::ostringstream input_text;
  constexpr int kRequests = 12;
  for (int i = 0; i < kRequests; ++i) {
    input_text << plan_line(i % 4, i) << "\n";
  }
  input_text << "\n";  // blank lines are skipped, not answered
  std::istringstream in(input_text.str());
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), static_cast<std::size_t>(kRequests));

  std::istringstream responses(out.str());
  std::string line;
  int i = 0;
  while (std::getline(responses, line)) {
    const PlanResponse response = parse_plan_response(line);
    EXPECT_TRUE(response.ok);
    // Workers finish out of order; the writer restores input order.
    EXPECT_EQ(response.id, "q" + std::to_string(i));
    ++i;
  }
  EXPECT_EQ(i, kRequests);
}

TEST(PlanServer, ConcurrentIdenticalMixIsDeterministic) {
  // Reference answers from a single-threaded planner...
  Planner reference(tiny_options());
  std::map<int, std::string> expected;
  for (int v = 0; v < 4; ++v) {
    expected[v] = serialize_response(reference.plan(parse_plan_request(plan_line(v, 0))));
  }

  // ...must match every answer produced under concurrent load, regardless of
  // scheduling, cache state, or which worker handles which request.
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 4, .queue_capacity = 32});

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::string>> got(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<std::string>> pending;
      for (int i = 0; i < kPerClient; ++i) {
        pending.push_back(server.submit(plan_line((c + i) % 4, 0)));
      }
      for (auto& future : pending) {
        got[static_cast<std::size_t>(c)].push_back(future.get());
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      EXPECT_EQ(got[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)],
                expected[(c + i) % 4])
          << "client " << c << " request " << i;
    }
  }

  // 4 distinct (class set, app, proxy) keys in the mix -> exactly 4 misses.
  const ProfileCacheStats stats = planner.cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kClients * kPerClient - 4));
}

}  // namespace
}  // namespace pglb
