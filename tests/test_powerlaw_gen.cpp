#include "gen/powerlaw.hpp"

#include <gtest/gtest.h>

#include "graph/stats.hpp"
#include "util/histogram.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

TEST(PowerLawGen, EmptyConfigYieldsEmptyGraph) {
  const auto g = generate_powerlaw(PowerLawConfig{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(PowerLawGen, DeterministicForFixedConfig) {
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.1;
  config.seed = 33;
  const auto a = generate_powerlaw(config);
  const auto b = generate_powerlaw(config);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));
}

TEST(PowerLawGen, SeedChangesOutput) {
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.1;
  config.seed = 1;
  const auto a = generate_powerlaw(config);
  config.seed = 2;
  const auto b = generate_powerlaw(config);
  EXPECT_NE(a.num_edges(), b.num_edges());
}

TEST(PowerLawGen, NoSelfLoopsByDefault) {
  PowerLawConfig config;
  config.num_vertices = 2000;
  config.alpha = 2.0;
  const auto g = generate_powerlaw(config);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(PowerLawGen, EveryVertexHasAtLeastOneOutEdge) {
  // Algorithm 1 samples degree >= 1 for every vertex.
  PowerLawConfig config;
  config.num_vertices = 3000;
  config.alpha = 2.2;
  const auto g = generate_powerlaw(config);
  for (const EdgeId d : g.out_degrees()) EXPECT_GE(d, 1u);
}

class PowerLawAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawAlphaSweep, EdgeCountTracksExpectation) {
  PowerLawConfig config;
  config.num_vertices = 50'000;
  config.alpha = GetParam();
  config.seed = 7;
  const auto expected = expected_powerlaw_edges(config);
  const auto g = generate_powerlaw(config);
  EXPECT_GT(g.num_edges(), 0u);
  // Multinomial degree sampling concentrates tightly; 15% covers the
  // heavy-tailed variance at alpha near 1.95.
  EXPECT_LT(relative_error(static_cast<double>(g.num_edges()),
                           static_cast<double>(expected)),
            0.15)
      << "alpha=" << GetParam();
}

TEST_P(PowerLawAlphaSweep, DegreeDistributionFollowsTargetExponent) {
  PowerLawConfig config;
  config.num_vertices = 80'000;
  config.alpha = GetParam();
  config.seed = 11;
  const auto g = generate_powerlaw(config);
  const auto hist = out_degree_histogram(g);
  const double fitted = fit_powerlaw_exponent(log_bin(hist));
  EXPECT_NEAR(fitted, GetParam(), 0.45) << "alpha=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TableTwoAlphas, PowerLawAlphaSweep,
                         ::testing::Values(1.95, 2.1, 2.3));

TEST(PowerLawGen, DenserForSmallerAlpha) {
  PowerLawConfig config;
  config.num_vertices = 30'000;
  config.alpha = 1.95;
  const auto dense = generate_powerlaw(config);
  config.alpha = 2.3;
  const auto sparse = generate_powerlaw(config);
  EXPECT_GT(dense.num_edges(), 2 * sparse.num_edges());
}

TEST(PowerLawGen, MaxDegreeCapIsRespected) {
  PowerLawConfig config;
  config.num_vertices = 10'000;
  config.alpha = 1.8;
  config.max_degree = 50;
  const auto g = generate_powerlaw(config);
  for (const EdgeId d : g.out_degrees()) EXPECT_LE(d, 50u);
}

TEST(AlphaForTargetEdges, InvertsExpectedEdges) {
  const VertexId v = 200'000;
  const double alpha = alpha_for_target_edges(v, 2'000'000);
  PowerLawConfig config;
  config.num_vertices = v;
  config.alpha = alpha;
  const auto expected = expected_powerlaw_edges(config);
  EXPECT_LT(relative_error(static_cast<double>(expected), 2'000'000.0), 0.02);
}

}  // namespace
}  // namespace pglb
