#include "graph/relabel.hpp"

#include <gtest/gtest.h>

#include "apps/reference.hpp"
#include "gen/powerlaw.hpp"
#include "graph/stats.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

TEST(CompactVertexIds, DropsGapsAndIsolatedVertices) {
  EdgeList g(10);  // only 1, 5, 9 participate
  g.add(1, 5);
  g.add(5, 9);
  const auto result = compact_vertex_ids(g);
  EXPECT_EQ(result.graph.num_vertices(), 3u);
  EXPECT_EQ(result.graph.num_edges(), 2u);
  EXPECT_EQ(result.forward[1], 0u);
  EXPECT_EQ(result.forward[5], 1u);
  EXPECT_EQ(result.forward[9], 2u);
  EXPECT_EQ(result.forward[0], kInvalidVertex);
  EXPECT_EQ(result.graph.edge(0), (Edge{0, 1}));
  EXPECT_EQ(result.graph.edge(1), (Edge{1, 2}));
}

TEST(CompactVertexIds, NoOpOnDenseIds) {
  const auto g = testing::cycle_graph(8);
  const auto result = compact_vertex_ids(g);
  EXPECT_EQ(result.graph.num_vertices(), 8u);
  for (VertexId v = 0; v < 8; ++v) EXPECT_EQ(result.forward[v], v);
}

TEST(RelabelByDegree, HubBecomesVertexZero) {
  const auto g = testing::star_graph(10);  // hub 0 already; shuffle it first
  EdgeList shuffled(10);
  for (const Edge& e : g.edges()) shuffled.add((e.src + 4) % 10, (e.dst + 4) % 10);
  const auto result = relabel_by_degree(shuffled);
  // Old hub id is 4 after shifting; it must map to new id 0.
  EXPECT_EQ(result.forward[4], 0u);
  const auto deg = result.graph.total_degrees();
  for (VertexId v = 1; v < 10; ++v) EXPECT_LE(deg[v], deg[v - 1]);
}

TEST(RelabelByDegree, PreservesStructure) {
  PowerLawConfig config;
  config.num_vertices = 3000;
  config.alpha = 2.1;
  const auto g = generate_powerlaw(config);
  const auto result = relabel_by_degree(g);
  EXPECT_EQ(result.graph.num_edges(), g.num_edges());
  // Triangles are a relabelling invariant.
  EXPECT_EQ(triangle_count_reference(result.graph), triangle_count_reference(g));
  // And so is the degree distribution (hence the fitted alpha).
  const auto before = compute_stats(g);
  const auto after = compute_stats(result.graph);
  EXPECT_EQ(before.max_out_degree, after.max_out_degree);
  EXPECT_DOUBLE_EQ(before.mean_out_degree, after.mean_out_degree);
}

TEST(ApplyRelabeling, DropsEdgesOfDroppedVertices) {
  EdgeList g(3);
  g.add(0, 1);
  g.add(1, 2);
  const std::vector<VertexId> forward = {0, kInvalidVertex, 1};
  const auto out = apply_relabeling(g, forward, 2);
  EXPECT_EQ(out.num_edges(), 0u);  // both edges touch dropped vertex 1
  EXPECT_EQ(out.num_vertices(), 2u);
}

TEST(ApplyRelabeling, ValidatesInputs) {
  EdgeList g(2);
  g.add(0, 1);
  const std::vector<VertexId> short_map = {0};
  EXPECT_THROW(apply_relabeling(g, short_map, 2), std::invalid_argument);
  const std::vector<VertexId> oob = {0, 7};
  EXPECT_THROW(apply_relabeling(g, oob, 2), std::invalid_argument);
}

}  // namespace
}  // namespace pglb
