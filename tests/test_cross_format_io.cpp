// Cross-format equivalence: the three on-disk formats must describe the same
// graph, and downstream results must be independent of the format used.

#include <gtest/gtest.h>

#include <filesystem>

#include "apps/reference.hpp"
#include "gen/powerlaw.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"

namespace pglb {
namespace {

class CrossFormatIo : public ::testing::Test {
 protected:
  static EdgeList graph() {
    PowerLawConfig config;
    config.num_vertices = 3000;
    config.alpha = 2.1;
    config.seed = 131;
    return generate_powerlaw(config);
  }

  std::string temp(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "pglb_xfmt";
    std::filesystem::create_directories(dir);
    const auto path = (dir / name).string();
    cleanup_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }

  std::vector<std::string> cleanup_;
};

TEST_F(CrossFormatIo, AllFormatsRoundTripIdentically) {
  const auto g = graph();
  const auto txt = temp("g.txt");
  const auto bin = temp("g.bin");
  const auto mtx = temp("g.mtx");
  write_edge_list_text(g, txt);
  write_edge_list_binary(g, bin);
  write_matrix_market(g, mtx);

  const auto from_txt = read_edge_list_text(txt);
  const auto from_bin = read_edge_list_binary(bin);
  const auto from_mtx = read_matrix_market(mtx);

  ASSERT_EQ(from_txt.num_edges(), g.num_edges());
  ASSERT_EQ(from_bin.num_edges(), g.num_edges());
  ASSERT_EQ(from_mtx.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); i += 7) {
    EXPECT_EQ(from_txt.edge(i), g.edge(i));
    EXPECT_EQ(from_bin.edge(i), g.edge(i));
    EXPECT_EQ(from_mtx.edge(i), g.edge(i));
  }
}

TEST_F(CrossFormatIo, DownstreamResultsAreFormatIndependent) {
  const auto g = graph();
  const auto bin = temp("d.bin");
  const auto mtx = temp("d.mtx");
  write_edge_list_binary(g, bin);
  write_matrix_market(g, mtx);

  const auto a = read_edge_list_binary(bin);
  const auto b = read_matrix_market(mtx);
  EXPECT_EQ(triangle_count_reference(a), triangle_count_reference(g));
  EXPECT_EQ(triangle_count_reference(b), triangle_count_reference(g));
  EXPECT_EQ(connected_components_reference(a), connected_components_reference(b));
  EXPECT_EQ(compute_stats(a).footprint_bytes, compute_stats(b).footprint_bytes);
}

TEST_F(CrossFormatIo, BinaryIsSmallerTextIsPortableMtxInterops) {
  const auto g = graph();
  const auto txt = temp("s.txt");
  const auto bin = temp("s.bin");
  write_edge_list_text(g, txt);
  write_edge_list_binary(g, bin);
  EXPECT_LT(std::filesystem::file_size(bin),
            std::filesystem::file_size(txt) + 24);  // header bytes slack
}

}  // namespace
}  // namespace pglb
