// TcpBackend transport behavior against a scripted fake server (docs/WIRE.md):
// negotiation (binary upgrade, line fallback, refused-handshake failure),
// out-of-order response matching, frames split across reads, torn streams,
// reconnect-after-failure, and the regression tests for the two blocking-IO
// bugs — EINTR on read treated as connection loss, and submit() blocking
// behind a full socket buffer.

#include <gtest/gtest.h>

#include <csignal>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fleet/tcp_backend.hpp"
#include "obs/registry.hpp"
#include "service/protocol.hpp"
#include "service/wire.hpp"

#include <netinet/in.h>

namespace pglb {
namespace {

// --- raw-fd helpers for the scripted server side ----------------------------

bool write_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t wrote =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(wrote);
  }
  return true;
}

/// Read up to (and excluding) the next '\n'.  Byte-at-a-time keeps the fake
/// server stateless: no read-ahead buffer to lose bytes in.
std::optional<std::string> read_line_fd(int fd) {
  std::string line;
  char byte = 0;
  while (true) {
    const ssize_t got = ::read(fd, &byte, 1);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return std::nullopt;
    if (byte == '\n') return line;
    line.push_back(byte);
  }
}

/// `carry` holds bytes read past the returned frame — the client coalesces
/// frames into gathered writes, so one read() routinely returns several.
std::optional<wire::Frame> read_frame_fd(int fd, std::string* carry) {
  std::size_t offset = 0;
  wire::Frame frame;
  while (true) {
    switch (wire::decode_frame(*carry, &offset, &frame, nullptr)) {
      case wire::DecodeStatus::kFrame:
        carry->erase(0, offset);
        return frame;
      case wire::DecodeStatus::kBad:
        return std::nullopt;
      case wire::DecodeStatus::kNeedMore:
        break;
    }
    char chunk[256];
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) return std::nullopt;
    carry->append(chunk, static_cast<std::size_t>(got));
  }
}

bool write_response_frame(int fd, std::uint64_t id, std::string_view payload) {
  std::string encoded;
  wire::append_frame(encoded, wire::FrameType::kResponse, id, payload);
  return write_all(fd, encoded);
}

/// Server half of the hello handshake: consume the hello line, send the ack.
bool accept_upgrade(int fd) {
  const auto hello = read_line_fd(fd);
  if (!hello || !wire::is_hello_line(*hello)) return false;
  return write_all(fd, wire::hello_ack_line() + "\n");
}

struct FdPair {
  int client = -1;
  int server = -1;
};

FdPair make_fd_pair() {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {fds[0], fds[1]};
}

/// The writer thread bumps Stats::messages AFTER the kernel accepted the
/// bytes, which can lag the response round trip by a beat — poll briefly
/// before asserting on it.
TcpBackend::Stats settled_stats(const TcpBackend& backend,
                                std::uint64_t messages) {
  for (int i = 0; i < 500 && backend.stats().messages < messages; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return backend.stats();
}

/// Loopback listener on an OS-chosen ephemeral port (reconnect tests).
int listen_ephemeral(std::uint16_t* port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(listener, 0);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(listener, reinterpret_cast<sockaddr*>(&address),
                   sizeof(address)),
            0);
  EXPECT_EQ(::listen(listener, 4), 0);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  EXPECT_EQ(::getsockname(listener, reinterpret_cast<sockaddr*>(&bound),
                          &bound_len),
            0);
  *port = ntohs(bound.sin_port);
  return listener;
}

// --- transports -------------------------------------------------------------

TEST(TcpBackendLine, LineModeIsByteIdenticalLegacy) {
  const FdPair fds = make_fd_pair();
  std::thread server([fd = fds.server] {
    // No hello in kLineJson mode: the FIRST bytes on the wire must be the
    // request line itself, exactly as the pre-upgrade protocol sent it.
    const auto first = read_line_fd(fd);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, R"({"id":"a"})");
    const auto second = read_line_fd(fd);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, R"({"id":"b"})");
    write_all(fd, "ra\nrb\n");
    write_all(fd, "unsolicited\n");  // no pending request: must be dropped
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kLineJson);
  auto first = backend.submit(R"({"id":"a"})");
  auto second = backend.submit(R"({"id":"b"})");
  EXPECT_EQ(first.get(), "ra");
  EXPECT_EQ(second.get(), "rb");
  EXPECT_FALSE(backend.stats().binary);
  EXPECT_EQ(backend.stats().requests, 2u);
  server.join();
}

TEST(TcpBackendBinary, UpgradesAndMatchesOutOfOrderResponses) {
  const FdPair fds = make_fd_pair();
  std::atomic<bool> stats_checked{false};
  std::thread server([fd = fds.server, &stats_checked] {
    ASSERT_TRUE(accept_upgrade(fd));
    std::string carry;
    std::vector<wire::Frame> requests;
    for (int i = 0; i < 3; ++i) {
      const auto frame = read_frame_fd(fd, &carry);
      ASSERT_TRUE(frame.has_value());
      EXPECT_EQ(frame->type, wire::FrameType::kRequest);
      requests.push_back(*frame);
    }
    // Answer in REVERSE order: only the id matching can sort this out.
    for (auto it = requests.rbegin(); it != requests.rend(); ++it) {
      write_response_frame(fd, it->id, "response to " + it->payload);
    }
    // Keep the connection open until the main thread has read stats():
    // Stats::binary reports on the LIVE connection, and closing here would
    // race the reader's EOF teardown against that check.
    while (!stats_checked.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kAuto);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(backend.submit("req" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
              "response to req" + std::to_string(i));
  }
  const TcpBackend::Stats stats = settled_stats(backend, 3);
  stats_checked.store(true);
  EXPECT_TRUE(stats.binary);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_GE(stats.batches, 1u);
  server.join();
}

TEST(TcpBackendNegotiation, AutoFallsBackToLinesOnTypedError) {
  const FdPair fds = make_fd_pair();
  std::thread server([fd = fds.server] {
    // A pre-wire server: the hello is just an unparseable request to it.
    const auto hello = read_line_fd(fd);
    ASSERT_TRUE(hello.has_value());
    EXPECT_TRUE(wire::is_hello_line(*hello));
    write_all(fd, serialize_error("", "unknown key: hello") + "\n");
    const auto line = read_line_fd(fd);  // client downshifted to line-JSON
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(*line, "legacy request");
    write_all(fd, "legacy response\n");
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kAuto);
  EXPECT_EQ(backend.submit("legacy request").get(), "legacy response");
  EXPECT_FALSE(backend.stats().binary);
  server.join();
}

TEST(TcpBackendNegotiation, BinaryModeRefusalIsABackendError) {
  const FdPair fds = make_fd_pair();
  std::thread server([fd = fds.server] {
    const auto hello = read_line_fd(fd);
    ASSERT_TRUE(hello.has_value());
    write_all(fd, serialize_error("", "unknown key: hello") + "\n");
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kBinary);
  EXPECT_THROW(backend.submit("req").get(), BackendError);
  server.join();
}

TEST(TcpBackendBinary, ResponsesSplitAcrossReadsStillMatch) {
  const FdPair fds = make_fd_pair();
  std::thread server([fd = fds.server] {
    ASSERT_TRUE(accept_upgrade(fd));
    std::string carry;
    const auto request = read_frame_fd(fd, &carry);
    ASSERT_TRUE(request.has_value());
    std::string encoded;
    wire::append_frame(encoded, wire::FrameType::kResponse, request->id,
                       R"({"id":"torn-but-whole"})");
    // Dribble the frame out in three writes with pauses: the client's reader
    // must treat short reads mid-header and mid-payload as "need more".
    write_all(fd, encoded.substr(0, 7));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    write_all(fd, encoded.substr(7, 17));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    write_all(fd, encoded.substr(24));
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kAuto);
  EXPECT_EQ(backend.submit("req").get(), R"({"id":"torn-but-whole"})");
  server.join();
}

TEST(TcpBackendBinary, TornMidFrameFailsAllPending) {
  const FdPair fds = make_fd_pair();
  std::thread server([fd = fds.server] {
    ASSERT_TRUE(accept_upgrade(fd));
    std::string carry;
    const auto first = read_frame_fd(fd, &carry);
    ASSERT_TRUE(first.has_value());
    const auto second = read_frame_fd(fd, &carry);
    ASSERT_TRUE(second.has_value());
    // Half a response header, then a hard close: the stream dies mid-frame.
    std::string encoded;
    wire::append_frame(encoded, wire::FrameType::kResponse, first->id, "lost");
    write_all(fd, encoded.substr(0, wire::kHeaderSize / 2));
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kAuto);
  auto first = backend.submit("one");
  auto second = backend.submit("two");
  EXPECT_THROW(first.get(), BackendError);
  EXPECT_THROW(second.get(), BackendError);
  server.join();
}

TEST(TcpBackendBinary, UnsolicitedResponseIdIsIgnored) {
  const FdPair fds = make_fd_pair();
  std::thread server([fd = fds.server] {
    ASSERT_TRUE(accept_upgrade(fd));
    std::string carry;
    const auto request = read_frame_fd(fd, &carry);
    ASSERT_TRUE(request.has_value());
    write_response_frame(fd, request->id + 999, "nobody asked");
    write_response_frame(fd, request->id, "the real one");
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kAuto);
  EXPECT_EQ(backend.submit("req").get(), "the real one");
  server.join();
}

TEST(TcpBackendAdopted, BrokenAdoptedStreamFailsFastForever) {
  const FdPair fds = make_fd_pair();
  ::close(fds.server);  // the peer is gone before the first submit
  TcpBackend backend("b0", fds.client, WireMode::kLineJson);
  EXPECT_THROW(backend.submit("one").get(), BackendError);
  // No endpoint to reconnect to: later submits fail instead of hanging.
  EXPECT_THROW(backend.submit("two").get(), BackendError);
}

// --- the submit()-blocks-behind-a-full-socket regression --------------------

TEST(TcpBackendWriteQueue, SubmitNeverBlocksOnAFullSocketBuffer) {
  constexpr int kRequests = 256;
  const std::string big_line(8192, 'x');

  const FdPair fds = make_fd_pair();
  // Shrink both buffers so the burst cannot fit in kernel space: the writer
  // thread WILL block in sendmsg() while the server withholds its reads.
  const int small = 4096;
  ::setsockopt(fds.client, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(fds.server, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  std::atomic<bool> all_submitted{false};
  std::thread server([fd = fds.server, &all_submitted] {
    // Withhold ALL reads until every submit() has returned.  The old
    // implementation sent under the submit lock, so submit #k would block
    // here forever once the socket buffer filled — this test would hang.
    while (!all_submitted.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::string responses;
    for (int i = 0; i < kRequests; ++i) {
      const auto line = read_line_fd(fd);
      ASSERT_TRUE(line.has_value()) << "request " << i;
      responses += "r" + std::to_string(i) + "\n";
    }
    write_all(fd, responses);
    ::close(fd);
  });

  TcpBackend backend("b0", fds.client, WireMode::kLineJson);
  std::vector<std::future<std::string>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(backend.submit(big_line));  // must never block
  }
  all_submitted.store(true);

  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
              "r" + std::to_string(i));
  }
  const TcpBackend::Stats stats =
      settled_stats(backend, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.messages, static_cast<std::uint64_t>(kRequests));
  // The whole point of the aggregation queue: a burst reaches the kernel in
  // far fewer gathered writes than messages.
  EXPECT_LT(stats.batches, static_cast<std::uint64_t>(kRequests) / 4);
  server.join();
}

// --- the EINTR-on-read regression -------------------------------------------

extern "C" void eintr_test_noop_handler(int) {}

TEST(TcpBackendSignals, ReaderRetriesEintrInsteadOfTearingDown) {
  // A handler without SA_RESTART makes blocking reads return EINTR for real.
  struct sigaction action {};
  action.sa_handler = eintr_test_noop_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  sigset_t usr1;
  sigemptyset(&usr1);
  sigaddset(&usr1, SIGUSR1);
  sigset_t original_mask;

  // Spawn the fake server with SIGUSR1 blocked (it inherits the mask), so
  // process-directed signals can only land on the backend's IO threads.
  ASSERT_EQ(::pthread_sigmask(SIG_BLOCK, &usr1, &original_mask), 0);
  const FdPair fds = make_fd_pair();
  std::thread server([fd = fds.server] {
    const auto line = read_line_fd(fd);
    ASSERT_TRUE(line.has_value());
    // Hold the response back while the test showers the process with
    // signals: the client's reader sits in a blocking read the whole time.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    write_all(fd, "survived\n");
    ::close(fd);
  });
  // Unblock before the first submit so the reader/writer threads it spawns
  // inherit an UNBLOCKED mask...
  ASSERT_EQ(::pthread_sigmask(SIG_SETMASK, &original_mask, nullptr), 0);
  TcpBackend backend("b0", fds.client, WireMode::kLineJson);
  auto future = backend.submit("ping");
  // ...then block in this thread too: the IO threads are now the only
  // delivery targets for a process-directed SIGUSR1.
  ASSERT_EQ(::pthread_sigmask(SIG_BLOCK, &usr1, nullptr), 0);
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(::kill(::getpid(), SIGUSR1), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The regression: an EINTR-interrupted read was treated as connection loss,
  // failing this future with BackendError instead of answering it.
  EXPECT_EQ(future.get(), "survived");

  server.join();
  ASSERT_EQ(::pthread_sigmask(SIG_SETMASK, &original_mask, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGUSR1, &previous, nullptr), 0);
}

// --- reconnect and endpoint moves -------------------------------------------

/// One scripted binary-mode exchange per accepted connection, then close —
/// the client discovers the loss via EOF (reader) or a failed send (writer).
void serve_one_binary_connection(int listener, const std::string& reply) {
  const int fd = ::accept(listener, nullptr, nullptr);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(accept_upgrade(fd));
  std::string carry;
  const auto request = read_frame_fd(fd, &carry);
  ASSERT_TRUE(request.has_value());
  write_response_frame(fd, request->id, reply);
  ::close(fd);
}

TEST(TcpBackendReconnect, ReconnectsAndRenegotiatesAfterPeerCloses) {
  std::uint16_t port = 0;
  const int listener = listen_ephemeral(&port);
  std::thread server([listener] {
    serve_one_binary_connection(listener, "first life");
    serve_one_binary_connection(listener, "second life");
  });

  TcpBackend backend("b0", port);
  EXPECT_EQ(backend.submit("one").get(), "first life");
  // The peer closed after answering.  Whether the reader has noticed yet or
  // the next submit trips over the dead stream, the request after the close
  // must be served by a fresh, re-negotiated connection.
  for (int attempt = 0;; ++attempt) {
    try {
      EXPECT_EQ(backend.submit("two").get(), "second life");
      break;
    } catch (const BackendError&) {
      // The submit raced the teardown; the reconnect happens on retry.
      ASSERT_LT(attempt, 10);
    }
  }
  // No stats().binary check here: the peer closes right after answering, so
  // by now the reader may already have torn the connection down.
  EXPECT_EQ(backend.stats().reconnects, 2u);
  server.join();
  ::close(listener);
}

TEST(TcpBackendReconnect, SetPortMovesTheEndpoint) {
  std::uint16_t old_port = 0;
  std::uint16_t new_port = 0;
  const int old_listener = listen_ephemeral(&old_port);
  const int new_listener = listen_ephemeral(&new_port);
  std::thread old_server(
      [old_listener] { serve_one_binary_connection(old_listener, "old home"); });
  std::thread new_server(
      [new_listener] { serve_one_binary_connection(new_listener, "new home"); });

  TcpBackend backend("b0", old_port);
  EXPECT_EQ(backend.submit("one").get(), "old home");
  EXPECT_EQ(backend.port(), old_port);

  // An autoscaled respawn: same fleet name (same rendezvous keys), new
  // ephemeral endpoint.
  backend.set_port(new_port);
  EXPECT_EQ(backend.port(), new_port);
  EXPECT_EQ(backend.submit("two").get(), "new home");
  EXPECT_EQ(backend.stats().reconnects, 2u);

  old_server.join();
  new_server.join();
  ::close(old_listener);
  ::close(new_listener);
}

// --- jittered exponential reconnect backoff ---------------------------------

/// A loopback port that refuses connections: bind it, read it, free it.
std::uint16_t dead_port() {
  std::uint16_t port = 0;
  const int listener = listen_ephemeral(&port);
  ::close(listener);
  return port;
}

TEST(TcpBackendBackoff, FailsFastInsideTheWindowAndDoublesOnRepeat) {
  const std::uint16_t port = dead_port();
  Registry registry;
  TcpBackend backend("b0", port, "127.0.0.1", WireMode::kAuto, &registry);
  backend.set_reconnect_policy({.base_ms = 200, .max_ms = 800});

  // First submit dials the dead port, fails, and arms a [100, 200] ms window.
  EXPECT_THROW(backend.submit("one").get(), BackendError);
  EXPECT_EQ(backend.stats().connect_failures, 1u);
  EXPECT_EQ(registry.counter("wire.connect_failures"), 1u);
  const double first_wait = registry.gauge("wire.backoff_ms");
  EXPECT_GE(first_wait, 100.0);
  EXPECT_LE(first_wait, 200.0);

  // Inside the window, submits fail fast with a typed backoff error — the
  // dead endpoint is NOT re-dialed (no reconnect storm).
  try {
    backend.submit("two").get();
    FAIL() << "expected a fail-fast BackendError inside the backoff window";
  } catch (const BackendError& error) {
    EXPECT_NE(std::string(error.what()).find("backoff"), std::string::npos);
  }
  EXPECT_EQ(backend.stats().backoff_skips, 1u);
  EXPECT_EQ(backend.stats().connect_failures, 1u);  // still the one dial

  // Once the window expires the next submit really dials again; the second
  // consecutive failure doubles the window to [200, 400] ms.
  std::this_thread::sleep_for(std::chrono::milliseconds(220));
  EXPECT_THROW(backend.submit("three").get(), BackendError);
  EXPECT_EQ(backend.stats().connect_failures, 2u);
  const double second_wait = registry.gauge("wire.backoff_ms");
  EXPECT_GE(second_wait, 200.0);
  EXPECT_LE(second_wait, 400.0);

  // A respawned replica moves the endpoint: set_port forgets the backoff, the
  // next submit dials immediately, and success resets the whole ladder.
  std::uint16_t live_port = 0;
  const int listener = listen_ephemeral(&live_port);
  std::thread server(
      [listener] { serve_one_binary_connection(listener, "recovered"); });
  backend.set_port(live_port);
  EXPECT_EQ(backend.submit("four").get(), "recovered");
  EXPECT_EQ(backend.stats().reconnects, 1u);
  EXPECT_EQ(registry.gauge("wire.backoff_ms"), 0.0);
  EXPECT_EQ(registry.counter("wire.reconnects"), 1u);
  server.join();
  ::close(listener);
}

TEST(TcpBackendBackoff, JitterIsSeededPerNameSoDrillsReplay) {
  // Same name + same policy => bit-identical jitter draws (the splitmix64
  // chain is seeded off the backend name, docs/CHAOS.md).  Distinct fleet
  // names walk distinct chains, so a fleet never thunders in phase.
  const std::uint16_t port = dead_port();
  const ReconnectPolicy policy{.base_ms = 400, .max_ms = 6400};
  Registry first_registry;
  Registry second_registry;
  TcpBackend first("replica-7", port, "127.0.0.1", WireMode::kAuto,
                   &first_registry);
  TcpBackend second("replica-7", port, "127.0.0.1", WireMode::kAuto,
                    &second_registry);
  first.set_reconnect_policy(policy);
  second.set_reconnect_policy(policy);
  EXPECT_THROW(first.submit("x").get(), BackendError);
  EXPECT_THROW(second.submit("x").get(), BackendError);
  const double wait = first_registry.gauge("wire.backoff_ms");
  EXPECT_EQ(wait, second_registry.gauge("wire.backoff_ms"));
  EXPECT_GE(wait, 200.0);
  EXPECT_LE(wait, 400.0);
}

}  // namespace
}  // namespace pglb
