#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pglb {
namespace {

TEST(EdgeList, StartsEmpty) {
  EdgeList g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
}

TEST(EdgeList, AddStoresEdges) {
  EdgeList g(3);
  g.add(0, 1);
  g.add(2, 0);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{2, 0}));
}

TEST(EdgeList, AddRejectsOutOfRangeEndpoints) {
  EdgeList g(3);
  EXPECT_THROW(g.add(3, 0), std::out_of_range);
  EXPECT_THROW(g.add(0, 3), std::out_of_range);
}

TEST(EdgeList, BulkConstructorValidates) {
  std::vector<Edge> edges = {{0, 1}, {1, 5}};
  EXPECT_THROW(EdgeList(3, edges), std::out_of_range);
  edges[1] = {1, 2};
  const EdgeList g(3, edges);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, EnsureVerticesOnlyGrows) {
  EdgeList g(3);
  g.ensure_vertices(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  g.ensure_vertices(4);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(EdgeList, DedupRemovesDuplicatesAndLoops) {
  EdgeList g(4);
  g.add(0, 1);
  g.add(0, 1);
  g.add(1, 1);  // self-loop
  g.add(2, 3);
  g.add(0, 1);
  const std::size_t removed = g.dedup_and_strip_self_loops();
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, DedupKeepsDistinctDirections) {
  EdgeList g(2);
  g.add(0, 1);
  g.add(1, 0);
  EXPECT_EQ(g.dedup_and_strip_self_loops(), 0u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, DegreeVectors) {
  // 0 -> 1, 0 -> 2, 1 -> 2
  EdgeList g(3);
  g.add(0, 1);
  g.add(0, 2);
  g.add(1, 2);
  const auto out = g.out_degrees();
  const auto in = g.in_degrees();
  const auto total = g.total_degrees();
  EXPECT_EQ(out, (std::vector<EdgeId>{2, 1, 0}));
  EXPECT_EQ(in, (std::vector<EdgeId>{0, 1, 2}));
  EXPECT_EQ(total, (std::vector<EdgeId>{2, 2, 2}));
}

TEST(EdgeList, StarDegrees) {
  const auto g = testing::star_graph(5);
  const auto out = g.out_degrees();
  EXPECT_EQ(out[0], 4u);
  for (VertexId v = 1; v < 5; ++v) EXPECT_EQ(out[v], 0u);
}

}  // namespace
}  // namespace pglb
