#include "core/proxy_suite.hpp"

#include <gtest/gtest.h>

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;  // tiny proxies: tests stay fast

TEST(ProxySuite, GeneratesThreeTableTwoProxies) {
  ProxySuite suite(kScale);
  ASSERT_EQ(suite.proxies().size(), 3u);
  EXPECT_DOUBLE_EQ(suite.proxies()[0].alpha, 1.95);
  EXPECT_DOUBLE_EQ(suite.proxies()[1].alpha, 2.1);
  EXPECT_DOUBLE_EQ(suite.proxies()[2].alpha, 2.3);
  for (const auto& proxy : suite.proxies()) {
    EXPECT_GT(proxy.graph.num_edges(), 0u);
    EXPECT_EQ(proxy.stats.num_vertices, proxy.graph.num_vertices());
  }
}

TEST(ProxySuite, DensityFollowsAlphaOrdering) {
  ProxySuite suite(kScale);
  EXPECT_GT(suite.proxies()[0].graph.num_edges(), suite.proxies()[1].graph.num_edges());
  EXPECT_GT(suite.proxies()[1].graph.num_edges(), suite.proxies()[2].graph.num_edges());
}

TEST(ProxySuite, NearestSelectsByAlpha) {
  ProxySuite suite(kScale);
  EXPECT_DOUBLE_EQ(suite.nearest(1.9).alpha, 1.95);
  EXPECT_DOUBLE_EQ(suite.nearest(2.11).alpha, 2.1);
  EXPECT_DOUBLE_EQ(suite.nearest(5.0).alpha, 2.3);
}

TEST(ProxySuite, EnsureCoverageReusesCoveredRange) {
  ProxySuite suite(kScale);
  const auto before = suite.proxies().size();
  (void)suite.ensure_coverage(2.05);  // inside the covered band
  EXPECT_EQ(suite.proxies().size(), before);
}

TEST(ProxySuite, EnsureCoverageExtendsForOutliers) {
  ProxySuite suite(kScale);
  const auto& extra = suite.ensure_coverage(3.2);  // far from {1.95, 2.1, 2.3}
  EXPECT_EQ(suite.proxies().size(), 4u);
  EXPECT_DOUBLE_EQ(extra.alpha, 3.2);
  // And a second request for the same alpha is served from the pool.
  (void)suite.ensure_coverage(3.25);
  EXPECT_EQ(suite.proxies().size(), 4u);
}

TEST(ProxySuite, TracksGenerationTime) {
  ProxySuite suite(kScale);
  EXPECT_GT(suite.generation_seconds(), 0.0);
}

TEST(ProxySuite, RejectsBadScale) {
  EXPECT_THROW(ProxySuite(0.0), std::invalid_argument);
  EXPECT_THROW(ProxySuite(1.5), std::invalid_argument);
}

TEST(ProxySuite, DeterministicPerSeed) {
  ProxySuite a(kScale, 5);
  ProxySuite b(kScale, 5);
  EXPECT_EQ(a.proxies()[0].graph.num_edges(), b.proxies()[0].graph.num_edges());
  ProxySuite c(kScale, 6);
  EXPECT_NE(a.proxies()[0].graph.num_edges(), c.proxies()[0].graph.num_edges());
}

}  // namespace
}  // namespace pglb
