// Property-based sweeps over ALL partitioners: invariants that must hold for
// every algorithm, seed, machine count and weight vector.

#include <gtest/gtest.h>

#include <numeric>

#include "gen/chung_lu.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "partition/metrics.hpp"
#include "partition/weights.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

struct Config {
  PartitionerKind kind;
  MachineId machines;
  std::uint64_t seed;
};

void PrintTo(const Config& c, std::ostream* os) {
  *os << to_string(c.kind) << "/m" << c.machines << "/s" << c.seed;
}

class PartitionerProperties : public ::testing::TestWithParam<Config> {
 protected:
  static EdgeList graph() {
    PowerLawConfig config;
    config.num_vertices = 8000;
    config.alpha = 2.05;
    config.seed = 3;
    return generate_powerlaw(config);
  }
};

TEST_P(PartitionerProperties, EveryEdgeAssignedInRange) {
  const auto [kind, machines, seed] = GetParam();
  const auto g = graph();
  const auto a = make_partitioner(kind)->partition(g, uniform_weights(machines), seed);
  ASSERT_EQ(a.edge_to_machine.size(), g.num_edges());
  ASSERT_EQ(a.num_machines, machines);
  for (const MachineId m : a.edge_to_machine) ASSERT_LT(m, machines);
}

TEST_P(PartitionerProperties, EdgeCountsSumToTotal) {
  const auto [kind, machines, seed] = GetParam();
  const auto g = graph();
  const auto a = make_partitioner(kind)->partition(g, uniform_weights(machines), seed);
  const auto counts = a.machine_edge_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), EdgeId{0}), g.num_edges());
}

TEST_P(PartitionerProperties, DeterministicAcrossCalls) {
  const auto [kind, machines, seed] = GetParam();
  const auto g = graph();
  const auto p = make_partitioner(kind);
  const auto a = p->partition(g, uniform_weights(machines), seed);
  const auto b = p->partition(g, uniform_weights(machines), seed);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
}

TEST_P(PartitionerProperties, RaisingAWeightNeverShrinksItsShare) {
  // Monotonicity of heterogeneity awareness: doubling one machine's weight
  // must not decrease the share of edges it receives.
  const auto [kind, machines, seed] = GetParam();
  const auto g = graph();
  const auto p = make_partitioner(kind);

  auto share_of_first = [&](std::span<const double> weights) {
    const auto a = p->partition(g, weights, seed);
    const auto counts = a.machine_edge_counts();
    return static_cast<double>(counts[0]) / static_cast<double>(g.num_edges());
  };

  std::vector<double> base(machines, 1.0);
  const double before = share_of_first(base);
  base[0] = 2.5;
  const double after = share_of_first(base);
  EXPECT_GE(after, before * 0.98);  // allow heuristic jitter, forbid reversals
  if (machines > 1) {
    EXPECT_GT(after, 1.0 / static_cast<double>(machines));
  }
}

TEST_P(PartitionerProperties, ReplicationFactorWithinBounds) {
  const auto [kind, machines, seed] = GetParam();
  const auto g = graph();
  const auto weights = uniform_weights(machines);
  const auto a = make_partitioner(kind)->partition(g, weights, seed);
  const auto metrics = compute_partition_metrics(g, a, weights);
  EXPECT_GE(metrics.replication_factor, 1.0);
  EXPECT_LE(metrics.replication_factor, static_cast<double>(machines));
}

std::vector<Config> sweep_configs() {
  std::vector<Config> configs;
  for (const PartitionerKind kind : extended_partitioner_kinds()) {
    for (const MachineId machines : {1u, 4u, 9u, 16u}) {
      if (kind == PartitionerKind::kGrid) {
        // grid requires square counts; all of the above are square
      }
      for (const std::uint64_t seed : {1ull, 42ull}) {
        configs.push_back({kind, machines, seed});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PartitionerProperties,
                         ::testing::ValuesIn(sweep_configs()));

TEST(PartitionerProperties, EmptyGraphYieldsEmptyAssignment) {
  const EdgeList empty(100);
  for (const PartitionerKind kind : extended_partitioner_kinds()) {
    const auto a = make_partitioner(kind)->partition(empty, uniform_weights(4), 1);
    EXPECT_TRUE(a.edge_to_machine.empty()) << to_string(kind);
  }
}

TEST(PartitionerProperties, MultigraphEdgesAllAssigned) {
  // Repeated edges and self-loops must not break any streaming pass.
  EdgeList g(4);
  for (int i = 0; i < 50; ++i) g.add(0, 1);
  g.add(2, 2);
  g.add(3, 2);
  for (const PartitionerKind kind : extended_partitioner_kinds()) {
    const auto a = make_partitioner(kind)->partition(g, uniform_weights(4), 1);
    EXPECT_EQ(a.edge_to_machine.size(), g.num_edges()) << to_string(kind);
  }
}

}  // namespace
}  // namespace pglb
