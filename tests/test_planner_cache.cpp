// Profile cache (LRU + single-flight) and the Planner built on top of it:
// hit/miss accounting, eviction, key stability, and the byte-identical
// cached-vs-fresh plan guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "service/planner.hpp"
#include "service/profile_cache.hpp"

namespace pglb {
namespace {

ProfileCache::EntryPtr entry_with_alpha(double alpha) {
  auto entry = std::make_shared<ProfileEntry>();
  entry->proxy_alpha = alpha;
  return entry;
}

TEST(ProfileCache, ZeroCapacityRejected) {
  EXPECT_THROW(ProfileCache(0), std::invalid_argument);
}

TEST(ProfileCache, HitAndMissAccounting) {
  ProfileCache cache(4);
  int computes = 0;
  const auto compute = [&] { ++computes; return entry_with_alpha(2.0); };

  EXPECT_DOUBLE_EQ(cache.get("k1", compute)->proxy_alpha, 2.0);
  EXPECT_EQ(computes, 1);
  cache.get("k1", compute);
  cache.get("k1", compute);
  EXPECT_EQ(computes, 1);  // served from cache, compute not re-run

  const ProfileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.capacity, 4u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);
}

TEST(ProfileCache, LruEviction) {
  ProfileCache cache(2);
  int computes = 0;
  const auto compute = [&] { ++computes; return entry_with_alpha(2.0); };

  cache.get("a", compute);
  cache.get("b", compute);
  cache.get("a", compute);  // refresh a: LRU order is now [a, b]
  cache.get("c", compute);  // evicts b
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().size, 2u);

  computes = 0;
  cache.get("a", compute);
  cache.get("c", compute);
  EXPECT_EQ(computes, 0);  // both survived
  cache.get("b", compute);
  EXPECT_EQ(computes, 1);  // b was the evicted one
}

TEST(ProfileCache, FailedComputeIsRetried) {
  ProfileCache cache(4);
  std::atomic<int> attempts{0};
  const auto failing = [&]() -> ProfileCache::EntryPtr {
    ++attempts;
    throw std::runtime_error("profiling exploded");
  };
  EXPECT_THROW(cache.get("k", failing), std::runtime_error);
  EXPECT_THROW(cache.get("k", failing), std::runtime_error);
  EXPECT_EQ(attempts.load(), 2);  // failure was not cached

  const auto ok = [&] { return entry_with_alpha(2.3); };
  EXPECT_DOUBLE_EQ(cache.get("k", ok)->proxy_alpha, 2.3);
}

TEST(ProfileCache, SingleFlightUnderContention) {
  ProfileCache cache(4);
  std::atomic<int> computes{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<ProfileCache::EntryPtr> results(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cache.get("shared", [&] {
        ++computes;
        return entry_with_alpha(1.95);
      });
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(computes.load(), 1);  // exactly one profiling run
  for (const auto& result : results) {
    EXPECT_EQ(result.get(), results[0].get());  // everyone shares the entry
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(kThreads - 1));
}

TEST(ProfileCache, ClearKeepsCounters) {
  ProfileCache cache(4);
  cache.get("k", [] { return entry_with_alpha(2.0); });
  cache.clear();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.get("k", [] { return entry_with_alpha(2.0); });
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ProfileCache, InvalidateEvictsBumpsGenerationAndCounts) {
  ProfileCache cache(4);
  int computes = 0;
  const auto compute = [&] { ++computes; return entry_with_alpha(2.0); };

  cache.get("k", compute);
  EXPECT_EQ(cache.generation("k"), 0u);
  EXPECT_TRUE(cache.invalidate("k"));
  ProfileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.evictions, 0u);  // explicit, not capacity pressure
  EXPECT_EQ(cache.generation("k"), 1u);

  // The next get is a genuine miss that recomputes.
  cache.get("k", compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.stats().misses, 2u);

  // Invalidating an absent key is a no-op on every counter.
  EXPECT_FALSE(cache.invalidate("never_inserted"));
  stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(cache.generation("never_inserted"), 0u);
}

TEST(ProfileCache, GenerationsReportNonZeroKeySorted) {
  ProfileCache cache(4);
  const auto compute = [] { return entry_with_alpha(2.0); };
  cache.get("b", compute);
  cache.get("a", compute);
  cache.get("c", compute);
  cache.invalidate("c");
  cache.invalidate("b");
  cache.get("b", compute);
  cache.invalidate("b");

  const auto generations = cache.generations();
  ASSERT_EQ(generations.size(), 2u);  // "a" was never invalidated
  EXPECT_EQ(generations[0].first, "b");
  EXPECT_EQ(generations[0].second, 2u);
  EXPECT_EQ(generations[1].first, "c");
  EXPECT_EQ(generations[1].second, 1u);
}

// --- Planner over the cache ------------------------------------------------

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;  // keep profiling misses fast in tests
  return options;
}

PlanRequest basic_request() {
  PlanRequest request;
  request.id = "t1";
  request.app = AppKind::kPageRank;
  request.machines = {"m4.2xlarge", "c4.2xlarge"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000;
  return request;
}

TEST(PlannerCache, RepeatRequestsHit) {
  Planner planner(tiny_options());
  const PlanRequest request = basic_request();
  EXPECT_TRUE(planner.plan(request).ok);
  EXPECT_TRUE(planner.plan(request).ok);
  EXPECT_TRUE(planner.plan(request).ok);
  const ProfileCacheStats stats = planner.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(PlannerCache, CachedPlanByteIdenticalToFresh) {
  const PlanRequest request = basic_request();

  Planner warm(tiny_options());
  const std::string first = serialize_response(warm.plan(request));   // miss
  const std::string cached = serialize_response(warm.plan(request));  // hit
  EXPECT_EQ(cached, first);

  // A brand-new planner (empty cache) profiles from scratch and must still
  // produce the exact same bytes.
  Planner fresh(tiny_options());
  EXPECT_EQ(serialize_response(fresh.plan(request)), first);

  EXPECT_EQ(warm.cache_stats().hits, 1u);
  EXPECT_EQ(fresh.cache_stats().hits, 0u);
}

TEST(PlannerCache, KeyIgnoresClusterComposition) {
  // The paper's observation: CCR profiles depend on machine *classes*, not on
  // how many of each the cluster has.  [A,B], [B,A] and [A,A,B] share a key.
  Planner planner(tiny_options());
  PlanRequest request = basic_request();
  const std::string key = planner.profile_key(request);

  PlanRequest reordered = request;
  reordered.machines = {"c4.2xlarge", "m4.2xlarge"};
  EXPECT_EQ(planner.profile_key(reordered), key);

  PlanRequest duplicated = request;
  duplicated.machines = {"m4.2xlarge", "m4.2xlarge", "c4.2xlarge"};
  EXPECT_EQ(planner.profile_key(duplicated), key);

  planner.plan(request);
  planner.plan(reordered);
  planner.plan(duplicated);
  EXPECT_EQ(planner.cache_stats().misses, 1u);
  EXPECT_EQ(planner.cache_stats().hits, 2u);
}

TEST(PlannerCache, KeySeparatesAppAndCluster) {
  Planner planner(tiny_options());
  const PlanRequest request = basic_request();

  PlanRequest other_app = request;
  other_app.app = AppKind::kColoring;
  EXPECT_NE(planner.profile_key(other_app), planner.profile_key(request));

  PlanRequest other_cluster = request;
  other_cluster.machines = {"xeon_server_s", "xeon_server_l"};
  EXPECT_NE(planner.profile_key(other_cluster), planner.profile_key(request));
}

TEST(PlannerCache, NearbyAlphasShareAProxy) {
  // Graphs whose fitted alphas resolve to the same proxy share a profile —
  // that is what pushes real-workload hit rates past 90%.
  Planner planner(tiny_options());
  PlanRequest a = basic_request();
  a.alpha = 2.08;
  PlanRequest b = basic_request();
  b.alpha = 2.12;
  EXPECT_EQ(planner.profile_key(a), planner.profile_key(b));
  planner.plan(a);
  planner.plan(b);
  EXPECT_EQ(planner.cache_stats().misses, 1u);
  EXPECT_EQ(planner.cache_stats().hits, 1u);
}

TEST(PlannerCache, ErrorsDoNotPolluteCache) {
  Planner planner(tiny_options());
  PlanRequest bad = basic_request();
  bad.machines = {"not_a_machine"};
  const PlanResponse response = planner.plan(bad);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.id, "t1");
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(planner.cache_stats().misses, 0u);
  EXPECT_EQ(planner.cache_stats().size, 0u);
}

TEST(PlannerCache, InvalidateProfileForcesAByteIdenticalReprofile) {
  // The delta planner's drift path: invalidate the pinned key, re-plan, and
  // the fresh profile must reproduce the exact response bytes (determinism),
  // with the extra miss and the invalidation both observable.
  Planner planner(tiny_options());
  const PlanRequest request = basic_request();
  const std::string first = serialize_response(planner.plan(request));
  const std::string key = planner.profile_key(request);

  EXPECT_TRUE(planner.invalidate_profile(key));
  EXPECT_FALSE(planner.invalidate_profile(key));  // already evicted

  EXPECT_EQ(serialize_response(planner.plan(request)), first);
  const ProfileCacheStats stats = planner.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.invalidations, 1u);

  const auto generations = planner.cache_generations();
  ASSERT_EQ(generations.size(), 1u);
  EXPECT_EQ(generations[0].first, key);
  EXPECT_EQ(generations[0].second, 1u);
}

TEST(PlannerCache, PlanFieldsAreConsistent) {
  Planner planner(tiny_options());
  const PlanResponse response = planner.plan(basic_request());
  ASSERT_TRUE(response.ok);
  ASSERT_EQ(response.ccr.size(), 2u);
  ASSERT_EQ(response.weights.size(), 2u);
  // Eq. 1: slowest machine pinned at 1, everything else at least as capable.
  EXPECT_DOUBLE_EQ(*std::min_element(response.ccr.begin(), response.ccr.end()), 1.0);
  double weight_sum = 0.0;
  for (const double w : response.weights) weight_sum += w;
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_GT(response.replication_factor, 1.0);
  EXPECT_GT(response.makespan_seconds, 0.0);
  EXPECT_GT(response.energy_joules, 0.0);
  EXPECT_GT(response.cost_usd, 0.0);
  EXPECT_EQ(response.partitioner, "hybrid");
}

}  // namespace
}  // namespace pglb
