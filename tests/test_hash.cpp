#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace pglb {
namespace {

TEST(HashU64, SeedSeparatesDomains) {
  EXPECT_NE(hash_u64(1, 0), hash_u64(1, 1));
  EXPECT_EQ(hash_u64(1, 5), hash_u64(1, 5));
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashEdge, DirectionSensitive) {
  EXPECT_NE(hash_edge(3, 7), hash_edge(7, 3));
  EXPECT_EQ(hash_edge(3, 7, 42), hash_edge(3, 7, 42));
  EXPECT_NE(hash_edge(3, 7, 42), hash_edge(3, 7, 43));
}

TEST(HashToUnit, InUnitInterval) {
  for (std::uint64_t x : {0ull, 1ull, ~0ull, 0x8000'0000'0000'0000ull}) {
    const double u = hash_to_unit(splitmix64(x));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PrefixSum, ComputesInclusivePrefix) {
  const std::vector<double> w = {1.0, 2.0, 3.0};
  const auto cum = prefix_sum(w);
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_DOUBLE_EQ(cum[0], 1.0);
  EXPECT_DOUBLE_EQ(cum[1], 3.0);
  EXPECT_DOUBLE_EQ(cum[2], 6.0);
}

TEST(WeightedPick, EmptyWeightsReturnsZero) {
  EXPECT_EQ(weighted_pick(123, {}), 0u);
}

TEST(WeightedPick, SingleEntryAlwaysZero) {
  const std::vector<double> cum = {5.0};
  for (std::uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(weighted_pick(splitmix64(x), cum), 0u);
  }
}

TEST(WeightedPick, FollowsWeightDistribution) {
  // Weights 1:3 -> expect ~25% / ~75% over many distinct hashes.
  const std::vector<double> w = {1.0, 3.0};
  const auto cum = prefix_sum(w);
  std::array<int, 2> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[weighted_pick(splitmix64(i), cum)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.75, 0.01);
}

TEST(WeightedPick, ExtremeSkewStillReachesSmallMachine) {
  const std::vector<double> w = {0.01, 0.99};
  const auto cum = prefix_sum(w);
  int small = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    if (weighted_pick(splitmix64(i), cum) == 0) ++small;
  }
  EXPECT_NEAR(small / static_cast<double>(n), 0.01, 0.003);
}

TEST(WeightedPick, DeterministicForFixedHash) {
  const std::vector<double> w = {2.0, 1.0, 1.0};
  const auto cum = prefix_sum(w);
  EXPECT_EQ(weighted_pick(999, cum), weighted_pick(999, cum));
}

}  // namespace
}  // namespace pglb
