#include "gen/chung_lu.hpp"

#include <gtest/gtest.h>

#include "graph/stats.hpp"
#include "util/histogram.hpp"

namespace pglb {
namespace {

ChungLuConfig base_config() {
  ChungLuConfig config;
  config.num_vertices = 20'000;
  config.target_edges = 100'000;
  config.alpha = 2.1;
  config.seed = 3;
  return config;
}

TEST(ChungLu, HitsTargetEdgeCountExactly) {
  const auto g = generate_chung_lu(base_config());
  EXPECT_EQ(g.num_edges(), 100'000u);
  EXPECT_EQ(g.num_vertices(), 20'000u);
}

TEST(ChungLu, NoSelfLoops) {
  const auto g = generate_chung_lu(base_config());
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(ChungLu, DeterministicPerSeed) {
  const auto a = generate_chung_lu(base_config());
  const auto b = generate_chung_lu(base_config());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));

  auto config = base_config();
  config.seed = 4;
  const auto c = generate_chung_lu(config);
  bool any_diff = false;
  for (EdgeId i = 0; i < a.num_edges() && !any_diff; ++i) any_diff = a.edge(i) != c.edge(i);
  EXPECT_TRUE(any_diff);
}

TEST(ChungLu, ProducesSkewedDegrees) {
  const auto stats = compute_stats(generate_chung_lu(base_config()));
  EXPECT_GT(stats.degree_skew, 20.0);  // hubs exist
}

TEST(ChungLu, TailExponentRoughlyMatchesAlpha) {
  auto config = base_config();
  config.num_vertices = 60'000;
  config.target_edges = 400'000;
  config.locality = 0.0;  // isolate the Chung-Lu tail from rewiring
  const auto g = generate_chung_lu(config);
  const double fitted = fit_powerlaw_exponent(log_bin(out_degree_histogram(g)));
  EXPECT_GT(fitted, 1.4);
  EXPECT_LT(fitted, 3.0);
}

TEST(ChungLu, LocalityCreatesNearbyEdges) {
  auto config = base_config();
  config.locality = 1.0;  // every edge rewired locally
  config.locality_window = 0.001;
  const auto g = generate_chung_lu(config);
  const auto window = static_cast<std::uint64_t>(
      std::max(2.0, 0.001 * static_cast<double>(config.num_vertices)));
  for (const Edge& e : g.edges()) {
    const std::uint64_t forward_gap =
        (static_cast<std::uint64_t>(e.dst) + config.num_vertices - e.src) %
        config.num_vertices;
    EXPECT_LE(forward_gap, window);
    EXPECT_GE(forward_gap, 1u);
  }
}

TEST(ChungLu, RejectsInvalidAlpha) {
  auto config = base_config();
  config.alpha = 1.0;
  EXPECT_THROW(generate_chung_lu(config), std::invalid_argument);
}

TEST(ChungLu, TinyInputsYieldEmptyGraph) {
  ChungLuConfig config;
  config.num_vertices = 1;
  config.target_edges = 10;
  EXPECT_EQ(generate_chung_lu(config).num_edges(), 0u);
  config.num_vertices = 100;
  config.target_edges = 0;
  EXPECT_EQ(generate_chung_lu(config).num_edges(), 0u);
}

}  // namespace
}  // namespace pglb
