#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace pglb {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  const auto cli = make_cli({"prog", "--scale=0.5", "--name=foo"});
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(cli.get_string("name", ""), "foo");
}

TEST(Cli, ParsesSpaceForm) {
  const auto cli = make_cli({"prog", "--iters", "12"});
  EXPECT_EQ(cli.get_int("iters", 0), 12);
}

TEST(Cli, BareFlagIsTrue) {
  const auto cli = make_cli({"prog", "--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto cli = make_cli({"prog"});
  EXPECT_EQ(cli.get_int("iters", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0.25), 0.25);
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.has("iters"));
}

TEST(Cli, CollectsPositionals) {
  const auto cli = make_cli({"prog", "one", "--k=v", "two"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, RejectsMalformedNumbers) {
  const auto cli = make_cli({"prog", "--iters=abc", "--scale=1.2.3", "--flag=maybe"});
  EXPECT_THROW(cli.get_int("iters", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_double("scale", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, TracksUnusedKeys) {
  const auto cli = make_cli({"prog", "--used=1", "--typo=2"});
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, BooleanSpellings) {
  const auto cli = make_cli({"prog", "--a=yes", "--b=0", "--c=false"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_FALSE(cli.get_bool("c", true));
}

}  // namespace
}  // namespace pglb
