#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <string>
#include <version>

#include "util/parse.hpp"

namespace pglb {
namespace {

/// Switch LC_NUMERIC to a comma-decimal locale for one test, restoring the
/// previous locale on destruction.  available() is false when the host has no
/// such locale installed (the test then skips).
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() : previous_(std::setlocale(LC_NUMERIC, nullptr)) {
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        available_ = true;
        return;
      }
    }
  }
  ~CommaLocaleGuard() { std::setlocale(LC_NUMERIC, previous_.c_str()); }
  bool available() const noexcept { return available_; }

 private:
  std::string previous_;
  bool available_ = false;
};

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesEqualsForm) {
  const auto cli = make_cli({"prog", "--scale=0.5", "--name=foo"});
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 1.0), 0.5);
  EXPECT_EQ(cli.get_string("name", ""), "foo");
}

TEST(Cli, ParsesSpaceForm) {
  const auto cli = make_cli({"prog", "--iters", "12"});
  EXPECT_EQ(cli.get_int("iters", 0), 12);
}

TEST(Cli, BareFlagIsTrue) {
  const auto cli = make_cli({"prog", "--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto cli = make_cli({"prog"});
  EXPECT_EQ(cli.get_int("iters", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("scale", 0.25), 0.25);
  EXPECT_EQ(cli.get_string("name", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.has("iters"));
}

TEST(Cli, CollectsPositionals) {
  const auto cli = make_cli({"prog", "one", "--k=v", "two"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "one");
  EXPECT_EQ(cli.positional()[1], "two");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, RejectsMalformedNumbers) {
  const auto cli = make_cli({"prog", "--iters=abc", "--scale=1.2.3", "--flag=maybe"});
  EXPECT_THROW(cli.get_int("iters", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_double("scale", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, TracksUnusedKeys) {
  const auto cli = make_cli({"prog", "--used=1", "--typo=2"});
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, NumberParsingIsLocaleIndependent) {
  // Regression: get_double used std::strtod, which under a comma-decimal
  // locale stops at '.' — "--alpha=2.1" then failed to parse.
  const CommaLocaleGuard guard;
  if (!guard.available()) GTEST_SKIP() << "no comma-decimal locale installed";
  const auto cli = make_cli({"prog", "--alpha=2.1", "--iters=12", "--comma=2,5"});
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 2.1);
  EXPECT_EQ(cli.get_int("iters", 0), 12);
  // A comma is not a decimal separator on the command line in any locale.
  EXPECT_THROW(cli.get_double("comma", 0.0), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const auto cli = make_cli({"prog", "--a=yes", "--b=0", "--c=false"});
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_FALSE(cli.get_bool("c", true));
}

TEST(Parse, DoubleWholeStringOnly) {
  EXPECT_DOUBLE_EQ(*parse_double("2.1"), 2.1);
  EXPECT_DOUBLE_EQ(*parse_double("-3e-4"), -3e-4);
  EXPECT_DOUBLE_EQ(*parse_double("0.00390625"), 0.00390625);
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("2.1x").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("2,1").has_value());  // comma is never a decimal point
}

TEST(Parse, IntWholeStringOnly) {
  EXPECT_EQ(*parse_int("42"), 42);
  EXPECT_EQ(*parse_int("-7"), -7);
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(Parse, AcceptsStrtolCompatiblePrefix) {
  // strtoll/strtod accepted leading whitespace and an explicit '+' sign;
  // the from_chars-based parsers keep accepting those (`--threads +4`).
  EXPECT_EQ(*parse_int("+4"), 4);
  EXPECT_EQ(*parse_int(" \t42"), 42);
  EXPECT_EQ(*parse_int("  +7"), 7);
  EXPECT_DOUBLE_EQ(*parse_double("+2.1"), 2.1);
  EXPECT_DOUBLE_EQ(*parse_double(" 2.1"), 2.1);
  EXPECT_DOUBLE_EQ(*parse_double("+.5"), 0.5);
  // Only one sign, no inner/trailing whitespace, no whitespace-only input.
  EXPECT_FALSE(parse_int("+").has_value());
  EXPECT_FALSE(parse_int("+-4").has_value());
  EXPECT_FALSE(parse_int("++4").has_value());
  EXPECT_FALSE(parse_int("+ 4").has_value());
  EXPECT_FALSE(parse_int("4 ").has_value());
  EXPECT_FALSE(parse_int("   ").has_value());
  EXPECT_FALSE(parse_double("+-2.1").has_value());
  EXPECT_FALSE(parse_double("2.1 ").has_value());
}

TEST(Parse, RejectsHexPrefix) {
  // Stricter than strtod: numbers are decimal only ("0x10" was never valid
  // for ints — strtoll ran base 10 — and hex floats are deliberately out).
  EXPECT_FALSE(parse_int("0x10").has_value());
#if defined(__cpp_lib_to_chars)
  EXPECT_FALSE(parse_double("0x1p3").has_value());  // strtod fallback differs
#endif
}

TEST(Parse, FormatDoubleRoundTripsWithDot) {
  for (const double v : {2.1, 1.0 / 3.0, 6.1151409509545154, 1e300, -0.0}) {
    const std::string text = format_double(v);
    EXPECT_EQ(text.find(','), std::string::npos) << text;
    EXPECT_EQ(*parse_double(text), v) << text;  // shortest round-trip is exact
  }
}

}  // namespace
}  // namespace pglb
