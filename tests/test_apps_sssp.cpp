#include "apps/sssp.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "core/profiler.hpp"
#include "gen/powerlaw.hpp"
#include "graph/builder.hpp"
#include "partition/factory.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

WorkloadTraits traits_of(const EdgeList& g) {
  return traits_from_stats(compute_stats(g), 1.0);
}

DistributedGraph partition_with(const EdgeList& g, PartitionerKind kind,
                                MachineId machines) {
  const auto p = make_partitioner(kind);
  const auto a = p->partition(g, std::vector<double>(machines, 1.0), 53);
  return build_distributed(g, a);
}

/// Single-node BFS reference over the undirected view.
std::vector<std::uint32_t> bfs_reference(const EdgeList& g, VertexId source) {
  const Csr adj = build_undirected_csr(g);
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop();
    for (const VertexId u : adj.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  return dist;
}

TEST(Sssp, PathGraphDistances) {
  const auto g = testing::path_graph(6);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_sssp(g, dg, cluster, traits_of(g), /*source=*/0);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(out.distance[v], v);
  EXPECT_EQ(out.reached, 6u);
  EXPECT_TRUE(out.report.converged);
}

TEST(Sssp, UnreachableComponentStaysInfinite) {
  const auto g = testing::two_triangles();
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_sssp(g, dg, cluster, traits_of(g), /*source=*/0);
  EXPECT_EQ(out.reached, 3u);
  EXPECT_EQ(out.distance[4], kUnreachable);
}

TEST(Sssp, SourceBoundsChecked) {
  const auto g = testing::path_graph(4);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  EXPECT_THROW(run_sssp(g, dg, cluster, traits_of(g), /*source=*/4), std::out_of_range);
}

class SsspPartitionInvariance : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(SsspPartitionInvariance, MatchesBfsReference) {
  PowerLawConfig config;
  config.num_vertices = 3000;
  config.alpha = 2.2;
  config.seed = 71;
  const auto g = generate_powerlaw(config);
  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, GetParam(), cluster.size());
  const auto out = run_sssp(g, dg, cluster, traits_of(g), /*source=*/1);
  EXPECT_EQ(out.distance, bfs_reference(g, 1));
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, SsspPartitionInvariance,
                         ::testing::Values(PartitionerKind::kRandomHash,
                                           PartitionerKind::kOblivious,
                                           PartitionerKind::kHybrid,
                                           PartitionerKind::kGinger));

TEST(Sssp, StarReachesEveryoneInOneHop) {
  const auto g = testing::star_graph(100);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_sssp(g, dg, cluster, traits_of(g), /*source=*/0);
  EXPECT_EQ(out.reached, 100u);
  for (VertexId v = 1; v < 100; ++v) EXPECT_EQ(out.distance[v], 1u);
}

TEST(Sssp, ParticipatesInProfilingFlow) {
  // The Sec. III-B extension story: a new app profiles like any other.
  PowerLawConfig config;
  config.num_vertices = 3000;
  config.alpha = 2.1;
  const auto g = generate_powerlaw(config);
  const double slow = profile_single_machine(machine_by_name("xeon_server_s"),
                                             AppKind::kSssp, g, 1.0 / 256.0);
  const double fast = profile_single_machine(machine_by_name("xeon_server_l"),
                                             AppKind::kSssp, g, 1.0 / 256.0);
  EXPECT_GT(slow, fast);
}

}  // namespace
}  // namespace pglb
