#include "partition/hdrf.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "partition/metrics.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"

namespace pglb {
namespace {

EdgeList sample_graph() {
  PowerLawConfig config;
  config.num_vertices = 12'000;
  config.alpha = 2.0;
  config.seed = 111;
  return generate_powerlaw(config);
}

TEST(Hdrf, AssignsEveryEdgeInRange) {
  const auto g = sample_graph();
  const auto a = HdrfPartitioner().partition(g, uniform_weights(4), 1);
  ASSERT_EQ(a.edge_to_machine.size(), g.num_edges());
  for (const MachineId m : a.edge_to_machine) EXPECT_LT(m, 4u);
}

TEST(Hdrf, BeatsRandomHashOnReplication) {
  // HDRF's raison d'etre: fewer mirrors than hashing on skewed graphs.
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto hdrf = HdrfPartitioner().partition(g, weights, 1);
  const auto random = RandomHashPartitioner{}.partition(g, weights, 1);
  EXPECT_LT(compute_partition_metrics(g, hdrf, weights).replication_factor,
            compute_partition_metrics(g, random, weights).replication_factor);
}

TEST(Hdrf, BalanceTermKeepsLoadsTight) {
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto a = HdrfPartitioner().partition(g, weights, 1);
  const auto metrics = compute_partition_metrics(g, a, weights);
  EXPECT_LT(metrics.weighted_imbalance, 1.10);
}

TEST(Hdrf, CapabilityWeightsShiftLoad) {
  const auto g = sample_graph();
  const std::vector<double> weights = {1.0, 3.5};
  const auto a = HdrfPartitioner().partition(g, weights, 1);
  const auto counts = a.machine_edge_counts();
  const double share1 =
      static_cast<double>(counts[1]) / static_cast<double>(g.num_edges());
  EXPECT_NEAR(share1, 3.5 / 4.5, 0.08);
}

TEST(Hdrf, LambdaZeroMaximisesLocality) {
  // Without the balance term, replication drops further (and balance is no
  // longer guaranteed) — the classic HDRF trade-off knob.
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  HdrfOptions locality_only;
  locality_only.lambda = 0.0;
  HdrfOptions balanced;
  balanced.lambda = 4.0;
  const auto a_loc = HdrfPartitioner(locality_only).partition(g, weights, 1);
  const auto a_bal = HdrfPartitioner(balanced).partition(g, weights, 1);
  EXPECT_LE(compute_partition_metrics(g, a_loc, weights).replication_factor,
            compute_partition_metrics(g, a_bal, weights).replication_factor + 1e-9);
}

TEST(Hdrf, DeterministicAndRegistered) {
  const auto g = sample_graph();
  const auto a = HdrfPartitioner().partition(g, uniform_weights(3), 5);
  const auto b = HdrfPartitioner().partition(g, uniform_weights(3), 5);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
  EXPECT_EQ(partitioner_from_string("hdrf"), PartitionerKind::kHdrf);
  EXPECT_EQ(make_partitioner(PartitionerKind::kHdrf)->name(), "hdrf");
}

TEST(Hdrf, RejectsTooManyMachines) {
  const auto g = sample_graph();
  EXPECT_THROW(HdrfPartitioner().partition(g, uniform_weights(65), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace pglb
