// Registry: counter/gauge/stage round-trips, deterministic JSON, name
// escaping, and the latency-histogram bucket geometry the percentiles
// stand on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/registry.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"

namespace pglb {
namespace {

TEST(Registry, CountersAccumulateAndEnumerateSorted) {
  Registry registry;
  registry.count("b.second");
  registry.count("a.first", 3);
  registry.count("b.second", 2);
  EXPECT_EQ(registry.counter("a.first"), 3u);
  EXPECT_EQ(registry.counter("b.second"), 3u);
  EXPECT_EQ(registry.counter("missing"), 0u);

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");
  EXPECT_EQ(counters[1].first, "b.second");
}

TEST(Registry, GaugesOverwrite) {
  Registry registry;
  registry.set_gauge("pool.threads", 4.0);
  registry.set_gauge("pool.threads", 8.0);
  EXPECT_DOUBLE_EQ(registry.gauge("pool.threads"), 8.0);
  EXPECT_DOUBLE_EQ(registry.gauge("missing"), 0.0);
}

TEST(Registry, JsonIsDeterministicAndSorted) {
  Registry registry;
  registry.count("zeta");
  registry.count("alpha");
  registry.set_gauge("mid", 1.5);
  registry.observe("stage", 0.001);

  const std::string json = registry.to_json();
  EXPECT_EQ(json, registry.to_json());  // byte-stable across calls
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));

  const JsonValue parsed = parse_json(json);
  ASSERT_NE(parsed.find("counters"), nullptr);
  ASSERT_NE(parsed.find("gauges"), nullptr);
  ASSERT_NE(parsed.find("stages"), nullptr);
  EXPECT_EQ(parsed.find("counters")->find("alpha")->as_number(), 1.0);
  EXPECT_EQ(parsed.find("gauges")->find("mid")->as_number(), 1.5);
  EXPECT_EQ(parsed.find("stages")->find("stage")->find("count")->as_number(), 1.0);
}

// Regression: metric names are emitted through the shared JSON escaper, so
// hostile names (quotes, backslashes, control bytes) cannot corrupt the
// document.
TEST(Registry, JsonEscapesHostileNames) {
  Registry registry;
  registry.count("quote\"backslash\\name");
  registry.count("newline\nname");
  registry.count("control\x01name");
  registry.set_gauge("tab\tgauge", 2.0);
  registry.observe("stage\"quoted", 0.002);

  const std::string json = registry.to_json();
  const JsonValue parsed = parse_json(json);  // throws if the escaping broke it
  ASSERT_NE(parsed.find("counters"), nullptr);
  EXPECT_EQ(parsed.find("counters")->find("quote\"backslash\\name")->as_number(), 1.0);
  EXPECT_EQ(parsed.find("counters")->find("newline\nname")->as_number(), 1.0);
  EXPECT_EQ(parsed.find("counters")->find("control\x01name")->as_number(), 1.0);
  EXPECT_EQ(parsed.find("gauges")->find("tab\tgauge")->as_number(), 2.0);
  ASSERT_NE(parsed.find("stages")->find("stage\"quoted"), nullptr);
}

TEST(ServiceMetrics, DelegatesToRegistryWithEscaping) {
  ServiceMetrics metrics;
  metrics.count("requests\"total");
  metrics.observe("stage\\slash", 0.003);
  const JsonValue parsed = parse_json(metrics.to_json());
  EXPECT_EQ(parsed.find("counters")->find("requests\"total")->as_number(), 1.0);
  ASSERT_NE(parsed.find("stages")->find("stage\\slash"), nullptr);
}

TEST(ServiceMetrics, ExtraFragmentIsAppended) {
  ServiceMetrics metrics;
  metrics.count("requests_total");
  const JsonValue parsed = parse_json(metrics.to_json("\"cache\":{\"hits\":1}"));
  ASSERT_NE(parsed.find("cache"), nullptr);
  EXPECT_EQ(parsed.find("cache")->find("hits")->as_number(), 1.0);
}

TEST(ScopedTimerTest, RecordsIntoStageAndToleratesNull) {
  Registry registry;
  { const ScopedTimer timer(&registry, "scoped"); }
  { const ScopedTimer timer(nullptr, "ignored"); }  // must not crash
  const JsonValue parsed = parse_json(registry.to_json());
  EXPECT_EQ(parsed.find("stages")->find("scoped")->find("count")->as_number(), 1.0);
  EXPECT_EQ(parsed.find("stages")->find("ignored"), nullptr);
}

// --- LatencyHistogram bucket geometry -------------------------------------

// Octave boundaries (bucket = 8k <=> floor = 2^k - 1 us) round-trip exactly:
// exp2(k) is exact in floating point, so bucket_of(bucket_floor_us(8k)) == 8k.
TEST(LatencyHistogram, OctaveBoundariesRoundTrip) {
  for (std::uint64_t k = 0; k <= 12; ++k) {
    const std::uint64_t bucket = 8 * k;
    const double floor_us = LatencyHistogram::bucket_floor_us(bucket);
    EXPECT_EQ(LatencyHistogram::bucket_of(floor_us), bucket) << "octave " << k;
  }
}

// General buckets: the midpoint between a bucket's floor and the next
// bucket's floor must land in the bucket (floor rounding makes the exact
// edges FP-sensitive; midpoints are safely interior).
TEST(LatencyHistogram, BucketMidpointsLandInBucket) {
  for (std::uint64_t bucket = 0; bucket < 96; ++bucket) {
    const double lo = LatencyHistogram::bucket_floor_us(bucket);
    const double hi = LatencyHistogram::bucket_floor_us(bucket + 1);
    ASSERT_LT(lo, hi);
    const double mid = lo + (hi - lo) / 2.0;
    EXPECT_EQ(LatencyHistogram::bucket_of(mid), bucket) << "bucket " << bucket;
  }
}

// Defined behavior at the degenerate edges: zero and negative latencies land
// in bucket 0, sub-microsecond latencies in the first octave — nothing goes
// out of range.
TEST(LatencyHistogram, DegenerateLatenciesStayInRange) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(-1e9), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(0.25), 2u);  // 8*log2(1.25) = 2.57...
  EXPECT_EQ(LatencyHistogram::bucket_of(0.5), 4u);   // 8*log2(1.5)  = 4.67...
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor_us(0), 0.0);
}

TEST(LatencyHistogram, RecordSecondsHandlesNegative) {
  LatencyHistogram histogram;
  histogram.record_seconds(-0.5);
  histogram.record_seconds(0.0);
  EXPECT_EQ(histogram.count(), 2u);
  // Both land in bucket 0, so every quantile is the bucket-0 floor.
  EXPECT_DOUBLE_EQ(histogram.quantile_seconds(0.99), 0.0);
}

// --- full-distribution bucket export (fleet satellite) ---------------------

TEST(LatencyHistogram, NonzeroBucketsAreSparseSortedAndComplete) {
  LatencyHistogram histogram;
  histogram.record_seconds(1e-6);   // ~1 us
  histogram.record_seconds(1e-6);
  histogram.record_seconds(1e-3);   // ~1 ms
  histogram.record_seconds(1.0);    // ~1 s

  const auto buckets = histogram.nonzero_buckets();
  ASSERT_EQ(buckets.size(), 3u);  // occupied buckets only, no zero runs
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i > 0) EXPECT_LT(buckets[i - 1].bucket, buckets[i].bucket);
    EXPECT_DOUBLE_EQ(buckets[i].floor_us,
                     LatencyHistogram::bucket_floor_us(buckets[i].bucket));
    total += buckets[i].count;
  }
  EXPECT_EQ(total, histogram.count());  // nothing dropped, nothing doubled
  EXPECT_EQ(buckets.front().count, 2u);
}

TEST(Registry, StageBucketsExposeFullDistribution) {
  Registry registry;
  registry.observe("route", 1e-6);
  registry.observe("route", 2e-3);
  EXPECT_TRUE(registry.stage_buckets("unknown").empty());

  const auto buckets = registry.stage_buckets("route");
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].count + buckets[1].count, 2u);

  const auto names = registry.stage_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "route");
}

TEST(Registry, JsonBucketsAreOptInAndParseable) {
  Registry registry;
  registry.observe("plan", 5e-4);
  registry.observe("plan", 5e-4);

  // Default snapshot stays byte-identical to the classic quantile-only form.
  const std::string plain = registry.to_json();
  EXPECT_EQ(plain.find("\"buckets\""), std::string::npos);

  const std::string with_buckets = registry.to_json("", /*include_buckets=*/true);
  EXPECT_EQ(with_buckets, registry.to_json("", true));  // deterministic
  const JsonValue parsed = parse_json(with_buckets);
  const JsonValue* stage = parsed.find("stages")->find("plan");
  ASSERT_NE(stage, nullptr);
  const JsonValue* buckets = stage->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->as_array().size(), 1u);
  const auto& pair = buckets->as_array()[0].as_array();
  ASSERT_EQ(pair.size(), 2u);  // [floor_us, count]
  EXPECT_GT(pair[0].as_number(), 0.0);
  EXPECT_EQ(pair[1].as_number(), 2.0);
}

TEST(LatencyHistogram, QuantilesAreMonotone) {
  LatencyHistogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.record_seconds(static_cast<double>(i) * 1e-6);
  }
  const double p50 = histogram.quantile_seconds(0.50);
  const double p90 = histogram.quantile_seconds(0.90);
  const double p99 = histogram.quantile_seconds(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_GT(p99, 0.0);
}

}  // namespace
}  // namespace pglb
