#include "core/ccr.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pglb {
namespace {

TEST(CcrFromTimes, EquationOneSemantics) {
  // Paper example (Sec. III-B): machine A twice as fast as baseline B -> 2:1.
  const std::vector<double> times = {10.0, 5.0};
  const auto ccr = ccr_from_times(times);
  EXPECT_DOUBLE_EQ(ccr[0], 1.0);  // slowest machine anchors at 1
  EXPECT_DOUBLE_EQ(ccr[1], 2.0);
}

TEST(CcrFromTimes, SlowestAlwaysOne) {
  const std::vector<double> times = {3.0, 12.0, 6.0};
  const auto ccr = ccr_from_times(times);
  EXPECT_DOUBLE_EQ(ccr[1], 1.0);
  EXPECT_DOUBLE_EQ(ccr[0], 4.0);
  EXPECT_DOUBLE_EQ(ccr[2], 2.0);
}

TEST(CcrFromTimes, HomogeneousClusterIsAllOnes) {
  const std::vector<double> times = {7.0, 7.0, 7.0};
  for (const double c : ccr_from_times(times)) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(CcrFromTimes, RejectsBadInputs) {
  EXPECT_THROW(ccr_from_times({}), std::invalid_argument);
  const std::vector<double> zero = {1.0, 0.0};
  EXPECT_THROW(ccr_from_times(zero), std::invalid_argument);
  const std::vector<double> negative = {1.0, -2.0};
  EXPECT_THROW(ccr_from_times(negative), std::invalid_argument);
}

TEST(Speedups, RelativeToChosenBaseline) {
  const std::vector<double> times = {10.0, 5.0, 2.0};
  const auto s = speedups_vs_baseline(times, 0);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 5.0);
  EXPECT_THROW(speedups_vs_baseline(times, 3), std::invalid_argument);
}

TEST(MeanCcrError, MatchesPaperDefinition) {
  // Reference CCR 2.0, estimate 2.16 -> 8% error on the non-baseline entry.
  const std::vector<double> reference = {1.0, 2.0};
  const std::vector<double> estimate = {1.0, 2.16};
  EXPECT_NEAR(mean_ccr_error(estimate, reference), 0.08, 1e-12);
}

TEST(MeanCcrError, SkipsSharedBaselineEntries) {
  const std::vector<double> reference = {1.0, 4.0, 2.0};
  const std::vector<double> estimate = {1.0, 2.0, 2.0};
  // Only entries 1 and 2 count: errors 0.5 and 0.0 -> mean 0.25.
  EXPECT_NEAR(mean_ccr_error(estimate, reference), 0.25, 1e-12);
}

TEST(MeanCcrError, AllBaselineGivesZero) {
  const std::vector<double> ones = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_ccr_error(ones, ones), 0.0);
}

TEST(MeanCcrError, RejectsSizeMismatch) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(mean_ccr_error(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace pglb
