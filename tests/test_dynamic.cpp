// Delta-planning subsystem (docs/DYNAMIC.md): LiveGraph mutation semantics,
// the seeded stream generator, drift math, incremental scorer states vs their
// scratch partitioners, the DeltaPlanner end to end (incremental-vs-scratch
// equivalence, typed errors, persistence round trip), and the gate against
// the reactive-migration baseline.

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "baselines/dynamic_migration.hpp"
#include "core/drift.hpp"
#include "dynamic/delta_planner.hpp"
#include "dynamic/mutation.hpp"
#include "gen/powerlaw.hpp"
#include "graph/stats.hpp"
#include "machine/perf_model.hpp"
#include "partition/factory.hpp"
#include "partition/incremental.hpp"
#include "persist/warm_state.hpp"
#include "service/metrics.hpp"
#include "service/planner.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

using dynamic::DeltaOptions;
using dynamic::DeltaPlanner;
using dynamic::LiveGraph;
using dynamic::Mutation;
using dynamic::MutationError;
using dynamic::generate_mutation_batch;

// --- LiveGraph --------------------------------------------------------------

TEST(LiveGraph, AppliesBatchesAndCounts) {
  LiveGraph g;
  g.apply(std::vector<Mutation>{Mutation::add_vertex(0), Mutation::add_vertex(1),
                                Mutation::add_edge(0, 1), Mutation::add_edge(0, 1)});
  EXPECT_EQ(g.live_vertex_count(), 2u);
  EXPECT_EQ(g.live_edge_count(), 2u);  // duplicates make a multigraph
  EXPECT_EQ(g.slot_count(), 2u);

  // Removing one copy tombstones exactly the FIRST live slot of (0, 1).
  g.apply(std::vector<Mutation>{Mutation::remove_edge(0, 1)});
  EXPECT_EQ(g.live_edge_count(), 1u);
  EXPECT_TRUE(g.dead(0));
  EXPECT_FALSE(g.dead(1));
}

TEST(LiveGraph, RejectedBatchIsAtomic) {
  LiveGraph g;
  g.apply(std::vector<Mutation>{Mutation::add_vertex(0), Mutation::add_vertex(1),
                                Mutation::add_edge(0, 1)});
  // The first two mutations are valid; the third is not.  Nothing may stick.
  EXPECT_THROW(
      g.apply(std::vector<Mutation>{Mutation::add_edge(1, 0),
                                    Mutation::add_vertex(2),
                                    Mutation::remove_edge(0, 7)}),
      MutationError);
  EXPECT_EQ(g.live_edge_count(), 1u);
  EXPECT_EQ(g.live_vertex_count(), 2u);
  EXPECT_EQ(g.slot_count(), 1u);
}

TEST(LiveGraph, BatchLocalEffectsResolveInOrder) {
  LiveGraph g;
  // add-then-remove of the same edge inside one batch is legal...
  g.apply(std::vector<Mutation>{Mutation::add_vertex(0), Mutation::add_vertex(1),
                                Mutation::add_edge(0, 1),
                                Mutation::remove_edge(0, 1)});
  EXPECT_EQ(g.live_edge_count(), 0u);
  // ...but removing twice what exists once is a contradiction.
  g.apply(std::vector<Mutation>{Mutation::add_edge(0, 1)});
  EXPECT_THROW(g.apply(std::vector<Mutation>{Mutation::remove_edge(0, 1),
                                             Mutation::remove_edge(0, 1)}),
               MutationError);
  EXPECT_EQ(g.live_edge_count(), 1u);

  // Re-adding a live vertex and retiring a dead one are both invalid.
  EXPECT_THROW(g.apply(std::vector<Mutation>{Mutation::add_vertex(0)}),
               MutationError);
  EXPECT_THROW(g.apply(std::vector<Mutation>{Mutation::remove_vertex(9)}),
               MutationError);
}

TEST(LiveGraph, RemoveVertexDropsIncidentEdges) {
  LiveGraph g;
  g.apply(std::vector<Mutation>{
      Mutation::add_vertex(0), Mutation::add_vertex(1), Mutation::add_vertex(2),
      Mutation::add_edge(0, 1), Mutation::add_edge(1, 2),
      Mutation::add_edge(2, 0)});
  g.apply(std::vector<Mutation>{Mutation::remove_vertex(1)});
  EXPECT_EQ(g.live_vertex_count(), 2u);
  EXPECT_EQ(g.live_edge_count(), 1u);  // only 2 -> 0 survives
  EXPECT_FALSE(g.vertex_alive(1));
  const EdgeList live = g.live_edge_list();
  ASSERT_EQ(live.num_edges(), 1u);
  EXPECT_EQ(live.edge(0).src, 2u);
  EXPECT_EQ(live.edge(0).dst, 0u);
}

TEST(LiveGraph, CompactPreservesSurvivorOrderAndOwners) {
  LiveGraph g;
  g.apply(std::vector<Mutation>{
      Mutation::add_vertex(0), Mutation::add_vertex(1), Mutation::add_vertex(2),
      Mutation::add_vertex(7), Mutation::add_edge(0, 1), Mutation::add_edge(1, 2),
      Mutation::add_edge(2, 0), Mutation::add_edge(0, 2)});
  g.apply(std::vector<Mutation>{Mutation::remove_edge(1, 2),
                                Mutation::remove_vertex(7)});
  std::vector<MachineId> owners = {0, kInvalidMachine, 1, 0};

  g.compact(&owners);
  EXPECT_EQ(g.slot_count(), 3u);
  EXPECT_EQ(g.live_edge_count(), 3u);
  // Vertex space shrinks to highest live + 1 (vertex 7 retired).
  EXPECT_EQ(g.num_vertices(), 3u);
  // Survivors keep their order; owners travel with them.
  EXPECT_EQ(g.slot(0).src, 0u);
  EXPECT_EQ(g.slot(1).src, 2u);
  EXPECT_EQ(g.slot(2).src, 0u);
  ASSERT_EQ(owners.size(), 3u);
  EXPECT_EQ(owners[0], 0u);
  EXPECT_EQ(owners[1], 1u);
  EXPECT_EQ(owners[2], 0u);
  for (std::size_t i = 0; i < g.slot_count(); ++i) EXPECT_FALSE(g.dead(i));
}

TEST(MutationGenerator, DeterministicAndAlwaysValid) {
  PowerLawConfig config;
  config.num_vertices = 256;
  config.seed = 7;
  const EdgeList graph = generate_powerlaw(config);

  LiveGraph a;
  std::vector<Mutation> creation;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    creation.push_back(Mutation::add_vertex(v));
  }
  for (const Edge& e : graph.edges()) {
    creation.push_back(Mutation::add_edge(e.src, e.dst));
  }
  a.apply(creation);
  LiveGraph b;
  b.apply(creation);

  for (std::uint64_t batch = 0; batch < 50; ++batch) {
    const auto batch_a = generate_mutation_batch(a, 11, batch, 8);
    const auto batch_b = generate_mutation_batch(b, 11, batch, 8);
    EXPECT_EQ(batch_a, batch_b) << "batch " << batch;
    ASSERT_NO_THROW(a.apply(batch_a)) << "batch " << batch;
    b.apply(batch_b);
  }
  EXPECT_EQ(a.live_edge_count(), b.live_edge_count());
  EXPECT_EQ(a.live_vertex_count(), b.live_vertex_count());
}

// --- drift ------------------------------------------------------------------

TEST(Drift, ChurnArithmetic) {
  DriftStats stats;
  stats.reset(200);
  stats.added = 6;
  stats.removed = 4;
  EXPECT_DOUBLE_EQ(stats.churn(), 0.05);

  DriftStats empty;  // profiled empty: any mutation is full churn
  empty.added = 1;
  EXPECT_DOUBLE_EQ(empty.churn(), 1.0);
}

TEST(Drift, HistogramDistanceBounds) {
  ExactHistogram a;
  ExactHistogram b;
  EXPECT_DOUBLE_EQ(histogram_distance(a, b), 0.0);  // both empty: identical
  a.add(3, 10);
  EXPECT_DOUBLE_EQ(histogram_distance(a, b), 1.0);  // empty vs not: maximal
  b.add(3, 99);  // same distribution, different mass
  EXPECT_DOUBLE_EQ(histogram_distance(a, b), 0.0);
  ExactHistogram c;
  c.add(1, 5);
  c.add(3, 5);
  EXPECT_DOUBLE_EQ(histogram_distance(a, c), 0.5);
}

TEST(Drift, ShouldReprofileModes) {
  DriftPolicy policy;  // 5% churn, 0.10 TV, auto
  DriftStats calm;
  calm.reset(1'000);
  calm.added = 10;
  EXPECT_FALSE(should_reprofile(policy, calm, 0.01));

  DriftStats churned = calm;
  churned.added = 60;
  EXPECT_TRUE(should_reprofile(policy, churned, 0.01));
  EXPECT_TRUE(should_reprofile(policy, calm, 0.2));  // shape drift alone fires

  policy.mode = ReprofileMode::kForce;
  EXPECT_TRUE(should_reprofile(policy, calm, 0.0));
  policy.mode = ReprofileMode::kNever;
  EXPECT_FALSE(should_reprofile(policy, churned, 1.0));
}

// --- incremental scorer states ----------------------------------------------

struct IncrementalCase {
  PartitionerKind kind;
  std::size_t machines;
};

class IncrementalStateSuite : public ::testing::TestWithParam<IncrementalCase> {};

TEST_P(IncrementalStateSuite, FreshReplayMatchesScratchPartitioner) {
  const auto [kind, machine_count] = GetParam();
  PowerLawConfig config;
  config.num_vertices = 512;
  config.seed = 3;
  const EdgeList graph = generate_powerlaw(config);
  std::vector<double> weights(machine_count);
  for (std::size_t m = 0; m < machine_count; ++m) {
    weights[m] = 1.0 + static_cast<double>(m);
  }
  constexpr std::uint64_t kSeed = 5;

  const PartitionAssignment scratch =
      make_partitioner(kind)->partition(graph, weights, kSeed);

  auto state = IncrementalState::create(kind, weights, kSeed);
  state->ensure_vertices(graph.num_vertices());
  std::vector<MachineId> replay;
  state->assign_batch(graph.edges(), replay);
  EXPECT_EQ(replay, scratch.edge_to_machine);

  // Feeding the same edges in two batches continues, not restarts.
  auto split = IncrementalState::create(kind, weights, kSeed);
  split->ensure_vertices(graph.num_vertices());
  std::vector<MachineId> two_step;
  const std::size_t half = graph.edges().size() / 2;
  split->assign_batch(graph.edges().subspan(0, half), two_step);
  split->assign_batch(graph.edges().subspan(half), two_step);
  EXPECT_EQ(two_step, scratch.edge_to_machine);
}

TEST_P(IncrementalStateSuite, EncodeDecodeResumesIdentically) {
  const auto [kind, machine_count] = GetParam();
  PowerLawConfig config;
  config.num_vertices = 256;
  config.seed = 9;
  const EdgeList graph = generate_powerlaw(config);
  std::vector<double> weights(machine_count, 1.0);
  constexpr std::uint64_t kSeed = 13;

  auto original = IncrementalState::create(kind, weights, kSeed);
  original->ensure_vertices(graph.num_vertices());
  std::vector<MachineId> head;
  const std::size_t half = graph.edges().size() / 2;
  original->assign_batch(graph.edges().subspan(0, half), head);

  std::string encoded;
  original->encode(encoded);
  persist::Cursor cursor(encoded);
  auto resumed = IncrementalState::decode(kind, cursor, weights, kSeed);
  EXPECT_TRUE(cursor.done());
  resumed->ensure_vertices(graph.num_vertices());

  std::vector<MachineId> tail_original;
  std::vector<MachineId> tail_resumed;
  original->assign_batch(graph.edges().subspan(half), tail_original);
  resumed->assign_batch(graph.edges().subspan(half), tail_resumed);
  EXPECT_EQ(tail_resumed, tail_original);
}

INSTANTIATE_TEST_SUITE_P(
    StreamingFamily, IncrementalStateSuite,
    ::testing::Values(IncrementalCase{PartitionerKind::kHybrid, 2},
                      IncrementalCase{PartitionerKind::kHdrf, 3},
                      IncrementalCase{PartitionerKind::kOblivious, 2},
                      IncrementalCase{PartitionerKind::kGrid, 4}),
    [](const ::testing::TestParamInfo<IncrementalCase>& info) {
      return std::string(to_string(info.param.kind));
    });

TEST(IncrementalState, SupportsExactlyTheStreamingFamily) {
  EXPECT_TRUE(IncrementalState::supports(PartitionerKind::kHybrid));
  EXPECT_TRUE(IncrementalState::supports(PartitionerKind::kHdrf));
  EXPECT_TRUE(IncrementalState::supports(PartitionerKind::kOblivious));
  EXPECT_TRUE(IncrementalState::supports(PartitionerKind::kGrid));
  EXPECT_FALSE(IncrementalState::supports(PartitionerKind::kRandomHash));
  EXPECT_FALSE(IncrementalState::supports(PartitionerKind::kChunking));
  EXPECT_FALSE(IncrementalState::supports(PartitionerKind::kGinger));
  EXPECT_THROW(IncrementalState::create(PartitionerKind::kGinger,
                                        std::vector<double>{1.0, 1.0}, 1),
               std::invalid_argument);
}

// --- DeltaPlanner end to end ------------------------------------------------

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;
  return options;
}

/// The base-creation request for a deterministic 256-vertex power-law graph.
PlanRequest creation_request(const std::string& base, const EdgeList& graph) {
  PlanRequest request;
  request.type = RequestType::kDelta;
  request.id = "create";
  request.base = base;
  request.app = AppKind::kPageRank;
  request.machines = {"xeon_server_s", "xeon_server_l"};
  request.seed = 42;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    request.mutations.push_back(Mutation::add_vertex(v));
  }
  for (const Edge& e : graph.edges()) {
    request.mutations.push_back(Mutation::add_edge(e.src, e.dst));
  }
  return request;
}

EdgeList small_powerlaw(std::uint64_t seed = 21) {
  PowerLawConfig config;
  config.num_vertices = 256;
  config.seed = seed;
  return generate_powerlaw(config);
}

struct DeltaHarness {
  ServiceMetrics metrics;
  Planner planner{tiny_options(), &metrics};
  DeltaPlanner delta{planner, {}, &metrics};

  /// handle() + assertions that the response is ok and carries a delta block.
  DeltaInfo ok(const PlanRequest& request) {
    const std::string line = delta.handle(request);
    const PlanResponse response = parse_plan_response(line);
    EXPECT_TRUE(response.ok) << line;
    const std::optional<DeltaInfo> info = parse_delta_block(line);
    EXPECT_TRUE(info.has_value()) << line;
    last_line = line;
    return info.value_or(DeltaInfo{});
  }

  std::string error_of(const PlanRequest& request) {
    const std::string line = delta.handle(request);
    const PlanResponse response = parse_plan_response(line);
    EXPECT_FALSE(response.ok) << line;
    EXPECT_EQ(response.status, PlanStatus::kError) << line;
    return response.error;
  }

  std::string last_line;
};

TEST(DeltaPlanner, CreationPlansAndReportsState) {
  DeltaHarness h;
  const EdgeList graph = small_powerlaw();
  const DeltaInfo info = h.ok(creation_request("g", graph));
  EXPECT_EQ(info.base, "g");
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.live_edges, graph.num_edges());
  EXPECT_TRUE(info.reprofiled);
  EXPECT_EQ(info.moved_edges, graph.num_edges());
  EXPECT_GE(info.replication_factor, 1.0);
  EXPECT_EQ(h.delta.base_count(), 1u);
}

TEST(DeltaPlanner, PatchPathReusesThePinnedProfile) {
  DeltaHarness h;
  h.ok(creation_request("g", small_powerlaw()));
  const std::uint64_t cells_after_create = h.metrics.counter("profile_runs");

  PlanRequest update;
  update.type = RequestType::kDelta;
  update.id = "u1";
  update.base = "g";
  update.mutations = {Mutation::add_edge(1, 2), Mutation::add_edge(3, 4)};
  const DeltaInfo info = h.ok(update);
  EXPECT_EQ(info.version, 2u);
  EXPECT_FALSE(info.reprofiled);
  EXPECT_GT(info.churn, 0.0);
  // The pinned alpha resolves to the creation's profile key: zero new cells.
  EXPECT_EQ(h.metrics.counter("profile_runs"), cells_after_create);
}

TEST(DeltaPlanner, ForcedReprofileMatchesScratchBase) {
  DeltaHarness h;
  const EdgeList graph = small_powerlaw();
  h.ok(creation_request("g", graph));

  // Stream a few seeded batches, mirroring client-side.
  LiveGraph mirror;
  mirror.apply(creation_request("g", graph).mutations);
  for (std::uint64_t b = 0; b < 5; ++b) {
    PlanRequest update;
    update.type = RequestType::kDelta;
    update.id = "m" + std::to_string(b);
    update.base = "g";
    update.mutations = generate_mutation_batch(mirror, 42, b, 8);
    mirror.apply(update.mutations);
    const DeltaInfo info = h.ok(update);
    EXPECT_EQ(info.live_edges, mirror.live_edge_count());
    EXPECT_EQ(info.live_vertices, mirror.live_vertex_count());
  }

  // Force a full re-profile of the streamed base...
  PlanRequest force;
  force.type = RequestType::kDelta;
  force.id = "equiv";
  force.base = "g";
  force.reprofile = ReprofileMode::kForce;
  const DeltaInfo incremental = h.ok(force);
  EXPECT_TRUE(incremental.reprofiled);
  const std::string incremental_line = h.last_line;

  // ...and create a from-scratch twin from the mirror's survivors.
  PlanRequest scratch;
  scratch.type = RequestType::kDelta;
  scratch.id = "equiv";
  scratch.base = "g2";
  scratch.app = AppKind::kPageRank;
  scratch.machines = {"xeon_server_s", "xeon_server_l"};
  scratch.seed = 42;
  for (VertexId v = 0; v < mirror.num_vertices(); ++v) {
    if (mirror.vertex_alive(v)) scratch.mutations.push_back(Mutation::add_vertex(v));
  }
  for (std::size_t i = 0; i < mirror.slot_count(); ++i) {
    if (!mirror.dead(i)) {
      scratch.mutations.push_back(
          Mutation::add_edge(mirror.slot(i).src, mirror.slot(i).dst));
    }
  }
  const DeltaInfo twin = h.ok(scratch);
  const std::string twin_line = h.last_line;

  // Identical assignment of the identical edge sequence, and an identical
  // plan payload (byte-for-byte up to the delta block).
  EXPECT_EQ(incremental.digest, twin.digest);
  EXPECT_EQ(incremental.live_edges, twin.live_edges);
  EXPECT_EQ(incremental.live_vertices, twin.live_vertices);
  const auto prefix = [](const std::string& line) {
    return line.substr(0, line.find(",\"delta\":"));
  };
  EXPECT_EQ(prefix(incremental_line), prefix(twin_line));
}

TEST(DeltaPlanner, TypedErrorsNeverMutateState) {
  DeltaOptions options;
  options.max_bases = 2;
  options.max_batch = 4;
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  DeltaPlanner delta(planner, options, &metrics);

  // Unknown base without creation fields.
  PlanRequest orphan;
  orphan.type = RequestType::kDelta;
  orphan.id = "o";
  orphan.base = "nope";
  orphan.mutations = {Mutation::add_edge(0, 1)};
  std::string line = delta.handle(orphan);
  EXPECT_NE(line.find("unknown base"), std::string::npos) << line;
  EXPECT_EQ(delta.base_count(), 0u);

  // Oversize batch (cap 4).
  PlanRequest fat;
  fat.type = RequestType::kDelta;
  fat.id = "f";
  fat.base = "g";
  fat.app = AppKind::kPageRank;
  fat.machines = {"xeon_server_s", "xeon_server_l"};
  for (VertexId v = 0; v < 5; ++v) fat.mutations.push_back(Mutation::add_vertex(v));
  line = delta.handle(fat);
  EXPECT_NE(line.find("exceeds the server cap"), std::string::npos) << line;
  EXPECT_EQ(delta.base_count(), 0u);

  // Ginger is offline-iterative: rejected with a typed error.
  PlanRequest ginger;
  ginger.type = RequestType::kDelta;
  ginger.id = "gin";
  ginger.base = "g";
  ginger.app = AppKind::kPageRank;
  ginger.machines = {"xeon_server_s", "xeon_server_l"};
  ginger.partitioner = PartitionerKind::kGinger;
  ginger.mutations = {Mutation::add_vertex(0), Mutation::add_vertex(1),
                      Mutation::add_edge(0, 1)};
  line = delta.handle(ginger);
  EXPECT_NE(line.find("ginger"), std::string::npos) << line;
  // The failed creation left a non-ready stub under "g"...
  EXPECT_EQ(delta.base_count(), 1u);

  // ...that a retried (valid) creation re-initializes in place.
  PlanRequest good = ginger;
  good.id = "c";
  good.partitioner.reset();
  ASSERT_TRUE(parse_plan_response(delta.handle(good)).ok);
  EXPECT_EQ(delta.base_count(), 1u);

  // Fill the registry to its cap of 2, then overflow it.
  PlanRequest second = good;
  second.id = "c2";
  second.base = "g2";
  ASSERT_TRUE(parse_plan_response(delta.handle(second)).ok);
  PlanRequest third = good;
  third.id = "c3";
  third.base = "g3";
  line = delta.handle(third);
  EXPECT_NE(line.find("registry full"), std::string::npos) << line;

  PlanRequest flip;
  flip.type = RequestType::kDelta;
  flip.id = "flip";
  flip.base = "g";
  flip.partitioner = PartitionerKind::kHdrf;
  line = delta.handle(flip);
  EXPECT_NE(line.find("cannot change the partitioner"), std::string::npos) << line;

  PlanRequest mismatch = good;
  mismatch.id = "mm";
  mismatch.app = AppKind::kColoring;
  line = delta.handle(mismatch);
  EXPECT_NE(line.find("already exists"), std::string::npos) << line;

  // A rejected batch leaves the base's state untouched.
  PlanRequest bad_batch;
  bad_batch.type = RequestType::kDelta;
  bad_batch.id = "bb";
  bad_batch.base = "g";
  bad_batch.mutations = {Mutation::add_edge(0, 1), Mutation::remove_edge(5, 6)};
  line = delta.handle(bad_batch);
  EXPECT_FALSE(parse_plan_response(line).ok);
  PlanRequest empty;
  empty.type = RequestType::kDelta;
  empty.id = "probe";
  empty.base = "g";
  const std::string probe = delta.handle(empty);
  const std::optional<DeltaInfo> info = parse_delta_block(probe);
  ASSERT_TRUE(info.has_value()) << probe;
  EXPECT_EQ(info->live_edges, 1u);  // still just the creation edge
}

// --- persistence ------------------------------------------------------------

TEST(DeltaPlannerPersist, EncodeRestoreRoundTrip) {
  ServiceMetrics metrics_a;
  Planner planner_a(tiny_options(), &metrics_a);
  DeltaPlanner original(planner_a, {}, &metrics_a);

  const EdgeList graph = small_powerlaw();
  ASSERT_TRUE(
      parse_plan_response(original.handle(creation_request("g", graph))).ok);
  LiveGraph mirror;
  mirror.apply(creation_request("g", graph).mutations);
  for (std::uint64_t b = 0; b < 3; ++b) {
    PlanRequest update;
    update.type = RequestType::kDelta;
    update.id = "m" + std::to_string(b);
    update.base = "g";
    update.mutations = generate_mutation_batch(mirror, 42, b, 8);
    mirror.apply(update.mutations);
    ASSERT_TRUE(parse_plan_response(original.handle(update)).ok);
  }

  const std::string payload = original.encode_state();
  ServiceMetrics metrics_b;
  Planner planner_b(tiny_options(), &metrics_b);
  DeltaPlanner restored(planner_b, {}, &metrics_b);
  EXPECT_EQ(restored.restore_state(payload), 1u);
  EXPECT_EQ(restored.base_names(), std::vector<std::string>{"g"});

  // The restored base continues the stream exactly where the original is:
  // the same next batch must produce byte-identical responses.
  PlanRequest next;
  next.type = RequestType::kDelta;
  next.id = "next";
  next.base = "g";
  next.mutations = generate_mutation_batch(mirror, 42, 3, 8);
  EXPECT_EQ(restored.handle(next), original.handle(next));

  // Live state wins over snapshots: restoring again imports nothing.
  EXPECT_EQ(restored.restore_state(payload), 0u);
}

TEST(DeltaPlannerPersist, CorruptPayloadRejectsWholesale) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  DeltaPlanner original(planner, {}, &metrics);
  ASSERT_TRUE(parse_plan_response(
                  original.handle(creation_request("g", small_powerlaw())))
                  .ok);
  const std::string payload = original.encode_state();

  DeltaPlanner target(planner, {}, nullptr);
  EXPECT_THROW(target.restore_state(payload.substr(0, payload.size() / 2)),
               persist::SnapshotError);
  EXPECT_THROW(target.restore_state(payload + "x"), persist::SnapshotError);
  EXPECT_EQ(target.base_count(), 0u);  // nothing partial survives
}

TEST(DeltaPlannerPersist, SnapshotSectionIsForwardSkippable) {
  // A writer with dynamic state produces a snapshot an old reader (no delta
  // planner handed in) must still load: kDynamicState is skipped, the rest
  // of the warm state imports as usual.
  const std::string dir = ::testing::TempDir();

  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  DeltaPlanner delta(planner, {}, &metrics);
  ASSERT_TRUE(parse_plan_response(
                  delta.handle(creation_request("g", small_powerlaw())))
                  .ok);
  const persist::SnapshotIoResult saved =
      persist::save_warm_snapshot(planner, dir, nullptr, &delta);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.dynamic_bases, 1u);
  EXPECT_GE(saved.cache_entries, 1u);

  // Old reader: no delta planner.  Loads the cache, skips the section.
  Planner old_reader(tiny_options());
  const persist::SnapshotIoResult loaded =
      persist::load_warm_snapshot(old_reader, dir);
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.cache_entries, saved.cache_entries);
  EXPECT_EQ(loaded.dynamic_bases, 0u);

  // New reader: the base comes back.
  ServiceMetrics metrics_new;
  Planner new_reader(tiny_options(), &metrics_new);
  DeltaPlanner delta_new(new_reader, {}, &metrics_new);
  const persist::SnapshotIoResult relived =
      persist::load_warm_snapshot(new_reader, dir, nullptr, &delta_new);
  EXPECT_TRUE(relived.ok) << relived.error;
  EXPECT_EQ(relived.dynamic_bases, 1u);
  EXPECT_EQ(delta_new.base_names(), std::vector<std::string>{"g"});
  std::remove(persist::warm_snapshot_path(dir).c_str());
}

// --- gate against the reactive-migration baseline ---------------------------

TEST(DeltaPlannerBaseline, MaintainedAssignmentLeavesMigrationLittleToDo) {
  // The subsystem's counterpart to the paper's thesis: an incrementally
  // MAINTAINED CCR-weighted assignment of the mutated graph should leave the
  // reactive migration baseline with far less to fix than a stale uniform
  // split — the same comparison bench/baseline_dynamic_migration draws for
  // static ingress.
  const Cluster cluster = testing::case2_cluster();
  const EdgeList graph = small_powerlaw(33);

  LiveGraph live;
  std::vector<Mutation> creation;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    creation.push_back(Mutation::add_vertex(v));
  }
  for (const Edge& e : graph.edges()) {
    creation.push_back(Mutation::add_edge(e.src, e.dst));
  }
  live.apply(creation);

  // CCR-style capability split for Xeon S vs L and the maintained state.
  const std::vector<double> weights = {1.0, 3.2};
  auto inc = IncrementalState::create(PartitionerKind::kHybrid, weights, 42);
  inc->ensure_vertices(live.num_vertices());
  std::vector<MachineId> owners;
  inc->assign_batch(live.live_edge_list().edges(), owners);

  for (std::uint64_t b = 0; b < 10; ++b) {
    const auto batch = generate_mutation_batch(live, 42, b, 8);
    const LiveGraph::BatchResult applied = live.apply(batch);
    owners.resize(live.slot_count(), kInvalidMachine);
    inc->ensure_vertices(live.num_vertices());
    std::vector<Edge> added;
    for (const std::size_t slot : applied.added_slots) added.push_back(live.slot(slot));
    std::vector<MachineId> assigned;
    inc->assign_batch(added, assigned);
    for (std::size_t i = 0; i < added.size(); ++i) {
      owners[applied.added_slots[i]] = assigned[i];
    }
    for (const std::size_t slot : applied.removed_slots) {
      if (owners[slot] != kInvalidMachine) {
        inc->retract(live.slot(slot), owners[slot]);
        owners[slot] = kInvalidMachine;
      }
    }
  }

  const EdgeList mutated = live.live_edge_list();
  PartitionAssignment maintained;
  maintained.num_machines = 2;
  for (std::size_t i = 0; i < live.slot_count(); ++i) {
    if (!live.dead(i)) maintained.edge_to_machine.push_back(owners[i]);
  }
  ASSERT_EQ(maintained.edge_to_machine.size(), mutated.num_edges());

  PartitionAssignment uniform;
  uniform.num_machines = 2;
  for (EdgeId i = 0; i < mutated.num_edges(); ++i) {
    uniform.edge_to_machine.push_back(static_cast<MachineId>(i % 2));
  }

  const WorkloadTraits traits = traits_from_stats(compute_stats(mutated), 1.0);
  const auto from_maintained =
      run_pagerank_with_migration(mutated, maintained, cluster, traits);
  const auto from_uniform =
      run_pagerank_with_migration(mutated, uniform, cluster, traits);
  EXPECT_LT(from_maintained.edges_migrated, from_uniform.edges_migrated / 2);
  EXPECT_LE(from_maintained.report.makespan_seconds,
            from_uniform.report.makespan_seconds);
}

}  // namespace
}  // namespace pglb
