#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace pglb {
namespace {

TEST(Splitmix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(0), splitmix64(1));
}

TEST(Splitmix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = splitmix64(0x1234'5678'9abc'def0ull);
  for (int bit = 0; bit < 64; bit += 7) {
    const std::uint64_t flipped = splitmix64(0x1234'5678'9abc'def0ull ^ (1ull << bit));
    const int differing = __builtin_popcountll(base ^ flipped);
    EXPECT_GT(differing, 16) << "bit " << bit;
    EXPECT_LT(differing, 48) << "bit " << bit;
  }
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedRestartsTheStream) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleIsInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.next_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, DoubleMeanIsHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(4);
  std::array<int, 7> counts{};
  const int n = 70'000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(7)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, n / 7.0 * 0.1);
  }
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasZeroMeanUnitVariance) {
  Rng rng(6);
  double sum = 0.0, sq = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(7);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  auto shuffled = items;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_NE(shuffled, items);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(DiscreteSampler, RespectsWeights) {
  const std::vector<double> weights = {1.0, 2.0, 7.0};
  DiscreteSampler sampler{std::span<const double>(weights)};
  Rng rng(8);
  std::array<int, 3> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.02);
}

TEST(DiscreteSampler, ZeroWeightEntriesNeverSampled) {
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  DiscreteSampler sampler{std::span<const double>(weights)};
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(DiscreteSampler, RejectsNegativeWeights) {
  const std::vector<double> weights = {1.0, -0.5};
  EXPECT_THROW(DiscreteSampler{std::span<const double>(weights)}, std::invalid_argument);
}

TEST(DiscreteSampler, RejectsAllZeroWeights) {
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(DiscreteSampler{std::span<const double>(weights)}, std::invalid_argument);
}

TEST(DiscreteSampler, EmptySamplerThrowsOnSample) {
  DiscreteSampler sampler;
  Rng rng(10);
  EXPECT_TRUE(sampler.empty());
  EXPECT_THROW(sampler.sample(rng), std::logic_error);
}

TEST(DiscreteSampler, TotalMassIsWeightSum) {
  const std::vector<double> weights = {1.5, 2.5};
  DiscreteSampler sampler{std::span<const double>(weights)};
  EXPECT_DOUBLE_EQ(sampler.total_mass(), 4.0);
}

}  // namespace
}  // namespace pglb
