// Netfault grammar + engine + chaos proxy (docs/CHAOS.md).  The engine tests
// pin the determinism contract — same scenario + seed means the same verdicts
// and, for corruption, the same flipped bytes no matter how the stream was
// chunked.  The proxy tests run a real forwarder against an in-process echo
// server, covering pass-through, blackhole-then-heal, and reset.

#include "util/netfault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace pglb {
namespace {

TEST(NetFaultGrammar, ParsesTheDrillScenario) {
  const auto rules = parse_netfault_rules(
      "blackhole@from:300:1100%route:0;"
      "delay:25:10@from:1500:2600%route:1;"
      "reset%route:2,conn:1");
  ASSERT_EQ(rules.size(), 3u);

  EXPECT_EQ(rules[0].action, NetFaultRule::Action::kBlackhole);
  EXPECT_EQ(rules[0].from_ms, 300u);
  EXPECT_EQ(rules[0].until_ms, 1100u);
  EXPECT_EQ(rules[0].route, 0);
  EXPECT_EQ(rules[0].conn, -1);

  EXPECT_EQ(rules[1].action, NetFaultRule::Action::kDelay);
  EXPECT_EQ(rules[1].delay_ms, 25u);
  EXPECT_EQ(rules[1].jitter_ms, 10u);
  EXPECT_EQ(rules[1].route, 1);

  EXPECT_EQ(rules[2].action, NetFaultRule::Action::kReset);
  EXPECT_EQ(rules[2].route, 2);
  EXPECT_EQ(rules[2].conn, 1);
  EXPECT_EQ(rules[2].text, "reset%route:2,conn:1");
}

TEST(NetFaultGrammar, PipeIsAnEquivalentRuleSeparator) {
  const auto semi = parse_netfault_rules("delay:5%route:0;reset%route:1");
  const auto pipe = parse_netfault_rules("delay:5%route:0|reset%route:1");
  ASSERT_EQ(semi.size(), 2u);
  ASSERT_EQ(pipe.size(), 2u);
  EXPECT_EQ(pipe[0].action, NetFaultRule::Action::kDelay);
  EXPECT_EQ(pipe[1].action, NetFaultRule::Action::kReset);
}

TEST(NetFaultGrammar, ParsesEveryActionAndSelector) {
  const auto rules = parse_netfault_rules(
      "throttle:4096;tear:10:50%dir:up;corrupt:0.5:9%dir:down;delay:1:2:3");
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].action, NetFaultRule::Action::kThrottle);
  EXPECT_EQ(rules[0].bytes_per_s, 4096u);
  EXPECT_EQ(rules[1].action, NetFaultRule::Action::kTear);
  EXPECT_EQ(rules[1].tear_bytes, 10u);
  EXPECT_EQ(rules[1].stall_ms, 50u);
  EXPECT_EQ(rules[1].dir, NetFaultRule::Dir::kUp);
  EXPECT_EQ(rules[2].action, NetFaultRule::Action::kCorrupt);
  EXPECT_DOUBLE_EQ(rules[2].probability, 0.5);
  EXPECT_EQ(rules[2].seed, 9u);
  EXPECT_EQ(rules[2].dir, NetFaultRule::Dir::kDown);
  EXPECT_EQ(rules[3].seed, 3u);  // delay's optional jitter seed
}

TEST(NetFaultGrammar, EmptyFragmentsAreSkipped) {
  EXPECT_TRUE(parse_netfault_rules("").empty());
  EXPECT_EQ(parse_netfault_rules("reset;").size(), 1u);
  EXPECT_EQ(parse_netfault_rules(";;delay:1;;").size(), 1u);
}

TEST(NetFaultGrammar, MalformedSpecsThrowNamingTheFragment) {
  // The bad_spec contract: std::invalid_argument whose message carries the
  // offending fragment, so a 5-rule scenario pinpoints its one typo.
  const std::vector<std::string> bad = {
      "warp:9",                 // unknown action
      "delay",                  // missing argument
      "delay:abc",              // not a number
      "throttle:0",             // zero rate
      "tear:0:50",              // zero tear offset
      "corrupt:1.5",            // probability out of range
      "reset@since:10",         // bad window keyword
      "reset@from:100:50",      // window ends before it starts
      "reset%conn:0",           // conn is 1-based
      "reset%dir:sideways",     // unknown direction
      "reset%shard:1",          // unknown selector
  };
  for (const std::string& spec : bad) {
    try {
      parse_netfault_rules(spec);
      FAIL() << "accepted malformed spec: " << spec;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find(spec), std::string::npos)
          << "error for '" << spec << "' does not name it: " << error.what();
    }
  }
}

TEST(NetFaultEngine, AcceptOrdinalsArePerRoute) {
  NetFaultEngine engine(parse_netfault_rules("reset"));
  EXPECT_EQ(engine.on_accept(0), 1u);
  EXPECT_EQ(engine.on_accept(0), 2u);
  EXPECT_EQ(engine.on_accept(5), 1u);  // fresh route, fresh ordinal
}

TEST(NetFaultEngine, WindowAndSelectorsGateMatching) {
  NetFaultEngine engine(
      parse_netfault_rules("delay:7@from:100:200%route:1,conn:2,dir:up"));
  std::string chunk = "x";
  // Wrong time, route, conn, and direction each miss.
  EXPECT_EQ(engine.on_chunk(1, 2, true, 99, chunk).pre_delay_ms, 0u);
  EXPECT_EQ(engine.on_chunk(1, 2, true, 200, chunk).pre_delay_ms, 0u);  // end exclusive
  EXPECT_EQ(engine.on_chunk(0, 2, true, 150, chunk).pre_delay_ms, 0u);
  EXPECT_EQ(engine.on_chunk(1, 1, true, 150, chunk).pre_delay_ms, 0u);
  EXPECT_EQ(engine.on_chunk(1, 2, false, 150, chunk).pre_delay_ms, 0u);
  // Exact match fires.
  EXPECT_EQ(engine.on_chunk(1, 2, true, 150, chunk).pre_delay_ms, 7u);
}

TEST(NetFaultEngine, DelayJitterReplaysUnderTheSameSeed) {
  const std::string spec = "delay:10:20:5";
  NetFaultEngine first(parse_netfault_rules(spec), 42);
  NetFaultEngine second(parse_netfault_rules(spec), 42);
  std::string chunk = "payload";
  for (int i = 0; i < 16; ++i) {
    std::string a = chunk, b = chunk;
    const auto plan_a = first.on_chunk(0, 1, true, 0, a);
    const auto plan_b = second.on_chunk(0, 1, true, 0, b);
    EXPECT_EQ(plan_a.pre_delay_ms, plan_b.pre_delay_ms);
    EXPECT_GE(plan_a.pre_delay_ms, 10u);
    EXPECT_LE(plan_a.pre_delay_ms, 30u);
  }
}

TEST(NetFaultEngine, ThrottlePacesByChunkSize) {
  NetFaultEngine engine(parse_netfault_rules("throttle:1000"));
  std::string chunk(250, 'x');
  // 250 bytes at 1000 B/s = 250 ms of pacing.
  EXPECT_EQ(engine.on_chunk(0, 1, true, 0, chunk).post_delay_ms, 250u);
}

TEST(NetFaultEngine, TearFiresOncePerConnectionAndDirection) {
  NetFaultEngine engine(parse_netfault_rules("tear:4:30"));
  std::string chunk(16, 'x');
  const auto first = engine.on_chunk(0, 1, true, 0, chunk);
  EXPECT_EQ(first.tear_at, 4u);
  EXPECT_EQ(first.tear_stall_ms, 30u);
  // Same conn+dir: never again.
  EXPECT_EQ(engine.on_chunk(0, 1, true, 0, chunk).tear_at, ~std::size_t{0});
  // Other direction and other conn: their own single tear each.
  EXPECT_EQ(engine.on_chunk(0, 1, false, 0, chunk).tear_at, 4u);
  EXPECT_EQ(engine.on_chunk(0, 2, true, 0, chunk).tear_at, 4u);
  // A tear offset past the chunk clamps to its size.
  NetFaultEngine big(parse_netfault_rules("tear:400:30"));
  std::string small(8, 'y');
  EXPECT_EQ(big.on_chunk(0, 1, true, 0, small).tear_at, 8u);
}

TEST(NetFaultEngine, BlackholeHoldsWithinItsWindow) {
  NetFaultEngine engine(parse_netfault_rules("blackhole@from:100:200"));
  std::string chunk = "data";
  EXPECT_FALSE(engine.on_chunk(0, 1, true, 50, chunk).hold);
  EXPECT_TRUE(engine.on_chunk(0, 1, true, 150, chunk).hold);
  EXPECT_TRUE(engine.holding(0, 1, true, 150));
  EXPECT_FALSE(engine.holding(0, 1, true, 200));  // healed: flush time
}

TEST(NetFaultEngine, CorruptionIsChunkBoundaryIndependent) {
  // The flip pattern is keyed on the ABSOLUTE stream offset, so slicing the
  // same stream differently must corrupt the same bytes the same way.
  const std::string stream =
      "The quick brown fox jumps over the lazy dog 0123456789";
  const std::string spec = "corrupt:0.3:77";

  NetFaultEngine whole_engine(parse_netfault_rules(spec), 1);
  std::string whole = stream;
  whole_engine.on_chunk(0, 1, true, 0, whole);
  EXPECT_NE(whole, stream);  // p=0.3 over 55 bytes: astronomically unlikely to miss all

  NetFaultEngine split_engine(parse_netfault_rules(spec), 1);
  std::string rebuilt;
  for (std::size_t at = 0; at < stream.size(); at += 7) {
    std::string piece = stream.substr(at, 7);
    split_engine.on_chunk(0, 1, true, 0, piece);
    rebuilt += piece;
  }
  EXPECT_EQ(rebuilt, whole);

  // A different connection gets a different pattern (no cross-conn replay).
  NetFaultEngine other_conn(parse_netfault_rules(spec), 1);
  std::string other = stream;
  other_conn.on_chunk(0, 2, true, 0, other);
  EXPECT_NE(other, whole);
}

TEST(NetFaultEngine, CountersDistinguishConnsFromEvents) {
  NetFaultEngine engine(parse_netfault_rules("delay:1%route:0;reset%route:9"));
  std::string chunk = "x";
  engine.on_chunk(0, 1, true, 0, chunk);
  engine.on_chunk(0, 1, true, 0, chunk);  // same conn, second event
  engine.on_chunk(0, 2, false, 0, chunk);
  const auto counters = engine.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].rule, "delay:1%route:0");
  EXPECT_EQ(counters[0].conns, 2u);   // (0,1) and (0,2)
  EXPECT_EQ(counters[0].events, 3u);  // three chunks fired
  EXPECT_EQ(counters[1].conns, 0u);   // route 9 never saw traffic
  EXPECT_EQ(counters[1].events, 0u);
}

TEST(NetFaultEngine, CountersJsonIsOneWellFormedLine) {
  NetFaultEngine engine(parse_netfault_rules("delay:1"), 7);
  std::string chunk = "x";
  engine.on_chunk(0, 1, true, 0, chunk);
  EXPECT_EQ(engine.counters_json(),
            "{\"seed\":7,\"rules\":[{\"rule\":\"delay:1\",\"conns\":1,"
            "\"events\":1}]}");
}

#ifdef __unix__

/// Minimal echo server on an ephemeral loopback port: accepts one connection
/// at a time and echoes bytes until EOF.  Runs until closed.
class EchoServer {
 public:
  EchoServer() {
    listener_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listener_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    EXPECT_EQ(::listen(listener_, 8), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listener_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] {
      while (true) {
        const int conn = ::accept(listener_, nullptr, nullptr);
        if (conn < 0) return;  // listener closed: shut down
        char buf[512];
        ssize_t n = 0;
        while ((n = ::read(conn, buf, sizeof buf)) > 0) {
          ssize_t sent = 0;
          while (sent < n) {
            const ssize_t w = ::write(conn, buf + sent, static_cast<size_t>(n - sent));
            if (w <= 0) break;
            sent += w;
          }
        }
        ::close(conn);
      }
    });
  }

  ~EchoServer() {
    ::shutdown(listener_, SHUT_RDWR);
    ::close(listener_);
    thread_.join();
  }

  std::uint16_t port() const { return port_; }

 private:
  int listener_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

int dial_local(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  return fd;
}

std::string read_exact(int fd, std::size_t want) {
  std::string out;
  char buf[512];
  while (out.size() < want) {
    const ssize_t n = ::read(fd, buf, std::min(sizeof buf, want - out.size()));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(ChaosProxy, ForwardsCleanlyWithNoRules) {
  EchoServer echo;
  ChaosProxy::Options options;
  options.targets = {echo.port()};
  ChaosProxy proxy(std::move(options));
  proxy.start();

  const int fd = dial_local(proxy.route_port(0));
  const std::string message = "hello through the proxy";
  ASSERT_EQ(::write(fd, message.data(), message.size()),
            static_cast<ssize_t>(message.size()));
  EXPECT_EQ(read_exact(fd, message.size()), message);
  ::close(fd);
  proxy.stop();  // also exercises stop() before ~ChaosProxy
}

TEST(ChaosProxy, BlackholeHoldsThenFlushesOnHeal) {
  EchoServer echo;
  ChaosProxy::Options options;
  options.targets = {echo.port()};
  options.scenario = "blackhole@from:0:300%dir:up";
  ChaosProxy proxy(std::move(options));
  proxy.start();

  const int fd = dial_local(proxy.route_port(0));
  const std::string message = "partitioned";
  const auto sent_at = std::chrono::steady_clock::now();
  ASSERT_EQ(::write(fd, message.data(), message.size()),
            static_cast<ssize_t>(message.size()));
  // The echo comes back only after the partition heals at 300 ms.
  EXPECT_EQ(read_exact(fd, message.size()), message);
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - sent_at)
                          .count();
  EXPECT_GE(waited, 250);  // held for (almost) the whole window
  const auto counters = proxy.engine().counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].conns, 1u);
  EXPECT_GE(counters[0].events, 1u);
  ::close(fd);
}

TEST(ChaosProxy, ResetTearsTheConnectionDown) {
  EchoServer echo;
  ChaosProxy::Options options;
  options.targets = {echo.port()};
  options.scenario = "reset%conn:1";
  ChaosProxy proxy(std::move(options));
  proxy.start();

  const int fd = dial_local(proxy.route_port(0));
  const std::string message = "doomed";
  ASSERT_EQ(::write(fd, message.data(), message.size()),
            static_cast<ssize_t>(message.size()));
  EXPECT_TRUE(read_exact(fd, message.size()).empty());  // EOF or ECONNRESET
  ::close(fd);

  // The SECOND connection is past the conn:1 selector and flows normally.
  const int fd2 = dial_local(proxy.route_port(0));
  ASSERT_EQ(::write(fd2, message.data(), message.size()),
            static_cast<ssize_t>(message.size()));
  EXPECT_EQ(read_exact(fd2, message.size()), message);
  ::close(fd2);
}

TEST(ChaosProxy, TearSplitsButDeliversEverything) {
  EchoServer echo;
  ChaosProxy::Options options;
  options.targets = {echo.port()};
  options.scenario = "tear:5:60%dir:up";
  ChaosProxy proxy(std::move(options));
  proxy.start();

  const int fd = dial_local(proxy.route_port(0));
  const std::string message = "torn-mid-frame-but-complete";
  ASSERT_EQ(::write(fd, message.data(), message.size()),
            static_cast<ssize_t>(message.size()));
  EXPECT_EQ(read_exact(fd, message.size()), message);
  ::close(fd);
}

TEST(ChaosProxy, MalformedScenarioThrowsAtConstruction) {
  ChaosProxy::Options options;
  options.targets = {1};
  options.scenario = "warp:9";
  EXPECT_THROW(ChaosProxy proxy(std::move(options)), std::invalid_argument);
}

#endif  // __unix__

}  // namespace
}  // namespace pglb
