#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/erdos_renyi.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

TEST(Csr, ValidatesOffsets) {
  EXPECT_THROW(Csr({}, {}), std::invalid_argument);                 // empty offsets
  EXPECT_THROW(Csr({1, 2}, {0}), std::invalid_argument);            // offsets[0] != 0
  EXPECT_THROW(Csr({0, 2, 1}, {0, 0}), std::invalid_argument);      // decreasing
  EXPECT_THROW(Csr({0, 1}, {0, 0}), std::invalid_argument);         // back != size
  EXPECT_NO_THROW(Csr({0}, {}));                                    // zero vertices
}

TEST(BuildOutCsr, PathGraph) {
  const auto csr = build_out_csr(testing::path_graph(4));
  EXPECT_EQ(csr.num_vertices(), 4u);
  EXPECT_EQ(csr.num_edges(), 3u);
  EXPECT_EQ(csr.degree(0), 1u);
  EXPECT_EQ(csr.degree(3), 0u);
  EXPECT_EQ(csr.neighbors(1)[0], 2u);
}

TEST(BuildInCsr, PathGraph) {
  const auto csr = build_in_csr(testing::path_graph(4));
  EXPECT_EQ(csr.degree(0), 0u);
  EXPECT_EQ(csr.degree(1), 1u);
  EXPECT_EQ(csr.neighbors(3)[0], 2u);
}

TEST(BuildUndirectedCsr, SymmetricAndSorted) {
  EdgeList g(4);
  g.add(0, 2);
  g.add(3, 0);
  const auto csr = build_undirected_csr(g);
  EXPECT_TRUE(csr.adjacency_sorted());
  ASSERT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.neighbors(0)[0], 2u);
  EXPECT_EQ(csr.neighbors(0)[1], 3u);
  EXPECT_EQ(csr.neighbors(2)[0], 0u);
  EXPECT_EQ(csr.neighbors(3)[0], 0u);
}

TEST(BuildUndirectedCsr, DropsSelfLoopsAndDuplicates) {
  EdgeList g(3);
  g.add(0, 0);  // loop
  g.add(0, 1);
  g.add(1, 0);  // same undirected edge
  g.add(0, 1);  // duplicate
  const auto csr = build_undirected_csr(g);
  EXPECT_EQ(csr.degree(0), 1u);
  EXPECT_EQ(csr.degree(1), 1u);
  EXPECT_EQ(csr.num_edges(), 2u);  // one edge, both directions stored
}

TEST(Csr, MaxDegree) {
  const auto star = build_out_csr(testing::star_graph(7));
  EXPECT_EQ(star.max_degree(), 6u);
  EXPECT_EQ(Csr({0}, {}).max_degree(), 0u);
}

TEST(Csr, SortAdjacencyIdempotent) {
  EdgeList g(3);
  g.add(0, 2);
  g.add(0, 1);
  auto csr = build_out_csr(g);
  EXPECT_FALSE(csr.adjacency_sorted());
  csr.sort_adjacency();
  EXPECT_TRUE(csr.adjacency_sorted());
  EXPECT_EQ(csr.neighbors(0)[0], 1u);
  csr.sort_adjacency();  // no-op
  EXPECT_EQ(csr.neighbors(0)[1], 2u);
}

class CsrRandomGraph : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CsrRandomGraph, DegreeSumsMatchEdgeCount) {
  ErdosRenyiConfig config;
  config.num_vertices = 200;
  config.num_edges = 1000;
  config.seed = GetParam();
  const auto g = generate_erdos_renyi(config);

  const auto out = build_out_csr(g);
  const auto in = build_in_csr(g);
  EXPECT_EQ(out.num_edges(), g.num_edges());
  EXPECT_EQ(in.num_edges(), g.num_edges());

  EdgeId out_sum = 0, in_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out_sum += out.degree(v);
    in_sum += in.degree(v);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

TEST_P(CsrRandomGraph, UndirectedAdjacencyIsSymmetric) {
  ErdosRenyiConfig config;
  config.num_vertices = 100;
  config.num_edges = 400;
  config.seed = GetParam();
  const auto g = generate_erdos_renyi(config);
  const auto csr = build_undirected_csr(g);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    for (const VertexId u : csr.neighbors(v)) {
      const auto nu = csr.neighbors(u);
      EXPECT_TRUE(std::binary_search(nu.begin(), nu.end(), v))
          << "missing reverse edge " << u << "->" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrRandomGraph, ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace pglb
