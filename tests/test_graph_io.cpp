#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/erdos_renyi.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "pglb_io_test";
    std::filesystem::create_directories(dir);
    const auto path = dir / name;
    cleanup_.push_back(path.string());
    return path.string();
  }

  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }

  std::vector<std::string> cleanup_;
};

TEST_F(GraphIoTest, TextRoundTrip) {
  ErdosRenyiConfig config;
  config.num_vertices = 50;
  config.num_edges = 200;
  const auto g = generate_erdos_renyi(config);

  const auto path = temp_path("round.txt");
  write_edge_list_text(g, path);
  const auto loaded = read_edge_list_text(path);

  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) EXPECT_EQ(loaded.edge(i), g.edge(i));
}

TEST_F(GraphIoTest, TextSkipsCommentsAndAcceptsSpaces) {
  const auto path = temp_path("snap.txt");
  {
    std::ofstream out(path);
    out << "# a SNAP-style header\n0\t1\n# interior comment\n2 3\n\n";
  }
  const auto g = read_edge_list_text(path);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(0), (Edge{0, 1}));
  EXPECT_EQ(g.edge(1), (Edge{2, 3}));
  EXPECT_EQ(g.num_vertices(), 4u);
}

TEST_F(GraphIoTest, TextRejectsGarbage) {
  const auto path = temp_path("bad.txt");
  {
    std::ofstream out(path);
    out << "0\tnot_a_number\n";
  }
  EXPECT_THROW(read_edge_list_text(path), std::runtime_error);
}

TEST_F(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_text("/nonexistent/path/x.txt"), std::runtime_error);
  EXPECT_THROW(read_edge_list_binary("/nonexistent/path/x.bin"), std::runtime_error);
}

TEST_F(GraphIoTest, BinaryRoundTripPreservesVertexSpace) {
  const auto g = testing::star_graph(9);
  const auto path = temp_path("round.bin");
  write_edge_list_binary(g, path);
  const auto loaded = read_edge_list_binary(path);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) EXPECT_EQ(loaded.edge(i), g.edge(i));
}

TEST_F(GraphIoTest, BinaryRejectsBadMagic) {
  const auto path = temp_path("magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const std::uint64_t junk[3] = {1, 2, 3};
    out.write(reinterpret_cast<const char*>(junk), sizeof junk);
  }
  EXPECT_THROW(read_edge_list_binary(path), std::runtime_error);
}

TEST_F(GraphIoTest, BinaryRejectsTruncatedData) {
  const auto g = testing::star_graph(9);
  const auto path = temp_path("trunc.bin");
  write_edge_list_binary(g, path);
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 4);
  EXPECT_THROW(read_edge_list_binary(path), std::runtime_error);
}

TEST_F(GraphIoTest, MatrixMarketRoundTrip) {
  ErdosRenyiConfig config;
  config.num_vertices = 40;
  config.num_edges = 150;
  const auto g = generate_erdos_renyi(config);
  const auto path = temp_path("round.mtx");
  write_matrix_market(g, path);
  const auto loaded = read_matrix_market(path);
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.num_edges(); ++i) EXPECT_EQ(loaded.edge(i), g.edge(i));
}

TEST_F(GraphIoTest, MatrixMarketSymmetricExpandsBothDirections) {
  const auto path = temp_path("sym.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "% lower triangle only\n"
        << "3 3 2\n"
        << "2 1\n"
        << "3 3\n";  // diagonal entry expands once
  }
  const auto g = read_matrix_market(path);
  EXPECT_EQ(g.num_vertices(), 3u);
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.edge(0), (Edge{1, 0}));
  EXPECT_EQ(g.edge(1), (Edge{0, 1}));
  EXPECT_EQ(g.edge(2), (Edge{2, 2}));
}

TEST_F(GraphIoTest, MatrixMarketRejectsBadInputs) {
  const auto no_banner = temp_path("nobanner.mtx");
  {
    std::ofstream out(no_banner);
    out << "3 3 1\n1 2\n";
  }
  EXPECT_THROW(read_matrix_market(no_banner), std::runtime_error);

  const auto rectangular = temp_path("rect.mtx");
  {
    std::ofstream out(rectangular);
    out << "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n";
  }
  EXPECT_THROW(read_matrix_market(rectangular), std::runtime_error);

  const auto out_of_bounds = temp_path("oob.mtx");
  {
    std::ofstream out(out_of_bounds);
    out << "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 9\n";
  }
  EXPECT_THROW(read_matrix_market(out_of_bounds), std::runtime_error);

  const auto truncated = temp_path("trunc.mtx");
  {
    std::ofstream out(truncated);
    out << "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n";
  }
  EXPECT_THROW(read_matrix_market(truncated), std::runtime_error);
}

TEST_F(GraphIoTest, TextReaderSniffsMatrixMarketBanner) {
  // A .mtx file fed to the SNAP-text reader must parse as MatrixMarket
  // (1-based ids, banner honored) with no format flag.
  const auto path = temp_path("sniff.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMarket matrix coordinate pattern general\n"
        << "% comment\n"
        << "3 3 2\n"
        << "1 2\n"
        << "3 1\n";
  }
  const auto via_text = read_edge_list_text(path);
  const auto via_mtx = read_matrix_market(path);
  ASSERT_EQ(via_text.num_edges(), 2u);
  EXPECT_EQ(via_text.num_vertices(), via_mtx.num_vertices());
  for (EdgeId i = 0; i < via_text.num_edges(); ++i) {
    EXPECT_EQ(via_text.edge(i), via_mtx.edge(i));
  }
  EXPECT_EQ(via_text.edge(0), (Edge{0, 1}));  // 1-based on disk, 0-based here
}

TEST_F(GraphIoTest, TextReaderRejectsMalformedBanner) {
  // A "%%" first line that is not valid MatrixMarket is an error — it must
  // never fall back to being skipped as a SNAP comment.
  const auto path = temp_path("badbanner.mtx");
  {
    std::ofstream out(path);
    out << "%%MatrixMonket matrix coordinate pattern general\n0\t1\n";
  }
  EXPECT_THROW(read_edge_list_text(path), std::runtime_error);

  // Even a bare "%%" first line trips the sniff: it must error as a broken
  // banner, not be skipped like a '#' comment.
  const auto stray = temp_path("stray.txt");
  {
    std::ofstream out(stray);
    out << "%% \n0\t1\n";
  }
  EXPECT_THROW(read_edge_list_text(stray), std::runtime_error);
}

TEST_F(GraphIoTest, TextFootprintMatchesActualFileSize) {
  ErdosRenyiConfig config;
  config.num_vertices = 1000;
  config.num_edges = 5000;
  const auto g = generate_erdos_renyi(config);
  const auto path = temp_path("footprint.txt");
  write_edge_list_text(g, path);
  const auto actual = std::filesystem::file_size(path);
  const auto estimated = text_footprint_bytes(g);
  // write_edge_list_text adds one comment header line on top of the payload.
  EXPECT_GT(actual, estimated);
  EXPECT_LT(actual - estimated, 120u);
}

}  // namespace
}  // namespace pglb
