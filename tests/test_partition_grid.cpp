#include "partition/grid.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/metrics.hpp"
#include "partition/weights.hpp"

namespace pglb {
namespace {

EdgeList sample_graph() {
  PowerLawConfig config;
  config.num_vertices = 12'000;
  config.alpha = 2.1;
  config.seed = 31;
  return generate_powerlaw(config);
}

TEST(Grid, RequiresSquareMachineCount) {
  const auto g = sample_graph();
  const GridPartitioner p;
  EXPECT_THROW(p.partition(g, uniform_weights(2), 1), std::invalid_argument);
  EXPECT_THROW(p.partition(g, uniform_weights(3), 1), std::invalid_argument);
  EXPECT_NO_THROW(p.partition(g, uniform_weights(1), 1));
  EXPECT_NO_THROW(p.partition(g, uniform_weights(4), 1));
  EXPECT_NO_THROW(p.partition(g, uniform_weights(9), 1));
}

TEST(Grid, AssignsAllEdges) {
  const auto g = sample_graph();
  const auto a = GridPartitioner{}.partition(g, uniform_weights(9), 1);
  ASSERT_EQ(a.edge_to_machine.size(), g.num_edges());
  for (const MachineId m : a.edge_to_machine) EXPECT_LT(m, 9u);
}

TEST(Grid, ReplicasBoundedByConstraintCross) {
  // The defining Grid property (Sec. II-B3): each vertex's replicas live in
  // one row + one column, so at most 2*sqrt(M) - 1 machines.
  const auto g = sample_graph();
  const MachineId machines = 9;  // side 3 -> bound 5
  const auto a = GridPartitioner{}.partition(g, uniform_weights(machines), 5);

  std::vector<std::uint64_t> replicas(g.num_vertices(), 0);
  EdgeId index = 0;
  for (const Edge& e : g.edges()) {
    const MachineId m = a.edge_to_machine[index++];
    replicas[e.src] |= std::uint64_t{1} << m;
    replicas[e.dst] |= std::uint64_t{1} << m;
  }
  for (const std::uint64_t mask : replicas) {
    EXPECT_LE(__builtin_popcountll(mask), 5);
  }
}

TEST(Grid, LowerReplicationThanTheoreticalMax) {
  const auto g = sample_graph();
  const auto weights = uniform_weights(9);
  const auto a = GridPartitioner{}.partition(g, weights, 1);
  const auto metrics = compute_partition_metrics(g, a, weights);
  EXPECT_LT(metrics.replication_factor, 5.0);
  EXPECT_GE(metrics.replication_factor, 1.0);
}

TEST(Grid, BalancesUniformLoads) {
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto a = GridPartitioner{}.partition(g, weights, 1);
  const auto metrics = compute_partition_metrics(g, a, weights);
  EXPECT_LT(metrics.weighted_imbalance, 1.25);
}

TEST(Grid, SkewedWeightsShiftLoad) {
  const auto g = sample_graph();
  const std::vector<double> weights = {1.0, 1.0, 1.0, 5.0};
  const auto a = GridPartitioner{}.partition(g, weights, 1);
  const auto counts = a.machine_edge_counts();
  // The heavy machine must receive the largest share.
  for (MachineId m = 0; m < 3; ++m) EXPECT_GT(counts[3], counts[m]);
}

TEST(Grid, Deterministic) {
  const auto g = sample_graph();
  const auto a = GridPartitioner{}.partition(g, uniform_weights(4), 2);
  const auto b = GridPartitioner{}.partition(g, uniform_weights(4), 2);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
}

}  // namespace
}  // namespace pglb
