#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

#include "cost/pareto.hpp"
#include "machine/catalog.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

TEST(CostModel, OnePointPerMachinePerApp) {
  ProxySuite suite(kScale);
  const AppKind apps[] = {AppKind::kPageRank, AppKind::kColoring};
  const auto points = cost_efficiency(c4_family(), apps, suite, "c4.xlarge");
  EXPECT_EQ(points.size(), 8u);
  for (const CostPoint& p : points) {
    EXPECT_GT(p.runtime_seconds, 0.0);
    EXPECT_GT(p.speedup, 0.0);
    EXPECT_GE(p.cost_per_task, 0.0);
    EXPECT_LE(p.relative_cost, 1.0);
  }
}

TEST(CostModel, BaselineHasUnitSpeedup) {
  ProxySuite suite(kScale);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto points = cost_efficiency(c4_family(), apps, suite, "c4.xlarge");
  for (const CostPoint& p : points) {
    if (p.machine == "c4.xlarge") {
      EXPECT_DOUBLE_EQ(p.speedup, 1.0);
    }
    if (p.machine == "c4.8xlarge") {
      EXPECT_GT(p.speedup, 1.0);
    }
  }
}

TEST(CostModel, EightXlargeIsTheExpensiveOne) {
  // Fig. 11's observation: 8xlarge costs most per task for graph workloads.
  ProxySuite suite(kScale);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto points = cost_efficiency(c4_family(), apps, suite, "c4.xlarge");
  const CostPoint* big = nullptr;
  for (const CostPoint& p : points) {
    if (p.machine == "c4.8xlarge") big = &p;
  }
  ASSERT_NE(big, nullptr);
  for (const CostPoint& p : points) {
    EXPECT_LE(p.cost_per_task, big->cost_per_task * (1 + 1e-9)) << p.machine;
  }
  EXPECT_DOUBLE_EQ(big->relative_cost, 1.0);
}

TEST(CostModel, UnknownBaselineRejected) {
  ProxySuite suite(kScale);
  const AppKind apps[] = {AppKind::kPageRank};
  EXPECT_THROW(cost_efficiency(c4_family(), apps, suite, "x1.32xlarge"),
               std::invalid_argument);
  EXPECT_THROW(cost_efficiency({}, apps, suite, "c4.xlarge"), std::invalid_argument);
}

TEST(ClusterCost, SumsRatesOverMakespan) {
  const Cluster cluster({machine_by_name("c4.xlarge"), machine_by_name("c4.2xlarge")});
  // (0.209 + 0.419) $/h for one hour.
  EXPECT_NEAR(cluster_cost_per_task(cluster, 3600.0), 0.628, 1e-12);
  EXPECT_DOUBLE_EQ(cluster_cost_per_task(cluster, 0.0), 0.0);
  EXPECT_THROW(cluster_cost_per_task(cluster, -1.0), std::invalid_argument);
}

TEST(ClusterCost, LocalMachinesAreFree) {
  const Cluster cluster({machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  EXPECT_DOUBLE_EQ(cluster_cost_per_task(cluster, 7200.0), 0.0);
}

TEST(Pareto, DominanceSemantics) {
  CostPoint cheap_slow{.machine = "a", .speedup = 1.0, .cost_per_task = 0.1};
  CostPoint pricey_fast{.machine = "b", .speedup = 4.0, .cost_per_task = 0.5};
  CostPoint dominated{.machine = "c", .speedup = 0.9, .cost_per_task = 0.2};
  EXPECT_TRUE(dominates(cheap_slow, dominated));
  EXPECT_FALSE(dominates(cheap_slow, pricey_fast));
  EXPECT_FALSE(dominates(pricey_fast, cheap_slow));
  EXPECT_FALSE(dominates(cheap_slow, cheap_slow));  // no strict improvement

  const std::vector<CostPoint> points = {cheap_slow, pricey_fast, dominated};
  const auto frontier = pareto_frontier(points);
  EXPECT_EQ(frontier, (std::vector<std::size_t>{0, 1}));
}

TEST(Pareto, AllEqualPointsSurvive) {
  CostPoint p{.machine = "a", .speedup = 1.0, .cost_per_task = 1.0};
  const std::vector<CostPoint> points = {p, p, p};
  EXPECT_EQ(pareto_frontier(points).size(), 3u);
}

TEST(Pareto, RealCostPointsYieldNonTrivialFrontier) {
  ProxySuite suite(kScale);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto points = cost_efficiency(c4_family(), apps, suite, "c4.xlarge");
  const auto frontier = pareto_frontier(points);
  EXPECT_GE(frontier.size(), 1u);
  EXPECT_LE(frontier.size(), points.size());
}

}  // namespace
}  // namespace pglb
