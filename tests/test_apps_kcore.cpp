#include "apps/kcore.hpp"

#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

WorkloadTraits traits_of(const EdgeList& g) {
  return traits_from_stats(compute_stats(g), 1.0);
}

DistributedGraph partition_with(const EdgeList& g, PartitionerKind kind,
                                MachineId machines) {
  const auto p = make_partitioner(kind);
  const auto a = p->partition(g, std::vector<double>(machines, 1.0), 91);
  return build_distributed(g, a);
}

TEST(KCoreReference, KnownGraphs) {
  // Complete graph K5: everyone coreness 4.
  const auto k5 = kcore_reference(testing::complete_graph(5));
  for (const auto c : k5) EXPECT_EQ(c, 4u);

  // Cycle: coreness 2 everywhere.
  const auto cyc = kcore_reference(testing::cycle_graph(12));
  for (const auto c : cyc) EXPECT_EQ(c, 2u);

  // Star: hub and spokes all coreness 1.
  const auto star = kcore_reference(testing::star_graph(9));
  for (const auto c : star) EXPECT_EQ(c, 1u);

  // Isolated vertices: coreness 0.
  const auto iso = kcore_reference(EdgeList(4));
  for (const auto c : iso) EXPECT_EQ(c, 0u);
}

TEST(KCore, MatchesReferenceOnKnownGraphs) {
  const auto cluster = testing::case1_cluster();
  for (const auto& g : {testing::complete_graph(6), testing::cycle_graph(15),
                        testing::two_triangles()}) {
    const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
    const auto out = run_kcore(g, dg, cluster, traits_of(g));
    EXPECT_EQ(out.coreness, kcore_reference(g));
    EXPECT_TRUE(out.report.converged);
  }
}

TEST(KCore, TwoTrianglesDegeneracy) {
  const auto g = testing::two_triangles();
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_kcore(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.degeneracy, 2u);
}

class KCorePartitionInvariance : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(KCorePartitionInvariance, MatchesPeelingReference) {
  PowerLawConfig config;
  config.num_vertices = 2500;
  config.alpha = 2.0;
  config.seed = 97;
  const auto g = generate_powerlaw(config);
  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, GetParam(), cluster.size());
  const auto out = run_kcore(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.coreness, kcore_reference(g));
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, KCorePartitionInvariance,
                         ::testing::Values(PartitionerKind::kRandomHash,
                                           PartitionerKind::kOblivious,
                                           PartitionerKind::kHybrid,
                                           PartitionerKind::kGinger,
                                           PartitionerKind::kChunking));

TEST(KCore, ErdosRenyiAgreesToo) {
  ErdosRenyiConfig config;
  config.num_vertices = 800;
  config.num_edges = 4000;
  const auto g = generate_erdos_renyi(config);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kHybrid, cluster.size());
  const auto out = run_kcore(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.coreness, kcore_reference(g));
  EXPECT_GE(out.degeneracy, 3u);  // mean degree 10 -> a dense core exists
}

TEST(KCore, CorenessBoundedByDegree) {
  PowerLawConfig config;
  config.num_vertices = 2000;
  config.alpha = 2.2;
  const auto g = generate_powerlaw(config);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_kcore(g, dg, cluster, traits_of(g));
  const auto degree = g.total_degrees();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(out.coreness[v], degree[v]);
  }
}

}  // namespace
}  // namespace pglb
