#include "cluster/interference.hpp"

#include <gtest/gtest.h>

#include "apps/pagerank.hpp"
#include "engine/engine.hpp"
#include "apps/reference.hpp"
#include "baselines/dynamic_migration.hpp"
#include "gen/corpus.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

TEST(InterferenceSchedule, FactorComposition) {
  const InterferenceSchedule schedule({{.machine = 1, .from_step = 2, .to_step = 5,
                                        .slowdown = 0.5},
                                       {.machine = 1, .from_step = 4, .to_step = 6,
                                        .slowdown = 0.8}});
  EXPECT_DOUBLE_EQ(schedule.factor(1, 1), 1.0);   // before
  EXPECT_DOUBLE_EQ(schedule.factor(1, 2), 0.5);   // first event
  EXPECT_DOUBLE_EQ(schedule.factor(1, 4), 0.4);   // overlap multiplies
  EXPECT_DOUBLE_EQ(schedule.factor(1, 5), 0.8);   // second only
  EXPECT_DOUBLE_EQ(schedule.factor(1, 6), 1.0);   // after
  EXPECT_DOUBLE_EQ(schedule.factor(0, 3), 1.0);   // other machine untouched
}

TEST(InterferenceSchedule, RejectsMalformedEvents) {
  EXPECT_THROW(InterferenceSchedule({{.machine = 0, .from_step = 0, .to_step = 1,
                                      .slowdown = 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(InterferenceSchedule({{.machine = 0, .from_step = 0, .to_step = 1,
                                      .slowdown = 1.5}}),
               std::invalid_argument);
  EXPECT_THROW(InterferenceSchedule({{.machine = 0, .from_step = 3, .to_step = 1,
                                      .slowdown = 0.5}}),
               std::invalid_argument);
}

struct Harness {
  Cluster cluster = testing::case2_cluster();
  EdgeList graph = make_corpus_graph(corpus_entry("wiki"), 1.0 / 256.0);
  WorkloadTraits traits;
  DistributedGraph dg;

  Harness() {
    traits = traits_from_stats(compute_stats(graph), 1.0 / 256.0);
    const auto a =
        RandomHashPartitioner{}.partition(graph, uniform_weights(cluster.size()), 9);
    dg = build_distributed(graph, a);
  }
};

TEST(Interference, SlowsTheRunButNotTheAnswers) {
  Harness h;
  PageRankOptions clean;
  PageRankOptions noisy;
  // Slow the *straggler* (machine 0 under a uniform split) — slowing a
  // machine with barrier slack would leave the makespan untouched.
  noisy.interference = InterferenceSchedule(
      {{.machine = 0, .from_step = 0, .to_step = 100, .slowdown = 0.5}});

  const auto r_clean = run_pagerank(h.graph, h.dg, h.cluster, h.traits, clean);
  const auto r_noisy = run_pagerank(h.graph, h.dg, h.cluster, h.traits, noisy);

  EXPECT_GT(r_noisy.report.makespan_seconds, r_clean.report.makespan_seconds);
  // Virtual-time interference never changes computed values.
  ASSERT_EQ(r_noisy.ranks.size(), r_clean.ranks.size());
  for (VertexId v = 0; v < h.graph.num_vertices(); v += 17) {
    EXPECT_DOUBLE_EQ(r_noisy.ranks[v], r_clean.ranks[v]);
  }
}

TEST(Interference, TransientEventOnlyAffectsItsWindow) {
  Harness h;
  PageRankOptions options;
  options.max_iterations = 10;
  options.interference = InterferenceSchedule(
      {{.machine = 0, .from_step = 3, .to_step = 5, .slowdown = 0.25}});
  const auto r = run_pagerank(h.graph, h.dg, h.cluster, h.traits, options);

  ASSERT_EQ(r.report.trace.size(), 10u);
  // The affected supersteps are strictly longer than the untouched ones.
  EXPECT_GT(r.report.trace[3].window_seconds, 1.5 * r.report.trace[0].window_seconds);
  EXPECT_GT(r.report.trace[4].window_seconds, 1.5 * r.report.trace[0].window_seconds);
  EXPECT_NEAR(r.report.trace[5].window_seconds, r.report.trace[0].window_seconds,
              r.report.trace[0].window_seconds * 0.3);
}

TEST(Interference, SetAfterExecutionStartsThrows) {
  Harness h;
  VirtualClusterExecutor exec(h.cluster, profile_for(AppKind::kPageRank), h.traits);
  const std::vector<double> ops = {1.0, 1.0};
  const std::vector<double> comm = {0.0, 0.0};
  exec.record_superstep(ops, comm);
  EXPECT_THROW(exec.set_interference(InterferenceSchedule{}), std::logic_error);
}

TEST(Interference, ReactiveMigrationAdaptsToIt) {
  // A sustained slowdown of the big machine makes the static CCR-like split
  // wrong mid-run; the reactive controller shifts work back and beats the
  // frozen configuration.
  Harness h;
  const std::vector<double> ccr_weights = {1.0, 3.2};
  const auto assignment = RandomHashPartitioner{}.partition(h.graph, ccr_weights, 9);

  DynamicMigrationOptions frozen;
  frozen.migration_aggressiveness = 0.0;
  frozen.pagerank.max_iterations = 20;
  frozen.pagerank.interference = InterferenceSchedule(
      {{.machine = 1, .from_step = 5, .to_step = 20, .slowdown = 0.35}});

  DynamicMigrationOptions reactive = frozen;
  reactive.migration_aggressiveness = 0.5;

  const auto r_frozen =
      run_pagerank_with_migration(h.graph, assignment, h.cluster, h.traits, frozen);
  const auto r_reactive =
      run_pagerank_with_migration(h.graph, assignment, h.cluster, h.traits, reactive);

  EXPECT_GT(r_reactive.edges_migrated, 0u);
  EXPECT_LT(r_reactive.report.makespan_seconds, r_frozen.report.makespan_seconds);
  // Work moved back toward the (now faster in relative terms) small machine.
  EXPECT_GT(r_reactive.final_shares[0], 1.0 / 4.2);
}

}  // namespace
}  // namespace pglb
