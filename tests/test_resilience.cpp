// Resilience primitives: deadlines, cooperative cancellation (explicit and
// ambient), the fault-injection spec grammar, and deterministic trigger
// behaviour of the fault registry (docs/ROBUSTNESS.md).

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "gen/powerlaw.hpp"
#include "obs/registry.hpp"
#include "partition/hybrid.hpp"
#include "partition/weights.hpp"
#include "util/deadline.hpp"
#include "util/fault.hpp"

namespace pglb {
namespace {

/// RAII guard: the fault registry is process-global, so every test that arms
/// it must disarm on every exit path.
struct FaultGuard {
  ~FaultGuard() { FaultRegistry::instance().clear(); }
};

TEST(Deadline, DefaultNeverExpires) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.is_never());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining_seconds(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(Deadline::never().is_never());
}

TEST(Deadline, AfterExpiresOnSchedule) {
  const Deadline past = Deadline::after(std::chrono::milliseconds(-1));
  EXPECT_FALSE(past.is_never());
  EXPECT_TRUE(past.expired());
  EXPECT_LE(past.remaining_seconds(), 0.0);

  const Deadline future = Deadline::after_ms(60'000);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining_seconds(), 0.0);
}

TEST(CancelToken, ManualCancelFires) {
  const CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.check("site");  // not fired: no throw

  const CancelToken copy = token;  // copies share the flag
  copy.cancel();
  EXPECT_TRUE(token.cancelled());
  try {
    token.check("my.site");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelledError::Reason::kCancelled);
    EXPECT_EQ(e.site(), "my.site");
  }
}

TEST(CancelToken, ExpiredDeadlineFiresWithDeadlineReason) {
  const CancelToken token(Deadline::after(std::chrono::milliseconds(-1)));
  try {
    token.check("profiler.cell");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelledError::Reason::kDeadline);
    EXPECT_EQ(e.site(), "profiler.cell");
  }
}

TEST(CancelToken, ManualCancelWinsOverDeadline) {
  const CancelToken token(Deadline::after(std::chrono::milliseconds(-1)));
  token.cancel();
  try {
    token.check("site");
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.reason(), CancelledError::Reason::kCancelled);
  }
}

TEST(CancelToken, CheckCancelIsNoopOnNull) {
  check_cancel(nullptr, "anywhere");  // must not throw
}

TEST(CancelScope, InstallsAndRestoresAmbientToken) {
  EXPECT_EQ(CancelScope::current(), nullptr);
  poll_cancellation("noop");  // no scope: no-op
  const CancelToken outer;
  {
    const CancelScope outer_scope(outer);
    ASSERT_NE(CancelScope::current(), nullptr);
    const CancelToken inner;
    inner.cancel();
    {
      const CancelScope inner_scope(inner);
      EXPECT_THROW(poll_cancellation("inner"), CancelledError);
    }
    poll_cancellation("outer-again");  // outer token not fired
  }
  EXPECT_EQ(CancelScope::current(), nullptr);
}

TEST(CancelScope, DoesNotPropagateToOtherThreads) {
  const CancelToken token;
  const CancelScope scope(token);
  std::thread other([] { EXPECT_EQ(CancelScope::current(), nullptr); });
  other.join();
}

TEST(PartitionerCancellation, HybridHonoursAmbientDeadline) {
  PowerLawConfig config;
  config.num_vertices = 40'000;  // > one 16384-edge poll stride
  config.alpha = 2.0;
  config.seed = 3;
  const EdgeList graph = generate_powerlaw(config);
  ASSERT_GT(graph.num_edges(), 16'384u);

  const HybridPartitioner partitioner;
  // No scope: runs to completion.
  const auto baseline = partitioner.partition(graph, uniform_weights(4), 1);

  const CancelToken fired(Deadline::after(std::chrono::milliseconds(-1)));
  const CancelScope scope(fired);
  EXPECT_THROW(partitioner.partition(graph, uniform_weights(4), 1), CancelledError);

  // A live (unexpired) scope must not change the output.
  const CancelToken live(Deadline::after_ms(60'000));
  const CancelScope live_scope(live);
  const auto under_deadline = partitioner.partition(graph, uniform_weights(4), 1);
  EXPECT_EQ(baseline.edge_to_machine, under_deadline.edge_to_machine);
}

TEST(FaultSpecs, ParsesActionsAndTriggers) {
  const auto specs = parse_fault_specs(
      "profiler.cell=fail;proxy.gen=stall:250@nth:3;server.parse=fail@prob:0.25:7");
  ASSERT_EQ(specs.size(), 3u);

  EXPECT_EQ(specs[0].site, "profiler.cell");
  EXPECT_EQ(specs[0].action, FaultSpec::Action::kFail);
  EXPECT_EQ(specs[0].trigger, FaultSpec::Trigger::kAlways);

  EXPECT_EQ(specs[1].site, "proxy.gen");
  EXPECT_EQ(specs[1].action, FaultSpec::Action::kStall);
  EXPECT_EQ(specs[1].stall_ms, 250u);
  EXPECT_EQ(specs[1].trigger, FaultSpec::Trigger::kNth);
  EXPECT_EQ(specs[1].nth, 3u);

  EXPECT_EQ(specs[2].trigger, FaultSpec::Trigger::kProb);
  EXPECT_DOUBLE_EQ(specs[2].probability, 0.25);
  EXPECT_EQ(specs[2].seed, 7u);

  EXPECT_TRUE(parse_fault_specs("").empty());
  EXPECT_TRUE(parse_fault_specs(";;").empty());
}

TEST(FaultSpecs, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_specs("no-equals"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("=fail"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("site=explode"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("site=stall"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("site=fail@sometimes"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("site=fail@nth:0"), std::invalid_argument);
  EXPECT_THROW(parse_fault_specs("site=fail@prob:1.5"), std::invalid_argument);
}

TEST(FaultRegistry, DisarmedIsANoop) {
  const FaultGuard guard;
  FaultRegistry::instance().clear();
  EXPECT_FALSE(FaultRegistry::instance().enabled());
  fault_point("profiler.cell");  // must not throw
  EXPECT_EQ(FaultRegistry::instance().hit_count("profiler.cell"), 0u);
}

TEST(FaultRegistry, NthTriggerFiresExactlyOnce) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("t.site=fail@nth:3");

  fault_point("t.site");
  fault_point("t.site");
  EXPECT_THROW(fault_point("t.site"), FaultInjectedError);
  fault_point("t.site");  // past the nth hit: disarmed again
  EXPECT_EQ(FaultRegistry::instance().hit_count("t.site"), 4u);
  EXPECT_EQ(FaultRegistry::instance().injected_count("t.site"), 1u);
  EXPECT_EQ(FaultRegistry::instance().injected_total(), 1u);
}

TEST(FaultRegistry, UnarmedSitesPassThrough) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("t.armed=fail");
  fault_point("t.other");  // enabled registry, different site: no throw
  EXPECT_EQ(FaultRegistry::instance().hit_count("t.other"), 0u);
}

TEST(FaultRegistry, ProbTriggerIsDeterministicPerSeed) {
  const FaultGuard guard;
  const auto fire_pattern = [](std::uint64_t seed) {
    FaultRegistry::instance().configure(
        "t.prob=fail@prob:0.5:" + std::to_string(seed));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool threw = false;
      try {
        fault_point("t.prob");
      } catch (const FaultInjectedError&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };

  const auto a = fire_pattern(7);
  const auto b = fire_pattern(7);
  EXPECT_EQ(a, b) << "same seed must fire on the same hit sequence";
  EXPECT_NE(a, fire_pattern(8)) << "different seeds must differ (p=0.5, 64 draws)";

  std::size_t fires = 0;
  for (const bool f : a) fires += f ? 1u : 0u;
  EXPECT_GT(fires, 16u);  // loose two-sided sanity bound on p=0.5
  EXPECT_LT(fires, 48u);
}

TEST(FaultRegistry, StallDelaysWithoutThrowing) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("t.stall=stall:60");
  const auto start = std::chrono::steady_clock::now();
  fault_point("t.stall");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 50);
  EXPECT_EQ(FaultRegistry::instance().injected_count("t.stall"), 1u);
}

TEST(FaultRegistry, FiredInjectionsCountIntoGlobalRegistry) {
  const FaultGuard guard;
  const std::uint64_t before = global_registry().counter("fault.injected");
  FaultRegistry::instance().configure("t.count=fail");
  EXPECT_THROW(fault_point("t.count"), FaultInjectedError);
  EXPECT_THROW(fault_point("t.count"), FaultInjectedError);
  EXPECT_EQ(global_registry().counter("fault.injected"), before + 2);
}

TEST(FaultRegistry, ClearDisarms) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("t.site=fail");
  EXPECT_TRUE(FaultRegistry::instance().enabled());
  FaultRegistry::instance().clear();
  EXPECT_FALSE(FaultRegistry::instance().enabled());
  fault_point("t.site");  // disarmed: no throw
}

TEST(FaultRegistry, ArmKeepsOtherSites) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("t.a=fail@nth:100");
  FaultSpec extra;
  extra.site = "t.b";
  FaultRegistry::instance().arm(extra);
  EXPECT_THROW(fault_point("t.b"), FaultInjectedError);
  fault_point("t.a");  // still armed (nth:100 never reached), still counting
  EXPECT_EQ(FaultRegistry::instance().hit_count("t.a"), 1u);
}

}  // namespace
}  // namespace pglb
