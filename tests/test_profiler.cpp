#include "core/profiler.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

EdgeList small_graph() {
  PowerLawConfig config;
  config.num_vertices = 4000;
  config.alpha = 2.1;
  config.seed = 61;
  return generate_powerlaw(config);
}

TEST(ProfileSingleMachine, FasterMachineProfilesFaster) {
  const auto g = small_graph();
  for (const AppKind app : {AppKind::kPageRank, AppKind::kConnectedComponents,
                            AppKind::kColoring, AppKind::kTriangleCount}) {
    const double slow = profile_single_machine(machine_by_name("xeon_server_s"), app, g, kScale);
    const double fast = profile_single_machine(machine_by_name("xeon_server_l"), app, g, kScale);
    EXPECT_GT(slow, fast) << to_string(app);
  }
}

TEST(ProfileSingleMachine, DeterministicVirtualTime) {
  const auto g = small_graph();
  const double a =
      profile_single_machine(machine_by_name("c4.2xlarge"), AppKind::kPageRank, g, kScale);
  const double b =
      profile_single_machine(machine_by_name("c4.2xlarge"), AppKind::kPageRank, g, kScale);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(ProfileSingleMachine, PartitionSeedIsFixedByDesign) {
  // A profile entry must be a pure function of (machine class, app, proxy):
  // the service's profile cache keys carry no seed, so a cached entry has to
  // be byte-identical to a fresh run, and CCR is meant to capture hardware,
  // not partition sampling.  The partition seed is therefore a pinned
  // constant, not plumbed from the pipeline seed.  On the one-machine
  // profiling cluster the partition is degenerate anyway (every edge lands on
  // machine 0), so no information is lost by fixing it.
  EXPECT_EQ(kProfilingPartitionSeed, 0u);
  const auto g = small_graph();
  const double a =
      profile_single_machine(machine_by_name("xeon_server_s"), AppKind::kPageRank, g, kScale);
  const double b =
      profile_single_machine(machine_by_name("xeon_server_s"), AppKind::kPageRank, g, kScale);
  EXPECT_EQ(a, b);
}

TEST(CcrPool, InsertAndQueryNearestAlpha) {
  CcrPool pool;
  pool.insert({AppKind::kPageRank, 1.95, {10.0, 4.0}});
  pool.insert({AppKind::kPageRank, 2.3, {10.0, 2.0}});

  const auto near_dense = pool.ccr_for(AppKind::kPageRank, 1.9);
  EXPECT_DOUBLE_EQ(near_dense[1], 2.5);  // from the 1.95 entry
  const auto near_sparse = pool.ccr_for(AppKind::kPageRank, 2.4);
  EXPECT_DOUBLE_EQ(near_sparse[1], 5.0);  // from the 2.3 entry
}

TEST(CcrPool, MissingAppThrows) {
  CcrPool pool;
  pool.insert({AppKind::kPageRank, 2.1, {1.0, 2.0}});
  EXPECT_TRUE(pool.has_app(AppKind::kPageRank));
  EXPECT_FALSE(pool.has_app(AppKind::kColoring));
  EXPECT_THROW(pool.ccr_for(AppKind::kColoring, 2.1), std::out_of_range);
  EXPECT_THROW(pool.mean_ccr_for(AppKind::kColoring), std::out_of_range);
}

TEST(CcrPool, MeanCcrAveragesProxies) {
  CcrPool pool;
  pool.insert({AppKind::kColoring, 1.95, {4.0, 2.0}});
  pool.insert({AppKind::kColoring, 2.3, {8.0, 2.0}});
  const auto mean = pool.mean_ccr_for(AppKind::kColoring);
  // Entry 1: times {4,2} -> CCR {1, 2}; entry 2: times {8,2} -> CCR {1, 4}.
  EXPECT_DOUBLE_EQ(mean[0], 1.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
}

TEST(CcrPool, RejectsInconsistentGroupCounts) {
  CcrPool pool;
  pool.insert({AppKind::kPageRank, 2.1, {1.0, 2.0}});
  EXPECT_THROW(pool.insert({AppKind::kPageRank, 2.3, {1.0}}), std::invalid_argument);
  EXPECT_THROW(pool.insert({AppKind::kPageRank, 2.3, {}}), std::invalid_argument);
}

TEST(ProfileCluster, OneEntryPerAppPerProxy) {
  ProxySuite suite(kScale);
  const auto cluster = testing::case2_cluster();
  const AppKind apps[] = {AppKind::kPageRank, AppKind::kTriangleCount};
  const auto pool = profile_cluster(cluster, suite, apps);
  EXPECT_EQ(pool.entries().size(), 6u);  // 2 apps x 3 proxies
  EXPECT_EQ(pool.num_groups(), 2u);
  for (const auto& entry : pool.entries()) {
    EXPECT_GT(entry.group_times[0], entry.group_times[1])
        << "xeon_server_l must out-profile xeon_server_s";
  }
}

TEST(ProfileCluster, GroupsCollapseIdenticalMachines) {
  ProxySuite suite(kScale);
  const auto& m = machine_by_name("c4.2xlarge");
  const Cluster cluster({m, m, m});  // one group only
  const AppKind apps[] = {AppKind::kPageRank};
  const auto pool = profile_cluster(cluster, suite, apps);
  EXPECT_EQ(pool.num_groups(), 1u);
  const auto ccr = pool.ccr_for(AppKind::kPageRank, 2.1);
  EXPECT_DOUBLE_EQ(ccr[0], 1.0);
}

TEST(ProfileGroupsOnGraph, MatchesSingleMachineProfiles) {
  const auto g = small_graph();
  const auto cluster = testing::case2_cluster();
  const auto times = profile_groups_on_graph(cluster, AppKind::kPageRank, g, kScale);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(
      times[0],
      profile_single_machine(machine_by_name("xeon_server_s"), AppKind::kPageRank, g, kScale));
}

}  // namespace
}  // namespace pglb
