// Wire framing (docs/WIRE.md): frame encode/decode round trips, incremental
// decoding across arbitrary split points, desync detection (bad magic / type /
// length), the hello/ack negotiation predicates, and the shared errno policy
// for blocking-socket IO loops.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "service/wire.hpp"

namespace pglb {
namespace {

using wire::DecodeStatus;
using wire::Frame;
using wire::FrameType;

// --- framing ----------------------------------------------------------------

TEST(WireFrame, RoundTripsTypeIdAndPayload) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 42,
                     R"({"id":"q1","app":"pagerank"})");
  ASSERT_EQ(buffer.size(), wire::kHeaderSize + 28);

  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.id, 42u);
  EXPECT_EQ(frame.payload, R"({"id":"q1","app":"pagerank"})");
  EXPECT_EQ(offset, buffer.size());
}

TEST(WireFrame, HeaderLayoutIsLittleEndianPglb) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kResponse, 0x0102030405060708ull, "x");
  // [u32 magic][u8 type][u8 flags][u16 reserved][u32 len][u64 id] — the magic
  // reads "PGLB" in byte order, everything multi-byte is little-endian.
  EXPECT_EQ(buffer.substr(0, 4), "PGLB");
  EXPECT_EQ(buffer[4], 2);                        // type
  EXPECT_EQ(buffer[5], 0);                        // flags
  EXPECT_EQ(buffer[6], 0);                        // reserved
  EXPECT_EQ(buffer[7], 0);
  EXPECT_EQ(buffer[8], 1);                        // len = 1, LE
  EXPECT_EQ(buffer[11], 0);
  EXPECT_EQ(static_cast<unsigned char>(buffer[12]), 0x08);  // id low byte
  EXPECT_EQ(static_cast<unsigned char>(buffer[19]), 0x01);  // id high byte
}

TEST(WireFrame, EmptyPayloadIsAValidFrame) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kResponse, 7, "");
  Frame frame;
  std::size_t offset = 0;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.id, 7u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFrame, DecodesSeveralFramesFromOneBuffer) {
  std::string buffer;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    wire::append_frame(buffer, FrameType::kResponse, id,
                       "r" + std::to_string(id));
  }
  std::size_t offset = 0;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Frame frame;
    ASSERT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
              DecodeStatus::kFrame);
    EXPECT_EQ(frame.id, id);
    EXPECT_EQ(frame.payload, "r" + std::to_string(id));
  }
  Frame frame;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kNeedMore);  // buffer exhausted cleanly
}

TEST(WireFrame, NeedsMoreAtEverySplitPoint) {
  // A reader may receive a frame split at ANY byte boundary; the decoder must
  // report kNeedMore (never kBad, never a short frame) for every prefix.
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 9, "{\"id\":\"split\"}");
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    Frame frame;
    std::size_t offset = 0;
    EXPECT_EQ(wire::decode_frame(buffer.substr(0, cut), &offset, &frame, nullptr),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(WireFrame, BadMagicIsDesync) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 1, "x");
  buffer[0] = 'Q';
  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kBad);
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(WireFrame, UnknownTypeIsDesync) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 1, "x");
  buffer[4] = 3;
  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kBad);
  EXPECT_NE(error.find("type"), std::string::npos);
}

TEST(WireFrame, OversizeLengthIsDesyncNotAllocation) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 1, "x");
  buffer[11] = '\x7F';  // length high byte: ~2 GiB, way past kMaxPayload
  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kBad);
  EXPECT_NE(error.find("cap"), std::string::npos);
}

TEST(WireFrame, DecodeResumesAfterOffset) {
  std::string buffer = "JUNK";
  const std::size_t start = buffer.size();
  wire::append_frame(buffer, FrameType::kResponse, 5, "tail");
  Frame frame;
  std::size_t offset = start;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.id, 5u);
  EXPECT_EQ(offset, buffer.size());
}

// --- negotiation ------------------------------------------------------------

TEST(WireHello, HelloAndAckAreMutuallyExclusive) {
  EXPECT_TRUE(wire::is_hello_line(wire::hello_line()));
  EXPECT_FALSE(wire::is_hello_ack(wire::hello_line()));
  EXPECT_TRUE(wire::is_hello_ack(wire::hello_ack_line()));
  EXPECT_FALSE(wire::is_hello_line(wire::hello_ack_line()));
}

TEST(WireHello, TypedErrorResponseIsTheFallbackSignal) {
  // A pre-wire server answers the hello with its usual typed parse error
  // (unknown key "hello"); is_hello_ack must reject it, which the client
  // reads as "speak line-JSON".
  const std::string rejection = serialize_error("", "unknown key: hello");
  EXPECT_FALSE(wire::is_hello_ack(rejection));
  EXPECT_FALSE(wire::is_hello_line(rejection));
}

TEST(WireHello, PlanRequestsAreNeverHellos) {
  EXPECT_FALSE(wire::is_hello_line(
      R"({"id":"q1","app":"pagerank","machines":["c4.2xlarge"]})"));
  EXPECT_FALSE(wire::is_hello_line(""));
  EXPECT_FALSE(wire::is_hello_line("not json at all"));
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"pglb-wire")"));  // truncated
}

TEST(WireHello, VersionGateRejectsOlderSpeakers) {
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"pglb-wire","wire":0})"));
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"pglb-wire"})"));
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"other-protocol","wire":1})"));
  // A newer client asking for >= our version is acceptable: the ack echoes
  // OUR version and the client downshifts.
  EXPECT_TRUE(wire::is_hello_line(R"({"hello":"pglb-wire","wire":2})"));
}

// --- errno policy -----------------------------------------------------------

TEST(WireErrno, ClassifiesRetryTransientAndFatal) {
  EXPECT_EQ(wire::classify_io_errno(EINTR), wire::IoClass::kRetry);
  EXPECT_EQ(wire::classify_io_errno(EAGAIN), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(EWOULDBLOCK), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(ENOBUFS), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(ENOMEM), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(ECONNRESET), wire::IoClass::kFatal);
  EXPECT_EQ(wire::classify_io_errno(EPIPE), wire::IoClass::kFatal);
  EXPECT_EQ(wire::classify_io_errno(EBADF), wire::IoClass::kFatal);
  EXPECT_EQ(wire::classify_io_errno(0), wire::IoClass::kFatal);
}

}  // namespace
}  // namespace pglb
