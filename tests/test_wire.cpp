// Wire framing (docs/WIRE.md): frame encode/decode round trips, incremental
// decoding across arbitrary split points, desync detection (bad magic / type /
// length), the hello/ack negotiation predicates, and the shared errno policy
// for blocking-socket IO loops.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <string>

#include "service/protocol.hpp"
#include "service/wire.hpp"

namespace pglb {
namespace {

using wire::DecodeStatus;
using wire::Frame;
using wire::FrameType;

// --- framing ----------------------------------------------------------------

TEST(WireFrame, RoundTripsTypeIdAndPayload) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 42,
                     R"({"id":"q1","app":"pagerank"})");
  ASSERT_EQ(buffer.size(), wire::kHeaderSize + 28);

  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.type, FrameType::kRequest);
  EXPECT_EQ(frame.id, 42u);
  EXPECT_EQ(frame.payload, R"({"id":"q1","app":"pagerank"})");
  EXPECT_EQ(offset, buffer.size());
}

TEST(WireFrame, HeaderLayoutIsLittleEndianPglb) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kResponse, 0x0102030405060708ull, "x");
  // [u32 magic][u8 type][u8 flags][u16 reserved][u32 len][u64 id] — the magic
  // reads "PGLB" in byte order, everything multi-byte is little-endian.
  EXPECT_EQ(buffer.substr(0, 4), "PGLB");
  EXPECT_EQ(buffer[4], 2);                        // type
  EXPECT_EQ(buffer[5], 0);                        // flags
  EXPECT_EQ(buffer[6], 0);                        // reserved
  EXPECT_EQ(buffer[7], 0);
  EXPECT_EQ(buffer[8], 1);                        // len = 1, LE
  EXPECT_EQ(buffer[11], 0);
  EXPECT_EQ(static_cast<unsigned char>(buffer[12]), 0x08);  // id low byte
  EXPECT_EQ(static_cast<unsigned char>(buffer[19]), 0x01);  // id high byte
}

TEST(WireFrame, EmptyPayloadIsAValidFrame) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kResponse, 7, "");
  Frame frame;
  std::size_t offset = 0;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.id, 7u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFrame, DecodesSeveralFramesFromOneBuffer) {
  std::string buffer;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    wire::append_frame(buffer, FrameType::kResponse, id,
                       "r" + std::to_string(id));
  }
  std::size_t offset = 0;
  for (std::uint64_t id = 1; id <= 3; ++id) {
    Frame frame;
    ASSERT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
              DecodeStatus::kFrame);
    EXPECT_EQ(frame.id, id);
    EXPECT_EQ(frame.payload, "r" + std::to_string(id));
  }
  Frame frame;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kNeedMore);  // buffer exhausted cleanly
}

TEST(WireFrame, NeedsMoreAtEverySplitPoint) {
  // A reader may receive a frame split at ANY byte boundary; the decoder must
  // report kNeedMore (never kBad, never a short frame) for every prefix.
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 9, "{\"id\":\"split\"}");
  for (std::size_t cut = 0; cut < buffer.size(); ++cut) {
    Frame frame;
    std::size_t offset = 0;
    EXPECT_EQ(wire::decode_frame(buffer.substr(0, cut), &offset, &frame, nullptr),
              DecodeStatus::kNeedMore)
        << "cut at " << cut;
    EXPECT_EQ(offset, 0u);
  }
}

TEST(WireFrame, BadMagicIsDesync) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 1, "x");
  buffer[0] = 'Q';
  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kBad);
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(WireFrame, UnknownTypeIsDesync) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 1, "x");
  buffer[4] = 3;
  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kBad);
  EXPECT_NE(error.find("type"), std::string::npos);
}

TEST(WireFrame, OversizeLengthIsDesyncNotAllocation) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 1, "x");
  buffer[11] = '\x7F';  // length high byte: ~2 GiB, way past kMaxPayload
  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kBad);
  EXPECT_NE(error.find("cap"), std::string::npos);
}

TEST(WireFrame, DecodeResumesAfterOffset) {
  std::string buffer = "JUNK";
  const std::size_t start = buffer.size();
  wire::append_frame(buffer, FrameType::kResponse, 5, "tail");
  Frame frame;
  std::size_t offset = start;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.id, 5u);
  EXPECT_EQ(offset, buffer.size());
}

// --- negotiation ------------------------------------------------------------

TEST(WireHello, HelloAndAckAreMutuallyExclusive) {
  EXPECT_TRUE(wire::is_hello_line(wire::hello_line()));
  EXPECT_FALSE(wire::is_hello_ack(wire::hello_line()));
  EXPECT_TRUE(wire::is_hello_ack(wire::hello_ack_line()));
  EXPECT_FALSE(wire::is_hello_line(wire::hello_ack_line()));
}

TEST(WireHello, TypedErrorResponseIsTheFallbackSignal) {
  // A pre-wire server answers the hello with its usual typed parse error
  // (unknown key "hello"); is_hello_ack must reject it, which the client
  // reads as "speak line-JSON".
  const std::string rejection = serialize_error("", "unknown key: hello");
  EXPECT_FALSE(wire::is_hello_ack(rejection));
  EXPECT_FALSE(wire::is_hello_line(rejection));
}

TEST(WireHello, PlanRequestsAreNeverHellos) {
  EXPECT_FALSE(wire::is_hello_line(
      R"({"id":"q1","app":"pagerank","machines":["c4.2xlarge"]})"));
  EXPECT_FALSE(wire::is_hello_line(""));
  EXPECT_FALSE(wire::is_hello_line("not json at all"));
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"pglb-wire")"));  // truncated
}

TEST(WireHello, VersionGateRejectsOlderSpeakers) {
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"pglb-wire","wire":0})"));
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"pglb-wire"})"));
  EXPECT_FALSE(wire::is_hello_line(R"({"hello":"other-protocol","wire":1})"));
  // A newer client asking for >= our version is acceptable: the ack echoes
  // OUR version and the client downshifts.
  EXPECT_TRUE(wire::is_hello_line(R"({"hello":"pglb-wire","wire":2})"));
}

// --- CRC trailer (docs/CHAOS.md) --------------------------------------------

TEST(WireCrc, CrcFrameRoundTripsAndFlagsTheHeader) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 11, "payload",
                     /*with_crc=*/true);
  EXPECT_EQ(buffer.size(), wire::kHeaderSize + 7 + wire::kCrcTrailerSize);
  EXPECT_EQ(buffer[5], wire::kFlagCrc);  // flags byte
  Frame frame;
  std::size_t offset = 0;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_EQ(offset, buffer.size());
}

TEST(WireCrc, FlippedPayloadByteIsTypedCorruptionNotDesync) {
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 11, "payload", true);
  buffer[wire::kHeaderSize + 2] ^= 0x20;  // corrupt one payload byte
  const std::size_t start = buffer.size();
  wire::append_frame(buffer, FrameType::kResponse, 12, "next", true);

  Frame frame;
  std::size_t offset = 0;
  std::string error;
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kCorrupt);
  EXPECT_EQ(frame.id, 11u);  // id survives so the peer can answer typed
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_NE(error.find("crc"), std::string::npos);
  EXPECT_EQ(offset, start);  // stream stays in sync...

  // ...so the NEXT frame decodes normally.
  EXPECT_EQ(wire::decode_frame(buffer, &offset, &frame, &error),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.id, 12u);
  EXPECT_EQ(frame.payload, "next");
}

TEST(WireCrc, UncrcFramesInterleaveWithCrcFrames) {
  // The flag is per-frame: a mixed stream (old peer frames + upgraded
  // frames) decodes without any mode switch.
  std::string buffer;
  wire::append_frame(buffer, FrameType::kRequest, 1, "plain");
  wire::append_frame(buffer, FrameType::kRequest, 2, "checked", true);
  std::size_t offset = 0;
  Frame frame;
  ASSERT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.id, 1u);
  ASSERT_EQ(wire::decode_frame(buffer, &offset, &frame, nullptr),
            DecodeStatus::kFrame);
  EXPECT_EQ(frame.id, 2u);
}

TEST(WireCrc, HelloNegotiatesTheCrcUpgrade) {
  EXPECT_TRUE(wire::is_hello_line(wire::hello_line(true)));
  EXPECT_TRUE(wire::hello_wants_crc(wire::hello_line(true)));
  EXPECT_FALSE(wire::hello_wants_crc(wire::hello_line(false)));
  EXPECT_TRUE(wire::is_hello_ack(wire::hello_ack_line(true)));
  EXPECT_TRUE(wire::ack_grants_crc(wire::hello_ack_line(true)));
  EXPECT_FALSE(wire::ack_grants_crc(wire::hello_ack_line(false)));
  // Old peers: plain hello/ack parse fine and simply decline the upgrade.
  EXPECT_FALSE(wire::hello_wants_crc(R"({"hello":"pglb-wire","wire":1})"));
}

// --- fuzz corpus ------------------------------------------------------------
// Seeded structure-aware mutations (truncate, bit-flip, oversize length) over
// valid frame streams: the decoder must always answer kFrame, kNeedMore,
// kCorrupt, or kBad — never crash, hang, or allocate absurdly — and after a
// kBad the caller's contract (drop the connection) makes any outcome past the
// first desync acceptable.

std::uint64_t fuzz_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void decode_all(const std::string& buffer) {
  std::size_t offset = 0;
  std::string error;
  for (int steps = 0; steps < 1024; ++steps) {  // hang guard
    Frame frame;
    const DecodeStatus status =
        wire::decode_frame(buffer, &offset, &frame, &error);
    if (status == DecodeStatus::kNeedMore || status == DecodeStatus::kBad) {
      return;  // clean drop either way
    }
    ASSERT_LE(frame.payload.size(), wire::kMaxPayload);
    ASSERT_LE(offset, buffer.size());
  }
  FAIL() << "decoder failed to terminate on a " << buffer.size()
         << "-byte buffer";
}

TEST(WireFuzz, MutatedStreamsNeverCrashOrDesyncTheDecoder) {
  std::uint64_t rng = 0xC0FFEE;
  for (int round = 0; round < 400; ++round) {
    // Build a small valid stream: 1-4 frames, mixed CRC, varied payloads.
    std::string buffer;
    const std::size_t frames = 1 + fuzz_next(rng) % 4;
    for (std::size_t f = 0; f < frames; ++f) {
      const std::size_t size = fuzz_next(rng) % 64;
      std::string payload;
      for (std::size_t i = 0; i < size; ++i) {
        payload.push_back(static_cast<char>(fuzz_next(rng) & 0xFF));
      }
      wire::append_frame(buffer,
                         (fuzz_next(rng) & 1) ? FrameType::kRequest
                                              : FrameType::kResponse,
                         fuzz_next(rng), payload, (fuzz_next(rng) & 1) != 0);
    }
    // One seeded mutation per round.
    switch (fuzz_next(rng) % 3) {
      case 0:  // truncate anywhere
        buffer.resize(fuzz_next(rng) % (buffer.size() + 1));
        break;
      case 1:  // flip one bit anywhere (header or payload)
        if (!buffer.empty()) {
          buffer[fuzz_next(rng) % buffer.size()] ^=
              static_cast<char>(1u << (fuzz_next(rng) % 8));
        }
        break;
      default:  // stomp a length field with an oversize value
        if (buffer.size() >= wire::kHeaderSize) {
          buffer[8] = static_cast<char>(fuzz_next(rng) & 0xFF);
          buffer[9] = static_cast<char>(fuzz_next(rng) & 0xFF);
          buffer[10] = static_cast<char>(fuzz_next(rng) & 0xFF);
          buffer[11] = static_cast<char>(0x7F);
        }
        break;
    }
    decode_all(buffer);
  }
}

TEST(WireFuzz, RandomGarbageIsRejectedOrStarved) {
  std::uint64_t rng = 0xBAD5EED;
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const std::size_t size = fuzz_next(rng) % 256;
    for (std::size_t i = 0; i < size; ++i) {
      garbage.push_back(static_cast<char>(fuzz_next(rng) & 0xFF));
    }
    decode_all(garbage);
  }
}

// --- errno policy -----------------------------------------------------------

TEST(WireErrno, ClassifiesRetryTransientAndFatal) {
  EXPECT_EQ(wire::classify_io_errno(EINTR), wire::IoClass::kRetry);
  EXPECT_EQ(wire::classify_io_errno(EAGAIN), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(EWOULDBLOCK), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(ENOBUFS), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(ENOMEM), wire::IoClass::kTransient);
  EXPECT_EQ(wire::classify_io_errno(ECONNRESET), wire::IoClass::kFatal);
  EXPECT_EQ(wire::classify_io_errno(EPIPE), wire::IoClass::kFatal);
  EXPECT_EQ(wire::classify_io_errno(EBADF), wire::IoClass::kFatal);
  EXPECT_EQ(wire::classify_io_errno(0), wire::IoClass::kFatal);
}

}  // namespace
}  // namespace pglb
