#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pglb {
namespace {

TEST(Table, RendersAlignedAscii) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(1.5, 1);
  t.row().cell("beta").cell(std::int64_t{42});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, TooManyCellsRejected) {
  Table t({"only"});
  t.row().cell("a");
  EXPECT_THROW(t.cell("b"), std::logic_error);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.row().cell("x,y").cell("say \"hi\"");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, PrintWritesToStream) {
  Table t({"h"});
  t.row().cell("v");
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

TEST(Formatters, SpeedupAndPercent) {
  EXPECT_EQ(format_speedup(1.45), "1.45x");
  EXPECT_EQ(format_percent(0.179), "17.9%");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace pglb
