#include "partition/random_hash.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/weights.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

EdgeList sample_graph(VertexId n = 20'000, double alpha = 2.1) {
  PowerLawConfig config;
  config.num_vertices = n;
  config.alpha = alpha;
  config.seed = 12;
  return generate_powerlaw(config);
}

TEST(RandomHash, AssignsEveryEdge) {
  const auto g = sample_graph();
  const RandomHashPartitioner p;
  const auto a = p.partition(g, uniform_weights(4), 1);
  EXPECT_EQ(a.edge_to_machine.size(), g.num_edges());
  EXPECT_EQ(a.num_machines, 4u);
  for (const MachineId m : a.edge_to_machine) EXPECT_LT(m, 4u);
}

TEST(RandomHash, UniformWeightsGiveUniformLoads) {
  const auto g = sample_graph();
  const RandomHashPartitioner p;
  const auto a = p.partition(g, uniform_weights(4), 1);
  const auto counts = a.machine_edge_counts();
  const double expected = static_cast<double>(g.num_edges()) / 4.0;
  for (const EdgeId c : counts) {
    EXPECT_LT(relative_error(static_cast<double>(c), expected), 0.03);
  }
}

TEST(RandomHash, SkewedWeightsFollowCcrShares) {
  // The heterogeneity-aware property (Fig. 4): shares track the weights.
  const auto g = sample_graph();
  const RandomHashPartitioner p;
  const std::vector<double> weights = {1.0, 3.5};  // Case-2-like CCR
  const auto a = p.partition(g, weights, 7);
  const auto counts = a.machine_edge_counts();
  const double total = static_cast<double>(g.num_edges());
  EXPECT_NEAR(static_cast<double>(counts[0]) / total, 1.0 / 4.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / total, 3.5 / 4.5, 0.02);
}

TEST(RandomHash, DeterministicPerSeed) {
  const auto g = sample_graph(2000);
  const RandomHashPartitioner p;
  const auto a = p.partition(g, uniform_weights(3), 5);
  const auto b = p.partition(g, uniform_weights(3), 5);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
  const auto c = p.partition(g, uniform_weights(3), 6);
  EXPECT_NE(a.edge_to_machine, c.edge_to_machine);
}

TEST(RandomHash, RejectsBadWeights) {
  const auto g = sample_graph(1000);
  const RandomHashPartitioner p;
  const std::vector<double> zero = {1.0, 0.0};
  const std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(p.partition(g, zero, 1), std::invalid_argument);
  EXPECT_THROW(p.partition(g, negative, 1), std::invalid_argument);
  EXPECT_THROW(p.partition(g, {}, 1), std::invalid_argument);
}

TEST(RandomHash, SingleMachineTakesEverything) {
  const auto g = sample_graph(1000);
  const RandomHashPartitioner p;
  const auto a = p.partition(g, uniform_weights(1), 1);
  for (const MachineId m : a.edge_to_machine) EXPECT_EQ(m, 0u);
}

TEST(Weights, ImbalanceFactorSemantics) {
  const std::vector<EdgeId> counts = {25, 75};
  const std::vector<double> uniform = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(imbalance_factor(counts, uniform), 1.5);
  const std::vector<double> matched = {0.25, 0.75};
  EXPECT_DOUBLE_EQ(imbalance_factor(counts, matched), 1.0);
}

}  // namespace
}  // namespace pglb
