#include "partition/oblivious.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/metrics.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"

namespace pglb {
namespace {

EdgeList sample_graph() {
  PowerLawConfig config;
  config.num_vertices = 15'000;
  config.alpha = 2.1;
  config.seed = 21;
  return generate_powerlaw(config);
}

TEST(Oblivious, AssignsEveryEdgeInRange) {
  const auto g = sample_graph();
  const ObliviousPartitioner p;
  const auto a = p.partition(g, uniform_weights(4), 1);
  ASSERT_EQ(a.edge_to_machine.size(), g.num_edges());
  for (const MachineId m : a.edge_to_machine) EXPECT_LT(m, 4u);
}

TEST(Oblivious, LowerReplicationThanRandomHash) {
  // The whole point of the greedy heuristics: fewer mirrors than random.
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto random = RandomHashPartitioner{}.partition(g, weights, 1);
  const auto greedy = ObliviousPartitioner{}.partition(g, weights, 1);
  const auto random_metrics = compute_partition_metrics(g, random, weights);
  const auto greedy_metrics = compute_partition_metrics(g, greedy, weights);
  EXPECT_LT(greedy_metrics.replication_factor, random_metrics.replication_factor);
}

TEST(Oblivious, LoadsTrackUniformWeights) {
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto a = ObliviousPartitioner{}.partition(g, weights, 1);
  const auto metrics = compute_partition_metrics(g, a, weights);
  // Oblivious is the greedy load-balancer of the family; near-perfect here.
  EXPECT_LT(metrics.weighted_imbalance, 1.05);
}

TEST(Oblivious, LoadsTrackSkewedWeights) {
  const auto g = sample_graph();
  const std::vector<double> weights = {1.0, 3.5};
  const auto a = ObliviousPartitioner{}.partition(g, weights, 1);
  const auto counts = a.machine_edge_counts();
  const double share1 =
      static_cast<double>(counts[1]) / static_cast<double>(g.num_edges());
  // Heuristics trade some balance for locality (the paper notes the CCR
  // balance is approximate), but the big machine must carry the big share.
  EXPECT_NEAR(share1, 3.5 / 4.5, 0.08);
}

TEST(Oblivious, Deterministic) {
  const auto g = sample_graph();
  const auto a = ObliviousPartitioner{}.partition(g, uniform_weights(3), 9);
  const auto b = ObliviousPartitioner{}.partition(g, uniform_weights(3), 9);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
}

TEST(Oblivious, SharedReplicaCaseReusesMachine) {
  // Two edges sharing both endpoints must land on the same machine (case 1
  // of the heuristic: intersection non-empty).
  EdgeList g(4);
  g.add(0, 1);
  g.add(0, 1);
  const auto a = ObliviousPartitioner{}.partition(g, uniform_weights(4), 3);
  EXPECT_EQ(a.edge_to_machine[0], a.edge_to_machine[1]);
}

TEST(Oblivious, FreshVerticesGoToLeastLoadedMachine) {
  // Disjoint edges spread across empty machines before any machine gets a
  // second one.
  EdgeList g(8);
  g.add(0, 1);
  g.add(2, 3);
  g.add(4, 5);
  g.add(6, 7);
  const auto a = ObliviousPartitioner{}.partition(g, uniform_weights(4), 3);
  std::vector<bool> used(4, false);
  for (const MachineId m : a.edge_to_machine) used[m] = true;
  for (const bool u : used) EXPECT_TRUE(u);
}

TEST(Oblivious, RejectsTooManyMachines) {
  const auto g = sample_graph();
  const ObliviousPartitioner p;
  EXPECT_THROW(p.partition(g, uniform_weights(65), 1), std::invalid_argument);
}

}  // namespace
}  // namespace pglb
