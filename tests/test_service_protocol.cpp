// Protocol layer of the planning service: hand-rolled JSON parser and the
// byte-stable request/response serializers.

#include <gtest/gtest.h>

#include "service/protocol.hpp"

namespace pglb {
namespace {

// --- JSON parser -----------------------------------------------------------

TEST(ParseJson, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(ParseJson, NestedStructure) {
  const JsonValue doc = parse_json(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(doc.is_object());
  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
  EXPECT_TRUE(doc.find("d")->find("e")->is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(ParseJson, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
}

TEST(ParseJson, SurrogatePairsDecodeToUtf8) {
  // RFC 8259: characters above the BMP are escaped as a UTF-16 surrogate
  // pair.  U+1F600 (grinning face) = F0 9F 98 80 in UTF-8.
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
  // Pairs at the low and high ends of the supplementary range.
  EXPECT_EQ(parse_json("\"\\ud800\\udc00\"").as_string(), "\xf0\x90\x80\x80");  // U+10000
  EXPECT_EQ(parse_json("\"\\udbff\\udfff\"").as_string(), "\xf4\x8f\xbf\xbf");  // U+10FFFF
  // Pairs compose with surrounding text and other escapes.
  EXPECT_EQ(parse_json("\"id-\\ud83d\\ude00\\t!\"").as_string(),
            "id-\xf0\x9f\x98\x80\t!");
  // Round-trip: the serializer emits raw UTF-8 (byte-stable, no re-escaping),
  // which reparses to the same bytes.
  std::string out;
  append_json_string(out, "\xf0\x9f\x98\x80");
  EXPECT_EQ(out, "\"\xf0\x9f\x98\x80\"");
  EXPECT_EQ(parse_json(out).as_string(), "\xf0\x9f\x98\x80");
}

TEST(ParseJson, MalformedSurrogatesRejected) {
  EXPECT_THROW(parse_json("\"\\ud800\""), ProtocolError);         // lone high
  EXPECT_THROW(parse_json("\"\\ude00\""), ProtocolError);         // lone low
  EXPECT_THROW(parse_json("\"\\ud800\\u0041\""), ProtocolError);  // high + non-low
  EXPECT_THROW(parse_json("\"\\ud800\\ud800\""), ProtocolError);  // high + high
  EXPECT_THROW(parse_json("\"\\ud800x\""), ProtocolError);        // high + raw char
  EXPECT_THROW(parse_json("\"\\ud83d\\ude0\""), ProtocolError);   // short low escape
}

TEST(ParseJson, WhitespaceTolerant) {
  const JsonValue doc = parse_json(" { \"k\" :\t[ 1 , 2 ] }\n");
  EXPECT_EQ(doc.find("k")->as_array().size(), 2u);
}

TEST(ParseJson, MalformedInputsThrow) {
  EXPECT_THROW(parse_json(""), ProtocolError);
  EXPECT_THROW(parse_json("{"), ProtocolError);
  EXPECT_THROW(parse_json("{\"a\":}"), ProtocolError);
  EXPECT_THROW(parse_json("[1,]"), ProtocolError);
  EXPECT_THROW(parse_json("\"unterminated"), ProtocolError);
  EXPECT_THROW(parse_json("tru"), ProtocolError);
  EXPECT_THROW(parse_json("1.2.3"), ProtocolError);
  EXPECT_THROW(parse_json("{} trailing"), ProtocolError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), ProtocolError);
  EXPECT_THROW(parse_json("\"bad \\q escape\""), ProtocolError);
  EXPECT_THROW(parse_json("\"\\ud800\""), ProtocolError);  // lone surrogate rejected
  EXPECT_THROW(parse_json("{1:2}"), ProtocolError);
}

TEST(ParseJson, ErrorsCarryByteOffset) {
  try {
    parse_json("{\"a\": nope}");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find("byte"), std::string::npos);
  }
}

TEST(AppendJsonNumber, ShortestRoundTrip) {
  std::string out;
  append_json_number(out, 0.35);
  EXPECT_EQ(out, "0.35");
  out.clear();
  append_json_number(out, 3.0);
  EXPECT_EQ(out, "3");
  out.clear();
  append_json_number(out, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(parse_json(out).as_number(), 1.0 / 3.0);
}

TEST(AppendJsonString, EscapesControlCharacters) {
  std::string out;
  append_json_string(out, "a\"b\\c\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\u0001\"");
  EXPECT_EQ(parse_json(out).as_string(), "a\"b\\c\x01");
}

// --- request parsing -------------------------------------------------------

TEST(ParsePlanRequest, FullRequest) {
  const PlanRequest request = parse_plan_request(
      R"({"id":"r1","app":"pagerank","machines":["m4.2xlarge","c4.2xlarge"],)"
      R"("vertices":1000,"edges":5000,"partitioner":"hybrid"})");
  EXPECT_EQ(request.type, RequestType::kPlan);
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.app, AppKind::kPageRank);
  ASSERT_EQ(request.machines.size(), 2u);
  EXPECT_EQ(request.machines[0], "m4.2xlarge");
  EXPECT_FALSE(request.alpha.has_value());
  EXPECT_EQ(request.vertices, 1000u);
  EXPECT_EQ(request.edges, 5000u);
  ASSERT_TRUE(request.partitioner.has_value());
  EXPECT_EQ(*request.partitioner, PartitionerKind::kHybrid);
}

TEST(ParsePlanRequest, AlphaInsteadOfCounts) {
  const PlanRequest request = parse_plan_request(
      R"({"app":"coloring","machines":["c4.xlarge"],"alpha":2.1})");
  ASSERT_TRUE(request.alpha.has_value());
  EXPECT_DOUBLE_EQ(*request.alpha, 2.1);
}

TEST(ParsePlanRequest, MetricsNeedsNothingElse) {
  const PlanRequest request = parse_plan_request(R"({"type":"metrics"})");
  EXPECT_EQ(request.type, RequestType::kMetrics);
}

TEST(ParsePlanRequest, MissingFields) {
  // no app
  EXPECT_THROW(parse_plan_request(R"({"machines":["c4.xlarge"],"alpha":2})"),
               ProtocolError);
  // no machines
  EXPECT_THROW(parse_plan_request(R"({"app":"pagerank","alpha":2})"), ProtocolError);
  // empty machines
  EXPECT_THROW(parse_plan_request(R"({"app":"pagerank","machines":[],"alpha":2})"),
               ProtocolError);
  // neither alpha nor vertices+edges
  EXPECT_THROW(parse_plan_request(R"({"app":"pagerank","machines":["c4.xlarge"]})"),
               ProtocolError);
  EXPECT_THROW(
      parse_plan_request(R"({"app":"pagerank","machines":["c4.xlarge"],"edges":5})"),
      ProtocolError);
}

TEST(ParsePlanRequest, InvalidValues) {
  // unknown key fails loudly
  EXPECT_THROW(parse_plan_request(
                   R"({"app":"pagerank","machines":["c4.xlarge"],"alpha":2,"hue":3})"),
               ProtocolError);
  EXPECT_THROW(parse_plan_request(
                   R"({"app":"frobnicate","machines":["c4.xlarge"],"alpha":2})"),
               ProtocolError);
  // alpha must exceed 1 (truncated power law diverges otherwise)
  EXPECT_THROW(parse_plan_request(
                   R"({"app":"pagerank","machines":["c4.xlarge"],"alpha":0.9})"),
               ProtocolError);
  // vertices must be a positive integer
  EXPECT_THROW(
      parse_plan_request(
          R"({"app":"pagerank","machines":["c4.xlarge"],"vertices":0,"edges":5})"),
      ProtocolError);
  EXPECT_THROW(
      parse_plan_request(
          R"({"app":"pagerank","machines":["c4.xlarge"],"vertices":1.5,"edges":5})"),
      ProtocolError);
  EXPECT_THROW(parse_plan_request(
                   R"({"app":"pagerank","machines":["c4.xlarge"],"alpha":2,)"
                   R"("partitioner":"magic"})"),
               ProtocolError);
  EXPECT_THROW(parse_plan_request(R"({"type":"reboot"})"), ProtocolError);
  EXPECT_THROW(parse_plan_request("[1,2,3]"), ProtocolError);
  EXPECT_THROW(parse_plan_request("not json at all"), ProtocolError);
}

TEST(RequestRoundTrip, SerializeThenParse) {
  PlanRequest request;
  request.id = "round \"trip\"";
  request.app = AppKind::kTriangleCount;
  request.machines = {"m4.2xlarge", "c4.2xlarge", "m4.2xlarge"};
  request.alpha = 2.2;
  request.vertices = 123456;
  request.edges = 7890123;
  request.partitioner = PartitionerKind::kHdrf;

  const PlanRequest parsed = parse_plan_request(serialize_request(request));
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.app, request.app);
  EXPECT_EQ(parsed.machines, request.machines);
  ASSERT_TRUE(parsed.alpha.has_value());
  EXPECT_DOUBLE_EQ(*parsed.alpha, *request.alpha);
  EXPECT_EQ(parsed.vertices, request.vertices);
  EXPECT_EQ(parsed.edges, request.edges);
  ASSERT_TRUE(parsed.partitioner.has_value());
  EXPECT_EQ(*parsed.partitioner, *request.partitioner);
}

TEST(RequestRoundTrip, MetricsRequest) {
  PlanRequest request;
  request.type = RequestType::kMetrics;
  EXPECT_EQ(serialize_request(request), R"({"type":"metrics"})");
  EXPECT_EQ(parse_plan_request(serialize_request(request)).type, RequestType::kMetrics);
}

// --- response serialization ------------------------------------------------

PlanResponse sample_response() {
  PlanResponse response;
  response.id = "r9";
  response.ok = true;
  response.app = "pagerank";
  response.fitted_alpha = 2.05;
  response.proxy_alpha = 2.1;
  response.ccr = {1.0, 1.25};
  response.weights = {0.4444, 0.5556};
  response.partitioner = "hybrid";
  response.replication_factor = 1.98;
  response.makespan_seconds = 0.5;
  response.energy_joules = 73.4;
  response.cost_usd = 0.00012;
  return response;
}

TEST(ResponseRoundTrip, OkResponse) {
  const PlanResponse original = sample_response();
  const std::string line = serialize_response(original);
  const PlanResponse parsed = parse_plan_response(line);
  EXPECT_EQ(parsed.id, original.id);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.app, original.app);
  EXPECT_DOUBLE_EQ(parsed.fitted_alpha, original.fitted_alpha);
  EXPECT_DOUBLE_EQ(parsed.proxy_alpha, original.proxy_alpha);
  EXPECT_EQ(parsed.ccr, original.ccr);
  EXPECT_EQ(parsed.weights, original.weights);
  EXPECT_EQ(parsed.partitioner, original.partitioner);
  EXPECT_DOUBLE_EQ(parsed.replication_factor, original.replication_factor);
  EXPECT_DOUBLE_EQ(parsed.makespan_seconds, original.makespan_seconds);
  EXPECT_DOUBLE_EQ(parsed.energy_joules, original.energy_joules);
  EXPECT_DOUBLE_EQ(parsed.cost_usd, original.cost_usd);
}

TEST(ResponseRoundTrip, ByteStable) {
  // The same response must always serialize to the same bytes — that is what
  // makes "cached plan == fresh plan" testable at the byte level.
  const std::string a = serialize_response(sample_response());
  const std::string b = serialize_response(sample_response());
  EXPECT_EQ(a, b);
  // And re-serializing the parsed form reproduces the bytes exactly
  // (shortest-round-trip doubles survive the round trip).
  EXPECT_EQ(serialize_response(parse_plan_response(a)), a);
}

TEST(ResponseRoundTrip, ErrorResponse) {
  const std::string line = serialize_error("bad-1", "unknown machine 'quantum9'");
  const PlanResponse parsed = parse_plan_response(line);
  EXPECT_EQ(parsed.id, "bad-1");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.status, PlanStatus::kError);
  EXPECT_EQ(parsed.error, "unknown machine 'quantum9'");
}

TEST(RequestRoundTrip, TimeoutMs) {
  PlanRequest request;
  request.id = "t1";
  request.app = AppKind::kPageRank;
  request.machines = {"m4.2xlarge"};
  request.alpha = 2.1;
  request.timeout_ms = 250;

  const PlanRequest parsed = parse_plan_request(serialize_request(request));
  ASSERT_TRUE(parsed.timeout_ms.has_value());
  EXPECT_EQ(*parsed.timeout_ms, 250u);

  // Absent timeout stays absent (and off the wire).
  request.timeout_ms.reset();
  const std::string line = serialize_request(request);
  EXPECT_EQ(line.find("timeout_ms"), std::string::npos);
  EXPECT_FALSE(parse_plan_request(line).timeout_ms.has_value());
}

TEST(ParsePlanRequest, RejectsNonPositiveTimeout) {
  const std::string line =
      R"({"id":"x","app":"pagerank","machines":["m4.2xlarge"],"alpha":2.1,"timeout_ms":0})";
  EXPECT_THROW(parse_plan_request(line), ProtocolError);
}

TEST(ResponseRoundTrip, TimeoutResponse) {
  PlanResponse response;
  response.id = "t2";
  response.ok = false;
  response.status = PlanStatus::kTimeout;
  response.error = "deadline exceeded at profiler.cell";

  const std::string line = serialize_response(response);
  EXPECT_NE(line.find("\"status\":\"timeout\""), std::string::npos);
  const PlanResponse parsed = parse_plan_response(line);
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.status, PlanStatus::kTimeout);
  EXPECT_EQ(parsed.error, response.error);
}

TEST(ResponseRoundTrip, OverloadedResponse) {
  const std::string line = serialize_overloaded("o1", 17, 340);
  const PlanResponse parsed = parse_plan_response(line);
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.status, PlanStatus::kOverloaded);
  EXPECT_EQ(parsed.id, "o1");
  EXPECT_EQ(parsed.queue_depth, 17u);
  EXPECT_EQ(parsed.retry_after_ms, 340u);
  EXPECT_FALSE(parsed.error.empty());
}

TEST(ResponseRoundTrip, DegradedTagSurvivesAndEmptyStaysOffTheWire) {
  PlanResponse response = sample_response();
  ASSERT_TRUE(response.degraded.empty());
  // Non-degraded ok responses must serialize without the field at all — the
  // pre-resilience byte layout (cached-plan comparisons depend on it).
  const std::string plain = serialize_response(response);
  EXPECT_EQ(plain.find("degraded"), std::string::npos);

  response.degraded = "thread_count";
  const std::string tagged = serialize_response(response);
  EXPECT_NE(tagged.find("\"degraded\":\"thread_count\""), std::string::npos);
  const PlanResponse parsed = parse_plan_response(tagged);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.status, PlanStatus::kOk);
  EXPECT_EQ(parsed.degraded, "thread_count");
}

// --- warm_keys (docs/PERSIST.md) -------------------------------------------

TEST(RequestRoundTrip, WarmKeysRequest) {
  PlanRequest request;
  request.type = RequestType::kWarmKeys;
  request.id = "w1";
  request.limit = 8;
  const std::string line = serialize_request(request);
  EXPECT_NE(line.find("\"type\":\"warm_keys\""), std::string::npos);
  const PlanRequest parsed = parse_plan_request(line);
  EXPECT_EQ(parsed.type, RequestType::kWarmKeys);
  EXPECT_EQ(parsed.id, "w1");
  ASSERT_TRUE(parsed.limit.has_value());
  EXPECT_EQ(*parsed.limit, 8u);
  // Like metrics, warm_keys needs no machines/app/graph fields.
  EXPECT_EQ(parse_plan_request(R"({"type":"warm_keys"})").type,
            RequestType::kWarmKeys);
}

TEST(ParsePlanRequest, LimitOnlyValidOnWarmKeys) {
  EXPECT_THROW(
      parse_plan_request(
          R"({"type":"plan","app":"pagerank","machines":["c4.2xlarge"],"alpha":2.1,"limit":4})"),
      ProtocolError);
  EXPECT_THROW(parse_plan_request(R"({"type":"warm_keys","limit":0})"),
               ProtocolError);
  EXPECT_THROW(parse_plan_request(R"({"type":"warm_keys","limit":-3})"),
               ProtocolError);
}

TEST(WarmKeysResponse, RoundTripsAndIsByteStable) {
  const std::vector<WarmKey> keys = {{"c4.2xlarge+m4.2xlarge|pagerank|2.1", 5},
                                     {"c4.2xlarge|coloring|1.95", 0}};
  const std::string line = serialize_warm_keys_response("w2", keys);
  EXPECT_EQ(line, serialize_warm_keys_response("w2", keys));  // byte-stable
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);

  const std::vector<WarmKey> parsed = parse_warm_keys_response(line);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].key, keys[0].key);
  EXPECT_EQ(parsed[0].hits, 5u);
  EXPECT_EQ(parsed[1].key, keys[1].key);
  EXPECT_EQ(parsed[1].hits, 0u);

  // An empty report is a valid answer (a cold peer), not an error.
  EXPECT_TRUE(parse_warm_keys_response(serialize_warm_keys_response("w3", {}))
                  .empty());
}

TEST(WarmKeysResponse, RejectsNonReports) {
  // Error responses, plan responses, and malformed entries all throw — the
  // warming pass treats any of these as "peer has nothing".
  EXPECT_THROW(parse_warm_keys_response(serialize_error("w4", "boom")),
               ProtocolError);
  EXPECT_THROW(parse_warm_keys_response(R"({"id":"x","status":"ok"})"),
               ProtocolError);
  EXPECT_THROW(
      parse_warm_keys_response(
          R"({"id":"x","status":"ok","warm_keys":[{"hits":3}]})"),
      ProtocolError);
  EXPECT_THROW(parse_warm_keys_response("not json"), ProtocolError);
}

}  // namespace
}  // namespace pglb
