// Durable warm state (docs/PERSIST.md): the snapshot container codec, the
// warm-state save/restore round trip, the corruption robustness matrix
// (truncated / flipped CRC / future version / empty section -> clean cold
// start, persist.snapshot_rejected bumped, never a crash), restored-cache
// byte-determinism across thread counts, and the peer-warming helpers.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fleet/warming.hpp"
#include "obs/registry.hpp"
#include "persist/snapshot.hpp"
#include "persist/warm_state.hpp"
#include "service/planner.hpp"
#include "service/protocol.hpp"

namespace pglb {
namespace {

using persist::SectionType;
using persist::SnapshotError;
using persist::SnapshotReader;
using persist::SnapshotWriter;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fresh per-test snapshot directory under the system temp root.
std::string fresh_dir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() / ("pglb_persist_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

PlannerOptions tiny_options(unsigned threads = 0) {
  PlannerOptions options;
  options.proxy_scale = 0.002;  // keep profiling misses fast in tests
  options.threads = threads;
  return options;
}

PlanRequest basic_request(const std::string& id = "t1") {
  PlanRequest request;
  request.id = id;
  request.app = AppKind::kPageRank;
  request.machines = {"m4.2xlarge", "c4.2xlarge"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000;
  return request;
}

// --- container codec --------------------------------------------------------

TEST(SnapshotCodec, RoundTripsSectionsAndGeneration) {
  SnapshotWriter writer(7);
  writer.add_section(SectionType::kProfileCache, "cache-bytes");
  writer.add_section(SectionType::kTimeDatabase, "pool-bytes");
  const std::string bytes = writer.encode();

  const SnapshotReader reader = SnapshotReader::parse(bytes);
  EXPECT_EQ(reader.version(), persist::kVersion);
  EXPECT_EQ(reader.generation(), 7u);
  ASSERT_EQ(reader.sections().size(), 2u);
  ASSERT_NE(reader.section(SectionType::kProfileCache), nullptr);
  EXPECT_EQ(reader.section(SectionType::kProfileCache)->payload, "cache-bytes");
  ASSERT_NE(reader.section(SectionType::kTimeDatabase), nullptr);
  EXPECT_EQ(reader.section(SectionType::kTimeDatabase)->payload, "pool-bytes");
}

TEST(SnapshotCodec, UnknownSectionTypesAreCrcCheckedAndKept) {
  // Forward compatibility: a reader walks (and CRC-validates) section types
  // it does not recognise instead of failing the whole file.
  SnapshotWriter writer(1);
  writer.add_section(static_cast<SectionType>(0x77u), "mystery");
  writer.add_section(SectionType::kProfileCache, "cache");
  const SnapshotReader reader = SnapshotReader::parse(writer.encode());
  ASSERT_EQ(reader.sections().size(), 2u);
  EXPECT_EQ(reader.sections()[0].type, 0x77u);
  ASSERT_NE(reader.section(SectionType::kProfileCache), nullptr);
}

TEST(SnapshotCodec, RejectsBadMagicFutureVersionAndTruncation) {
  SnapshotWriter writer(3);
  writer.add_section(SectionType::kProfileCache, "payload");
  const std::string good = writer.encode();

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_THROW(SnapshotReader::parse(bad_magic), SnapshotError);

  std::string future = good;
  future[4] = static_cast<char>(persist::kVersion + 1);
  EXPECT_THROW(SnapshotReader::parse(future), SnapshotError);

  // Truncation anywhere — mid-header, mid-payload, and exactly at the
  // section boundary (the end marker makes the last one loud).
  for (const std::size_t keep :
       {std::size_t{4}, persist::kFileHeaderSize + 3,
        good.size() - persist::kSectionHeaderSize, good.size() - 1}) {
    EXPECT_THROW(SnapshotReader::parse(good.substr(0, keep)), SnapshotError)
        << "kept " << keep << " of " << good.size() << " bytes";
  }

  // Trailing garbage after the end marker is corruption, not slack.
  EXPECT_THROW(SnapshotReader::parse(good + "x"), SnapshotError);
}

TEST(SnapshotCodec, RejectsFlippedPayloadByte) {
  SnapshotWriter writer(1);
  writer.add_section(SectionType::kProfileCache, "payload-under-crc");
  std::string bytes = writer.encode();
  bytes[persist::kFileHeaderSize + persist::kSectionHeaderSize + 2] ^= 0x01;
  EXPECT_THROW(SnapshotReader::parse(bytes), SnapshotError);
}

TEST(SnapshotCodec, AtomicWriteLeavesNoTmpFile) {
  const std::string dir = fresh_dir("atomic");
  const std::string path = dir + "/warm.snap";
  SnapshotWriter writer(5);
  writer.add_section(SectionType::kProfileCache, "abc");
  writer.write(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(SnapshotReader::read(path).generation(), 5u);
  EXPECT_EQ(persist::read_snapshot_generation(path), std::optional<std::uint64_t>{5});
}

TEST(SnapshotCodec, CursorThrowsPastEnd) {
  std::string payload;
  persist::append_u32(payload, 42);
  persist::Cursor cursor(payload);
  EXPECT_EQ(cursor.read_u32(), 42u);
  EXPECT_TRUE(cursor.done());
  EXPECT_THROW(cursor.read_u32(), SnapshotError);
}

// --- warm-state save/restore ------------------------------------------------

TEST(WarmState, SaveRestoreRoundTripsCacheAndTimeDatabase) {
  const std::string dir = fresh_dir("roundtrip");
  Planner source(tiny_options());
  ASSERT_TRUE(source.plan(basic_request()).ok);
  PlanRequest second = basic_request("t2");
  second.app = AppKind::kColoring;
  ASSERT_TRUE(source.plan(second).ok);

  const persist::SnapshotIoResult saved = persist::save_warm_snapshot(source, dir);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.generation, 1u);
  EXPECT_EQ(saved.cache_entries, 2u);
  EXPECT_GT(saved.time_entries, 0u);
  EXPECT_GT(saved.bytes, persist::kFileHeaderSize);

  Planner restored(tiny_options());
  const persist::SnapshotIoResult loaded = persist::load_warm_snapshot(restored, dir);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_FALSE(loaded.rejected);
  EXPECT_EQ(loaded.generation, 1u);
  EXPECT_EQ(loaded.cache_entries, 2u);
  EXPECT_EQ(loaded.time_entries, source.time_database().size());
  EXPECT_EQ(restored.cache_stats().size, 2u);
  EXPECT_EQ(restored.time_database().size(), source.time_database().size());

  // Serving from the restored entries is all hits, no re-profiling.
  ASSERT_TRUE(restored.plan(basic_request()).ok);
  ASSERT_TRUE(restored.plan(second).ok);
  EXPECT_EQ(restored.cache_stats().hits, 2u);
  EXPECT_EQ(restored.cache_stats().misses, 0u);
}

TEST(WarmState, GenerationsAreMonotonicPerPath) {
  const std::string dir = fresh_dir("generation");
  Planner planner(tiny_options());
  ASSERT_TRUE(planner.plan(basic_request()).ok);
  EXPECT_EQ(persist::save_warm_snapshot(planner, dir).generation, 1u);
  EXPECT_EQ(persist::save_warm_snapshot(planner, dir).generation, 2u);
  EXPECT_EQ(persist::save_warm_snapshot(planner, dir).generation, 3u);
}

TEST(WarmState, MissingFileIsQuietColdStart) {
  const std::string dir = fresh_dir("missing");
  const std::uint64_t rejected_before =
      global_registry().counter("persist.snapshot_rejected");
  Planner planner(tiny_options());
  const persist::SnapshotIoResult result = persist::load_warm_snapshot(planner, dir);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.rejected);
  EXPECT_EQ(global_registry().counter("persist.snapshot_rejected"), rejected_before);
}

/// The robustness matrix of docs/PERSIST.md: every corruption shape loads as
/// a clean cold start — result.rejected, counter bumped, planner untouched
/// and still able to plan.
void expect_rejected_cold_start(const std::string& dir, const char* what) {
  const std::uint64_t rejected_before =
      global_registry().counter("persist.snapshot_rejected");
  Planner planner(tiny_options());
  const persist::SnapshotIoResult result = persist::load_warm_snapshot(planner, dir);
  EXPECT_FALSE(result.ok) << what;
  EXPECT_TRUE(result.rejected) << what;
  EXPECT_EQ(global_registry().counter("persist.snapshot_rejected"),
            rejected_before + 1)
      << what;
  EXPECT_EQ(planner.cache_stats().size, 0u) << what;
  EXPECT_TRUE(planner.plan(basic_request()).ok) << what;  // cold but healthy
}

TEST(WarmState, TruncatedSnapshotIsRejectedColdStart) {
  const std::string dir = fresh_dir("truncated");
  Planner source(tiny_options());
  ASSERT_TRUE(source.plan(basic_request()).ok);
  ASSERT_TRUE(persist::save_warm_snapshot(source, dir).ok);

  const std::string path = persist::warm_snapshot_path(dir);
  const std::string good = read_file(path);
  write_file(path, good.substr(0, good.size() / 2));
  expect_rejected_cold_start(dir, "truncated");
}

TEST(WarmState, FlippedCrcByteIsRejectedColdStart) {
  const std::string dir = fresh_dir("crcflip");
  Planner source(tiny_options());
  ASSERT_TRUE(source.plan(basic_request()).ok);
  ASSERT_TRUE(persist::save_warm_snapshot(source, dir).ok);

  const std::string path = persist::warm_snapshot_path(dir);
  std::string bytes = read_file(path);
  bytes[bytes.size() / 2] ^= 0x01;  // somewhere inside a section payload
  write_file(path, bytes);
  expect_rejected_cold_start(dir, "flipped CRC byte");
}

TEST(WarmState, FutureVersionIsRejectedColdStart) {
  const std::string dir = fresh_dir("future");
  Planner source(tiny_options());
  ASSERT_TRUE(source.plan(basic_request()).ok);
  ASSERT_TRUE(persist::save_warm_snapshot(source, dir).ok);

  const std::string path = persist::warm_snapshot_path(dir);
  std::string bytes = read_file(path);
  bytes[4] = static_cast<char>(persist::kVersion + 1);
  write_file(path, bytes);
  expect_rejected_cold_start(dir, "future version");
}

TEST(WarmState, EmptySectionPayloadIsRejectedColdStart) {
  // A kProfileCache section with a zero-length payload passes the container
  // CRC but cannot even carry its entry count — the decode layer must treat
  // it as corruption, not as "zero entries".
  const std::string dir = fresh_dir("emptysec");
  SnapshotWriter writer(1);
  writer.add_section(SectionType::kProfileCache, "");
  writer.write(persist::warm_snapshot_path(dir));
  expect_rejected_cold_start(dir, "empty section payload");
}

TEST(WarmState, SectionlessSnapshotLoadsAsZeroEntries) {
  // Header + end marker only: structurally valid, just nothing persisted.
  const std::string dir = fresh_dir("bare");
  SnapshotWriter writer(4);
  writer.write(persist::warm_snapshot_path(dir));
  Planner planner(tiny_options());
  const persist::SnapshotIoResult result = persist::load_warm_snapshot(planner, dir);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.cache_entries, 0u);
  EXPECT_EQ(result.time_entries, 0u);
  EXPECT_EQ(planner.cache_stats().size, 0u);
}

// --- byte-determinism across restore and thread counts ----------------------

TEST(WarmState, RestoredPlansByteIdenticalAcrossThreadCounts) {
  // The tentpole invariant: a plan served from a RESTORED cache entry is
  // byte-identical to a freshly profiled one — at any worker-pool width,
  // since entries are emplaced in class order regardless of threads.
  const std::string dir = fresh_dir("determinism");
  PlanRequest request = basic_request();
  PlanRequest second = basic_request("t2");
  second.app = AppKind::kConnectedComponents;
  second.machines = {"c4.xlarge", "c4.2xlarge", "c4.4xlarge"};

  Planner source(tiny_options(1));
  const std::string fresh_a = serialize_response(source.plan(request));
  const std::string fresh_b = serialize_response(source.plan(second));
  ASSERT_TRUE(persist::save_warm_snapshot(source, dir).ok);

  for (const unsigned threads : {1u, 2u, 8u}) {
    Planner restored(tiny_options(threads));
    ASSERT_TRUE(persist::load_warm_snapshot(restored, dir).ok);
    EXPECT_EQ(serialize_response(restored.plan(request)), fresh_a)
        << "threads=" << threads;
    EXPECT_EQ(serialize_response(restored.plan(second)), fresh_b)
        << "threads=" << threads;
    // Both answers came from the restored entries, not a re-profile.
    EXPECT_EQ(restored.cache_stats().misses, 0u) << "threads=" << threads;
  }
}

TEST(WarmState, SnapshotBytesDeterministicAcrossThreadCounts) {
  // Same traffic, any thread count -> byte-identical snapshot files (modulo
  // the generation field, held constant here by saving into fresh dirs).
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 8u}) {
    const std::string dir = fresh_dir("bytes_t" + std::to_string(threads));
    Planner planner(tiny_options(threads));
    ASSERT_TRUE(planner.plan(basic_request()).ok);
    PlanRequest second = basic_request("t2");
    second.app = AppKind::kColoring;
    ASSERT_TRUE(planner.plan(second).ok);
    ASSERT_TRUE(persist::save_warm_snapshot(planner, dir).ok);
    const std::string bytes = read_file(persist::warm_snapshot_path(dir));
    if (baseline.empty()) {
      baseline = bytes;
    } else {
      EXPECT_EQ(bytes, baseline) << "threads=" << threads;
    }
  }
}

// --- hot keys + peer-warming helpers ----------------------------------------

TEST(WarmState, HotKeysOrderByHitsDescending) {
  Planner planner(tiny_options());
  const PlanRequest hot = basic_request();
  PlanRequest cold = basic_request("t2");
  cold.app = AppKind::kColoring;
  ASSERT_TRUE(planner.plan(cold).ok);             // 0 hits
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(planner.plan(hot).ok);  // 2 hits

  const auto keys = planner.hot_keys(8);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].first, planner.profile_key(hot));
  EXPECT_EQ(keys[0].second, 2u);
  EXPECT_EQ(keys[1].second, 0u);
  EXPECT_EQ(planner.hot_keys(1).size(), 1u);
}

TEST(Warming, ProfileKeyRoundTripsThroughPlanRequest) {
  Planner planner(tiny_options());
  const PlanRequest original = basic_request();
  const std::string key = planner.profile_key(original);

  const auto rebuilt = plan_request_from_profile_key(key);
  ASSERT_TRUE(rebuilt.has_value()) << key;
  // The invariant peer warming rests on: profiling the rebuilt request
  // recreates exactly the cache entry the key names.
  EXPECT_EQ(planner.profile_key(*rebuilt), key);
  EXPECT_TRUE(planner.plan(*rebuilt).ok);
}

TEST(Warming, MalformedProfileKeysAreRejected) {
  for (const char* bad :
       {"", "no-pipes", "a|b", "a|b|c|d", "|pagerank|2.1", "m+|pagerank|2.1",
        "m4.2xlarge|not_an_app|2.1", "m4.2xlarge|pagerank|", "m4.2xlarge|pagerank|x",
        "m4.2xlarge|pagerank|2.1junk", "m4.2xlarge|pagerank|0.5",
        "m4.2xlarge|pagerank|inf"}) {
    EXPECT_FALSE(plan_request_from_profile_key(bad).has_value()) << bad;
  }
}

}  // namespace
}  // namespace pglb
