#include "machine/perf_model.hpp"

#include <gtest/gtest.h>

#include "machine/catalog.hpp"

namespace pglb {
namespace {

WorkloadTraits default_traits() {
  WorkloadTraits traits;
  traits.num_vertices_m = 4.0;
  traits.footprint_mb = 500.0;
  traits.degree_skew = 10'000.0;
  return traits;
}

TEST(Amdahl, KnownPoints) {
  EXPECT_DOUBLE_EQ(amdahl_threads(1, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(amdahl_threads(10, 0.0), 10.0);
  EXPECT_NEAR(amdahl_threads(10, 0.1), 10.0 / 1.9, 1e-12);
  EXPECT_THROW(amdahl_threads(0, 0.1), std::invalid_argument);
}

TEST(Amdahl, MonotoneInThreadsBoundedByInverseSerialFraction) {
  double prev = 0.0;
  for (int n = 1; n <= 64; ++n) {
    const double eff = amdahl_threads(n, 0.05);
    EXPECT_GT(eff, prev);
    EXPECT_LT(eff, 1.0 / 0.05);
    prev = eff;
  }
}

TEST(SkewBalance, OneThreadIsUnaffected) {
  EXPECT_DOUBLE_EQ(skew_balance(1, 0.5, 1e6), 1.0);
}

TEST(SkewBalance, MoreSkewMoreThreadsWorseBalance) {
  EXPECT_LT(skew_balance(8, 0.5, 1e5), skew_balance(8, 0.5, 10.0));
  EXPECT_LT(skew_balance(16, 0.5, 1e4), skew_balance(2, 0.5, 1e4));
  EXPECT_GT(skew_balance(64, 1.0, 1e7), 0.0);
  EXPECT_THROW(skew_balance(0, 0.5, 10.0), std::invalid_argument);
}

TEST(CacheAmplification, NoAmpForCacheInsensitiveApps) {
  const auto& machine = machine_by_name("c4.8xlarge");
  EXPECT_DOUBLE_EQ(
      cache_amplification(machine, profile_for(AppKind::kPageRank), default_traits()), 1.0);
}

TEST(CacheAmplification, GrowsWithLlc) {
  const AppProfile& tc = profile_for(AppKind::kTriangleCount);
  const auto traits = default_traits();
  const double small =
      cache_amplification(machine_by_name("c4.xlarge"), tc, traits);
  const double big =
      cache_amplification(machine_by_name("c4.8xlarge"), tc, traits);
  EXPECT_GE(small, 1.0);
  EXPECT_GT(big, small);
  EXPECT_LE(big, 1.0 + tc.cache_amp);
}

TEST(CacheAmplification, SmallWorkingSetsBenefitEverywhere) {
  const AppProfile& tc = profile_for(AppKind::kTriangleCount);
  WorkloadTraits tiny = default_traits();
  tiny.num_vertices_m = 0.05;  // fits in any LLC
  const double amp = cache_amplification(machine_by_name("c4.xlarge"), tc, tiny);
  EXPECT_GT(amp, 1.0 + 0.8 * tc.cache_amp);
}

TEST(Throughput, PositiveForAllCatalogMachinesAndApps) {
  std::size_t count = 0;
  const AppProfile* apps = all_profiles(&count);
  for (const MachineSpec& m : table1_machines()) {
    for (std::size_t a = 0; a < count; ++a) {
      EXPECT_GT(throughput_ops(m, apps[a], default_traits()), 0.0)
          << m.name << "/" << apps[a].name;
    }
  }
}

TEST(Throughput, BiggerC4IsNeverSlower) {
  const auto traits = default_traits();
  std::size_t count = 0;
  const AppProfile* apps = all_profiles(&count);
  const auto family = c4_family();
  for (std::size_t a = 0; a < count; ++a) {
    for (std::size_t i = 1; i < family.size(); ++i) {
      EXPECT_GE(throughput_ops(family[i], apps[a], traits),
                throughput_ops(family[i - 1], apps[a], traits))
          << apps[a].name << " at " << family[i].name;
    }
  }
}

TEST(Throughput, FrequencyDeratingSlowsEveryApp) {
  const auto& base = machine_by_name("xeon_server_s");
  const auto derated = with_frequency(base, 1.8);
  std::size_t count = 0;
  const AppProfile* apps = all_profiles(&count);
  for (std::size_t a = 0; a < count; ++a) {
    EXPECT_LT(throughput_ops(derated, apps[a], default_traits()),
              throughput_ops(base, apps[a], default_traits()))
        << apps[a].name;
  }
}

TEST(TraitsFromStats, ReinflatesByScale) {
  GraphStats stats;
  stats.num_vertices = 100'000;
  stats.num_edges = 1'000'000;
  stats.footprint_bytes = 10'000'000;
  stats.degree_skew = 100.0;
  stats.empirical_alpha = 2.0;

  const auto full = traits_from_stats(stats, 1.0);
  EXPECT_DOUBLE_EQ(full.num_vertices_m, 0.1);
  EXPECT_DOUBLE_EQ(full.footprint_mb, 10.0);
  EXPECT_DOUBLE_EQ(full.degree_skew, 100.0);

  const auto scaled = traits_from_stats(stats, 0.25);
  EXPECT_DOUBLE_EQ(scaled.num_vertices_m, 0.4);
  EXPECT_DOUBLE_EQ(scaled.footprint_mb, 40.0);
  // Tail growth (1/0.25)^(1/(2-1)) = 4x on the skew.
  EXPECT_NEAR(scaled.degree_skew, 400.0, 1e-9);
}

TEST(TraitsFromStats, RejectsBadScale) {
  GraphStats stats;
  stats.num_vertices = 10;
  EXPECT_THROW(traits_from_stats(stats, 0.0), std::invalid_argument);
  EXPECT_THROW(traits_from_stats(stats, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace pglb
