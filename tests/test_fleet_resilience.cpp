// Fleet router under fire (docs/FLEET.md, docs/ROBUSTNESS.md): failover on
// transport errors, typed-overloaded handling with retry-after parking,
// deadline synthesis, and — the headline — hedged-retry determinism under an
// injected stall: the routed plan is byte-identical to a single backend's
// even when the winning response came from the hedge.
//
// Runs under the `fault` ctest label (scripts/check_tsan.sh exercises it
// alongside the tsan suite).

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/hashing.hpp"
#include "fleet/local_backend.hpp"
#include "fleet/router.hpp"
#include "obs/registry.hpp"
#include "service/planner.hpp"
#include "service/protocol.hpp"
#include "util/fault.hpp"

namespace pglb {
namespace {

/// Disarms the global fault registry even when an assertion bails out early
/// (same idiom as test_service_resilience.cpp).
struct FaultGuard {
  ~FaultGuard() { FaultRegistry::instance().clear(); }
};

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;
  return options;
}

ServerOptions small_server() {
  ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 64;
  return options;
}

PlanRequest plan_request(const std::string& id) {
  PlanRequest request;
  request.id = id;
  request.machines = {"m4.2xlarge", "c4.2xlarge"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000;
  return request;
}

/// Transport failure on every submit — a dead replica.
class FailingBackend : public Backend {
 public:
  explicit FailingBackend(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string) override {
    std::promise<std::string> promise;
    promise.set_exception(std::make_exception_ptr(
        BackendError(name_, "injected transport failure")));
    return promise.get_future();
  }

 private:
  std::string name_;
};

/// Sheds every request with a canned typed "overloaded" response.
class OverloadedBackend : public Backend {
 public:
  OverloadedBackend(std::string name, std::uint64_t retry_after_ms)
      : name_(std::move(name)), retry_after_ms_(retry_after_ms) {}
  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string line) override {
    std::string id;
    try {
      id = parse_plan_request(line).id;
    } catch (const std::exception&) {
    }
    std::promise<std::string> promise;
    promise.set_value(serialize_overloaded(id, 3, retry_after_ms_));
    return promise.get_future();
  }

 private:
  std::string name_;
  std::uint64_t retry_after_ms_;
};

/// Accepts everything, answers nothing — a hung replica.
class SilentBackend : public Backend {
 public:
  explicit SilentBackend(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string) override {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.emplace_back();
    return pending_.back().get_future();
  }

 private:
  std::string name_;
  std::mutex mutex_;
  std::vector<std::promise<std::string>> pending_;
};

/// First request (searching distinct out-of-coverage alphas, so every probe
/// has its own routing key) whose rendezvous winner is backend `want`.  The
/// ranking is deterministic, so the search always terminates quickly.
PlanRequest request_ranked_first_on(const std::vector<std::string>& names,
                                    const std::vector<double>& weights,
                                    std::size_t want) {
  for (int i = 0; i < 256; ++i) {
    PlanRequest request = plan_request("pick-" + std::to_string(i));
    request.alpha = 3.0 + 0.001 * i;  // outside coverage: keyed verbatim
    const auto order = rank_backends(routing_key(request), names, weights);
    if (order.front() == want) return request;
  }
  throw std::runtime_error("no request ranked first on the wanted backend");
}

TEST(FleetResilience, FailoverOnTransportErrorYieldsHealthyPlan) {
  Registry metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  // Frozen virtual clock: the dead replicas' backoff windows never expire, so
  // the second request deterministically skips them regardless of how long
  // the first plan computation took.
  options.fleet.clock_ms = [] { return std::uint64_t{0}; };
  Router router(options, &metrics);
  router.add_backend(std::make_shared<FailingBackend>("dead0"));
  const std::size_t healthy = router.add_backend(
      std::make_shared<LocalBackend>("ok0", tiny_options(), small_server()));
  router.add_backend(std::make_shared<FailingBackend>("dead1"));

  // Craft a request that rendezvous-ranks a DEAD backend first, so failover
  // is guaranteed to be exercised (not just possible).
  const FleetMembership fleet = router.fleet().membership();
  const PlanRequest request =
      request_ranked_first_on(fleet.names, fleet.weights, 0);
  const auto order =
      rank_backends(routing_key(request), fleet.names, fleet.weights);
  std::uint64_t dead_before_ok = 0;
  for (const std::size_t index : order) {
    if (index == healthy) break;
    ++dead_before_ok;
  }
  ASSERT_GE(dead_before_ok, 1u);

  const std::string response_line = router.route(serialize_request(request));
  const PlanResponse response = parse_plan_response(response_line);
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.status, PlanStatus::kOk);
  EXPECT_EQ(response.id, request.id);
  EXPECT_EQ(metrics.counter("router.backend_errors"), dead_before_ok);
  EXPECT_EQ(metrics.counter("router.failovers"), dead_before_ok);
  EXPECT_EQ(router.fleet().status(0).state, BackendState::kDown);

  // Dead replicas are now in backoff: the next request for the same key goes
  // straight to the healthy one — no repeated connection attempts.
  const std::string again = router.route(serialize_request(request));
  EXPECT_TRUE(parse_plan_response(again).ok);
  EXPECT_EQ(metrics.counter("router.backend_errors"), dead_before_ok);
  EXPECT_EQ(metrics.counter("fleet.ok0.routed"), 2u);
}

TEST(FleetResilience, AllBackendsFailedSynthesizesTypedError) {
  Registry metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  Router router(options, &metrics);
  router.add_backend(std::make_shared<FailingBackend>("dead0"));
  router.add_backend(std::make_shared<FailingBackend>("dead1"));

  const PlanRequest request = plan_request("doomed");
  const PlanResponse response =
      parse_plan_response(router.route(serialize_request(request)));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.status, PlanStatus::kError);
  EXPECT_EQ(response.id, "doomed");
  EXPECT_EQ(metrics.counter("router.backend_errors"), 2u);
  EXPECT_EQ(metrics.counter("router.exhausted"), 1u);
}

TEST(FleetResilience, OverloadedResponseParksBackendForItsRetryAfterHint) {
  auto clock = std::make_shared<std::uint64_t>(0);
  Registry metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  options.fleet.base_backoff_ms = 100;
  options.fleet.clock_ms = [clock] { return *clock; };
  Router router(options, &metrics);
  router.add_backend(std::make_shared<OverloadedBackend>("busy", 250));

  // The shed response itself is the answer (typed, truthful, retry hint) and
  // reaches the client byte-identical to the direct path.
  const PlanRequest request = plan_request("shed-1");
  const std::string response = router.route(serialize_request(request));
  EXPECT_EQ(response, serialize_overloaded("shed-1", 3, 250));
  EXPECT_EQ(metrics.counter("router.overloaded"), 1u);

  // The backend is parked (still "up") until its own retry_after horizon.
  EXPECT_EQ(router.fleet().status(0).state, BackendState::kUp);
  EXPECT_FALSE(router.fleet().eligible(0));

  // While parked, the fleet is unroutable: the router synthesizes its own
  // overloaded response with the base backoff as the hint.
  const std::string parked = router.route(serialize_request(plan_request("shed-2")));
  EXPECT_EQ(parked, serialize_overloaded("shed-2", 0, 100));
  EXPECT_EQ(metrics.counter("router.unroutable"), 1u);

  *clock += 250;  // horizon passed: eligible again
  EXPECT_TRUE(router.fleet().eligible(0));
  const std::string retried = router.route(serialize_request(plan_request("shed-3")));
  EXPECT_EQ(retried, serialize_overloaded("shed-3", 3, 250));
}

TEST(FleetResilience, OverloadedFailsOverToHealthyReplica) {
  Registry metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  Router router(options, &metrics);
  router.add_backend(std::make_shared<OverloadedBackend>("busy", 250));
  router.add_backend(
      std::make_shared<LocalBackend>("ok0", tiny_options(), small_server()));

  const FleetMembership fleet = router.fleet().membership();
  const PlanRequest request =
      request_ranked_first_on(fleet.names, fleet.weights, 0);
  const PlanResponse response =
      parse_plan_response(router.route(serialize_request(request)));
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.status, PlanStatus::kOk);
  EXPECT_EQ(metrics.counter("router.overloaded"), 1u);
  EXPECT_EQ(metrics.counter("router.failovers"), 1u);
}

TEST(FleetResilience, DeadlineExpirySynthesizesTypedTimeout) {
  Registry metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  Router router(options, &metrics);
  router.add_backend(std::make_shared<SilentBackend>("hung"));

  PlanRequest request = plan_request("stuck");
  request.timeout_ms = 50;
  const PlanResponse response =
      parse_plan_response(router.route(serialize_request(request)));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.status, PlanStatus::kTimeout);
  EXPECT_EQ(response.id, "stuck");
  EXPECT_EQ(metrics.counter("router.deadline_expired"), 1u);
}

TEST(FleetResilience, DrainingFleetIsUnroutable) {
  Registry metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  Router router(options, &metrics);
  router.add_backend(
      std::make_shared<LocalBackend>("b0", tiny_options(), small_server()));
  router.fleet().set_draining(0, true);

  const PlanResponse response =
      parse_plan_response(router.route(serialize_request(plan_request("adm"))));
  EXPECT_EQ(response.status, PlanStatus::kOverloaded);
  EXPECT_EQ(metrics.counter("router.unroutable"), 1u);

  router.fleet().set_draining(0, false);
  EXPECT_TRUE(
      parse_plan_response(router.route(serialize_request(plan_request("adm2")))).ok);
}

// The ISSUE's headline resilience property: with one replica stalled by fault
// injection, the hedge fires, the OTHER replica answers, and the routed plan
// is byte-for-byte the plan a lone healthy backend produces.  Determinism is
// what makes hedging safe — both replicas would emit identical bytes, so the
// client cannot tell a hedged response from a first-attempt one.
TEST(FleetResilience, HedgedRetryIsByteDeterministicUnderInjectedStall) {
  const PlanRequest request = plan_request("hedge-1");

  // Reference bytes from a lone healthy backend, BEFORE any fault is armed.
  std::string reference;
  {
    LocalBackend solo("solo", tiny_options(), small_server());
    reference = solo.submit(serialize_request(request)).get();
    ASSERT_TRUE(parse_plan_response(reference).ok);
  }

  Registry metrics;
  RouterOptions options;
  options.probe_interval_ms = 0;
  options.hedge_delay_ms = 50;
  Router router(options, &metrics);
  router.add_backend(
      std::make_shared<LocalBackend>("b0", tiny_options(), small_server()));
  router.add_backend(
      std::make_shared<LocalBackend>("b1", tiny_options(), small_server()));

  // Whichever replica gets the first attempt: its FIRST profiling cell (the
  // first profiler.cell hit process-wide since arming) stalls well past the
  // hedge delay, so the duplicate goes out and the other replica answers
  // first.  nth:1 guarantees the hedged replica's own cells run clean.
  FaultGuard guard;
  FaultRegistry::instance().configure("profiler.cell=stall:600@nth:1");

  const std::string routed = router.route(serialize_request(request));
  EXPECT_EQ(routed, reference);
  EXPECT_EQ(metrics.counter("router.hedges"), 1u);
  EXPECT_EQ(FaultRegistry::instance().injected_count("profiler.cell"), 1u);
  // Both replicas were contacted: the stalled first attempt and the hedge.
  EXPECT_EQ(metrics.counter("fleet.b0.routed") +
                metrics.counter("fleet.b1.routed"),
            2u);
}

}  // namespace
}  // namespace pglb
