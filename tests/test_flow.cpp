#include "core/flow.hpp"

#include <gtest/gtest.h>

#include "gen/corpus.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

struct FlowFixture : public ::testing::Test {
  FlowFixture()
      : cluster(testing::case2_cluster()),
        graph(make_corpus_graph(corpus_entry("wiki"), kScale)),
        suite(kScale) {
    const AppKind apps[] = {AppKind::kPageRank, AppKind::kConnectedComponents};
    pool = profile_cluster(cluster, suite, apps);
    options.scale = kScale;
  }

  Cluster cluster;
  EdgeList graph;
  ProxySuite suite;
  CcrPool pool;
  FlowOptions options;
};

TEST_F(FlowFixture, EndToEndProducesSaneResult) {
  const ProxyCcrEstimator estimator(pool);
  const auto result = run_flow(graph, AppKind::kPageRank, cluster, estimator, options);

  EXPECT_EQ(result.stats.num_edges, graph.num_edges());
  EXPECT_GT(result.fitted_alpha, 1.5);
  EXPECT_LT(result.fitted_alpha, 3.5);
  ASSERT_EQ(result.weights.size(), 2u);
  EXPECT_GT(result.weights[1], result.weights[0]);  // big machine gets more
  EXPECT_GE(result.replication_factor, 1.0);
  EXPECT_GT(result.app.report.makespan_seconds, 0.0);
  EXPECT_GT(result.app.report.total_joules, 0.0);
}

TEST_F(FlowFixture, CcrFlowBeatsUniformOnHeterogeneousCluster) {
  // The paper's core performance claim, end to end.
  const ProxyCcrEstimator ccr(pool);
  const UniformEstimator uniform;
  const auto with_ccr = run_flow(graph, AppKind::kPageRank, cluster, ccr, options);
  const auto with_uniform = run_flow(graph, AppKind::kPageRank, cluster, uniform, options);
  EXPECT_LT(with_ccr.app.report.makespan_seconds,
            with_uniform.app.report.makespan_seconds);
  // Energy drops too (less idle waiting on the big machine).
  EXPECT_LT(with_ccr.app.report.total_joules, with_uniform.app.report.total_joules);
}

TEST_F(FlowFixture, CcrFlowBeatsThreadCountOnCase2OnAverage) {
  // The paper's Case 2 claim (17.7% better than prior work) is an average
  // across apps and graphs; individual pairs can sit within the heuristic
  // noise, so assert the aggregate.
  const ProxyCcrEstimator ccr(pool);
  const ThreadCountEstimator threads;
  const auto citation = make_corpus_graph(corpus_entry("citation"), kScale);

  std::vector<double> ratios;
  for (const AppKind app : {AppKind::kPageRank, AppKind::kConnectedComponents}) {
    for (const EdgeList* g : {const_cast<const EdgeList*>(&graph), &citation}) {
      for (const PartitionerKind kind :
           {PartitionerKind::kRandomHash, PartitionerKind::kHybrid}) {
        FlowOptions o = options;
        o.partitioner = kind;
        const auto with_ccr = run_flow(*g, app, cluster, ccr, o);
        const auto with_threads = run_flow(*g, app, cluster, threads, o);
        ratios.push_back(with_threads.app.report.makespan_seconds /
                         with_ccr.app.report.makespan_seconds);
      }
    }
  }
  EXPECT_GT(geomean(ratios), 1.02);  // CCR ahead in aggregate
  // And never catastrophically behind on any single configuration.
  for (const double r : ratios) EXPECT_GT(r, 0.9);
}

TEST_F(FlowFixture, ResultDigestIsPartitionerInvariant) {
  const ProxyCcrEstimator estimator(pool);
  FlowOptions a = options;
  a.partitioner = PartitionerKind::kRandomHash;
  FlowOptions b = options;
  b.partitioner = PartitionerKind::kGinger;
  const auto ra = run_flow(graph, AppKind::kConnectedComponents, cluster, estimator, a);
  const auto rb = run_flow(graph, AppKind::kConnectedComponents, cluster, estimator, b);
  EXPECT_DOUBLE_EQ(ra.app.digest, rb.app.digest);  // same component count
}

TEST_F(FlowFixture, GridRejectedOnNonSquareCluster) {
  const ProxyCcrEstimator estimator(pool);
  FlowOptions bad = options;
  bad.partitioner = PartitionerKind::kGrid;
  EXPECT_THROW(run_flow(graph, AppKind::kPageRank, cluster, estimator, bad),
               std::invalid_argument);
}

TEST_F(FlowFixture, TriangleCountFlowCanonicalizesInternally) {
  // TC flows must run even though the raw graph is directed with duplicates.
  const AppKind apps[] = {AppKind::kTriangleCount};
  const auto tc_pool = profile_cluster(cluster, suite, apps);
  const ProxyCcrEstimator estimator(tc_pool);
  const auto result = run_flow(graph, AppKind::kTriangleCount, cluster, estimator, options);
  EXPECT_LE(result.stats.num_edges, graph.num_edges());
  EXPECT_GE(result.app.digest, 0.0);
}

}  // namespace
}  // namespace pglb
