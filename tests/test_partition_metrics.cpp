#include "partition/metrics.hpp"

#include <gtest/gtest.h>

#include "partition/weights.hpp"

namespace pglb {
namespace {

// Hand-checkable fixture: 4 vertices, 3 edges, 2 machines.
//   e0 = (0,1) -> m0,  e1 = (1,2) -> m1,  e2 = (2,3) -> m0
// Replicas: v0:{m0} v1:{m0,m1} v2:{m0,m1} v3:{m0}  -> RF = 6/4 = 1.5
struct Fixture {
  EdgeList graph{4};
  PartitionAssignment assignment;

  Fixture() {
    graph.add(0, 1);
    graph.add(1, 2);
    graph.add(2, 3);
    assignment.num_machines = 2;
    assignment.edge_to_machine = {0, 1, 0};
  }
};

TEST(PartitionMetrics, HandComputedReplicationFactor) {
  Fixture f;
  const auto m = compute_partition_metrics(f.graph, f.assignment, uniform_weights(2));
  EXPECT_DOUBLE_EQ(m.replication_factor, 1.5);
  EXPECT_EQ(m.edges_per_machine, (std::vector<EdgeId>{2, 1}));
  EXPECT_EQ(m.replicas_per_machine, (std::vector<VertexId>{4, 2}));
}

TEST(PartitionMetrics, ImbalanceAgainstTargets) {
  Fixture f;
  const auto uniform = compute_partition_metrics(f.graph, f.assignment, uniform_weights(2));
  // Machine 0 holds 2/3 of edges against a 1/2 target -> 4/3.
  EXPECT_NEAR(uniform.weighted_imbalance, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(uniform.uniform_imbalance, 4.0 / 3.0, 1e-12);

  const std::vector<double> matched = {2.0 / 3.0, 1.0 / 3.0};
  const auto good = compute_partition_metrics(f.graph, f.assignment, matched);
  EXPECT_NEAR(good.weighted_imbalance, 1.0, 1e-12);
}

TEST(PartitionMetrics, IsolatedVerticesDoNotCount) {
  EdgeList g(10);  // vertices 2..9 isolated
  g.add(0, 1);
  PartitionAssignment a;
  a.num_machines = 2;
  a.edge_to_machine = {0};
  const auto m = compute_partition_metrics(g, a, uniform_weights(2));
  EXPECT_DOUBLE_EQ(m.replication_factor, 1.0);
}

TEST(PartitionMetrics, PureEdgeCutHasFactorOne) {
  EdgeList g(4);
  g.add(0, 1);
  g.add(2, 3);
  PartitionAssignment a;
  a.num_machines = 2;
  a.edge_to_machine = {0, 1};
  const auto m = compute_partition_metrics(g, a, uniform_weights(2));
  EXPECT_DOUBLE_EQ(m.replication_factor, 1.0);
}

TEST(PartitionMetrics, RejectsMismatchedInputs) {
  Fixture f;
  PartitionAssignment short_assignment;
  short_assignment.num_machines = 2;
  short_assignment.edge_to_machine = {0};
  EXPECT_THROW(compute_partition_metrics(f.graph, short_assignment, uniform_weights(2)),
               std::invalid_argument);
  EXPECT_THROW(compute_partition_metrics(f.graph, f.assignment, uniform_weights(3)),
               std::invalid_argument);
}

TEST(PartitionAssignment, MachineEdgeCountsValidatesIds) {
  PartitionAssignment a;
  a.num_machines = 2;
  a.edge_to_machine = {0, 5};
  EXPECT_THROW(a.machine_edge_counts(), std::logic_error);
}

}  // namespace
}  // namespace pglb
