// Calibration tests: assert the machine model reproduces the *shapes* the
// paper measured (Fig. 2, Fig. 8, the Case 1-3 CCRs).  These are the
// contract between the analytic substrate and every evaluation bench; if a
// model constant changes, these tests say whether the paper's qualitative
// story still holds.

#include <gtest/gtest.h>

#include <vector>

#include "machine/catalog.hpp"
#include "machine/perf_model.hpp"

namespace pglb {
namespace {

WorkloadTraits social_like_traits() {
  // The paper's largest natural graph (LiveJournal-scale).
  WorkloadTraits traits;
  traits.num_vertices_m = 4.85;
  traits.footprint_mb = 1100.0;
  traits.degree_skew = 1500.0;
  return traits;
}

std::vector<double> c4_speedups(AppKind app, const WorkloadTraits& traits) {
  const auto family = c4_family();
  std::vector<double> speedup;
  const double base = throughput_ops(family[0], profile_for(app), traits);
  for (const MachineSpec& m : family) {
    speedup.push_back(throughput_ops(m, profile_for(app), traits) / base);
  }
  return speedup;  // {xlarge, 2xlarge, 4xlarge, 8xlarge}
}

TEST(CalibrationFig2, PageRankSaturatesBetween4xlAnd8xl) {
  const auto s = c4_speedups(AppKind::kPageRank, social_like_traits());
  EXPECT_GT(s[2] / s[1], 1.4);   // still scaling to 4xlarge...
  EXPECT_LT(s[3] / s[2], 1.25);  // ...then flattens (the paper's saturation)
}

TEST(CalibrationFig2, ColoringAndCcKeepScalingToTheTop) {
  for (const AppKind app : {AppKind::kColoring, AppKind::kConnectedComponents}) {
    const auto s = c4_speedups(app, social_like_traits());
    EXPECT_GT(s[1], 1.8) << to_string(app);
    EXPECT_GT(s[2] / s[1], 1.4) << to_string(app);
    EXPECT_GT(s[3] / s[2], 1.3) << to_string(app);   // no saturation
    EXPECT_GT(s[3], 5.5) << to_string(app);          // "nearly linear" growth
  }
}

TEST(CalibrationFig2, TriangleCountJumpsSharplyAt8xlarge) {
  const auto s = c4_speedups(AppKind::kTriangleCount, social_like_traits());
  // Modest gains up to 4xlarge, then the LLC fits the working set: sharp jump.
  EXPECT_LT(s[2], 4.0);
  EXPECT_GT(s[3] / s[2], 1.8);
  EXPECT_NEAR(s[3], 7.6, 2.0);  // paper: 7.6x real speedup at 8xlarge
}

TEST(CalibrationFig2, ThreadCountEstimatesOverestimateBadly) {
  // Prior work predicts speedup = compute-thread ratio (1, 3, 7, 17).  The
  // paper reports ~108% average error vs real scaling.
  const auto family = c4_family();
  double total_error = 0.0;
  int samples = 0;
  for (const AppKind app :
       {AppKind::kPageRank, AppKind::kColoring, AppKind::kConnectedComponents,
        AppKind::kTriangleCount}) {
    const auto real = c4_speedups(app, social_like_traits());
    for (std::size_t i = 1; i < family.size(); ++i) {
      const double estimate = static_cast<double>(family[i].compute_threads) /
                              family[0].compute_threads;
      total_error += (estimate - real[i]) / real[i];
      ++samples;
    }
  }
  const double mean_error = total_error / samples;
  EXPECT_GT(mean_error, 0.6);  // large systematic overestimation
}

TEST(CalibrationFig8b, CategoryOrderingAtEqualThreadCount) {
  // m4 / c4 / r3 all have 6 compute threads yet diverge: c4 ~1.2x, r3 ~1.1x
  // over m4.
  const auto traits = social_like_traits();
  for (const AppKind app :
       {AppKind::kPageRank, AppKind::kColoring, AppKind::kConnectedComponents,
        AppKind::kTriangleCount}) {
    const double m4 = throughput_ops(machine_by_name("m4.2xlarge"), profile_for(app), traits);
    const double c4 = throughput_ops(machine_by_name("c4.2xlarge"), profile_for(app), traits);
    const double r3 = throughput_ops(machine_by_name("r3.2xlarge"), profile_for(app), traits);
    EXPECT_NEAR(c4 / m4, 1.2, 0.15) << to_string(app);
    EXPECT_NEAR(r3 / m4, 1.1, 0.12) << to_string(app);
    EXPECT_GT(c4, r3) << to_string(app);
  }
}

TEST(CalibrationCase2, LocalClusterCcrNearOneToThreeAndAHalf) {
  // Sec. V-B2: Xeon S vs L CCRs cluster around 1:3.5 (TC: ~1:3.1), well below
  // the 1:5 thread-count ratio, so core counting overloads the big machine.
  const auto traits = social_like_traits();
  const auto& s = machine_by_name("xeon_server_s");
  const auto& l = machine_by_name("xeon_server_l");
  for (const AppKind app :
       {AppKind::kPageRank, AppKind::kColoring, AppKind::kConnectedComponents}) {
    const double ccr = throughput_ops(l, profile_for(app), traits) /
                       throughput_ops(s, profile_for(app), traits);
    EXPECT_NEAR(ccr, 3.5, 0.8) << to_string(app);
    EXPECT_LT(ccr, 5.0) << to_string(app);  // below the thread-count ratio
  }
  const double tc_ccr = throughput_ops(l, profile_for(AppKind::kTriangleCount), traits) /
                        throughput_ops(s, profile_for(AppKind::kTriangleCount), traits);
  EXPECT_NEAR(tc_ccr, 3.1, 0.8);
}

TEST(CalibrationCase3, DeratedSmallMachineWidensCcr) {
  // Sec. V-B3: S at 1.8 GHz pushes PR/CC/Coloring CCRs beyond the ~5x
  // thread-count ratio while TC lands near 1:4.5.
  const auto traits = social_like_traits();
  const auto s18 = with_frequency(machine_by_name("xeon_server_s"), 1.8);
  const auto& l = machine_by_name("xeon_server_l");
  for (const AppKind app :
       {AppKind::kPageRank, AppKind::kColoring, AppKind::kConnectedComponents}) {
    const double ccr = throughput_ops(l, profile_for(app), traits) /
                       throughput_ops(s18, profile_for(app), traits);
    EXPECT_GT(ccr, 4.4) << to_string(app);  // substantially above Case 2
  }
  const double tc_ccr = throughput_ops(l, profile_for(AppKind::kTriangleCount), traits) /
                        throughput_ops(s18, profile_for(AppKind::kTriangleCount), traits);
  EXPECT_NEAR(tc_ccr, 4.5, 1.0);
}

}  // namespace
}  // namespace pglb
