// Determinism property tests for the shared thread pool: every parallelized
// pipeline stage must produce BIT-IDENTICAL results at 1, 2 and 8 threads,
// and the 1-thread results must match goldens captured from the pre-pool
// serial implementation (so parallelization changed nothing).

#include <gtest/gtest.h>

#include <vector>

#include "core/profiler.hpp"
#include "core/proxy_suite.hpp"
#include "engine/engine.hpp"
#include "gen/chung_lu.hpp"
#include "gen/corpus.hpp"
#include "gen/powerlaw.hpp"
#include "machine/catalog.hpp"
#include "partition/metrics.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "service/planner.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace pglb {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

/// Order-sensitive digest of an edge list: equal digests = identical graphs.
std::uint64_t edge_digest(const EdgeList& g) {
  std::uint64_t h = hash_u64(g.num_vertices(), 0xABCD);
  for (const Edge& e : g.edges()) h = hash_combine(h, hash_edge(e.src, e.dst));
  return h;
}

TEST(ParallelDeterminism, PowerlawGraphIsThreadCountInvariant) {
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.1;
  config.seed = 42;
  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    const EdgeList g = generate_powerlaw(config, &pool);
    // Goldens captured from the pre-thread-pool serial generator.
    EXPECT_EQ(g.num_edges(), 19128u) << threads << " threads";
    EXPECT_EQ(edge_digest(g), 0x9a127e2dd78af95full) << threads << " threads";
  }
}

TEST(ParallelDeterminism, ChungLuGraphIsThreadCountInvariant) {
  ChungLuConfig config;
  config.num_vertices = 4000;
  config.target_edges = 20000;
  config.alpha = 2.2;
  config.seed = 7;
  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    const EdgeList g = generate_chung_lu(config, &pool);
    EXPECT_EQ(g.num_edges(), 20000u) << threads << " threads";
    EXPECT_EQ(edge_digest(g), 0xa86e5d5d7a1d0c3cull) << threads << " threads";
  }
}

TEST(ParallelDeterminism, CorpusGraphIsThreadCountInvariant) {
  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    const EdgeList g = make_corpus_graph(corpus_entry("amazon"), 1.0 / 64.0, 3, &pool);
    EXPECT_EQ(g.num_edges(), 52928u) << threads << " threads";
    EXPECT_EQ(edge_digest(g), 0x527c5cae3dd75c38ull) << threads << " threads";
  }
}

TEST(ParallelDeterminism, ProxySuiteIsThreadCountInvariant) {
  ThreadPool serial(1);
  const ProxySuite reference(1.0 / 256.0, 17, &serial);
  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    const ProxySuite suite(1.0 / 256.0, 17, &pool);
    ASSERT_EQ(suite.proxies().size(), reference.proxies().size());
    for (std::size_t i = 0; i < suite.proxies().size(); ++i) {
      EXPECT_EQ(suite.proxies()[i].alpha, reference.proxies()[i].alpha);
      EXPECT_EQ(edge_digest(suite.proxies()[i].graph),
                edge_digest(reference.proxies()[i].graph))
          << threads << " threads, proxy " << i;
      EXPECT_EQ(suite.proxies()[i].stats.num_edges, reference.proxies()[i].stats.num_edges);
    }
  }
}

TEST(ParallelDeterminism, ProfilerPoolMatchesSerialGoldens) {
  const Cluster cluster(
      {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
  const AppKind apps[] = {AppKind::kPageRank, AppKind::kTriangleCount};

  // group_times captured from the pre-thread-pool serial profiler
  // (app-major, then proxy alpha 1.95 / 2.1 / 2.3; one time per group).
  const std::vector<std::vector<double>> golden = {
      {6.1151409509545154, 2.0871069227198324},    // pagerank, 1.95
      {3.6172971327305845, 1.2183652400979097},    // pagerank, 2.1
      {2.2696769936892753, 0.7537691471235789},    // pagerank, 2.3
      {591.53004239111408, 194.51991644933869},    // triangle_count, 1.95
      {70.712872305168744, 22.955362622513949},    // triangle_count, 2.1
      {6.8318462891976068, 2.1583680882426921},    // triangle_count, 2.3
  };

  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    const ProxySuite suite(1.0 / 256.0, 17, &pool);
    const CcrPool ccr = profile_cluster(cluster, suite, apps, &pool);
    ASSERT_EQ(ccr.entries().size(), golden.size()) << threads << " threads";
    for (std::size_t i = 0; i < golden.size(); ++i) {
      const auto& entry = ccr.entries()[i];
      ASSERT_EQ(entry.group_times.size(), golden[i].size());
      for (std::size_t g = 0; g < golden[i].size(); ++g) {
        EXPECT_EQ(entry.group_times[g], golden[i][g])  // exact bit equality
            << threads << " threads, entry " << i << ", group " << g;
      }
    }
  }
}

TEST(ParallelDeterminism, PartitionMetricsAreThreadCountInvariant) {
  ThreadPool serial(1);
  const EdgeList graph = make_corpus_graph(corpus_entry("amazon"), 1.0 / 64.0, 3, &serial);
  const RandomHashPartitioner partitioner;
  const auto weights = uniform_weights(8);
  const auto assignment = partitioner.partition(graph, weights, 1);
  const PartitionMetrics reference =
      compute_partition_metrics(graph, assignment, weights, &serial);
  EXPECT_GT(reference.replication_factor, 1.0);

  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    const PartitionMetrics metrics =
        compute_partition_metrics(graph, assignment, weights, &pool);
    EXPECT_EQ(metrics.replication_factor, reference.replication_factor);
    EXPECT_EQ(metrics.replicas_per_machine, reference.replicas_per_machine);
    EXPECT_EQ(metrics.edges_per_machine, reference.edges_per_machine);
    EXPECT_EQ(metrics.weighted_imbalance, reference.weighted_imbalance);
    EXPECT_EQ(metrics.uniform_imbalance, reference.uniform_imbalance);
  }
}

TEST(ParallelDeterminism, EngineExecReportIsThreadCountInvariant) {
  // A cluster wide enough that per-machine accounting actually shards.
  std::vector<MachineSpec> machines;
  for (int m = 0; m < 200; ++m) {
    machines.push_back(machine_by_name(m % 2 == 0 ? "xeon_server_s" : "xeon_server_l"));
  }
  const Cluster cluster(std::move(machines));

  WorkloadTraits traits;
  traits.num_vertices_m = 1.0;
  traits.footprint_mb = 100.0;
  traits.degree_skew = 100.0;

  const auto run_with = [&](ThreadPool& pool) {
    VirtualClusterExecutor exec(cluster, profile_for(AppKind::kPageRank), traits);
    exec.set_thread_pool(&pool);
    std::vector<double> ops(cluster.size()), comm(cluster.size());
    for (int step = 0; step < 3; ++step) {
      for (MachineId m = 0; m < cluster.size(); ++m) {
        ops[m] = 1e8 * static_cast<double>(1 + (m * 7 + step) % 13);
        comm[m] = 1e6 * static_cast<double>((m * 3 + step) % 5);
      }
      exec.record_superstep(ops, comm);
    }
    return exec.finish("determinism", true);
  };

  ThreadPool serial(1);
  const ExecReport reference = run_with(serial);
  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool(threads);
    const ExecReport report = run_with(pool);
    EXPECT_EQ(report.makespan_seconds, reference.makespan_seconds) << threads;
    EXPECT_EQ(report.total_ops, reference.total_ops) << threads;
    EXPECT_EQ(report.total_joules, reference.total_joules) << threads;
    ASSERT_EQ(report.per_machine.size(), reference.per_machine.size());
    for (std::size_t m = 0; m < reference.per_machine.size(); ++m) {
      EXPECT_EQ(report.per_machine[m].compute_seconds,
                reference.per_machine[m].compute_seconds)
          << threads << " threads, machine " << m;
      EXPECT_EQ(report.per_machine[m].comm_seconds, reference.per_machine[m].comm_seconds);
      EXPECT_EQ(report.per_machine[m].idle_seconds, reference.per_machine[m].idle_seconds);
      EXPECT_EQ(report.per_machine[m].ops, reference.per_machine[m].ops);
      EXPECT_EQ(report.per_machine[m].joules, reference.per_machine[m].joules);
    }
    ASSERT_EQ(report.trace.size(), reference.trace.size());
    for (std::size_t s = 0; s < reference.trace.size(); ++s) {
      EXPECT_EQ(report.trace[s].window_seconds, reference.trace[s].window_seconds);
      EXPECT_EQ(report.trace[s].exchange_seconds, reference.trace[s].exchange_seconds);
      EXPECT_EQ(report.trace[s].straggler, reference.trace[s].straggler);
      EXPECT_EQ(report.trace[s].total_ops, reference.trace[s].total_ops);
    }
  }
}

TEST(ParallelDeterminism, PlannerResponsesAreThreadCountInvariant) {
  PlanRequest request;
  request.id = "det";
  request.machines = {"xeon_server_s", "xeon_server_l", "xeon_server_l"};
  request.app = AppKind::kPageRank;
  request.vertices = 400'000;
  request.edges = 3'300'000;

  const auto plan_with = [&](unsigned threads) {
    PlannerOptions options;
    options.proxy_scale = 1.0 / 256.0;
    options.threads = threads;
    Planner planner(options);
    return planner.plan(request);
  };

  const PlanResponse reference = plan_with(1);
  ASSERT_TRUE(reference.ok) << reference.error;
  for (const unsigned threads : kThreadCounts) {
    const PlanResponse response = plan_with(threads);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(serialize_response(response), serialize_response(reference)) << threads;
  }
}

}  // namespace
}  // namespace pglb
