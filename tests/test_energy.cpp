#include "machine/energy_model.hpp"

#include <gtest/gtest.h>

#include "machine/catalog.hpp"

namespace pglb {
namespace {

std::vector<MachineSpec> two_machines() {
  return {machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")};
}

TEST(EnergyAccumulator, SingleIntervalBusyIdleSplit) {
  EnergyAccumulator acc(two_machines());
  const std::vector<double> busy = {2.0, 10.0};
  acc.record_interval(busy, 10.0);

  const auto& e = acc.per_machine();
  EXPECT_DOUBLE_EQ(e[0].busy_seconds, 2.0);
  EXPECT_DOUBLE_EQ(e[0].idle_seconds, 8.0);
  EXPECT_DOUBLE_EQ(e[1].busy_seconds, 10.0);
  EXPECT_DOUBLE_EQ(e[1].idle_seconds, 0.0);

  const auto& s = machine_by_name("xeon_server_s");
  const auto& l = machine_by_name("xeon_server_l");
  EXPECT_DOUBLE_EQ(e[0].joules, s.tdp_watts * 2.0 + s.idle_watts * 8.0);
  EXPECT_DOUBLE_EQ(e[1].joules, l.tdp_watts * 10.0);
  EXPECT_DOUBLE_EQ(acc.total_joules(), e[0].joules + e[1].joules);
}

TEST(EnergyAccumulator, IntervalsAccumulate) {
  EnergyAccumulator acc(two_machines());
  const std::vector<double> busy = {1.0, 1.0};
  acc.record_interval(busy, 2.0);
  acc.record_interval(busy, 2.0);
  EXPECT_DOUBLE_EQ(acc.total_busy_seconds(), 4.0);
  EXPECT_DOUBLE_EQ(acc.total_idle_seconds(), 4.0);
}

TEST(EnergyAccumulator, BusyClampedToWindow) {
  EnergyAccumulator acc(two_machines());
  const std::vector<double> busy = {5.0, 1.0};
  acc.record_interval(busy, 3.0);  // machine 0 reports more than the window
  EXPECT_DOUBLE_EQ(acc.per_machine()[0].busy_seconds, 3.0);
  EXPECT_DOUBLE_EQ(acc.per_machine()[0].idle_seconds, 0.0);
}

TEST(EnergyAccumulator, SizeMismatchRejected) {
  EnergyAccumulator acc(two_machines());
  const std::vector<double> busy = {1.0};
  EXPECT_THROW(acc.record_interval(busy, 1.0), std::invalid_argument);
}

TEST(EnergyAccumulator, BalancedScheduleUsesLessEnergyThanImbalanced) {
  // Same total work (12 machine-seconds), same machines: the schedule where
  // both machines finish together burns no idle power — the mechanism behind
  // the paper's energy savings.
  EnergyAccumulator balanced(two_machines());
  const std::vector<double> even = {6.0, 6.0};
  balanced.record_interval(even, 6.0);

  EnergyAccumulator imbalanced(two_machines());
  const std::vector<double> skewed = {2.0, 10.0};
  imbalanced.record_interval(skewed, 10.0);

  EXPECT_LT(balanced.total_joules(), imbalanced.total_joules());
}

}  // namespace
}  // namespace pglb
