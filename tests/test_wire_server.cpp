// PlanServer's side of the wire upgrade (docs/WIRE.md): serve_stream sniffs
// the first line — a hello upgrades the connection to id-tagged binary frames
// answered in completion order, anything else stays on the byte-identical
// line protocol.  Ends with a full-duplex integration: a binary TcpBackend
// talking to a live PlanServer over a socketpair, responses byte-identical to
// direct submission.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/server.hpp"
#include "service/wire.hpp"

#ifdef __unix__
#include <sys/socket.h>
#include <unistd.h>

#include <ext/stdio_filebuf.h>  // libstdc++: iostream over a file descriptor

#include "fleet/tcp_backend.hpp"
#endif

namespace pglb {
namespace {

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;
  return options;
}

std::string plan_line(int variant, int sequence) {
  PlanRequest request;
  request.id = "q" + std::to_string(sequence);
  request.app = variant % 2 == 0 ? AppKind::kPageRank : AppKind::kColoring;
  request.machines = variant % 4 < 2
                         ? std::vector<std::string>{"m4.2xlarge", "c4.2xlarge"}
                         : std::vector<std::string>{"xeon_server_s", "xeon_server_l"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000 + static_cast<std::uint64_t>(variant % 4) * 1'000'000;
  return serialize_request(request);
}

/// Split a serve_stream transcript into the ack line and the decoded frames.
std::pair<std::string, std::map<std::uint64_t, std::string>> parse_frame_output(
    const std::string& output) {
  const std::size_t newline = output.find('\n');
  EXPECT_NE(newline, std::string::npos);
  std::map<std::uint64_t, std::string> responses;
  std::size_t offset = newline + 1;
  while (offset < output.size()) {
    wire::Frame frame;
    std::string error;
    const auto status = wire::decode_frame(output, &offset, &frame, &error);
    EXPECT_EQ(status, wire::DecodeStatus::kFrame) << error;
    if (status != wire::DecodeStatus::kFrame) break;
    EXPECT_EQ(frame.type, wire::FrameType::kResponse);
    responses[frame.id] = frame.payload;
  }
  return {output.substr(0, newline), responses};
}

TEST(WireServer, HelloUpgradesAndAnswersFramesById) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 4, .queue_capacity = 16});
  // Byte-identity reference: an independent server instance — plans are
  // deterministic, so the same request line yields the same response bytes.
  ServiceMetrics reference_metrics;
  Planner reference_planner(tiny_options(), &reference_metrics);
  PlanServer reference(reference_planner, reference_metrics,
                       {.threads = 1, .queue_capacity = 16});

  const std::vector<std::uint64_t> ids = {7, 99, 3};
  std::string input = wire::hello_line() + "\n";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    wire::append_frame(input, wire::FrameType::kRequest, ids[i],
                       plan_line(static_cast<int>(i), static_cast<int>(i)));
  }
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), ids.size());

  const auto [ack, responses] = parse_frame_output(out.str());
  EXPECT_TRUE(wire::is_hello_ack(ack));
  ASSERT_EQ(responses.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string expected =
        reference.submit(plan_line(static_cast<int>(i), static_cast<int>(i)))
            .get();
    EXPECT_EQ(responses.at(ids[i]), expected) << "frame id " << ids[i];
  }
  EXPECT_EQ(metrics.counter("wire.binary_upgrades"), 1u);
}

TEST(WireServer, NonHelloFirstLineStaysOnTheLineProtocol) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});
  ServiceMetrics reference_metrics;
  Planner reference_planner(tiny_options(), &reference_metrics);
  PlanServer reference(reference_planner, reference_metrics,
                       {.threads = 1, .queue_capacity = 8});

  std::istringstream in(plan_line(0, 0) + "\n" + plan_line(1, 1) + "\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 2u);
  EXPECT_EQ(out.str(), reference.submit(plan_line(0, 0)).get() + "\n" +
                           reference.submit(plan_line(1, 1)).get() + "\n");
  EXPECT_EQ(metrics.counter("wire.binary_upgrades"), 0u);
}

TEST(WireServer, UpgradeDisabledAnswersHelloWithTypedError) {
  // --wire=line replicas (mixed fleets, docs/WIRE.md): the hello gets the
  // same typed parse error a pre-wire server would send, which a kAuto
  // client reads as the fall-back-to-lines signal.
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics,
                    {.threads = 2, .queue_capacity = 8,
                     .allow_wire_upgrade = false});

  std::istringstream in(wire::hello_line() + "\n" + plan_line(0, 0) + "\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 2u);

  std::istringstream lines(out.str());
  std::string first;
  std::string second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_FALSE(wire::is_hello_ack(first));
  EXPECT_NE(first.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(second.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(metrics.counter("wire.binary_upgrades"), 0u);
}

TEST(WireServer, HelloThenEofServesNothingAndReturns) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});
  std::istringstream in(wire::hello_line() + "\n");
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0u);
  EXPECT_TRUE(wire::is_hello_ack(out.str().substr(0, out.str().size() - 1)));
}

TEST(WireServer, GarbageAfterHandshakeIsCountedAndStopsTheStream) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});
  std::istringstream in(wire::hello_line() + "\n" +
                        std::string(wire::kHeaderSize, 'X'));
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 0u);
  EXPECT_EQ(metrics.counter("wire.bad_frames"), 1u);
}

TEST(WireServer, CrcHelloNegotiatesTrailersBothWays) {
  // A crc-requesting hello gets a crc-granting ack, and every response frame
  // carries the trailer — which parse_frame_output validates by decoding.
  // The payload bytes stay byte-identical to an untrailed server's.
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});
  ServiceMetrics reference_metrics;
  Planner reference_planner(tiny_options(), &reference_metrics);
  PlanServer reference(reference_planner, reference_metrics,
                       {.threads = 1, .queue_capacity = 8});

  std::string input = wire::hello_line(true) + "\n";
  wire::append_frame(input, wire::FrameType::kRequest, 21, plan_line(0, 0),
                     /*with_crc=*/true);
  wire::append_frame(input, wire::FrameType::kRequest, 22, plan_line(1, 1),
                     /*with_crc=*/true);
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 2u);

  const auto [ack, responses] = parse_frame_output(out.str());
  EXPECT_TRUE(wire::is_hello_ack(ack));
  EXPECT_TRUE(wire::ack_grants_crc(ack));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses.at(21), reference.submit(plan_line(0, 0)).get());
  EXPECT_EQ(responses.at(22), reference.submit(plan_line(1, 1)).get());
  // The raw transcript really contains flagged frames, not just clean ones.
  EXPECT_NE(out.str().find(static_cast<char>(wire::kFlagCrc)),
            std::string::npos);
  EXPECT_EQ(metrics.counter("wire.crc_upgrades"), 1u);
}

TEST(WireServer, CorruptPayloadGetsTypedErrorAndTheStreamSurvives) {
  // Flip one payload byte of a CRC frame in flight: the server must reject
  // THAT id with a typed error and keep serving — corruption is a per-frame
  // event, not a connection killer (docs/CHAOS.md).
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});

  std::string damaged;
  wire::append_frame(damaged, wire::FrameType::kRequest, 5, plan_line(0, 0),
                     /*with_crc=*/true);
  damaged[wire::kHeaderSize + 3] ^= 0x40;  // one bit, inside the payload
  std::string input = wire::hello_line(true) + "\n" + damaged;
  wire::append_frame(input, wire::FrameType::kRequest, 6, plan_line(1, 1),
                     /*with_crc=*/true);

  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 2u);

  const auto [ack, responses] = parse_frame_output(out.str());
  EXPECT_TRUE(wire::ack_grants_crc(ack));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses.at(5).find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(responses.at(5).find("crc"), std::string::npos);
  EXPECT_NE(responses.at(6).find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(metrics.counter("wire.crc_rejected"), 1u);
  EXPECT_EQ(metrics.counter("wire.bad_frames"), 0u);
}

TEST(WireServer, InflightCapShedsWithTypedPushback) {
  // One worker, a cap of one frame in flight, six frames arriving faster than
  // any plan completes: the excess gets immediate "overloaded" responses on
  // their own ids instead of monopolizing the queue.  Every id is answered.
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics,
                    {.threads = 1, .queue_capacity = 16,
                     .max_inflight_frames = 1});

  std::string input = wire::hello_line() + "\n";
  for (std::uint64_t id = 1; id <= 6; ++id) {
    wire::append_frame(input, wire::FrameType::kRequest, id,
                       plan_line(static_cast<int>(id), static_cast<int>(id)));
  }
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.serve_stream(in, out), 6u);

  const auto [ack, responses] = parse_frame_output(out.str());
  EXPECT_TRUE(wire::is_hello_ack(ack));
  ASSERT_EQ(responses.size(), 6u);
  std::size_t shed = 0;
  for (const auto& [id, payload] : responses) {
    if (payload.find("\"status\":\"overloaded\"") != std::string::npos) ++shed;
  }
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(metrics.counter("wire.inflight_shed"), shed);
}

#ifdef __unix__

TEST(WireServerIntegration, BinaryBackendRoundTripsByteIdentical) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 4, .queue_capacity = 16});
  ServiceMetrics reference_metrics;
  Planner reference_planner(tiny_options(), &reference_metrics);
  PlanServer reference(reference_planner, reference_metrics,
                       {.threads = 1, .queue_capacity = 16});

  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serving([&server, fd = fds[1]] {
    __gnu_cxx::stdio_filebuf<char> in_buf(fd, std::ios::in);
    __gnu_cxx::stdio_filebuf<char> out_buf(::dup(fd), std::ios::out);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    EXPECT_EQ(server.serve_stream(in, out), 8u);
  });

  {
    TcpBackend backend("b0", fds[0], WireMode::kAuto);
    std::vector<std::future<std::string>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(backend.submit(plan_line(i, i)));
    }
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(),
                reference.submit(plan_line(i, i)).get())
          << "request " << i;
    }
    EXPECT_TRUE(backend.stats().binary);
  }  // backend teardown closes its end; the server sees EOF and returns

  serving.join();
  EXPECT_EQ(metrics.counter("wire.binary_upgrades"), 1u);
  EXPECT_EQ(metrics.counter("requests_total"), 8u);
}

TEST(WireServerIntegration, HandshakeDeadlineCutsOffASilentPeer) {
  // Slow-loris defense (docs/CHAOS.md): a peer that connects and never sends
  // a byte is cut off at the handshake deadline instead of parking a serving
  // slot forever, and the cut is counted distinctly.
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics,
                    {.threads = 2, .queue_capacity = 8,
                     .handshake_timeout_ms = 80});

  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::ostringstream out;
  const auto before = std::chrono::steady_clock::now();
  EXPECT_EQ(server.serve_fd(fds[1], out), 0u);  // peer open, silent
  const auto waited = std::chrono::steady_clock::now() - before;
  EXPECT_GE(waited, std::chrono::milliseconds(70));
  EXPECT_EQ(out.str(), "");
  EXPECT_EQ(metrics.counter("wire.handshake_timeouts"), 1u);
  EXPECT_EQ(metrics.counter("wire.idle_reaped"), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireServerIntegration, IdleDeadlineReapsAfterServingWhatArrived) {
  // A connection that speaks and then goes quiet is served, then reaped at
  // the idle deadline — the request it DID send is answered first.
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics,
                    {.threads = 2, .queue_capacity = 8,
                     .idle_timeout_ms = 80});

  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string request = plan_line(0, 0) + "\n";
  ASSERT_EQ(::send(fds[0], request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::ostringstream out;
  EXPECT_EQ(server.serve_fd(fds[1], out), 1u);  // then silence until the reap
  EXPECT_NE(out.str().find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(metrics.counter("wire.idle_reaped"), 1u);
  EXPECT_EQ(metrics.counter("wire.handshake_timeouts"), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

#endif  // __unix__

}  // namespace
}  // namespace pglb
