#include "apps/connected_components.hpp"

#include <gtest/gtest.h>

#include "apps/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

WorkloadTraits traits_of(const EdgeList& g) {
  return traits_from_stats(compute_stats(g), 1.0);
}

DistributedGraph partition_with(const EdgeList& g, PartitionerKind kind,
                                MachineId machines) {
  const auto p = make_partitioner(kind);
  const auto a = p->partition(g, std::vector<double>(machines, 1.0), 13);
  return build_distributed(g, a);
}

TEST(ConnectedComponents, TwoTriangles) {
  const auto g = testing::two_triangles();
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_connected_components(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.num_components, 2u);
  EXPECT_EQ(out.labels[0], 0u);
  EXPECT_EQ(out.labels[1], 0u);
  EXPECT_EQ(out.labels[2], 0u);
  EXPECT_EQ(out.labels[3], 3u);
  EXPECT_EQ(out.labels[5], 3u);
  EXPECT_TRUE(out.report.converged);
}

TEST(ConnectedComponents, IsolatedVerticesAreSingletons) {
  EdgeList g(5);
  g.add(0, 1);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_connected_components(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.num_components, 4u);  // {0,1} plus three singletons
}

class CcPartitionInvariance : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(CcPartitionInvariance, MatchesUnionFindReference) {
  PowerLawConfig config;
  config.num_vertices = 4000;
  config.alpha = 2.3;  // sparse enough to leave several components
  config.seed = 23;
  const auto g = generate_powerlaw(config);

  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, GetParam(), cluster.size());
  const auto out = run_connected_components(g, dg, cluster, traits_of(g));

  const auto expected = connected_components_reference(g);
  ASSERT_EQ(out.labels.size(), expected.size());
  EXPECT_EQ(out.labels, expected);
  EXPECT_EQ(out.num_components, count_components(expected));
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, CcPartitionInvariance,
                         ::testing::Values(PartitionerKind::kRandomHash,
                                           PartitionerKind::kOblivious,
                                           PartitionerKind::kHybrid,
                                           PartitionerKind::kGinger));

TEST(ConnectedComponents, LongPathNeedsManySupersteps) {
  // Propagation distance bounds the superstep count: a path of length 60
  // needs ~60 rounds; a star needs ~2.
  const auto path = testing::path_graph(64);
  const auto star = testing::star_graph(64);
  const auto cluster = testing::case1_cluster();

  const auto path_dg = partition_with(path, PartitionerKind::kRandomHash, cluster.size());
  const auto star_dg = partition_with(star, PartitionerKind::kRandomHash, cluster.size());
  const auto path_out = run_connected_components(path, path_dg, cluster, traits_of(path));
  const auto star_out = run_connected_components(star, star_dg, cluster, traits_of(star));

  EXPECT_GT(path_out.report.supersteps, 10);
  EXPECT_LE(star_out.report.supersteps, 3);
  EXPECT_EQ(path_out.num_components, 1u);
  EXPECT_EQ(star_out.num_components, 1u);
}

TEST(ConnectedComponents, FrontierShrinksWork) {
  // Later supersteps touch fewer active edges, so total ops must be far less
  // than edges * supersteps.
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.1;
  const auto g = generate_powerlaw(config);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_connected_components(g, dg, cluster, traits_of(g));
  ASSERT_GT(out.report.supersteps, 2);
  EXPECT_LT(out.report.total_ops,
            0.8 * static_cast<double>(g.num_edges()) * out.report.supersteps);
}

}  // namespace
}  // namespace pglb
