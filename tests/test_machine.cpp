#include "machine/catalog.hpp"

#include <gtest/gtest.h>

#include "cluster/groups.hpp"
#include "machine/app_profile.hpp"

namespace pglb {
namespace {

TEST(Catalog, TableOneValuesVerbatim) {
  const auto& c4x = machine_by_name("c4.xlarge");
  EXPECT_EQ(c4x.hw_threads, 4);
  EXPECT_EQ(c4x.compute_threads, 2);
  EXPECT_DOUBLE_EQ(c4x.cost_per_hour, 0.209);

  const auto& r3 = machine_by_name("r3.2xlarge");
  EXPECT_EQ(r3.hw_threads, 8);
  EXPECT_EQ(r3.compute_threads, 6);
  EXPECT_DOUBLE_EQ(r3.cost_per_hour, 0.665);
  EXPECT_EQ(r3.category, MachineCategory::kMemoryOptimized);

  EXPECT_DOUBLE_EQ(machine_by_name("c4.8xlarge").cost_per_hour, 1.675);
  EXPECT_DOUBLE_EQ(machine_by_name("xeon_server_l").cost_per_hour, 0.0);
}

TEST(Catalog, ComputeThreadsAreHwMinusTwo) {
  // PowerGraph reserves two logical cores for communication (Sec. III-B).
  for (const MachineSpec& m : table1_machines()) {
    EXPECT_EQ(m.compute_threads, m.hw_threads - 2) << m.name;
  }
}

TEST(Catalog, UnknownNameThrows) {
  EXPECT_THROW(machine_by_name("p5.48xlarge"), std::out_of_range);
}

TEST(Catalog, FamiliesAreOrdered) {
  const auto c4 = c4_family();
  ASSERT_EQ(c4.size(), 4u);
  for (std::size_t i = 1; i < c4.size(); ++i) {
    EXPECT_GT(c4[i].compute_threads, c4[i - 1].compute_threads);
  }
  const auto cat = category_2xlarge_family();
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_EQ(cat[0].name, "m4.2xlarge");  // the Fig. 8b baseline comes first
  for (const MachineSpec& m : cat) EXPECT_EQ(m.compute_threads, 6);
}

TEST(WithFrequency, ScalesClockAndPower) {
  const auto& base = machine_by_name("xeon_server_s");
  const auto derated = with_frequency(base, 1.8);
  EXPECT_DOUBLE_EQ(derated.freq_ghz, 1.8);
  EXPECT_LT(derated.mem_bw_gbs, base.mem_bw_gbs);
  // Dynamic power scales ~f^3: derated TDP well below base but above idle.
  EXPECT_LT(derated.tdp_watts, base.tdp_watts);
  EXPECT_GT(derated.tdp_watts, derated.idle_watts);
  EXPECT_DOUBLE_EQ(derated.idle_watts, base.idle_watts);
  EXPECT_NE(derated.name, base.name);
}

TEST(WithFrequency, RejectsNonPositive) {
  EXPECT_THROW(with_frequency(machine_by_name("c4.xlarge"), 0.0), std::invalid_argument);
}

TEST(Groups, IdenticalSpecsShareAGroup) {
  const auto& a = machine_by_name("c4.2xlarge");
  const auto& b = machine_by_name("m4.2xlarge");
  const Cluster cluster({a, b, a, a});
  const auto groups = group_machines(cluster);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, (std::vector<MachineId>{0, 2, 3}));
  EXPECT_EQ(groups[1].members, (std::vector<MachineId>{1}));
}

TEST(Groups, ExpandRestoresPerMachineValues) {
  const auto& a = machine_by_name("c4.2xlarge");
  const auto& b = machine_by_name("m4.2xlarge");
  const Cluster cluster({a, b, a});
  const auto groups = group_machines(cluster);
  const std::vector<double> group_values = {2.0, 1.0};
  const auto per_machine = expand_group_values(cluster, groups, group_values);
  EXPECT_EQ(per_machine, (std::vector<double>{2.0, 1.0, 2.0}));
}

TEST(Groups, DeratedMachineFormsItsOwnGroup) {
  // Case 3 semantics: a frequency-capped machine is a *different type* and
  // must be profiled separately (Sec. III-B re-profiling rule).
  const auto& base = machine_by_name("xeon_server_s");
  const Cluster cluster({base, with_frequency(base, 1.8), base});
  const auto groups = group_machines(cluster);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].members, (std::vector<MachineId>{0, 2}));
  EXPECT_EQ(groups[1].members, (std::vector<MachineId>{1}));
}

TEST(Groups, ExpandRejectsSizeMismatch) {
  const Cluster cluster({machine_by_name("c4.xlarge")});
  const auto groups = group_machines(cluster);
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(expand_group_values(cluster, groups, wrong), std::invalid_argument);
}

TEST(AppProfiles, PaperAppsFirstThenExtensions) {
  std::size_t count = 0;
  const AppProfile* profiles = all_profiles(&count);
  ASSERT_EQ(count, 6u);
  EXPECT_EQ(profiles[0].kind, AppKind::kPageRank);
  EXPECT_EQ(profiles[4].kind, AppKind::kSssp);
  EXPECT_EQ(profiles[5].kind, AppKind::kKCore);

  // Coloring runs asynchronously in PowerGraph; the others are BSP.
  EXPECT_FALSE(profile_for(AppKind::kColoring).synchronous);
  EXPECT_TRUE(profile_for(AppKind::kPageRank).synchronous);
  EXPECT_TRUE(profile_for(AppKind::kTriangleCount).synchronous);

  // PageRank is the bandwidth-hungry one; TC the cache-amplified one.
  EXPECT_GT(profile_for(AppKind::kPageRank).bytes_per_op,
            profile_for(AppKind::kTriangleCount).bytes_per_op);
  EXPECT_GT(profile_for(AppKind::kTriangleCount).cache_amp, 0.0);
}

TEST(AppProfiles, NamesRoundTrip) {
  EXPECT_STREQ(to_string(AppKind::kPageRank), "pagerank");
  EXPECT_STREQ(to_string(AppKind::kColoring), "coloring");
  EXPECT_STREQ(to_string(AppKind::kConnectedComponents), "connected_components");
  EXPECT_STREQ(to_string(AppKind::kTriangleCount), "triangle_count");
  EXPECT_STREQ(to_string(AppKind::kSssp), "sssp");
  EXPECT_STREQ(to_string(AppKind::kKCore), "kcore");
}

}  // namespace
}  // namespace pglb
