// Autoscaler decision-loop tests (docs/AUTOSCALE.md).  Everything here runs
// on a virtual clock carried IN the samples — no processes, no sleeps: the
// same sample sequence must always produce the same decision sequence.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <variant>

#include "autoscale/autoscaler.hpp"
#include "autoscale/policy.hpp"
#include "cost/pareto.hpp"
#include "fleet/hashing.hpp"
#include "fleet/registry.hpp"
#include "machine/catalog.hpp"
#include "obs/registry.hpp"

namespace pglb {
namespace {

BackendSample backend(const std::string& name, std::uint64_t inflight,
                      std::uint64_t queue_depth = 0,
                      BackendState state = BackendState::kUp) {
  BackendSample sample;
  sample.name = name;
  sample.state = state;
  sample.inflight = inflight;
  sample.queue_depth = queue_depth;
  return sample;
}

FleetSample sample(std::uint64_t now_ms, std::vector<BackendSample> backends,
                   double p99_s = 0.050) {
  FleetSample s;
  s.now_ms = now_ms;
  s.p99_route_s = p99_s;
  s.backends = std::move(backends);
  return s;
}

AutoscalerOptions tuned() {
  AutoscalerOptions options;
  options.min_replicas = 1;
  options.max_replicas = 4;
  options.pressure_threshold = 4.0;
  options.idle_threshold = 0.5;
  options.sustain_samples = 3;
  options.idle_samples = 2;
  options.cooldown_ms = 1'000;
  return options;
}

// --- hysteresis -------------------------------------------------------------

TEST(Autoscaler, PressureMustSustainBeforeScaleUp) {
  Autoscaler scaler(tuned());
  // Two pressured samples: not enough (sustain_samples = 3).
  EXPECT_TRUE(std::holds_alternative<Hold>(
      scaler.decide(sample(0, {backend("b0", 8)}))));
  EXPECT_TRUE(std::holds_alternative<Hold>(
      scaler.decide(sample(100, {backend("b0", 8)}))));
  // A calm sample resets the streak...
  EXPECT_TRUE(std::holds_alternative<Hold>(
      scaler.decide(sample(200, {backend("b0", 2)}))));
  // ...so two more pressured samples still hold, and the third scales.
  EXPECT_TRUE(std::holds_alternative<Hold>(
      scaler.decide(sample(300, {backend("b0", 8)}))));
  EXPECT_TRUE(std::holds_alternative<Hold>(
      scaler.decide(sample(400, {backend("b0", 8)}))));
  const ScaleDecision decision = scaler.decide(sample(500, {backend("b0", 8)}));
  ASSERT_TRUE(std::holds_alternative<ScaleUp>(decision));
  EXPECT_FALSE(std::get<ScaleUp>(decision).spec.name.empty());
  EXPECT_GT(std::get<ScaleUp>(decision).weight, 0.0);
}

TEST(Autoscaler, ShedQueueDepthCountsAsPressure) {
  // A backend that sheds reports queue depth with zero router in-flight: the
  // scaler must still see pressure.
  Autoscaler scaler(tuned());
  for (std::uint64_t t = 0; t < 2; ++t) {
    scaler.decide(sample(t * 100, {backend("b0", 0, /*queue_depth=*/9)}));
  }
  const ScaleDecision decision =
      scaler.decide(sample(200, {backend("b0", 0, 9)}));
  EXPECT_TRUE(std::holds_alternative<ScaleUp>(decision));
}

// --- cooldown ---------------------------------------------------------------

TEST(Autoscaler, CooldownBlocksBackToBackActions) {
  Autoscaler scaler(tuned());
  for (std::uint64_t t = 0; t < 2; ++t) {
    scaler.decide(sample(t * 100, {backend("b0", 8)}));
  }
  ASSERT_TRUE(std::holds_alternative<ScaleUp>(
      scaler.decide(sample(200, {backend("b0", 8)}))));

  // Pressure persists, but the cooldown window (1000 ms) holds everything.
  for (std::uint64_t t = 300; t < 1'200; t += 100) {
    const ScaleDecision decision =
        scaler.decide(sample(t, {backend("b0", 8), backend("b1", 8)}));
    ASSERT_TRUE(std::holds_alternative<Hold>(decision)) << "t=" << t;
  }
  // Streaks accumulated through the cooldown: the first sample past the
  // window acts immediately.
  const ScaleDecision after =
      scaler.decide(sample(1'200, {backend("b0", 8), backend("b1", 8)}));
  EXPECT_TRUE(std::holds_alternative<ScaleUp>(after));
}

// --- replica bounds ---------------------------------------------------------

TEST(Autoscaler, MaxReplicasCapsScaleUp) {
  AutoscalerOptions options = tuned();
  options.max_replicas = 2;
  Autoscaler scaler(options);
  const std::vector<BackendSample> fleet = {backend("b0", 8), backend("b1", 8)};
  for (std::uint64_t t = 0; t < 6; ++t) {
    const ScaleDecision decision = scaler.decide(sample(t * 100, fleet));
    ASSERT_TRUE(std::holds_alternative<Hold>(decision)) << "t=" << t;
  }
}

TEST(Autoscaler, MinReplicasIsTheFloorForDrains) {
  Autoscaler scaler(tuned());  // min_replicas = 1, idle_samples = 2
  for (std::uint64_t t = 0; t < 6; ++t) {
    const ScaleDecision decision =
        scaler.decide(sample(t * 100, {backend("b0", 0)}));
    ASSERT_TRUE(std::holds_alternative<Hold>(decision)) << "t=" << t;
  }
}

TEST(Autoscaler, SustainedIdleDrainsNewestIdleReplica) {
  Autoscaler scaler(tuned());  // idle_samples = 2
  // b2 is newest but busy; b1 is the newest IDLE replica — the drain victim.
  const std::vector<BackendSample> fleet = {
      backend("b0", 0), backend("b1", 0), backend("b2", 1)};
  // Mean load 1/3 <= idle threshold: streak builds.
  EXPECT_TRUE(std::holds_alternative<Hold>(scaler.decide(sample(0, fleet))));
  const ScaleDecision decision = scaler.decide(sample(100, fleet));
  ASSERT_TRUE(std::holds_alternative<DrainReplica>(decision));
  EXPECT_EQ(std::get<DrainReplica>(decision).backend, "b1");
  EXPECT_EQ(std::get<DrainReplica>(decision).index, 1u);
}

TEST(Autoscaler, DrainingReplicasDoNotCountTowardBoundsOrPressure) {
  AutoscalerOptions options = tuned();
  options.max_replicas = 2;
  Autoscaler scaler(options);
  // Two active + one draining: still below max (draining slot is on its way
  // out), and the draining backend's load is ignored.
  const std::vector<BackendSample> fleet = {
      backend("b0", 8), backend("b1", 8, 0, BackendState::kDraining)};
  scaler.decide(sample(0, fleet));
  scaler.decide(sample(100, fleet));
  const ScaleDecision decision = scaler.decide(sample(200, fleet));
  EXPECT_TRUE(std::holds_alternative<ScaleUp>(decision));
}

// --- cost policy ------------------------------------------------------------

TEST(ScalePolicy, RankingIsDeterministic) {
  PolicyOptions options;
  const auto a = rank_candidates(options, 1e8, 0.050);
  const auto b = rank_candidates(options, 1e8, 0.050);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name);
    EXPECT_EQ(a[i].score, b[i].score);
    EXPECT_EQ(a[i].on_frontier, b[i].on_frontier);
  }
}

TEST(ScalePolicy, RentableCatalogExcludesLocalMachines) {
  for (const MachineSpec& spec : rentable_catalog()) {
    EXPECT_GT(spec.cost_per_hour, 0.0) << spec.name;
  }
  EXPECT_FALSE(rentable_catalog().empty());
}

TEST(ScalePolicy, CostPolicyRanksByThroughputPerDollar) {
  PolicyOptions options;
  options.policy = ScalePolicy::kCost;
  const auto ranked = rank_candidates(options, 1e8, 0.050);
  ASSERT_GE(ranked.size(), 2u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].score, ranked[i].score);
    EXPECT_NEAR(ranked[i].score,
                ranked[i].throughput_ops / ranked[i].usd_per_hour, 1e-9);
  }
}

TEST(ScalePolicy, LatencyPolicyRanksByPredictedThroughput) {
  PolicyOptions options;
  options.policy = ScalePolicy::kLatency;
  const auto ranked = rank_candidates(options, 1e8, 0.050);
  ASSERT_GE(ranked.size(), 2u);
  // Latency score is raw throughput: predicted p99 must be non-decreasing
  // down the ranking.
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].predicted_p99_s, ranked[i].predicted_p99_s);
  }
}

TEST(ScalePolicy, FrontierMembersAreNotDominated) {
  PolicyOptions options;
  const auto ranked = rank_candidates(options, 1e8, 0.050);
  std::size_t on_frontier = 0;
  for (const ScaleCandidate& a : ranked) {
    if (!a.on_frontier) continue;
    ++on_frontier;
    for (const ScaleCandidate& b : ranked) {
      // No candidate may offer >= throughput at <= cost (one strict).
      const bool dominates_a =
          b.throughput_ops >= a.throughput_ops && b.usd_per_hour <= a.usd_per_hour &&
          (b.throughput_ops > a.throughput_ops || b.usd_per_hour < a.usd_per_hour);
      EXPECT_FALSE(dominates_a) << b.spec.name << " dominates " << a.spec.name;
    }
  }
  EXPECT_GE(on_frontier, 1u);
}

TEST(ScalePolicy, ParetoJsonIsDeterministicAndPopulated) {
  PolicyOptions options;
  const auto ranked = rank_candidates(options, 1e8, 0.050);
  const std::string a = pareto_json(options, ranked);
  const std::string b = pareto_json(options, ranked);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"frontier\":[{"), std::string::npos);
  EXPECT_NE(a.find("\"policy\":\"cost\""), std::string::npos);
}

TEST(ScalePolicy, NameRoundTrip) {
  EXPECT_EQ(scale_policy_from_name("cost"), ScalePolicy::kCost);
  EXPECT_EQ(scale_policy_from_name("latency"), ScalePolicy::kLatency);
  EXPECT_THROW(scale_policy_from_name("speed"), std::invalid_argument);
}

// --- status / metrics -------------------------------------------------------

TEST(Autoscaler, StatusJsonIsDeterministicAcrossInstances) {
  Autoscaler a(tuned());
  Autoscaler b(tuned());
  for (std::uint64_t t = 0; t < 4; ++t) {
    const FleetSample s = sample(t * 100, {backend("b0", 8)});
    a.decide(s);
    b.decide(s);
  }
  EXPECT_EQ(a.status_json(), b.status_json());
  EXPECT_NE(a.status_json().find("\"pareto\":{"), std::string::npos);
}

TEST(Autoscaler, CountersAndGaugesLandInTheRegistry) {
  Registry metrics;
  Autoscaler scaler(tuned(), &metrics);
  for (std::uint64_t t = 0; t < 3; ++t) {
    scaler.decide(sample(t * 100, {backend("b0", 8)}));
  }
  EXPECT_EQ(metrics.counter("autoscale.samples"), 3u);
  EXPECT_EQ(metrics.counter("autoscale.scale_ups"), 1u);
  EXPECT_EQ(metrics.gauge("autoscale.replicas"), 1.0);
  EXPECT_EQ(metrics.gauge("autoscale.pressure"), 8.0);
}

// --- fleet sampling ---------------------------------------------------------

class NullBackend : public Backend {
 public:
  explicit NullBackend(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string) override {
    std::promise<std::string> promise;
    promise.set_value("{}");
    return promise.get_future();
  }

 private:
  std::string name_;
};

TEST(FleetSampling, SampleReflectsInflightQueueDepthAndVirtualClock) {
  auto clock = std::make_shared<std::uint64_t>(1'234);
  FleetOptions options;
  options.clock_ms = [clock] { return *clock; };
  FleetRegistry fleet(options);
  fleet.add(std::make_shared<NullBackend>("b0"));
  fleet.add(std::make_shared<NullBackend>("b1"));
  fleet.begin_attempt(0);
  fleet.begin_attempt(0);
  fleet.defer(1, 100, /*queue_depth=*/7);
  Registry metrics;
  metrics.observe("router.route", 0.030);

  const FleetSample s = sample_fleet(fleet, metrics);
  EXPECT_EQ(s.now_ms, 1'234u);
  ASSERT_EQ(s.backends.size(), 2u);
  EXPECT_EQ(s.backends[0].name, "b0");
  EXPECT_EQ(s.backends[0].inflight, 2u);
  EXPECT_EQ(s.backends[1].queue_depth, 7u);
  EXPECT_GT(s.p99_route_s, 0.0);

  fleet.end_attempt(0);
  EXPECT_EQ(sample_fleet(fleet, metrics).backends[0].inflight, 1u);
}

// --- drain-then-rejoin key re-homing ---------------------------------------

TEST(DrainRejoin, OnlyTheDrainedReplicasKeysReHome) {
  // Rendezvous property the drain/rejoin cycle relies on: removing b2 from
  // the eligible set re-homes exactly the keys b2 owned, and rejoining
  // restores the original placement bit-for-bit.
  const std::vector<std::string> names = {"b0", "b1", "b2"};
  const std::vector<double> weights = {1.0, 1.0, 1.0};

  std::size_t rehomed = 0;
  std::size_t owned_by_b2 = 0;
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const auto before = rank_backends(key, names, weights);
    // Draining b2 = b2 ineligible: traffic lands on the next-ranked backend.
    const std::size_t with_b2 = before[0];
    const std::size_t without_b2 = before[0] != 2 ? before[0] : before[1];
    if (with_b2 == 2) {
      ++owned_by_b2;
      EXPECT_NE(without_b2, 2u);
      ++rehomed;
    } else {
      EXPECT_EQ(with_b2, without_b2) << key;  // everyone else keeps their home
    }
    // Rejoin: the full ranking is a pure function of (key, names, weights).
    const auto after = rank_backends(key, names, weights);
    EXPECT_EQ(before, after);
  }
  EXPECT_GT(owned_by_b2, 0u);
  EXPECT_EQ(rehomed, owned_by_b2);
}

}  // namespace
}  // namespace pglb
