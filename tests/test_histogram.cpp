#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace pglb {
namespace {

TEST(ExactHistogram, CountsAndTotals) {
  ExactHistogram h;
  h.add(3);
  h.add(3);
  h.add(5, 4);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.count_of(3), 2u);
  EXPECT_EQ(h.count_of(5), 4u);
  EXPECT_EQ(h.count_of(4), 0u);
  EXPECT_EQ(h.count_of(99), 0u);
  EXPECT_EQ(h.max_value(), 5u);
}

TEST(ExactHistogram, Probability) {
  ExactHistogram h;
  h.add(1, 3);
  h.add(2, 1);
  EXPECT_DOUBLE_EQ(h.probability(1), 0.75);
  EXPECT_DOUBLE_EQ(h.probability(2), 0.25);
  EXPECT_DOUBLE_EQ(ExactHistogram{}.probability(1), 0.0);
}

TEST(LogBin, PreservesTotalCount) {
  ExactHistogram h;
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) h.add(1 + rng.next_below(500));
  std::uint64_t binned = 0;
  for (const LogBin& b : log_bin(h)) binned += b.count;
  EXPECT_EQ(binned, h.total());
}

TEST(LogBin, EmptyHistogramYieldsNoBins) {
  EXPECT_TRUE(log_bin(ExactHistogram{}).empty());
}

TEST(LogBin, BinCentersIncrease) {
  ExactHistogram h;
  for (std::uint64_t d = 1; d <= 1000; ++d) h.add(d);
  const auto bins = log_bin(h);
  ASSERT_GT(bins.size(), 4u);
  for (std::size_t i = 1; i < bins.size(); ++i) {
    EXPECT_GT(bins[i].bin_center, bins[i - 1].bin_center);
  }
}

TEST(FitPowerlawExponent, RecoversSyntheticExponent) {
  // Build an exact d^-2.2 histogram and check the fitted slope.
  const double alpha = 2.2;
  ExactHistogram h;
  for (std::uint64_t d = 1; d <= 10'000; ++d) {
    const auto count =
        static_cast<std::uint64_t>(1e9 * std::pow(static_cast<double>(d), -alpha));
    if (count > 0) h.add(d, count);
  }
  // Log-binning over truncated integer ranges biases the slope slightly
  // upward; the fit is a diagnostic, not the Eq. 7 estimator.
  const double fitted = fit_powerlaw_exponent(log_bin(h));
  EXPECT_NEAR(fitted, alpha, 0.25);
}

TEST(FitPowerlawExponent, TooFewBinsReturnsZero) {
  ExactHistogram h;
  h.add(1, 10);
  EXPECT_DOUBLE_EQ(fit_powerlaw_exponent(log_bin(h)), 0.0);
}

TEST(AsciiLogLog, ProducesPlotForData) {
  ExactHistogram h;
  for (std::uint64_t d = 1; d <= 100; ++d) h.add(d, 1000 / d);
  const auto bins = log_bin(h);
  const std::string plot = ascii_loglog(bins);
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("log(degree)"), std::string::npos);
}

TEST(AsciiLogLog, EmptyInputsGiveEmptyString) {
  EXPECT_TRUE(ascii_loglog({}).empty());
}

}  // namespace
}  // namespace pglb
