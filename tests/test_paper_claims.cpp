// The reproduction's contract, end to end: every row of EXPERIMENTS.md's
// verdict table as an executable assertion at tiny scale.  These tests run
// the real pipeline (generation -> profiling -> partitioning -> execution),
// not the analytic model directly (test_calibration.cpp covers that layer).

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "gen/watts_strogatz.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

constexpr AppKind kPaperApps[] = {AppKind::kPageRank, AppKind::kColoring,
                                  AppKind::kConnectedComponents,
                                  AppKind::kTriangleCount};

struct PipelineFixture : public ::testing::Test {
  static void SetUpTestSuite() {
    cluster = new Cluster(pglb::testing::case2_cluster());
    suite = new ProxySuite(kScale, 100);
    pool = new CcrPool(profile_cluster(*cluster, *suite, kPaperApps));
  }
  static void TearDownTestSuite() {
    delete pool;
    delete suite;
    delete cluster;
    pool = nullptr;
    suite = nullptr;
    cluster = nullptr;
  }

  static Cluster* cluster;
  static ProxySuite* suite;
  static CcrPool* pool;
};

Cluster* PipelineFixture::cluster = nullptr;
ProxySuite* PipelineFixture::suite = nullptr;
CcrPool* PipelineFixture::pool = nullptr;

TEST_F(PipelineFixture, Claim1_ProxiesPredictCapabilityWithinTenPercent) {
  // Sec. V-A: <10% CCR error on power-law inputs, for every app.
  for (const AppKind app : kPaperApps) {
    const auto graph = make_corpus_graph(corpus_entry("citation"), kScale);
    const auto prepared = prepare_graph_for(app, graph);
    const auto oracle_times = profile_groups_on_graph(*cluster, app, graph, kScale);
    const double oracle_ccr = oracle_times[0] / oracle_times[1];
    const double proxy_ccr = pool->ccr_for(app, 2.1)[1];
    EXPECT_LT(relative_error(proxy_ccr, oracle_ccr), 0.10) << to_string(app);
    (void)prepared;
  }
}

TEST_F(PipelineFixture, Claim2_ThreadCountingMissesBadly) {
  // The 1:5 thread ratio vs profiled ~1:3.2: > 25% error for every app.
  const double thread_ratio =
      static_cast<double>(cluster->machine(1).compute_threads) /
      cluster->machine(0).compute_threads;
  for (const AppKind app : kPaperApps) {
    const double proxy_ccr = pool->ccr_for(app, 2.1)[1];
    EXPECT_GT(relative_error(thread_ratio, proxy_ccr), 0.25) << to_string(app);
  }
}

TEST_F(PipelineFixture, Claim3_CcrBeatsUniformForEveryPaperApp) {
  const ProxyCcrEstimator ccr(*pool);
  const UniformEstimator uniform;
  FlowOptions options;
  options.scale = kScale;
  const auto graph = make_corpus_graph(corpus_entry("wiki"), kScale);
  for (const AppKind app : kPaperApps) {
    const auto guided = run_flow(graph, app, *cluster, ccr, options);
    const auto plain = run_flow(graph, app, *cluster, uniform, options);
    EXPECT_LT(guided.app.report.makespan_seconds, plain.app.report.makespan_seconds)
        << to_string(app);
    EXPECT_LE(guided.app.report.total_joules, plain.app.report.total_joules * 1.02)
        << to_string(app);
    // Correctness invariant: identical results under either policy.
    EXPECT_DOUBLE_EQ(guided.app.digest, plain.app.digest) << to_string(app);
  }
}

TEST_F(PipelineFixture, Claim4_AsyncColoringBenefitsLeast) {
  // Sec. V-B1: Coloring's async execution caps the balancing win.
  const ProxyCcrEstimator ccr(*pool);
  const UniformEstimator uniform;
  FlowOptions options;
  options.scale = kScale;
  const auto graph = make_corpus_graph(corpus_entry("citation"), kScale);

  auto speedup_of = [&](AppKind app) {
    const auto guided = run_flow(graph, app, *cluster, ccr, options);
    const auto plain = run_flow(graph, app, *cluster, uniform, options);
    return plain.app.report.makespan_seconds / guided.app.report.makespan_seconds;
  };
  // Coloring still gains (async removes barriers but the total-work bound
  // remains), just not dramatically more than the sync propagation apps.
  EXPECT_LT(speedup_of(AppKind::kColoring), speedup_of(AppKind::kPageRank) * 1.10);
}

TEST_F(PipelineFixture, Claim5_ProxyCoverageLimitedToPowerLaws) {
  // Sec. III-A2's caveat as a negative control: on a near-uniform-degree
  // small-world graph, TC's power-law-proxy CCR misses the oracle by more
  // than it does on the power-law corpus.
  WattsStrogatzConfig config;
  config.num_vertices = 15'000;
  config.neighbors = 5;
  config.seed = 7;
  const auto small_world = generate_watts_strogatz(config);
  const auto powerlaw = make_corpus_graph(corpus_entry("citation"), kScale);

  // Coloring's capability gap is the most skew-driven of the propagation
  // apps, so the distribution mismatch shows up cleanly.
  const AppKind app = AppKind::kColoring;
  const double proxy_ccr = pool->ccr_for(app, 2.1)[1];

  const auto sw_times = profile_groups_on_graph(*cluster, app, small_world, kScale);
  const auto pl_times = profile_groups_on_graph(*cluster, app, powerlaw, kScale);
  const double sw_error = relative_error(proxy_ccr, sw_times[0] / sw_times[1]);
  const double pl_error = relative_error(proxy_ccr, pl_times[0] / pl_times[1]);
  EXPECT_GT(sw_error, pl_error);
}

TEST_F(PipelineFixture, Claim6_DeratingWidensCcrExceptForTc) {
  // Sec. V-B3 end to end: re-profile the Case 3 cluster and compare.
  const auto case3 = pglb::testing::case3_cluster();
  ProxySuite suite3(kScale, 100);
  const auto pool3 = profile_cluster(case3, suite3, kPaperApps);
  for (const AppKind app : {AppKind::kPageRank, AppKind::kColoring,
                            AppKind::kConnectedComponents}) {
    EXPECT_GT(pool3.ccr_for(app, 2.1)[1], pool->ccr_for(app, 2.1)[1] * 1.25)
        << to_string(app);
  }
  // TC tracks the clock only: its CCR grows far less.
  EXPECT_LT(pool3.ccr_for(AppKind::kTriangleCount, 2.1)[1],
            pool->ccr_for(AppKind::kTriangleCount, 2.1)[1] * 1.6);
}

TEST(WattsStrogatz, GeneratorBasics) {
  WattsStrogatzConfig config;
  config.num_vertices = 1000;
  config.neighbors = 4;
  const auto g = generate_watts_strogatz(config);
  EXPECT_EQ(g.num_edges(), 4000u);
  const auto stats = compute_stats(g);
  EXPECT_DOUBLE_EQ(stats.mean_out_degree, 4.0);
  EXPECT_LT(stats.degree_skew, 2.0);  // near-uniform degrees: tiny skew
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);

  config.neighbors = 0;
  EXPECT_THROW(generate_watts_strogatz(config), std::invalid_argument);
  config.neighbors = 4;
  config.rewire_probability = 2.0;
  EXPECT_THROW(generate_watts_strogatz(config), std::invalid_argument);
}

}  // namespace
}  // namespace pglb
