#include "apps/pagerank.hpp"

#include <gtest/gtest.h>

#include "apps/reference.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

WorkloadTraits traits_of(const EdgeList& g) {
  return traits_from_stats(compute_stats(g), 1.0);
}

DistributedGraph partition_with(const EdgeList& g, PartitionerKind kind,
                                MachineId machines) {
  const auto p = make_partitioner(kind);
  const auto a = p->partition(g, std::vector<double>(machines, 1.0), 77);
  return build_distributed(g, a);
}

TEST(PageRank, MatchesReferenceOnCycle) {
  const auto g = testing::cycle_graph(10);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_pagerank(g, dg, cluster, traits_of(g));
  // On a cycle every vertex is symmetric: rank = 1/n.
  for (const double r : out.ranks) EXPECT_NEAR(r, 0.1, 1e-12);
}

TEST(PageRank, RanksSumToOneWithoutSinks) {
  const auto g = testing::cycle_graph(500);
  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_pagerank(g, dg, cluster, traits_of(g));
  double total = 0.0;
  for (const double r : out.ranks) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

class PageRankPartitionInvariance
    : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(PageRankPartitionInvariance, DistributedMatchesReference) {
  // Synchronous BSP semantics: the answer must not depend on partitioning.
  PowerLawConfig config;
  config.num_vertices = 3000;
  config.alpha = 2.1;
  config.seed = 9;
  const auto g = generate_powerlaw(config);

  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, GetParam(), cluster.size());
  PageRankOptions options;
  options.max_iterations = 7;
  const auto out = run_pagerank(g, dg, cluster, traits_of(g), options);
  const auto expected = pagerank_reference(g, options.damping, options.max_iterations);

  ASSERT_EQ(out.ranks.size(), expected.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(out.ranks[v], expected[v], 1e-9) << "vertex " << v;
  }
  EXPECT_EQ(out.report.supersteps, options.max_iterations);
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, PageRankPartitionInvariance,
                         ::testing::Values(PartitionerKind::kRandomHash,
                                           PartitionerKind::kOblivious,
                                           PartitionerKind::kHybrid,
                                           PartitionerKind::kGinger));

TEST(PageRank, ToleranceStopsEarly) {
  const auto g = testing::cycle_graph(100);  // converges instantly (uniform)
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  PageRankOptions options;
  options.max_iterations = 50;
  options.tolerance = 1e-12;
  const auto out = run_pagerank(g, dg, cluster, traits_of(g), options);
  EXPECT_TRUE(out.report.converged);
  EXPECT_LT(out.report.supersteps, 5);
}

TEST(PageRank, HubGetsHighestRank) {
  // Star pointing INTO vertex 0.
  EdgeList g(50);
  for (VertexId v = 1; v < 50; ++v) g.add(v, 0);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_pagerank(g, dg, cluster, traits_of(g));
  for (VertexId v = 1; v < 50; ++v) EXPECT_GT(out.ranks[0], out.ranks[v]);
}

TEST(PageRank, ReportHasPositiveTimeAndEnergy) {
  PowerLawConfig config;
  config.num_vertices = 2000;
  config.alpha = 2.1;
  const auto g = generate_powerlaw(config);
  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_pagerank(g, dg, cluster, traits_of(g));
  EXPECT_GT(out.report.makespan_seconds, 0.0);
  EXPECT_GT(out.report.total_joules, 0.0);
  EXPECT_GT(out.report.total_ops, static_cast<double>(g.num_edges()));
  ASSERT_EQ(out.report.per_machine.size(), 2u);
}

TEST(PageRank, MismatchedClusterRejected) {
  const auto g = testing::cycle_graph(10);
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, 2);
  const auto solo = testing::solo_cluster("c4.xlarge");
  EXPECT_THROW(run_pagerank(g, dg, solo, traits_of(g)), std::invalid_argument);
}

}  // namespace
}  // namespace pglb
