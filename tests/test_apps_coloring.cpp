#include "apps/coloring.hpp"

#include <gtest/gtest.h>

#include "apps/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/powerlaw.hpp"
#include "graph/builder.hpp"
#include "partition/factory.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

WorkloadTraits traits_of(const EdgeList& g) {
  return traits_from_stats(compute_stats(g), 1.0);
}

DistributedGraph partition_with(const EdgeList& g, PartitionerKind kind,
                                MachineId machines) {
  const auto p = make_partitioner(kind);
  const auto a = p->partition(g, std::vector<double>(machines, 1.0), 29);
  return build_distributed(g, a);
}

TEST(Coloring, ProperOnCompleteGraph) {
  const auto g = testing::complete_graph(6);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_coloring(g, dg, cluster, traits_of(g));
  EXPECT_TRUE(is_proper_coloring(g, out.colors));
  EXPECT_EQ(out.num_colors, 6u);  // K6 needs exactly 6 colours
  EXPECT_TRUE(out.report.converged);
}

TEST(Coloring, TwoColorsSufficeOnEvenCycle) {
  const auto g = testing::cycle_graph(40);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_coloring(g, dg, cluster, traits_of(g));
  EXPECT_TRUE(is_proper_coloring(g, out.colors));
  // Greedy JP may use 3 on a cycle, never more (max degree 2 + 1).
  EXPECT_LE(out.num_colors, 3u);
  EXPECT_GE(out.num_colors, 2u);
}

class ColoringPartitionSweep : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(ColoringPartitionSweep, AlwaysProperAndBounded) {
  PowerLawConfig config;
  config.num_vertices = 3000;
  config.alpha = 2.0;
  config.seed = 31;
  const auto g = generate_powerlaw(config);
  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, GetParam(), cluster.size());
  const auto out = run_coloring(g, dg, cluster, traits_of(g));

  EXPECT_TRUE(is_proper_coloring(g, out.colors));
  const auto adj = build_undirected_csr(g);
  EXPECT_LE(out.num_colors, adj.max_degree() + 1);  // greedy bound
  EXPECT_TRUE(out.report.converged);
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, ColoringPartitionSweep,
                         ::testing::Values(PartitionerKind::kRandomHash,
                                           PartitionerKind::kOblivious,
                                           PartitionerKind::kHybrid,
                                           PartitionerKind::kGinger));

TEST(Coloring, PrioritySeedChangesColoringNotProperness) {
  ErdosRenyiConfig config;
  config.num_vertices = 500;
  config.num_edges = 3000;
  const auto g = generate_erdos_renyi(config);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto a = run_coloring(g, dg, cluster, traits_of(g), 1);
  const auto b = run_coloring(g, dg, cluster, traits_of(g), 2);
  EXPECT_TRUE(is_proper_coloring(g, a.colors));
  EXPECT_TRUE(is_proper_coloring(g, b.colors));
  EXPECT_NE(a.colors, b.colors);
}

TEST(Coloring, IsolatedVerticesGetColorZero) {
  EdgeList g(4);
  g.add(0, 1);
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_coloring(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.colors[2], 0u);
  EXPECT_EQ(out.colors[3], 0u);
}

TEST(Coloring, RunsAsynchronously) {
  // The report reflects the async schedule: busy times may differ across
  // machines but idle appears only at the final join.
  PowerLawConfig config;
  config.num_vertices = 2000;
  config.alpha = 2.1;
  const auto g = generate_powerlaw(config);
  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_coloring(g, dg, cluster, traits_of(g));

  double max_total = 0.0;
  for (const auto& m : out.report.per_machine) {
    max_total = std::max(max_total, m.compute_seconds + m.comm_seconds);
  }
  EXPECT_NEAR(out.report.makespan_seconds, max_total, max_total * 1e-9);
}

}  // namespace
}  // namespace pglb
