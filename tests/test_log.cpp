#include "util/log.hpp"

#include <gtest/gtest.h>

namespace pglb {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_threshold()) {}
  ~LogLevelGuard() { set_log_threshold(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, ThresholdRoundTrips) {
  LogLevelGuard guard;
  set_log_threshold(LogLevel::kWarn);
  EXPECT_EQ(log_threshold(), LogLevel::kWarn);
  set_log_threshold(LogLevel::kDebug);
  EXPECT_EQ(log_threshold(), LogLevel::kDebug);
}

TEST(Log, BelowThresholdDoesNotFormat) {
  // log_at must not evaluate the stream when filtered; we detect evaluation
  // through a side effect.
  LogLevelGuard guard;
  set_log_threshold(LogLevel::kError);
  int evaluations = 0;
  auto side_effect = [&]() {
    ++evaluations;
    return "x";
  };
  log_at(LogLevel::kDebug, side_effect());
  // Arguments ARE evaluated (standard function call), but the stream body is
  // skipped; what we can assert portably is that the call is safe and cheap.
  EXPECT_EQ(evaluations, 1);
  log_at(LogLevel::kError, "emitted at error level");
}

TEST(Log, MacrosCompileAndRun) {
  LogLevelGuard guard;
  set_log_threshold(LogLevel::kOff);
  PGLB_LOG_DEBUG("debug ", 1);
  PGLB_LOG_INFO("info ", 2.5);
  PGLB_LOG_WARN("warn ", "text");
  PGLB_LOG_ERROR("error ", 'c');
  SUCCEED();
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_threshold(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  PGLB_LOG_ERROR("should not appear");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(Log, EmitsTagAndMessage) {
  LogLevelGuard guard;
  set_log_threshold(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  PGLB_LOG_WARN("disk almost full: ", 93, "%");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("disk almost full: 93%"), std::string::npos);
}

}  // namespace
}  // namespace pglb
