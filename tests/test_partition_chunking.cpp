#include "partition/chunking.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "partition/metrics.hpp"
#include "partition/weights.hpp"

namespace pglb {
namespace {

EdgeList sample_graph() {
  PowerLawConfig config;
  config.num_vertices = 10'000;
  config.alpha = 2.1;
  config.seed = 81;
  return generate_powerlaw(config);
}

TEST(Chunking, RangesAreContiguous) {
  const auto g = sample_graph();
  const auto a = ChunkingPartitioner{}.partition(g, uniform_weights(4), 1);
  for (EdgeId i = 1; i < a.edge_to_machine.size(); ++i) {
    EXPECT_LE(a.edge_to_machine[i - 1], a.edge_to_machine[i]) << "non-contiguous at " << i;
  }
}

TEST(Chunking, WeightExactByConstruction) {
  const auto g = sample_graph();
  const std::vector<double> weights = {1.0, 3.5};
  const auto a = ChunkingPartitioner{}.partition(g, weights, 1);
  const auto metrics = compute_partition_metrics(g, a, shares_from_capabilities(weights));
  EXPECT_LT(metrics.weighted_imbalance, 1.001);  // exact up to rounding
}

TEST(Chunking, SeedHasNoEffect) {
  const auto g = sample_graph();
  const auto a = ChunkingPartitioner{}.partition(g, uniform_weights(3), 1);
  const auto b = ChunkingPartitioner{}.partition(g, uniform_weights(3), 999);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
}

TEST(Chunking, EveryMachineGetsItsRange) {
  const auto g = sample_graph();
  const auto a = ChunkingPartitioner{}.partition(g, uniform_weights(8), 1);
  const auto counts = a.machine_edge_counts();
  for (const EdgeId c : counts) EXPECT_GT(c, 0u);
}

TEST(Chunking, RegisteredAsExtensionNotPaperKind) {
  EXPECT_EQ(all_partitioner_kinds().size(), 5u);
  EXPECT_EQ(extended_partitioner_kinds().size(), 7u);
  EXPECT_EQ(partitioner_from_string("chunking"), PartitionerKind::kChunking);
  EXPECT_EQ(make_partitioner(PartitionerKind::kChunking)->name(), "chunking");
}

TEST(Chunking, HigherReplicationThanGreedyOnHashedStreams) {
  // On generator-ordered streams, contiguous ranges carry no vertex locality:
  // the greedy Oblivious pass must replicate less.
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto chunked = ChunkingPartitioner{}.partition(g, weights, 1);
  const auto greedy =
      make_partitioner(PartitionerKind::kOblivious)->partition(g, weights, 1);
  EXPECT_GT(compute_partition_metrics(g, chunked, weights).replication_factor,
            compute_partition_metrics(g, greedy, weights).replication_factor);
}

}  // namespace
}  // namespace pglb
