#include "core/comm_aware.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "gen/corpus.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

struct Harness {
  Cluster cluster = testing::case2_cluster();
  EdgeList graph = make_corpus_graph(corpus_entry("wiki"), kScale);
  GraphStats stats;
  WorkloadTraits traits;
  ExactHistogram hist;
  std::vector<double> capabilities = {1.0, 3.2};

  Harness() {
    stats = compute_stats(graph);
    traits = traits_from_stats(stats, kScale);
    hist = total_degree_histogram(graph);
  }
};

TEST(CommAware, SharesAreNormalizedAndOrdered) {
  Harness h;
  const auto result =
      comm_aware_shares(h.cluster, profile_for(AppKind::kConnectedComponents), h.traits,
                        h.hist, h.graph.num_edges(), h.capabilities);
  ASSERT_EQ(result.shares.size(), 2u);
  EXPECT_NEAR(std::accumulate(result.shares.begin(), result.shares.end(), 0.0), 1.0, 1e-9);
  EXPECT_GT(result.shares[1], result.shares[0]);  // fast machine keeps the lead
}

TEST(CommAware, NeverWorseThanPlainCcrUnderItsOwnPredictor) {
  Harness h;
  for (const AppKind app : {AppKind::kPageRank, AppKind::kConnectedComponents,
                            AppKind::kTriangleCount}) {
    const auto result = comm_aware_shares(h.cluster, profile_for(app), h.traits, h.hist,
                                          h.graph.num_edges(), h.capabilities);
    EXPECT_LE(result.predicted_seconds, result.plain_ccr_predicted_seconds + 1e-12)
        << to_string(app);
  }
}

TEST(CommAware, CommHeavyAppSkewsBeyondCcr) {
  // Triangle Count ships the largest mirror messages; the optimiser should
  // concentrate more than capability-proportional to cut replication.
  Harness h;
  const auto result = comm_aware_shares(h.cluster, profile_for(AppKind::kTriangleCount),
                                        h.traits, h.hist, h.graph.num_edges(),
                                        h.capabilities);
  EXPECT_GE(result.theta, 1.0);
}

TEST(CommAware, PredictorMatchesHandComputation) {
  Harness h;
  const AppProfile& app = profile_for(AppKind::kPageRank);
  const std::vector<double> shares = {0.25, 0.75};
  const double predicted = predict_superstep_seconds(h.cluster, app, h.traits, h.hist,
                                                     h.graph.num_edges(), shares);
  // Manual: straggler compute + shared exchange.
  double worst = 0.0;
  for (MachineId m = 0; m < 2; ++m) {
    const double ops = shares[m] * static_cast<double>(h.graph.num_edges()) *
                       h.traits.work_scale;
    worst = std::max(worst, ops / throughput_ops(h.cluster.machine(m), app, h.traits));
  }
  const auto mirrors = expected_mirrors_per_machine(h.hist, shares);
  const double bytes =
      2.0 * app.bytes_per_mirror * (mirrors[0] + mirrors[1]) * h.traits.work_scale;
  EXPECT_NEAR(predicted, worst + h.cluster.network().exchange_seconds(bytes), 1e-12);
}

TEST(CommAware, RejectsMalformedInputs) {
  Harness h;
  const std::vector<double> wrong_size = {1.0};
  EXPECT_THROW(comm_aware_shares(h.cluster, profile_for(AppKind::kPageRank), h.traits,
                                 h.hist, h.graph.num_edges(), wrong_size),
               std::invalid_argument);
  CommAwareOptions bad;
  bad.grid_points = 1;
  EXPECT_THROW(comm_aware_shares(h.cluster, profile_for(AppKind::kPageRank), h.traits,
                                 h.hist, h.graph.num_edges(), h.capabilities, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace pglb
