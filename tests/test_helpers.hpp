#pragma once
// Shared fixtures/builders for the pglb test suite.

#include <vector>

#include "cluster/cluster.hpp"
#include "graph/edge_list.hpp"
#include "machine/catalog.hpp"

namespace pglb::testing {

/// Directed path 0 -> 1 -> ... -> n-1.
inline EdgeList path_graph(VertexId n) {
  EdgeList g(n);
  for (VertexId v = 0; v + 1 < n; ++v) g.add(v, v + 1);
  return g;
}

/// Directed cycle over n vertices.
inline EdgeList cycle_graph(VertexId n) {
  EdgeList g(n);
  for (VertexId v = 0; v < n; ++v) g.add(v, (v + 1) % n);
  return g;
}

/// Star: hub 0 -> spokes 1..n-1.
inline EdgeList star_graph(VertexId n) {
  EdgeList g(n);
  for (VertexId v = 1; v < n; ++v) g.add(0, v);
  return g;
}

/// Complete directed graph on n vertices (u != v, both directions).
inline EdgeList complete_graph(VertexId n) {
  EdgeList g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = 0; v < n; ++v) {
      if (u != v) g.add(u, v);
    }
  }
  return g;
}

/// Single triangle 0-1-2 (directed one way).
inline EdgeList triangle_graph() {
  EdgeList g(3);
  g.add(0, 1);
  g.add(1, 2);
  g.add(2, 0);
  return g;
}

/// Two disjoint triangles {0,1,2} and {3,4,5}.
inline EdgeList two_triangles() {
  EdgeList g(6);
  g.add(0, 1);
  g.add(1, 2);
  g.add(2, 0);
  g.add(3, 4);
  g.add(4, 5);
  g.add(5, 3);
  return g;
}

/// The paper's Case 1 cluster: m4.2xlarge + c4.2xlarge.
inline Cluster case1_cluster() {
  return Cluster({machine_by_name("m4.2xlarge"), machine_by_name("c4.2xlarge")});
}

/// The paper's Case 2 cluster: local Xeon S + L, same frequency.
inline Cluster case2_cluster() {
  return Cluster({machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l")});
}

/// The paper's Case 3 cluster: Xeon S derated to 1.8 GHz + Xeon L.
inline Cluster case3_cluster() {
  return Cluster({with_frequency(machine_by_name("xeon_server_s"), 1.8),
                  machine_by_name("xeon_server_l")});
}

/// A single-machine cluster (profiling runs).
inline Cluster solo_cluster(const std::string& name) {
  return Cluster({machine_by_name(name)});
}

}  // namespace pglb::testing
