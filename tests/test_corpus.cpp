#include "gen/corpus.hpp"

#include <gtest/gtest.h>

#include "gen/alpha_solver.hpp"
#include "graph/stats.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

TEST(Corpus, TableTwoRowsArePresent) {
  EXPECT_EQ(natural_graph_entries().size(), 4u);
  EXPECT_EQ(synthetic_graph_entries().size(), 3u);
  EXPECT_EQ(corpus_entry("amazon").paper_edges, 3'387'388u);
  EXPECT_EQ(corpus_entry("social_network").paper_vertices, 4'847'571u);
  EXPECT_DOUBLE_EQ(corpus_entry("synthetic_two").paper_alpha, 2.1);
  EXPECT_THROW(corpus_entry("orkut"), std::out_of_range);
}

TEST(Corpus, ScaledNaturalGraphMatchesTargets) {
  const double scale = 1.0 / 64.0;
  const auto& entry = corpus_entry("amazon");
  const auto g = make_corpus_graph(entry, scale);
  EXPECT_NEAR(static_cast<double>(g.num_vertices()),
              static_cast<double>(entry.paper_vertices) * scale, 2.0);
  EXPECT_NEAR(static_cast<double>(g.num_edges()),
              static_cast<double>(entry.paper_edges) * scale, 2.0);
}

TEST(Corpus, MeanDegreePreservedAcrossScales) {
  const auto& entry = corpus_entry("wiki");
  const double paper_mean = static_cast<double>(entry.paper_edges) /
                            static_cast<double>(entry.paper_vertices);
  for (const double scale : {1.0 / 128.0, 1.0 / 32.0}) {
    const auto stats = compute_stats(make_corpus_graph(entry, scale));
    EXPECT_LT(relative_error(stats.mean_out_degree, paper_mean), 0.05)
        << "scale=" << scale;
  }
}

TEST(Corpus, SyntheticProxiesUseTableAlpha) {
  const auto& entry = corpus_entry("synthetic_three");
  const auto g = make_corpus_graph(entry, 1.0 / 64.0);
  // Mean degree should match the truncated power-law moment for alpha = 2.3
  // at the scaled support.
  const double expected_mean =
      powerlaw_mean_degree(2.3, g.num_vertices() - 1);
  const auto stats = compute_stats(g);
  EXPECT_LT(relative_error(stats.mean_out_degree, expected_mean), 0.15);
}

TEST(Corpus, SyntheticDensityOrderingMatchesTableTwo) {
  // synthetic_one (alpha 1.95) is the densest, three (2.3) the sparsest.
  const double scale = 1.0 / 64.0;
  const auto one = make_corpus_graph(corpus_entry("synthetic_one"), scale);
  const auto two = make_corpus_graph(corpus_entry("synthetic_two"), scale);
  const auto three = make_corpus_graph(corpus_entry("synthetic_three"), scale);
  EXPECT_GT(one.num_edges(), two.num_edges());
  EXPECT_GT(two.num_edges(), three.num_edges());
}

TEST(Corpus, DeterministicPerSeed) {
  const auto& entry = corpus_entry("citation");
  const auto a = make_corpus_graph(entry, 1.0 / 128.0, 5);
  const auto b = make_corpus_graph(entry, 1.0 / 128.0, 5);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId i = 0; i < a.num_edges(); i += 97) EXPECT_EQ(a.edge(i), b.edge(i));
}

TEST(Corpus, RejectsBadScale) {
  EXPECT_THROW(make_corpus_graph(corpus_entry("amazon"), 0.0), std::invalid_argument);
  EXPECT_THROW(make_corpus_graph(corpus_entry("amazon"), 1.5), std::invalid_argument);
}

TEST(Corpus, VertexFloorKicksInAtExtremeScales) {
  const auto g = make_corpus_graph(corpus_entry("amazon"), 1e-4);
  EXPECT_GE(g.num_vertices(), 1000u);
}

}  // namespace
}  // namespace pglb
