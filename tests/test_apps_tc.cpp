#include "apps/triangle_count.hpp"

#include <gtest/gtest.h>

#include "apps/reference.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

WorkloadTraits traits_of(const EdgeList& g) {
  return traits_from_stats(compute_stats(g), 1.0);
}

DistributedGraph partition_with(const EdgeList& g, PartitionerKind kind,
                                MachineId machines) {
  const auto p = make_partitioner(kind);
  const auto a = p->partition(g, std::vector<double>(machines, 1.0), 37);
  return build_distributed(g, a);
}

TEST(CanonicalUndirected, DedupsAndOrients) {
  EdgeList g(4);
  g.add(1, 0);
  g.add(0, 1);  // same undirected edge
  g.add(2, 2);  // loop
  g.add(3, 2);
  const auto canon = canonical_undirected(g);
  ASSERT_EQ(canon.num_edges(), 2u);
  EXPECT_EQ(canon.edge(0), (Edge{0, 1}));
  EXPECT_EQ(canon.edge(1), (Edge{2, 3}));
}

TEST(TriangleCount, RejectsNonCanonicalInput) {
  EdgeList g(3);
  g.add(2, 0);  // src > dst
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  EXPECT_THROW(run_triangle_count(g, dg, cluster, traits_of(g)), std::invalid_argument);
}

TEST(TriangleCount, SingleTriangle) {
  const auto g = canonical_undirected(testing::triangle_graph());
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_triangle_count(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.total_triangles, 1u);
  EXPECT_EQ(out.per_vertex[0], 1u);
  EXPECT_EQ(out.per_vertex[1], 1u);
  EXPECT_EQ(out.per_vertex[2], 1u);
}

TEST(TriangleCount, CompleteGraphFormula) {
  // K_n has C(n,3) triangles; each vertex sits in C(n-1,2).
  const auto g = canonical_undirected(testing::complete_graph(7));
  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_triangle_count(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.total_triangles, 35u);  // C(7,3)
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(out.per_vertex[v], 15u);  // C(6,2)
}

TEST(TriangleCount, StarHasNoTriangles) {
  const auto g = canonical_undirected(testing::star_graph(20));
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_triangle_count(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.total_triangles, 0u);
}

class TcPartitionInvariance : public ::testing::TestWithParam<PartitionerKind> {};

TEST_P(TcPartitionInvariance, MatchesReferenceExactly) {
  PowerLawConfig config;
  config.num_vertices = 2000;
  config.alpha = 2.0;
  config.seed = 41;
  const auto raw = generate_powerlaw(config);
  const auto g = canonical_undirected(raw);

  const auto cluster = testing::case2_cluster();
  const auto dg = partition_with(g, GetParam(), cluster.size());
  const auto out = run_triangle_count(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.total_triangles, triangle_count_reference(raw));
}

INSTANTIATE_TEST_SUITE_P(AllPartitioners, TcPartitionInvariance,
                         ::testing::Values(PartitionerKind::kRandomHash,
                                           PartitionerKind::kOblivious,
                                           PartitionerKind::kHybrid,
                                           PartitionerKind::kGinger));

TEST(TriangleCount, PerVertexSumsToThreeTimesTotal) {
  ErdosRenyiConfig config;
  config.num_vertices = 300;
  config.num_edges = 3000;
  const auto g = canonical_undirected(generate_erdos_renyi(config));
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_triangle_count(g, dg, cluster, traits_of(g));

  std::uint64_t per_vertex_sum = 0;
  for (const std::uint64_t t : out.per_vertex) per_vertex_sum += t;
  EXPECT_EQ(per_vertex_sum, 3 * out.total_triangles);
  EXPECT_GT(out.total_triangles, 0u);
}

TEST(TriangleCount, SingleSuperstep) {
  const auto g = canonical_undirected(testing::complete_graph(5));
  const auto cluster = testing::case1_cluster();
  const auto dg = partition_with(g, PartitionerKind::kRandomHash, cluster.size());
  const auto out = run_triangle_count(g, dg, cluster, traits_of(g));
  EXPECT_EQ(out.report.supersteps, 1);
  EXPECT_GT(out.report.total_ops, 0.0);
}

}  // namespace
}  // namespace pglb
