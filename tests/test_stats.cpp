#include "graph/stats.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

TEST(Stats, EmptyGraph) {
  const auto s = compute_stats(EdgeList{});
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_edges, 0u);
}

TEST(Stats, StarGraphShape) {
  const auto g = testing::star_graph(11);  // hub with out-degree 10
  const auto s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 11u);
  EXPECT_EQ(s.num_edges, 10u);
  EXPECT_EQ(s.max_out_degree, 10u);
  EXPECT_NEAR(s.mean_out_degree, 10.0 / 11.0, 1e-12);
  EXPECT_NEAR(s.degree_skew, 10.0 / (10.0 / 11.0), 1e-9);
  EXPECT_NEAR(s.sink_fraction, 10.0 / 11.0, 1e-12);  // all spokes are sinks
  EXPECT_EQ(s.max_total_degree, 10u);
}

TEST(Stats, CycleGraphIsUnskewed) {
  const auto s = compute_stats(testing::cycle_graph(20));
  EXPECT_DOUBLE_EQ(s.mean_out_degree, 1.0);
  EXPECT_EQ(s.max_out_degree, 1u);
  EXPECT_DOUBLE_EQ(s.degree_skew, 1.0);
  EXPECT_DOUBLE_EQ(s.sink_fraction, 0.0);
}

TEST(Stats, FootprintMatchesIoEstimate) {
  const auto g = testing::complete_graph(12);
  const auto s = compute_stats(g);
  EXPECT_GT(s.footprint_bytes, 0u);
  // Every edge line is at least 4 bytes ("a\tb\n").
  EXPECT_GE(s.footprint_bytes, 4 * g.num_edges());
}

TEST(Stats, PowerLawGraphAlphaIsRecoveredApproximately) {
  PowerLawConfig config;
  config.num_vertices = 60'000;
  config.alpha = 2.1;
  config.seed = 5;
  const auto g = generate_powerlaw(config);
  const auto s = compute_stats(g);
  // The log-log tail fit is crude; accept a generous band around the truth.
  EXPECT_GT(s.empirical_alpha, 1.6);
  EXPECT_LT(s.empirical_alpha, 2.7);
}

TEST(Stats, DegreeHistogramTotalsVertices) {
  const auto g = testing::star_graph(8);
  const auto h = out_degree_histogram(g);
  EXPECT_EQ(h.total(), 8u);
  EXPECT_EQ(h.count_of(7), 1u);  // the hub
  EXPECT_EQ(h.count_of(0), 7u);  // the spokes
}

TEST(Stats, SkewOrderingAcrossGraphFamilies) {
  PowerLawConfig pl;
  pl.num_vertices = 20'000;
  pl.alpha = 2.0;
  const auto skewed = compute_stats(generate_powerlaw(pl));
  const auto flat = compute_stats(testing::cycle_graph(20'000));
  EXPECT_GT(skewed.degree_skew, 10.0 * flat.degree_skew);
}

}  // namespace
}  // namespace pglb
