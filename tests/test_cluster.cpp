#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace pglb {
namespace {

TEST(Cluster, RejectsEmptyAndBrokenMachines) {
  EXPECT_THROW(Cluster(std::vector<MachineSpec>{}), std::invalid_argument);
  MachineSpec broken = machine_by_name("c4.xlarge");
  broken.compute_threads = 0;
  EXPECT_THROW(Cluster({broken}), std::invalid_argument);
}

TEST(Cluster, TotalComputeThreads) {
  const auto cluster = testing::case2_cluster();  // 2 + 10
  EXPECT_EQ(cluster.total_compute_threads(), 12);
}

TEST(Cluster, SquareDetection) {
  const auto& m = machine_by_name("c4.xlarge");
  EXPECT_TRUE(Cluster({m}).is_square());
  EXPECT_FALSE(Cluster({m, m}).is_square());
  EXPECT_FALSE(Cluster({m, m, m}).is_square());
  EXPECT_TRUE(Cluster({m, m, m, m}).is_square());
}

TEST(Cluster, LabelJoinsNames) {
  EXPECT_EQ(testing::case1_cluster().label(), "m4.2xlarge+c4.2xlarge");
}

TEST(Cluster, FromNamesLooksUpCatalog) {
  const std::vector<std::string> names = {"c4.xlarge", "c4.8xlarge"};
  const auto cluster = cluster_from_names(names);
  ASSERT_EQ(cluster.size(), 2u);
  EXPECT_EQ(cluster.machine(1).name, "c4.8xlarge");
  const std::vector<std::string> bad = {"h100.monster"};
  EXPECT_THROW(cluster_from_names(bad), std::out_of_range);
}

TEST(NetworkModel, ExchangeTimeHasBandwidthAndLatencyTerms) {
  NetworkModel net;
  net.bandwidth_bytes_per_s = 1e9;
  net.superstep_latency_s = 1e-3;
  EXPECT_DOUBLE_EQ(net.exchange_seconds(0.0), 0.0);  // no mirrors, no exchange
  EXPECT_DOUBLE_EQ(net.exchange_seconds(1e9), 1.0 + 1e-3);
  EXPECT_GT(net.exchange_seconds(2e9), net.exchange_seconds(1e9));
}

TEST(Cluster, MachineAccessorBoundsChecked) {
  const auto cluster = testing::case1_cluster();
  EXPECT_NO_THROW(cluster.machine(1));
  EXPECT_THROW(cluster.machine(2), std::out_of_range);
}

}  // namespace
}  // namespace pglb
