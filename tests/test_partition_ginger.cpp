#include "partition/ginger.hpp"

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/hybrid.hpp"
#include "partition/metrics.hpp"
#include "partition/weights.hpp"

namespace pglb {
namespace {

EdgeList sample_graph() {
  PowerLawConfig config;
  config.num_vertices = 15'000;
  config.alpha = 2.0;
  config.seed = 51;
  return generate_powerlaw(config);
}

TEST(Ginger, AssignsEveryEdge) {
  const auto g = sample_graph();
  const auto a = GingerPartitioner().partition(g, uniform_weights(4), 1);
  ASSERT_EQ(a.edge_to_machine.size(), g.num_edges());
  for (const MachineId m : a.edge_to_machine) EXPECT_LT(m, 4u);
}

TEST(Ginger, LowDegreeInEdgesStayColocated) {
  // Ginger moves low-degree groups as units; the colocated property of the
  // first pass must survive the reassignment round.
  const auto g = sample_graph();
  GingerOptions options;
  const auto a = GingerPartitioner(options).partition(g, uniform_weights(4), 1);

  const auto in_degree = g.in_degrees();
  std::vector<MachineId> home(g.num_vertices(), kInvalidMachine);
  EdgeId index = 0;
  for (const Edge& e : g.edges()) {
    const MachineId m = a.edge_to_machine[index++];
    if (in_degree[e.dst] > options.high_degree_threshold) continue;
    if (home[e.dst] == kInvalidMachine) {
      home[e.dst] = m;
    } else {
      EXPECT_EQ(home[e.dst], m);
    }
  }
}

TEST(Ginger, ImprovesReplicationOverHybrid) {
  // The Fennel locality score exists to cut mirrors below plain Hybrid
  // (Sec. II-C1: "minimal replication in the second round").
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  const auto hybrid = HybridPartitioner().partition(g, weights, 1);
  const auto ginger = GingerPartitioner().partition(g, weights, 1);
  EXPECT_LE(compute_partition_metrics(g, ginger, weights).replication_factor,
            compute_partition_metrics(g, hybrid, weights).replication_factor * 1.02);
}

TEST(Ginger, HeterogeneityFactorShiftsLoad) {
  // Sec. II-C1: 1/CCR_p in the balance function makes fast machines score
  // better and absorb more of the graph.
  const auto g = sample_graph();
  const std::vector<double> weights = {1.0, 3.5};
  const auto a = GingerPartitioner().partition(g, weights, 1);
  const auto counts = a.machine_edge_counts();
  const double share1 =
      static_cast<double>(counts[1]) / static_cast<double>(g.num_edges());
  EXPECT_GT(share1, 0.62);  // clearly above the uniform 0.5
  EXPECT_LT(share1, 0.92);  // but not a total collapse onto one machine
}

TEST(Ginger, BalanceGuardBoundsImbalanceForAnyGamma) {
  // The hard balance guard (not gamma alone) keeps the weighted imbalance
  // bounded, even when the Fennel penalty is turned almost off.
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  for (const double gamma : {0.05, 1.5, 8.0}) {
    GingerOptions options;
    options.gamma = gamma;
    const auto a = GingerPartitioner(options).partition(g, weights, 1);
    const auto m = compute_partition_metrics(g, a, weights);
    EXPECT_LT(m.weighted_imbalance, 1.35) << "gamma=" << gamma;
  }
}

TEST(Ginger, Deterministic) {
  const auto g = sample_graph();
  const auto a = GingerPartitioner().partition(g, uniform_weights(3), 4);
  const auto b = GingerPartitioner().partition(g, uniform_weights(3), 4);
  EXPECT_EQ(a.edge_to_machine, b.edge_to_machine);
}

}  // namespace
}  // namespace pglb
