#include "core/time_database.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <filesystem>
#include <fstream>
#include <string>

#include "test_helpers.hpp"

namespace pglb {
namespace {

TimeDatabase sample_db() {
  TimeDatabase db;
  db.record({AppKind::kPageRank, 2.1, "xeon_server_s"}, 10.0);
  db.record({AppKind::kPageRank, 2.1, "xeon_server_l"}, 2.5);
  db.record({AppKind::kPageRank, 1.95, "xeon_server_s"}, 20.0);
  db.record({AppKind::kPageRank, 1.95, "xeon_server_l"}, 4.0);
  return db;
}

TEST(TimeDatabase, RecordAndLookup) {
  const auto db = sample_db();
  EXPECT_EQ(db.size(), 4u);
  EXPECT_DOUBLE_EQ(*db.lookup({AppKind::kPageRank, 2.1, "xeon_server_s"}), 10.0);
  EXPECT_FALSE(db.lookup({AppKind::kColoring, 2.1, "xeon_server_s"}).has_value());
}

TEST(TimeDatabase, RecordOverwrites) {
  TimeDatabase db;
  db.record({AppKind::kPageRank, 2.1, "m"}, 1.0);
  db.record({AppKind::kPageRank, 2.1, "m"}, 2.0);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(*db.lookup({AppKind::kPageRank, 2.1, "m"}), 2.0);
}

TEST(TimeDatabase, RejectsNonPositiveTimes) {
  TimeDatabase db;
  EXPECT_THROW(db.record({AppKind::kPageRank, 2.1, "m"}, 0.0), std::invalid_argument);
  EXPECT_THROW(db.record({AppKind::kPageRank, 2.1, "m"}, -1.0), std::invalid_argument);
}

TEST(TimeDatabase, AlphasForAppSortedUnique) {
  const auto db = sample_db();
  EXPECT_EQ(db.alphas_for(AppKind::kPageRank), (std::vector<double>{1.95, 2.1}));
  EXPECT_TRUE(db.alphas_for(AppKind::kColoring).empty());
}

TEST(TimeDatabase, CcrDerivedForAnyComposition) {
  const auto db = sample_db();
  // Composition 1: one of each.
  const auto two = testing::case2_cluster();
  const auto ccr2 = db.ccr_for(two, AppKind::kPageRank, 2.1);
  EXPECT_DOUBLE_EQ(ccr2[0], 1.0);
  EXPECT_DOUBLE_EQ(ccr2[1], 4.0);
  // Composition 2: S + L + L — no re-profiling, CCR still derivable.
  const Cluster three({machine_by_name("xeon_server_s"), machine_by_name("xeon_server_l"),
                       machine_by_name("xeon_server_l")});
  const auto ccr3 = db.ccr_for(three, AppKind::kPageRank, 2.1);
  EXPECT_EQ(ccr3, (std::vector<double>{1.0, 4.0, 4.0}));
}

TEST(TimeDatabase, NearestAlphaSelected) {
  const auto db = sample_db();
  const auto cluster = testing::case2_cluster();
  // 1.9 is closer to the 1.95 entries (CCR 5.0) than to 2.1 (CCR 4.0).
  const auto ccr = db.ccr_for(cluster, AppKind::kPageRank, 1.9);
  EXPECT_DOUBLE_EQ(ccr[1], 5.0);
}

TEST(TimeDatabase, MissingMachineThrows) {
  const auto db = sample_db();
  const auto cluster = testing::case1_cluster();  // m4/c4: never profiled
  EXPECT_THROW(db.ccr_for(cluster, AppKind::kPageRank, 2.1), std::out_of_range);
  EXPECT_THROW(db.ccr_for(testing::case2_cluster(), AppKind::kColoring, 2.1),
               std::out_of_range);
}

TEST(TimeDatabase, MissingMachinesListsOnlyUnknownTypes) {
  const auto db = sample_db();
  const Cluster mixed({machine_by_name("xeon_server_s"), machine_by_name("c4.xlarge"),
                       machine_by_name("c4.xlarge")});
  const auto missing = db.missing_machines(mixed, AppKind::kPageRank, 2.1);
  ASSERT_EQ(missing.size(), 1u);  // c4.xlarge once, despite two instances
  EXPECT_EQ(missing[0].name, "c4.xlarge");
}

TEST(TimeDatabase, SaveLoadRoundTrip) {
  const auto db = sample_db();
  const auto path =
      (std::filesystem::temp_directory_path() / "pglb_pool_test.tsv").string();
  save_time_database(db, path);
  const auto loaded = load_time_database(path);
  EXPECT_EQ(loaded.size(), db.size());
  EXPECT_DOUBLE_EQ(*loaded.lookup({AppKind::kPageRank, 1.95, "xeon_server_l"}), 4.0);
  std::filesystem::remove(path);
}

TEST(TimeDatabase, SaveLoadIsLocaleIndependent) {
  // Regression: the TSV writer/reader used iostream formatting, so under a
  // comma-decimal locale the file was written (and re-parsed) with ','
  // decimal points, breaking interchange with C-locale processes.
  const std::string previous = std::setlocale(LC_NUMERIC, nullptr);
  bool available = false;
  for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      available = true;
      break;
    }
  }
  if (!available) GTEST_SKIP() << "no comma-decimal locale installed";

  const auto db = sample_db();
  const auto path =
      (std::filesystem::temp_directory_path() / "pglb_pool_locale.tsv").string();
  save_time_database(db, path);
  const auto loaded = load_time_database(path);
  std::filesystem::remove(path);
  std::setlocale(LC_NUMERIC, previous.c_str());

  EXPECT_EQ(loaded.size(), db.size());
  EXPECT_DOUBLE_EQ(*loaded.lookup({AppKind::kPageRank, 2.1, "xeon_server_s"}), 10.0);
  EXPECT_DOUBLE_EQ(*loaded.lookup({AppKind::kPageRank, 1.95, "xeon_server_l"}), 4.0);
}

TEST(TimeDatabase, SavedFileUsesDotDecimalPoints) {
  const auto db = sample_db();
  const auto path =
      (std::filesystem::temp_directory_path() / "pglb_pool_dots.tsv").string();
  save_time_database(db, path);
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::filesystem::remove(path);
  EXPECT_EQ(content.find(','), std::string::npos);
  EXPECT_NE(content.find("1.95"), std::string::npos);
}

TEST(TimeDatabase, WritesV2HeaderAndStillLoadsV1Files) {
  // v2 flags the switch from precision(17) iostream numbers to shortest
  // round-trip form; v1 files written by older builds must keep loading.
  const auto dir = std::filesystem::temp_directory_path();
  const auto v2_path = (dir / "pglb_pool_v2.tsv").string();
  save_time_database(sample_db(), v2_path);
  {
    std::ifstream in(v2_path);
    std::string header;
    std::getline(in, header);
    EXPECT_EQ(header, "# pglb-ccr-pool v2");
  }
  std::filesystem::remove(v2_path);

  const auto v1_path = (dir / "pglb_pool_v1.tsv").string();
  {
    std::ofstream out(v1_path);
    out << "# pglb-ccr-pool v1\n"
        << "pagerank\t2.1000000000000001\txeon_server_s\t10\n";
  }
  const auto loaded = load_time_database(v1_path);
  std::filesystem::remove(v1_path);
  EXPECT_DOUBLE_EQ(*loaded.lookup({AppKind::kPageRank, 2.1, "xeon_server_s"}), 10.0);
}

TEST(TimeDatabase, LoadRejectsCorruptFiles) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto bad_header = (dir / "pglb_pool_bad1.tsv").string();
  {
    std::ofstream out(bad_header);
    out << "not a pool file\n";
  }
  EXPECT_THROW(load_time_database(bad_header), std::runtime_error);
  std::filesystem::remove(bad_header);

  const auto bad_row = (dir / "pglb_pool_bad2.tsv").string();
  {
    std::ofstream out(bad_row);
    out << "# pglb-ccr-pool v1\npagerank\tnot_a_number\tm\t1.0\n";
  }
  EXPECT_THROW(load_time_database(bad_row), std::runtime_error);
  std::filesystem::remove(bad_row);

  EXPECT_THROW(load_time_database("/no/such/file.tsv"), std::runtime_error);
}

}  // namespace
}  // namespace pglb
