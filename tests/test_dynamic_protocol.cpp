// Protocol hardening for `delta` requests (docs/DYNAMIC.md): schema
// negatives with exact typed errors, serialize/parse round trips, the delta
// response block, and a seeded fuzz storm against an in-process PlanServer —
// malformed, truncated, and byte-flipped lines must always earn one typed
// response line and never crash the server or desync a live base.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "dynamic/mutation.hpp"
#include "gen/powerlaw.hpp"
#include "service/planner.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace pglb {
namespace {

using dynamic::LiveGraph;
using dynamic::Mutation;
using dynamic::generate_mutation_batch;

void expect_parse_error(const std::string& line, const std::string& needle) {
  try {
    parse_plan_request(line);
    FAIL() << "expected ProtocolError for: " << line;
  } catch (const ProtocolError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error '" << e.what() << "' lacks '" << needle << "' for: " << line;
  }
}

TEST(DeltaProtocol, DeltaFieldsAreRejectedOnOtherRequestTypes) {
  const std::string needle = "only valid on delta requests";
  expect_parse_error(
      R"({"type":"plan","id":"x","app":"pagerank","machines":["m4.2xlarge"],"alpha":2.1,"base":"g"})",
      needle);
  expect_parse_error(
      R"({"type":"plan","id":"x","app":"pagerank","machines":["m4.2xlarge"],"alpha":2.1,"mutations":[]})",
      needle);
  expect_parse_error(R"({"type":"metrics","id":"x","reprofile":"force"})", needle);
  expect_parse_error(R"({"type":"metrics","id":"x","drift_churn":0.1})", needle);
  expect_parse_error(R"({"type":"metrics","id":"x","seed":7})", needle);
}

TEST(DeltaProtocol, DeltaSchemaNegatives) {
  // base and mutations are mandatory; alpha/vertices/edges are derived.
  expect_parse_error(R"({"type":"delta","id":"x","mutations":[]})",
                     "non-empty 'base'");
  expect_parse_error(R"({"type":"delta","id":"x","base":"","mutations":[]})",
                     "non-empty 'base'");
  expect_parse_error(R"({"type":"delta","id":"x","base":"g"})",
                     "'mutations' array");
  expect_parse_error(
      R"({"type":"delta","id":"x","base":"g","mutations":[],"alpha":2.1})",
      "derive 'alpha'");
  expect_parse_error(
      R"({"type":"delta","id":"x","base":"g","mutations":[],"vertices":10})",
      "derive 'alpha'");
  // Creation fields travel together: app without machines (and vice versa).
  expect_parse_error(
      R"({"type":"delta","id":"x","base":"g","mutations":[],"app":"pagerank"})",
      "both 'app' and a non-empty 'machines'");
  expect_parse_error(
      R"({"type":"delta","id":"x","base":"g","mutations":[],"machines":["m4.2xlarge"]})",
      "both 'app' and a non-empty 'machines'");
  expect_parse_error(
      R"({"type":"delta","id":"x","base":"g","mutations":[],"reprofile":"maybe"})",
      "'reprofile' must be");
  expect_parse_error(
      R"({"type":"delta","id":"x","base":"g","mutations":[],"drift_churn":-0.5})",
      "non-negative");
  expect_parse_error(
      R"({"type":"delta","id":"x","base":"g","mutations":[],"bogus":1})",
      "unknown request field");
}

TEST(DeltaProtocol, MutationSchemaNegatives) {
  const std::string head = R"({"type":"delta","id":"x","base":"g","mutations":[)";
  expect_parse_error(head + R"(1]})", "must be objects");
  expect_parse_error(head + R"({"src":1,"dst":2}]})", "missing 'op'");
  expect_parse_error(head + R"({"op":"merge_edge","src":1,"dst":2}]})",
                     "unknown mutation op");
  // Edge ops take src+dst, vertex ops take id — never mixed.
  expect_parse_error(head + R"({"op":"add_edge","src":1}]})",
                     "requires 'src' and 'dst'");
  expect_parse_error(head + R"({"op":"add_edge","src":1,"dst":2,"id":3}]})",
                     "requires 'src' and 'dst'");
  expect_parse_error(head + R"({"op":"add_vertex","src":1}]})", "requires 'id'");
  expect_parse_error(head + R"({"op":"remove_vertex","id":1,"dst":2}]})",
                     "requires 'id'");
  expect_parse_error(head + R"({"op":"add_edge","src":-1,"dst":2}]})", "src");
  expect_parse_error(head + R"({"op":"add_edge","src":1,"dst":2,"why":0}]})",
                     "unknown mutation field");
}

TEST(DeltaProtocol, RequestRoundTripPreservesEveryField) {
  PlanRequest request;
  request.type = RequestType::kDelta;
  request.id = "rt";
  request.base = "g";
  request.app = AppKind::kColoring;
  request.machines = {"xeon_server_s", "xeon_server_l"};
  request.mutations = {Mutation::add_vertex(0), Mutation::add_vertex(9),
                       Mutation::add_edge(0, 9), Mutation::remove_edge(0, 9),
                       Mutation::remove_vertex(9)};
  request.reprofile = ReprofileMode::kNever;
  request.drift_churn = 0.25;
  request.drift_hist = 0.5;
  request.seed = 77;

  const PlanRequest parsed = parse_plan_request(serialize_request(request));
  EXPECT_EQ(parsed.type, RequestType::kDelta);
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.base, request.base);
  EXPECT_EQ(parsed.app, request.app);
  EXPECT_EQ(parsed.machines, request.machines);
  EXPECT_EQ(parsed.mutations, request.mutations);
  EXPECT_EQ(parsed.reprofile, request.reprofile);
  EXPECT_EQ(parsed.drift_churn, request.drift_churn);
  EXPECT_EQ(parsed.drift_hist, request.drift_hist);
  EXPECT_EQ(parsed.seed, request.seed);

  // Serialization is stable: a second round trip is byte-identical.
  EXPECT_EQ(serialize_request(parsed), serialize_request(request));
}

TEST(DeltaProtocol, DeltaBlockRoundTrip) {
  DeltaInfo info;
  info.base = "g";
  info.version = 12;
  info.live_vertices = 100;
  info.live_edges = 250;
  info.churn = 0.03125;
  info.hist_distance = 0.0625;
  info.reprofiled = true;
  info.digest = 0xDEADBEEFCAFEF00Dull;
  info.moved_edges = 9;
  info.replication_factor = 1.5;
  info.imbalance = 0.25;

  const std::string line = "{\"id\":\"x\",\"status\":\"ok\",\"delta\":" +
                           serialize_delta_block(info) + "}";
  const std::optional<DeltaInfo> parsed = parse_delta_block(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->base, info.base);
  EXPECT_EQ(parsed->version, info.version);
  EXPECT_EQ(parsed->live_vertices, info.live_vertices);
  EXPECT_EQ(parsed->live_edges, info.live_edges);
  EXPECT_DOUBLE_EQ(parsed->churn, info.churn);
  EXPECT_DOUBLE_EQ(parsed->hist_distance, info.hist_distance);
  EXPECT_EQ(parsed->reprofiled, info.reprofiled);
  EXPECT_EQ(parsed->digest, info.digest);  // u64 survives the hex detour
  EXPECT_EQ(parsed->moved_edges, info.moved_edges);
  EXPECT_DOUBLE_EQ(parsed->replication_factor, info.replication_factor);
  EXPECT_DOUBLE_EQ(parsed->imbalance, info.imbalance);

  // A delta-free response has no block; a malformed block throws typed.
  EXPECT_FALSE(parse_delta_block(R"({"id":"x","status":"ok"})").has_value());
  EXPECT_THROW(parse_delta_block(R"({"delta":42})"), ProtocolError);
}

// --- the fuzz storm ---------------------------------------------------------

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;
  return options;
}

/// Creation line for a deterministic power-law base.
std::string creation_line(const std::string& base, const EdgeList& graph) {
  PlanRequest request;
  request.type = RequestType::kDelta;
  request.id = "create-" + base;
  request.base = base;
  request.app = AppKind::kPageRank;
  request.machines = {"xeon_server_s", "xeon_server_l"};
  request.seed = 42;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    request.mutations.push_back(Mutation::add_vertex(v));
  }
  for (const Edge& e : graph.edges()) {
    request.mutations.push_back(Mutation::add_edge(e.src, e.dst));
  }
  return serialize_request(request);
}

TEST(DeltaProtocolFuzz, CorruptedLinesNeverCrashOrDesyncTheServer) {
  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics);

  PowerLawConfig config;
  config.num_vertices = 256;
  config.seed = 17;
  const EdgeList graph = generate_powerlaw(config);

  // One clean base the storm must not perturb, mirrored client-side.
  const std::string clean_create = creation_line("clean", graph);
  LiveGraph mirror;
  mirror.apply(parse_plan_request(clean_create).mutations);
  {
    const PlanResponse created =
        parse_plan_response(server.submit(clean_create).get());
    ASSERT_TRUE(created.ok) << created.error;
  }

  // The corpus the corruptor mangles: valid lines of every request type
  // (the fuzz bases are named so no corruption can collide with "clean").
  const std::vector<std::string> corpus = {
      creation_line("fz0", graph),
      R"({"type":"delta","id":"u","base":"fz0","mutations":[{"op":"add_edge","src":1,"dst":2}]})",
      R"({"type":"delta","id":"u","base":"fz0","mutations":[],"reprofile":"force"})",
      R"({"type":"plan","id":"p","app":"pagerank","machines":["xeon_server_s"],"alpha":2.1})",
      R"({"type":"metrics","id":"m"})",
  };

  std::mt19937 rng(0xF00Du);
  std::size_t typed_errors = 0;
  for (int round = 0; round < 200; ++round) {
    std::string line = corpus[rng() % corpus.size()];
    switch (rng() % 4) {
      case 0:  // truncate
        line.resize(rng() % line.size());
        break;
      case 1:  // flip one byte to printable garbage
        line[rng() % line.size()] = static_cast<char>('!' + rng() % 94);
        break;
      case 2:  // splice two prefixes together
        line = line.substr(0, rng() % line.size()) +
               corpus[rng() % corpus.size()].substr(rng() % 20);
        break;
      default:  // structural garbage around a valid line
        line = "[" + line + "]";
        break;
    }
    const std::string response_line = server.submit(std::move(line)).get();
    ASSERT_FALSE(response_line.empty());
    PlanResponse response;
    ASSERT_NO_THROW(response = parse_plan_response(response_line))
        << response_line;
    if (!response.ok) ++typed_errors;
  }
  // The overwhelming majority of corruptions must land as typed errors (a
  // rare flip can leave a line valid; that is fine, it's still typed output).
  EXPECT_GT(typed_errors, 150u);

  // Semantic garbage through a pristine parser: typed errors, no state.
  const std::vector<std::string> semantic = {
      // unknown base, no creation fields
      R"({"type":"delta","id":"s0","base":"ghost","mutations":[]})",
      // contradictory batch on the clean base: remove of a non-live edge
      R"({"type":"delta","id":"s1","base":"clean","mutations":[{"op":"remove_edge","src":4000000,"dst":4000001}]})",
      // double-remove of a single live edge
      R"({"type":"delta","id":"s2","base":"clean","mutations":[{"op":"add_edge","src":1,"dst":2},{"op":"remove_edge","src":1,"dst":2},{"op":"remove_edge","src":1,"dst":2}]})",
      // re-adding a live vertex
      R"({"type":"delta","id":"s3","base":"clean","mutations":[{"op":"add_vertex","id":0}]})",
      // offline-iterative partitioner
      R"({"type":"delta","id":"s4","base":"gin","app":"pagerank","machines":["xeon_server_s"],"partitioner":"ginger","mutations":[{"op":"add_vertex","id":0},{"op":"add_vertex","id":1},{"op":"add_edge","src":0,"dst":1}]})",
  };
  for (const std::string& line : semantic) {
    const PlanResponse response = parse_plan_response(server.submit(line).get());
    EXPECT_FALSE(response.ok) << line;
    EXPECT_FALSE(response.error.empty()) << line;
  }

  // After the storm the clean base still streams: mirrored batches apply with
  // matching live state, so nothing the fuzzer sent leaked into it.
  for (std::uint64_t b = 0; b < 3; ++b) {
    PlanRequest update;
    update.type = RequestType::kDelta;
    update.id = "post-" + std::to_string(b);
    update.base = "clean";
    update.mutations = generate_mutation_batch(mirror, 99, b, 8);
    mirror.apply(update.mutations);
    const std::string response_line =
        server.submit(serialize_request(update)).get();
    const PlanResponse response = parse_plan_response(response_line);
    ASSERT_TRUE(response.ok) << response.error;
    const std::optional<DeltaInfo> info = parse_delta_block(response_line);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->live_edges, mirror.live_edge_count());
    EXPECT_EQ(info->live_vertices, mirror.live_vertex_count());
  }
}

}  // namespace
}  // namespace pglb
