// Whole-pipeline determinism: DESIGN.md promises that a full run — generator
// through profiler through partitioner through engine — is bit-reproducible
// for a fixed seed.  These tests run the complete stack twice and compare
// exact outputs.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/profiler.hpp"
#include "gen/corpus.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

struct PipelineRun {
  double makespan = 0.0;
  double joules = 0.0;
  double digest = 0.0;
  double rf = 0.0;
  std::vector<double> weights;
  std::vector<double> ccr;
};

PipelineRun run_pipeline(std::uint64_t seed) {
  const auto cluster = testing::case2_cluster();
  ProxySuite suite(kScale, seed + 100);
  const AppKind apps[] = {AppKind::kConnectedComponents};
  const auto pool = profile_cluster(cluster, suite, apps);
  const ProxyCcrEstimator estimator(pool);

  const auto graph = make_corpus_graph(corpus_entry("citation"), kScale, seed);
  FlowOptions options;
  options.scale = kScale;
  options.seed = seed;
  options.partitioner = PartitionerKind::kGinger;
  const auto result =
      run_flow(graph, AppKind::kConnectedComponents, cluster, estimator, options);

  PipelineRun run;
  run.makespan = result.app.report.makespan_seconds;
  run.joules = result.app.report.total_joules;
  run.digest = result.app.digest;
  run.rf = result.replication_factor;
  run.weights = result.weights;
  run.ccr = pool.ccr_for(AppKind::kConnectedComponents, 2.1);
  return run;
}

TEST(IntegrationDeterminism, IdenticalSeedsBitIdenticalResults) {
  const auto a = run_pipeline(7);
  const auto b = run_pipeline(7);
  EXPECT_EQ(a.makespan, b.makespan);  // exact, not approximate
  EXPECT_EQ(a.joules, b.joules);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.rf, b.rf);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.ccr, b.ccr);
}

TEST(IntegrationDeterminism, DifferentSeedsDifferentGraphsSameConclusions) {
  const auto a = run_pipeline(7);
  const auto b = run_pipeline(8);
  // Different corpus instantiation -> different numbers...
  EXPECT_NE(a.makespan, b.makespan);
  // ...but the profiled CCR conclusion is a property of the machines, not
  // the seed: both runs must hand the fast machine the larger share.
  EXPECT_GT(a.weights[1], a.weights[0]);
  EXPECT_GT(b.weights[1], b.weights[0]);
  EXPECT_NEAR(a.ccr[1], b.ccr[1], a.ccr[1] * 0.05);
}

TEST(IntegrationDeterminism, ScaleChangesMagnitudeNotStructure) {
  // Virtual times re-inflate with work_scale: two scales of the same corpus
  // entry must agree on CCR (Sec. II-A: size is a trivial factor) and on
  // which policy wins.
  const auto cluster = testing::case2_cluster();
  std::vector<double> ccrs;
  for (const double scale : {1.0 / 512.0, 1.0 / 128.0}) {
    ProxySuite suite(scale, 100);
    const AppKind apps[] = {AppKind::kPageRank};
    const auto pool = profile_cluster(cluster, suite, apps);
    ccrs.push_back(pool.ccr_for(AppKind::kPageRank, 2.1)[1]);
  }
  EXPECT_NEAR(ccrs[0], ccrs[1], ccrs[0] * 0.03);
}

}  // namespace
}  // namespace pglb
