#include "core/estimators.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/ccr.hpp"
#include "gen/corpus.hpp"
#include "test_helpers.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

constexpr double kScale = 1.0 / 256.0;

EdgeList corpus_graph(const char* name) {
  return make_corpus_graph(corpus_entry(name), kScale);
}

void expect_normalized(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (const double w : weights) EXPECT_GT(w, 0.0);
}

TEST(UniformEstimator, EqualShares) {
  const auto cluster = testing::case1_cluster();
  const auto g = corpus_graph("amazon");
  const auto w = UniformEstimator{}.weights(cluster, AppKind::kPageRank, g, compute_stats(g));
  expect_normalized(w);
  EXPECT_DOUBLE_EQ(w[0], 0.5);
}

TEST(ThreadCountEstimator, PriorWorkShares) {
  // Case 2 cluster: 2 vs 10 compute threads -> shares 1/6 vs 5/6.
  const auto cluster = testing::case2_cluster();
  const auto g = corpus_graph("amazon");
  const auto w =
      ThreadCountEstimator{}.weights(cluster, AppKind::kPageRank, g, compute_stats(g));
  expect_normalized(w);
  EXPECT_NEAR(w[0], 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(w[1], 5.0 / 6.0, 1e-12);
}

TEST(ThreadCountEstimator, BlindToSameThreadHeterogeneity) {
  // Case 1: m4.2xlarge vs c4.2xlarge — prior work sees a homogeneous cluster.
  const auto cluster = testing::case1_cluster();
  const auto g = corpus_graph("amazon");
  const auto w =
      ThreadCountEstimator{}.weights(cluster, AppKind::kPageRank, g, compute_stats(g));
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
}

class EstimatorAccuracy : public ::testing::TestWithParam<AppKind> {};

TEST_P(EstimatorAccuracy, ProxyCcrTracksOracleWithinTenPercent) {
  // The headline claim (Sec. V-A): proxy-profiled CCRs match real-graph CCRs
  // with < 10% error, while thread counting misses badly.
  const auto cluster = testing::case1_cluster();
  ProxySuite suite(kScale);
  const AppKind apps[] = {GetParam()};
  const auto pool = profile_cluster(cluster, suite, apps);

  const auto g = corpus_graph("wiki");
  const auto stats = compute_stats(g);

  const ProxyCcrEstimator proxy(pool);
  const OracleEstimator oracle(kScale);
  const auto w_proxy = proxy.weights(cluster, GetParam(), g, stats);
  const auto w_oracle = oracle.weights(cluster, GetParam(), g, stats);
  expect_normalized(w_proxy);
  expect_normalized(w_oracle);

  // Compare as CCR ratios (fast/slow share).
  const double proxy_ratio = w_proxy[1] / w_proxy[0];
  const double oracle_ratio = w_oracle[1] / w_oracle[0];
  EXPECT_LT(relative_error(proxy_ratio, oracle_ratio), 0.10) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllApps, EstimatorAccuracy,
                         ::testing::Values(AppKind::kPageRank, AppKind::kColoring,
                                           AppKind::kConnectedComponents,
                                           AppKind::kTriangleCount));

TEST(Estimators, ThreadCountWorseThanProxyOnCase2) {
  const auto cluster = testing::case2_cluster();
  ProxySuite suite(kScale);
  const AppKind apps[] = {AppKind::kPageRank};
  const auto pool = profile_cluster(cluster, suite, apps);

  const auto g = corpus_graph("citation");
  const auto stats = compute_stats(g);

  const auto w_oracle = OracleEstimator(kScale).weights(cluster, AppKind::kPageRank, g, stats);
  const auto w_proxy = ProxyCcrEstimator(pool).weights(cluster, AppKind::kPageRank, g, stats);
  const auto w_threads =
      ThreadCountEstimator{}.weights(cluster, AppKind::kPageRank, g, stats);

  const double oracle_ratio = w_oracle[1] / w_oracle[0];
  const double proxy_error = relative_error(w_proxy[1] / w_proxy[0], oracle_ratio);
  const double thread_error = relative_error(w_threads[1] / w_threads[0], oracle_ratio);
  EXPECT_LT(proxy_error, 0.10);
  EXPECT_GT(thread_error, 0.25);  // 5.0 vs ~3.5: the prior-work overload
  EXPECT_GT(thread_error, 2.0 * proxy_error);
}

TEST(Estimators, NamesAreStable) {
  EXPECT_EQ(UniformEstimator{}.name(), "uniform");
  EXPECT_EQ(ThreadCountEstimator{}.name(), "thread_count");
  const CcrPool pool;
  EXPECT_EQ(ProxyCcrEstimator{pool}.name(), "proxy_ccr");
  EXPECT_EQ(OracleEstimator{1.0}.name(), "oracle");
}

}  // namespace
}  // namespace pglb
