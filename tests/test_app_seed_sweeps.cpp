// Seed-sweep properties across the full app suite: for every generator seed,
// distributed results must equal the single-node references and virtual-time
// reports must stay internally consistent.  Complements the per-app suites
// with breadth over inputs.

#include <gtest/gtest.h>

#include "apps/kcore.hpp"
#include "apps/reference.hpp"
#include "apps/registry.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "partition/weights.hpp"
#include "test_helpers.hpp"

namespace pglb {
namespace {

class AppSeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  EdgeList graph() const {
    PowerLawConfig config;
    config.num_vertices = 2500;
    config.alpha = 2.1;
    config.seed = GetParam();
    return generate_powerlaw(config);
  }
};

TEST_P(AppSeedSweep, AllAppsMatchReferencesUnderGingerPartitioning) {
  const auto g = graph();
  const auto cluster = testing::case2_cluster();
  const WorkloadTraits traits = traits_from_stats(compute_stats(g), 1.0);

  for (const AppKind app : {AppKind::kConnectedComponents, AppKind::kTriangleCount,
                            AppKind::kKCore}) {
    const auto prepared = prepare_graph_for(app, g);
    const auto assignment = make_partitioner(PartitionerKind::kGinger)
                                ->partition(prepared, uniform_weights(cluster.size()),
                                            GetParam());
    const auto dg = build_distributed(prepared, assignment);
    const auto result = run_app(app, prepared, dg, cluster, traits);

    switch (app) {
      case AppKind::kConnectedComponents:
        EXPECT_DOUBLE_EQ(result.digest, static_cast<double>(count_components(
                                            connected_components_reference(g))));
        break;
      case AppKind::kTriangleCount:
        EXPECT_DOUBLE_EQ(result.digest,
                         static_cast<double>(triangle_count_reference(g)));
        break;
      case AppKind::kKCore: {
        const auto reference = kcore_reference(g);
        const auto max_core = *std::max_element(reference.begin(), reference.end());
        EXPECT_DOUBLE_EQ(result.digest, static_cast<double>(max_core));
        break;
      }
      default:
        break;
    }
  }
}

TEST_P(AppSeedSweep, ReportsAreInternallyConsistent) {
  const auto g = graph();
  const auto cluster = testing::case1_cluster();
  const WorkloadTraits traits = traits_from_stats(compute_stats(g), 1.0);
  for (const AppKind app : {AppKind::kPageRank, AppKind::kColoring, AppKind::kSssp}) {
    const auto prepared = prepare_graph_for(app, g);
    const auto assignment =
        make_partitioner(PartitionerKind::kHdrf)
            ->partition(prepared, uniform_weights(cluster.size()), GetParam());
    const auto dg = build_distributed(prepared, assignment);
    const auto result = run_app(app, prepared, dg, cluster, traits);

    EXPECT_GT(result.report.makespan_seconds, 0.0) << to_string(app);
    EXPECT_GT(result.report.total_joules, 0.0) << to_string(app);
    EXPECT_GE(result.report.supersteps, 1) << to_string(app);
    double busiest = 0.0;
    for (const MachineActivity& a : result.report.per_machine) {
      busiest = std::max(busiest, a.compute_seconds + a.comm_seconds);
    }
    // Makespan can never undercut the busiest machine.
    EXPECT_GE(result.report.makespan_seconds, busiest * (1.0 - 1e-9)) << to_string(app);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AppSeedSweep,
                         ::testing::Values(3ull, 17ull, 101ull, 977ull));

}  // namespace
}  // namespace pglb
