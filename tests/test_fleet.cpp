// Fleet subsystem (docs/FLEET.md): routing-key mirror of the planner's
// profile key, weighted rendezvous ranking, health-state bookkeeping on a
// virtual clock, and the two routing guarantees — routed plans byte-identical
// to a single backend's, and cache-affine placement beating random routing
// on aggregate hit rate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fleet/hashing.hpp"
#include "fleet/local_backend.hpp"
#include "fleet/router.hpp"
#include "service/planner.hpp"
#include "service/protocol.hpp"

namespace pglb {
namespace {

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;
  return options;
}

ServerOptions small_server() {
  ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 64;
  return options;
}

/// Small deterministic mix: 3 cluster shapes x 2 apps, all with alphas inside
/// the Table II coverage so routing keys mirror the planner exactly.
PlanRequest mix_request(std::size_t combo, std::size_t sequence) {
  static const std::vector<std::vector<std::string>> kClusters = {
      {"m4.2xlarge", "c4.2xlarge"},
      {"c4.xlarge", "c4.4xlarge"},
      {"m4.2xlarge", "c4.2xlarge", "r3.2xlarge"},
  };
  static const std::vector<AppKind> kApps = {AppKind::kPageRank,
                                             AppKind::kColoring};
  PlanRequest request;
  request.id = "fleet-" + std::to_string(sequence);
  request.machines = kClusters[combo % kClusters.size()];
  request.app = kApps[(combo / kClusters.size()) % kApps.size()];
  request.vertices = 1'000'000;
  request.edges = 10'000'000;
  return request;
}

// --- routing key ------------------------------------------------------------

TEST(FleetHashing, RoutingProxyAlphaMirrorsSuiteCoverage) {
  EXPECT_DOUBLE_EQ(routing_proxy_alpha(1.95), 1.95);
  EXPECT_DOUBLE_EQ(routing_proxy_alpha(2.0), 1.95);
  EXPECT_DOUBLE_EQ(routing_proxy_alpha(2.05), 2.1);
  EXPECT_DOUBLE_EQ(routing_proxy_alpha(2.45), 2.3);
  // Outside the +-0.25 coverage margin: the backend would generate an
  // on-demand proxy at exactly this alpha, so the key uses it verbatim.
  EXPECT_DOUBLE_EQ(routing_proxy_alpha(3.0), 3.0);
  EXPECT_DOUBLE_EQ(routing_proxy_alpha(1.2), 1.2);
}

TEST(FleetHashing, RoutingKeyMatchesPlannerProfileKey) {
  Planner planner(tiny_options());
  for (std::size_t combo = 0; combo < 6; ++combo) {
    const PlanRequest request = mix_request(combo, combo);
    EXPECT_EQ(routing_key(request), planner.profile_key(request))
        << "combo " << combo;
  }
  // Machine order and duplicates must not change the key (classes are sorted
  // and deduplicated, same as the profile cache).
  PlanRequest shuffled = mix_request(0, 99);
  shuffled.machines = {"c4.2xlarge", "m4.2xlarge", "c4.2xlarge"};
  EXPECT_EQ(routing_key(shuffled), routing_key(mix_request(0, 99)));
  EXPECT_EQ(routing_key(shuffled), planner.profile_key(shuffled));
}

// --- rendezvous ranking -----------------------------------------------------

std::vector<std::string> fleet_names(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back("b" + std::to_string(i));
  return names;
}

TEST(FleetHashing, RankBackendsIsAStablePermutation) {
  const auto names = fleet_names(5);
  const auto order = rank_backends("some|key|2.1", names);
  ASSERT_EQ(order.size(), names.size());
  EXPECT_EQ(std::set<std::size_t>(order.begin(), order.end()).size(), names.size());
  EXPECT_EQ(order, rank_backends("some|key|2.1", names));
  // A different key almost surely ranks differently; assert it does for this
  // fixed pair (both sides deterministic, so this cannot flake).
  EXPECT_NE(order, rank_backends("other|key|1.95", names));
}

TEST(FleetHashing, RemovingABackendOnlyMovesItsKeys) {
  const auto names = fleet_names(4);
  for (int k = 0; k < 200; ++k) {
    const std::string key = "key-" + std::to_string(k) + "|pagerank|2.1";
    const auto order = rank_backends(key, names);
    // Drop the winner; everyone else's relative order must be untouched
    // (scores are independent per backend), so the old runner-up wins.
    std::vector<std::string> reduced = names;
    reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(order[0]));
    const auto reduced_order = rank_backends(key, reduced);
    const std::string& new_winner = reduced[reduced_order[0]];
    EXPECT_EQ(new_winner, names[order[1]]) << key;
  }
}

TEST(FleetHashing, WeightsSkewOwnershipProportionally) {
  const auto names = fleet_names(3);
  const std::vector<double> weights = {1.0, 1.0, 3.0};
  std::map<std::size_t, int> wins;
  const int kKeys = 3000;
  for (int k = 0; k < kKeys; ++k) {
    const auto order =
        rank_backends("key-" + std::to_string(k) + "|cc|1.95", names, weights);
    ++wins[order[0]];
  }
  // Expected shares 0.2 / 0.2 / 0.6; allow generous slack, the draw is fixed.
  EXPECT_GT(wins[2], kKeys / 2);
  EXPECT_LT(wins[0], kKeys * 3 / 10);
  EXPECT_LT(wins[1], kKeys * 3 / 10);
  EXPECT_GT(wins[0], kKeys / 10);
}

// --- health registry on a virtual clock -------------------------------------

/// Backend stub for registry bookkeeping tests: never actually submits.
class NullBackend : public Backend {
 public:
  explicit NullBackend(std::string name) : name_(std::move(name)) {}
  const std::string& name() const override { return name_; }
  std::future<std::string> submit(std::string) override {
    std::promise<std::string> promise;
    promise.set_value("{}");
    return promise.get_future();
  }

 private:
  std::string name_;
};

TEST(FleetRegistryHealth, ExponentialBackoffAndRecoveryOnVirtualClock) {
  auto clock = std::make_shared<std::uint64_t>(1'000);
  FleetOptions options;
  options.base_backoff_ms = 100;
  options.max_backoff_ms = 400;
  options.clock_ms = [clock] { return *clock; };
  FleetRegistry fleet(options);
  fleet.add(std::make_shared<NullBackend>("b0"));

  EXPECT_TRUE(fleet.eligible(0));
  fleet.record_failure(0);
  EXPECT_EQ(fleet.status(0).state, BackendState::kDown);
  EXPECT_FALSE(fleet.eligible(0));
  *clock += 99;
  EXPECT_FALSE(fleet.eligible(0));
  *clock += 1;  // backoff window passed: probe-through allowed
  EXPECT_TRUE(fleet.eligible(0));
  EXPECT_TRUE(fleet.probe_due(0));

  fleet.record_failure(0);  // second consecutive failure: window doubles
  EXPECT_FALSE(fleet.eligible(0));
  *clock += 199;
  EXPECT_FALSE(fleet.eligible(0));
  *clock += 1;
  EXPECT_TRUE(fleet.eligible(0));

  fleet.record_failure(0);
  fleet.record_failure(0);
  fleet.record_failure(0);  // backoff is capped at max_backoff_ms
  *clock += 400;
  EXPECT_TRUE(fleet.eligible(0));

  fleet.record_success(0);
  EXPECT_EQ(fleet.status(0).state, BackendState::kUp);
  EXPECT_EQ(fleet.status(0).consecutive_failures, 0u);
  EXPECT_TRUE(fleet.eligible(0));
}

TEST(FleetRegistryHealth, DeferParksWithoutChangingState) {
  auto clock = std::make_shared<std::uint64_t>(0);
  FleetOptions options;
  options.clock_ms = [clock] { return *clock; };
  FleetRegistry fleet(options);
  fleet.add(std::make_shared<NullBackend>("b0"));

  fleet.defer(0, 250);  // typed "overloaded" hint: parked but still up
  EXPECT_EQ(fleet.status(0).state, BackendState::kUp);
  EXPECT_FALSE(fleet.eligible(0));
  *clock += 250;
  EXPECT_TRUE(fleet.eligible(0));
}

TEST(FleetRegistryHealth, DrainingExcludedFromRoutingButStillProbed) {
  FleetRegistry fleet;
  fleet.add(std::make_shared<NullBackend>("b0"));
  fleet.set_draining(0, true);
  EXPECT_EQ(fleet.status(0).state, BackendState::kDraining);
  EXPECT_FALSE(fleet.eligible(0));
  EXPECT_TRUE(fleet.probe_due(0));
  fleet.record_success(0);  // probe success keeps it draining (sticky)
  EXPECT_EQ(fleet.status(0).state, BackendState::kDraining);
  fleet.set_draining(0, false);
  EXPECT_EQ(fleet.status(0).state, BackendState::kUp);
  EXPECT_TRUE(fleet.eligible(0));
}

TEST(FleetRegistryHealth, StatusJsonIsDeterministic) {
  FleetRegistry fleet;
  fleet.add(std::make_shared<NullBackend>("b0"), 2.0);
  fleet.record_failure(0);
  EXPECT_EQ(fleet.status_json(),
            "[{\"name\":\"b0\",\"state\":\"down\",\"weight\":2,"
            "\"successes\":0,\"failures\":1,\"consecutive_failures\":1,"
            "\"inflight\":0,\"queue_depth\":0,"
            "\"degraded\":false,\"ewma_ms\":0}]");
}

// --- straggler detection (docs/CHAOS.md) ------------------------------------

TEST(FleetRegistryStragglers, DegradeDecaysWeightAndRecoveryRestoresIt) {
  FleetOptions options;
  options.straggler_min_samples = 4;
  FleetRegistry fleet(options);
  fleet.add(std::make_shared<NullBackend>("b0"));
  fleet.add(std::make_shared<NullBackend>("b1"));
  fleet.add(std::make_shared<NullBackend>("b2"));

  // A chronically slow replica on a degraded link: answers everything (so it
  // never goes down) at 10x its peers' latency.
  bool flipped = false;
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(fleet.record_latency(0, 10.0));
    EXPECT_FALSE(fleet.record_latency(1, 10.0));
    flipped = fleet.record_latency(2, 100.0) || flipped;
  }
  EXPECT_TRUE(flipped);  // record_latency reported the degrade transition once
  EXPECT_TRUE(fleet.status(2).degraded);
  EXPECT_FALSE(fleet.status(0).degraded);
  EXPECT_EQ(fleet.status(2).state, BackendState::kUp);  // degraded != down
  EXPECT_TRUE(fleet.eligible(2));

  // The decay is applied at membership() snapshot time, so rendezvous ranking
  // sees it while the configured weight itself is untouched.
  const FleetMembership degraded = fleet.membership();
  EXPECT_DOUBLE_EQ(degraded.weights[0], 1.0);
  EXPECT_DOUBLE_EQ(degraded.weights[2], 0.25);
  EXPECT_NE(fleet.status_json().find("\"degraded\":true"), std::string::npos);

  // The link heals: the EWMA sinks back under the recovery threshold and the
  // full weight comes back.
  for (int i = 0; i < 64 && fleet.status(2).degraded; ++i) {
    fleet.record_latency(0, 10.0);
    fleet.record_latency(1, 10.0);
    fleet.record_latency(2, 10.0);
  }
  EXPECT_FALSE(fleet.status(2).degraded);
  EXPECT_DOUBLE_EQ(fleet.membership().weights[2], 1.0);
}

TEST(FleetRegistryStragglers, JudgmentsWaitForSamplesAndRespectHysteresis) {
  FleetOptions options;
  options.straggler_min_samples = 8;
  FleetRegistry fleet(options);
  fleet.add(std::make_shared<NullBackend>("b0"));
  fleet.add(std::make_shared<NullBackend>("b1"));
  fleet.add(std::make_shared<NullBackend>("b2"));

  // Seven samples each: under the floor, no judgment no matter the ratio.
  for (int i = 0; i < 7; ++i) {
    fleet.record_latency(0, 10.0);
    fleet.record_latency(1, 10.0);
    EXPECT_FALSE(fleet.record_latency(2, 1000.0));
  }
  EXPECT_FALSE(fleet.status(2).degraded);
  fleet.record_latency(0, 10.0);
  fleet.record_latency(1, 10.0);
  EXPECT_TRUE(fleet.record_latency(2, 1000.0));  // the 8th sample may judge

  // Hysteresis: a backend sitting at 3x the peer median — between the 2x
  // recovery and 4x degrade thresholds — is left alone in BOTH directions.
  FleetOptions steady_options;
  steady_options.straggler_min_samples = 4;
  FleetRegistry steady(steady_options);
  steady.add(std::make_shared<NullBackend>("s0"));
  steady.add(std::make_shared<NullBackend>("s1"));
  steady.add(std::make_shared<NullBackend>("s2"));
  for (int i = 0; i < 16; ++i) {
    steady.record_latency(0, 10.0);
    steady.record_latency(1, 10.0);
    EXPECT_FALSE(steady.record_latency(2, 30.0));
  }
  EXPECT_FALSE(steady.status(2).degraded);
  EXPECT_DOUBLE_EQ(steady.membership().weights[2], 1.0);
}

// --- routing guarantees -----------------------------------------------------

TEST(FleetRouter, RoutedPlanBytesMatchSingleBackend) {
  // Reference: one solo replica answers everything.
  LocalBackend solo("solo", tiny_options(), small_server());
  // Fleet: three independent replicas behind the router.
  RouterOptions options;
  options.probe_interval_ms = 0;
  Router router(options, nullptr);
  for (int k = 0; k < 3; ++k) {
    router.add_backend(std::make_shared<LocalBackend>(
        "b" + std::to_string(k), tiny_options(), small_server()));
  }

  for (std::size_t i = 0; i < 12; ++i) {
    const std::string line = serialize_request(mix_request(i % 6, i));
    const std::string reference = solo.submit(line).get();
    const std::string routed = router.route(line);
    EXPECT_EQ(routed, reference) << "request " << i;
  }
}

TEST(FleetRouter, AffinityBeatsRandomRoutingOnCacheHits) {
  constexpr std::size_t kDistinct = 6;
  constexpr std::size_t kRequests = 24;

  const auto hit_stats = [](std::vector<std::shared_ptr<LocalBackend>>& fleet) {
    std::uint64_t hits = 0, misses = 0;
    for (const auto& backend : fleet) {
      hits += backend->metrics().counter("profile_cache_hits");
      misses += backend->metrics().counter("profile_cache_misses");
    }
    return std::pair<std::uint64_t, std::uint64_t>{hits, misses};
  };

  // Affine fleet: every request for a key lands on the same replica.
  std::vector<std::shared_ptr<LocalBackend>> affine;
  {
    RouterOptions options;
    options.probe_interval_ms = 0;
    Router router(options, nullptr);
    for (int k = 0; k < 3; ++k) {
      affine.push_back(std::make_shared<LocalBackend>(
          "b" + std::to_string(k), tiny_options(), small_server()));
      router.add_backend(affine.back());
    }
    for (std::size_t i = 0; i < kRequests; ++i) {
      const std::string response =
          router.route(serialize_request(mix_request(i % kDistinct, i)));
      EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
    }
  }

  // Key-oblivious baseline: the same mix spread across an identical fleet
  // with a rotation that sends each key to every replica over the run (plain
  // i % 3 would accidentally be affine here, since the key period 6 is a
  // multiple of the fleet size), so every replica re-profiles every key.
  std::vector<std::shared_ptr<LocalBackend>> random;
  for (int k = 0; k < 3; ++k) {
    random.push_back(std::make_shared<LocalBackend>(
        "r" + std::to_string(k), tiny_options(), small_server()));
  }
  for (std::size_t i = 0; i < kRequests; ++i) {
    const std::string response =
        random[(i + i / kDistinct) % random.size()]
            ->submit(serialize_request(mix_request(i % kDistinct, i)))
            .get();
    EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  }

  const auto [affine_hits, affine_misses] = hit_stats(affine);
  const auto [random_hits, random_misses] = hit_stats(random);
  ASSERT_GT(affine_hits + affine_misses, 0u);
  ASSERT_GT(random_hits + random_misses, 0u);
  const double affine_rate = static_cast<double>(affine_hits) /
                             static_cast<double>(affine_hits + affine_misses);
  const double random_rate = static_cast<double>(random_hits) /
                             static_cast<double>(random_hits + random_misses);
  // Affinity: each of the 6 keys misses exactly once fleet-wide.  Round
  // robin: each key misses once per replica it visits.
  EXPECT_EQ(affine_misses, kDistinct);
  EXPECT_GT(affine_rate, random_rate);
}

TEST(FleetRouter, ProbeRecoversADownBackend) {
  auto clock = std::make_shared<std::uint64_t>(0);
  RouterOptions options;
  options.probe_interval_ms = 0;  // probes driven manually
  options.fleet.base_backoff_ms = 100;
  options.fleet.clock_ms = [clock] { return *clock; };
  Router router(options, nullptr);
  router.add_backend(
      std::make_shared<LocalBackend>("b0", tiny_options(), small_server()));

  router.fleet().record_failure(0);
  EXPECT_FALSE(router.fleet().eligible(0));
  EXPECT_FALSE(router.fleet().probe_due(0));  // still inside the backoff
  EXPECT_EQ(router.probe_once(), 0u);
  EXPECT_EQ(router.fleet().status(0).state, BackendState::kDown);

  *clock += 100;  // window over: the probe goes through and succeeds
  EXPECT_TRUE(router.fleet().probe_due(0));
  EXPECT_EQ(router.probe_once(), 1u);
  EXPECT_EQ(router.fleet().status(0).state, BackendState::kUp);
  EXPECT_TRUE(router.fleet().eligible(0));
}

}  // namespace
}  // namespace pglb
