// Parameterised sweeps over the mixed-cut thresholds (Sec. II-C): the
// high-degree threshold is the Hybrid/Ginger design knob, so its behaviour
// across the whole range deserves explicit coverage.

#include <gtest/gtest.h>

#include "gen/powerlaw.hpp"
#include "partition/ginger.hpp"
#include "partition/hybrid.hpp"
#include "partition/metrics.hpp"
#include "partition/weights.hpp"

namespace pglb {
namespace {

EdgeList sample_graph() {
  PowerLawConfig config;
  config.num_vertices = 12'000;
  config.alpha = 2.0;
  config.seed = 121;
  return generate_powerlaw(config);
}

class HybridThresholdSweep : public ::testing::TestWithParam<EdgeId> {};

TEST_P(HybridThresholdSweep, AllEdgesAssignedAtEveryThreshold) {
  const auto g = sample_graph();
  HybridOptions options;
  options.high_degree_threshold = GetParam();
  const auto a = HybridPartitioner(options).partition(g, uniform_weights(4), 1);
  ASSERT_EQ(a.edge_to_machine.size(), g.num_edges());
}

TEST_P(HybridThresholdSweep, GingerAgreesOnHighDegreePlacement) {
  // For edges whose target is high-degree, Hybrid and Ginger use the same
  // weighted source hash — their assignments must coincide on those edges.
  const auto g = sample_graph();
  HybridOptions h_options;
  h_options.high_degree_threshold = GetParam();
  GingerOptions g_options;
  g_options.high_degree_threshold = GetParam();

  const auto hybrid = HybridPartitioner(h_options).partition(g, uniform_weights(4), 1);
  const auto ginger = GingerPartitioner(g_options).partition(g, uniform_weights(4), 1);
  const auto in_degree = g.in_degrees();
  EdgeId index = 0;
  for (const Edge& e : g.edges()) {
    if (in_degree[e.dst] > GetParam()) {
      ASSERT_EQ(hybrid.edge_to_machine[index], ginger.edge_to_machine[index])
          << "edge " << index;
    }
    ++index;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, HybridThresholdSweep,
                         ::testing::Values(EdgeId{0}, EdgeId{1}, EdgeId{10}, EdgeId{100},
                                           EdgeId{100'000}));

TEST(HybridThreshold, ZeroThresholdIsPureVertexCut) {
  // Threshold 0: every vertex with any in-edge is "high-degree" -> edges
  // scatter by source, exactly Random-Hash-by-source behaviour.
  const auto g = sample_graph();
  HybridOptions options;
  options.high_degree_threshold = 0;
  const auto a = HybridPartitioner(options).partition(g, uniform_weights(4), 1);
  // Same source => same machine.
  std::vector<MachineId> source_home(g.num_vertices(), kInvalidMachine);
  EdgeId index = 0;
  for (const Edge& e : g.edges()) {
    const MachineId m = a.edge_to_machine[index++];
    if (source_home[e.src] == kInvalidMachine) {
      source_home[e.src] = m;
    } else {
      ASSERT_EQ(source_home[e.src], m);
    }
  }
}

TEST(HybridThreshold, HugeThresholdIsPureEdgeCut) {
  // Threshold above every in-degree: all edges group at their target;
  // replication factor collapses toward the pure-edge-cut regime.
  const auto g = sample_graph();
  HybridOptions options;
  options.high_degree_threshold = 1'000'000;
  const auto weights = uniform_weights(4);
  const auto a = HybridPartitioner(options).partition(g, weights, 1);
  std::vector<MachineId> target_home(g.num_vertices(), kInvalidMachine);
  EdgeId index = 0;
  for (const Edge& e : g.edges()) {
    const MachineId m = a.edge_to_machine[index++];
    if (target_home[e.dst] == kInvalidMachine) {
      target_home[e.dst] = m;
    } else {
      ASSERT_EQ(target_home[e.dst], m);
    }
  }
}

TEST(HybridThreshold, MixedCutReplicatesLessThanPureVertexCut) {
  // Moving from pure vertex cut (threshold 0) to a mixed cut reduces mirrors
  // on low-degree-heavy graphs — Sec. II-C's motivation.  Between moderate
  // thresholds the factor is nearly flat (two opposing effects), so only the
  // vertex-cut-vs-mixed-cut gap is asserted.
  const auto g = sample_graph();
  const auto weights = uniform_weights(4);
  auto rf_at = [&](EdgeId threshold) {
    HybridOptions options;
    options.high_degree_threshold = threshold;
    const auto a = HybridPartitioner(options).partition(g, weights, 1);
    return compute_partition_metrics(g, a, weights).replication_factor;
  };
  const double pure_vertex_cut = rf_at(0);
  EXPECT_LT(rf_at(10), pure_vertex_cut * 0.95);
  EXPECT_LT(rf_at(100), pure_vertex_cut * 0.95);
}

}  // namespace
}  // namespace pglb
