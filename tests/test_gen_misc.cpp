#include <gtest/gtest.h>

#include "gen/erdos_renyi.hpp"
#include "gen/rmat.hpp"
#include "graph/stats.hpp"

namespace pglb {
namespace {

TEST(ErdosRenyi, ExactEdgeCount) {
  ErdosRenyiConfig config;
  config.num_vertices = 500;
  config.num_edges = 2000;
  const auto g = generate_erdos_renyi(config);
  EXPECT_EQ(g.num_edges(), 2000u);
  EXPECT_EQ(g.num_vertices(), 500u);
}

TEST(ErdosRenyi, NoSelfLoopsByDefault) {
  ErdosRenyiConfig config;
  config.num_vertices = 100;
  config.num_edges = 3000;
  const auto g = generate_erdos_renyi(config);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(ErdosRenyi, SelfLoopsWhenAllowed) {
  ErdosRenyiConfig config;
  config.num_vertices = 10;
  config.num_edges = 2000;
  config.allow_self_loops = true;
  const auto g = generate_erdos_renyi(config);
  bool saw_loop = false;
  for (const Edge& e : g.edges()) saw_loop |= e.src == e.dst;
  EXPECT_TRUE(saw_loop);
}

TEST(ErdosRenyi, DegeneratesGracefully) {
  ErdosRenyiConfig config;
  config.num_vertices = 0;
  config.num_edges = 5;
  EXPECT_EQ(generate_erdos_renyi(config).num_edges(), 0u);
  config.num_vertices = 1;  // no non-loop edges exist
  EXPECT_EQ(generate_erdos_renyi(config).num_edges(), 0u);
}

TEST(ErdosRenyi, IsUnskewedComparedToRmat) {
  ErdosRenyiConfig er;
  er.num_vertices = 1 << 12;
  er.num_edges = 40'000;
  RmatConfig rm;
  rm.scale = 12;
  rm.num_edges = 40'000;
  const auto er_stats = compute_stats(generate_erdos_renyi(er));
  const auto rm_stats = compute_stats(generate_rmat(rm));
  EXPECT_GT(rm_stats.degree_skew, 3.0 * er_stats.degree_skew);
}

TEST(Rmat, VertexCountIsPowerOfTwo) {
  RmatConfig config;
  config.scale = 10;
  config.num_edges = 5000;
  const auto g = generate_rmat(config);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 5000u);
}

TEST(Rmat, RejectsBadParameters) {
  RmatConfig config;
  config.scale = 0;
  EXPECT_THROW(generate_rmat(config), std::invalid_argument);
  config.scale = 10;
  config.a = 0.9;  // probabilities no longer sum to 1
  EXPECT_THROW(generate_rmat(config), std::invalid_argument);
}

TEST(Rmat, Deterministic) {
  RmatConfig config;
  config.scale = 10;
  config.num_edges = 2000;
  const auto a = generate_rmat(config);
  const auto b = generate_rmat(config);
  for (EdgeId i = 0; i < a.num_edges(); ++i) EXPECT_EQ(a.edge(i), b.edge(i));
}

TEST(Rmat, NoSelfLoops) {
  RmatConfig config;
  config.scale = 8;
  config.num_edges = 3000;
  const auto g = generate_rmat(config);
  for (const Edge& e : g.edges()) EXPECT_NE(e.src, e.dst);
}

}  // namespace
}  // namespace pglb
