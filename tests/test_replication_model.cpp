#include "partition/replication_model.hpp"

#include <gtest/gtest.h>

#include "engine/distributed_graph.hpp"
#include "gen/powerlaw.hpp"
#include "partition/random_hash.hpp"
#include "partition/weights.hpp"
#include "util/math.hpp"

namespace pglb {
namespace {

TEST(ReplicationModel, SingleMachineIsOneReplica) {
  const std::vector<double> shares = {1.0};
  EXPECT_DOUBLE_EQ(expected_replicas(5, shares), 1.0);
  EXPECT_DOUBLE_EQ(expected_replicas(0, shares), 0.0);
}

TEST(ReplicationModel, DegreeOneVertexHasOneReplica) {
  // A single edge lands on exactly one machine regardless of weights.
  const std::vector<double> shares = {0.25, 0.75};
  EXPECT_NEAR(expected_replicas(1, shares), 1.0, 1e-12);
}

TEST(ReplicationModel, HighDegreeVertexSaturatesAtMachineCount) {
  const std::vector<double> shares = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(expected_replicas(1'000'000, shares), 4.0, 1e-9);
}

TEST(ReplicationModel, MonotoneInDegree) {
  const std::vector<double> shares = {0.5, 0.3, 0.2};
  double prev = 0.0;
  for (const std::uint64_t d : {1ull, 2ull, 4ull, 16ull, 256ull}) {
    const double r = expected_replicas(d, shares);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(ReplicationModel, SkewedSharesReplicateLess) {
  // Concentrating data reduces expected replication — the effect the
  // comm-aware refinement trades against balance.
  const std::vector<double> uniform = {0.5, 0.5};
  const std::vector<double> skewed = {0.1, 0.9};
  for (const std::uint64_t d : {2ull, 4ull, 10ull}) {
    EXPECT_LT(expected_replicas(d, skewed), expected_replicas(d, uniform)) << d;
  }
}

TEST(ReplicationModel, RejectsMalformedShares) {
  const std::vector<double> not_normalized = {0.5, 0.2};
  EXPECT_THROW(expected_replicas(3, not_normalized), std::invalid_argument);
  const std::vector<double> zero = {1.0, 0.0};
  EXPECT_THROW(expected_replicas(3, zero), std::invalid_argument);
}

TEST(ReplicationModel, PredictsMeasuredReplicationFactor) {
  // The model must track the measured RF of weighted Random Hash within a
  // few percent (it is exact in expectation; sampling noise remains).
  PowerLawConfig config;
  config.num_vertices = 20'000;
  config.alpha = 2.1;
  config.seed = 77;
  const auto g = generate_powerlaw(config);
  const auto hist = total_degree_histogram(g);

  const std::vector<std::vector<double>> share_sets = {
      {0.25, 0.25, 0.25, 0.25}, {0.1, 0.2, 0.3, 0.4}};
  for (const std::vector<double>& shares : share_sets) {
    const auto assignment = RandomHashPartitioner{}.partition(g, shares, 5);
    const auto dg = build_distributed(g, assignment);
    const double predicted = expected_replication_factor(hist, shares);
    EXPECT_LT(relative_error(predicted, dg.replication_factor()), 0.05);
  }
}

TEST(ReplicationModel, MirrorsPerMachineSumBelowReplicas) {
  PowerLawConfig config;
  config.num_vertices = 5000;
  config.alpha = 2.0;
  const auto g = generate_powerlaw(config);
  const auto hist = total_degree_histogram(g);
  const std::vector<double> shares = {0.3, 0.7};
  const auto mirrors = expected_mirrors_per_machine(hist, shares);
  double mirror_total = 0.0;
  for (const double m : mirrors) mirror_total += m;
  // Mirrors < total replicas (every present vertex has exactly one master).
  double replica_total = 0.0;
  for (std::uint64_t d = 1; d <= hist.max_value(); ++d) {
    replica_total += static_cast<double>(hist.count_of(d)) * expected_replicas(d, shares);
  }
  EXPECT_LT(mirror_total, replica_total);
  EXPECT_GT(mirror_total, 0.0);
}

TEST(ReplicationModel, TotalDegreeHistogramCountsBothEndpoints) {
  EdgeList g(3);
  g.add(0, 1);
  g.add(1, 2);
  const auto hist = total_degree_histogram(g);
  EXPECT_EQ(hist.count_of(1), 2u);  // vertices 0 and 2
  EXPECT_EQ(hist.count_of(2), 1u);  // vertex 1
}

}  // namespace
}  // namespace pglb
