// Service-level resilience (docs/ROBUSTNESS.md): profile-cache negative
// paths under concurrency, circuit-breaker transitions on a virtual clock,
// planner degradation and typed timeouts under injected faults, and
// admission-control shedding on the server.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "machine/catalog.hpp"
#include "partition/weights.hpp"
#include "service/server.hpp"
#include "util/fault.hpp"

namespace pglb {
namespace {

struct FaultGuard {
  ~FaultGuard() { FaultRegistry::instance().clear(); }
};

ProfileCache::EntryPtr make_entry(double alpha) {
  auto entry = std::make_shared<ProfileEntry>();
  entry->proxy_alpha = alpha;
  return entry;
}

PlannerOptions tiny_options() {
  PlannerOptions options;
  options.proxy_scale = 0.002;
  return options;
}

PlanRequest plan_request(const std::string& id) {
  PlanRequest request;
  request.id = id;
  request.app = AppKind::kPageRank;
  request.machines = {"m4.2xlarge", "c4.2xlarge"};
  request.vertices = 1'000'000;
  request.edges = 10'000'000;
  return request;
}

// --- ProfileCache negative paths -------------------------------------------

TEST(ProfileCacheResilience, ConcurrentWaitersSeeOwnerFailureThenRetrySucceeds) {
  ProfileCache cache(4);
  std::atomic<int> computes{0};
  std::atomic<bool> owner_entered{false};

  // Owner takes the slot, waits until the waiters are queued, then fails.
  std::atomic<int> waiters_started{0};
  constexpr int kWaiters = 4;
  const auto failing_compute = [&]() -> ProfileCache::EntryPtr {
    computes.fetch_add(1);
    owner_entered.store(true);
    while (waiters_started.load() < kWaiters) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw std::runtime_error("profiling exploded");
  };

  std::thread owner([&] {
    EXPECT_THROW(cache.get("key", failing_compute), std::runtime_error);
  });
  while (!owner_entered.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::vector<std::thread> waiters;
  std::atomic<int> waiter_failures{0};
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      waiters_started.fetch_add(1);
      try {
        cache.get("key", [&] {
          computes.fetch_add(1);
          return make_entry(2.1);
        });
      } catch (const std::runtime_error&) {
        waiter_failures.fetch_add(1);
      }
    });
  }
  owner.join();
  for (std::thread& w : waiters) w.join();

  // Single-flight: every waiter either shared the owner's failure or (having
  // arrived after the erase) recomputed.  Nobody hangs; a later get retries
  // and succeeds.
  EXPECT_GE(waiter_failures.load(), 0);
  const auto entry = cache.get("key", [&] {
    computes.fetch_add(1);
    return make_entry(2.1);
  });
  EXPECT_DOUBLE_EQ(entry->proxy_alpha, 2.1);
  EXPECT_GE(computes.load(), 2) << "failed computation must not be cached";
}

TEST(ProfileCacheResilience, WaiterWithExpiredDeadlineStopsWaiting) {
  ProfileCache cache(4);
  std::atomic<bool> release{false};
  std::atomic<bool> owner_entered{false};

  std::thread owner([&] {
    cache.get("key", [&]() -> ProfileCache::EntryPtr {
      owner_entered.store(true);
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return make_entry(1.95);
    });
  });
  while (!owner_entered.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  // The owner is wedged; a deadlined waiter must bail out typed, not block.
  const CancelToken token(Deadline::after_ms(30));
  EXPECT_THROW(cache.get("key", [] { return make_entry(0.0); }, &token),
               CancelledError);

  release.store(true);
  owner.join();
  // The owner's result still landed in the cache for future callers.
  const auto entry = cache.get("key", [] { return make_entry(0.0); });
  EXPECT_DOUBLE_EQ(entry->proxy_alpha, 1.95);
}

// --- circuit breaker -------------------------------------------------------

TEST(BreakerTransitions, OpensAfterThresholdRejectsThenHalfOpenCloses) {
  auto clock_now = std::make_shared<std::atomic<std::uint64_t>>(0);
  BreakerOptions breaker;
  breaker.failure_threshold = 2;
  breaker.cooldown_ms = 1'000;
  breaker.clock_ms = [clock_now] { return clock_now->load(); };
  ProfileCache cache(4, breaker);

  const auto fail = []() -> ProfileCache::EntryPtr {
    throw std::runtime_error("boom");
  };

  EXPECT_THROW(cache.get("k", fail), std::runtime_error);
  EXPECT_EQ(cache.breaker_state("k"), BreakerState::kClosed);
  EXPECT_THROW(cache.get("k", fail), std::runtime_error);
  EXPECT_EQ(cache.breaker_state("k"), BreakerState::kOpen);
  EXPECT_EQ(cache.stats().breaker_opens, 1u);

  // Open: immediate rejection with the remaining cooldown, no compute run.
  std::atomic<int> computes{0};
  try {
    cache.get("k", [&] {
      computes.fetch_add(1);
      return make_entry(0.0);
    });
    FAIL() << "expected BreakerOpenError";
  } catch (const BreakerOpenError& e) {
    EXPECT_EQ(e.retry_in_ms(), 1'000u);
  }
  EXPECT_EQ(computes.load(), 0);
  EXPECT_EQ(cache.stats().breaker_rejections, 1u);

  // Other keys are unaffected (the breaker is per-key).
  EXPECT_DOUBLE_EQ(cache.get("other", [] { return make_entry(3.0); })->proxy_alpha, 3.0);

  // Cooldown elapses on the virtual clock: half-open admits one trial, and a
  // successful trial closes the breaker for good.
  clock_now->store(1'000);
  EXPECT_EQ(cache.breaker_state("k"), BreakerState::kHalfOpen);
  const auto entry = cache.get("k", [&] {
    computes.fetch_add(1);
    return make_entry(2.3);
  });
  EXPECT_DOUBLE_EQ(entry->proxy_alpha, 2.3);
  EXPECT_EQ(cache.breaker_state("k"), BreakerState::kClosed);
}

TEST(BreakerTransitions, FailedHalfOpenTrialReopens) {
  auto clock_now = std::make_shared<std::atomic<std::uint64_t>>(0);
  BreakerOptions breaker;
  breaker.failure_threshold = 1;
  breaker.cooldown_ms = 500;
  breaker.clock_ms = [clock_now] { return clock_now->load(); };
  ProfileCache cache(4, breaker);

  const auto fail = []() -> ProfileCache::EntryPtr {
    throw std::runtime_error("boom");
  };

  EXPECT_THROW(cache.get("k", fail), std::runtime_error);
  EXPECT_EQ(cache.breaker_state("k"), BreakerState::kOpen);

  clock_now->store(500);  // half-open; the trial fails -> re-open
  EXPECT_THROW(cache.get("k", fail), std::runtime_error);
  EXPECT_EQ(cache.breaker_state("k"), BreakerState::kOpen);
  EXPECT_THROW(cache.get("k", fail), BreakerOpenError);
  EXPECT_EQ(cache.stats().breaker_opens, 2u);

  clock_now->store(1'000);  // second cooldown; successful trial closes
  EXPECT_DOUBLE_EQ(cache.get("k", [] { return make_entry(1.0); })->proxy_alpha, 1.0);
  EXPECT_EQ(cache.breaker_state("k"), BreakerState::kClosed);
}

// --- planner degradation and timeouts --------------------------------------

TEST(PlannerResilience, ProfilingFaultYieldsThreadCountDegradedPlan) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("profiler.cell=fail");

  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  const PlanRequest request = plan_request("d1");
  const PlanResponse response = planner.plan(request);

  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.status, PlanStatus::kOk);
  EXPECT_EQ(response.degraded, "thread_count");
  EXPECT_EQ(metrics.counter("planner.degraded"), 1u);

  // Acceptance criterion: degraded weights are bit-identical to the
  // thread-count baseline estimator's weight vector.
  const Cluster cluster = cluster_from_names(request.machines);
  const std::vector<double> expected = thread_count_weights(cluster);
  ASSERT_EQ(response.weights.size(), expected.size());
  for (std::size_t m = 0; m < expected.size(); ++m) {
    EXPECT_EQ(response.weights[m], expected[m]) << "machine " << m;
  }
  ASSERT_EQ(response.ccr.size(), cluster.size());
  EXPECT_FALSE(response.partitioner.empty());
  EXPECT_DOUBLE_EQ(response.makespan_seconds, 0.0);  // nothing honest to predict

  // Faults off again: the same planner recovers to a full plan (the failed
  // profile was never cached).
  FaultRegistry::instance().clear();
  const PlanResponse recovered = planner.plan(request);
  EXPECT_TRUE(recovered.ok);
  EXPECT_TRUE(recovered.degraded.empty());
  EXPECT_GT(recovered.makespan_seconds, 0.0);
}

TEST(PlannerResilience, DegradedResponseRoundTripsThroughProtocol) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("profiler.cell=fail");
  Planner planner(tiny_options());
  const PlanResponse response = planner.plan(plan_request("d2"));
  ASSERT_EQ(response.degraded, "thread_count");

  const PlanResponse decoded = parse_plan_response(serialize_response(response));
  EXPECT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.degraded, "thread_count");
  EXPECT_EQ(decoded.weights, response.weights);
}

TEST(PlannerResilience, StuckProfileWithDeadlineYieldsTypedTimeout) {
  const FaultGuard guard;
  // Every profiling cell is stuck for 200 ms; the request allows 20 ms.
  FaultRegistry::instance().configure("profiler.cell=stall:200");

  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanRequest request = plan_request("t1");
  request.timeout_ms = 20;

  const PlanResponse response = planner.plan(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.status, PlanStatus::kTimeout);
  EXPECT_NE(response.error.find("deadline"), std::string::npos) << response.error;
  EXPECT_EQ(metrics.counter("service.timeouts"), 1u);
}

TEST(PlannerResilience, DefaultTimeoutAppliesWhenRequestCarriesNone) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("profiler.cell=stall:200");

  PlannerOptions options = tiny_options();
  options.default_timeout_ms = 20;
  ServiceMetrics metrics;
  Planner planner(options, &metrics);

  const PlanResponse response = planner.plan(plan_request("t2"));
  EXPECT_EQ(response.status, PlanStatus::kTimeout);
}

TEST(PlannerResilience, TimeoutTripsBreakerSoNextRequestDegradesFast) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("profiler.cell=stall:200");

  PlannerOptions options = tiny_options();
  options.breaker.failure_threshold = 1;  // one timeout opens the key
  ServiceMetrics metrics;
  Planner planner(options, &metrics);

  PlanRequest first = plan_request("b1");
  first.timeout_ms = 20;
  EXPECT_EQ(planner.plan(first).status, PlanStatus::kTimeout);

  // Same profile key, no deadline: the open breaker rejects the compute
  // immediately and the planner degrades instead of stalling 200 ms again.
  const auto start = std::chrono::steady_clock::now();
  const PlanResponse second = planner.plan(plan_request("b2"));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(second.ok);
  EXPECT_EQ(second.degraded, "thread_count");
  EXPECT_LT(elapsed.count(), 150) << "breaker-open path must not re-profile";
  EXPECT_GE(planner.cache_stats().breaker_rejections, 1u);
}

// --- server admission control ----------------------------------------------

TEST(ServerResilience, ShedsWithTypedOverloadedResponseWhenQueueIsFull) {
  const FaultGuard guard;
  // One worker, wedged on its first request for ~300 ms.
  FaultRegistry::instance().configure("profiler.cell=stall:300");

  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  ServerOptions options;
  options.threads = 1;
  options.queue_capacity = 1;
  options.shed_when_full = true;
  PlanServer server(planner, metrics, options);

  // First request: dequeued by the (single) worker, now stalling.
  auto first = server.submit(serialize_request(plan_request("s0")));
  while (metrics.counter("requests_total") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Second request parks in the queue (capacity 1); the third must shed.
  auto second = server.submit(serialize_request(plan_request("s1")));
  const std::string shed_line = server.submit(serialize_request(plan_request("s2"))).get();

  const PlanResponse shed = parse_plan_response(shed_line);
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.status, PlanStatus::kOverloaded);
  EXPECT_EQ(shed.id, "s2") << "shed response must echo the request id";
  EXPECT_GE(shed.queue_depth, 1u);
  EXPECT_GE(shed.retry_after_ms, 1u);
  EXPECT_GE(metrics.counter("service.shed"), 1u);

  // The accepted requests still complete (degraded or ok, but answered).
  EXPECT_FALSE(first.get().empty());
  EXPECT_FALSE(second.get().empty());
}

TEST(ServerResilience, ParseFaultYieldsErrorResponseAndServiceContinues) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("server.parse=fail@nth:1");

  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});

  const PlanResponse faulted =
      parse_plan_response(server.submit(serialize_request(plan_request("f1"))).get());
  EXPECT_FALSE(faulted.ok);
  EXPECT_NE(faulted.error.find("injected fault"), std::string::npos);

  const PlanResponse next =
      parse_plan_response(server.submit(serialize_request(plan_request("f2"))).get());
  EXPECT_TRUE(next.ok);
}

TEST(ServerResilience, MetricsSnapshotCarriesResilienceCounters) {
  const FaultGuard guard;
  FaultRegistry::instance().configure("profiler.cell=fail");

  ServiceMetrics metrics;
  Planner planner(tiny_options(), &metrics);
  PlanServer server(planner, metrics, {.threads = 2, .queue_capacity = 8});
  server.submit(serialize_request(plan_request("m1"))).get();  // degraded

  const JsonValue snapshot =
      parse_json(server.submit(R"({"type":"metrics"})").get());
  ASSERT_TRUE(snapshot.is_object());
  EXPECT_GE(snapshot.find("counters")->find("planner.degraded")->as_number(), 1.0);
  const JsonValue* faults = snapshot.find("faults");
  ASSERT_NE(faults, nullptr);
  EXPECT_DOUBLE_EQ(faults->find("enabled")->as_number(), 1.0);
  EXPECT_GE(faults->find("injected")->as_number(), 1.0);
  const JsonValue* cache = snapshot.find("cache");
  ASSERT_NE(cache, nullptr);
  ASSERT_NE(cache->find("breaker_opens"), nullptr);
  ASSERT_NE(cache->find("breaker_rejections"), nullptr);
}

}  // namespace
}  // namespace pglb
