#include "gen/alpha_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stopwatch.hpp"

namespace pglb {
namespace {

TEST(PowerlawMeanDegree, DecreasesWithAlpha) {
  const std::uint64_t support = 10'000;
  double prev = powerlaw_mean_degree(1.5, support);
  for (double alpha : {1.8, 2.1, 2.5, 3.0}) {
    const double mean = powerlaw_mean_degree(alpha, support);
    EXPECT_LT(mean, prev);
    EXPECT_GT(mean, 1.0);
    prev = mean;
  }
}

TEST(PowerlawMeanDegree, RejectsZeroSupport) {
  EXPECT_THROW(powerlaw_mean_degree(2.0, 0), std::invalid_argument);
}

TEST(SolveAlpha, RoundTripsThroughTheMoment) {
  // For a given alpha, compute the implied mean degree, fabricate (V, E) with
  // that ratio, and check the solver recovers alpha.  This is the defining
  // property of Eq. 7.
  const VertexId v = 1'000'000;
  AlphaSolverOptions options;
  for (const double alpha : {1.9, 2.0, 2.1, 2.2, 2.3, 2.4}) {
    const std::uint64_t support = std::min<std::uint64_t>(v - 1, options.support_cap);
    const double mean = powerlaw_mean_degree(alpha, support);
    const auto edges = static_cast<EdgeId>(std::llround(mean * v));
    const auto result = solve_alpha(v, edges, options);
    EXPECT_TRUE(result.converged) << "alpha=" << alpha;
    EXPECT_NEAR(result.alpha, alpha, 0.01) << "alpha=" << alpha;
  }
}

TEST(SolveAlpha, PaperCorpusFallsInNaturalRange) {
  // Sec. III-A3: natural graphs have alpha roughly in [1.9, 2.4]; our Table
  // II graphs' (V, E) pairs should land in a sane band.
  struct Row {
    VertexId v;
    EdgeId e;
  };
  const Row rows[] = {
      {403'394, 3'387'388},      // amazon
      {3'774'768, 16'518'948},   // citation
      {4'847'571, 68'993'773},   // social network
      {2'394'385, 5'021'410},    // wiki
  };
  for (const Row& r : rows) {
    const auto result = solve_alpha(r.v, r.e);
    EXPECT_TRUE(result.converged);
    EXPECT_GT(result.alpha, 1.6);
    EXPECT_LT(result.alpha, 3.2);
  }
}

TEST(SolveAlpha, DenserGraphGivesSmallerAlpha) {
  const auto sparse = solve_alpha(1'000'000, 2'000'000);
  const auto dense = solve_alpha(1'000'000, 20'000'000);
  EXPECT_LT(dense.alpha, sparse.alpha);
}

TEST(SolveAlpha, RejectsDegenerateInputs) {
  EXPECT_THROW(solve_alpha(0, 10), std::invalid_argument);
  // Mean degree below 1 is unrepresentable by the truncated power law.
  EXPECT_THROW(solve_alpha(1'000'000, 100), std::invalid_argument);
}

TEST(SolveAlpha, RespectsExplicitSupport) {
  AlphaSolverOptions options;
  options.degree_support = 100;
  const double mean = powerlaw_mean_degree(2.0, 100);
  const auto result =
      solve_alpha(10'000, static_cast<EdgeId>(std::llround(mean * 10'000)), options);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.alpha, 2.0, 0.02);
}

TEST(SolveAlpha, ResidualIsTiny) {
  const auto result = solve_alpha(500'000, 5'000'000);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.residual, 1e-9);
  EXPECT_LE(result.iterations, 60);
}

TEST(SolveAlpha, IsFastEnoughForOnlineUse) {
  // Sec. III-A3 claims the alpha computation takes < 1 ms.  Our support cap
  // makes each Newton iteration O(10^6); allow generous slack for CI noise
  // but assert the same order of magnitude.
  const Stopwatch timer;
  (void)solve_alpha(4'847'571, 68'993'773);
  EXPECT_LT(timer.milliseconds(), 2000.0);
}

}  // namespace
}  // namespace pglb
