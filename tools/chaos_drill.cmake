# Chaos acceptance gate (docs/CHAOS.md): the fleet loadgen drill behind the
# pglb_chaos fault-injection proxy, running a scripted partition / heal /
# slow-link / reset scenario:
#
#   rule[0]  blackhole route 0 from 300 ms to 1100 ms (partition, then heal)
#   rule[1]  25 ms +/- 10 ms jitter on route 1 from 1500 ms to 2600 ms
#   rule[2]  reset the first connection to route 2
#
# Three runs, all of which must exit 0 (pglb_loadgen exits non-zero on ANY
# non-typed failure):
#   1. baseline, no chaos, --plans-out
#   2. chaos with a fixed seed, --plans-out
#   3. chaos again, same seed
#
# Asserted:
#   - response files byte-identical across all three runs (plans under
#     partition == plans on a healthy network)
#   - zero hard failures in the chaos runs ("errors=0")
#   - per-rule `conns` counters identical across the two chaos runs (the
#     deterministic replay contract)
#   - blackhole and delay rules actually fired (events > 0)
# Driven by ctest (see CMakeLists.txt in this directory).

function(run_drill out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "drill run failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}\n${err}" PARENT_SCOPE)
endfunction()

# Extract one "chaos rule[i] <text> conns=N events=M" summary line.
function(parse_rule text idx label out_conns out_events)
  if(NOT text MATCHES "chaos rule\\[${idx}\\] [^\n]* conns=([0-9]+) events=([0-9]+)")
    message(FATAL_ERROR "${label} run printed no chaos rule[${idx}] line:\n${text}")
  endif()
  set(${out_conns} ${CMAKE_MATCH_1} PARENT_SCOPE)
  set(${out_events} ${CMAKE_MATCH_2} PARENT_SCOPE)
endfunction()

# '|' separates rules ('; ' is a CMake list separator); see util/netfault.hpp.
set(scenario "blackhole@from:300:1100%route:0|delay:25:10@from:1500:2600%route:1|reset%route:2,conn:1")

# --wave paces arrivals over ~7 s so traffic spans every scenario window;
# --kill-at/--restart-at 0 disable the kill drill (chaos supplies the faults).
set(drill_args --requests=96 --threads=4 --distinct=6 --scale=0.002
    --router=3 --hedge-ms=100 --wave=40 --kill-at=0 --restart-at=0
    --server=${PGLB_SERVE})
set(chaos_args --chaos=${scenario} --chaos-proxy=${PGLB_CHAOS} --chaos-seed=7)

set(base_plans ${WORKDIR}/chaos_drill_base.jsonl)
set(one_plans ${WORKDIR}/chaos_drill_one.jsonl)
set(two_plans ${WORKDIR}/chaos_drill_two.jsonl)
file(REMOVE ${base_plans} ${one_plans} ${two_plans})

run_drill(base_out ${PGLB_LOADGEN} ${drill_args} --plans-out=${base_plans})
run_drill(one_out ${PGLB_LOADGEN} ${drill_args} ${chaos_args}
          --plans-out=${one_plans})
run_drill(two_out ${PGLB_LOADGEN} ${drill_args} ${chaos_args}
          --plans-out=${two_plans})

# Zero non-typed failures under chaos (exit codes already enforce this; the
# parseable line re-asserts it against output-format drift).
foreach(label_out IN ITEMS one_out two_out)
  if(NOT ${label_out} MATCHES "chaos typed failures: errors=0 ")
    message(FATAL_ERROR "${label_out}: hard failures under chaos:\n${${label_out}}")
  endif()
endforeach()

# Plans byte-identical: healthy baseline == chaos run == chaos replay.
file(READ ${base_plans} base_text)
file(READ ${one_plans} one_text)
file(READ ${two_plans} two_text)
if(base_text STREQUAL "")
  message(FATAL_ERROR "baseline run wrote no plans to ${base_plans}")
endif()
if(NOT base_text STREQUAL one_text)
  message(FATAL_ERROR "plans diverged under chaos (baseline vs chaos run 1)")
endif()
if(NOT one_text STREQUAL two_text)
  message(FATAL_ERROR "plans diverged between the two chaos runs")
endif()

# Deterministic replay: same scenario + seed => same per-rule conns counters,
# and the partition/slow-link rules must actually have injected something.
foreach(idx RANGE 2)
  parse_rule("${one_out}" ${idx} "chaos-1" one_conns one_events)
  parse_rule("${two_out}" ${idx} "chaos-2" two_conns two_events)
  if(NOT one_conns EQUAL two_conns)
    message(FATAL_ERROR "rule[${idx}] conns differ across replays: "
            "${one_conns} vs ${two_conns}")
  endif()
  if(idx LESS 2 AND one_events EQUAL 0)
    message(FATAL_ERROR "rule[${idx}] never fired (events=0):\n${one_out}")
  endif()
  message(STATUS "chaos rule[${idx}]: conns=${one_conns} events=${one_events}")
endforeach()

file(REMOVE ${base_plans} ${one_plans} ${two_plans})
