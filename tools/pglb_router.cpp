// pglb_router — front a fleet of pglb_serve backends with cache-affine
// routing, health checks, hedged retries, and failover (docs/FLEET.md).
// Speaks the same line protocol as pglb_serve: one JSON request per stdin
// line, one JSON response per stdout line, in input order, exit at EOF.
//
//   pglb_router --spawn=3 --serve=./pglb_serve --scale=0.004
//   pglb_router --backends=7601,7602,7603
//
// --spawn=K forks K `pglb_serve --listen` children and reaps them at exit;
// by default each child binds an OS-chosen ephemeral port and publishes it
// via the port-file handshake (util/portfile.hpp) in a private directory
// logged as "port-dir" — no fixed ranges, so parallel runs never collide.
// --base-port=P restores consecutive fixed ports.  --backends attaches to an
// already-running fleet.  Requests ride the negotiated binary wire transport
// (docs/WIRE.md) when a backend speaks it; --wire=line forces the legacy
// line-JSON client, --wire=binary refuses to fall back.  --line-backends=N
// spawns the first N children as line-JSON-only replicas (a mixed fleet).  A
// {"type":"metrics"} line answers from the ROUTER's registry (router.* and
// per-backend fleet.* counters, route latency with full bucket vectors) plus
// a "fleet" block with per-backend health — it never forwards, so it works
// even with every backend down.
//
// SIGINT/SIGTERM: stop reading, answer everything in flight, send the
// spawned children SIGTERM and reap them, then exit 0 — the same graceful
// drain contract as pglb_serve.
//
// --autoscale (spawn mode only) runs the closed-loop autoscaler
// (docs/AUTOSCALE.md): a controller thread samples fleet pressure on a
// cadence and acts on its decisions — scale-up spawns another pglb_serve on
// the next port (or rejoins a previously drained slot), drain marks a
// replica draining, SIGTERMs it, and reaps it.  Rendezvous hashing re-homes
// only the drained replica's keys.  The metrics response gains an
// "autoscale" block with the live (cost, p99) Pareto frontier.
//
// Durable warm state (docs/PERSIST.md): --snapshot-dir=D hands every spawned
// child `--snapshot-dir=D/<tag>` (plus --snapshot-interval-ms=N when given),
// so a replica drained by the autoscaler snapshots its profile cache on the
// way out and its rejoin restores it warm.  After every scale-up or rejoin
// the controller also runs a peer-warming pass: it asks the other replicas
// for their hottest profile keys, keeps the ones rendezvous hashing assigns
// to the newcomer, and replays up to --warm-limit of them (hottest first) as
// deadline-guarded plan requests against the newcomer — off the routing hot
// path.  --warm-limit=0 disables warming.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "autoscale/autoscaler.hpp"
#include "fleet/router.hpp"
#include "fleet/spawn.hpp"
#include "fleet/tcp_backend.hpp"
#include "fleet/warming.hpp"
#include "service/protocol.hpp"
#include "util/cli.hpp"
#include "util/parse.hpp"
#include "util/portfile.hpp"

#ifdef __unix__
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>

using namespace pglb;

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int) {
  g_stop = 1;
  // Unblocks the blocking stdin read; the main loop then drains and exits.
  ::close(STDIN_FILENO);
}

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: the read must return
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      tokens.push_back(text.substr(start));
      break;
    }
    tokens.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return tokens;
}

WireMode wire_mode_from_name(const std::string& name) {
  if (name == "auto") return WireMode::kAuto;
  if (name == "line") return WireMode::kLineJson;
  if (name == "binary") return WireMode::kBinary;
  throw std::runtime_error("--wire must be auto, line, or binary");
}

/// Pump stdin->stdout through router.route() on `threads` workers, emitting
/// responses in input order (the serve_stream contract).
std::size_t pump(Router& router, Registry& metrics, int threads,
                 bool metrics_buckets, const Autoscaler* autoscaler) {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::condition_variable out_cv;
  std::deque<std::pair<std::size_t, std::string>> backlog;
  std::map<std::size_t, std::string> done;
  std::size_t active = 0;  // dequeued but not yet in `done`
  bool eof = false;
  std::size_t next_out = 0;
  const auto all_drained = [&] { return eof && backlog.empty() && active == 0 && done.empty(); };

  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        std::pair<std::size_t, std::string> job;
        {
          std::unique_lock<std::mutex> lock(mutex);
          work_cv.wait(lock, [&] { return !backlog.empty() || eof; });
          if (backlog.empty()) return;
          job = std::move(backlog.front());
          backlog.pop_front();
          ++active;
        }
        std::string response;
        bool is_metrics = false;
        try {
          is_metrics = parse_plan_request(job.second).type == RequestType::kMetrics;
        } catch (const std::exception&) {
        }
        if (is_metrics) {
          // Router-side view: counters, route latency (with the full bucket
          // vectors), and per-backend health.  Deliberately not forwarded.
          std::string extra = "\"fleet\":" + router.fleet_json();
          if (autoscaler != nullptr) {
            extra += ",\"autoscale\":" + autoscaler->status_json();
          }
          response = metrics.to_json(extra, metrics_buckets);
        } else {
          response = router.route(job.second);
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          done.emplace(job.first, std::move(response));
          --active;
        }
        out_cv.notify_one();
      }
    });
  }

  std::size_t sequence = 0;
  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      out_cv.wait(lock, [&] { return done.count(next_out) != 0 || all_drained(); });
      const auto it = done.find(next_out);
      if (it == done.end()) {
        if (all_drained()) return;
        continue;
      }
      const std::string line = std::move(it->second);
      done.erase(it);
      ++next_out;
      lock.unlock();
      std::cout << line << '\n' << std::flush;
      lock.lock();
    }
  });

  std::string line;
  while (!g_stop && std::getline(std::cin, line)) {
    if (line.empty()) continue;
    {
      std::lock_guard<std::mutex> lock(mutex);
      backlog.emplace_back(sequence++, line);
    }
    work_cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    eof = true;
  }
  work_cv.notify_all();
  for (std::thread& worker : workers) worker.join();
  out_cv.notify_all();  // writer may be waiting on work that will never come
  writer.join();
  return sequence;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  std::vector<ServeChild> children;
  try {
    const auto spawn = static_cast<std::size_t>(cli.get_int("spawn", 0));
    const std::string backends_csv = cli.get_string("backends", "");
    const std::string serve_path = cli.get_string("serve", "./pglb_serve");
    // 0 = ephemeral ports published via the port-file handshake (default);
    // nonzero restores the old consecutive fixed range.
    const auto base_port = static_cast<std::uint16_t>(cli.get_int("base-port", 0));
    const int threads = static_cast<int>(cli.get_int("threads", 4));
    const int backend_threads = static_cast<int>(cli.get_int("backend-threads", 4));
    const double scale = cli.get_double("scale", 1.0 / 256.0);
    const auto queue = static_cast<std::size_t>(cli.get_int("queue", 256));
    const bool shed = cli.get_bool("shed", false);
    const std::string weights_csv = cli.get_string("weights", "");
    const bool metrics_buckets = cli.get_bool("metrics-buckets", true);
    const WireMode wire_mode = wire_mode_from_name(cli.get_string("wire", "auto"));
    const auto line_backends =
        static_cast<std::size_t>(cli.get_int("line-backends", 0));

    const bool autoscale = cli.get_bool("autoscale", false);
    AutoscalerOptions as_options;
    as_options.max_replicas =
        static_cast<std::size_t>(cli.get_int("max-replicas", 4));
    as_options.policy.policy =
        scale_policy_from_name(cli.get_string("scale-policy", "cost"));
    as_options.pressure_threshold = cli.get_double("pressure", 4.0);
    as_options.idle_threshold = cli.get_double("idle", 0.5);
    as_options.sustain_samples =
        static_cast<std::uint32_t>(cli.get_int("sustain", 3));
    as_options.idle_samples =
        static_cast<std::uint32_t>(cli.get_int("idle-samples", 5));
    as_options.cooldown_ms =
        static_cast<std::uint64_t>(cli.get_int("cooldown-ms", 2'000));
    as_options.base_spec = cli.get_string("base-spec", "c4.2xlarge");
    const auto autoscale_ms =
        static_cast<std::uint64_t>(cli.get_int("autoscale-ms", 200));

    const std::string snapshot_dir = cli.get_string("snapshot-dir", "");
    const auto snapshot_interval_ms =
        static_cast<std::uint64_t>(cli.get_int("snapshot-interval-ms", 0));
    WarmingOptions warm_options;
    const auto warm_limit = static_cast<std::size_t>(cli.get_int("warm-limit", 16));
    warm_options.per_backend_limit = warm_limit;
    warm_options.max_prefetch = warm_limit;

    RouterOptions options;
    options.default_deadline_ms =
        static_cast<std::uint64_t>(cli.get_int("default-timeout-ms", 30'000));
    options.hedge_delay_ms = static_cast<std::uint64_t>(cli.get_int("hedge-ms", 0));
    options.max_attempts = static_cast<std::size_t>(cli.get_int("max-attempts", 0));
    options.probe_interval_ms =
        static_cast<std::uint64_t>(cli.get_int("probe-ms", 500));

    const auto unused = cli.unused_keys();
    if (!unused.empty()) {
      std::cerr << "pglb_router: unknown flag --" << unused.front() << "\n";
      return 2;
    }
    if ((spawn == 0) == backends_csv.empty()) {
      std::cerr << "pglb_router: need exactly one of --spawn=K or --backends=p1,p2\n";
      return 2;
    }
    if (autoscale && spawn == 0) {
      std::cerr << "pglb_router: --autoscale needs --spawn (the scaler owns "
                   "the replica processes)\n";
      return 2;
    }

    SpawnOptions spawn_options;
    spawn_options.serve_path = serve_path;
    spawn_options.threads = backend_threads;
    spawn_options.scale = scale;
    spawn_options.queue = queue;
    spawn_options.shed = shed;
    spawn_options.snapshot_dir = snapshot_dir;
    spawn_options.snapshot_interval_ms = snapshot_interval_ms;
    if (spawn > 0 && base_port == 0) {
      spawn_options.port_dir = make_port_dir();
      // The port-dir path is unique per run: liveness checks (smoke tests)
      // pgrep for it instead of a fixed --listen port pattern.
      std::cerr << "pglb_router: port-dir " << spawn_options.port_dir << "\n";
    }

    std::vector<std::uint16_t> ports;
    if (spawn > 0) {
      for (std::size_t k = 0; k < spawn; ++k) {
        SpawnOptions child_options = spawn_options;
        if (k < line_backends) child_options.wire = "line";
        const auto fixed = static_cast<std::uint16_t>(
            base_port == 0 ? 0 : base_port + k);
        children.push_back(
            spawn_serve(child_options, fixed, "b" + std::to_string(k)));
      }
      for (std::size_t k = 0; k < spawn; ++k) {
        ports.push_back(wait_serve_ready(children[k], spawn_options,
                                         "b" + std::to_string(k), 30'000));
      }
    } else {
      for (const std::string& token : split_csv(backends_csv)) {
        const auto port = parse_int(token);
        if (!port || *port <= 0 || *port > 65535) {
          std::cerr << "pglb_router: bad port '" << token << "'\n";
          return 2;
        }
        ports.push_back(static_cast<std::uint16_t>(*port));
      }
    }

    std::vector<double> weights;
    if (!weights_csv.empty()) {
      for (const std::string& token : split_csv(weights_csv)) {
        const auto weight = parse_double(token);
        if (!weight || *weight <= 0.0) {
          std::cerr << "pglb_router: bad weight '" << token << "'\n";
          return 2;
        }
        weights.push_back(*weight);
      }
      if (weights.size() != ports.size()) {
        std::cerr << "pglb_router: --weights needs one value per backend\n";
        return 2;
      }
    }

    Registry metrics;
    auto router = std::make_unique<Router>(options, &metrics);
    // Kept alongside the router so respawns onto new ephemeral ports can
    // re-point the existing backend (set_port) without disturbing its fleet
    // slot or rendezvous keys.
    std::vector<std::shared_ptr<TcpBackend>> tcp_backends;
    for (std::size_t i = 0; i < ports.size(); ++i) {
      tcp_backends.push_back(std::make_shared<TcpBackend>(
          "b" + std::to_string(i), ports[i], "127.0.0.1", wire_mode));
      router->add_backend(tcp_backends.back(),
                          weights.empty() ? 1.0 : weights[i]);
    }
    install_stop_handlers();
    router->start();
    std::cerr << "pglb_router: fronting " << ports.size() << " backend(s)\n";

    // --- autoscale controller ------------------------------------------------
    // Samples fleet pressure on a cadence, asks the (pure) Autoscaler for a
    // decision, and actuates it with the same spawn / SIGTERM-drain machinery
    // the rest of this tool uses.  The controller is the only mutator of
    // `children` while it runs; main touches them again only after join.
    std::unique_ptr<Autoscaler> autoscaler;
    std::vector<std::string> replica_specs(ports.size(), "");
    std::mutex as_mutex;
    std::condition_variable as_cv;
    bool as_stop = false;
    std::thread controller;
    if (autoscale) {
      as_options.min_replicas = spawn;  // the floor is what the user spawned
      autoscaler = std::make_unique<Autoscaler>(as_options, &metrics);
      controller = std::thread([&] {
        std::unique_lock<std::mutex> lock(as_mutex);
        while (!as_stop) {
          as_cv.wait_for(lock, std::chrono::milliseconds(autoscale_ms),
                         [&] { return as_stop; });
          if (as_stop) return;
          lock.unlock();
          FleetSample sample = sample_fleet(router->fleet(), metrics);
          for (std::size_t i = 0;
               i < sample.backends.size() && i < replica_specs.size(); ++i) {
            sample.backends[i].spec_name = replica_specs[i];
          }
          const ScaleDecision decision = autoscaler->decide(sample);
          if (const auto* up = std::get_if<ScaleUp>(&decision)) {
            // Prefer rejoining a drained slot (same port, weight, and spec —
            // its keys rendezvous straight back); otherwise spawn a fresh
            // replica on the next port with the policy's chosen spec.
            std::size_t rejoin = children.size();
            for (std::size_t i = 0; i < children.size(); ++i) {
              if (children[i].pid < 0 &&
                  router->fleet().status(i).state == BackendState::kDraining) {
                rejoin = i;
                break;
              }
            }
            try {
              if (rejoin < children.size()) {
                const std::string tag = "b" + std::to_string(rejoin);
                const auto fixed = static_cast<std::uint16_t>(
                    base_port == 0 ? 0 : children[rejoin].port);
                children[rejoin] = spawn_serve(spawn_options, fixed, tag);
                const std::uint16_t port =
                    wait_serve_ready(children[rejoin], spawn_options, tag, 30'000);
                // The respawn may land on a brand-new ephemeral port;
                // re-point the existing backend (same name, same rendezvous
                // keys) at it.
                tcp_backends[rejoin]->set_port(port);
                router->fleet().set_draining(rejoin, false);
                // wait_serve_ready just proved liveness; clear the failure
                // backoff the prober accrued against the empty slot.
                router->fleet().record_success(rejoin);
                std::cerr << "pglb_router: autoscale: scale-up b" << rejoin
                          << " (rejoin) on port " << port << "\n";
                if (warm_limit > 0) {
                  const WarmReport warm =
                      warm_replica(router->fleet(), rejoin, warm_options, &metrics);
                  autoscaler->record_warming(warm.keys_owned, warm.keys_warmed);
                  std::cerr << "pglb_router: warming: b" << rejoin << " owned "
                            << warm.keys_owned << "/" << warm.keys_seen
                            << " key(s), warmed " << warm.keys_warmed << "\n";
                }
              } else {
                const std::string tag = "b" + std::to_string(children.size());
                const auto fixed = static_cast<std::uint16_t>(
                    base_port == 0 ? 0 : base_port + children.size());
                children.push_back(spawn_serve(spawn_options, fixed, tag));
                const std::uint16_t port =
                    wait_serve_ready(children.back(), spawn_options, tag, 30'000);
                const std::string name = "b" + std::to_string(replica_specs.size());
                tcp_backends.push_back(std::make_shared<TcpBackend>(
                    name, port, "127.0.0.1", wire_mode));
                router->add_backend(tcp_backends.back(), up->weight);
                replica_specs.push_back(up->spec.name);
                std::cerr << "pglb_router: autoscale: scale-up " << name << " ("
                          << up->spec.name << ") on port " << port << "\n";
                if (warm_limit > 0) {
                  const std::size_t index = tcp_backends.size() - 1;
                  const WarmReport warm =
                      warm_replica(router->fleet(), index, warm_options, &metrics);
                  autoscaler->record_warming(warm.keys_owned, warm.keys_warmed);
                  std::cerr << "pglb_router: warming: " << name << " owned "
                            << warm.keys_owned << "/" << warm.keys_seen
                            << " key(s), warmed " << warm.keys_warmed << "\n";
                }
              }
            } catch (const std::exception& e) {
              std::cerr << "pglb_router: autoscale: scale-up failed: "
                        << e.what() << "\n";
            }
          } else if (const auto* drain = std::get_if<DrainReplica>(&decision)) {
            if (drain->index < children.size() &&
                children[drain->index].pid > 0) {
              router->fleet().set_draining(drain->index, true);
              ::kill(children[drain->index].pid, SIGTERM);
              int status = 0;
              ::waitpid(children[drain->index].pid, &status, 0);
              children[drain->index].pid = -1;
              std::cerr << "pglb_router: autoscale: drained " << drain->backend
                        << "\n";
            }
          }
          lock.lock();
        }
      });
    }
    // Joins the controller on every exit path BEFORE the router (whose
    // pointer it captured) is destroyed.
    struct ControllerJoiner {
      std::thread* thread;
      std::mutex* mutex;
      std::condition_variable* cv;
      bool* stop;
      ~ControllerJoiner() {
        if (!thread->joinable()) return;
        {
          std::lock_guard<std::mutex> lock(*mutex);
          *stop = true;
        }
        cv->notify_all();
        thread->join();
      }
    } controller_joiner{&controller, &as_mutex, &as_cv, &as_stop};

    const std::size_t served =
        pump(*router, metrics, threads, metrics_buckets, autoscaler.get());
    {
      std::lock_guard<std::mutex> lock(as_mutex);
      as_stop = true;
    }
    as_cv.notify_all();
    if (controller.joinable()) controller.join();
    router->stop();
    // Tear the router down BEFORE reaping: destroying the TcpBackends closes
    // the persistent connections, which is what lets a backend blocked in
    // serve_stream reach its own drain path.
    router.reset();
    std::cerr << "pglb_router: drained after " << served << " request(s)\n";

    // Drained slots carry pid -1: skip them (kill(-1) would signal the whole
    // process group).
    for (const ServeChild& child : children) {
      if (child.pid > 0) ::kill(child.pid, SIGTERM);
    }
    for (const ServeChild& child : children) {
      int status = 0;
      if (child.pid > 0) ::waitpid(child.pid, &status, 0);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pglb_router: " << e.what() << "\n";
    for (const ServeChild& child : children) {
      if (child.pid > 0) ::kill(child.pid, SIGKILL);
    }
    for (const ServeChild& child : children) {
      int status = 0;
      if (child.pid > 0) ::waitpid(child.pid, &status, 0);
    }
    return 1;
  }
}

#else  // !__unix__

int main() {
  std::cerr << "pglb_router: only available on POSIX builds\n";
  return 2;
}

#endif
