// pglb_loadgen — replay a deterministic planning-request mix against the
// service and report throughput, latency percentiles, and the profile-cache
// hit rate.
//
//   pglb_loadgen --requests=1000 --threads=4                 # in-process
//   pglb_loadgen --requests=1000 --threads=4 --server=./pglb_serve
//
// The mix cycles over --distinct combinations of (cluster, app, graph), so a
// long run is dominated by repeated requests — the service's intended
// traffic shape — and the cache hit rate converges to 1 - distinct/requests.
// Exits non-zero if any request fails with an "error" status.  Typed
// "timeout"/"overloaded" responses and degraded plans are resilience
// behaviour, not failures — they are counted and reported separately.
//
// Resilience knobs (docs/ROBUSTNESS.md): --timeout-ms stamps a per-request
// deadline on every request; --shed turns on admission control (in-process
// and --server mode both).
//
// Fleet mode (docs/FLEET.md): --router=K spawns K `pglb_serve --listen`
// backends (binary from --server), routes the same mix through an in-process
// fleet Router with hedging and health probes, KILLS one backend mid-run and
// restarts it, and reports per-backend routing counts and cache hit rates on
// top of the usual tallies.  Typed failover means the kill must produce zero
// "error" responses — the run still exits 0.
//
//   pglb_loadgen --requests=200 --router=3 --server=./pglb_serve --scale=0.004
//
// The kill/restart schedule is configurable: --kill-at=P / --restart-at=P
// (percent of the run; outside (0,100) disables that event), and
// --kill-mode=term downgrades the mid-run SIGKILL to a SIGTERM — the graceful
// drain, under which a backend with --snapshot-dir (below) writes its warm
// snapshot on the way out.  --wave=QPS
// paces arrivals on a half-sine "diurnal" wave peaking at QPS instead of the
// closed loop, and --churn gives every request a unique out-of-coverage
// alpha (a guaranteed profile miss — sustained planning work).
//
// Autoscale mode (docs/AUTOSCALE.md): --autoscale runs the closed-loop
// Autoscaler against the spawned fleet — scale-ups spawn extra backends on
// the next ports, drains SIGTERM them — and the run only exits 0 if the
// fleet scaled up at least once, drained back to the floor after the wave,
// and produced a populated (cost, p99) Pareto frontier, with zero "error"
// responses throughout:
//
//   pglb_loadgen --requests=96 --router=1 --server=./pglb_serve \
//     --autoscale --wave=60 --churn --max-replicas=3
//
// Chaos mode (docs/CHAOS.md): --chaos=SCENARIO (fleet mode only) spawns the
// `pglb_chaos` fault-injection proxy between the router and its replicas and
// points every TcpBackend at the proxy's ports.  The scenario uses the
// netfault grammar (util/netfault.hpp); --chaos-seed seeds its RNG chains and
// --chaos-proxy names the binary (default ./pglb_chaos).  After the run the
// proxy's control endpoint is queried and a parseable per-rule summary is
// printed:
//
//   chaos rule[0] blackhole@from:300:1100%route:0 conns=1 events=42
//   chaos typed failures: errors=0 timeouts=0 overloaded=0
//
// --plans-out=FILE writes every response line, in request order, to FILE —
// the chaos_drill gate diffs that file across chaos and no-chaos runs to
// prove the plans stayed byte-identical under partition.
//
// Mutate mode (docs/DYNAMIC.md): --mutate=B streams B deterministic mutation
// batches against a delta base instead of the plan mix — in-process by
// default, or through a spawned fleet with --router=K (delta requests
// rendezvous on the base name, so the whole stream lands on one replica).
// The client keeps a LiveGraph mirror and cross-checks the server's reported
// live counts after every batch (desync = hard failure).  After the stream
// it forces a re-profile of the base and creates a from-scratch base of the
// mutated graph, then compares the two responses byte-for-byte (plan
// portion) and digest-for-digest (assignment) — the dynamic_drill
// equivalence gate.  Parseable output:
//
//   mutate reprofiles: R
//   mutate profile cells: N
//   mutate equivalence: ok
//
// Knobs: --mutate-edits=E (ops per batch), --mutate-vertices=V (base graph
// size), --mutate-seed=S, --reprofile=auto|force|never, --drift-churn=X,
// --drift-hist=Y, --algorithm=KIND.  --plans-out works here too — the drill
// replays the stream at several PGLB_THREADS settings and diffs the files.
//
// Durable warm state (docs/PERSIST.md): --snapshot-dir=D hands each spawned
// backend `--snapshot-dir=D/<tag>` so a SIGTERM'd backend snapshots its
// profile cache and its restart restores it warm.  When the kill drill
// restarts b0, the run prints a parseable `post-restart b0 cache:` line with
// the hits/misses b0 accumulated SINCE the restart — the warm-restart gate
// compares that line across a cold and a warm run.  --warm-limit=N (default
// 0 = off, keeping existing gates byte-stable) adds the router-driven peer
// warming pass after every autoscale scale-up or rejoin.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "autoscale/autoscaler.hpp"
#include "core/proxy_suite.hpp"
#include "dynamic/mutation.hpp"
#include "gen/powerlaw.hpp"
#include "partition/factory.hpp"
#include "fleet/router.hpp"
#include "fleet/spawn.hpp"
#include "fleet/tcp_backend.hpp"
#include "fleet/warming.hpp"
#include "obs/registry.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/portfile.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

#ifdef __unix__
#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <ext/stdio_filebuf.h>
#endif

using namespace pglb;

namespace {

/// The fixed request mix: combo i cycles clusters fastest, then apps, then
/// graph sizes, covering the paper's Case 1-3 cluster shapes.
PlanRequest request_for(std::size_t combo, std::size_t sequence) {
  static const std::vector<std::vector<std::string>> kClusters = {
      {"xeon_server_s", "xeon_server_l"},
      {"m4.2xlarge", "c4.2xlarge"},
      {"c4.xlarge", "c4.2xlarge", "c4.4xlarge", "c4.8xlarge"},
      {"m4.2xlarge", "c4.2xlarge", "r3.2xlarge"},
  };
  static const std::vector<AppKind> kApps = {
      AppKind::kPageRank, AppKind::kColoring, AppKind::kConnectedComponents,
      AppKind::kTriangleCount};
  static const std::vector<std::pair<std::uint64_t, std::uint64_t>> kGraphs = {
      {1'000'000, 10'000'000}, {4'847'571, 68'993'773}, {3'072'441, 117'185'083}};

  PlanRequest request;
  request.id = "load-" + std::to_string(sequence);
  request.machines = kClusters[combo % kClusters.size()];
  request.app = kApps[(combo / kClusters.size()) % kApps.size()];
  const auto& [vertices, edges] =
      kGraphs[(combo / (kClusters.size() * kApps.size())) % kGraphs.size()];
  request.vertices = vertices;
  request.edges = edges;
  return request;
}

struct LoadReport {
  std::vector<double> latencies_s;
  std::size_t failed = 0;      ///< "error" status responses only
  std::size_t degraded = 0;    ///< ok responses with a non-empty degraded tag
  std::size_t timeouts = 0;    ///< typed "timeout" responses
  std::size_t overloaded = 0;  ///< typed "overloaded" responses (shed)
  double wall_seconds = 0.0;
  double cache_hits = 0.0;
  double cache_misses = 0.0;
  double cache_hit_rate = 0.0;
  /// Per-service counters (requests_total, profile_cache_*); in-process only.
  std::vector<std::pair<std::string, std::uint64_t>> service_counters;
  /// Fleet mode (--router): per-backend "name: routed / hits / misses" rows
  /// plus the route-latency distribution as occupied buckets.
  struct BackendReport {
    std::string name;
    std::uint64_t routed = 0;
    double cache_hits = 0.0;
    double cache_misses = 0.0;
    bool alive = true;
  };
  std::vector<BackendReport> backends;
  std::vector<LatencyBucket> route_buckets;
  /// Kill drill: b0 was killed and restarted, so backends[0]'s cache stats
  /// cover only its post-restart life (the warm-restart gate's signal).
  bool b0_restarted = false;
  /// Autoscale mode: convergence evidence for the wave gate.
  bool autoscaled = false;
  std::uint64_t scale_ups = 0;
  std::uint64_t drains = 0;
  std::size_t final_replicas = 0;
  std::size_t floor_replicas = 0;
  std::size_t frontier_size = 0;  ///< machines on the live (cost, p99) frontier
  /// Chaos mode: response lines in request order (--plans-out) and the final
  /// per-rule injection counters from the proxy's control endpoint.
  std::vector<std::string> responses;
  std::string chaos_metrics_json;
};

/// Nonzero counter deltas of the process-wide registry across the run — what
/// the planner's pipeline actually did (proxy generation, profiling fan-out,
/// pool usage) as opposed to per-request service accounting.
std::vector<std::pair<std::string, std::uint64_t>> counter_deltas(
    const std::vector<std::pair<std::string, std::uint64_t>>& before,
    const std::vector<std::pair<std::string, std::uint64_t>>& after) {
  std::vector<std::pair<std::string, std::uint64_t>> deltas;
  for (const auto& [name, value] : after) {
    std::uint64_t prior = 0;
    for (const auto& [b_name, b_value] : before) {
      if (b_name == name) {
        prior = b_value;
        break;
      }
    }
    if (value > prior) deltas.emplace_back(name, value - prior);
  }
  return deltas;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// Fold one response into the per-outcome tallies.  `first_error` guards the
/// one-time diagnostic print of the first hard failure.
void tally_response(const PlanResponse& response, const std::string& line,
                    std::atomic<std::size_t>& failed,
                    std::atomic<std::size_t>& degraded,
                    std::atomic<std::size_t>& timeouts,
                    std::atomic<std::size_t>& overloaded,
                    std::atomic<bool>& first_error) {
  switch (response.status) {
    case PlanStatus::kOk:
      if (!response.degraded.empty()) degraded.fetch_add(1);
      break;
    case PlanStatus::kTimeout:
      timeouts.fetch_add(1);
      break;
    case PlanStatus::kOverloaded:
      overloaded.fetch_add(1);
      break;
    case PlanStatus::kError:
      if (failed.fetch_add(1) == 0 && !first_error.exchange(true)) {
        std::cerr << "first failure: " << line << "\n";
      }
      break;
  }
}

LoadReport run_in_process(std::size_t requests, int threads, std::size_t distinct,
                          std::uint64_t timeout_ms,
                          const PlannerOptions& planner_options,
                          const ServerOptions& server_options) {
  ServiceMetrics metrics;
  Planner planner(planner_options, &metrics);
  PlanServer server(planner, metrics, server_options);

  LoadReport report;
  report.latencies_s.resize(requests);
  std::atomic<std::size_t> failed{0}, degraded{0}, timeouts{0}, overloaded{0};
  std::atomic<bool> first_error{false};
  std::atomic<std::size_t> next{0};

  const Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests) return;
        PlanRequest request = request_for(i % distinct, i);
        if (timeout_ms > 0) request.timeout_ms = timeout_ms;
        const std::string line = serialize_request(request);
        const Stopwatch timer;
        const std::string response_line = server.submit(line).get();
        report.latencies_s[i] = timer.seconds();
        const PlanResponse response = parse_plan_response(response_line);
        tally_response(response, response_line, failed, degraded, timeouts,
                       overloaded, first_error);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  report.wall_seconds = wall.seconds();
  report.failed = failed.load();
  report.degraded = degraded.load();
  report.timeouts = timeouts.load();
  report.overloaded = overloaded.load();

  const ProfileCacheStats cache = planner.cache_stats();
  report.cache_hits = static_cast<double>(cache.hits);
  report.cache_misses = static_cast<double>(cache.misses);
  report.cache_hit_rate = cache.hit_rate();
  report.service_counters = metrics.registry().counters();
  return report;
}

// --- mutate mode (docs/DYNAMIC.md) ------------------------------------------

struct MutateOptions {
  std::size_t batches = 0;        ///< 0 = mutate mode off
  std::size_t edits = 8;          ///< mutations per batch
  VertexId base_vertices = 2048;  ///< base graph size (power law, alpha 2.1)
  std::uint64_t seed = 42;        ///< graph, stream, and partition seed
  std::string base = "dyn0";
  std::optional<ReprofileMode> reprofile;
  std::optional<double> drift_churn;
  std::optional<double> drift_hist;
  std::optional<PartitionerKind> algorithm;
};

struct MutateReport {
  std::vector<std::string> responses;  ///< in request order (--plans-out)
  std::size_t failed = 0;              ///< non-ok responses + desyncs
  std::size_t reprofiles = 0;          ///< update batches that re-ran CCR
  std::uint64_t profile_cells = 0;     ///< filled by the driver (per mode)
  bool equivalence_ok = false;
  std::string detail;                  ///< first failure diagnostic
};

/// Stream the seeded mutation mix through `send` (one request line in, one
/// response line out — PlanServer::submit or Router::route), keeping a
/// client-side LiveGraph mirror, then run the incremental-vs-scratch
/// equivalence check.  Sequential by design: deltas to one base are totally
/// ordered server-side anyway, and a deterministic send order is what makes
/// the --plans-out file comparable across thread counts.
MutateReport run_mutate(const std::function<std::string(const std::string&)>& send,
                        const MutateOptions& mutate) {
  MutateReport report;
  dynamic::LiveGraph mirror;

  // One round trip: send, tally, parse the delta block, and cross-check the
  // server's live counts against the mirror — a mismatch means the two sides
  // diverged and every later determinism claim is void, so it is a hard
  // failure, not a tolerated degradation.
  const auto roundtrip =
      [&](const PlanRequest& request,
          bool count_reprofile) -> std::optional<DeltaInfo> {
    const std::string line = send(serialize_request(request));
    report.responses.push_back(line);
    const PlanResponse response = parse_plan_response(line);
    if (response.status != PlanStatus::kOk) {
      ++report.failed;
      if (report.detail.empty()) report.detail = line;
      return std::nullopt;
    }
    std::optional<DeltaInfo> delta = parse_delta_block(line);
    if (!delta) {
      ++report.failed;
      if (report.detail.empty()) report.detail = "missing delta block: " + line;
      return std::nullopt;
    }
    if (delta->live_edges != mirror.live_edge_count() ||
        delta->live_vertices != mirror.live_vertex_count()) {
      ++report.failed;
      if (report.detail.empty()) {
        report.detail = "live-state desync on id=" + request.id + " (server " +
                        std::to_string(delta->live_vertices) + "v/" +
                        std::to_string(delta->live_edges) + "e, mirror " +
                        std::to_string(mirror.live_vertex_count()) + "v/" +
                        std::to_string(mirror.live_edge_count()) + "e)";
      }
      return std::nullopt;
    }
    if (count_reprofile && delta->reprofiled) ++report.reprofiles;
    return delta;
  };

  // Creation: the deterministic base graph as one batch of add_vertex +
  // add_edge mutations, in generator order.
  PowerLawConfig config;
  config.num_vertices = mutate.base_vertices;
  config.alpha = 2.1;
  config.seed = mutate.seed;
  const EdgeList graph = generate_powerlaw(config);

  PlanRequest create;
  create.type = RequestType::kDelta;
  create.id = "create";
  create.base = mutate.base;
  create.app = AppKind::kPageRank;
  create.machines = {"xeon_server_s", "xeon_server_l"};
  create.partitioner = mutate.algorithm;
  create.seed = mutate.seed;
  create.reprofile = mutate.reprofile;
  create.drift_churn = mutate.drift_churn;
  create.drift_hist = mutate.drift_hist;
  create.mutations.reserve(static_cast<std::size_t>(graph.num_vertices()) +
                           graph.edges().size());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    create.mutations.push_back(dynamic::Mutation::add_vertex(v));
  }
  for (const Edge& edge : graph.edges()) {
    create.mutations.push_back(dynamic::Mutation::add_edge(edge.src, edge.dst));
  }
  mirror.apply(create.mutations);
  if (!roundtrip(create, false)) return report;

  // The update stream: each batch is generated against the mirror BEFORE it
  // is applied, exactly as the server will see it.
  for (std::size_t b = 0; b < mutate.batches; ++b) {
    PlanRequest update;
    update.type = RequestType::kDelta;
    update.id = "m" + std::to_string(b);
    update.base = mutate.base;
    update.reprofile = mutate.reprofile;
    update.drift_churn = mutate.drift_churn;
    update.drift_hist = mutate.drift_hist;
    update.mutations =
        dynamic::generate_mutation_batch(mirror, mutate.seed, b, mutate.edits);
    mirror.apply(update.mutations);
    if (!roundtrip(update, true)) return report;
  }

  // Equivalence gate.  Force an empty-batch re-profile of the streamed base
  // (compacts + replays through a fresh scorer state), then create a
  // from-scratch base from the mirror's survivors — alive vertices in id
  // order, live edges in slot order, the sequence compact() preserves.  The
  // two ok responses must agree byte-for-byte on the plan portion and value-
  // for-value on the assignment digest.
  PlanRequest equiv;
  equiv.type = RequestType::kDelta;
  equiv.id = "equiv";
  equiv.base = mutate.base;
  equiv.reprofile = ReprofileMode::kForce;
  const std::optional<DeltaInfo> inc = roundtrip(equiv, false);
  if (!inc) return report;
  const std::string inc_line = report.responses.back();

  PlanRequest scratch;
  scratch.type = RequestType::kDelta;
  scratch.id = "equiv";
  scratch.base = mutate.base + "__scratch";
  scratch.app = create.app;
  scratch.machines = create.machines;
  scratch.partitioner = mutate.algorithm;
  scratch.seed = mutate.seed;
  for (VertexId v = 0; v < mirror.num_vertices(); ++v) {
    if (mirror.vertex_alive(v)) {
      scratch.mutations.push_back(dynamic::Mutation::add_vertex(v));
    }
  }
  for (std::size_t i = 0; i < mirror.slot_count(); ++i) {
    if (!mirror.dead(i)) {
      scratch.mutations.push_back(
          dynamic::Mutation::add_edge(mirror.slot(i).src, mirror.slot(i).dst));
    }
  }
  // The scratch base's live counts equal the mirror's, so roundtrip's desync
  // check applies unchanged.
  const std::optional<DeltaInfo> scr = roundtrip(scratch, false);
  if (!scr) return report;
  const std::string scratch_line = report.responses.back();

  const auto plan_prefix = [](const std::string& line) {
    const std::size_t pos = line.find(",\"delta\":");
    return pos == std::string::npos ? line : line.substr(0, pos);
  };
  report.equivalence_ok = plan_prefix(inc_line) == plan_prefix(scratch_line) &&
                          inc->digest == scr->digest &&
                          inc->live_vertices == scr->live_vertices &&
                          inc->live_edges == scr->live_edges;
  if (!report.equivalence_ok && report.detail.empty()) {
    report.detail = "equivalence mismatch:\n  inc:     " + inc_line +
                    "\n  scratch: " + scratch_line;
  }
  return report;
}

/// In-process mutate driver: the PlanServer owns a DeltaPlanner, and the
/// shared ServiceMetrics counts every profile_single_machine call.
MutateReport run_mutate_in_process(const MutateOptions& mutate,
                                   const PlannerOptions& planner_options,
                                   const ServerOptions& server_options) {
  ServiceMetrics metrics;
  Planner planner(planner_options, &metrics);
  PlanServer server(planner, metrics, server_options);
  MutateReport report = run_mutate(
      [&](const std::string& line) { return server.submit(line).get(); },
      mutate);
  report.profile_cells = metrics.counter("profile_runs");
  return report;
}

#ifdef __unix__
/// Drive an external `pglb_serve` over pipes: responses come back in input
/// order, so request i's latency is send[i] -> i-th response line.
LoadReport run_against_server(const std::string& server_path, std::size_t requests,
                              int threads, std::size_t distinct, double scale,
                              std::size_t queue_capacity, std::uint64_t timeout_ms,
                              bool shed) {
  int to_child[2], from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    throw std::runtime_error(std::string("pipe: ") + std::strerror(errno));
  }
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    std::vector<std::string> args = {server_path,
                                     "--threads=" + std::to_string(threads),
                                     "--scale=" + std::to_string(scale),
                                     "--queue=" + std::to_string(queue_capacity)};
    if (shed) args.emplace_back("--shed");
    std::vector<char*> argv_child;
    argv_child.reserve(args.size() + 1);
    for (std::string& arg : args) argv_child.push_back(arg.data());
    argv_child.push_back(nullptr);
    execv(server_path.c_str(), argv_child.data());
    std::perror("execv");
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);

  __gnu_cxx::stdio_filebuf<char> out_buf(to_child[1], std::ios::out);
  __gnu_cxx::stdio_filebuf<char> in_buf(from_child[0], std::ios::in);
  std::ostream to_server(&out_buf);
  std::istream from_server(&in_buf);

  LoadReport report;
  report.latencies_s.resize(requests);
  std::vector<double> send_time(requests + 1, 0.0);

  // Windowed pipelining: keep at most 2*threads requests in flight so the
  // send timestamps stay meaningful as queueing delay, not just write time.
  // When shedding is under test the window must be able to overflow the
  // server queue (threads in service + queue_capacity waiting + extras shed).
  const std::size_t window =
      shed ? static_cast<std::size_t>(threads) + queue_capacity + 4
           : static_cast<std::size_t>(threads) * 2;
  std::mutex mutex;
  std::condition_variable received_cv;
  std::size_t received = 0;
  std::string metrics_line;

  std::atomic<std::size_t> failed{0}, degraded{0}, timeouts{0}, overloaded{0};
  std::atomic<bool> first_error{false};

  const Stopwatch wall;
  std::thread reader([&] {
    std::string line;
    std::size_t i = 0;
    while (i < requests + 1 && std::getline(from_server, line)) {
      if (i < requests) {
        double sent = 0.0;
        {
          std::lock_guard<std::mutex> lock(mutex);
          sent = send_time[i];
        }
        report.latencies_s[i] = wall.seconds() - sent;
        const PlanResponse response = parse_plan_response(line);
        tally_response(response, line, failed, degraded, timeouts, overloaded,
                       first_error);
      } else {
        metrics_line = line;
      }
      {
        std::lock_guard<std::mutex> lock(mutex);
        received = ++i;
      }
      received_cv.notify_one();
    }
  });

  for (std::size_t i = 0; i < requests; ++i) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      received_cv.wait(lock, [&] { return i - received < window; });
      send_time[i] = wall.seconds();
    }
    PlanRequest request = request_for(i % distinct, i);
    if (timeout_ms > 0) request.timeout_ms = timeout_ms;
    to_server << serialize_request(request) << '\n' << std::flush;
  }
  PlanRequest metrics_request;
  metrics_request.type = RequestType::kMetrics;
  to_server << serialize_request(metrics_request) << '\n' << std::flush;
  out_buf.close();  // EOF -> server drains and exits

  reader.join();
  report.wall_seconds = wall.seconds();
  report.failed = failed.load();
  report.degraded = degraded.load();
  report.timeouts = timeouts.load();
  report.overloaded = overloaded.load();
  int status = 0;
  waitpid(pid, &status, 0);

  if (!metrics_line.empty()) {
    const JsonValue metrics = parse_json(metrics_line);
    if (const JsonValue* cache = metrics.find("cache")) {
      if (const JsonValue* v = cache->find("hits")) report.cache_hits = v->as_number();
      if (const JsonValue* v = cache->find("misses")) {
        report.cache_misses = v->as_number();
      }
      if (const JsonValue* v = cache->find("hit_rate")) {
        report.cache_hit_rate = v->as_number();
      }
    }
  }
  return report;
}

// --- fleet mode -------------------------------------------------------------
// Children come from the shared spawn helpers (fleet/spawn.hpp): ephemeral
// ports by default, published via the port-file handshake, so parallel ctest
// runs never collide on a fixed port range.

WireMode wire_mode_from_name(const std::string& name) {
  if (name == "auto") return WireMode::kAuto;
  if (name == "line") return WireMode::kLineJson;
  if (name == "binary") return WireMode::kBinary;
  throw std::runtime_error("--wire must be auto, line, or binary");
}

/// Fleet-mode knobs beyond the basic spawn parameters: the configurable
/// kill/restart schedule, the wave arrival shape, cache churn, and the
/// autoscale convergence mode.
struct RouterRunOptions {
  std::size_t kill_at_pct = 40;     ///< SIGKILL b0 at this % of the run
  std::size_t restart_at_pct = 70;  ///< restart b0 at this % of the run
  bool kill_term = false;           ///< SIGTERM (graceful drain) instead of SIGKILL
  std::size_t warm_limit = 0;       ///< >0: peer-warm after autoscale spawns/rejoins
  double wave_peak_qps = 0.0;       ///< >0: half-sine arrival wave, else closed loop
  bool churn = false;               ///< unique out-of-coverage alpha per request
  bool autoscale = false;
  std::uint64_t autoscale_ms = 50;  ///< controller sampling cadence
  AutoscalerOptions autoscaler;     ///< min_replicas is overwritten with the floor
  WireMode wire = WireMode::kAuto;  ///< client transport (docs/WIRE.md)
  // Chaos mode (docs/CHAOS.md).  Non-empty scenario = spawn the fault proxy
  // and route every backend connection through it.
  std::string chaos_scenario;
  std::string chaos_proxy_path = "./pglb_chaos";
  std::uint64_t chaos_seed = 1;
  bool collect_responses = false;  ///< fill LoadReport::responses (--plans-out)
};

/// The spawned pglb_chaos proxy: per-route listener ports plus the control
/// endpoint answering "metrics".
struct ChaosChild {
  pid_t pid = -1;
  std::vector<std::uint16_t> ports;
  std::uint16_t control_port = 0;
};

ChaosChild spawn_chaos(const RouterRunOptions& run,
                       const std::vector<std::uint16_t>& targets,
                       const std::string& port_dir) {
  // Stale port files from a previous run in a reused dir would win the wait
  // below; clear them before the fork.
  const std::string control_file = port_dir + "/chaos-ctl.port";
  std::remove(control_file.c_str());
  std::string csv;
  for (std::size_t k = 0; k < targets.size(); ++k) {
    std::remove((port_dir + "/chaos-r" + std::to_string(k) + ".port").c_str());
    if (k > 0) csv.push_back(',');
    csv += std::to_string(targets[k]);
  }
  const pid_t pid = fork();
  if (pid < 0) throw std::runtime_error(std::string("fork: ") + std::strerror(errno));
  if (pid == 0) {
    std::vector<std::string> args = {run.chaos_proxy_path,
                                     "--targets=" + csv,
                                     "--port-dir=" + port_dir,
                                     "--control-port-file=" + control_file,
                                     "--scenario=" + run.chaos_scenario,
                                     "--seed=" + std::to_string(run.chaos_seed)};
    std::vector<char*> argv_child;
    argv_child.reserve(args.size() + 1);
    for (std::string& arg : args) argv_child.push_back(arg.data());
    argv_child.push_back(nullptr);
    execv(run.chaos_proxy_path.c_str(), argv_child.data());
    std::perror("execv pglb_chaos");
    _exit(127);
  }
  ChaosChild child;
  child.pid = pid;
  for (std::size_t k = 0; k < targets.size(); ++k) {
    child.ports.push_back(wait_port_file(
        port_dir + "/chaos-r" + std::to_string(k) + ".port", 10'000));
  }
  child.control_port = wait_port_file(control_file, 10'000);
  return child;
}

/// One round-trip on the chaos control endpoint: "metrics" -> one JSON line.
std::string chaos_metrics(std::uint16_t control_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(control_port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const char command[] = "metrics\n";
  (void)!::write(fd, command, sizeof(command) - 1);
  std::string line;
  char byte = 0;
  while (::read(fd, &byte, 1) == 1 && byte != '\n') line.push_back(byte);
  ::close(fd);
  return line;
}

/// Route the mix through an in-process fleet Router over K spawned backends.
/// Backend 0 is SIGKILLed / restarted on the configured schedule — the
/// router must absorb both transitions with typed responses only.
LoadReport run_against_router(SpawnOptions spawn_options, std::size_t requests,
                              int threads, std::size_t distinct,
                              std::uint64_t timeout_ms, std::size_t fleet_size,
                              std::uint16_t base_port, std::uint64_t hedge_ms,
                              const RouterRunOptions& run) {
  if (base_port == 0) {
    spawn_options.port_dir = make_port_dir();
    std::cerr << "loadgen: port-dir " << spawn_options.port_dir << "\n";
  }
  const auto fixed_port = [&](std::size_t slot,
                              std::uint16_t current) -> std::uint16_t {
    if (base_port == 0) return 0;  // ephemeral: respawn picks a fresh port
    return current != 0 ? current
                        : static_cast<std::uint16_t>(base_port + slot);
  };
  std::vector<ServeChild> children;
  ChaosChild chaos;
  const auto kill_children = [&] {
    for (ServeChild& child : children) {
      if (child.pid > 0) kill(child.pid, SIGKILL);
    }
    if (chaos.pid > 0) kill(chaos.pid, SIGKILL);
    for (ServeChild& child : children) {
      int status = 0;
      if (child.pid > 0) waitpid(child.pid, &status, 0);
      child.pid = -1;
    }
    if (chaos.pid > 0) {
      int status = 0;
      waitpid(chaos.pid, &status, 0);
      chaos.pid = -1;
    }
  };
  try {
    for (std::size_t k = 0; k < fleet_size; ++k) {
      children.push_back(spawn_serve(spawn_options, fixed_port(k, 0),
                                     "b" + std::to_string(k)));
    }
    for (std::size_t k = 0; k < fleet_size; ++k) {
      wait_serve_ready(children[k], spawn_options, "b" + std::to_string(k),
                       30'000);
    }

    // Chaos interposition: spawn the fault proxy over the live replica ports
    // and hand the router the PROXY ports instead.  Scenario windows run on
    // the proxy's clock, which starts here — a few ms before the first
    // request, so from:<ms> offsets are effectively run-relative.
    std::vector<std::uint16_t> backend_ports;
    for (const ServeChild& child : children) backend_ports.push_back(child.port);
    if (!run.chaos_scenario.empty()) {
      if (spawn_options.port_dir.empty()) {
        spawn_options.port_dir = make_port_dir();
      }
      chaos = spawn_chaos(run, backend_ports, spawn_options.port_dir);
      backend_ports = chaos.ports;
      std::cerr << "loadgen: chaos proxy up (control port "
                << chaos.control_port << ")\n";
    }

    RouterOptions options;
    options.hedge_delay_ms = hedge_ms;
    options.probe_interval_ms = 100;
    Registry router_metrics;
    auto router = std::make_unique<Router>(options, &router_metrics);
    // Kept so respawns onto fresh ephemeral ports can re-point the existing
    // backend (set_port) without disturbing its fleet slot.
    std::vector<std::shared_ptr<TcpBackend>> tcp_backends;
    for (std::size_t k = 0; k < fleet_size; ++k) {
      tcp_backends.push_back(
          std::make_shared<TcpBackend>("b" + std::to_string(k),
                                       backend_ports[k], "127.0.0.1", run.wire));
      router->add_backend(tcp_backends.back());
    }
    router->start();

    LoadReport report;
    report.latencies_s.resize(requests);
    if (run.collect_responses) report.responses.resize(requests);
    std::atomic<std::size_t> failed{0}, degraded{0}, timeouts{0}, overloaded{0};
    std::atomic<bool> first_error{false};
    std::atomic<std::size_t> next{0};
    // A percentage outside (0, 100) maps to `requests`, which no request
    // index ever equals — the event simply never fires.
    const std::size_t kill_at =
        run.kill_at_pct > 0 && run.kill_at_pct < 100
            ? requests * run.kill_at_pct / 100
            : requests;
    const std::size_t restart_at =
        run.restart_at_pct > 0 && run.restart_at_pct < 100
            ? requests * run.restart_at_pct / 100
            : requests;
    std::mutex fleet_mutex;  // guards `children` across kill/restart/autoscale

    // Diurnal wave: open-loop send times along a half-sine peaking at
    // wave_peak_qps mid-run, floored at 5% of peak so the tail still drains.
    std::vector<double> send_at;
    if (run.wave_peak_qps > 0.0) {
      send_at.resize(requests);
      constexpr double kPi = 3.14159265358979323846;
      double t = 0.0;
      for (std::size_t i = 0; i < requests; ++i) {
        const double phase =
            kPi * (static_cast<double>(i) + 0.5) / static_cast<double>(requests);
        const double rate = run.wave_peak_qps * std::max(0.05, std::sin(phase));
        t += 1.0 / rate;
        send_at[i] = t;
      }
    }

    const Stopwatch wall;

    // Autoscale controller: sample -> decide -> actuate, the same loop
    // pglb_router runs, scoped to this in-process fleet.
    std::unique_ptr<Autoscaler> autoscaler;
    std::mutex as_mutex;
    std::condition_variable as_cv;
    bool as_stop = false;
    std::thread controller;
    if (run.autoscale) {
      AutoscalerOptions as_options = run.autoscaler;
      as_options.min_replicas = fleet_size;
      autoscaler = std::make_unique<Autoscaler>(as_options, &router_metrics);
      controller = std::thread([&] {
        std::unique_lock<std::mutex> lock(as_mutex);
        while (!as_stop) {
          as_cv.wait_for(lock, std::chrono::milliseconds(run.autoscale_ms),
                         [&] { return as_stop; });
          if (as_stop) return;
          lock.unlock();
          const FleetSample sample =
              sample_fleet(router->fleet(), router_metrics);
          const ScaleDecision decision = autoscaler->decide(sample);
          if (const auto* up = std::get_if<ScaleUp>(&decision)) {
            std::lock_guard<std::mutex> fleet_lock(fleet_mutex);
            // Rejoin a drained slot (same port, same keys rendezvous back)
            // before renting a fresh one on the next port.
            std::size_t rejoin = children.size();
            for (std::size_t k = 0; k < children.size(); ++k) {
              if (children[k].pid < 0 &&
                  router->fleet().status(k).state == BackendState::kDraining) {
                rejoin = k;
                break;
              }
            }
            try {
              if (rejoin < children.size()) {
                const std::string tag = "b" + std::to_string(rejoin);
                children[rejoin] = spawn_serve(
                    spawn_options, fixed_port(rejoin, children[rejoin].port),
                    tag);
                wait_serve_ready(children[rejoin], spawn_options, tag, 30'000);
                // The respawn may land on a fresh ephemeral port; re-point
                // the existing backend (same name, same rendezvous keys).
                tcp_backends[rejoin]->set_port(children[rejoin].port);
                router->fleet().set_draining(rejoin, false);
                router->fleet().record_success(rejoin);
                std::cerr << "loadgen: autoscale: scale-up b" << rejoin
                          << " (rejoin)\n";
                if (run.warm_limit > 0) {
                  WarmingOptions warm_options;
                  warm_options.per_backend_limit = run.warm_limit;
                  warm_options.max_prefetch = run.warm_limit;
                  const WarmReport warm = warm_replica(
                      router->fleet(), rejoin, warm_options, &router_metrics);
                  autoscaler->record_warming(warm.keys_owned, warm.keys_warmed);
                }
              } else {
                const std::string tag = "b" + std::to_string(children.size());
                children.push_back(spawn_serve(
                    spawn_options, fixed_port(children.size(), 0), tag));
                wait_serve_ready(children.back(), spawn_options, tag, 30'000);
                const std::string name = "b" + std::to_string(children.size() - 1);
                tcp_backends.push_back(std::make_shared<TcpBackend>(
                    name, children.back().port, "127.0.0.1", run.wire));
                router->add_backend(tcp_backends.back(), up->weight);
                std::cerr << "loadgen: autoscale: scale-up " << name << " ("
                          << up->spec.name << ")\n";
                if (run.warm_limit > 0) {
                  WarmingOptions warm_options;
                  warm_options.per_backend_limit = run.warm_limit;
                  warm_options.max_prefetch = run.warm_limit;
                  const WarmReport warm =
                      warm_replica(router->fleet(), tcp_backends.size() - 1,
                                   warm_options, &router_metrics);
                  autoscaler->record_warming(warm.keys_owned, warm.keys_warmed);
                }
              }
            } catch (const std::exception& e) {
              std::cerr << "loadgen: autoscale: scale-up failed: " << e.what()
                        << "\n";
            }
          } else if (const auto* drain = std::get_if<DrainReplica>(&decision)) {
            std::lock_guard<std::mutex> fleet_lock(fleet_mutex);
            if (drain->index < children.size() &&
                children[drain->index].pid > 0) {
              router->fleet().set_draining(drain->index, true);
              kill(children[drain->index].pid, SIGTERM);
              int status = 0;
              waitpid(children[drain->index].pid, &status, 0);
              children[drain->index].pid = -1;
              std::cerr << "loadgen: autoscale: drained " << drain->backend
                        << "\n";
            }
          }
          lock.lock();
        }
      });
    }
    std::vector<std::thread> clients;
    for (int t = 0; t < threads; ++t) {
      clients.emplace_back([&] {
        while (true) {
          const std::size_t i = next.fetch_add(1);
          if (i >= requests) return;
          if (i == kill_at && fleet_size > 1) {
            // Default: hard failure, not a drain — SIGKILL mid-connection.
            // The router sees BackendError, marks b0 down, and fails over.
            // --kill-mode=term sends SIGTERM instead: the graceful drain,
            // which lets a --snapshot-dir backend save its warm state.
            std::lock_guard<std::mutex> lock(fleet_mutex);
            kill(children[0].pid, run.kill_term ? SIGTERM : SIGKILL);
            int status = 0;
            waitpid(children[0].pid, &status, 0);
            children[0].pid = -1;
            std::cerr << "loadgen: " << (run.kill_term ? "terminated" : "killed")
                      << " backend b0 at request " << i << "\n";
          }
          if (i == restart_at && fleet_size > 1) {
            std::lock_guard<std::mutex> lock(fleet_mutex);
            if (children[0].pid < 0) {
              children[0] = spawn_serve(spawn_options,
                                        fixed_port(0, children[0].port), "b0");
              wait_serve_ready(children[0], spawn_options, "b0", 30'000);
              // A fresh ephemeral port means the router's b0 must be
              // re-pointed before its prober can see the replica again.
              tcp_backends[0]->set_port(children[0].port);
              report.b0_restarted = true;
              std::cerr << "loadgen: restarted backend b0 at request " << i << "\n";
            }
          }
          if (!send_at.empty()) {
            // Open-loop pacing: hold this slot until the wave schedule says
            // request i arrives.
            for (;;) {
              const double remain = send_at[i] - wall.seconds();
              if (remain <= 0.0) break;
              std::this_thread::sleep_for(
                  std::chrono::duration<double>(std::min(remain, 0.005)));
            }
          }
          PlanRequest request = request_for(i % distinct, i);
          if (run.churn) {
            // Unique alpha spaced beyond ProxySuite::kCoverageMargin from
            // every other request's: each is a guaranteed coverage miss, so
            // the backend generates and profiles a fresh proxy — sustained
            // planning work no cache can absorb.
            request.alpha = 3.0 + 2.0 * ProxySuite::kCoverageMargin *
                                      static_cast<double>(i + 1);
          }
          if (timeout_ms > 0) request.timeout_ms = timeout_ms;
          const std::string line = serialize_request(request);
          const Stopwatch timer;
          const std::string response_line = router->route(line);
          report.latencies_s[i] = timer.seconds();
          if (run.collect_responses) report.responses[i] = response_line;
          const PlanResponse response = parse_plan_response(response_line);
          tally_response(response, response_line, failed, degraded, timeouts,
                         overloaded, first_error);
        }
      });
    }
    for (std::thread& client : clients) client.join();
    report.wall_seconds = wall.seconds();
    report.failed = failed.load();
    report.degraded = degraded.load();
    report.timeouts = timeouts.load();
    report.overloaded = overloaded.load();

    if (autoscaler) {
      // Convergence: the wave has passed; give the controller time to drain
      // the extra replicas back to the floor before judging the run.
      const Stopwatch settle;
      while (settle.seconds() < 20.0) {
        if (static_cast<std::size_t>(router_metrics.gauge(
                "autoscale.replicas")) <= fleet_size) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      {
        std::lock_guard<std::mutex> lock(as_mutex);
        as_stop = true;
      }
      as_cv.notify_all();
      controller.join();
      report.autoscaled = true;
      report.scale_ups = router_metrics.counter("autoscale.scale_ups");
      report.drains = router_metrics.counter("autoscale.drains");
      report.final_replicas =
          static_cast<std::size_t>(router_metrics.gauge("autoscale.replicas"));
      report.floor_replicas = fleet_size;
      const JsonValue status = parse_json(autoscaler->status_json());
      if (const JsonValue* pareto = status.find("pareto")) {
        if (const JsonValue* frontier = pareto->find("frontier")) {
          report.frontier_size = frontier->as_array().size();
        }
      }
    }

    // Per-backend routing counts (router side) and cache stats (backend
    // side, via a metrics request — a restarted backend reports its fresh
    // cache, which is the honest number).
    for (std::size_t k = 0; k < children.size(); ++k) {
      LoadReport::BackendReport backend;
      backend.name = "b" + std::to_string(k);
      backend.routed = router_metrics.counter("fleet." + backend.name + ".routed");
      backend.alive = children[k].pid > 0;
      if (backend.alive) {
        try {
          auto future = router->fleet().backend(k)->submit(
              R"({"type":"metrics","id":"loadgen-final"})");
          const JsonValue metrics = parse_json(future.get());
          if (const JsonValue* cache = metrics.find("cache")) {
            if (const JsonValue* v = cache->find("hits")) {
              backend.cache_hits = v->as_number();
            }
            if (const JsonValue* v = cache->find("misses")) {
              backend.cache_misses = v->as_number();
            }
          }
        } catch (const std::exception&) {
          backend.alive = false;
        }
      }
      report.cache_hits += backend.cache_hits;
      report.cache_misses += backend.cache_misses;
      report.backends.push_back(std::move(backend));
    }
    const double cache_total = report.cache_hits + report.cache_misses;
    report.cache_hit_rate = cache_total > 0.0 ? report.cache_hits / cache_total : 0.0;
    report.route_buckets = router_metrics.stage_buckets("router.route");
    report.service_counters = router_metrics.counters();

    // The proxy's counters are final once the last response has been
    // harvested; grab them while the control endpoint is still up.
    if (chaos.pid > 0) report.chaos_metrics_json = chaos_metrics(chaos.control_port);

    router->stop();
    // Close the persistent connections BEFORE reaping: a backend blocked in
    // serve_stream needs the peer to disconnect to reach its drain path.
    router.reset();
    // Graceful this time: SIGTERM and reap, the drain contract under test in
    // the smoke runs.  The chaos proxy goes down LAST so the backends' drain
    // traffic still flows through it.
    for (ServeChild& child : children) {
      if (child.pid > 0) kill(child.pid, SIGTERM);
    }
    for (ServeChild& child : children) {
      int status = 0;
      if (child.pid > 0) waitpid(child.pid, &status, 0);
      child.pid = -1;
    }
    if (chaos.pid > 0) {
      kill(chaos.pid, SIGTERM);
      int status = 0;
      waitpid(chaos.pid, &status, 0);
      chaos.pid = -1;
    }
    return report;
  } catch (...) {
    kill_children();
    throw;
  }
}

/// Fleet-mode mutate driver: spawn K backends, route the stream through the
/// Router (delta requests rendezvous on "dyn|<base>", so the whole stream
/// pins to one replica), and sum profile_runs across every backend's metrics
/// response.  No kill schedule, no hedging: a hedged or failed-over delta
/// would land on a replica that has never seen the base and fail typed — the
/// drill wants the deterministic stream, not the failover drill.
MutateReport run_mutate_router(SpawnOptions spawn_options,
                               std::size_t fleet_size, std::uint16_t base_port,
                               WireMode wire, const MutateOptions& mutate) {
  if (base_port == 0) {
    spawn_options.port_dir = make_port_dir();
    std::cerr << "loadgen: port-dir " << spawn_options.port_dir << "\n";
  }
  std::vector<ServeChild> children;
  const auto kill_children = [&] {
    for (ServeChild& child : children) {
      if (child.pid > 0) kill(child.pid, SIGKILL);
    }
    for (ServeChild& child : children) {
      int status = 0;
      if (child.pid > 0) waitpid(child.pid, &status, 0);
      child.pid = -1;
    }
  };
  try {
    for (std::size_t k = 0; k < fleet_size; ++k) {
      const std::uint16_t port =
          base_port == 0 ? 0 : static_cast<std::uint16_t>(base_port + k);
      children.push_back(spawn_serve(spawn_options, port, "b" + std::to_string(k)));
    }
    for (std::size_t k = 0; k < fleet_size; ++k) {
      wait_serve_ready(children[k], spawn_options, "b" + std::to_string(k),
                       30'000);
    }

    RouterOptions options;
    options.hedge_delay_ms = 0;  // deltas are stateful; never hedge them
    options.probe_interval_ms = 100;
    Registry router_metrics;
    auto router = std::make_unique<Router>(options, &router_metrics);
    for (std::size_t k = 0; k < fleet_size; ++k) {
      router->add_backend(std::make_shared<TcpBackend>(
          "b" + std::to_string(k), children[k].port, "127.0.0.1", wire));
    }
    router->start();

    MutateReport report = run_mutate(
        [&](const std::string& line) { return router->route(line); }, mutate);

    // Aggregate CCR cells: each backend's service counters carry its own
    // profile_runs; the stream pinned to one replica but the scratch base may
    // rendezvous elsewhere, so sum the fleet.
    for (std::size_t k = 0; k < fleet_size; ++k) {
      try {
        auto future = router->fleet().backend(k)->submit(
            R"({"type":"metrics","id":"mutate-final"})");
        const JsonValue metrics = parse_json(future.get());
        if (const JsonValue* counters = metrics.find("counters")) {
          if (const JsonValue* v = counters->find("profile_runs")) {
            report.profile_cells +=
                static_cast<std::uint64_t>(v->as_number());
          }
        }
      } catch (const std::exception& e) {
        std::cerr << "loadgen: metrics harvest from b" << k
                  << " failed: " << e.what() << "\n";
      }
    }

    router->stop();
    router.reset();  // disconnect before the graceful reap
    for (ServeChild& child : children) {
      if (child.pid > 0) kill(child.pid, SIGTERM);
    }
    for (ServeChild& child : children) {
      int status = 0;
      if (child.pid > 0) waitpid(child.pid, &status, 0);
      child.pid = -1;
    }
    return report;
  } catch (...) {
    kill_children();
    throw;
  }
}
#endif

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    const auto requests = static_cast<std::size_t>(cli.get_int("requests", 1000));
    const int threads = static_cast<int>(cli.get_int("threads", 4));
    const auto distinct =
        static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("distinct", 8)));
    const std::string server_path = cli.get_string("server", "");
    const auto timeout_ms = static_cast<std::uint64_t>(cli.get_int("timeout-ms", 0));
    const bool shed = cli.get_bool("shed", false);
    const auto fleet_size = static_cast<std::size_t>(cli.get_int("router", 0));
    // 0 = ephemeral backend ports via the port-file handshake (default).
    const auto base_port = static_cast<std::uint16_t>(cli.get_int("base-port", 0));
    const auto hedge_ms = static_cast<std::uint64_t>(cli.get_int("hedge-ms", 0));

    RouterRunOptions run;
    run.wire = wire_mode_from_name(cli.get_string("wire", "auto"));
    run.kill_at_pct = static_cast<std::size_t>(cli.get_int("kill-at", 40));
    run.restart_at_pct = static_cast<std::size_t>(cli.get_int("restart-at", 70));
    const std::string kill_mode = cli.get_string("kill-mode", "kill");
    if (kill_mode != "kill" && kill_mode != "term") {
      std::cerr << "pglb_loadgen: --kill-mode must be kill or term\n";
      return 2;
    }
    run.kill_term = kill_mode == "term";
    run.warm_limit = static_cast<std::size_t>(cli.get_int("warm-limit", 0));
    const std::string snapshot_dir = cli.get_string("snapshot-dir", "");
    const auto snapshot_interval_ms =
        static_cast<std::uint64_t>(cli.get_int("snapshot-interval-ms", 0));
    run.wave_peak_qps = cli.get_double("wave", 0.0);
    run.churn = cli.get_bool("churn", false);
    run.autoscale = cli.get_bool("autoscale", false);
    run.autoscale_ms = static_cast<std::uint64_t>(cli.get_int("autoscale-ms", 50));
    run.autoscaler.max_replicas =
        static_cast<std::size_t>(cli.get_int("max-replicas", 4));
    run.autoscaler.policy.policy =
        scale_policy_from_name(cli.get_string("scale-policy", "cost"));
    run.autoscaler.pressure_threshold = cli.get_double("pressure", 2.0);
    run.autoscaler.idle_threshold = cli.get_double("idle", 0.25);
    run.autoscaler.sustain_samples =
        static_cast<std::uint32_t>(cli.get_int("sustain", 2));
    run.autoscaler.idle_samples =
        static_cast<std::uint32_t>(cli.get_int("idle-samples", 5));
    run.autoscaler.cooldown_ms =
        static_cast<std::uint64_t>(cli.get_int("cooldown-ms", 500));
    run.chaos_scenario = cli.get_string("chaos", "");
    run.chaos_proxy_path = cli.get_string("chaos-proxy", "./pglb_chaos");
    run.chaos_seed = static_cast<std::uint64_t>(cli.get_int("chaos-seed", 1));
    const std::string plans_out = cli.get_string("plans-out", "");
    run.collect_responses = !plans_out.empty();

    MutateOptions mutate;
    mutate.batches = static_cast<std::size_t>(cli.get_int("mutate", 0));
    mutate.edits = static_cast<std::size_t>(cli.get_int("mutate-edits", 8));
    mutate.base_vertices =
        static_cast<VertexId>(cli.get_int("mutate-vertices", 2048));
    mutate.seed = static_cast<std::uint64_t>(cli.get_int("mutate-seed", 42));
    mutate.base = cli.get_string("mutate-base", "dyn0");
    const std::string reprofile_name = cli.get_string("reprofile", "");
    if (!reprofile_name.empty()) {
      const auto mode = reprofile_mode_from_string(reprofile_name);
      if (!mode) {
        std::cerr << "pglb_loadgen: --reprofile must be auto, force, or never\n";
        return 2;
      }
      mutate.reprofile = *mode;
    }
    const double drift_churn = cli.get_double("drift-churn", -1.0);
    if (drift_churn >= 0.0) mutate.drift_churn = drift_churn;
    const double drift_hist = cli.get_double("drift-hist", -1.0);
    if (drift_hist >= 0.0) mutate.drift_hist = drift_hist;
    const std::string algorithm = cli.get_string("algorithm", "");
    if (!algorithm.empty()) mutate.algorithm = partitioner_from_string(algorithm);
    if (!run.chaos_scenario.empty() && fleet_size == 0) {
      std::cerr << "pglb_loadgen: --chaos needs fleet mode (--router=K)\n";
      return 2;
    }
    if (!run.chaos_scenario.empty() && run.autoscale) {
      // Autoscaled replicas spawn on fresh ports the proxy has no listener
      // for; they would connect around the chaos layer and void the drill.
      std::cerr << "pglb_loadgen: --chaos and --autoscale are incompatible\n";
      return 2;
    }

    PlannerOptions planner_options;
    planner_options.proxy_scale = cli.get_double("scale", 1.0 / 256.0);
    planner_options.cache_capacity = static_cast<std::size_t>(cli.get_int("cache", 64));

    ServerOptions server_options;
    server_options.threads = threads;
    server_options.queue_capacity = static_cast<std::size_t>(cli.get_int("queue", 256));
    server_options.shed_when_full = shed;

    const auto unused = cli.unused_keys();
    if (!unused.empty()) {
      std::cerr << "pglb_loadgen: unknown flag --" << unused.front() << "\n";
      return 2;
    }

    if (mutate.batches > 0) {
      if (!run.chaos_scenario.empty() || run.autoscale) {
        std::cerr << "pglb_loadgen: --mutate is incompatible with --chaos and "
                     "--autoscale\n";
        return 2;
      }
      MutateReport m;
      if (fleet_size > 0) {
#ifdef __unix__
        if (server_path.empty()) {
          std::cerr << "pglb_loadgen: --router needs --server=PATH to "
                       "pglb_serve\n";
          return 2;
        }
        SpawnOptions spawn_options;
        spawn_options.serve_path = server_path;
        spawn_options.threads = threads;
        spawn_options.scale = planner_options.proxy_scale;
        spawn_options.queue = server_options.queue_capacity;
        spawn_options.snapshot_dir = snapshot_dir;
        spawn_options.snapshot_interval_ms = snapshot_interval_ms;
        m = run_mutate_router(spawn_options, fleet_size, base_port, run.wire,
                              mutate);
#else
        std::cerr << "pglb_loadgen: --router mode is only available on POSIX "
                     "builds\n";
        return 2;
#endif
      } else if (!server_path.empty()) {
        std::cerr << "pglb_loadgen: --mutate runs in-process or with "
                     "--router=K, not --server pipes\n";
        return 2;
      } else {
        m = run_mutate_in_process(mutate, planner_options, server_options);
      }

      Table table({"metric", "value"});
      table.row().cell("mutate batches").cell(
          static_cast<std::uint64_t>(mutate.batches));
      table.row().cell("edits per batch").cell(
          static_cast<std::uint64_t>(mutate.edits));
      table.row().cell("base vertices").cell(
          static_cast<std::uint64_t>(mutate.base_vertices));
      table.row().cell("responses").cell(
          static_cast<std::uint64_t>(m.responses.size()));
      table.row().cell("failed").cell(static_cast<std::uint64_t>(m.failed));
      table.print(std::cout);

      // Parseable gate lines (the dynamic_drill signal).
      std::cout << "\nmutate reprofiles: " << m.reprofiles << "\n";
      std::cout << "mutate profile cells: " << m.profile_cells << "\n";
      std::cout << "mutate equivalence: "
                << (m.equivalence_ok ? "ok" : "MISMATCH") << "\n";
      if (!plans_out.empty()) {
        std::ofstream plans(plans_out, std::ios::trunc);
        for (const std::string& line : m.responses) plans << line << "\n";
        if (!plans) {
          std::cerr << "pglb_loadgen: cannot write " << plans_out << "\n";
          return 1;
        }
        std::cout << "plans written: " << plans_out << " ("
                  << m.responses.size() << " lines)\n";
      }
      if (m.failed > 0 || !m.equivalence_ok) {
        std::cerr << "pglb_loadgen: mutate run failed: "
                  << (m.detail.empty() ? "unknown" : m.detail) << "\n";
        return 1;
      }
      return 0;
    }

    const auto registry_before = global_registry().counters();

    LoadReport report;
    if (fleet_size > 0) {
#ifdef __unix__
      if (server_path.empty()) {
        std::cerr << "pglb_loadgen: --router needs --server=PATH to pglb_serve\n";
        return 2;
      }
      SpawnOptions spawn_options;
      spawn_options.serve_path = server_path;
      spawn_options.threads = threads;
      spawn_options.scale = planner_options.proxy_scale;
      spawn_options.queue = server_options.queue_capacity;
      spawn_options.snapshot_dir = snapshot_dir;
      spawn_options.snapshot_interval_ms = snapshot_interval_ms;
      report = run_against_router(spawn_options, requests, threads, distinct,
                                  timeout_ms, fleet_size, base_port, hedge_ms,
                                  run);
#else
      std::cerr << "pglb_loadgen: --router mode is only available on POSIX builds\n";
      return 2;
#endif
    } else if (server_path.empty()) {
      report = run_in_process(requests, threads, distinct, timeout_ms,
                              planner_options, server_options);
    } else {
#ifdef __unix__
      report = run_against_server(server_path, requests, threads, distinct,
                                  planner_options.proxy_scale,
                                  server_options.queue_capacity, timeout_ms, shed);
#else
      std::cerr << "pglb_loadgen: --server mode is only available on POSIX builds\n";
      return 2;
#endif
    }

    std::vector<double> sorted = report.latencies_s;
    std::sort(sorted.begin(), sorted.end());
    const double throughput =
        report.wall_seconds > 0.0 ? static_cast<double>(requests) / report.wall_seconds
                                  : 0.0;

    Table table({"metric", "value"});
    table.row().cell("requests").cell(static_cast<std::uint64_t>(requests));
    table.row().cell("failed").cell(static_cast<std::uint64_t>(report.failed));
    table.row().cell("degraded").cell(static_cast<std::uint64_t>(report.degraded));
    table.row().cell("timeouts").cell(static_cast<std::uint64_t>(report.timeouts));
    table.row().cell("overloaded").cell(static_cast<std::uint64_t>(report.overloaded));
    table.row().cell("wall seconds").cell(report.wall_seconds, 3);
    table.row().cell("throughput req/s").cell(throughput, 1);
    table.row().cell("p50 latency ms").cell(percentile(sorted, 0.50) * 1e3, 3);
    table.row().cell("p90 latency ms").cell(percentile(sorted, 0.90) * 1e3, 3);
    table.row().cell("p99 latency ms").cell(percentile(sorted, 0.99) * 1e3, 3);
    table.row().cell("cache hits").cell(report.cache_hits, 0);
    table.row().cell("cache misses").cell(report.cache_misses, 0);
    table.row().cell("cache hit rate").cell(format_percent(report.cache_hit_rate));
    if (report.autoscaled) {
      table.row().cell("scale-ups").cell(report.scale_ups);
      table.row().cell("drains").cell(report.drains);
      table.row().cell("final replicas").cell(
          static_cast<std::uint64_t>(report.final_replicas));
      table.row().cell("pareto frontier").cell(
          static_cast<std::uint64_t>(report.frontier_size));
    }
    table.print(std::cout);

    const auto deltas = counter_deltas(registry_before, global_registry().counters());
    if (!deltas.empty() || !report.service_counters.empty()) {
      Table counters({"counter", "delta"});
      std::set<std::string> listed;
      for (const auto& [name, value] : deltas) {
        counters.row().cell(name).cell(value);
        listed.insert(name);
      }
      for (const auto& [name, value] : report.service_counters) {
        // Flat legacy names get the "service." prefix; dotted names
        // (service.timeouts, planner.degraded) are already namespaced.
        const std::string label =
            name.find('.') != std::string::npos ? name : "service." + name;
        // Resilience counters are mirrored into the global registry; skip
        // the service-local copy so each counter appears once.
        if (!listed.insert(label).second) continue;
        counters.row().cell(label).cell(value);
      }
      std::cout << "\n";
      counters.print(std::cout);
    }

    if (!report.backends.empty()) {
      Table fleet({"backend", "routed", "hits", "misses", "hit rate", "state"});
      for (const LoadReport::BackendReport& backend : report.backends) {
        const double total = backend.cache_hits + backend.cache_misses;
        fleet.row()
            .cell(backend.name)
            .cell(backend.routed)
            .cell(backend.cache_hits, 0)
            .cell(backend.cache_misses, 0)
            .cell(format_percent(total > 0.0 ? backend.cache_hits / total : 0.0))
            .cell(backend.alive ? "up" : "down");
      }
      std::cout << "\n";
      fleet.print(std::cout);
    }
    if (report.b0_restarted && !report.backends.empty()) {
      // Parseable signal for the warm-restart gate: b0's counters reset at
      // the restart, so these hits/misses cover only its post-restart life.
      // A warm restart (restored snapshot) hits where a cold one misses.
      const LoadReport::BackendReport& b0 = report.backends.front();
      const double total = b0.cache_hits + b0.cache_misses;
      std::cout << "\npost-restart b0 cache: hits="
                << static_cast<std::uint64_t>(b0.cache_hits)
                << " misses=" << static_cast<std::uint64_t>(b0.cache_misses)
                << " hit_rate="
                << format_percent(total > 0.0 ? b0.cache_hits / total : 0.0)
                << "\n";
    }
    if (!report.route_buckets.empty()) {
      // Full route-latency distribution (obs satellite): occupied geometric
      // buckets as floor_us:count pairs, ascending.
      std::cout << "\nroute latency buckets:";
      for (const LatencyBucket& bucket : report.route_buckets) {
        std::cout << ' ' << static_cast<std::uint64_t>(bucket.floor_us) << ':'
                  << bucket.count;
      }
      std::cout << "\n";
    }

    if (!run.chaos_scenario.empty()) {
      // Parseable chaos summary (the chaos_drill gate's signal): one line per
      // rule with its conns/events counters, then the typed-failure tally.
      std::cout << "\nchaos scenario seed=" << run.chaos_seed << "\n";
      if (report.chaos_metrics_json.empty()) {
        std::cerr << "pglb_loadgen: chaos control endpoint unreachable\n";
        return 1;
      }
      const JsonValue chaos = parse_json(report.chaos_metrics_json);
      if (const JsonValue* rules = chaos.find("rules")) {
        const auto& array = rules->as_array();
        for (std::size_t r = 0; r < array.size(); ++r) {
          std::cout << "chaos rule[" << r << "] "
                    << array[r].find("rule")->as_string() << " conns="
                    << static_cast<std::uint64_t>(
                           array[r].find("conns")->as_number())
                    << " events="
                    << static_cast<std::uint64_t>(
                           array[r].find("events")->as_number())
                    << "\n";
        }
      }
      std::cout << "chaos typed failures: errors=" << report.failed
                << " timeouts=" << report.timeouts
                << " overloaded=" << report.overloaded << "\n";
    }
    if (!plans_out.empty()) {
      std::ofstream plans(plans_out, std::ios::trunc);
      for (const std::string& line : report.responses) plans << line << "\n";
      if (!plans) {
        std::cerr << "pglb_loadgen: cannot write " << plans_out << "\n";
        return 1;
      }
      std::cout << "plans written: " << plans_out << " ("
                << report.responses.size() << " lines)\n";
    }

    if (report.autoscaled) {
      // The convergence gate: the wave must have forced at least one
      // scale-up, the fleet must be back at the floor, and the live Pareto
      // block must be populated.
      if (report.scale_ups == 0 ||
          report.final_replicas > report.floor_replicas ||
          report.frontier_size == 0) {
        std::cerr << "pglb_loadgen: autoscale did not converge (scale_ups="
                  << report.scale_ups << ", final=" << report.final_replicas
                  << "/" << report.floor_replicas
                  << ", frontier=" << report.frontier_size << ")\n";
        return 1;
      }
    }
    return report.failed == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "pglb_loadgen: " << e.what() << "\n";
    return 1;
  }
}
