# Dynamic-planning acceptance gate (docs/DYNAMIC.md): the loadgen mutate
# drill against a 3-replica fleet, plus in-process determinism replays.
#
# Runs (all must exit 0 — pglb_loadgen exits non-zero on ANY non-typed
# failure, client/server live-state desync, or equivalence mismatch):
#   1. fleet, reprofile=auto  — the seeded stream churns ~2% of the base
#      edges, far below the 5% drift threshold, so every update batch must
#      patch + re-cost off the pinned profile (zero re-profiles)
#   2. fleet, reprofile=force — every update batch re-runs CCR profiling
#   3-5. in-process at PGLB_THREADS=1/2/8, reprofile=auto
#
# Asserted:
#   - run 1 reprofiled 0 update batches; run 2 reprofiled all of them
#   - run 2 burned >= 5x the CCR cells (profile_single_machine calls) of
#     run 1 — the "incremental profiles >= 5x fewer cells" gate
#   - every run printed "mutate equivalence: ok": the forced full re-profile
#     of the streamed base is byte-identical (plan portion) and
#     digest-identical (assignment) to a from-scratch base of the mutated
#     graph
#   - response files byte-identical across PGLB_THREADS=1/2/8 AND across
#     fleet-vs-in-process — deterministic replay at any thread count
# Driven by ctest (see CMakeLists.txt in this directory).

function(run_drill out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "drill run failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}\n${err}" PARENT_SCOPE)
endfunction()

# Extract the parseable "mutate <what>: N" gate lines.
function(parse_count text label what out_var)
  if(NOT text MATCHES "mutate ${what}: ([0-9]+)")
    message(FATAL_ERROR "${label} run printed no 'mutate ${what}:' line:\n${text}")
  endif()
  set(${out_var} ${CMAKE_MATCH_1} PARENT_SCOPE)
endfunction()

function(assert_equivalence text label)
  if(NOT text MATCHES "mutate equivalence: ok")
    message(FATAL_ERROR "${label} run failed the equivalence gate:\n${text}")
  endif()
endfunction()

set(batches 20)
set(common_args --mutate=${batches} --mutate-edits=8 --mutate-vertices=2048
    --threads=4 --scale=0.002)
set(fleet_args --router=3 --server=${PGLB_SERVE})

set(auto_plans ${WORKDIR}/dynamic_drill_auto.jsonl)
set(force_plans ${WORKDIR}/dynamic_drill_force.jsonl)
file(REMOVE ${auto_plans} ${force_plans})

# 1. Fleet, auto: drift stays in bounds, so the pinned profile absorbs the
# whole stream.
run_drill(auto_out ${PGLB_LOADGEN} ${common_args} ${fleet_args}
          --plans-out=${auto_plans})
assert_equivalence("${auto_out}" "fleet-auto")
parse_count("${auto_out}" "fleet-auto" "reprofiles" auto_reprofiles)
parse_count("${auto_out}" "fleet-auto" "profile cells" auto_cells)
if(NOT auto_reprofiles EQUAL 0)
  message(FATAL_ERROR "auto run re-profiled ${auto_reprofiles} update batches "
          "(drift should stay under threshold):\n${auto_out}")
endif()

# 2. Fleet, force: every batch re-runs CCR profiling.
run_drill(force_out ${PGLB_LOADGEN} ${common_args} ${fleet_args}
          --reprofile=force --plans-out=${force_plans})
assert_equivalence("${force_out}" "fleet-force")
parse_count("${force_out}" "fleet-force" "reprofiles" force_reprofiles)
parse_count("${force_out}" "fleet-force" "profile cells" force_cells)
if(NOT force_reprofiles EQUAL ${batches})
  message(FATAL_ERROR "force run re-profiled ${force_reprofiles} of "
          "${batches} update batches:\n${force_out}")
endif()

# The headline gate: a stream churning <5% of the edges must cost the
# incremental path >= 5x fewer CCR cells than from-scratch re-profiling.
math(EXPR cells_bound "${force_cells} / 5")
if(auto_cells EQUAL 0 OR auto_cells GREATER ${cells_bound})
  message(FATAL_ERROR "incremental path not >=5x cheaper: auto=${auto_cells} "
          "cells vs force=${force_cells} cells")
endif()
message(STATUS "dynamic drill: auto=${auto_cells} cells, "
        "force=${force_cells} cells (>=5x)")

# 3-5. Determinism: the same auto stream in-process at 1/2/8 planner threads
# must produce byte-identical response files — and match the fleet run too.
file(READ ${auto_plans} fleet_text)
if(fleet_text STREQUAL "")
  message(FATAL_ERROR "fleet-auto run wrote no plans to ${auto_plans}")
endif()
foreach(nthreads 1 2 8)
  set(plans ${WORKDIR}/dynamic_drill_t${nthreads}.jsonl)
  file(REMOVE ${plans})
  run_drill(t_out ${CMAKE_COMMAND} -E env PGLB_THREADS=${nthreads}
            ${PGLB_LOADGEN} ${common_args} --plans-out=${plans})
  assert_equivalence("${t_out}" "threads-${nthreads}")
  file(READ ${plans} t_text)
  if(NOT t_text STREQUAL fleet_text)
    message(FATAL_ERROR "responses diverged at PGLB_THREADS=${nthreads} "
            "(vs the fleet run)")
  endif()
  file(REMOVE ${plans})
endforeach()
message(STATUS "dynamic drill: deterministic at PGLB_THREADS=1/2/8")

file(REMOVE ${auto_plans} ${force_plans})
