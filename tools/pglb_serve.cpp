// pglb_serve — the planning service front-end.  Reads one JSON request per
// line (stdin by default, or a TCP socket with --listen), answers one JSON
// response per line in input order, and exits at EOF.  See docs/SERVICE.md
// for the protocol.  A connection that opens with the wire hello is upgraded
// to the multiplexed binary framing (docs/WIRE.md) unless --wire=line.
//
//   pglb_serve --threads=4 --queue=256 --scale=0.004 < requests.jsonl
//   pglb_serve --listen=7447 --threads=8 --pool-threads=4
//   pglb_serve --listen=0 --port-file=/tmp/run/b0.port   # ephemeral port
//
// --listen=0 binds an OS-chosen ephemeral port; --port-file=PATH publishes
// the chosen port atomically for whoever spawned us (the port-file
// handshake, util/portfile.hpp), so parallel CI runs never fight over a
// fixed port range.
//
// --threads is the number of concurrent request workers; --pool-threads sizes
// the planner's compute pool for proxy generation and profiling fan-out
// (0 = the process-wide pool, PGLB_THREADS env overrides its size).  Plans
// are bit-identical at any thread setting.
//
// A line {"type":"metrics"} returns the metrics registry (request counts,
// per-stage latency percentiles, profile-cache hit rate) without planning.
// --trace-out=FILE records spans for the whole run and writes a Chrome trace
// at EOF (stdin mode) or on SIGINT/SIGTERM (socket mode); see
// docs/OBSERVABILITY.md.
//
// Resilience flags (docs/ROBUSTNESS.md):
//   --default-timeout-ms=N  deadline for requests without their own timeout_ms
//   --shed                  shed with "overloaded" responses instead of
//                           blocking when the queue is at capacity
//
// Transport hardening (docs/CHAOS.md), socket mode only:
//   --handshake-timeout-ms=N  close a connection whose first byte has not
//                             arrived after N ms (slow-loris defense;
//                             default 10000, 0 disables)
//   --idle-timeout-ms=N       reap a connection idle for N ms after its
//                             handshake (default 0 = never)
//   --max-inflight=N          per-connection in-flight frame cap; excess
//                             frames get typed "overloaded" pushback
//                             (default 0 = unlimited)
//
// Durable warm state (docs/PERSIST.md):
//   --snapshot-dir=DIR          lazily restore DIR/warm.snap on boot (a
//                               corrupt or missing snapshot is a logged cold
//                               start, never a crash) and save the profile
//                               cache + time database there on the SIGTERM
//                               drain / EOF path
//   --snapshot-interval-ms=N    additionally save every N ms on a dedicated
//                               timer thread, off the worker pool

#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <thread>

#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "persist/warm_state.hpp"
#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/portfile.hpp"

#ifdef __unix__
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <ext/stdio_filebuf.h>  // libstdc++: iostream over a file descriptor
#endif

using namespace pglb;

namespace {

/// Periodic warm-state saver: a dedicated timer thread (never one of the
/// request workers) that snapshots every `interval_ms` until stopped.
class PeriodicSnapshotter {
 public:
  PeriodicSnapshotter(Planner& planner, ServiceMetrics& metrics, std::string dir,
                      std::uint64_t interval_ms,
                      const dynamic::DeltaPlanner* delta = nullptr)
      : planner_(planner), metrics_(metrics), dir_(std::move(dir)), delta_(delta) {
    if (dir_.empty() || interval_ms == 0) return;
    thread_ = std::thread([this, interval_ms] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                                [this] { return stop_; })) {
        lock.unlock();
        const auto saved = persist::save_warm_snapshot(
            planner_, dir_, &metrics_.registry(), delta_);
        if (!saved.ok) {
          std::cerr << "pglb_serve: periodic snapshot failed: " << saved.error
                    << "\n";
        }
        lock.lock();
      }
    });
  }

  ~PeriodicSnapshotter() { stop(); }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    stop_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  Planner& planner_;
  ServiceMetrics& metrics_;
  std::string dir_;
  const dynamic::DeltaPlanner* delta_;
  std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Boot-time restore: missing snapshot = quiet cold start, corrupt snapshot
/// = logged cold start with persist.snapshot_rejected bumped.
void restore_warm_state(Planner& planner, ServiceMetrics& metrics,
                        const std::string& dir,
                        dynamic::DeltaPlanner* delta = nullptr) {
  if (dir.empty()) return;
  const auto loaded =
      persist::load_warm_snapshot(planner, dir, &metrics.registry(), delta);
  if (loaded.ok) {
    std::cerr << "pglb_serve: restored snapshot generation " << loaded.generation
              << " (" << loaded.cache_entries << " cache entries, "
              << loaded.time_entries << " time entries, " << loaded.dynamic_bases
              << " delta bases, " << loaded.bytes << " bytes)\n";
  } else if (loaded.rejected) {
    std::cerr << "pglb_serve: snapshot rejected (" << loaded.error
              << "); cold start\n";
  }
}

void save_warm_state(Planner& planner, ServiceMetrics& metrics,
                     const std::string& dir,
                     const dynamic::DeltaPlanner* delta = nullptr) {
  if (dir.empty()) return;
  const auto saved =
      persist::save_warm_snapshot(planner, dir, &metrics.registry(), delta);
  if (saved.ok) {
    std::cerr << "pglb_serve: snapshot generation " << saved.generation
              << " written (" << saved.cache_entries << " cache entries, "
              << saved.bytes << " bytes)\n";
  } else {
    std::cerr << "pglb_serve: snapshot save failed: " << saved.error << "\n";
  }
}

#ifdef __unix__
/// Graceful-shutdown state: the handler flips the flag and closes the
/// listener, which makes the blocking accept() fail — the loop then stops
/// accepting and main drains in-flight work before exiting.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_listener_fd = -1;
volatile std::sig_atomic_t g_connection_fd = -1;

extern "C" void handle_stop_signal(int) {
  g_stop = 1;
  const int fd = g_listener_fd;
  if (fd >= 0) {
    g_listener_fd = -1;
    ::close(fd);  // async-signal-safe; unblocks accept()
  }
  // The signal may land on a worker thread, in which case the main thread's
  // blocking read on the active connection is NOT interrupted — shut the
  // connection down (async-signal-safe) so serve_stream sees EOF and the
  // drain path runs no matter which thread took the signal.
  const int conn = g_connection_fd;
  if (conn >= 0) ::shutdown(conn, SHUT_RD);
}

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: accept() must return EINTR/EBADF
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// Accept TCP connections one at a time, running the protocol over each
/// connection until the peer closes it.  `port` 0 binds an OS-chosen
/// ephemeral port; a non-empty `port_file` publishes the bound port for the
/// spawner (the port-file handshake).  Serves until SIGINT or SIGTERM (0) or
/// a fatal listener error (1).
int serve_socket(PlanServer& server, int port, const std::string& port_file) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "pglb_serve: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0 ||
      ::listen(listener, 8) < 0) {
    std::cerr << "pglb_serve: bind/listen on port " << port << ": "
              << std::strerror(errno) << "\n";
    ::close(listener);
    return 1;
  }
  if (port == 0) {
    // Learn which port the kernel picked.
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listener, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) != 0) {
      std::cerr << "pglb_serve: getsockname: " << std::strerror(errno) << "\n";
      ::close(listener);
      return 1;
    }
    port = static_cast<int>(ntohs(bound.sin_port));
  }
  if (!port_file.empty() &&
      !write_port_file(port_file, static_cast<std::uint16_t>(port))) {
    std::cerr << "pglb_serve: cannot publish port to " << port_file << "\n";
    ::close(listener);
    return 1;
  }
  g_listener_fd = listener;
  install_stop_handlers();
  std::cerr << "pglb_serve: listening on 127.0.0.1:" << port << "\n";
  while (true) {
    const int connection = ::accept(listener, nullptr, nullptr);
    if (g_stop) {
      if (connection >= 0) ::close(connection);
      break;
    }
    if (connection < 0) {
      const int error = errno;
      // Retrying every errno unconditionally would busy-spin on fatal ones
      // (EBADF, EINVAL).  Classify instead: EINTR retries immediately,
      // transient resource pressure retries after a breather, anything else
      // is fatal.
      if (error == EINTR) continue;
      if (error == ECONNABORTED || error == EAGAIN || error == EWOULDBLOCK ||
          error == EMFILE || error == ENFILE || error == ENOBUFS ||
          error == ENOMEM) {
        std::cerr << "pglb_serve: accept: " << std::strerror(error)
                  << " (retrying)\n";
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      std::cerr << "pglb_serve: accept: " << std::strerror(error) << "\n";
      g_listener_fd = -1;
      ::close(listener);
      return 1;
    }
    g_connection_fd = connection;
    // serve_fd reads the socket through a deadline-aware streambuf so a peer
    // that never sends its hello (or goes silent mid-session) is reaped by
    // --handshake-timeout-ms / --idle-timeout-ms instead of pinning the
    // accept loop forever.
    __gnu_cxx::stdio_filebuf<char> out_buf(::dup(connection), std::ios::out);
    std::ostream out(&out_buf);
    const std::size_t served = server.serve_fd(connection, out);
    ::close(connection);
    g_connection_fd = -1;
    std::cerr << "pglb_serve: connection closed after " << served << " requests\n";
  }
  // Signal path: the handler already closed the listener; drain the queue so
  // every accepted request gets its response before the process exits.
  std::cerr << "pglb_serve: stop signal received, draining\n";
  server.stop();
  // Clean shutdown: retract the published port so a spawner polling a reused
  // port dir can never adopt this (now dead) port for a future replica.
  if (!port_file.empty()) std::remove(port_file.c_str());
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    PlannerOptions planner_options;
    planner_options.proxy_scale = cli.get_double("scale", 1.0 / 256.0);
    planner_options.proxy_seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
    planner_options.cache_capacity =
        static_cast<std::size_t>(cli.get_int("cache", 64));
    planner_options.threads =
        static_cast<unsigned>(cli.get_int("pool-threads", 0));
    planner_options.default_timeout_ms =
        static_cast<std::uint64_t>(cli.get_int("default-timeout-ms", 0));

    ServerOptions server_options;
    server_options.threads = static_cast<int>(cli.get_int("threads", 4));
    server_options.queue_capacity =
        static_cast<std::size_t>(cli.get_int("queue", 256));
    server_options.shed_when_full = cli.get_bool("shed", false);
    server_options.handshake_timeout_ms =
        static_cast<std::uint64_t>(cli.get_int("handshake-timeout-ms", 10'000));
    server_options.idle_timeout_ms =
        static_cast<std::uint64_t>(cli.get_int("idle-timeout-ms", 0));
    server_options.max_inflight_frames =
        static_cast<std::size_t>(cli.get_int("max-inflight", 0));

    const std::string wire = cli.get_string("wire", "auto");
    if (wire != "auto" && wire != "line") {
      std::cerr << "pglb_serve: --wire must be auto or line\n";
      return 2;
    }
    server_options.allow_wire_upgrade = wire == "auto";

    const bool dump_metrics = cli.get_bool("dump-metrics", false);
    const bool socket_mode = cli.has("listen");
    const int port = static_cast<int>(cli.get_int("listen", 0));
    const std::string port_file = cli.get_string("port-file", "");
    const std::string trace_out = cli.get_string("trace-out", "");
    const std::string snapshot_dir = cli.get_string("snapshot-dir", "");
    const std::uint64_t snapshot_interval_ms =
        static_cast<std::uint64_t>(cli.get_int("snapshot-interval-ms", 0));
    if (!trace_out.empty()) set_tracing_enabled(true);

    const auto unused = cli.unused_keys();
    if (!unused.empty()) {
      std::cerr << "pglb_serve: unknown flag --" << unused.front() << "\n";
      return 2;
    }

    ServiceMetrics metrics;
    Planner planner(planner_options, &metrics);
    // The server owns the delta planner, so it is constructed BEFORE the
    // warm-state restore — the restore repopulates its base registry too.
    // No request can arrive until serve_stream/serve_socket starts pumping,
    // so the restore still beats the first request.
    PlanServer server(planner, metrics, server_options);
    // Lazy warm-state restore: restored entries feed the same deterministic
    // arithmetic as fresh profiles, so plans after a restart are
    // byte-identical to the pre-restart replica's.
    restore_warm_state(planner, metrics, snapshot_dir, &server.delta_planner());

    if (socket_mode) {
#ifdef __unix__
      int status = 0;
      {
        PeriodicSnapshotter snapshotter(planner, metrics, snapshot_dir,
                                        snapshot_interval_ms,
                                        &server.delta_planner());
        status = serve_socket(server, port, port_file);
      }  // timer thread joined before the final (authoritative) save below
      if (status == 0) {
        save_warm_state(planner, metrics, snapshot_dir, &server.delta_planner());
      }
      // Graceful-shutdown path (satellite: drain, then flush the trace).
      if (!trace_out.empty()) {
        write_chrome_trace(trace_out);
        std::cerr << "pglb_serve: trace written to " << trace_out << "\n";
      }
      return status;
#else
      std::cerr << "pglb_serve: --listen is only available on POSIX builds\n";
      return 2;
#endif
    }

    {
      PeriodicSnapshotter snapshotter(planner, metrics, snapshot_dir,
                                      snapshot_interval_ms,
                                      &server.delta_planner());
      server.serve_stream(std::cin, std::cout);
      server.stop();  // drain before the final save sees the cache
    }
    save_warm_state(planner, metrics, snapshot_dir, &server.delta_planner());
    if (dump_metrics) {
      const ProfileCacheStats cache = planner.cache_stats();
      std::string extra = "\"cache\":{\"hits\":";
      append_json_number(extra, static_cast<double>(cache.hits));
      extra += ",\"misses\":";
      append_json_number(extra, static_cast<double>(cache.misses));
      extra += ",\"hit_rate\":";
      append_json_number(extra, cache.hit_rate());
      extra += "}";
      std::cerr << metrics.to_json(extra) << "\n";
    }
    if (!trace_out.empty()) {
      write_chrome_trace(trace_out);
      std::cerr << "pglb_serve: trace written to " << trace_out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pglb_serve: " << e.what() << "\n";
    return 1;
  }
}
