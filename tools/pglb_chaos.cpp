// pglb_chaos — deterministic link-fault injection proxy (docs/CHAOS.md).
//
// Sits between a router and its replicas: one ephemeral-port listener per
// --targets entry, every accepted connection forwarded to 127.0.0.1:<target>
// through the seeded NetFaultEngine (util/netfault.hpp), which injects
// latency, throttling, torn writes, resets, blackhole partitions, and byte
// corruption per a scripted scenario.
//
//   pglb_chaos --targets=7447,7448,7449 --port-dir=/tmp/run
//              --control-port-file=/tmp/run/chaos.port
//              --scenario='blackhole@from:300:1100%route:0' --seed=42
//
// Ports are published through the port-file handshake (util/portfile.hpp):
// route k's listener at <port-dir>/chaos-r<k>.port.  The scenario comes from
// --scenario or, failing that, the PGLB_NETFAULTS environment variable; a
// malformed rule is a startup error naming the offending fragment, never a
// mid-drill surprise.
//
// The control endpoint (its own ephemeral listener, published through
// --control-port-file) answers one-line commands: "metrics" returns the
// per-rule injection counters as one JSON line.  SIGINT/SIGTERM stops the
// proxy cleanly — every pump thread joined, every port file retracted.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/netfault.hpp"
#include "util/parse.hpp"
#include "util/portfile.hpp"

#ifdef __unix__
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <ext/stdio_filebuf.h>  // libstdc++: iostream over a file descriptor
#endif

using namespace pglb;

#ifdef __unix__

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_control_fd = -1;

extern "C" void handle_stop_signal(int) {
  g_stop = 1;
  const int fd = g_control_fd;
  if (fd >= 0) {
    g_control_fd = -1;
    ::close(fd);  // async-signal-safe; unblocks the control accept()
  }
}

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: accept() must return EINTR/EBADF
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

std::vector<std::uint16_t> parse_targets(const std::string& text) {
  std::vector<std::uint16_t> targets;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(',', start);
    const std::string part = end == std::string::npos
                                 ? text.substr(start)
                                 : text.substr(start, end - start);
    if (!part.empty()) {
      const auto port = parse_int(part);
      if (!port || *port <= 0 || *port > 65535) {
        throw std::invalid_argument("--targets: '" + part +
                                    "' is not a port number");
      }
      targets.push_back(static_cast<std::uint16_t>(*port));
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return targets;
}

/// Serve the control protocol until a stop signal: one command per line,
/// "metrics" answers the engine's counters as one JSON line.
int control_loop(ChaosProxy& proxy, const std::string& control_port_file) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "pglb_chaos: socket: " << std::strerror(errno) << "\n";
    return 1;
  }
  const int enable = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&address), sizeof(address)) < 0 ||
      ::listen(listener, 8) < 0 ||
      ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    std::cerr << "pglb_chaos: control bind/listen: " << std::strerror(errno)
              << "\n";
    ::close(listener);
    return 1;
  }
  const std::uint16_t port = ntohs(bound.sin_port);
  if (!control_port_file.empty() && !write_port_file(control_port_file, port)) {
    std::cerr << "pglb_chaos: cannot publish control port to "
              << control_port_file << "\n";
    ::close(listener);
    return 1;
  }
  g_control_fd = listener;
  install_stop_handlers();
  std::cerr << "pglb_chaos: control on 127.0.0.1:" << port << "\n";
  while (true) {
    const int connection = ::accept(listener, nullptr, nullptr);
    if (g_stop) {
      if (connection >= 0) ::close(connection);
      break;
    }
    if (connection < 0) {
      if (errno == EINTR) continue;
      std::cerr << "pglb_chaos: control accept: " << std::strerror(errno)
                << "\n";
      break;
    }
    __gnu_cxx::stdio_filebuf<char> in_buf(connection, std::ios::in);
    __gnu_cxx::stdio_filebuf<char> out_buf(::dup(connection), std::ios::out);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    std::string line;
    while (std::getline(in, line)) {
      if (line == "metrics") {
        out << proxy.metrics_json() << "\n" << std::flush;
      } else {
        out << "{\"error\":\"unknown command\"}\n" << std::flush;
      }
    }
  }
  const int fd = g_control_fd;
  g_control_fd = -1;
  if (fd >= 0) ::close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  try {
    ChaosProxy::Options options;
    options.targets = parse_targets(cli.get_string("targets", ""));
    options.upstream_host = cli.get_string("upstream-host", "127.0.0.1");
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    options.scenario = cli.get_string("scenario", "");
    if (options.scenario.empty()) {
      const char* env = std::getenv("PGLB_NETFAULTS");
      if (env != nullptr) options.scenario = env;
    }
    const std::string port_dir = cli.get_string("port-dir", "");
    const std::string control_port_file =
        cli.get_string("control-port-file", "");
    const auto unused = cli.unused_keys();
    if (!unused.empty()) {
      std::cerr << "pglb_chaos: unknown flag --" << unused.front() << "\n";
      return 2;
    }
    if (options.targets.empty()) {
      std::cerr << "pglb_chaos: --targets=port[,port...] is required\n";
      return 2;
    }

    const std::size_t routes = options.targets.size();
    ChaosProxy proxy(std::move(options));  // throws on a malformed scenario
    proxy.start();
    std::vector<std::string> port_files;
    for (std::size_t route = 0; route < routes; ++route) {
      const std::uint16_t port = proxy.route_port(route);
      std::cerr << "pglb_chaos: route " << route << " on 127.0.0.1:" << port
                << "\n";
      if (!port_dir.empty()) {
        const std::string path =
            port_dir + "/chaos-r" + std::to_string(route) + ".port";
        if (!write_port_file(path, port)) {
          std::cerr << "pglb_chaos: cannot publish port to " << path << "\n";
          return 1;
        }
        port_files.push_back(path);
      }
    }

    const int status = control_loop(proxy, control_port_file);
    std::cerr << "pglb_chaos: stopping\n";
    proxy.stop();
    std::cerr << "pglb_chaos: final " << proxy.metrics_json() << "\n";
    for (const std::string& path : port_files) std::remove(path.c_str());
    if (!control_port_file.empty()) std::remove(control_port_file.c_str());
    return status;
  } catch (const std::exception& e) {
    std::cerr << "pglb_chaos: " << e.what() << "\n";
    return 1;
  }
}

#else  // !__unix__

int main() {
  std::cerr << "pglb_chaos: only available on POSIX builds\n";
  return 2;
}

#endif
