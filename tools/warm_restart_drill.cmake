# Warm-restart acceptance gate (docs/PERSIST.md): the same loadgen kill drill
# run twice — once cold (no snapshot dir) and once warm (--snapshot-dir, with
# --kill-mode=term so the doomed backend drains and writes its snapshot on the
# way out).  Both runs SIGTERM b0 mid-run and restart it; loadgen resets b0's
# counters at the restart, so its final `post-restart b0 cache:` line covers
# only the restarted life.  A restored snapshot answers from the warm cache
# where the cold restart recomputes, so the warm post-restart hit rate must be
# at least the cold baseline.  Both loadgen invocations exit non-zero on ANY
# non-typed failure, so this gate also re-asserts "zero failed requests".
#
# A third step corrupts the saved warm.snap in place and boots pglb_serve over
# it: the corrupt snapshot must be a *logged cold start* — exit 0, plans still
# served, and persist.snapshot_rejected visible in the metrics exposition.
# Driven by ctest (see CMakeLists.txt in this directory).

function(run_drill out_var)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "drill run failed (${code}): ${ARGN}\n${out}\n${err}")
  endif()
  set(${out_var} "${out}\n${err}" PARENT_SCOPE)
endfunction()

# Extract the parseable post-restart counters loadgen prints after a drill.
function(parse_post_restart text label out_hits out_misses)
  if(NOT text MATCHES "post-restart b0 cache: hits=([0-9]+) misses=([0-9]+)")
    message(FATAL_ERROR "${label} run printed no post-restart cache line:\n${text}")
  endif()
  set(${out_hits} ${CMAKE_MATCH_1} PARENT_SCOPE)
  set(${out_misses} ${CMAKE_MATCH_2} PARENT_SCOPE)
endfunction()

set(snapdir ${WORKDIR}/warm_drill_snaps)
file(REMOVE_RECURSE ${snapdir})

set(drill_args --requests=120 --threads=4 --distinct=6 --scale=0.002
    --router=3 --kill-mode=term --server=${PGLB_SERVE})

run_drill(cold_out ${PGLB_LOADGEN} ${drill_args})
run_drill(warm_out ${PGLB_LOADGEN} ${drill_args} --snapshot-dir=${snapdir})

parse_post_restart("${cold_out}" "cold" cold_hits cold_misses)
parse_post_restart("${warm_out}" "warm" warm_hits warm_misses)

# The warm run's restart must actually have restored a snapshot, or the
# comparison below proves nothing.
if(NOT warm_out MATCHES "restored snapshot generation")
  message(FATAL_ERROR "warm run never restored a snapshot:\n${warm_out}")
endif()

math(EXPR cold_total "${cold_hits} + ${cold_misses}")
math(EXPR warm_total "${warm_hits} + ${warm_misses}")
if(cold_total EQUAL 0 OR warm_total EQUAL 0)
  message(FATAL_ERROR "post-restart b0 served no requests "
          "(cold ${cold_hits}/${cold_misses}, warm ${warm_hits}/${warm_misses})")
endif()

# hit_rate_warm >= hit_rate_cold, cross-multiplied to stay in integers.
math(EXPR lhs "${warm_hits} * ${cold_total}")
math(EXPR rhs "${cold_hits} * ${warm_total}")
if(lhs LESS rhs)
  message(FATAL_ERROR "warm restart lost cache warmth: "
          "cold hits=${cold_hits} misses=${cold_misses}, "
          "warm hits=${warm_hits} misses=${warm_misses}")
endif()
message(STATUS "warm restart gate: cold ${cold_hits}/${cold_total} hits, "
        "warm ${warm_hits}/${warm_total} hits")

# Corrupt-snapshot injection: stomp one of the saved snapshots (7 bytes of
# garbage — shorter than the file header, so the reader rejects it) and boot
# a solo pglb_serve over that directory.  Must be a clean cold start: exit 0,
# the plan answered, and the rejection counted in the metrics exposition.
file(GLOB_RECURSE snaps ${snapdir}/*/warm.snap)
if(NOT snaps)
  message(FATAL_ERROR "warm run left no warm.snap under ${snapdir}")
endif()
list(GET snaps 0 victim)
get_filename_component(victim_dir ${victim} DIRECTORY)
file(WRITE ${victim} "CORRUPT")

set(requests ${WORKDIR}/warm_drill_requests.jsonl)
set(responses ${WORKDIR}/warm_drill_responses.jsonl)
file(WRITE ${requests}
"{\"id\":\"c1\",\"app\":\"pagerank\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"vertices\":1000000,\"edges\":10000000}
{\"type\":\"metrics\"}
")
execute_process(COMMAND ${PGLB_SERVE} --threads=2 --scale=0.002
                --snapshot-dir=${victim_dir}
                INPUT_FILE ${requests} OUTPUT_FILE ${responses}
                RESULT_VARIABLE code ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "pglb_serve crashed on a corrupt snapshot (${code}):\n${err}")
endif()
if(NOT err MATCHES "snapshot rejected")
  message(FATAL_ERROR "corrupt snapshot was not rejected:\n${err}")
endif()
file(READ ${responses} response_text)
if(NOT response_text MATCHES "\"id\":\"c1\",\"status\":\"ok\"")
  message(FATAL_ERROR "cold start after corrupt snapshot failed to plan:\n${response_text}")
endif()
if(NOT response_text MATCHES "\"persist.snapshot_rejected\":[1-9]")
  message(FATAL_ERROR "metrics exposition is missing persist.snapshot_rejected:\n${response_text}")
endif()

file(REMOVE ${requests} ${responses})
file(REMOVE_RECURSE ${snapdir})
