# End-to-end CLI smoke test: generate -> stats -> profile -> partition -> run.
# Driven by ctest (see CMakeLists.txt in this directory).

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(graph ${WORKDIR}/smoke_graph.txt)
set(pool ${WORKDIR}/smoke_pool.tsv)
set(assignment ${WORKDIR}/smoke_assignment.txt)

run_step(${PGLB} generate --type=powerlaw --vertices=5000 --alpha=2.1 --out=${graph})
run_step(${PGLB} stats --graph=${graph})
run_step(${PGLB} profile --machines=xeon_server_s,xeon_server_l --apps=pagerank
         --scale=0.001 --out=${pool})
run_step(${PGLB} partition --graph=${graph} --machines=xeon_server_s,xeon_server_l
         --algorithm=hybrid --weights=${pool} --out=${assignment})
run_step(${PGLB} run --graph=${graph} --app=pagerank
         --machines=xeon_server_s,xeon_server_l --estimator=ccr --pool=${pool}
         --algorithm=hybrid --scale=0.001)

# Chrome-trace export: an oracle run profiles inline, so one invocation emits
# profiler, partitioner, and engine spans into a single valid trace file.
set(trace ${WORKDIR}/smoke_trace.json)
run_step(${PGLB} run --graph=${graph} --app=pagerank
         --machines=xeon_server_s,xeon_server_l --estimator=oracle
         --algorithm=hybrid --scale=0.001 --trace-out=${trace})
file(READ ${trace} trace_json)
foreach(needle "\"traceEvents\"" "profile.cell" "partition.hybrid" "engine.superstep")
  if(NOT trace_json MATCHES "${needle}")
    message(FATAL_ERROR "trace file is missing ${needle}")
  endif()
endforeach()
file(REMOVE ${trace})

# Format conversions + relabelling round trip.
set(mtx ${WORKDIR}/smoke_graph.mtx)
set(relabelled ${WORKDIR}/smoke_relabel.bin)
run_step(${PGLB} relabel --graph=${graph} --mode=degree --out=${mtx})
run_step(${PGLB} relabel --graph=${mtx} --mode=compact --out=${relabelled})
run_step(${PGLB} stats --graph=${relabelled})

file(REMOVE ${graph} ${pool} ${assignment} ${mtx} ${relabelled})

# Planning service round trip: three requests through pglb_serve's line
# protocol, answered in order with the expected statuses.
if(PGLB_SERVE)
  set(requests ${WORKDIR}/smoke_requests.jsonl)
  set(responses ${WORKDIR}/smoke_responses.jsonl)
  file(WRITE ${requests}
"{\"id\":\"s1\",\"app\":\"pagerank\",\"machines\":[\"xeon_server_s\",\"xeon_server_l\"],\"vertices\":1000000,\"edges\":10000000}
{\"id\":\"s2\",\"app\":\"coloring\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"alpha\":2.1}
{\"id\":\"s3\",\"app\":\"pagerank\",\"machines\":[\"no_such_machine\"],\"alpha\":2.1}
{\"type\":\"metrics\"}
")
  execute_process(COMMAND ${PGLB_SERVE} --threads=2 --scale=0.002
                  INPUT_FILE ${requests} OUTPUT_FILE ${responses}
                  RESULT_VARIABLE code ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "pglb_serve failed (${code}):\n${err}")
  endif()
  file(STRINGS ${responses} response_lines)
  list(LENGTH response_lines num_responses)
  if(NOT num_responses EQUAL 4)
    message(FATAL_ERROR "expected 4 service responses, got ${num_responses}")
  endif()
  foreach(pair "0;s1;ok" "1;s2;ok" "2;s3;error")
    list(GET pair 0 index)
    list(GET pair 1 id)
    list(GET pair 2 status)
    list(GET response_lines ${index} line)
    if(NOT line MATCHES "\"id\":\"${id}\",\"status\":\"${status}\"")
      message(FATAL_ERROR "response ${index} should be id=${id} status=${status}: ${line}")
    endif()
  endforeach()
  # The metrics exposition must report the served requests and cache state.
  list(GET response_lines 3 metrics_line)
  foreach(needle "\"counters\"" "\"requests_total\":" "\"cache\"" "\"hits\"" "\"misses\"" "\"trace\"")
    if(NOT metrics_line MATCHES "${needle}")
      message(FATAL_ERROR "metrics response is missing ${needle}: ${metrics_line}")
    endif()
  endforeach()
  file(REMOVE ${requests} ${responses})
endif()
