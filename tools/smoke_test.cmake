# End-to-end CLI smoke test: generate -> stats -> profile -> partition -> run.
# Driven by ctest (see CMakeLists.txt in this directory).

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(graph ${WORKDIR}/smoke_graph.txt)
set(pool ${WORKDIR}/smoke_pool.tsv)
set(assignment ${WORKDIR}/smoke_assignment.txt)

run_step(${PGLB} generate --type=powerlaw --vertices=5000 --alpha=2.1 --out=${graph})
run_step(${PGLB} stats --graph=${graph})
run_step(${PGLB} profile --machines=xeon_server_s,xeon_server_l --apps=pagerank
         --scale=0.001 --out=${pool})
run_step(${PGLB} partition --graph=${graph} --machines=xeon_server_s,xeon_server_l
         --algorithm=hybrid --weights=${pool} --out=${assignment})
run_step(${PGLB} run --graph=${graph} --app=pagerank
         --machines=xeon_server_s,xeon_server_l --estimator=ccr --pool=${pool}
         --algorithm=hybrid --scale=0.001)

# Format conversions + relabelling round trip.
set(mtx ${WORKDIR}/smoke_graph.mtx)
set(relabelled ${WORKDIR}/smoke_relabel.bin)
run_step(${PGLB} relabel --graph=${graph} --mode=degree --out=${mtx})
run_step(${PGLB} relabel --graph=${mtx} --mode=compact --out=${relabelled})
run_step(${PGLB} stats --graph=${relabelled})

file(REMOVE ${graph} ${pool} ${assignment} ${mtx} ${relabelled})
