# End-to-end CLI smoke test: generate -> stats -> profile -> partition -> run.
# Driven by ctest (see CMakeLists.txt in this directory).

function(run_step)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE code OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "step failed (${code}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(graph ${WORKDIR}/smoke_graph.txt)
set(pool ${WORKDIR}/smoke_pool.tsv)
set(assignment ${WORKDIR}/smoke_assignment.txt)

run_step(${PGLB} generate --type=powerlaw --vertices=5000 --alpha=2.1 --out=${graph})
run_step(${PGLB} stats --graph=${graph})
run_step(${PGLB} profile --machines=xeon_server_s,xeon_server_l --apps=pagerank
         --scale=0.001 --out=${pool})
run_step(${PGLB} partition --graph=${graph} --machines=xeon_server_s,xeon_server_l
         --algorithm=hybrid --weights=${pool} --out=${assignment})
run_step(${PGLB} run --graph=${graph} --app=pagerank
         --machines=xeon_server_s,xeon_server_l --estimator=ccr --pool=${pool}
         --algorithm=hybrid --scale=0.001)

# Chrome-trace export: an oracle run profiles inline, so one invocation emits
# profiler, partitioner, and engine spans into a single valid trace file.
set(trace ${WORKDIR}/smoke_trace.json)
run_step(${PGLB} run --graph=${graph} --app=pagerank
         --machines=xeon_server_s,xeon_server_l --estimator=oracle
         --algorithm=hybrid --scale=0.001 --trace-out=${trace})
file(READ ${trace} trace_json)
foreach(needle "\"traceEvents\"" "profile.cell" "partition.hybrid" "engine.superstep")
  if(NOT trace_json MATCHES "${needle}")
    message(FATAL_ERROR "trace file is missing ${needle}")
  endif()
endforeach()
file(REMOVE ${trace})

# Format conversions + relabelling round trip.
set(mtx ${WORKDIR}/smoke_graph.mtx)
set(relabelled ${WORKDIR}/smoke_relabel.bin)
run_step(${PGLB} relabel --graph=${graph} --mode=degree --out=${mtx})
run_step(${PGLB} relabel --graph=${mtx} --mode=compact --out=${relabelled})
run_step(${PGLB} stats --graph=${relabelled})

file(REMOVE ${graph} ${pool} ${assignment} ${mtx} ${relabelled})

# Planning service round trip: three requests through pglb_serve's line
# protocol, answered in order with the expected statuses.
if(PGLB_SERVE)
  set(requests ${WORKDIR}/smoke_requests.jsonl)
  set(responses ${WORKDIR}/smoke_responses.jsonl)
  file(WRITE ${requests}
"{\"id\":\"s1\",\"app\":\"pagerank\",\"machines\":[\"xeon_server_s\",\"xeon_server_l\"],\"vertices\":1000000,\"edges\":10000000}
{\"id\":\"s2\",\"app\":\"coloring\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"alpha\":2.1}
{\"id\":\"s3\",\"app\":\"pagerank\",\"machines\":[\"no_such_machine\"],\"alpha\":2.1}
{\"type\":\"metrics\"}
")
  execute_process(COMMAND ${PGLB_SERVE} --threads=2 --scale=0.002
                  INPUT_FILE ${requests} OUTPUT_FILE ${responses}
                  RESULT_VARIABLE code ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "pglb_serve failed (${code}):\n${err}")
  endif()
  file(STRINGS ${responses} response_lines)
  list(LENGTH response_lines num_responses)
  if(NOT num_responses EQUAL 4)
    message(FATAL_ERROR "expected 4 service responses, got ${num_responses}")
  endif()
  foreach(pair "0;s1;ok" "1;s2;ok" "2;s3;error")
    list(GET pair 0 index)
    list(GET pair 1 id)
    list(GET pair 2 status)
    list(GET response_lines ${index} line)
    if(NOT line MATCHES "\"id\":\"${id}\",\"status\":\"${status}\"")
      message(FATAL_ERROR "response ${index} should be id=${id} status=${status}: ${line}")
    endif()
  endforeach()
  # The metrics exposition must report the served requests and cache state.
  list(GET response_lines 3 metrics_line)
  foreach(needle "\"counters\"" "\"requests_total\":" "\"cache\"" "\"hits\"" "\"misses\"" "\"trace\"")
    if(NOT metrics_line MATCHES "${needle}")
      message(FATAL_ERROR "metrics response is missing ${needle}: ${metrics_line}")
    endif()
  endforeach()
  file(REMOVE ${requests} ${responses})
endif()

# Fleet smoke (docs/FLEET.md): pglb_router --spawn=3 fronting three pglb_serve
# children.  Drives the long-lived process over a FIFO so the test can: plan,
# read the router-side metrics (with the "fleet" health block), SIGKILL one
# backend, verify the next plan still succeeds (failover), then SIGTERM the
# router and insist on a clean drain (exit 0, children reaped).
if(PGLB_ROUTER AND EXISTS "/bin/bash")  # script mode: UNIX is not defined here
  set(router_script ${WORKDIR}/router_smoke.sh)
  file(WRITE ${router_script}
"set -eu
cd '${WORKDIR}'
rm -f rin rout.jsonl rerr.log
mkfifo rin
exec 3<>rin   # hold the write end open: router stdin must not see EOF
'${PGLB_ROUTER}' --spawn=3 --serve='${PGLB_SERVE}' \\
    --backend-threads=2 --scale=0.002 --probe-ms=100 <rin >rout.jsonl 2>rerr.log &
RPID=$!
for i in $(seq 1 600); do
  grep -q 'fronting 3' rerr.log 2>/dev/null && break; sleep 0.1
done
grep -q 'fronting 3' rerr.log
# Children bind ephemeral ports published under a per-run port-dir; its
# unique path doubles as the pgrep needle for liveness checks (no fixed
# port ranges, so parallel ctest runs cannot collide).
PORTDIR=$(sed -n 's/^pglb_router: port-dir //p' rerr.log | head -1)
[ -n \"$PORTDIR\" ]

send() { printf '%s\\n' \"$1\" >&3; }
await_lines() {
  for i in $(seq 1 600); do
    [ \"$(wc -l <rout.jsonl)\" -ge \"$1\" ] && return 0; sleep 0.1
  done
  echo 'timed out waiting for router responses' >&2; exit 1
}

send '{\"id\":\"r1\",\"app\":\"pagerank\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"vertices\":1000000,\"edges\":10000000}'
send '{\"type\":\"metrics\",\"id\":\"m1\"}'
await_lines 2
grep -q '\"id\":\"r1\",\"status\":\"ok\"' rout.jsonl
grep -q '\"fleet\":{\"backends\":' rout.jsonl   # router-side metrics, never forwarded

kill -KILL \"$(pgrep -f \"port-file=$PORTDIR\" | head -1)\"   # one backend dies mid-run
send '{\"id\":\"r2\",\"app\":\"pagerank\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"vertices\":1000000,\"edges\":10000000}'
await_lines 3
grep -q '\"id\":\"r2\",\"status\":\"ok\"' rout.jsonl  # failover kept planning

kill -TERM \"$RPID\"
wait \"$RPID\"                                  # set -e: non-zero exit fails here
grep -q 'drained after' rerr.log
if pgrep -f \"port-file=$PORTDIR\" >/dev/null; then
  echo 'pglb_serve children survived the drain' >&2; exit 1
fi

# One-shot pipe mode: stdin hits EOF while responses are still in flight, so
# the drain must wait for dequeued-but-unfinished work (regression: the
# writer once exited on eof+empty-queues and dropped in-flight responses).
printf '%s\\n%s\\n' \\
  '{\"id\":\"p1\",\"app\":\"pagerank\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"vertices\":1000000,\"edges\":10000000}' \\
  '{\"id\":\"p2\",\"app\":\"pagerank\",\"machines\":[\"bogus_box\"],\"vertices\":10,\"edges\":10}' \\
  | '${PGLB_ROUTER}' --spawn=1 --serve='${PGLB_SERVE}' \\
      --backend-threads=2 --scale=0.002 >pipe.jsonl 2>/dev/null
[ \"$(wc -l <pipe.jsonl)\" -eq 2 ]             # one line per request, always
grep -q '\"id\":\"p1\",\"status\":\"ok\"' pipe.jsonl
grep -q '\"id\":\"p2\",\"status\":\"error\"' pipe.jsonl  # typed error passthrough

# Mixed-fleet byte identity (docs/WIRE.md): one line-JSON-only replica plus
# one binary-capable replica must serve responses byte-identical to a solo
# pglb_serve — the binary framing carries the SAME payload bytes.
printf '%s\\n%s\\n%s\\n%s\\n' \\
  '{\"id\":\"w1\",\"app\":\"pagerank\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"vertices\":1000000,\"edges\":10000000}' \\
  '{\"id\":\"w2\",\"app\":\"coloring\",\"machines\":[\"xeon_server_s\",\"xeon_server_l\"],\"alpha\":2.1}' \\
  '{\"id\":\"w3\",\"app\":\"pagerank\",\"machines\":[\"m4.2xlarge\",\"c4.2xlarge\"],\"vertices\":1000000,\"edges\":10000000}' \\
  '{\"id\":\"w4\",\"app\":\"pagerank\",\"machines\":[\"bogus_box\"],\"alpha\":2.1}' >wreq.jsonl
'${PGLB_SERVE}' --threads=2 --scale=0.002 <wreq.jsonl >solo.jsonl 2>/dev/null
'${PGLB_ROUTER}' --spawn=2 --line-backends=1 --serve='${PGLB_SERVE}' \\
    --backend-threads=2 --scale=0.002 <wreq.jsonl >mixed.jsonl 2>/dev/null
cmp solo.jsonl mixed.jsonl
")
  execute_process(COMMAND bash ${router_script}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "router smoke failed (${code}):\n${out}\n${err}")
  endif()
  file(REMOVE ${router_script} ${WORKDIR}/rin ${WORKDIR}/rout.jsonl
       ${WORKDIR}/rerr.log ${WORKDIR}/pipe.jsonl)

  # Autoscale smoke (docs/AUTOSCALE.md): pglb_router --autoscale over a
  # one-replica floor.  A burst of coverage-missing plans (distinct alphas,
  # two apps each at --scale=0.01) builds queue pressure; the control loop
  # must scale up to max-replicas=3 (two extra replicas), drain back to the
  # floor once the burst passes, and expose a populated (cost, p99) Pareto
  # block in the router-side metrics.  Replicas bind ephemeral ports (the
  # port-file handshake); the per-run port-dir path is the pgrep needle.
  set(autoscale_script ${WORKDIR}/autoscale_smoke.sh)
  file(WRITE ${autoscale_script}
"set -eu
cd '${WORKDIR}'
rm -f asin asout.jsonl aserr.log
mkfifo asin
exec 3<>asin  # hold the write end open: router stdin must not see EOF
'${PGLB_ROUTER}' --spawn=1 --autoscale --max-replicas=3 --serve='${PGLB_SERVE}' \\
    --scale=0.01 --threads=8 --autoscale-ms=20 --sustain=2 \\
    --idle-samples=5 --cooldown-ms=200 --pressure=1.5 --idle=0.2 \\
    <asin >asout.jsonl 2>aserr.log &
RPID=$!
# A failed check must not leak the router or its replicas: kill anything
# still pointed at this run's private port-dir.
PORTDIR=''
trap 'set +e; kill -KILL \"$RPID\" 2>/dev/null; [ -n \"$PORTDIR\" ] && pkill -KILL -f \"port-file=$PORTDIR\" 2>/dev/null; true' EXIT
for i in $(seq 1 600); do
  grep -q 'fronting 1' aserr.log 2>/dev/null && break; sleep 0.1
done
grep -q 'fronting 1' aserr.log
PORTDIR=$(sed -n 's/^pglb_router: port-dir //p' aserr.log | head -1)
[ -n \"$PORTDIR\" ]

# 96 alphas spaced beyond the proxy coverage margin: every plan generates and
# profiles a fresh proxy, so the burst holds queue pressure on the fleet.
awk 'BEGIN { for (i = 0; i < 96; i++)
  printf(\"{\\\"id\\\":\\\"q%d\\\",\\\"app\\\":\\\"%s\\\",\\\"alpha\\\":%.1f,\\\"machines\\\":[\\\"c4.2xlarge\\\"]}\\n\",
         i, (i % 2 ? \"coloring\" : \"pagerank\"), 3.5 + 0.5 * i) }' >&3
for i in $(seq 1 900); do
  [ \"$(wc -l <asout.jsonl)\" -ge 96 ] && break; sleep 0.1
done
[ \"$(wc -l <asout.jsonl)\" -ge 96 ]
if grep -q '\"status\":\"error\"' asout.jsonl; then
  echo 'autoscale smoke: a plan request failed' >&2; exit 1
fi

for i in $(seq 1 300); do  # idle hysteresis drains the extras back to floor
  [ \"$(grep -c 'autoscale: drained' aserr.log)\" -ge 2 ] && break; sleep 0.1
done
[ \"$(grep -c 'autoscale: scale-up' aserr.log)\" -ge 2 ]  # floor -> 3 replicas
[ \"$(grep -c 'autoscale: drained' aserr.log)\" -ge 2 ]   # ...and back down

printf '{\"type\":\"metrics\",\"id\":\"am\"}\\n' >&3
for i in $(seq 1 600); do
  [ \"$(wc -l <asout.jsonl)\" -ge 97 ] && break; sleep 0.1
done
tail -1 asout.jsonl | grep -q '\"autoscale\":{'
tail -1 asout.jsonl | grep -q '\"pareto\":{'
tail -1 asout.jsonl | grep -q '\"frontier\":\\[{'

kill -TERM \"$RPID\"
wait \"$RPID\"                                  # set -e: non-zero exit fails here
grep -q 'drained after' aserr.log
if pgrep -f \"port-file=$PORTDIR\" >/dev/null; then
  echo 'pglb_serve replicas survived the drain' >&2; exit 1
fi
")
  execute_process(COMMAND bash ${autoscale_script}
                  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "autoscale smoke failed (${code}):\n${out}\n${err}")
  endif()
  file(REMOVE ${autoscale_script} ${WORKDIR}/asin ${WORKDIR}/asout.jsonl
       ${WORKDIR}/aserr.log)
endif()
