// pglb — command-line driver over the library: generate graphs, inspect
// them, profile clusters into a persistent CCR pool, partition, and run the
// full proxy-guided flow, all from the shell.
//
//   pglb generate  --type=powerlaw --vertices=100000 --alpha=2.1 --out=g.txt
//   pglb stats     --graph=g.txt [--plot]
//   pglb alpha     --vertices=4847571 --edges=68993773
//   pglb machines
//   pglb profile   --machines=xeon_server_s,xeon_server_l --apps=pagerank
//                  --scale=0.004 --out=pool.tsv
//   pglb partition --graph=g.txt --machines=... --algorithm=hybrid
//                  --weights=1,3.5 --out=assignment.txt
//   pglb run       --graph=g.txt --app=pagerank --machines=...
//                  --estimator=ccr --pool=pool.tsv --algorithm=hybrid
//                  --scale=0.004
//   pglb delta     --graph=g.txt --app=pagerank --machines=...
//                  --mutations=ops.txt --batch=64 --reprofile=auto
//
// `delta` drives the incremental planning subsystem (docs/DYNAMIC.md)
// in-process: it creates a named base from --graph, then streams the ops in
// --mutations (one per line: `add SRC DST`, `remove SRC DST`, `addv ID`,
// `removev ID`; '#' comments) in batches of --batch (0 = one batch),
// printing the maintained plan after each batch.

#include <fstream>
#include <iostream>
#include <sstream>

#include "baselines/dynamic_migration.hpp"
#include "core/flow.hpp"
#include "dynamic/delta_planner.hpp"
#include "core/online.hpp"
#include "core/time_database.hpp"
#include "gen/alpha_solver.hpp"
#include "gen/chung_lu.hpp"
#include "gen/erdos_renyi.hpp"
#include "gen/powerlaw.hpp"
#include "gen/rmat.hpp"
#include "graph/io.hpp"
#include "graph/relabel.hpp"
#include "machine/catalog.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "partition/weights.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/table.hpp"

using namespace pglb;

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

Cluster cluster_from_flag(const Cli& cli) {
  const auto names = split_csv(cli.get_string("machines", ""));
  if (names.empty()) throw std::invalid_argument("--machines=a,b,... is required");
  return cluster_from_names(names);
}

bool has_extension(const std::string& path, const char* ext) {
  const auto dot = path.rfind('.');
  return dot != std::string::npos && path.substr(dot) == ext;
}

/// Format dispatch by extension: .mtx = MatrixMarket, .bin = pglb binary,
/// anything else = SNAP text.
EdgeList read_graph_any(const std::string& path) {
  if (has_extension(path, ".mtx")) return read_matrix_market(path);
  if (has_extension(path, ".bin")) return read_edge_list_binary(path);
  return read_edge_list_text(path);
}

void write_graph_any(const EdgeList& graph, const std::string& path) {
  if (has_extension(path, ".mtx")) {
    write_matrix_market(graph, path);
  } else if (has_extension(path, ".bin")) {
    write_edge_list_binary(graph, path);
  } else {
    write_edge_list_text(graph, path);
  }
}

int cmd_generate(const Cli& cli) {
  const std::string type = cli.get_string("type", "powerlaw");
  const auto vertices = static_cast<VertexId>(cli.get_int("vertices", 100'000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string out = cli.get_string("out", "");
  if (out.empty()) throw std::invalid_argument("--out=FILE is required");

  EdgeList graph;
  if (type == "powerlaw") {
    PowerLawConfig config;
    config.num_vertices = vertices;
    config.alpha = cli.get_double("alpha", 2.1);
    config.seed = seed;
    graph = generate_powerlaw(config);
  } else if (type == "chung_lu") {
    ChungLuConfig config;
    config.num_vertices = vertices;
    config.target_edges = static_cast<EdgeId>(cli.get_int("edges", vertices * 10));
    config.alpha = cli.get_double("alpha", 2.1);
    config.seed = seed;
    graph = generate_chung_lu(config);
  } else if (type == "erdos_renyi") {
    ErdosRenyiConfig config;
    config.num_vertices = vertices;
    config.num_edges = static_cast<EdgeId>(cli.get_int("edges", vertices * 10));
    config.seed = seed;
    graph = generate_erdos_renyi(config);
  } else if (type == "rmat") {
    RmatConfig config;
    config.scale = static_cast<int>(cli.get_int("rmat-scale", 17));
    config.num_edges = static_cast<EdgeId>(cli.get_int("edges", 1'000'000));
    config.seed = seed;
    graph = generate_rmat(config);
  } else {
    throw std::invalid_argument("unknown --type '" + type +
                                "' (powerlaw, chung_lu, erdos_renyi, rmat)");
  }
  write_graph_any(graph, out);
  std::cout << "wrote " << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges to " << out << "\n";
  return 0;
}

int cmd_stats(const Cli& cli) {
  const std::string path = cli.get_string("graph", "");
  if (path.empty()) throw std::invalid_argument("--graph=FILE is required");
  const EdgeList graph = read_graph_any(path);
  const GraphStats stats = compute_stats(graph);
  const auto fit = solve_alpha(stats.num_vertices, stats.num_edges);

  Table table({"metric", "value"});
  table.row().cell("vertices").cell(static_cast<std::uint64_t>(stats.num_vertices));
  table.row().cell("edges").cell(static_cast<std::uint64_t>(stats.num_edges));
  table.row().cell("mean out-degree").cell(stats.mean_out_degree, 3);
  table.row().cell("max out-degree").cell(static_cast<std::uint64_t>(stats.max_out_degree));
  table.row().cell("degree skew").cell(stats.degree_skew, 1);
  table.row().cell("sink fraction").cell(format_percent(stats.sink_fraction));
  table.row().cell("footprint").cell(
      format_double(static_cast<double>(stats.footprint_bytes) / 1e6, 1) + " MB");
  table.row().cell("fitted alpha (Eq. 7)").cell(fit.alpha, 3);
  table.row().cell("empirical tail alpha").cell(stats.empirical_alpha, 3);
  table.print(std::cout);

  if (cli.get_bool("plot", false)) {
    std::cout << "\n" << ascii_loglog(log_bin(out_degree_histogram(graph)));
  }
  return 0;
}

int cmd_alpha(const Cli& cli) {
  const auto vertices = static_cast<VertexId>(cli.get_int("vertices", 0));
  const auto edges = static_cast<EdgeId>(cli.get_int("edges", 0));
  if (vertices == 0) throw std::invalid_argument("--vertices and --edges are required");
  const auto result = solve_alpha(vertices, edges);
  std::cout << "alpha = " << format_double(result.alpha, 6) << " ("
            << result.iterations << " Newton iterations, residual "
            << result.residual << ")\n";
  return result.converged ? 0 : 1;
}

int cmd_machines(const Cli&) {
  Table table({"name", "hw threads", "compute threads", "$/hour", "category"});
  for (const MachineSpec& m : table1_machines()) {
    table.row()
        .cell(m.name)
        .cell(static_cast<std::int64_t>(m.hw_threads))
        .cell(static_cast<std::int64_t>(m.compute_threads))
        .cell(m.cost_per_hour, 3)
        .cell(to_string(m.category));
  }
  table.print(std::cout);
  return 0;
}

int cmd_profile(const Cli& cli) {
  const Cluster cluster = cluster_from_flag(cli);
  const double scale = cli.get_double("scale", 1.0 / 256.0);
  const std::string out = cli.get_string("out", "");
  if (out.empty()) throw std::invalid_argument("--out=pool.tsv is required");

  std::vector<AppKind> apps;
  for (const std::string& name :
       split_csv(cli.get_string("apps", "pagerank,coloring,connected_components,"
                                        "triangle_count"))) {
    apps.push_back(app_from_name(name));
  }

  OnlineCcrManager manager(ProxySuite(scale), apps);
  const std::size_t runs = manager.refresh(cluster);
  save_time_database(manager.database(), out);
  std::cout << "profiled " << runs << " (app, proxy, machine-type) combinations; pool "
            << "saved to " << out << "\n";
  for (const AppKind app : apps) {
    const auto ccr = manager.ccr_for(cluster, app, 2.1);
    std::cout << "  " << to_string(app) << " CCR:";
    for (const double c : ccr) std::cout << " " << format_double(c, 2);
    std::cout << "\n";
  }
  return 0;
}

std::vector<double> weights_from_flag(const Cli& cli, const Cluster& cluster, AppKind app,
                                      const GraphStats& stats) {
  const std::string spec = cli.get_string("weights", "uniform");
  if (spec == "uniform") return uniform_weights(cluster.size());
  if (spec == "threads") return thread_count_weights(cluster);
  if (spec.find(',') != std::string::npos) {
    std::vector<double> weights;
    for (const std::string& w : split_csv(spec)) weights.push_back(std::stod(w));
    if (weights.size() != cluster.size()) {
      throw std::invalid_argument("--weights list must have one entry per machine");
    }
    return shares_from_capabilities(weights);
  }
  // Otherwise: path to a profiled pool.
  const TimeDatabase db = load_time_database(spec);
  const double alpha = fit_alpha_clamped(stats.num_vertices, stats.num_edges);
  return shares_from_capabilities(db.ccr_for(cluster, app, alpha));
}

int cmd_partition(const Cli& cli) {
  const std::string path = cli.get_string("graph", "");
  if (path.empty()) throw std::invalid_argument("--graph=FILE is required");
  const Cluster cluster = cluster_from_flag(cli);
  const AppKind app = app_from_name(cli.get_string("app", "pagerank"));
  const auto kind = partitioner_from_string(cli.get_string("algorithm", "hybrid"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  const EdgeList raw = read_graph_any(path);
  const EdgeList graph = prepare_graph_for(app, raw);
  const GraphStats stats = compute_stats(graph);
  const auto weights = weights_from_flag(cli, cluster, app, stats);

  const auto partitioner = make_partitioner(kind);
  const auto assignment = partitioner->partition(graph, weights, seed);
  const auto metrics = compute_partition_metrics(graph, assignment, weights);

  std::cout << "partitioned " << graph.num_edges() << " edges with " << to_string(kind)
            << ": replication " << format_double(metrics.replication_factor, 3)
            << ", imbalance " << format_double(metrics.weighted_imbalance, 3) << "\n";
  for (MachineId m = 0; m < cluster.size(); ++m) {
    std::cout << "  " << cluster.machine(m).name << ": "
              << metrics.edges_per_machine[m] << " edges (target "
              << format_percent(weights[m]) << ")\n";
  }

  const std::string out = cli.get_string("out", "");
  if (!out.empty()) {
    std::ofstream file(out);
    if (!file) throw std::runtime_error("cannot open " + out);
    file << "# pglb edge assignment: edge_index machine\n";
    for (EdgeId i = 0; i < assignment.edge_to_machine.size(); ++i) {
      file << i << '\t' << assignment.edge_to_machine[i] << '\n';
    }
    std::cout << "assignment written to " << out << "\n";
  }
  return 0;
}

int cmd_run(const Cli& cli) {
  const std::string path = cli.get_string("graph", "");
  if (path.empty()) throw std::invalid_argument("--graph=FILE is required");
  const Cluster cluster = cluster_from_flag(cli);
  const AppKind app = app_from_name(cli.get_string("app", "pagerank"));
  const double scale = cli.get_double("scale", 1.0);

  FlowOptions options;
  options.partitioner = partitioner_from_string(cli.get_string("algorithm", "hybrid"));
  options.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  options.scale = scale;

  const EdgeList graph = read_graph_any(path);

  const std::string estimator_name = cli.get_string("estimator", "uniform");
  std::unique_ptr<CapabilityEstimator> estimator;
  TimeDatabase db;
  if (estimator_name == "uniform") {
    estimator = std::make_unique<UniformEstimator>();
  } else if (estimator_name == "threads") {
    estimator = std::make_unique<ThreadCountEstimator>();
  } else if (estimator_name == "oracle") {
    estimator = std::make_unique<OracleEstimator>(scale);
  } else if (estimator_name == "ccr") {
    const std::string pool_path = cli.get_string("pool", "");
    if (pool_path.empty()) {
      throw std::invalid_argument("--estimator=ccr requires --pool=pool.tsv "
                                  "(create one with `pglb profile`)");
    }
    db = load_time_database(pool_path);
    // Adapt the persisted database through a local estimator.
    class DbEstimator final : public CapabilityEstimator {
     public:
      explicit DbEstimator(const TimeDatabase& database) : db_(&database) {}
      std::string name() const override { return "ccr_pool"; }
      std::vector<double> weights(const Cluster& c, AppKind a, const EdgeList&,
                                  const GraphStats& s) const override {
        const double alpha = fit_alpha_clamped(s.num_vertices, s.num_edges);
        return shares_from_capabilities(db_->ccr_for(c, a, alpha));
      }

     private:
      const TimeDatabase* db_;
    };
    estimator = std::make_unique<DbEstimator>(db);
  } else {
    throw std::invalid_argument("unknown --estimator '" + estimator_name +
                                "' (uniform, threads, ccr, oracle)");
  }

  const FlowResult result = run_flow(graph, app, cluster, *estimator, options);
  append_trace_spans(result.app.report);
  std::cout << result.app.report.summary() << "\n";
  std::cout << "result digest: " << result.app.digest << "\n";
  std::cout << "replication factor: " << format_double(result.replication_factor, 3)
            << ", weighted imbalance: "
            << format_double(result.partition.weighted_imbalance, 3) << "\n";
  return 0;
}

/// One textual mutation op per line: `add SRC DST`, `remove SRC DST`,
/// `addv ID`, `removev ID`; blank lines and '#' comments skipped.
std::vector<dynamic::Mutation> read_mutation_ops(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<dynamic::Mutation> ops;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::string op;
    if (!(ss >> op) || op.front() == '#') continue;
    const auto bad = [&](const char* what) -> std::runtime_error {
      return std::runtime_error(path + ":" + std::to_string(line_no) + ": " + what);
    };
    std::uint64_t a = 0, b = 0;
    if (op == "add" || op == "remove") {
      if (!(ss >> a >> b)) throw bad("expected SRC DST");
      if (a >= kInvalidVertex || b >= kInvalidVertex) throw bad("vertex id overflow");
      ops.push_back(op == "add"
                        ? dynamic::Mutation::add_edge(static_cast<VertexId>(a),
                                                      static_cast<VertexId>(b))
                        : dynamic::Mutation::remove_edge(static_cast<VertexId>(a),
                                                         static_cast<VertexId>(b)));
    } else if (op == "addv" || op == "removev") {
      if (!(ss >> a)) throw bad("expected ID");
      if (a >= kInvalidVertex) throw bad("vertex id overflow");
      ops.push_back(op == "addv"
                        ? dynamic::Mutation::add_vertex(static_cast<VertexId>(a))
                        : dynamic::Mutation::remove_vertex(static_cast<VertexId>(a)));
    } else {
      throw bad("unknown op (add, remove, addv, removev)");
    }
  }
  return ops;
}

void print_delta_response(const std::string& label, const std::string& line) {
  const PlanResponse response = parse_plan_response(line);
  if (!response.ok) {
    std::cout << label << ": " << to_string(response.status) << " — "
              << response.error << "\n";
    return;
  }
  std::cout << label << ": " << response.partitioner << ", makespan "
            << format_double(response.makespan_seconds, 4) << "s";
  if (const auto delta = parse_delta_block(line)) {
    std::cout << " | v" << delta->version << ", " << delta->live_vertices
              << " vertices, " << delta->live_edges << " edges, churn "
              << format_percent(delta->churn) << ", hist "
              << format_double(delta->hist_distance, 3)
              << (delta->reprofiled ? ", REPROFILED" : "") << ", moved "
              << delta->moved_edges << ", replication "
              << format_double(delta->replication_factor, 3);
  }
  std::cout << "\n";
}

int cmd_delta(const Cli& cli) {
  const std::string path = cli.get_string("graph", "");
  if (path.empty()) throw std::invalid_argument("--graph=FILE is required");
  const auto machines = split_csv(cli.get_string("machines", ""));
  if (machines.empty()) throw std::invalid_argument("--machines=a,b,... is required");

  PlannerOptions planner_options;
  planner_options.proxy_scale = cli.get_double("scale", 1.0 / 256.0);
  ServiceMetrics metrics;
  Planner planner(planner_options, &metrics);
  dynamic::DeltaPlanner delta(planner, {}, &metrics);

  PlanRequest request;
  request.type = RequestType::kDelta;
  request.base = cli.get_string("base", "cli");
  request.app = app_from_name(cli.get_string("app", "pagerank"));
  request.machines = machines;
  request.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  if (cli.has("algorithm")) {
    request.partitioner = partitioner_from_string(cli.get_string("algorithm", ""));
  }
  const std::string reprofile = cli.get_string("reprofile", "auto");
  request.reprofile = reprofile_mode_from_string(reprofile);
  if (cli.has("drift-churn")) request.drift_churn = cli.get_double("drift-churn", 0.05);
  if (cli.has("drift-hist")) request.drift_hist = cli.get_double("drift-hist", 0.10);

  // Creation batch: the whole input graph as one mutation stream.
  const EdgeList graph = read_graph_any(path);
  request.id = "create";
  request.mutations.reserve(graph.num_vertices() + graph.num_edges());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    request.mutations.push_back(dynamic::Mutation::add_vertex(v));
  }
  for (const Edge& e : graph.edges()) {
    request.mutations.push_back(dynamic::Mutation::add_edge(e.src, e.dst));
  }
  const std::string created = delta.handle(request);
  print_delta_response("create " + request.base, created);
  if (!parse_plan_response(created).ok) return 1;

  const std::string mutations_path = cli.get_string("mutations", "");
  if (mutations_path.empty()) return 0;
  const std::vector<dynamic::Mutation> ops = read_mutation_ops(mutations_path);
  const auto batch_size = static_cast<std::size_t>(cli.get_int("batch", 0));

  // Updates name the base alone: no app/machines, no creation-only fields.
  PlanRequest update;
  update.type = RequestType::kDelta;
  update.base = request.base;
  update.reprofile = request.reprofile;
  update.drift_churn = request.drift_churn;
  update.drift_hist = request.drift_hist;
  std::size_t offset = 0, batch_no = 0;
  while (offset < ops.size()) {
    const std::size_t take =
        batch_size == 0 ? ops.size() - offset
                        : std::min(batch_size, ops.size() - offset);
    update.id = "batch" + std::to_string(batch_no);
    update.mutations.assign(ops.begin() + static_cast<std::ptrdiff_t>(offset),
                            ops.begin() + static_cast<std::ptrdiff_t>(offset + take));
    const std::string line = delta.handle(update);
    print_delta_response(update.id, line);
    if (!parse_plan_response(line).ok) return 1;
    offset += take;
    ++batch_no;
  }
  return 0;
}

int cmd_relabel(const Cli& cli) {
  const std::string in_path = cli.get_string("graph", "");
  const std::string out_path = cli.get_string("out", "");
  if (in_path.empty() || out_path.empty()) {
    throw std::invalid_argument("--graph=IN and --out=OUT are required");
  }
  const std::string mode = cli.get_string("mode", "compact");
  const EdgeList graph = read_graph_any(in_path);
  RelabelResult result;
  if (mode == "compact") {
    result = compact_vertex_ids(graph);
  } else if (mode == "degree") {
    result = relabel_by_degree(graph);
  } else {
    throw std::invalid_argument("unknown --mode '" + mode + "' (compact, degree)");
  }
  write_graph_any(result.graph, out_path);
  std::cout << "relabelled (" << mode << "): " << graph.num_vertices() << " -> "
            << result.graph.num_vertices() << " vertices, " << result.graph.num_edges()
            << " edges -> " << out_path << "\n";
  return 0;
}

int usage() {
  std::cerr << "usage: pglb <generate|stats|alpha|machines|profile|partition|run|"
               "relabel|delta> "
               "[flags]\n(see the header of tools/pglb_cli.cpp for examples)\n";
  return 2;
}

}  // namespace

int dispatch(const std::string& command, const Cli& cli) {
  if (command == "generate") return cmd_generate(cli);
  if (command == "stats") return cmd_stats(cli);
  if (command == "alpha") return cmd_alpha(cli);
  if (command == "machines") return cmd_machines(cli);
  if (command == "profile") return cmd_profile(cli);
  if (command == "partition") return cmd_partition(cli);
  if (command == "run") return cmd_run(cli);
  if (command == "relabel") return cmd_relabel(cli);
  if (command == "delta") return cmd_delta(cli);
  return usage();
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Cli cli(argc - 1, argv + 1);
  try {
    // --trace-out=FILE on any command: record spans for the whole invocation
    // and export them as a Chrome trace (chrome://tracing, Perfetto).
    const std::string trace_out = cli.get_string("trace-out", "");
    if (!trace_out.empty()) set_tracing_enabled(true);
    // --dump-registry on any command: print the process-wide metrics registry
    // snapshot (counters, gauges, stage latencies) to stderr after the run.
    const bool dump_registry = cli.get_bool("dump-registry", false);
    const int status = dispatch(command, cli);
    if (!trace_out.empty()) {
      write_chrome_trace(trace_out);
      std::cerr << "trace written to " << trace_out << "\n";
    }
    if (dump_registry) {
      std::cerr << global_registry().to_json() << "\n";
    }
    return status;
  } catch (const std::exception& e) {
    std::cerr << "pglb " << command << ": " << e.what() << "\n";
    return 1;
  }
}
