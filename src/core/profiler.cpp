#include "core/profiler.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "apps/registry.hpp"
#include "core/ccr.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "partition/random_hash.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace pglb {

double profile_single_machine(const MachineSpec& spec, AppKind app,
                              const EdgeList& graph, double scale,
                              const CancelToken* cancel) {
  // One profiling cell = one single-machine virtual execution; the span and
  // counter cover every caller (suite profiling, oracle estimation, the
  // planning service's per-class fan-out).  Cancellation is checked at cell
  // granularity: a cell that has started always completes (its output is
  // bit-identical to an undeadlined run), and a stuck cell is simulated by
  // the "profiler.cell" fault site rather than interrupted for real.
  check_cancel(cancel, "profiler.cell");
  fault_point("profiler.cell");
  check_cancel(cancel, "profiler.cell");  // a stall may have eaten the budget
  PGLB_TRACE_SPAN("profile.cell", "profiler");
  global_registry().count("profiler.cells");
  const Cluster solo{std::vector<MachineSpec>{spec}};
  const EdgeList prepared = prepare_graph_for(app, graph);
  const GraphStats stats = compute_stats(prepared);
  const WorkloadTraits traits = traits_from_stats(stats, scale);

  const RandomHashPartitioner partitioner;
  const std::vector<double> weights{1.0};
  const auto assignment =
      partitioner.partition(prepared, weights, kProfilingPartitionSeed);
  const auto dg = build_distributed(prepared, assignment);
  const auto result = run_app(app, prepared, dg, solo, traits);
  return result.report.makespan_seconds;
}

void CcrPool::insert(Entry entry) {
  if (entry.group_times.empty()) {
    throw std::invalid_argument("CcrPool::insert: empty group_times");
  }
  if (num_groups_ == 0) {
    num_groups_ = entry.group_times.size();
  } else if (entry.group_times.size() != num_groups_) {
    throw std::invalid_argument("CcrPool::insert: inconsistent group count");
  }
  entries_.push_back(std::move(entry));
}

bool CcrPool::has_app(AppKind app) const noexcept {
  for (const Entry& e : entries_) {
    if (e.app == app) return true;
  }
  return false;
}

const CcrPool::Entry* CcrPool::entry_for(AppKind app, double graph_alpha) const noexcept {
  const Entry* best = nullptr;
  double best_gap = std::numeric_limits<double>::infinity();
  for (const Entry& e : entries_) {
    if (e.app != app) continue;
    const double gap = std::abs(e.proxy_alpha - graph_alpha);
    if (gap < best_gap) {
      best = &e;
      best_gap = gap;
    }
  }
  return best;
}

std::vector<double> CcrPool::ccr_for(AppKind app, double graph_alpha) const {
  const Entry* best = entry_for(app, graph_alpha);
  if (best == nullptr) {
    throw std::out_of_range("CcrPool::ccr_for: app '" + std::string(to_string(app)) +
                            "' not profiled");
  }
  return ccr_from_times(best->group_times);
}

std::vector<double> CcrPool::mean_ccr_for(AppKind app) const {
  std::vector<double> sum;
  std::size_t count = 0;
  for (const Entry& e : entries_) {
    if (e.app != app) continue;
    const auto ccr = ccr_from_times(e.group_times);
    if (sum.empty()) sum.assign(ccr.size(), 0.0);
    for (std::size_t g = 0; g < ccr.size(); ++g) sum[g] += ccr[g];
    ++count;
  }
  if (count == 0) {
    throw std::out_of_range("CcrPool::mean_ccr_for: app not profiled");
  }
  for (double& s : sum) s /= static_cast<double>(count);
  return sum;
}

CcrPool profile_cluster(const Cluster& cluster, const ProxySuite& suite,
                        std::span<const AppKind> apps, ThreadPool* thread_pool,
                        const CancelToken* cancel) {
  PGLB_TRACE_SPAN("profile.cluster", "profiler");
  const auto groups = group_machines(cluster);
  const auto proxies = suite.proxies();

  // Flatten the (app, proxy, group) fan-out: every cell is an independent
  // single-machine virtual execution writing its own slot.  A CancelledError
  // (or injected fault) from any cell is rethrown by the fan-out.
  const std::size_t cells = apps.size() * proxies.size() * groups.size();
  std::vector<double> times(cells, 0.0);
  parallel_for(pool_or_global(thread_pool), cells, 1,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t cell = begin; cell < end; ++cell) {
                   const std::size_t g = cell % groups.size();
                   const std::size_t p = (cell / groups.size()) % proxies.size();
                   const std::size_t a = cell / (groups.size() * proxies.size());
                   times[cell] = profile_single_machine(groups[g].representative, apps[a],
                                                        proxies[p].graph, suite.scale(),
                                                        cancel);
                 }
               });

  // Assemble in the serial iteration order (app-major, then proxy).
  CcrPool pool;
  std::size_t cell = 0;
  for (const AppKind app : apps) {
    for (const ProxySuite::Proxy& proxy : proxies) {
      CcrPool::Entry entry;
      entry.app = app;
      entry.proxy_alpha = proxy.alpha;
      entry.group_times.assign(times.begin() + static_cast<std::ptrdiff_t>(cell),
                               times.begin() + static_cast<std::ptrdiff_t>(cell + groups.size()));
      cell += groups.size();
      pool.insert(std::move(entry));
    }
  }
  return pool;
}

std::vector<double> profile_groups_on_graph(const Cluster& cluster, AppKind app,
                                            const EdgeList& graph, double scale,
                                            ThreadPool* thread_pool,
                                            const CancelToken* cancel) {
  PGLB_TRACE_SPAN("profile.groups", "profiler");
  const auto groups = group_machines(cluster);
  std::vector<double> times(groups.size(), 0.0);
  parallel_for(pool_or_global(thread_pool), groups.size(), 1,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t g = begin; g < end; ++g) {
                   times[g] = profile_single_machine(groups[g].representative, app, graph,
                                                     scale, cancel);
                 }
               });
  return times;
}

}  // namespace pglb
