#include "core/estimators.hpp"

#include "core/ccr.hpp"
#include "gen/alpha_solver.hpp"
#include "partition/weights.hpp"

namespace pglb {

std::vector<double> UniformEstimator::weights(const Cluster& cluster, AppKind /*app*/,
                                              const EdgeList& /*graph*/,
                                              const GraphStats& /*stats*/) const {
  return uniform_weights(cluster.size());
}

std::vector<double> ThreadCountEstimator::weights(const Cluster& cluster, AppKind /*app*/,
                                                  const EdgeList& /*graph*/,
                                                  const GraphStats& /*stats*/) const {
  return thread_count_weights(cluster);
}

std::vector<double> ProxyCcrEstimator::weights(const Cluster& cluster, AppKind app,
                                               const EdgeList& /*graph*/,
                                               const GraphStats& stats) const {
  // The <1 ms Eq. 7 fit selects the best-matching proxy's CCR set.
  const double alpha = fit_alpha_clamped(stats.num_vertices, stats.num_edges);
  const auto group_ccr = pool_->ccr_for(app, alpha);
  const auto groups = group_machines(cluster);
  const auto per_machine = expand_group_values(cluster, groups, group_ccr);
  return shares_from_capabilities(per_machine);
}

std::vector<double> OracleEstimator::weights(const Cluster& cluster, AppKind app,
                                             const EdgeList& graph,
                                             const GraphStats& /*stats*/) const {
  const auto times = profile_groups_on_graph(cluster, app, graph, scale_);
  const auto group_ccr = ccr_from_times(times);
  const auto groups = group_machines(cluster);
  const auto per_machine = expand_group_values(cluster, groups, group_ccr);
  return shares_from_capabilities(per_machine);
}

}  // namespace pglb
