#pragma once
// Machine-type-keyed profiling database — the durable form of the CCR pool.
//
// Section III-B observes that single-machine proxy runtimes are a property of
// the (application, proxy, machine type) triple, independent of cluster
// composition: "varying the cluster composition among existing machines does
// not require CCR updates".  Storing raw times per machine type (rather than
// per-cluster CCR vectors) makes that literal: CCRs for ANY cluster drawn
// from profiled types are derived on demand, and only genuinely new machine
// types ever need profiling.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "machine/app_profile.hpp"

namespace pglb {

/// Fixed-precision ("%.6g") rendering of a proxy alpha — the canonical form
/// used inside stable profile-cache keys, so 2.1 always maps to "2.1"
/// regardless of how it was computed.
std::string canonical_alpha(double alpha);

class TimeDatabase {
 public:
  struct Key {
    AppKind app = AppKind::kPageRank;
    double proxy_alpha = 0.0;
    std::string machine;  ///< MachineSpec::name

    auto operator<=>(const Key&) const = default;

    /// Canonical "app|alpha|machine" form — a stable string identity usable
    /// as a cache key across processes (alpha via canonical_alpha()).
    std::string stable_string() const;
  };

  void record(const Key& key, double seconds);

  std::optional<double> lookup(const Key& key) const;

  bool has_machine(AppKind app, double proxy_alpha, const std::string& machine) const {
    return lookup({app, proxy_alpha, machine}).has_value();
  }

  /// Proxy alphas present for an app (sorted ascending).
  std::vector<double> alphas_for(AppKind app) const;

  /// The profiled alpha closest to `graph_alpha` (what ccr_for() will use),
  /// or nullopt when the app was never profiled.
  std::optional<double> nearest_alpha(AppKind app, double graph_alpha) const;

  /// Machine types for which *no* entry exists for (app, alpha) — the only
  /// ones an online refresh needs to profile.
  std::vector<MachineSpec> missing_machines(const Cluster& cluster, AppKind app,
                                            double proxy_alpha) const;

  /// Per-machine CCR vector (Eq. 1) for a cluster, using the stored times of
  /// the nearest profiled alpha.  Throws std::out_of_range when a machine
  /// type or the app has never been profiled.
  std::vector<double> ccr_for(const Cluster& cluster, AppKind app,
                              double graph_alpha) const;

  /// Absorb entries of `other` for keys not already present — the
  /// snapshot-restore hook (docs/PERSIST.md): a reloaded pool merges UNDER
  /// live entries, so a fresher in-memory time never regresses to its
  /// persisted predecessor.
  void merge(const TimeDatabase& other);

  std::size_t size() const noexcept { return times_.size(); }
  const std::map<Key, double>& entries() const noexcept { return times_; }

 private:
  std::map<Key, double> times_;
};

/// TSV persistence: "app \t alpha \t machine \t seconds" per line with a
/// versioned header.  Throws std::runtime_error on IO/parse errors.
void save_time_database(const TimeDatabase& db, const std::string& path);
TimeDatabase load_time_database(const std::string& path);

}  // namespace pglb
