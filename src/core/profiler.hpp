#pragma once
// Offline profiling (Sec. III-B, Fig. 7a): run each application on each
// synthetic proxy on ONE representative machine per group — individually, so
// no communication interferes — and collect the runtimes into the CCR pool.
// Profiling is a one-time cost per (application, machine type); the pool is
// reused across every future input graph.

#include <span>
#include <vector>

#include "cluster/groups.hpp"
#include "core/proxy_suite.hpp"
#include "machine/app_profile.hpp"
#include "util/deadline.hpp"

namespace pglb {

class ThreadPool;

/// Seed of the random-hash partition inside every profiling pass.  Fixed by
/// design, NOT plumbed from the pipeline seed: a profile entry must be a pure
/// function of (machine class, app, proxy) so that (a) the service's profile
/// cache — whose key deliberately carries no seed — always serves bytes
/// identical to a fresh run, and (b) CCR stays a hardware property rather
/// than a sampling artifact.  On a one-machine cluster the partition is
/// degenerate anyway (every edge lands on machine 0), so no information is
/// lost.  tests/test_profiler.cpp pins this contract.
inline constexpr std::uint64_t kProfilingPartitionSeed = 0;

/// Virtual-time runtime of `app` on `graph` executed on a single machine of
/// type `spec` (a one-machine cluster: no mirrors, no communication).
/// `scale` is the down-scaling factor of `graph` for trait re-inflation.
/// Each cell checks `cancel` before running (cooperative deadline support)
/// and carries the "profiler.cell" fault-injection site.
double profile_single_machine(const MachineSpec& spec, AppKind app,
                              const EdgeList& graph, double scale,
                              const CancelToken* cancel = nullptr);

/// The CCR pool (Fig. 7a right): per application and proxy distribution, the
/// profiled per-group runtimes; queried by the flow with the input graph's
/// fitted alpha.
class CcrPool {
 public:
  struct Entry {
    AppKind app = AppKind::kPageRank;
    double proxy_alpha = 0.0;
    std::vector<double> group_times;  ///< one per machine group
  };

  void insert(Entry entry);

  bool has_app(AppKind app) const noexcept;
  std::span<const Entry> entries() const noexcept { return entries_; }
  std::size_t num_groups() const noexcept { return num_groups_; }

  /// Pool entry for `app` whose proxy alpha is nearest to `graph_alpha`, or
  /// nullptr if the app was never profiled.  Exposes which proxy a lookup
  /// resolves to — the stable identity callers can cache against.
  const Entry* entry_for(AppKind app, double graph_alpha) const noexcept;

  /// CCR vector (Eq. 1, one per group) for `app`, using the pool entry whose
  /// proxy alpha is nearest to `graph_alpha`.  Throws std::out_of_range if
  /// the app was never profiled.
  std::vector<double> ccr_for(AppKind app, double graph_alpha) const;

  /// Average the per-proxy CCRs for `app` (used when no alpha is known).
  std::vector<double> mean_ccr_for(AppKind app) const;

 private:
  std::vector<Entry> entries_;
  std::size_t num_groups_ = 0;
};

/// Run the full profiling pass: every app x every proxy x one machine per
/// group.  Each (app, proxy, group) cell is an independent virtual execution,
/// so cells fan out over `pool` (nullptr = the global pool); results land in
/// per-cell slots and are assembled in the serial iteration order, so the
/// pool is bit-identical at any thread count.
/// `cancel` is polled per cell; a fired token aborts the remaining cells and
/// rethrows CancelledError from the fan-out.
CcrPool profile_cluster(const Cluster& cluster, const ProxySuite& suite,
                        std::span<const AppKind> apps, ThreadPool* pool = nullptr,
                        const CancelToken* cancel = nullptr);

/// Profile using an arbitrary graph instead of the proxies (the "real graph"
/// CCR of Fig. 8, and the oracle estimator).  Returns per-group times.
std::vector<double> profile_groups_on_graph(const Cluster& cluster,
                                            AppKind app, const EdgeList& graph,
                                            double scale, ThreadPool* pool = nullptr,
                                            const CancelToken* cancel = nullptr);

}  // namespace pglb
