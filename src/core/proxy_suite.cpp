#include "core/proxy_suite.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "gen/powerlaw.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace pglb {

ProxySuite::ProxySuite(double scale, std::uint64_t seed, ThreadPool* pool)
    : scale_(scale), seed_(seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("ProxySuite: scale must be in (0, 1]");
  }
  // The three Table II proxies are independent generator runs (seed_ + index),
  // so they build concurrently into fixed slots; per-proxy generation seconds
  // fold in index order afterwards.  Results match the serial build exactly.
  const auto entries = synthetic_graph_entries();
  proxies_.resize(entries.size());
  std::vector<double> seconds(entries.size(), 0.0);
  parallel_for(pool_or_global(pool), entries.size(), 1,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const Stopwatch timer;
                   proxies_[i] = make_proxy(entries[i].paper_alpha, seed_ + i, pool);
                   seconds[i] = timer.seconds();
                 }
               });
  for (const double s : seconds) generation_seconds_ += s;
}

ProxySuite::Proxy ProxySuite::make_proxy(double alpha, std::uint64_t seed,
                                         ThreadPool* pool,
                                         const CancelToken* cancel) const {
  // Cancellation is checked once up front: generation either runs to
  // completion (output identical to an undeadlined run) or never starts.
  check_cancel(cancel, "proxy.gen");
  fault_point("proxy.gen");
  check_cancel(cancel, "proxy.gen");  // a stall may have eaten the budget
  // arg = alpha in milli-units (spans carry one integer payload).
  PGLB_TRACE_SPAN_ARG("proxy.generate", "proxy",
                      static_cast<std::uint64_t>(alpha * 1000.0));
  global_registry().count("proxy.generated");
  PowerLawConfig config;
  config.num_vertices = static_cast<VertexId>(std::max<double>(
      1000.0, std::round(3'200'000.0 * scale_)));
  config.alpha = alpha;
  config.seed = seed;
  Proxy proxy;
  proxy.alpha = alpha;
  proxy.graph = generate_powerlaw(config, pool);
  proxy.stats = compute_stats(proxy.graph);
  return proxy;
}

void ProxySuite::add_proxy(double alpha, const CancelToken* cancel) {
  const Stopwatch timer;
  proxies_.push_back(make_proxy(alpha, seed_ + proxies_.size(), nullptr, cancel));
  generation_seconds_ += timer.seconds();
}

const ProxySuite::Proxy& ProxySuite::nearest(double alpha) const {
  if (proxies_.empty()) throw std::logic_error("ProxySuite: no proxies");
  const Proxy* best = nullptr;
  double best_gap = std::numeric_limits<double>::infinity();
  for (const Proxy& p : proxies_) {
    const double gap = std::abs(p.alpha - alpha);
    if (gap < best_gap) {
      best = &p;
      best_gap = gap;
    }
  }
  return *best;
}

const ProxySuite::Proxy& ProxySuite::ensure_coverage(double alpha,
                                                     const CancelToken* cancel) {
  double best_gap = std::numeric_limits<double>::infinity();
  for (const Proxy& p : proxies_) best_gap = std::min(best_gap, std::abs(p.alpha - alpha));
  if (best_gap > kCoverageMargin) {
    add_proxy(alpha, cancel);
    return proxies_.back();
  }
  return nearest(alpha);
}

}  // namespace pglb
