#include "core/proxy_suite.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "gen/powerlaw.hpp"
#include "util/stopwatch.hpp"

namespace pglb {

ProxySuite::ProxySuite(double scale, std::uint64_t seed) : scale_(scale), seed_(seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("ProxySuite: scale must be in (0, 1]");
  }
  for (const CorpusEntry& entry : synthetic_graph_entries()) {
    add_proxy(entry.paper_alpha);
  }
}

void ProxySuite::add_proxy(double alpha) {
  const Stopwatch timer;
  PowerLawConfig config;
  config.num_vertices = static_cast<VertexId>(std::max<double>(
      1000.0, std::round(3'200'000.0 * scale_)));
  config.alpha = alpha;
  config.seed = seed_ + proxies_.size();
  Proxy proxy;
  proxy.alpha = alpha;
  proxy.graph = generate_powerlaw(config);
  proxy.stats = compute_stats(proxy.graph);
  proxies_.push_back(std::move(proxy));
  generation_seconds_ += timer.seconds();
}

const ProxySuite::Proxy& ProxySuite::nearest(double alpha) const {
  if (proxies_.empty()) throw std::logic_error("ProxySuite: no proxies");
  const Proxy* best = nullptr;
  double best_gap = std::numeric_limits<double>::infinity();
  for (const Proxy& p : proxies_) {
    const double gap = std::abs(p.alpha - alpha);
    if (gap < best_gap) {
      best = &p;
      best_gap = gap;
    }
  }
  return *best;
}

const ProxySuite::Proxy& ProxySuite::ensure_coverage(double alpha) {
  double best_gap = std::numeric_limits<double>::infinity();
  for (const Proxy& p : proxies_) best_gap = std::min(best_gap, std::abs(p.alpha - alpha));
  if (best_gap > kCoverageMargin) {
    add_proxy(alpha);
    return proxies_.back();
  }
  return nearest(alpha);
}

}  // namespace pglb
