#pragma once
// Communication-aware weight refinement — the paper's named future work
// (Sec. III-B: "Minimizing communication overheads for distributed graph
// frameworks is beyond the scope of this paper and is considered for future
// work").
//
// Pure CCR shares equalise *compute* time, but mirror-exchange traffic also
// depends on the share vector: skewing data toward fewer machines lowers
// replication (and traffic) at the cost of compute balance.  This module
// searches the one-parameter family
//
//     p_m(theta) ~ capability_m ^ theta
//
// (theta = 1 is plain CCR; theta > 1 concentrates data on fast machines) for
// the theta minimising the predicted superstep time
//
//     max_m (p_m * W / throughput_m)  +  exchange(mirror_bytes(p))
//
// using the analytic replication model, i.e. without running a single trial
// partition.

#include <span>

#include "cluster/cluster.hpp"
#include "machine/app_profile.hpp"
#include "machine/perf_model.hpp"
#include "partition/replication_model.hpp"

namespace pglb {

struct CommAwareOptions {
  double theta_min = 0.5;
  double theta_max = 3.0;
  int grid_points = 26;
};

struct CommAwareResult {
  std::vector<double> shares;
  double theta = 1.0;
  double predicted_seconds = 0.0;       ///< per superstep, at the chosen theta
  double plain_ccr_predicted_seconds = 0.0;  ///< same predictor at theta = 1
};

/// Predicted per-superstep time for an explicit share vector.
double predict_superstep_seconds(const Cluster& cluster, const AppProfile& app,
                                 const WorkloadTraits& traits,
                                 const ExactHistogram& degree_histogram,
                                 EdgeId num_edges, std::span<const double> shares);

/// Search the theta family for the best predicted shares.
/// `capabilities` are the profiled per-machine CCRs (Eq. 1).
CommAwareResult comm_aware_shares(const Cluster& cluster, const AppProfile& app,
                                  const WorkloadTraits& traits,
                                  const ExactHistogram& degree_histogram,
                                  EdgeId num_edges,
                                  std::span<const double> capabilities,
                                  const CommAwareOptions& options = {});

}  // namespace pglb
