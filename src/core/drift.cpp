#include "core/drift.hpp"

#include <algorithm>
#include <cmath>

namespace pglb {

const char* to_string(ReprofileMode mode) noexcept {
  switch (mode) {
    case ReprofileMode::kAuto: return "auto";
    case ReprofileMode::kForce: return "force";
    case ReprofileMode::kNever: return "never";
  }
  return "auto";
}

std::optional<ReprofileMode> reprofile_mode_from_string(std::string_view name) noexcept {
  if (name == "auto") return ReprofileMode::kAuto;
  if (name == "force") return ReprofileMode::kForce;
  if (name == "never") return ReprofileMode::kNever;
  return std::nullopt;
}

double histogram_distance(const ExactHistogram& a, const ExactHistogram& b) {
  if (a.total() == 0 && b.total() == 0) return 0.0;
  if (a.total() == 0 || b.total() == 0) return 1.0;
  const std::size_t support =
      std::max(a.counts().size(), b.counts().size());
  double distance = 0.0;
  for (std::size_t value = 0; value < support; ++value) {
    distance += std::abs(a.probability(value) - b.probability(value));
  }
  return 0.5 * distance;
}

bool should_reprofile(const DriftPolicy& policy, const DriftStats& stats,
                      double hist_distance) noexcept {
  switch (policy.mode) {
    case ReprofileMode::kForce: return true;
    case ReprofileMode::kNever: return false;
    case ReprofileMode::kAuto: break;
  }
  return stats.churn() > policy.churn_threshold ||
         hist_distance > policy.histogram_threshold;
}

}  // namespace pglb
