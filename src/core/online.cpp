#include "core/online.hpp"

#include "core/profiler.hpp"
#include "gen/alpha_solver.hpp"
#include "partition/weights.hpp"
#include "util/log.hpp"

namespace pglb {

OnlineCcrManager::OnlineCcrManager(ProxySuite suite, std::span<const AppKind> apps)
    : suite_(std::move(suite)), apps_(apps.begin(), apps.end()) {}

std::size_t OnlineCcrManager::refresh(const Cluster& cluster) {
  std::size_t runs = 0;
  for (const AppKind app : apps_) {
    for (const ProxySuite::Proxy& proxy : suite_.proxies()) {
      for (const MachineSpec& machine :
           db_.missing_machines(cluster, app, proxy.alpha)) {
        const double seconds =
            profile_single_machine(machine, app, proxy.graph, suite_.scale());
        db_.record({app, proxy.alpha, machine.name}, seconds);
        ++runs;
        PGLB_LOG_DEBUG("online profile: ", to_string(app), " alpha=", proxy.alpha,
                       " on ", machine.name, " -> ", seconds, "s");
      }
    }
  }
  total_runs_ += runs;
  return runs;
}

std::vector<double> OnlineCcrEstimator::weights(const Cluster& cluster, AppKind app,
                                                const EdgeList& /*graph*/,
                                                const GraphStats& stats) const {
  const double alpha = fit_alpha_clamped(stats.num_vertices, stats.num_edges);
  return shares_from_capabilities(manager_->ccr_for(cluster, app, alpha));
}

}  // namespace pglb
