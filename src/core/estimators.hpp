#pragma once
// Capability estimators: the three partition-weight policies the paper
// compares (plus an oracle used for accuracy evaluation).
//
//  - uniform:      default PowerGraph (homogeneity assumption);
//  - thread-count: prior work [5] — read hardware configuration only;
//  - proxy-ccr:    this paper — profiled CCRs from the synthetic proxy pool,
//                  selected per application and per input-graph alpha;
//  - oracle:       CCR profiled on the actual input graph (the "real" CCR of
//                  Fig. 8; an upper bound no deployable system can reach,
//                  since it would require running the job to place the job).

#include <memory>
#include <string>

#include "cluster/cluster.hpp"
#include "core/profiler.hpp"
#include "graph/stats.hpp"
#include "machine/app_profile.hpp"

namespace pglb {

class CapabilityEstimator {
 public:
  virtual ~CapabilityEstimator() = default;

  virtual std::string name() const = 0;

  /// Normalised per-machine partition shares for running `app` on `graph`.
  virtual std::vector<double> weights(const Cluster& cluster, AppKind app,
                                      const EdgeList& graph,
                                      const GraphStats& stats) const = 0;
};

class UniformEstimator final : public CapabilityEstimator {
 public:
  std::string name() const override { return "uniform"; }
  std::vector<double> weights(const Cluster& cluster, AppKind app, const EdgeList& graph,
                              const GraphStats& stats) const override;
};

class ThreadCountEstimator final : public CapabilityEstimator {
 public:
  std::string name() const override { return "thread_count"; }
  std::vector<double> weights(const Cluster& cluster, AppKind app, const EdgeList& graph,
                              const GraphStats& stats) const override;
};

class ProxyCcrEstimator final : public CapabilityEstimator {
 public:
  /// The pool must have been profiled against `cluster`'s machine groups.
  explicit ProxyCcrEstimator(const CcrPool& pool) : pool_(&pool) {}

  std::string name() const override { return "proxy_ccr"; }
  std::vector<double> weights(const Cluster& cluster, AppKind app, const EdgeList& graph,
                              const GraphStats& stats) const override;

 private:
  const CcrPool* pool_;
};

class OracleEstimator final : public CapabilityEstimator {
 public:
  /// `scale` is the corpus down-scaling factor (for trait re-inflation).
  explicit OracleEstimator(double scale) : scale_(scale) {}

  std::string name() const override { return "oracle"; }
  std::vector<double> weights(const Cluster& cluster, AppKind app, const EdgeList& graph,
                              const GraphStats& stats) const override;

 private:
  double scale_;
};

}  // namespace pglb
