#include "core/comm_aware.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "partition/weights.hpp"

namespace pglb {

double predict_superstep_seconds(const Cluster& cluster, const AppProfile& app,
                                 const WorkloadTraits& traits,
                                 const ExactHistogram& degree_histogram,
                                 EdgeId num_edges, std::span<const double> shares) {
  if (shares.size() != cluster.size()) {
    throw std::invalid_argument("predict_superstep_seconds: shares/cluster size mismatch");
  }
  // Straggler compute: each machine gathers its share of the edges.
  double worst_compute = 0.0;
  for (MachineId m = 0; m < cluster.size(); ++m) {
    const double ops = shares[m] * static_cast<double>(num_edges) * traits.work_scale;
    worst_compute = std::max(
        worst_compute, ops / throughput_ops(cluster.machine(m), app, traits));
  }
  // Shared mirror exchange from the analytic replication model.
  const auto mirrors = expected_mirrors_per_machine(degree_histogram, shares);
  double total_mirrors = 0.0;
  for (const double mir : mirrors) total_mirrors += mir;
  const double bytes = 2.0 * app.bytes_per_mirror * total_mirrors * traits.work_scale;
  return worst_compute + cluster.network().exchange_seconds(bytes);
}

CommAwareResult comm_aware_shares(const Cluster& cluster, const AppProfile& app,
                                  const WorkloadTraits& traits,
                                  const ExactHistogram& degree_histogram,
                                  EdgeId num_edges,
                                  std::span<const double> capabilities,
                                  const CommAwareOptions& options) {
  if (capabilities.size() != cluster.size()) {
    throw std::invalid_argument("comm_aware_shares: capabilities/cluster size mismatch");
  }
  if (options.grid_points < 2 || options.theta_min >= options.theta_max) {
    throw std::invalid_argument("comm_aware_shares: malformed search options");
  }

  auto shares_at = [&](double theta) {
    std::vector<double> powered(capabilities.size());
    for (std::size_t m = 0; m < capabilities.size(); ++m) {
      powered[m] = std::pow(capabilities[m], theta);
    }
    return shares_from_capabilities(powered);
  };

  CommAwareResult result;
  result.plain_ccr_predicted_seconds = predict_superstep_seconds(
      cluster, app, traits, degree_histogram, num_edges, shares_at(1.0));

  double best_theta = 1.0;
  double best_time = result.plain_ccr_predicted_seconds;
  for (int i = 0; i < options.grid_points; ++i) {
    const double theta =
        options.theta_min + (options.theta_max - options.theta_min) * i /
                                (options.grid_points - 1);
    const double t = predict_superstep_seconds(cluster, app, traits, degree_histogram,
                                               num_edges, shares_at(theta));
    if (t < best_time) {
      best_time = t;
      best_theta = theta;
    }
  }
  // One refinement pass around the grid winner.
  const double step = (options.theta_max - options.theta_min) /
                      (options.grid_points - 1);
  for (double theta = best_theta - step; theta <= best_theta + step; theta += step / 8) {
    if (theta < options.theta_min || theta > options.theta_max) continue;
    const double t = predict_superstep_seconds(cluster, app, traits, degree_histogram,
                                               num_edges, shares_at(theta));
    if (t < best_time) {
      best_time = t;
      best_theta = theta;
    }
  }

  // Conservative deployment rule: the predictor assumes uniform per-edge
  // work and BSP execution, which is coarse for degree-weighted apps (TC) and
  // asynchronous ones (Coloring).  Only deviate from plain CCR when the
  // predicted win is clear.
  constexpr double kMinimumGain = 0.95;
  if (best_time > kMinimumGain * result.plain_ccr_predicted_seconds) {
    best_theta = 1.0;
    best_time = result.plain_ccr_predicted_seconds;
  }

  result.theta = best_theta;
  result.predicted_seconds = best_time;
  result.shares = shares_at(best_theta);
  return result;
}

}  // namespace pglb
