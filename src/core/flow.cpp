#include "core/flow.hpp"

#include "engine/distributed_graph.hpp"
#include "gen/alpha_solver.hpp"
#include "util/log.hpp"

namespace pglb {

FlowResult run_flow(const EdgeList& graph, AppKind app, const Cluster& cluster,
                    const CapabilityEstimator& estimator, const FlowOptions& options) {
  FlowResult result;

  // 1. Load & prepare the graph for this application.
  const EdgeList prepared = prepare_graph_for(app, graph);
  result.stats = compute_stats(prepared);
  result.fitted_alpha = fit_alpha_clamped(result.stats.num_vertices, result.stats.num_edges);

  // 2. Capability weights (CCR pool lookup / prior-work heuristic / uniform).
  result.weights = estimator.weights(cluster, app, prepared, result.stats);

  // 3. Partition.
  const auto partitioner =
      make_partitioner(options.partitioner, options.partitioner_options);
  const auto assignment = partitioner->partition(prepared, result.weights, options.seed);
  result.partition = compute_partition_metrics(prepared, assignment, result.weights);

  // 4. Finalise (masters + mirrors) and check memory feasibility.
  const auto dg = build_distributed(prepared, assignment);
  result.replication_factor = dg.replication_factor();
  const WorkloadTraits traits = traits_from_stats(result.stats, options.scale);
  result.memory_gb = estimated_memory_gb(dg, traits.work_scale);
  for (MachineId m = 0; m < cluster.size(); ++m) {
    const double capacity = cluster.machine(m).mem_gb;
    if (capacity > 0.0 && result.memory_gb[m] > capacity) {
      result.memory_feasible = false;
      PGLB_LOG_WARN("partition of ", result.memory_gb[m], " GB exceeds ",
                    cluster.machine(m).name, "'s ", capacity, " GB");
    }
  }

  // 5. Execute.
  result.app = run_app(app, prepared, dg, cluster, traits);
  return result;
}

}  // namespace pglb
