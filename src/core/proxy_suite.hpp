#pragma once
// The deployed proxy set (Sec. III-A): three synthetic power-law graphs
// (alpha 1.95 / 2.1 / 2.3, Table II) generated once and reused for every
// profiling pass.  If an input graph's fitted alpha falls outside the covered
// range, an extra proxy is generated on demand (Sec. III-A3).

#include <vector>

#include "gen/corpus.hpp"
#include "graph/stats.hpp"
#include "util/deadline.hpp"

namespace pglb {

class ThreadPool;

class ProxySuite {
 public:
  struct Proxy {
    double alpha = 0.0;
    EdgeList graph;
    GraphStats stats;
  };

  /// Generate the three Table II proxies at `scale`.  The proxies are
  /// independent generator runs (seed + index) built concurrently over `pool`
  /// (nullptr = the global pool); graphs and stats are bit-identical at any
  /// thread count.
  explicit ProxySuite(double scale = kDefaultScale, std::uint64_t seed = 17,
                      ThreadPool* pool = nullptr);

  std::span<const Proxy> proxies() const noexcept { return proxies_; }
  double scale() const noexcept { return scale_; }

  /// Proxy whose alpha is closest to `alpha`.
  const Proxy& nearest(double alpha) const;

  /// Coverage margin: an input alpha further than this from every proxy
  /// triggers on-demand generation in ensure_coverage().
  static constexpr double kCoverageMargin = 0.25;

  /// Return the nearest proxy, generating a new one first if `alpha` is
  /// outside the covered range.  `cancel` is polled before any on-demand
  /// generation starts (the "proxy.gen" site), so a deadlined request never
  /// pays for a proxy it cannot use.
  const Proxy& ensure_coverage(double alpha, const CancelToken* cancel = nullptr);

  /// Host seconds spent generating proxies so far (the paper reports 67 s for
  /// its three full-size proxies).
  double generation_seconds() const noexcept { return generation_seconds_; }

 private:
  Proxy make_proxy(double alpha, std::uint64_t seed, ThreadPool* pool,
                   const CancelToken* cancel = nullptr) const;
  void add_proxy(double alpha, const CancelToken* cancel = nullptr);

  double scale_ = 1.0;
  std::uint64_t seed_ = 0;
  std::vector<Proxy> proxies_;
  double generation_seconds_ = 0.0;
};

}  // namespace pglb
