#pragma once
// Graph-drift statistics for incremental planning (docs/DYNAMIC.md).
//
// The proxy-guided pipeline profiles CCR against a synthetic stand-in whose
// degree distribution matches the input graph at profiling time.  As a live
// graph mutates, that snapshot goes stale in two measurable ways:
//
//  - edge churn: the fraction of the profiled edge count that has been added
//    or removed since the profile was taken.  Cheap, monotone, and the
//    first-order signal that the graph is simply a different size now.
//  - distribution drift: total-variation distance between the degree
//    distribution the proxy was matched to and the live one.  Catches the
//    case churn misses — equal-sized graphs whose shape changed (a hub grew,
//    the tail thickened) so the proxy's CCR no longer represents the work.
//
// A DriftPolicy turns the two signals into a re-profile decision; the delta
// planner (src/dynamic/) re-runs CCR profiling only when the decision fires,
// and otherwise patches the existing plan through the estimator arithmetic.

#include <cstdint>
#include <optional>
#include <string_view>

#include "util/histogram.hpp"

namespace pglb {

/// Mutation accounting since the last CCR profile of a base.
struct DriftStats {
  std::uint64_t added = 0;           ///< edges added since the last profile
  std::uint64_t removed = 0;         ///< edges removed since the last profile
  std::uint64_t profiled_edges = 0;  ///< live edge count at the last profile

  /// (added + removed) / profiled_edges, the edge-churn fraction.  A base
  /// profiled empty (nothing to be stale against) reports full churn as soon
  /// as anything mutates.
  double churn() const noexcept {
    const double base = profiled_edges > 0 ? static_cast<double>(profiled_edges) : 1.0;
    return static_cast<double>(added + removed) / base;
  }

  void reset(std::uint64_t live_edges) noexcept {
    added = 0;
    removed = 0;
    profiled_edges = live_edges;
  }
};

/// When the delta planner re-runs CCR profiling (the `reprofile` request
/// field; docs/DYNAMIC.md).
enum class ReprofileMode {
  kAuto,   ///< re-profile when either drift threshold is exceeded
  kForce,  ///< always re-profile (the scratch-equivalence path)
  kNever,  ///< never re-profile; patch and re-cost only
};

const char* to_string(ReprofileMode mode) noexcept;
std::optional<ReprofileMode> reprofile_mode_from_string(std::string_view name) noexcept;

struct DriftPolicy {
  double churn_threshold = 0.05;      ///< re-profile above 5% edge churn
  double histogram_threshold = 0.10;  ///< re-profile above 0.10 TV distance
  ReprofileMode mode = ReprofileMode::kAuto;
};

/// Total-variation distance between the value distributions of two exact
/// histograms: 0.5 * sum_v |P_a(v) - P_b(v)|, in [0, 1].  Two empty
/// histograms are identical (0); an empty vs a non-empty one is maximally
/// distant (1).
double histogram_distance(const ExactHistogram& a, const ExactHistogram& b);

/// The re-profile decision: force/never short-circuit, auto compares both
/// drift signals against the policy thresholds.
bool should_reprofile(const DriftPolicy& policy, const DriftStats& stats,
                      double hist_distance) noexcept;

}  // namespace pglb
