#include "core/ccr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace pglb {

std::vector<double> ccr_from_times(std::span<const double> times) {
  if (times.empty()) throw std::invalid_argument("ccr_from_times: empty time vector");
  double slowest = 0.0;
  for (const double t : times) {
    if (!(t > 0.0) || !std::isfinite(t)) {
      throw std::invalid_argument("ccr_from_times: times must be positive");
    }
    slowest = std::max(slowest, t);
  }
  std::vector<double> ccr(times.size());
  for (std::size_t j = 0; j < times.size(); ++j) ccr[j] = slowest / times[j];
  return ccr;
}

std::vector<double> speedups_vs_baseline(std::span<const double> times,
                                         std::size_t baseline) {
  if (baseline >= times.size()) {
    throw std::invalid_argument("speedups_vs_baseline: baseline index out of range");
  }
  std::vector<double> speedup(times.size());
  for (std::size_t j = 0; j < times.size(); ++j) {
    if (!(times[j] > 0.0)) {
      throw std::invalid_argument("speedups_vs_baseline: times must be positive");
    }
    speedup[j] = times[baseline] / times[j];
  }
  return speedup;
}

double mean_ccr_error(std::span<const double> estimated,
                      std::span<const double> reference) {
  if (estimated.size() != reference.size() || estimated.empty()) {
    throw std::invalid_argument("mean_ccr_error: size mismatch");
  }
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t j = 0; j < estimated.size(); ++j) {
    if (estimated[j] == 1.0 && reference[j] == 1.0) continue;  // shared baseline
    total += relative_error(estimated[j], reference[j]);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace pglb
