#include "core/time_database.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "cluster/groups.hpp"
#include "core/ccr.hpp"
#include "util/parse.hpp"

namespace pglb {

std::string canonical_alpha(double alpha) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", alpha);
  return buffer;
}

std::string TimeDatabase::Key::stable_string() const {
  return std::string(to_string(app)) + "|" + canonical_alpha(proxy_alpha) + "|" + machine;
}

void TimeDatabase::record(const Key& key, double seconds) {
  if (!(seconds > 0.0) || !std::isfinite(seconds)) {
    throw std::invalid_argument("TimeDatabase::record: time must be positive");
  }
  times_[key] = seconds;
}

void TimeDatabase::merge(const TimeDatabase& other) {
  // map::insert never overwrites: present (live) entries win over `other`.
  times_.insert(other.times_.begin(), other.times_.end());
}

std::optional<double> TimeDatabase::lookup(const Key& key) const {
  const auto it = times_.find(key);
  if (it == times_.end()) return std::nullopt;
  return it->second;
}

std::vector<double> TimeDatabase::alphas_for(AppKind app) const {
  std::vector<double> alphas;
  for (const auto& [key, _] : times_) {
    if (key.app == app &&
        (alphas.empty() || alphas.back() != key.proxy_alpha)) {
      alphas.push_back(key.proxy_alpha);
    }
  }
  std::sort(alphas.begin(), alphas.end());
  alphas.erase(std::unique(alphas.begin(), alphas.end()), alphas.end());
  return alphas;
}

std::vector<MachineSpec> TimeDatabase::missing_machines(const Cluster& cluster,
                                                        AppKind app,
                                                        double proxy_alpha) const {
  std::vector<MachineSpec> missing;
  for (const MachineGroup& group : group_machines(cluster)) {
    if (!has_machine(app, proxy_alpha, group.representative.name)) {
      missing.push_back(group.representative);
    }
  }
  return missing;
}

std::optional<double> TimeDatabase::nearest_alpha(AppKind app, double graph_alpha) const {
  const auto alphas = alphas_for(app);
  if (alphas.empty()) return std::nullopt;
  double best_alpha = alphas.front();
  for (const double a : alphas) {
    if (std::abs(a - graph_alpha) < std::abs(best_alpha - graph_alpha)) best_alpha = a;
  }
  return best_alpha;
}

std::vector<double> TimeDatabase::ccr_for(const Cluster& cluster, AppKind app,
                                          double graph_alpha) const {
  const auto nearest = nearest_alpha(app, graph_alpha);
  if (!nearest) {
    throw std::out_of_range("TimeDatabase::ccr_for: app '" +
                            std::string(to_string(app)) + "' never profiled");
  }
  const double best_alpha = *nearest;

  std::vector<double> per_machine(cluster.size());
  for (MachineId m = 0; m < cluster.size(); ++m) {
    const auto t = lookup({app, best_alpha, cluster.machine(m).name});
    if (!t) {
      throw std::out_of_range("TimeDatabase::ccr_for: machine '" +
                              cluster.machine(m).name + "' not profiled for app '" +
                              to_string(app) + "'");
    }
    per_machine[m] = *t;
  }
  return ccr_from_times(per_machine);
}

void save_time_database(const TimeDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_time_database: cannot open " + path);
  // v2: numbers are written in shortest round-trip form (format_double); v1
  // wrote precision(17) iostream output.  Both encode identical values, but
  // the bytes differ, so the header version flags which build wrote the file.
  out << "# pglb-ccr-pool v2\n";
  // format_double keeps the file byte-stable and '.'-pointed under any
  // process locale (ofstream << double would honour the global locale).
  for (const auto& [key, seconds] : db.entries()) {
    out << to_string(key.app) << '\t' << format_double(key.proxy_alpha) << '\t'
        << key.machine << '\t' << format_double(seconds) << '\n';
  }
  if (!out) throw std::runtime_error("save_time_database: write failed: " + path);
}

TimeDatabase load_time_database(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_time_database: cannot open " + path);
  std::string header;
  std::getline(in, header);
  // v1 files (written by older builds) parse identically — only the byte
  // encoding of the numbers changed in v2 — so keep accepting them.
  if (header != "# pglb-ccr-pool v2" && header != "# pglb-ccr-pool v1") {
    throw std::runtime_error("load_time_database: bad header in " + path);
  }
  TimeDatabase db;
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    // Whitespace-split into (app, alpha, machine, seconds); numbers parse via
    // from_chars so a comma-decimal process locale cannot corrupt the pool.
    std::vector<std::string_view> fields;
    const std::string_view view = line;
    for (std::size_t i = 0; i < view.size();) {
      const std::size_t start = view.find_first_not_of(" \t", i);
      if (start == std::string_view::npos) break;
      const std::size_t stop = view.find_first_of(" \t", start);
      fields.push_back(view.substr(start, stop - start));
      i = stop == std::string_view::npos ? view.size() : stop;
    }
    std::optional<double> alpha, seconds;
    if (fields.size() == 4) {
      alpha = parse_double(fields[1]);
      seconds = parse_double(fields[3]);
    }
    if (!alpha || !seconds) {
      throw std::runtime_error("load_time_database: parse error at line " +
                               std::to_string(line_no) + " of " + path);
    }
    const std::string app_name(fields[0]);
    const std::string machine(fields[2]);
    const auto app = try_app_from_name(app_name);
    if (!app) {
      throw std::runtime_error("load_time_database: unknown app name '" + app_name +
                               "' at line " + std::to_string(line_no) + " of " + path);
    }
    db.record({*app, *alpha, machine}, *seconds);
  }
  return db;
}

}  // namespace pglb
