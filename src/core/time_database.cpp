#include "core/time_database.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "cluster/groups.hpp"
#include "core/ccr.hpp"

namespace pglb {

std::string canonical_alpha(double alpha) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", alpha);
  return buffer;
}

std::string TimeDatabase::Key::stable_string() const {
  return std::string(to_string(app)) + "|" + canonical_alpha(proxy_alpha) + "|" + machine;
}

void TimeDatabase::record(const Key& key, double seconds) {
  if (!(seconds > 0.0) || !std::isfinite(seconds)) {
    throw std::invalid_argument("TimeDatabase::record: time must be positive");
  }
  times_[key] = seconds;
}

std::optional<double> TimeDatabase::lookup(const Key& key) const {
  const auto it = times_.find(key);
  if (it == times_.end()) return std::nullopt;
  return it->second;
}

std::vector<double> TimeDatabase::alphas_for(AppKind app) const {
  std::vector<double> alphas;
  for (const auto& [key, _] : times_) {
    if (key.app == app &&
        (alphas.empty() || alphas.back() != key.proxy_alpha)) {
      alphas.push_back(key.proxy_alpha);
    }
  }
  std::sort(alphas.begin(), alphas.end());
  alphas.erase(std::unique(alphas.begin(), alphas.end()), alphas.end());
  return alphas;
}

std::vector<MachineSpec> TimeDatabase::missing_machines(const Cluster& cluster,
                                                        AppKind app,
                                                        double proxy_alpha) const {
  std::vector<MachineSpec> missing;
  for (const MachineGroup& group : group_machines(cluster)) {
    if (!has_machine(app, proxy_alpha, group.representative.name)) {
      missing.push_back(group.representative);
    }
  }
  return missing;
}

std::optional<double> TimeDatabase::nearest_alpha(AppKind app, double graph_alpha) const {
  const auto alphas = alphas_for(app);
  if (alphas.empty()) return std::nullopt;
  double best_alpha = alphas.front();
  for (const double a : alphas) {
    if (std::abs(a - graph_alpha) < std::abs(best_alpha - graph_alpha)) best_alpha = a;
  }
  return best_alpha;
}

std::vector<double> TimeDatabase::ccr_for(const Cluster& cluster, AppKind app,
                                          double graph_alpha) const {
  const auto nearest = nearest_alpha(app, graph_alpha);
  if (!nearest) {
    throw std::out_of_range("TimeDatabase::ccr_for: app '" +
                            std::string(to_string(app)) + "' never profiled");
  }
  const double best_alpha = *nearest;

  std::vector<double> per_machine(cluster.size());
  for (MachineId m = 0; m < cluster.size(); ++m) {
    const auto t = lookup({app, best_alpha, cluster.machine(m).name});
    if (!t) {
      throw std::out_of_range("TimeDatabase::ccr_for: machine '" +
                              cluster.machine(m).name + "' not profiled for app '" +
                              to_string(app) + "'");
    }
    per_machine[m] = *t;
  }
  return ccr_from_times(per_machine);
}

void save_time_database(const TimeDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_time_database: cannot open " + path);
  out << "# pglb-ccr-pool v1\n";
  out.precision(17);
  for (const auto& [key, seconds] : db.entries()) {
    out << to_string(key.app) << '\t' << key.proxy_alpha << '\t' << key.machine << '\t'
        << seconds << '\n';
  }
  if (!out) throw std::runtime_error("save_time_database: write failed: " + path);
}

TimeDatabase load_time_database(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_time_database: cannot open " + path);
  std::string header;
  std::getline(in, header);
  if (header != "# pglb-ccr-pool v1") {
    throw std::runtime_error("load_time_database: bad header in " + path);
  }
  TimeDatabase db;
  std::string line;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ss(line);
    std::string app_name, machine;
    double alpha = 0.0, seconds = 0.0;
    if (!(ss >> app_name >> alpha >> machine >> seconds)) {
      throw std::runtime_error("load_time_database: parse error at line " +
                               std::to_string(line_no) + " of " + path);
    }
    const auto app = try_app_from_name(app_name);
    if (!app) {
      throw std::runtime_error("load_time_database: unknown app name '" + app_name +
                               "' at line " + std::to_string(line_no) + " of " + path);
    }
    db.record({*app, alpha, machine}, seconds);
  }
  return db;
}

}  // namespace pglb
