#pragma once
// Online CCR maintenance (Sec. III-B):
//   "The CCR pool needs to be updated whenever computing resources in the
//    heterogeneous cluster change.  However, re-profiling is only required
//    if new machine types are deployed...  Varying the cluster composition
//    among existing machines does not require CCR updates.  Given its low
//    overhead, dynamic changes in resources can be captured by running the
//    profiler and updating the CCR pool online at regular intervals."
//
// OnlineCcrManager owns a TimeDatabase and a proxy suite; refresh() profiles
// exactly the (app, proxy, machine-type) triples that are missing for the
// current cluster, counting how much profiling work was actually spent — the
// incremental-cost property the paper argues for.

#include <memory>

#include "core/estimators.hpp"
#include "core/proxy_suite.hpp"
#include "core/time_database.hpp"

namespace pglb {

class OnlineCcrManager {
 public:
  OnlineCcrManager(ProxySuite suite, std::span<const AppKind> apps);

  /// Load previously persisted profiling results (e.g. from a prior
  /// deployment) before the first refresh.
  void preload(TimeDatabase db) { db_ = std::move(db); }

  /// Bring the database up to date for `cluster`: profile only machine types
  /// with no entry yet.  Returns the number of single-machine profiling runs
  /// executed (0 when the composition merely changed among known types).
  std::size_t refresh(const Cluster& cluster);

  /// Per-machine CCR for the current database (throws if refresh() was never
  /// run for some machine type in the cluster).
  std::vector<double> ccr_for(const Cluster& cluster, AppKind app,
                              double graph_alpha) const {
    return db_.ccr_for(cluster, app, graph_alpha);
  }

  const TimeDatabase& database() const noexcept { return db_; }
  std::size_t total_profiling_runs() const noexcept { return total_runs_; }

 private:
  ProxySuite suite_;
  std::vector<AppKind> apps_;
  TimeDatabase db_;
  std::size_t total_runs_ = 0;
};

/// Estimator adapter so the online manager plugs into run_flow() like the
/// offline ProxyCcrEstimator.
class OnlineCcrEstimator final : public CapabilityEstimator {
 public:
  explicit OnlineCcrEstimator(const OnlineCcrManager& manager) : manager_(&manager) {}

  std::string name() const override { return "online_ccr"; }
  std::vector<double> weights(const Cluster& cluster, AppKind app, const EdgeList& graph,
                              const GraphStats& stats) const override;

 private:
  const OnlineCcrManager* manager_;
};

}  // namespace pglb
