#pragma once
// Computation Capability Ratio (Sec. II-A, Eq. 1):
//
//   CCR(i, j) = max_j t(i, j) / t(i, j)
//
// for application i on machine (group) j — the slowest machine scores 1.0 and
// faster machines score their speedup over it.  Graph partitions distributed
// proportionally to CCR let heterogeneous machines hit the barrier together.

#include <span>
#include <vector>

namespace pglb {

/// Eq. 1 over a vector of per-machine execution times.
std::vector<double> ccr_from_times(std::span<const double> times);

/// Speedups relative to times[baseline] (Fig. 2 / Fig. 8 plot these).
std::vector<double> speedups_vs_baseline(std::span<const double> times,
                                         std::size_t baseline);

/// Mean relative error between an estimated and a reference CCR vector,
/// skipping entries where both are the 1.0 baseline.  This is the paper's
/// accuracy metric ("8% error" for proxies, "108%" for core counting).
double mean_ccr_error(std::span<const double> estimated,
                      std::span<const double> reference);

}  // namespace pglb
