#pragma once
// End-to-end graph-processing flow (Fig. 7b): load graph + application, pick
// the CCR-derived weights, partition with the selected algorithm, finalise
// masters/mirrors, execute, report.

#include <memory>

#include "apps/registry.hpp"
#include "core/estimators.hpp"
#include "partition/factory.hpp"
#include "partition/metrics.hpp"

namespace pglb {

struct FlowOptions {
  PartitionerKind partitioner = PartitionerKind::kRandomHash;
  PartitionerOptions partitioner_options;
  std::uint64_t seed = 1;
  /// Down-scaling factor of the input graph (trait re-inflation).
  double scale = 1.0;
};

struct FlowResult {
  GraphStats stats;            ///< of the app-prepared graph
  double fitted_alpha = 0.0;   ///< Eq. 7 fit on (V, E)
  std::vector<double> weights; ///< partition shares actually used
  PartitionMetrics partition;  ///< replication factor / balance achieved
  double replication_factor = 0.0;
  /// Estimated paper-scale partition memory per machine (GB).
  std::vector<double> memory_gb;
  /// False when some machine's partition exceeds its DRAM capacity
  /// (Sec. IV's "if the graph does not exceed the memory capacity" caveat —
  /// machines with unspecified capacity are treated as unbounded).
  bool memory_feasible = true;
  AppRunResult app;            ///< execution report + result digest
};

FlowResult run_flow(const EdgeList& graph, AppKind app, const Cluster& cluster,
                    const CapabilityEstimator& estimator, const FlowOptions& options = {});

}  // namespace pglb
