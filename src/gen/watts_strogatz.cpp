#include "gen/watts_strogatz.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace pglb {

EdgeList generate_watts_strogatz(const WattsStrogatzConfig& config) {
  if (config.neighbors < 1) {
    throw std::invalid_argument("generate_watts_strogatz: neighbors must be >= 1");
  }
  if (config.rewire_probability < 0.0 || config.rewire_probability > 1.0) {
    throw std::invalid_argument("generate_watts_strogatz: rewire probability in [0, 1]");
  }
  EdgeList graph(config.num_vertices);
  const std::uint64_t n = config.num_vertices;
  if (n < 3) return graph;

  Rng rng(config.seed);
  graph.reserve(n * config.neighbors);
  for (VertexId u = 0; u < config.num_vertices; ++u) {
    for (int k = 1; k <= config.neighbors; ++k) {
      VertexId v = static_cast<VertexId>((u + k) % n);
      if (rng.next_bool(config.rewire_probability)) {
        // Rewire to a uniform non-self target.
        do {
          v = static_cast<VertexId>(rng.next_below(n));
        } while (v == u);
      }
      graph.add(u, v);
    }
  }
  return graph;
}

}  // namespace pglb
