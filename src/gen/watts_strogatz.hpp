#pragma once
// Watts-Strogatz small-world generator — a *non*-power-law control.
//
// Sec. III-A2 warns that "generated synthetic proxy graphs and real graphs
// need to follow similar distributions to achieve accurate profiling"; this
// generator produces near-uniform-degree graphs to probe that limit: CCRs
// profiled on power-law proxies should degrade on such inputs (see
// bench/ablation_proxy_sensitivity).

#include <cstdint>

#include "graph/edge_list.hpp"

namespace pglb {

struct WattsStrogatzConfig {
  VertexId num_vertices = 0;
  /// Each vertex connects to `neighbors` successors on the ring (so the mean
  /// out-degree is exactly `neighbors`).
  int neighbors = 4;
  /// Probability of rewiring each ring edge to a uniform random target.
  double rewire_probability = 0.1;
  std::uint64_t seed = 23;
};

EdgeList generate_watts_strogatz(const WattsStrogatzConfig& config);

}  // namespace pglb
