#include "gen/chung_lu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pglb {

namespace {

/// Attachment weights w_i ~ (i+1)^(-1/(alpha-1)), the classic Chung-Lu
/// sequence yielding degree exponent alpha, with optional lognormal jitter.
/// The pow()/exp() pass is the generator's compute hot spot; each slot is
/// independent, so it shards freely, and the total is summed afterwards in
/// the same left-to-right order as before — bit-identical at any thread
/// count.  Only the normal draws stay serial (one sequential RNG stream).
std::vector<double> attachment_weights(const ChungLuConfig& config, Rng& rng,
                                       ThreadPool* pool) {
  const double exponent = -1.0 / (config.alpha - 1.0);
  std::vector<double> weights(config.num_vertices);
  std::vector<double> noise;
  if (config.weight_noise > 0.0) {
    noise.resize(config.num_vertices);
    for (double& z : noise) z = rng.next_normal();
  }
  parallel_for(pool_or_global(pool), config.num_vertices, 8192,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   double w = std::pow(static_cast<double>(i) + 1.0, exponent);
                   if (!noise.empty()) w *= std::exp(config.weight_noise * noise[i]);
                   weights[i] = w;
                 }
               });
  double total = 0.0;
  for (const double w : weights) total += w;
  if (config.max_degree_fraction > 0.0) {
    // Natural cutoff: a vertex's endpoint-selection probability (w_i / total)
    // bounds its expected degree at p_i * target_edges per direction.
    const double cap = config.max_degree_fraction * total;
    for (double& w : weights) w = std::min(w, cap);
  }
  return weights;
}

std::vector<VertexId> shuffled_ids(VertexId n, Rng& rng) {
  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), VertexId{0});
  rng.shuffle(std::span<VertexId>(ids));
  return ids;
}

}  // namespace

EdgeList generate_chung_lu(const ChungLuConfig& config, ThreadPool* pool) {
  if (config.alpha <= 1.0) {
    throw std::invalid_argument("generate_chung_lu: alpha must be > 1");
  }
  EdgeList graph(config.num_vertices);
  if (config.num_vertices < 2 || config.target_edges == 0) return graph;

  Rng rng(config.seed);
  const auto weights = attachment_weights(config, rng, pool);
  const DiscreteSampler sampler{std::span<const double>(weights)};

  // Independent id permutations decorrelate "hub as source" from "hub as
  // destination" and from raw vertex ids.
  const auto out_map = shuffled_ids(config.num_vertices, rng);
  const auto in_map = shuffled_ids(config.num_vertices, rng);

  const auto window = std::max<std::uint64_t>(
      2, static_cast<std::uint64_t>(config.locality_window *
                                    static_cast<double>(config.num_vertices)));

  graph.reserve(config.target_edges);
  const std::uint64_t n = config.num_vertices;
  while (graph.num_edges() < config.target_edges) {
    const VertexId src = out_map[sampler.sample(rng)];
    VertexId dst;
    if (rng.next_bool(config.locality)) {
      // Community rewiring: destination near the source id.
      const std::uint64_t offset = 1 + rng.next_below(window);
      dst = static_cast<VertexId>((src + offset) % n);
    } else {
      dst = in_map[sampler.sample(rng)];
    }
    if (dst == src) continue;
    graph.add(src, dst);
  }
  return graph;
}

}  // namespace pglb
