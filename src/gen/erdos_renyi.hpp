#pragma once
// Erdos-Renyi G(n, m) generator.  Not used by the paper itself; serves as a
// non-power-law control substrate in tests and proxy-sensitivity ablations
// (uniform-degree graphs have no skew, isolating the skew terms of the
// machine model).

#include <cstdint>

#include "graph/edge_list.hpp"

namespace pglb {

struct ErdosRenyiConfig {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  std::uint64_t seed = 11;
  bool allow_self_loops = false;
};

EdgeList generate_erdos_renyi(const ErdosRenyiConfig& config);

}  // namespace pglb
