#include "gen/alpha_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace pglb {

namespace {

struct Moments {
  double s0 = 0.0;   ///< sum d^-alpha
  double s1 = 0.0;   ///< sum d^(1-alpha)
  double ds0 = 0.0;  ///< d/dalpha s0 = -sum ln(d) d^-alpha
  double ds1 = 0.0;  ///< d/dalpha s1 = -sum ln(d) d^(1-alpha)
};

Moments compute_moments(double alpha, std::uint64_t support) {
  KahanSum s0, s1, ds0, ds1;
  for (std::uint64_t d = 1; d <= support; ++d) {
    const double dd = static_cast<double>(d);
    const double ld = std::log(dd);
    const double p = std::exp(-alpha * ld);  // d^-alpha
    const double q = dd * p;                 // d^(1-alpha)
    s0.add(p);
    s1.add(q);
    ds0.add(-ld * p);
    ds1.add(-ld * q);
  }
  return Moments{s0.value(), s1.value(), ds0.value(), ds1.value()};
}

std::uint64_t effective_support(VertexId num_vertices, const AlphaSolverOptions& options) {
  std::uint64_t support = options.degree_support;
  if (support == 0) {
    support = num_vertices > 1 ? static_cast<std::uint64_t>(num_vertices) - 1 : 1;
  }
  return std::clamp<std::uint64_t>(support, 1, options.support_cap);
}

}  // namespace

double powerlaw_mean_degree(double alpha, std::uint64_t degree_support) {
  if (degree_support == 0) throw std::invalid_argument("powerlaw_mean_degree: support must be >= 1");
  const Moments m = compute_moments(alpha, degree_support);
  return m.s1 / m.s0;
}

AlphaResult solve_alpha(VertexId num_vertices, EdgeId num_edges,
                        const AlphaSolverOptions& options) {
  if (num_vertices == 0) throw std::invalid_argument("solve_alpha: graph has no vertices");
  const std::uint64_t support = effective_support(num_vertices, options);
  const double target_mean =
      static_cast<double>(num_edges) / static_cast<double>(num_vertices);

  // The truncated power law's mean degree spans (1, mean at min_alpha);
  // reject targets we cannot represent.
  const double max_mean = powerlaw_mean_degree(options.min_alpha, support);
  if (target_mean < 1.0 || target_mean > max_mean) {
    throw std::invalid_argument(
        "solve_alpha: mean degree " + std::to_string(target_mean) +
        " outside representable range (1, " + std::to_string(max_mean) + ")");
  }

  AlphaResult result;
  double alpha = std::clamp(options.initial_alpha, options.min_alpha, options.max_alpha);
  for (int it = 0; it < options.max_iterations; ++it) {
    const Moments m = compute_moments(alpha, support);
    const double f = m.s1 / m.s0 - target_mean;
    result.alpha = alpha;
    result.iterations = it + 1;
    result.residual = std::abs(f);
    if (result.residual < options.tolerance) {
      result.converged = true;
      return result;
    }
    // F' = (s1' s0 - s1 s0') / s0^2
    const double fprime = (m.ds1 * m.s0 - m.s1 * m.ds0) / (m.s0 * m.s0);
    if (fprime == 0.0 || !std::isfinite(fprime)) break;
    double next = alpha - f / fprime;
    if (!std::isfinite(next)) break;
    // Dampen runaway steps: bisect toward the clamp boundary instead of
    // jumping outside the bracket.
    next = std::clamp(next, options.min_alpha, options.max_alpha);
    if (next == alpha) {
      result.converged = result.residual < options.tolerance;
      return result;
    }
    alpha = next;
  }
  return result;
}

double fit_alpha_clamped(VertexId num_vertices, EdgeId num_edges,
                         const AlphaSolverOptions& options) {
  if (num_vertices == 0) {
    throw std::invalid_argument("fit_alpha_clamped: graph has no vertices");
  }
  const std::uint64_t support = effective_support(num_vertices, options);
  const double target_mean =
      static_cast<double>(num_edges) / static_cast<double>(num_vertices);
  if (target_mean >= powerlaw_mean_degree(options.min_alpha, support)) {
    return options.min_alpha;  // denser than any representable power law
  }
  if (target_mean <= powerlaw_mean_degree(options.max_alpha, support)) {
    return options.max_alpha;  // sparser than any representable power law
  }
  return solve_alpha(num_vertices, num_edges, options).alpha;
}

}  // namespace pglb
