#pragma once
// Synthetic power-law proxy graph generator — Algorithm 1 of the paper.
//
// For each vertex u, an out-degree is drawn from the truncated discrete
// power law P(d) ~ d^-alpha via the cdf ("multinomial(cdf)" in the paper's
// pseudocode), then each of its out-neighbours is produced as
// (u + h) mod N for a hash value h.  The paper's listing uses a single
// constant hash; a literal reading would emit `degree` copies of one edge, so
// — like the authors' actual implementation must — we advance a deterministic
// per-edge hash stream (seeded once per generator run).  Self-loops are
// skipped per Section III-A2.

#include <cstdint>

#include "graph/edge_list.hpp"

namespace pglb {

class ThreadPool;

struct PowerLawConfig {
  VertexId num_vertices = 0;
  double alpha = 2.1;
  /// Truncation of the degree distribution.  0 = min(num_vertices - 1, 10^6).
  std::uint64_t max_degree = 0;
  std::uint64_t seed = 42;
  bool allow_self_loops = false;
};

/// Expected edge count of the generator: |V| * E[d] for the truncated power
/// law.  Used by the proxy suite to size proxies against Table II.
EdgeId expected_powerlaw_edges(const PowerLawConfig& config);

/// Generate the proxy graph.  Deterministic for a fixed config: degrees come
/// from the seeded serial stream, edge targets from a stateless per-edge hash
/// stream, so the result is bit-identical at any `pool` thread count (nullptr
/// = the global pool).
EdgeList generate_powerlaw(const PowerLawConfig& config, ThreadPool* pool = nullptr);

/// Invert expected_powerlaw_edges: find the alpha whose expected edge count
/// matches `target_edges` (uses the Eq. 7 Newton solver).
double alpha_for_target_edges(VertexId num_vertices, EdgeId target_edges);

}  // namespace pglb
