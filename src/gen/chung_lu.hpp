#pragma once
// Chung-Lu style generator used to synthesise the "natural graph" corpus
// (Table II stand-ins).
//
// Deliberately a *different* random-graph family than the Algorithm 1 proxy
// generator: vertex attachment weights follow a jittered power law, endpoints
// are sampled proportionally to weight through independent shuffled id maps,
// and a fraction of edges is rewired locally to mimic community structure.
// This preserves the paper's experimental gap — proxies predict machine
// capability on graphs they were NOT drawn from, only matched in (V, E,
// alpha).

#include <cstdint>

#include "graph/edge_list.hpp"

namespace pglb {

class ThreadPool;

struct ChungLuConfig {
  VertexId num_vertices = 0;
  EdgeId target_edges = 0;
  /// Power-law exponent of the degree distribution to aim for.
  double alpha = 2.1;
  /// Lognormal jitter applied to attachment weights (0 disables).
  double weight_noise = 0.35;
  /// Fraction of edges whose destination is rewired near the source id
  /// (community locality).
  double locality = 0.2;
  /// Width of the local rewiring window as a fraction of |V|.
  double locality_window = 0.01;
  /// Natural cutoff: cap any single vertex's expected degree at this fraction
  /// of the edge count.  Real SNAP graphs have hubs of ~0.03-0.3% of |E|
  /// (LiveJournal: 20k of 69M); an uncut alpha<2 Chung-Lu tail would produce
  /// far heavier hubs, especially at reduced scale.  0 disables the cap.
  double max_degree_fraction = 0.002;
  std::uint64_t seed = 7;
};

/// Deterministic for a fixed config at any `pool` thread count (nullptr =
/// the global pool); the weight table shards, edge sampling is one stream.
EdgeList generate_chung_lu(const ChungLuConfig& config, ThreadPool* pool = nullptr);

}  // namespace pglb
