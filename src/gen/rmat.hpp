#pragma once
// R-MAT (recursive matrix) generator — another skewed-graph family for
// ablation studies on proxy coverage.

#include <cstdint>

#include "graph/edge_list.hpp"

namespace pglb {

struct RmatConfig {
  /// log2 of the vertex count (num_vertices = 1 << scale).
  int scale = 16;
  EdgeId num_edges = 0;
  /// Quadrant probabilities; must sum to 1.  Graph500 defaults.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  std::uint64_t seed = 13;
};

EdgeList generate_rmat(const RmatConfig& config);

}  // namespace pglb
