#pragma once
// The paper's graph corpus (Table II).
//
// The four "real world" SNAP graphs are not redistributable here, so each is
// replaced by a Chung-Lu surrogate matched in |V|, |E| and fitted alpha (see
// DESIGN.md, substitutions).  The three synthetic proxies are the paper's own
// Algorithm 1 outputs and are regenerated exactly as specified
// (|V| = 3.2M, alpha in {1.95, 2.1, 2.3}).
//
// A scale factor in (0, 1] shrinks every graph proportionally so the suite
// runs on small hosts; WorkloadTraits re-inflate model inputs to paper scale
// (perf_model.hpp), keeping the reproduced figures scale-invariant.

#include <span>
#include <string>

#include "graph/edge_list.hpp"
#include "graph/stats.hpp"

namespace pglb {

class ThreadPool;

struct CorpusEntry {
  std::string name;
  VertexId paper_vertices = 0;
  EdgeId paper_edges = 0;
  double paper_footprint_mb = 0.0;
  /// Table II alpha for the synthetic proxies; 0 for natural graphs (the
  /// paper leaves those to the Eq. 7 solver, as do we).
  double paper_alpha = 0.0;
  bool synthetic = false;
};

/// Table II rows: amazon, citation, social_network, wiki.
std::span<const CorpusEntry> natural_graph_entries();

/// Table II rows: synthetic_one..three (the profiling proxies).
std::span<const CorpusEntry> synthetic_graph_entries();

const CorpusEntry& corpus_entry(const std::string& name);

/// The Friendster social network of Fig. 6 (65.6M vertices, 1.8B edges) —
/// used only for the degree-distribution illustration, not in Table II's
/// evaluation corpus.  Materialise it at a very small scale (e.g. 1/2048).
const CorpusEntry& friendster_entry();

/// Materialise a corpus graph at `scale` (vertices and edges multiplied by
/// scale, minimum 1k vertices).  Deterministic per (entry, scale, seed) at
/// any `pool` thread count (nullptr = the global pool).
EdgeList make_corpus_graph(const CorpusEntry& entry, double scale,
                           std::uint64_t seed = 1, ThreadPool* pool = nullptr);

/// Default scale for tests/benches on small hosts.
inline constexpr double kDefaultScale = 1.0 / 64.0;

}  // namespace pglb
