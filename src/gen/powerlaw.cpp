#include "gen/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gen/alpha_solver.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace pglb {

namespace {

std::uint64_t effective_max_degree(const PowerLawConfig& config) {
  std::uint64_t cap = config.max_degree;
  if (cap == 0) {
    cap = config.num_vertices > 1 ? static_cast<std::uint64_t>(config.num_vertices) - 1 : 1;
    cap = std::min<std::uint64_t>(cap, 1'000'000);
  }
  return std::max<std::uint64_t>(cap, 1);
}

DiscreteSampler degree_sampler(double alpha, std::uint64_t max_degree) {
  // pdf[i] = i^-alpha for degree i in [1, max_degree] (Algorithm 1 lines 2-5).
  std::vector<double> pdf(max_degree);
  for (std::uint64_t d = 1; d <= max_degree; ++d) {
    pdf[d - 1] = std::pow(static_cast<double>(d), -alpha);
  }
  return DiscreteSampler(pdf);
}

/// Vertices per parallel shard of the edge fan-out.
constexpr std::size_t kVertexGrain = 4096;

}  // namespace

EdgeId expected_powerlaw_edges(const PowerLawConfig& config) {
  if (config.num_vertices == 0) return 0;
  const double mean = powerlaw_mean_degree(config.alpha, effective_max_degree(config));
  return static_cast<EdgeId>(std::llround(mean * static_cast<double>(config.num_vertices)));
}

EdgeList generate_powerlaw(const PowerLawConfig& config, ThreadPool* pool) {
  if (config.num_vertices == 0) return EdgeList(0);

  const std::uint64_t max_degree = effective_max_degree(config);
  const DiscreteSampler sampler = degree_sampler(config.alpha, max_degree);
  const std::uint64_t n = config.num_vertices;

  if (n == 1) {
    // Degenerate case (possible self-loop skips): keep the trivial serial path.
    EdgeList graph(config.num_vertices);
    Rng rng(config.seed);
    std::uint64_t edge_counter = 0;
    const std::uint64_t degree = sampler.sample(rng) + 1;
    for (std::uint64_t d = 0; d < degree; ++d) {
      (void)hash_u64(edge_counter++, config.seed);
      if (config.allow_self_loops) graph.add(0, 0);
    }
    return graph;
  }

  // Degree pass: one sampler draw per vertex from the single seeded stream
  // (exactly the serial draw order), recorded so the edge fan-out below can
  // run sharded.  prefix[u] is vertex u's slot in the per-edge hash stream.
  Rng rng(config.seed);
  std::vector<std::uint32_t> degrees(config.num_vertices);
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(config.num_vertices) + 1, 0);
  for (VertexId u = 0; u < config.num_vertices; ++u) {
    const std::uint64_t degree = sampler.sample(rng) + 1;  // sampler index 0 == degree 1
    degrees[u] = static_cast<std::uint32_t>(degree);
    prefix[u + 1] = prefix[u] + degree;
  }

  // Edge fan-out (Algorithm 1 line 10): v = (u + hash) mod N with the hash
  // advanced per edge.  The stream is indexed by the global edge counter, so
  // every shard derives its edges statelessly and writes a disjoint slice —
  // the output is bit-identical to the serial pass at any thread count.
  std::vector<Edge> edges(prefix[config.num_vertices]);
  parallel_for(pool_or_global(pool), config.num_vertices, kVertexGrain,
               [&](std::size_t begin, std::size_t end) {
                 for (std::size_t u = begin; u < end; ++u) {
                   std::uint64_t edge_counter = prefix[u];
                   for (std::uint32_t d = 0; d < degrees[u]; ++d) {
                     const std::uint64_t h = hash_u64(edge_counter, config.seed);
                     // Offset in [1, n-1] avoids self-loops by construction
                     // when disallowed.
                     std::uint64_t offset = h % n;
                     if (!config.allow_self_loops && offset == 0) {
                       offset = 1 + (h >> 32) % (n - 1);
                     }
                     edges[edge_counter] =
                         Edge{static_cast<VertexId>(u),
                              static_cast<VertexId>((u + offset) % n)};
                     ++edge_counter;
                   }
                 }
               });
  return EdgeList(config.num_vertices, std::move(edges));
}

double alpha_for_target_edges(VertexId num_vertices, EdgeId target_edges) {
  return solve_alpha(num_vertices, target_edges).alpha;
}

}  // namespace pglb
