#include "gen/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gen/alpha_solver.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace pglb {

namespace {

std::uint64_t effective_max_degree(const PowerLawConfig& config) {
  std::uint64_t cap = config.max_degree;
  if (cap == 0) {
    cap = config.num_vertices > 1 ? static_cast<std::uint64_t>(config.num_vertices) - 1 : 1;
    cap = std::min<std::uint64_t>(cap, 1'000'000);
  }
  return std::max<std::uint64_t>(cap, 1);
}

DiscreteSampler degree_sampler(double alpha, std::uint64_t max_degree) {
  // pdf[i] = i^-alpha for degree i in [1, max_degree] (Algorithm 1 lines 2-5).
  std::vector<double> pdf(max_degree);
  for (std::uint64_t d = 1; d <= max_degree; ++d) {
    pdf[d - 1] = std::pow(static_cast<double>(d), -alpha);
  }
  return DiscreteSampler(pdf);
}

}  // namespace

EdgeId expected_powerlaw_edges(const PowerLawConfig& config) {
  if (config.num_vertices == 0) return 0;
  const double mean = powerlaw_mean_degree(config.alpha, effective_max_degree(config));
  return static_cast<EdgeId>(std::llround(mean * static_cast<double>(config.num_vertices)));
}

EdgeList generate_powerlaw(const PowerLawConfig& config) {
  EdgeList graph(config.num_vertices);
  if (config.num_vertices == 0) return graph;

  const std::uint64_t max_degree = effective_max_degree(config);
  const DiscreteSampler sampler = degree_sampler(config.alpha, max_degree);
  Rng rng(config.seed);
  graph.reserve(expected_powerlaw_edges(config));

  const std::uint64_t n = config.num_vertices;
  std::uint64_t edge_counter = 0;
  for (VertexId u = 0; u < config.num_vertices; ++u) {
    const std::uint64_t degree = sampler.sample(rng) + 1;  // sampler index 0 == degree 1
    for (std::uint64_t d = 0; d < degree; ++d) {
      // Algorithm 1 line 10: v = (u + hash) mod N, with the hash advanced
      // per edge so distinct neighbours are produced.
      const std::uint64_t h = hash_u64(edge_counter++, config.seed);
      // Offset in [1, n-1] avoids self-loops by construction when disallowed.
      std::uint64_t offset = h % n;
      if (!config.allow_self_loops && n > 1 && offset == 0) offset = 1 + (h >> 32) % (n - 1);
      const auto v = static_cast<VertexId>((u + offset) % n);
      if (!config.allow_self_loops && v == u) continue;  // only possible when n == 1
      graph.add(u, v);
    }
  }
  return graph;
}

double alpha_for_target_edges(VertexId num_vertices, EdgeId target_edges) {
  return solve_alpha(num_vertices, target_edges).alpha;
}

}  // namespace pglb
