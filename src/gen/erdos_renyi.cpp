#include "gen/erdos_renyi.hpp"

#include "util/rng.hpp"

namespace pglb {

EdgeList generate_erdos_renyi(const ErdosRenyiConfig& config) {
  EdgeList graph(config.num_vertices);
  if (config.num_vertices == 0) return graph;
  if (config.num_vertices == 1 && !config.allow_self_loops) return graph;

  Rng rng(config.seed);
  graph.reserve(config.num_edges);
  while (graph.num_edges() < config.num_edges) {
    const auto src = static_cast<VertexId>(rng.next_below(config.num_vertices));
    const auto dst = static_cast<VertexId>(rng.next_below(config.num_vertices));
    if (!config.allow_self_loops && src == dst) continue;
    graph.add(src, dst);
  }
  return graph;
}

}  // namespace pglb
