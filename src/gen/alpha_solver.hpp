#pragma once
// Numerical procedure of Section III-A3: compute the power-law exponent alpha
// of a graph from only |V| and |E|.
//
// The degree distribution is modelled as the truncated discrete power law
//     P(d) = d^-alpha / sum_{i=1..D} i^-alpha ,   d in [1, D]
// (Eq. 4).  Its first moment (Eq. 5) is equated with the empirical mean
// degree |E| / |V| (Eq. 6), and alpha is found as the root of
//     F(alpha) = sum_d d^(1-alpha) / sum_i i^-alpha - |E|/|V|       (Eq. 7)
// by Newton's method with the analytic derivative.

#include <cstdint>

#include "graph/types.hpp"

namespace pglb {

struct AlphaSolverOptions {
  /// Truncation point D of the degree support.  0 means "derive from the
  /// vertex count" (min(|V| - 1, support_cap)).
  std::uint64_t degree_support = 0;
  /// Upper bound on D so the per-iteration O(D) sums stay cheap on huge
  /// graphs; the tail above 10^6 contributes numerically nothing for
  /// alpha > 1.5.
  std::uint64_t support_cap = 1'000'000;
  double initial_alpha = 2.0;
  double tolerance = 1e-10;       ///< on |F(alpha)|
  int max_iterations = 200;
  double min_alpha = 1.01;        ///< clamp range for Newton steps
  double max_alpha = 6.0;
};

struct AlphaResult {
  double alpha = 0.0;
  int iterations = 0;
  double residual = 0.0;   ///< |F(alpha)| at the returned point
  bool converged = false;
};

/// First moment E[d] of the truncated power law with exponent alpha and
/// support [1, D] (Eq. 5).
double powerlaw_mean_degree(double alpha, std::uint64_t degree_support);

/// Solve Eq. 7 for alpha given vertex and edge counts.
/// Throws std::invalid_argument for degenerate inputs (no vertices, or a mean
/// degree outside what the truncated power law can represent).
AlphaResult solve_alpha(VertexId num_vertices, EdgeId num_edges,
                        const AlphaSolverOptions& options = {});

/// Pipeline-safe variant: graphs denser or sparser than the truncated power
/// law can represent (e.g. near-complete test graphs) clamp to the range
/// boundary instead of throwing.  Only a zero-vertex graph still throws.
double fit_alpha_clamped(VertexId num_vertices, EdgeId num_edges,
                         const AlphaSolverOptions& options = {});

}  // namespace pglb
