#include "gen/corpus.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "gen/alpha_solver.hpp"
#include "gen/chung_lu.hpp"
#include "gen/powerlaw.hpp"

namespace pglb {

namespace {

// Table II verbatim.  The synthetic rows' edge counts are the paper's
// reported generator outputs; we re-derive ours from (V, alpha).
const std::array<CorpusEntry, 4>& natural_entries() {
  static const std::array<CorpusEntry, 4> entries = {{
      {.name = "amazon",
       .paper_vertices = 403'394,
       .paper_edges = 3'387'388,
       .paper_footprint_mb = 46.0,
       .paper_alpha = 0.0,
       .synthetic = false},
      {.name = "citation",
       .paper_vertices = 3'774'768,
       .paper_edges = 16'518'948,
       .paper_footprint_mb = 268.0,
       .paper_alpha = 0.0,
       .synthetic = false},
      {.name = "social_network",
       .paper_vertices = 4'847'571,
       .paper_edges = 68'993'773,
       .paper_footprint_mb = 1100.0,
       .paper_alpha = 0.0,
       .synthetic = false},
      {.name = "wiki",
       .paper_vertices = 2'394'385,
       .paper_edges = 5'021'410,
       .paper_footprint_mb = 64.0,
       .paper_alpha = 0.0,
       .synthetic = false},
  }};
  return entries;
}

const std::array<CorpusEntry, 3>& synthetic_entries() {
  static const std::array<CorpusEntry, 3> entries = {{
      {.name = "synthetic_one",
       .paper_vertices = 3'200'000,
       .paper_edges = 42'011'862,
       .paper_footprint_mb = 1000.0,
       .paper_alpha = 1.95,
       .synthetic = true},
      {.name = "synthetic_two",
       .paper_vertices = 3'200'000,
       .paper_edges = 15'962'000,
       .paper_footprint_mb = 390.0,
       .paper_alpha = 2.1,
       .synthetic = true},
      {.name = "synthetic_three",
       .paper_vertices = 3'200'000,
       .paper_edges = 7'061'000,
       .paper_footprint_mb = 170.0,
       .paper_alpha = 2.3,
       .synthetic = true},
  }};
  return entries;
}

const CorpusEntry& friendster() {
  static const CorpusEntry entry = {.name = "friendster",
                                    .paper_vertices = 65'608'366,
                                    .paper_edges = 1'806'067'135,
                                    .paper_footprint_mb = 31'000.0,
                                    .paper_alpha = 0.0,
                                    .synthetic = false};
  return entry;
}

}  // namespace

std::span<const CorpusEntry> natural_graph_entries() { return natural_entries(); }

const CorpusEntry& friendster_entry() { return friendster(); }
std::span<const CorpusEntry> synthetic_graph_entries() { return synthetic_entries(); }

const CorpusEntry& corpus_entry(const std::string& name) {
  for (const CorpusEntry& e : natural_entries()) {
    if (e.name == name) return e;
  }
  for (const CorpusEntry& e : synthetic_entries()) {
    if (e.name == name) return e;
  }
  if (name == friendster().name) return friendster();
  throw std::out_of_range("corpus_entry: unknown graph '" + name + "'");
}

EdgeList make_corpus_graph(const CorpusEntry& entry, double scale, std::uint64_t seed,
                           ThreadPool* pool) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("make_corpus_graph: scale must be in (0, 1]");
  }
  const auto vertices = static_cast<VertexId>(std::max<double>(
      1000.0, std::round(static_cast<double>(entry.paper_vertices) * scale)));

  if (entry.synthetic) {
    // Proxy graphs: Algorithm 1 with the Table II alpha.
    PowerLawConfig config;
    config.num_vertices = vertices;
    config.alpha = entry.paper_alpha;
    config.seed = seed;
    return generate_powerlaw(config, pool);
  }

  // Natural-graph surrogate: Chung-Lu matched in mean degree and the fitted
  // Eq. 7 alpha of the paper-scale graph.
  const double alpha = solve_alpha(entry.paper_vertices, entry.paper_edges).alpha;
  ChungLuConfig config;
  config.num_vertices = vertices;
  config.target_edges = static_cast<EdgeId>(std::max<double>(
      1.0, std::round(static_cast<double>(entry.paper_edges) * scale)));
  config.alpha = alpha;
  config.seed = seed;
  return generate_chung_lu(config, pool);
}

}  // namespace pglb
