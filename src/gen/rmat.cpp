#include "gen/rmat.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace pglb {

EdgeList generate_rmat(const RmatConfig& config) {
  if (config.scale < 1 || config.scale > 30) {
    throw std::invalid_argument("generate_rmat: scale must be in [1, 30]");
  }
  const double total = config.a + config.b + config.c + config.d;
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("generate_rmat: quadrant probabilities must sum to 1");
  }

  const auto n = static_cast<VertexId>(VertexId{1} << config.scale);
  EdgeList graph(n);
  graph.reserve(config.num_edges);
  Rng rng(config.seed);

  while (graph.num_edges() < config.num_edges) {
    VertexId src = 0, dst = 0;
    for (int level = 0; level < config.scale; ++level) {
      const double u = rng.next_double();
      src <<= 1;
      dst <<= 1;
      if (u < config.a) {
        // top-left: nothing to add
      } else if (u < config.a + config.b) {
        dst |= 1;
      } else if (u < config.a + config.b + config.c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src == dst) continue;
    graph.add(src, dst);
  }
  return graph;
}

}  // namespace pglb
