#include "persist/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"

namespace pglb::persist {

std::uint32_t crc32(std::string_view bytes) noexcept {
  return pglb::crc32_ieee(bytes);
}

void append_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void append_f64(std::string& out, double value) {
  append_u64(out, std::bit_cast<std::uint64_t>(value));
}

void append_string(std::string& out, std::string_view value) {
  if (value.size() > kMaxSectionPayload) {
    throw SnapshotError("snapshot string too long to encode");
  }
  append_u32(out, static_cast<std::uint32_t>(value.size()));
  out.append(value);
}

std::string_view Cursor::take(std::size_t n) {
  if (n > data_.size() - pos_) {
    throw SnapshotError("snapshot payload truncated (wanted " + std::to_string(n) +
                        " bytes, " + std::to_string(data_.size() - pos_) + " left)");
  }
  const std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::uint32_t Cursor::read_u32() {
  const std::string_view bytes = take(4);
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(i)]);
  }
  return value;
}

std::uint64_t Cursor::read_u64() {
  const std::string_view bytes = take(8);
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[static_cast<std::size_t>(i)]);
  }
  return value;
}

double Cursor::read_f64() { return std::bit_cast<double>(read_u64()); }

std::string Cursor::read_string() {
  const std::uint32_t length = read_u32();
  if (length > kMaxSectionPayload) {
    throw SnapshotError("snapshot string length " + std::to_string(length) +
                        " exceeds cap");
  }
  return std::string(take(length));
}

// --- writer ----------------------------------------------------------------

void SnapshotWriter::add_section(SectionType type, std::string payload) {
  if (payload.size() > kMaxSectionPayload) {
    throw SnapshotError("snapshot section payload exceeds " +
                        std::to_string(kMaxSectionPayload) + " bytes");
  }
  sections_.push_back(
      SnapshotSection{static_cast<std::uint32_t>(type), std::move(payload)});
}

std::string SnapshotWriter::encode() const {
  std::string out;
  append_u32(out, kMagic);
  append_u32(out, kVersion);
  append_u64(out, generation_);
  const auto emit = [&out](std::uint32_t type, std::string_view payload) {
    append_u32(out, type);
    append_u32(out, static_cast<std::uint32_t>(payload.size()));
    append_u32(out, crc32(payload));
    out.append(payload);
  };
  for (const SnapshotSection& section : sections_) {
    emit(section.type, section.payload);
  }
  emit(static_cast<std::uint32_t>(SectionType::kEnd), {});
  return out;
}

void SnapshotWriter::write(const std::string& path) const {
  const std::string encoded = encode();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("snapshot: cannot open " + tmp);
    out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
    if (!out.flush()) {
      std::remove(tmp.c_str());
      throw std::runtime_error("snapshot: write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("snapshot: rename to " + path + " failed");
  }
}

// --- reader ----------------------------------------------------------------

SnapshotReader SnapshotReader::parse(std::string_view bytes) {
  if (bytes.size() < kFileHeaderSize) {
    throw SnapshotError("snapshot shorter than its file header");
  }
  Cursor header(bytes.substr(0, kFileHeaderSize));
  SnapshotReader reader;
  if (header.read_u32() != kMagic) throw SnapshotError("snapshot has bad magic");
  reader.version_ = header.read_u32();
  if (reader.version_ > kVersion) {
    throw SnapshotError("snapshot version " + std::to_string(reader.version_) +
                        " is newer than this build (max " +
                        std::to_string(kVersion) + ")");
  }
  reader.generation_ = header.read_u64();

  std::size_t pos = kFileHeaderSize;
  bool saw_end = false;
  while (!saw_end) {
    if (bytes.size() - pos < kSectionHeaderSize) {
      throw SnapshotError("snapshot truncated mid section header");
    }
    Cursor section_header(bytes.substr(pos, kSectionHeaderSize));
    const std::uint32_t type = section_header.read_u32();
    const std::uint32_t length = section_header.read_u32();
    const std::uint32_t checksum = section_header.read_u32();
    pos += kSectionHeaderSize;
    if (length > kMaxSectionPayload) {
      throw SnapshotError("snapshot section length " + std::to_string(length) +
                          " exceeds cap");
    }
    if (bytes.size() - pos < length) {
      throw SnapshotError("snapshot truncated mid section payload");
    }
    const std::string_view payload = bytes.substr(pos, length);
    pos += length;
    if (crc32(payload) != checksum) {
      throw SnapshotError("snapshot section type " + std::to_string(type) +
                          " failed its CRC check");
    }
    if (type == static_cast<std::uint32_t>(SectionType::kEnd)) {
      saw_end = true;
      continue;
    }
    reader.sections_.push_back(SnapshotSection{type, std::string(payload)});
  }
  if (pos != bytes.size()) {
    throw SnapshotError("snapshot has trailing bytes after its end marker");
  }
  return reader;
}

SnapshotReader SnapshotReader::read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("snapshot: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("snapshot: read failed: " + path);
  }
  return parse(buffer.str());
}

const SnapshotSection* SnapshotReader::section(SectionType type) const noexcept {
  for (const SnapshotSection& section : sections_) {
    if (section.type == static_cast<std::uint32_t>(type)) return &section;
  }
  return nullptr;
}

std::optional<std::uint64_t> read_snapshot_generation(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string header(kFileHeaderSize, '\0');
  if (!in.read(header.data(), static_cast<std::streamsize>(header.size()))) {
    return std::nullopt;
  }
  try {
    Cursor cursor(header);
    if (cursor.read_u32() != kMagic) return std::nullopt;
    cursor.read_u32();  // version: the generation field's offset is stable
    return cursor.read_u64();
  } catch (const SnapshotError&) {
    return std::nullopt;
  }
}

}  // namespace pglb::persist
