#pragma once
// Durable warm-state snapshots (docs/PERSIST.md): a versioned, checksummed
// binary container in the wire.* header idiom.  A snapshot file is
//
//   [u32 magic][u32 version][u64 generation]          file header, 16 bytes
//   [u32 type][u32 len][u32 crc32(payload)][payload]  section, repeated
//   [u32 kEnd][u32 0][u32 crc32("")]                  end marker
//
// all little-endian.  Sections are length-prefixed and independently
// CRC-checked, so a reader can skip section types it does not know
// (forward compatibility: an old binary loads the sections it understands
// from a newer file of the SAME version; a bumped version is rejected).
// The end marker makes truncation detectable even when a file is cut
// exactly at a section boundary.
//
// Writes are atomic: the encoded bytes go to `<path>.tmp` which is renamed
// over `path`, the same publish idiom as util/portfile.hpp — a reader never
// observes a half-written snapshot, only the old file or the new one.
// Generation numbers are monotonic per path (writer = reader's generation
// + 1), so operators can tell a fresh snapshot from a stale survivor.
//
// Corruption policy: ANY defect — bad magic, future version, bad section
// CRC, truncated payload, missing end marker — throws SnapshotError.
// Callers (persist/warm_state.hpp) translate that into a logged cold start,
// never a crash.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pglb::persist {

/// First file-header field ("PGSN" read as a little-endian u32).
inline constexpr std::uint32_t kMagic = 0x4E534750u;

/// Container revision.  Readers accept versions <= kVersion and reject
/// anything newer — a downgrade must cold-start rather than misparse.
inline constexpr std::uint32_t kVersion = 1;

inline constexpr std::size_t kFileHeaderSize = 16;
inline constexpr std::size_t kSectionHeaderSize = 12;

/// Sanity cap on one section payload — a length above this is a corrupt
/// header, not a plausible cache snapshot (mirrors wire::kMaxPayload).
inline constexpr std::uint32_t kMaxSectionPayload = 64u << 20;

/// Known section types.  Unknown values are CRC-validated and skipped.
enum class SectionType : std::uint32_t {
  kProfileCache = 1,
  kTimeDatabase = 2,
  kDynamicState = 3,  ///< delta-planner base registry (docs/DYNAMIC.md)
  kEnd = 0xFFFFFFFFu,  ///< empty terminator; required, so truncation is loud
};

/// Malformed or corrupt snapshot bytes.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.  Thin alias for the shared
/// pglb::crc32_ieee (util/crc32.hpp), kept so snapshot call sites read in
/// container terms.
std::uint32_t crc32(std::string_view bytes) noexcept;

// --- little-endian payload primitives --------------------------------------
// Section payloads are built from these four shapes only: u32, u64, IEEE
// doubles by bit pattern, and u32-length-prefixed strings.

void append_u32(std::string& out, std::uint32_t value);
void append_u64(std::string& out, std::uint64_t value);
void append_f64(std::string& out, double value);
void append_string(std::string& out, std::string_view value);

/// Bounds-checked forward reader over a payload; every read past the end
/// throws SnapshotError (a truncated payload must never misparse quietly).
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint32_t read_u32();
  std::uint64_t read_u64();
  double read_f64();
  std::string read_string();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  std::string_view take(std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- container -------------------------------------------------------------

struct SnapshotSection {
  std::uint32_t type = 0;
  std::string payload;
};

class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint64_t generation) : generation_(generation) {}

  void add_section(SectionType type, std::string payload);

  /// Header + sections + end marker as one byte string.
  std::string encode() const;

  /// Atomic publish: encode to `<path>.tmp`, then rename over `path`.
  /// Throws std::runtime_error on IO failure.
  void write(const std::string& path) const;

  std::uint64_t generation() const noexcept { return generation_; }

 private:
  std::uint64_t generation_;
  std::vector<SnapshotSection> sections_;
};

class SnapshotReader {
 public:
  /// Validate and explode `bytes`.  Throws SnapshotError on any corruption.
  static SnapshotReader parse(std::string_view bytes);

  /// Read + parse `path`.  A missing/unreadable file throws
  /// std::runtime_error; corrupt contents throw SnapshotError.
  static SnapshotReader read(const std::string& path);

  std::uint32_t version() const noexcept { return version_; }
  std::uint64_t generation() const noexcept { return generation_; }
  const std::vector<SnapshotSection>& sections() const noexcept { return sections_; }

  /// First section of `type`, or nullptr when the file carries none.
  const SnapshotSection* section(SectionType type) const noexcept;

 private:
  std::uint32_t version_ = kVersion;
  std::uint64_t generation_ = 0;
  std::vector<SnapshotSection> sections_;
};

/// Generation recorded in the snapshot at `path`, or nullopt when the file
/// is missing or too corrupt to carry one — the writer's "previous + 1" seed.
std::optional<std::uint64_t> read_snapshot_generation(const std::string& path);

}  // namespace pglb::persist
