#pragma once
// Warm-state payloads over the snapshot container (docs/PERSIST.md): what a
// planning replica persists on SIGTERM and lazily reloads on boot so a
// restart does not trade a healthy cache for a profiling stampede.
//
// Two sections:
//  - kProfileCache: the completed ProfileCache entries (key, hit count, and
//    the full CCR profile including the proxy degree histogram) in recency
//    order.  An entry restores to EXACTLY the inputs the deterministic
//    planner arithmetic consumes, so a plan served from a restored entry is
//    byte-identical to one served from a fresh profile.
//  - kTimeDatabase: the planner's durable CCR pool (app, proxy alpha,
//    machine class) -> seconds — the paper's Sec. III-B artifact, merged
//    UNDER live entries on restore.
//  - kDynamicState (optional): the delta planner's base registry — live
//    graphs, maintained assignments, scorer state, drift — so a restarted
//    replica resumes its delta streams without re-ingesting history
//    (docs/DYNAMIC.md).  Old binaries CRC-check and skip this section.
//
// Load policy (the Distributed-CC save/load_checkpoint shape): a missing
// file is a quiet cold start; a corrupt, truncated, or future-version file
// is a LOGGED cold start that bumps persist.snapshot_rejected — never a
// crash, and never a partially trusted restore (decode validates every
// value before anything touches the planner).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/time_database.hpp"
#include "persist/snapshot.hpp"
#include "service/profile_cache.hpp"

namespace pglb {

class Planner;
class Registry;

namespace dynamic {
class DeltaPlanner;
}  // namespace dynamic

namespace persist {

/// One decoded cache entry, pre-validated and ready to import.
struct RestoredCacheEntry {
  std::string key;
  std::uint64_t hits = 0;
  std::shared_ptr<ProfileEntry> entry;
};

std::string encode_profile_cache_section(
    std::span<const ProfileCache::ExportedEntry> entries);

/// Decode + validate a kProfileCache payload.  Throws SnapshotError on any
/// malformed or implausible value (non-finite times, empty keys, ...).
std::vector<RestoredCacheEntry> decode_profile_cache_section(
    std::string_view payload);

std::string encode_time_database_section(const TimeDatabase& db);

/// Decode + validate a kTimeDatabase payload.  Throws SnapshotError on
/// unknown app names or non-positive times.
TimeDatabase decode_time_database_section(std::string_view payload);

/// Where a replica's snapshot lives inside its --snapshot-dir.
std::string warm_snapshot_path(const std::string& dir);

/// Outcome of one save/load, for logging and tests.
struct SnapshotIoResult {
  bool ok = false;
  /// Load only: the file existed but was corrupt/truncated/future-version
  /// (persist.snapshot_rejected was bumped).  A missing file is ok=false
  /// with rejected=false — the quiet cold start.
  bool rejected = false;
  std::uint64_t generation = 0;
  std::size_t bytes = 0;
  std::size_t cache_entries = 0;
  std::size_t time_entries = 0;
  std::size_t dynamic_bases = 0;
  std::string error;
};

/// Snapshot the planner's warm state into `<dir>/warm.snap` (atomic
/// write-rename; generation = previous generation + 1).  Counts
/// persist.snapshots_written / persist.snapshot_bytes_written into the
/// global registry and, when given, `service_registry` (the per-server
/// registry surfaced by metrics responses).  Never throws.
/// When `delta` is given, its ready bases are serialized into a
/// kDynamicState section (omitted entirely when the registry is empty, so
/// delta-free snapshots keep their pre-dynamic bytes).
SnapshotIoResult save_warm_snapshot(const Planner& planner, const std::string& dir,
                                    Registry* service_registry = nullptr,
                                    const dynamic::DeltaPlanner* delta = nullptr);

/// Restore `<dir>/warm.snap` into the planner: cache entries re-inserted in
/// recency order (stopping, without error, at capacity), time database
/// merged under live entries.  Counts persist.snapshots_loaded /
/// persist.snapshot_bytes_loaded / persist.keys_restored on success and
/// persist.snapshot_rejected on a corrupt file.  Never throws.
/// When `delta` is given and the file carries a kDynamicState section, the
/// base registry is restored through DeltaPlanner::restore_state (live bases
/// win over snapshot ones; a defective section rejects the WHOLE load, same
/// as any other section).  Counts persist.bases_restored.
SnapshotIoResult load_warm_snapshot(Planner& planner, const std::string& dir,
                                    Registry* service_registry = nullptr,
                                    dynamic::DeltaPlanner* delta = nullptr);

}  // namespace persist
}  // namespace pglb
