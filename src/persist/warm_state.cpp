#include "persist/warm_state.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "dynamic/delta_planner.hpp"
#include "obs/registry.hpp"
#include "service/planner.hpp"

namespace pglb::persist {

namespace {

void count_into(Registry* service_registry, std::string_view name,
                std::uint64_t delta = 1) {
  if (delta == 0) return;
  global_registry().count(name, delta);
  if (service_registry != nullptr) service_registry->count(name, delta);
}

void require(bool condition, const char* what) {
  if (!condition) throw SnapshotError(std::string("snapshot: ") + what);
}

bool positive_finite(double value) {
  return std::isfinite(value) && value > 0.0;
}

}  // namespace

std::string encode_profile_cache_section(
    std::span<const ProfileCache::ExportedEntry> entries) {
  std::string out;
  append_u32(out, static_cast<std::uint32_t>(entries.size()));
  for (const ProfileCache::ExportedEntry& exported : entries) {
    const ProfileEntry& entry = *exported.entry;
    append_string(out, exported.key);
    append_u64(out, exported.hits);
    append_f64(out, entry.proxy_alpha);
    append_f64(out, entry.proxy_full_edges);
    append_f64(out, entry.proxy_full_vertices);
    append_u32(out, static_cast<std::uint32_t>(entry.class_times.size()));
    for (const auto& [name, seconds] : entry.class_times) {
      append_string(out, name);
      append_f64(out, seconds);
    }
    // Sparse degree histogram: only occupied values, (value, count) pairs.
    const std::vector<std::uint64_t>& counts = entry.proxy_total_degree.counts();
    std::uint32_t occupied = 0;
    for (const std::uint64_t count : counts) {
      if (count != 0) ++occupied;
    }
    append_u32(out, occupied);
    for (std::size_t value = 0; value < counts.size(); ++value) {
      if (counts[value] != 0) {
        append_u64(out, value);
        append_u64(out, counts[value]);
      }
    }
  }
  return out;
}

std::vector<RestoredCacheEntry> decode_profile_cache_section(
    std::string_view payload) {
  Cursor cursor(payload);
  const std::uint32_t count = cursor.read_u32();
  std::vector<RestoredCacheEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RestoredCacheEntry restored;
    restored.key = cursor.read_string();
    require(!restored.key.empty(), "cache entry has an empty key");
    restored.hits = cursor.read_u64();
    auto entry = std::make_shared<ProfileEntry>();
    entry->proxy_alpha = cursor.read_f64();
    require(positive_finite(entry->proxy_alpha), "cache entry proxy_alpha invalid");
    entry->proxy_full_edges = cursor.read_f64();
    entry->proxy_full_vertices = cursor.read_f64();
    require(positive_finite(entry->proxy_full_edges) &&
                positive_finite(entry->proxy_full_vertices),
            "cache entry proxy size invalid");
    const std::uint32_t classes = cursor.read_u32();
    require(classes > 0, "cache entry has no class times");
    entry->class_times.reserve(classes);
    for (std::uint32_t c = 0; c < classes; ++c) {
      std::string name = cursor.read_string();
      const double seconds = cursor.read_f64();
      require(!name.empty(), "cache entry class name empty");
      require(positive_finite(seconds), "cache entry class time invalid");
      entry->class_times.emplace_back(std::move(name), seconds);
    }
    const std::uint32_t histogram = cursor.read_u32();
    for (std::uint32_t h = 0; h < histogram; ++h) {
      const std::uint64_t value = cursor.read_u64();
      const std::uint64_t occurrences = cursor.read_u64();
      require(occurrences > 0, "cache entry histogram count zero");
      entry->proxy_total_degree.add(value, occurrences);
    }
    restored.entry = std::move(entry);
    out.push_back(std::move(restored));
  }
  require(cursor.done(), "cache section has trailing bytes");
  return out;
}

std::string encode_time_database_section(const TimeDatabase& db) {
  std::string out;
  append_u32(out, static_cast<std::uint32_t>(db.entries().size()));
  for (const auto& [key, seconds] : db.entries()) {
    append_string(out, to_string(key.app));
    append_f64(out, key.proxy_alpha);
    append_string(out, key.machine);
    append_f64(out, seconds);
  }
  return out;
}

TimeDatabase decode_time_database_section(std::string_view payload) {
  Cursor cursor(payload);
  const std::uint32_t count = cursor.read_u32();
  TimeDatabase db;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string app_name = cursor.read_string();
    const double alpha = cursor.read_f64();
    const std::string machine = cursor.read_string();
    const double seconds = cursor.read_f64();
    const auto app = try_app_from_name(app_name);
    require(app.has_value(), "time database names an unknown app");
    require(std::isfinite(alpha), "time database alpha invalid");
    require(!machine.empty(), "time database machine name empty");
    require(positive_finite(seconds), "time database time invalid");
    db.record({*app, alpha, machine}, seconds);
  }
  require(cursor.done(), "time database section has trailing bytes");
  return db;
}

std::string warm_snapshot_path(const std::string& dir) {
  return dir + "/warm.snap";
}

SnapshotIoResult save_warm_snapshot(const Planner& planner, const std::string& dir,
                                    Registry* service_registry,
                                    const dynamic::DeltaPlanner* delta) {
  SnapshotIoResult result;
  const std::string path = warm_snapshot_path(dir);
  try {
    const std::vector<ProfileCache::ExportedEntry> entries = planner.export_cache();
    const TimeDatabase db = planner.time_database();
    SnapshotWriter writer(read_snapshot_generation(path).value_or(0) + 1);
    writer.add_section(SectionType::kProfileCache,
                       encode_profile_cache_section(entries));
    writer.add_section(SectionType::kTimeDatabase, encode_time_database_section(db));
    if (delta != nullptr && delta->base_count() > 0) {
      writer.add_section(SectionType::kDynamicState, delta->encode_state());
      result.dynamic_bases = delta->base_count();
    }
    result.bytes = writer.encode().size();
    writer.write(path);
    result.ok = true;
    result.generation = writer.generation();
    result.cache_entries = entries.size();
    result.time_entries = db.size();
    count_into(service_registry, "persist.snapshots_written");
    count_into(service_registry, "persist.snapshot_bytes_written", result.bytes);
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  return result;
}

SnapshotIoResult load_warm_snapshot(Planner& planner, const std::string& dir,
                                    Registry* service_registry,
                                    dynamic::DeltaPlanner* delta) {
  SnapshotIoResult result;
  const std::string path = warm_snapshot_path(dir);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      result.error = "no snapshot at " + path;  // quiet cold start
      return result;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  try {
    const SnapshotReader reader = SnapshotReader::parse(bytes);
    std::vector<RestoredCacheEntry> restored;
    if (const SnapshotSection* section = reader.section(SectionType::kProfileCache)) {
      restored = decode_profile_cache_section(section->payload);
    }
    TimeDatabase db;
    if (const SnapshotSection* section = reader.section(SectionType::kTimeDatabase)) {
      db = decode_time_database_section(section->payload);
    }
    // The dynamic section restores first: restore_state validates every base
    // before any reaches its registry, so a defective section throws here —
    // before the planner is touched — and the whole load stays a clean
    // rejection rather than a partially trusted restore.
    if (delta != nullptr) {
      if (const SnapshotSection* section =
              reader.section(SectionType::kDynamicState)) {
        result.dynamic_bases =
            delta->restore_state(std::string(section->payload));
        count_into(service_registry, "persist.bases_restored",
                   result.dynamic_bases);
      }
    }
    // Validation is complete — only now touch the planner, so a snapshot that
    // fails halfway through decode leaves no partial restore behind.
    for (RestoredCacheEntry& entry : restored) {
      if (planner.import_cache_entry(entry.key, std::move(entry.entry), entry.hits)) {
        ++result.cache_entries;
      }
    }
    planner.merge_time_database(db);
    result.ok = true;
    result.generation = reader.generation();
    result.bytes = bytes.size();
    result.time_entries = db.size();
    count_into(service_registry, "persist.snapshots_loaded");
    count_into(service_registry, "persist.snapshot_bytes_loaded", result.bytes);
    count_into(service_registry, "persist.keys_restored", result.cache_entries);
  } catch (const std::exception& e) {
    result.ok = false;
    result.rejected = true;
    result.error = e.what();
    count_into(service_registry, "persist.snapshot_rejected");
  }
  return result;
}

}  // namespace pglb::persist
