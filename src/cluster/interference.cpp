#include "cluster/interference.hpp"

#include <stdexcept>

namespace pglb {

InterferenceSchedule::InterferenceSchedule(std::vector<InterferenceEvent> events)
    : events_(std::move(events)) {
  for (const InterferenceEvent& e : events_) {
    if (!(e.slowdown > 0.0) || e.slowdown > 1.0) {
      throw std::invalid_argument("InterferenceSchedule: slowdown must be in (0, 1]");
    }
    if (e.from_step < 0 || e.to_step < e.from_step) {
      throw std::invalid_argument("InterferenceSchedule: malformed step range");
    }
  }
}

double InterferenceSchedule::factor(MachineId machine, int step) const noexcept {
  double factor = 1.0;
  for (const InterferenceEvent& e : events_) {
    if (e.machine == machine && step >= e.from_step && step < e.to_step) {
      factor *= e.slowdown;
    }
  }
  return factor;
}

}  // namespace pglb
