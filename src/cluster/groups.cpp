#include "cluster/groups.hpp"

#include <stdexcept>

namespace pglb {

std::vector<MachineGroup> group_machines(const Cluster& cluster) {
  std::vector<MachineGroup> groups;
  for (MachineId m = 0; m < cluster.size(); ++m) {
    const MachineSpec& spec = cluster.machine(m);
    bool placed = false;
    for (MachineGroup& g : groups) {
      if (same_group(g.representative, spec)) {
        g.members.push_back(m);
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.push_back(MachineGroup{spec, {m}});
    }
  }
  return groups;
}

std::vector<double> expand_group_values(const Cluster& cluster,
                                        const std::vector<MachineGroup>& groups,
                                        std::span<const double> group_values) {
  if (group_values.size() != groups.size()) {
    throw std::invalid_argument("expand_group_values: one value per group required");
  }
  std::vector<double> per_machine(cluster.size(), 0.0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const MachineId m : groups[g].members) {
      per_machine[m] = group_values[g];
    }
  }
  return per_machine;
}

}  // namespace pglb
