#pragma once
// Machine grouping (Sec. III-B): to minimise profiling overhead, machines
// with identical specs form one group and only one representative per group
// is profiled; its CCR applies to every member.

#include <vector>

#include "cluster/cluster.hpp"

namespace pglb {

struct MachineGroup {
  MachineSpec representative;
  std::vector<MachineId> members;  ///< indices into the cluster
};

/// Partition the cluster's machines into identical-spec groups, in order of
/// first appearance.
std::vector<MachineGroup> group_machines(const Cluster& cluster);

/// Expand per-group values (e.g. profiled CCRs) back to per-machine values.
std::vector<double> expand_group_values(const Cluster& cluster,
                                        const std::vector<MachineGroup>& groups,
                                        std::span<const double> group_values);

}  // namespace pglb
