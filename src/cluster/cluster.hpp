#pragma once
// A heterogeneous cluster: an ordered list of machine specs plus the
// interconnect.  Machine order defines MachineId.

#include <span>
#include <string>
#include <vector>

#include "cluster/network_model.hpp"
#include "graph/types.hpp"
#include "machine/machine_spec.hpp"

namespace pglb {

class Cluster {
 public:
  Cluster() = default;
  explicit Cluster(std::vector<MachineSpec> machines, NetworkModel network = {});

  MachineId size() const noexcept { return static_cast<MachineId>(machines_.size()); }
  bool empty() const noexcept { return machines_.empty(); }

  const MachineSpec& machine(MachineId m) const { return machines_.at(m); }
  std::span<const MachineSpec> machines() const noexcept { return machines_; }
  const NetworkModel& network() const noexcept { return network_; }

  /// Sum of compute threads — the denominator of the prior-work [5]
  /// thread-count partitioning heuristic.
  int total_compute_threads() const noexcept;

  /// Grid partitioning requires a square machine count (Sec. II-B3).
  bool is_square() const noexcept;

  /// Human-readable "name+name+..." label for bench output.
  std::string label() const;

 private:
  std::vector<MachineSpec> machines_;
  NetworkModel network_;
};

/// Convenience: build a cluster from catalog names, e.g.
/// {"m4.2xlarge", "c4.2xlarge"} for the paper's Case 1.
Cluster cluster_from_names(std::span<const std::string> names, NetworkModel network = {});

}  // namespace pglb
