#include "cluster/network_model.hpp"

// Header-only model; this translation unit exists so the target has a home
// for future routing-aware extensions.
