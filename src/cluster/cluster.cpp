#include "cluster/cluster.hpp"

#include <cmath>
#include <stdexcept>

#include "machine/catalog.hpp"

namespace pglb {

Cluster::Cluster(std::vector<MachineSpec> machines, NetworkModel network)
    : machines_(std::move(machines)), network_(network) {
  if (machines_.empty()) throw std::invalid_argument("Cluster: needs at least one machine");
  for (const MachineSpec& m : machines_) {
    if (m.compute_threads < 1) {
      throw std::invalid_argument("Cluster: machine '" + m.name + "' has no compute threads");
    }
  }
}

int Cluster::total_compute_threads() const noexcept {
  int total = 0;
  for (const MachineSpec& m : machines_) total += m.compute_threads;
  return total;
}

bool Cluster::is_square() const noexcept {
  const auto root = static_cast<MachineId>(std::lround(std::sqrt(static_cast<double>(size()))));
  return root * root == size();
}

std::string Cluster::label() const {
  std::string text;
  for (const MachineSpec& m : machines_) {
    if (!text.empty()) text += '+';
    text += m.name;
  }
  return text;
}

Cluster cluster_from_names(std::span<const std::string> names, NetworkModel network) {
  std::vector<MachineSpec> machines;
  machines.reserve(names.size());
  for (const std::string& name : names) machines.push_back(machine_by_name(name));
  return Cluster(std::move(machines), network);
}

}  // namespace pglb
