#pragma once
// Interconnect model.  The paper's clusters are joined by a high-speed router
// (Sec. IV); communication enters each superstep as mirror-synchronisation
// traffic.  Minimising communication is explicitly out of the paper's scope
// (Sec. III-B), so a flat bandwidth/latency model per machine suffices.

namespace pglb {

struct NetworkModel {
  /// Per-machine NIC bandwidth, bytes/second (default: 10 GbE).
  double bandwidth_bytes_per_s = 1.25e9;
  /// Per-superstep synchronisation latency (barrier + message setup), seconds.
  double superstep_latency_s = 0.5e-3;
  /// Seconds the cluster spends in the shared mirror-exchange phase of one
  /// superstep, given the total bytes moved by all machines.  The exchange is
  /// a collective: every machine participates for its full duration, so this
  /// cost is insensitive to load balancing — the reason the measured speedups
  /// in the paper sit well below the pure-compute ideal.
  double exchange_seconds(double total_bytes) const {
    if (total_bytes <= 0.0) return 0.0;
    return total_bytes / bandwidth_bytes_per_s + superstep_latency_s;
  }
};

}  // namespace pglb
