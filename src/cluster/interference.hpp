#pragma once
// Transient interference model: multi-tenant clouds (the paper's EC2 setting)
// see machines slow down for stretches of time — noisy neighbours, throttling,
// background daemons.  A deterministic schedule of multiplicative slowdowns
// lets experiments ask how *static* CCR-guided ingress degrades when the
// profiled capabilities drift mid-run, and when reactive (Mizan-style)
// balancing catches up — the trade-off Sec. VI gestures at.

#include <vector>

#include "graph/types.hpp"

namespace pglb {

struct InterferenceEvent {
  MachineId machine = 0;
  /// Affected superstep range [from_step, to_step), 0-indexed.
  int from_step = 0;
  int to_step = 0;
  /// Throughput multiplier while active, in (0, 1]; 0.5 = half speed.
  double slowdown = 1.0;
};

class InterferenceSchedule {
 public:
  InterferenceSchedule() = default;
  explicit InterferenceSchedule(std::vector<InterferenceEvent> events);

  /// Combined throughput multiplier for machine m at superstep `step`
  /// (overlapping events multiply).
  double factor(MachineId machine, int step) const noexcept;

  bool empty() const noexcept { return events_.empty(); }
  const std::vector<InterferenceEvent>& events() const noexcept { return events_; }

 private:
  std::vector<InterferenceEvent> events_;
};

}  // namespace pglb
