#pragma once
// Graph mutations for the delta-planning subsystem (docs/DYNAMIC.md).
//
// A `delta` protocol request carries a batch of these against a named base
// graph.  Batches are ATOMIC: LiveGraph::apply() validates the whole batch —
// including batch-local effects, so "add then remove the same edge" is legal
// while "remove twice" is a contradiction — before mutating anything, and a
// rejected batch throws the typed MutationError without side effects.
//
// LiveGraph is the shared mutable-graph substrate: the delta planner's
// per-base state AND the load generator's client-side mirror both run on it,
// which is what makes the incremental-vs-scratch equivalence check exact —
// both sides replay the identical seeded mutation stream over identical
// semantics.
//
// Edge identity is positional: edges live in insertion-ordered slots,
// removal tombstones the FIRST live slot matching (src, dst), and
// compaction preserves survivor order.  A from-scratch base that ingests the
// survivors in live-slot order therefore reconstructs the exact edge
// sequence the streaming partitioners saw — the property the forced
// full-re-profile byte-identity gate rests on.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/histogram.hpp"

namespace pglb::dynamic {

enum class MutationOp : std::uint8_t {
  kAddEdge,
  kRemoveEdge,
  kAddVertex,
  kRemoveVertex,
};

const char* to_string(MutationOp op) noexcept;
std::optional<MutationOp> mutation_op_from_string(std::string_view name) noexcept;

/// One mutation.  Edge ops use (src, dst); vertex ops use src as the vertex
/// id (dst is ignored and kept 0).
struct Mutation {
  MutationOp op = MutationOp::kAddEdge;
  VertexId src = 0;
  VertexId dst = 0;

  static Mutation add_edge(VertexId src, VertexId dst) {
    return Mutation{MutationOp::kAddEdge, src, dst};
  }
  static Mutation remove_edge(VertexId src, VertexId dst) {
    return Mutation{MutationOp::kRemoveEdge, src, dst};
  }
  static Mutation add_vertex(VertexId id) {
    return Mutation{MutationOp::kAddVertex, id, 0};
  }
  static Mutation remove_vertex(VertexId id) {
    return Mutation{MutationOp::kRemoveVertex, id, 0};
  }

  friend bool operator==(const Mutation&, const Mutation&) = default;
};

/// A batch that violates mutation semantics (contradictory ops, removal of a
/// non-live edge or vertex, re-adding a live vertex).  The server answers
/// with a typed error response carrying this message; nothing was applied.
class MutationError : public std::runtime_error {
 public:
  explicit MutationError(const std::string& what) : std::runtime_error(what) {}
};

/// Insertion-ordered edge store with tombstones and per-vertex liveness.
class LiveGraph {
 public:
  /// What one applied batch changed, in application order — the delta the
  /// incremental partition state consumes.
  struct BatchResult {
    std::vector<std::size_t> added_slots;    ///< freshly appended live slots
    std::vector<std::size_t> removed_slots;  ///< slots tombstoned by the batch
  };

  /// Validate the whole batch (batch-local effects included), then apply it.
  /// Throws MutationError leaving the graph untouched when any mutation is
  /// invalid:
  ///  - remove_edge of an edge that is not live at its point in the batch
  ///    (covers duplicates of a single edge and add/remove contradictions
  ///    resolved in order);
  ///  - add_vertex of an already-live vertex;
  ///  - remove_vertex of a vertex that is not live (removing it also removes
  ///    every incident live edge).
  /// add_edge is always legal: duplicates make a multigraph, and endpoints
  /// are revived / the vertex space grown as needed.
  BatchResult apply(std::span<const Mutation> batch);

  VertexId num_vertices() const noexcept { return num_vertices_; }
  std::uint64_t live_edge_count() const noexcept { return live_edges_; }
  std::uint64_t live_vertex_count() const noexcept { return live_vertices_; }
  std::size_t slot_count() const noexcept { return slots_.size(); }
  const Edge& slot(std::size_t i) const { return slots_.at(i); }
  bool dead(std::size_t i) const { return dead_.at(i) != 0; }
  bool vertex_alive(VertexId v) const noexcept {
    return v < num_vertices_ && alive_[v] != 0;
  }

  /// Survivors in slot order over the full vertex space — what the streaming
  /// partitioners and the scratch-equivalence replay consume.
  EdgeList live_edge_list() const;

  /// Total-degree histogram over live edges and live vertices (isolated live
  /// vertices count in the degree-0 bucket) — the drift comparand.
  ExactHistogram live_total_degree() const;

  /// Drop tombstoned slots (preserving survivor order) and shrink the vertex
  /// space to the highest live vertex + 1.  `owners`, when given, must be
  /// slot-aligned and is compacted in tandem.  After compaction the graph is
  /// byte-equivalent to a fresh LiveGraph that ingested the survivors — the
  /// state reset a full re-profile performs.
  void compact(std::vector<MachineId>* owners = nullptr);

  /// The n-th live slot (0-based, slot order); throws std::out_of_range when
  /// fewer than n+1 edges are live.  Deterministic pick primitive for the
  /// seeded mutation-stream generator.
  std::size_t nth_live_slot(std::uint64_t n) const;

 private:
  void grow_vertex_space(VertexId count);
  void revive(VertexId v);
  static std::uint64_t pair_key(VertexId src, VertexId dst) noexcept {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  std::vector<Edge> slots_;
  std::vector<std::uint8_t> dead_;
  /// (src, dst) -> live slots holding that edge, insertion-ordered.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> live_index_;
  std::vector<std::uint8_t> alive_;
  VertexId num_vertices_ = 0;
  std::uint64_t live_edges_ = 0;
  std::uint64_t live_vertices_ = 0;
};

/// One deterministic batch of a seeded mutation stream over `mirror`: mostly
/// edge churn (adds biased to existing vertices, removals of live edges),
/// with occasional vertex births and low-degree vertex retirements so every
/// mutation kind flows through the protocol.  Batches generated against the
/// same mirror state, seed, and index are identical, and are always valid
/// for that state — the generator tracks its own batch-local effects.
std::vector<Mutation> generate_mutation_batch(const LiveGraph& mirror,
                                              std::uint64_t seed,
                                              std::uint64_t batch_index,
                                              std::size_t edits);

}  // namespace pglb::dynamic
