#include "dynamic/delta_planner.hpp"

#include <algorithm>
#include <utility>

#include "obs/registry.hpp"
#include "partition/metrics.hpp"
#include "util/hash.hpp"

namespace pglb::dynamic {

DeltaPlanner::DeltaPlanner(Planner& planner, DeltaOptions options,
                           ServiceMetrics* metrics)
    : planner_(planner), options_(options), metrics_(metrics) {}

void DeltaPlanner::count(const char* name, std::uint64_t value) {
  if (metrics_ != nullptr) metrics_->count(name, value);
}

std::size_t DeltaPlanner::base_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return bases_.size();
}

std::vector<std::string> DeltaPlanner::base_names() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::vector<std::string> names;
  names.reserve(bases_.size());
  for (const auto& [name, _] : bases_) names.push_back(name);
  return names;
}

std::string DeltaPlanner::handle(const PlanRequest& request) {
  if (request.type != RequestType::kDelta) {
    return serialize_error(request.id, "delta planner received a non-delta request");
  }
  count("delta.requests");
  if (request.mutations.size() > options_.max_batch) {
    count("delta.rejected");
    return serialize_error(request.id,
                           "mutation batch of " + std::to_string(request.mutations.size()) +
                               " exceeds the server cap of " +
                               std::to_string(options_.max_batch));
  }

  const bool carries_creation = !request.machines.empty();
  BaseState* base = nullptr;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    const auto it = bases_.find(request.base);
    if (it != bases_.end()) {
      base = it->second.get();
    } else {
      if (!carries_creation) {
        count("delta.rejected");
        return serialize_error(request.id, "unknown base '" + request.base +
                                               "' (creation requires 'app' and 'machines')");
      }
      if (bases_.size() >= options_.max_bases) {
        count("delta.rejected");
        return serialize_error(request.id,
                               "base registry full (" + std::to_string(options_.max_bases) +
                                   " bases); delete or reuse an existing base");
      }
      base = bases_.emplace(request.base, std::make_unique<BaseState>())
                 .first->second.get();
    }
  }

  // Per-base serialization: deltas to one base are totally ordered, so the
  // maintained assignment is deterministic at any server thread count.
  std::lock_guard<std::mutex> base_lock(base->mutex);
  if (!base->ready) {
    if (!carries_creation) {
      count("delta.rejected");
      return serialize_error(request.id, "base '" + request.base +
                                             "' is not initialized (creation requires "
                                             "'app' and 'machines')");
    }
    return handle_creation(*base, request.base, request);
  }
  if (carries_creation &&
      (base->app != request.app || base->machines != request.machines)) {
    count("delta.rejected");
    return serialize_error(request.id, "base '" + request.base +
                                           "' already exists with different "
                                           "'app'/'machines'");
  }
  if (request.partitioner && *request.partitioner != base->kind) {
    count("delta.rejected");
    return serialize_error(request.id,
                           "cannot change the partitioner of existing base '" +
                               request.base + "'");
  }
  return handle_update(*base, request.base, request);
}

std::string DeltaPlanner::handle_creation(BaseState& base, const std::string& name,
                                          const PlanRequest& request) {
  // A retried creation (previous attempt failed mid-way) starts clean.
  base.graph = LiveGraph{};
  base.owners.clear();
  base.inc.reset();
  base.app = request.app;
  base.machines = request.machines;
  base.seed = request.seed ? *request.seed : options_.default_seed;

  try {
    base.graph.apply(request.mutations);
  } catch (const MutationError& e) {
    count("delta.rejected");
    return serialize_error(request.id, e.what());
  }
  count("delta.mutations", request.mutations.size());
  if (base.graph.live_edge_count() == 0 || base.graph.live_vertex_count() == 0) {
    count("delta.rejected");
    return serialize_error(request.id,
                           "base '" + name + "' has no live edges to plan");
  }

  PlanRequest synthetic;
  synthetic.type = RequestType::kPlan;
  synthetic.id = request.id;
  synthetic.app = base.app;
  synthetic.machines = base.machines;
  synthetic.vertices = base.graph.live_vertex_count();
  synthetic.edges = base.graph.live_edge_count();
  synthetic.partitioner = request.partitioner;
  synthetic.timeout_ms = request.timeout_ms;

  PlanResponse response = planner_.plan(synthetic);
  if (!response.ok) {
    count("delta.plan_failures");
    return serialize_response(response);  // typed timeout/error passthrough
  }

  PartitionerKind kind;
  try {
    kind = partitioner_from_string(response.partitioner);
  } catch (const std::invalid_argument& e) {
    count("delta.plan_failures");
    return serialize_error(request.id, e.what());
  }
  if (kind == PartitionerKind::kGinger) {
    count("delta.rejected");
    return serialize_error(request.id,
                           "partitioner 'ginger' does not support incremental planning");
  }

  base.kind = kind;
  base.pinned_alpha = response.fitted_alpha;
  base.weights = response.weights;
  base.profile_key = planner_.profile_key(synthetic);
  try {
    rebuild_assignment(base);
  } catch (const std::exception& e) {
    count("delta.plan_failures");
    return serialize_error(request.id, e.what());
  }
  base.profiled_hist = base.graph.live_total_degree();
  base.drift.reset(base.graph.live_edge_count());
  base.version = 1;
  base.ready = true;
  count("delta.creations");
  return finish(base, name, response, /*reprofiled=*/true,
                /*moved=*/base.graph.live_edge_count(), /*hist_distance=*/0.0);
}

std::string DeltaPlanner::handle_update(BaseState& base, const std::string& name,
                                        const PlanRequest& request) {
  DriftPolicy policy = options_.default_policy;
  if (request.drift_churn) policy.churn_threshold = *request.drift_churn;
  if (request.drift_hist) policy.histogram_threshold = *request.drift_hist;
  if (request.reprofile) policy.mode = *request.reprofile;

  const std::vector<MachineId> old_owners = base.owners;

  LiveGraph::BatchResult applied;
  try {
    applied = base.graph.apply(request.mutations);
  } catch (const MutationError& e) {
    count("delta.rejected");
    return serialize_error(request.id, e.what());  // atomic: base untouched
  }
  count("delta.mutations", request.mutations.size());
  try {
    extend_assignment(base, applied);
  } catch (const std::exception& e) {
    count("delta.plan_failures");
    return serialize_error(request.id, e.what());
  }
  base.drift.added += applied.added_slots.size();
  base.drift.removed += applied.removed_slots.size();

  if (base.graph.live_edge_count() == 0 || base.graph.live_vertex_count() == 0) {
    ++base.version;
    count("delta.rejected");
    return serialize_error(request.id,
                           "base '" + name + "' has no live edges to plan");
  }

  const double hist_distance =
      histogram_distance(base.profiled_hist, base.graph.live_total_degree());
  const bool reprofile = should_reprofile(policy, base.drift, hist_distance);

  PlanRequest synthetic;
  synthetic.type = RequestType::kPlan;
  synthetic.id = request.id;
  synthetic.app = base.app;
  synthetic.machines = base.machines;
  synthetic.vertices = base.graph.live_vertex_count();
  synthetic.edges = base.graph.live_edge_count();
  synthetic.partitioner = base.kind;  // pinned at creation
  synthetic.timeout_ms = request.timeout_ms;

  if (!reprofile) {
    // Patch path: alpha stays pinned, so the profile key is unchanged and
    // the plan is pure cached arithmetic re-scaled to the live size.
    synthetic.alpha = base.pinned_alpha;
    PlanResponse response = planner_.plan(synthetic);
    if (!response.ok) {
      count("delta.plan_failures");
      return serialize_response(response);
    }
    ++base.version;
    std::uint64_t moved = 0;
    for (std::size_t i = 0; i < base.owners.size(); ++i) {
      if (base.graph.dead(i)) continue;
      const MachineId before = i < old_owners.size() ? old_owners[i] : kInvalidMachine;
      if (base.owners[i] != before) ++moved;
    }
    return finish(base, name, response, /*reprofiled=*/false, moved, hist_distance);
  }

  // Re-profile path: refit alpha from the live graph, force a fresh CCR
  // profile by invalidating the key the refit resolves to, then rebuild the
  // maintained assignment from scratch over the compacted survivors — the
  // result is byte-identical to a from-scratch plan of the mutated graph.
  const std::string new_key = planner_.profile_key(synthetic);
  planner_.invalidate_profile(new_key);
  count("delta.reprofiles");
  PlanResponse response = planner_.plan(synthetic);
  if (!response.ok) {
    // Keep the patched assignment and accumulated drift; the next delta
    // will try to re-profile again.
    count("delta.plan_failures");
    return serialize_response(response);
  }

  // Owners of the surviving live slots, pre-compact order == post-compact
  // slot order — the comparand for the moved-edges count.
  std::vector<MachineId> surviving_before;
  surviving_before.reserve(base.graph.live_edge_count());
  for (std::size_t i = 0; i < base.owners.size(); ++i) {
    if (!base.graph.dead(i)) {
      surviving_before.push_back(i < old_owners.size() ? old_owners[i]
                                                       : kInvalidMachine);
    }
  }

  base.pinned_alpha = response.fitted_alpha;
  base.weights = response.weights;
  base.profile_key = new_key;
  base.graph.compact(&base.owners);
  try {
    rebuild_assignment(base);
  } catch (const std::exception& e) {
    count("delta.plan_failures");
    return serialize_error(request.id, e.what());
  }
  base.profiled_hist = base.graph.live_total_degree();
  base.drift.reset(base.graph.live_edge_count());
  ++base.version;

  std::uint64_t moved = 0;
  for (std::size_t i = 0; i < base.owners.size(); ++i) {
    if (base.owners[i] != surviving_before[i]) ++moved;
  }
  return finish(base, name, response, /*reprofiled=*/true, moved, hist_distance);
}

void DeltaPlanner::rebuild_assignment(BaseState& base) {
  const EdgeList live = base.graph.live_edge_list();
  base.owners.assign(base.graph.slot_count(), kInvalidMachine);
  std::vector<MachineId> assigned;
  if (IncrementalState::supports(base.kind)) {
    base.inc = IncrementalState::create(base.kind, base.weights, base.seed);
    base.inc->ensure_vertices(base.graph.num_vertices());
    assigned.reserve(live.num_edges());
    base.inc->assign_batch(live.edges(), assigned);
  } else {
    base.inc.reset();
    assigned = make_partitioner(base.kind)
                   ->partition(live, base.weights, base.seed)
                   .edge_to_machine;
  }
  std::size_t next = 0;
  for (std::size_t i = 0; i < base.owners.size(); ++i) {
    if (!base.graph.dead(i)) base.owners[i] = assigned.at(next++);
  }
}

void DeltaPlanner::extend_assignment(BaseState& base,
                                     const LiveGraph::BatchResult& applied) {
  base.owners.resize(base.graph.slot_count(), kInvalidMachine);
  if (base.inc == nullptr) {
    // Recompute kinds (chunking, random_hash): one stateless O(E) pass over
    // the live list is already as cheap as any incremental bookkeeping.
    rebuild_assignment(base);
    return;
  }
  base.inc->ensure_vertices(base.graph.num_vertices());
  std::vector<Edge> added;
  added.reserve(applied.added_slots.size());
  for (const std::size_t slot : applied.added_slots) {
    added.push_back(base.graph.slot(slot));
  }
  std::vector<MachineId> assigned;
  assigned.reserve(added.size());
  base.inc->assign_batch(added, assigned);
  for (std::size_t i = 0; i < applied.added_slots.size(); ++i) {
    base.owners[applied.added_slots[i]] = assigned[i];
  }
  // Retract after assigning, so an edge added and removed by the same batch
  // passes through the scorer symmetrically.
  for (const std::size_t slot : applied.removed_slots) {
    if (base.owners[slot] != kInvalidMachine) {
      base.inc->retract(base.graph.slot(slot), base.owners[slot]);
      base.owners[slot] = kInvalidMachine;
    }
  }
}

std::string DeltaPlanner::finish(BaseState& base, const std::string& name,
                                 PlanResponse& response, bool reprofiled,
                                 std::uint64_t moved, double hist_distance) {
  DeltaInfo info;
  info.base = name;
  info.version = base.version;
  info.live_vertices = base.graph.live_vertex_count();
  info.live_edges = base.graph.live_edge_count();
  info.churn = base.drift.churn();
  info.hist_distance = hist_distance;
  info.reprofiled = reprofiled;
  info.moved_edges = moved;

  // Order-sensitive digest of the maintained state: (src, dst, owner) of
  // every live slot in slot order.  Two replicas (or an incremental base and
  // its from-scratch twin) agree on the digest iff they hold the identical
  // assignment of the identical edge sequence.
  std::uint64_t digest = hash_u64(base.graph.live_edge_count(), 0xD1B54A32D192ED03ull);
  PartitionAssignment assignment;
  assignment.num_machines = static_cast<MachineId>(base.weights.size());
  assignment.edge_to_machine.reserve(base.graph.live_edge_count());
  for (std::size_t i = 0; i < base.graph.slot_count(); ++i) {
    if (base.graph.dead(i)) continue;
    const Edge& e = base.graph.slot(i);
    digest = hash_combine(digest, (static_cast<std::uint64_t>(e.src) << 32) | e.dst);
    digest = hash_combine(digest, base.owners[i]);
    assignment.edge_to_machine.push_back(base.owners[i]);
  }
  info.digest = digest;

  const PartitionMetrics observed = compute_partition_metrics(
      base.graph.live_edge_list(), assignment, base.weights,
      &planner_.thread_pool());
  info.replication_factor = observed.replication_factor;
  info.imbalance = observed.weighted_imbalance;

  std::string line = serialize_response(response);
  line.pop_back();  // strip '}' — the block is strictly additive
  line += ",\"delta\":";
  line += serialize_delta_block(info);
  line += "}";
  return line;
}

// --- persistence -----------------------------------------------------------

namespace {

void encode_histogram(std::string& out, const ExactHistogram& hist) {
  const auto& counts = hist.counts();
  persist::append_u64(out, counts.size());
  std::uint64_t nonzero = 0;
  for (const std::uint64_t c : counts) {
    if (c != 0) ++nonzero;
  }
  persist::append_u64(out, nonzero);
  for (std::size_t value = 0; value < counts.size(); ++value) {
    if (counts[value] == 0) continue;
    persist::append_u32(out, static_cast<std::uint32_t>(value));
    persist::append_u64(out, counts[value]);
  }
}

ExactHistogram decode_histogram(persist::Cursor& cursor) {
  ExactHistogram hist;
  const std::uint64_t support = cursor.read_u64();
  const std::uint64_t nonzero = cursor.read_u64();
  for (std::uint64_t k = 0; k < nonzero; ++k) {
    const std::uint32_t value = cursor.read_u32();
    if (value >= support) {
      throw persist::SnapshotError("dynamic state: histogram value out of range");
    }
    hist.add(value, cursor.read_u64());
  }
  return hist;
}

}  // namespace

std::string DeltaPlanner::encode_state() const {
  std::vector<std::string> bodies;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& [name, basep] : bases_) {  // std::map: name-sorted
      std::lock_guard<std::mutex> base_lock(basep->mutex);
      const BaseState& base = *basep;
      if (!base.ready) continue;
      std::string body;
      persist::append_string(body, name);
      persist::append_string(body, to_string(base.app));
      persist::append_u32(body, static_cast<std::uint32_t>(base.machines.size()));
      for (const std::string& machine : base.machines) {
        persist::append_string(body, machine);
      }
      persist::append_string(body, to_string(base.kind));
      persist::append_u64(body, base.seed);
      persist::append_f64(body, base.pinned_alpha);
      persist::append_string(body, base.profile_key);
      persist::append_u64(body, base.version);
      persist::append_u64(body, base.drift.added);
      persist::append_u64(body, base.drift.removed);
      persist::append_u64(body, base.drift.profiled_edges);
      encode_histogram(body, base.profiled_hist);
      persist::append_u32(body, static_cast<std::uint32_t>(base.weights.size()));
      for (const double w : base.weights) persist::append_f64(body, w);
      // Live content only: tombstones are dropped (slot indices renumber,
      // which is invisible — only live-slot ORDER is observable).
      persist::append_u64(body, base.graph.num_vertices());
      std::string alive(base.graph.num_vertices(), '\0');
      for (VertexId v = 0; v < base.graph.num_vertices(); ++v) {
        if (base.graph.vertex_alive(v)) alive[v] = '\1';
      }
      persist::append_string(body, alive);
      persist::append_u64(body, base.graph.live_edge_count());
      for (std::size_t i = 0; i < base.graph.slot_count(); ++i) {
        if (base.graph.dead(i)) continue;
        const Edge& e = base.graph.slot(i);
        persist::append_u32(body, e.src);
        persist::append_u32(body, e.dst);
        persist::append_u32(body, base.owners[i]);
      }
      persist::append_u32(body, base.inc != nullptr ? 1 : 0);
      if (base.inc != nullptr) {
        std::string inner;
        base.inc->encode(inner);
        persist::append_string(body, inner);
      }
      bodies.push_back(std::move(body));
    }
  }
  std::string out;
  persist::append_u32(out, static_cast<std::uint32_t>(bodies.size()));
  for (const std::string& body : bodies) out += body;
  return out;
}

std::size_t DeltaPlanner::restore_state(const std::string& payload) {
  persist::Cursor cursor(payload);
  const std::uint32_t base_count = cursor.read_u32();

  // Decode and validate everything before touching the registry: a corrupt
  // snapshot must reject wholesale, never leave half a base behind.
  std::vector<std::pair<std::string, std::unique_ptr<BaseState>>> restored;
  for (std::uint32_t k = 0; k < base_count; ++k) {
    auto base = std::make_unique<BaseState>();
    const std::string name = cursor.read_string();
    if (name.empty()) throw persist::SnapshotError("dynamic state: empty base name");

    const std::string app_name = cursor.read_string();
    const auto app = try_app_from_name(app_name);
    if (!app) {
      throw persist::SnapshotError("dynamic state: unknown app '" + app_name + "'");
    }
    base->app = *app;

    const std::uint32_t machine_count = cursor.read_u32();
    for (std::uint32_t m = 0; m < machine_count; ++m) {
      base->machines.push_back(cursor.read_string());
    }
    if (base->machines.empty()) {
      throw persist::SnapshotError("dynamic state: base without machines");
    }

    const std::string kind_name = cursor.read_string();
    try {
      base->kind = partitioner_from_string(kind_name);
    } catch (const std::invalid_argument&) {
      throw persist::SnapshotError("dynamic state: unknown partitioner '" + kind_name + "'");
    }
    base->seed = cursor.read_u64();
    base->pinned_alpha = cursor.read_f64();
    if (!(base->pinned_alpha > 1.0)) {
      throw persist::SnapshotError("dynamic state: pinned alpha must be > 1");
    }
    base->profile_key = cursor.read_string();
    base->version = cursor.read_u64();
    base->drift.added = cursor.read_u64();
    base->drift.removed = cursor.read_u64();
    base->drift.profiled_edges = cursor.read_u64();
    base->profiled_hist = decode_histogram(cursor);

    const std::uint32_t weight_count = cursor.read_u32();
    if (weight_count == 0) {
      throw persist::SnapshotError("dynamic state: base without weights");
    }
    for (std::uint32_t w = 0; w < weight_count; ++w) {
      const double weight = cursor.read_f64();
      if (!(weight > 0.0)) {
        throw persist::SnapshotError("dynamic state: weights must be positive");
      }
      base->weights.push_back(weight);
    }

    const std::uint64_t num_vertices = cursor.read_u64();
    const std::string alive = cursor.read_string();
    if (alive.size() != num_vertices) {
      throw persist::SnapshotError("dynamic state: alive bitmap size mismatch");
    }
    std::vector<Mutation> rebuild;
    for (std::uint64_t v = 0; v < num_vertices; ++v) {
      if (alive[v] == '\1') {
        rebuild.push_back(Mutation::add_vertex(static_cast<VertexId>(v)));
      } else if (alive[v] != '\0') {
        throw persist::SnapshotError("dynamic state: malformed alive bitmap");
      }
    }
    const std::uint64_t live_edges = cursor.read_u64();
    std::vector<MachineId> live_owners;
    live_owners.reserve(live_edges);
    for (std::uint64_t i = 0; i < live_edges; ++i) {
      const VertexId src = cursor.read_u32();
      const VertexId dst = cursor.read_u32();
      if (src >= num_vertices || dst >= num_vertices || alive[src] != '\1' ||
          alive[dst] != '\1') {
        throw persist::SnapshotError("dynamic state: edge endpoint not alive");
      }
      const MachineId owner = cursor.read_u32();
      if (owner >= base->weights.size()) {
        throw persist::SnapshotError("dynamic state: owner out of machine range");
      }
      rebuild.push_back(Mutation::add_edge(src, dst));
      live_owners.push_back(owner);
    }
    try {
      base->graph.apply(rebuild);
    } catch (const MutationError& e) {
      throw persist::SnapshotError(std::string("dynamic state: inconsistent graph: ") +
                                   e.what());
    }
    base->owners = std::move(live_owners);  // all slots live after rebuild

    const std::uint32_t has_inc = cursor.read_u32();
    if (has_inc > 1) throw persist::SnapshotError("dynamic state: malformed inc flag");
    if ((has_inc == 1) != IncrementalState::supports(base->kind)) {
      throw persist::SnapshotError("dynamic state: scorer state does not match partitioner");
    }
    if (has_inc == 1) {
      const std::string inner = cursor.read_string();
      persist::Cursor inner_cursor(inner);
      try {
        base->inc = IncrementalState::decode(base->kind, inner_cursor, base->weights,
                                             base->seed);
      } catch (const std::invalid_argument& e) {
        throw persist::SnapshotError(std::string("dynamic state: ") + e.what());
      }
      if (!inner_cursor.done()) {
        throw persist::SnapshotError("dynamic state: trailing scorer-state bytes");
      }
      base->inc->ensure_vertices(base->graph.num_vertices());
    }
    base->ready = true;
    restored.emplace_back(name, std::move(base));
  }
  if (!cursor.done()) {
    throw persist::SnapshotError("dynamic state: trailing bytes after last base");
  }

  std::size_t imported = 0;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (auto& [name, base] : restored) {
    if (bases_.count(name) != 0) continue;  // live state wins over snapshots
    if (bases_.size() >= options_.max_bases) break;
    bases_.emplace(name, std::move(base));
    ++imported;
  }
  count("delta.bases_restored", imported);
  return imported;
}

}  // namespace pglb::dynamic
