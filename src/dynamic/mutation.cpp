#include "dynamic/mutation.hpp"

#include <algorithm>
#include <limits>

#include "util/hash.hpp"

namespace pglb::dynamic {

const char* to_string(MutationOp op) noexcept {
  switch (op) {
    case MutationOp::kAddEdge: return "add_edge";
    case MutationOp::kRemoveEdge: return "remove_edge";
    case MutationOp::kAddVertex: return "add_vertex";
    case MutationOp::kRemoveVertex: return "remove_vertex";
  }
  return "add_edge";
}

std::optional<MutationOp> mutation_op_from_string(std::string_view name) noexcept {
  if (name == "add_edge") return MutationOp::kAddEdge;
  if (name == "remove_edge") return MutationOp::kRemoveEdge;
  if (name == "add_vertex") return MutationOp::kAddVertex;
  if (name == "remove_vertex") return MutationOp::kRemoveVertex;
  return std::nullopt;
}

void LiveGraph::grow_vertex_space(VertexId count) {
  if (count > num_vertices_) {
    alive_.resize(count, 0);
    num_vertices_ = count;
  }
}

void LiveGraph::revive(VertexId v) {
  grow_vertex_space(v + 1);
  if (alive_[v] == 0) {
    alive_[v] = 1;
    ++live_vertices_;
  }
}

LiveGraph::BatchResult LiveGraph::apply(std::span<const Mutation> batch) {
  // --- validation pass: dry-run the batch over overlay state ---------------
  // Overlay maps carry only the pairs/vertices the batch touches; anything
  // absent reads through to the live structures.  Nothing below this comment
  // mutates the graph.
  std::unordered_map<std::uint64_t, std::uint64_t> mult_overlay;
  std::unordered_map<VertexId, bool> alive_overlay;

  const auto multiplicity = [&](std::uint64_t key) -> std::uint64_t {
    if (const auto it = mult_overlay.find(key); it != mult_overlay.end()) {
      return it->second;
    }
    const auto it = live_index_.find(key);
    return it != live_index_.end() ? it->second.size() : 0;
  };
  const auto is_alive = [&](VertexId v) -> bool {
    if (const auto it = alive_overlay.find(v); it != alive_overlay.end()) {
      return it->second;
    }
    return vertex_alive(v);
  };

  for (const Mutation& m : batch) {
    switch (m.op) {
      case MutationOp::kAddEdge: {
        const std::uint64_t key = pair_key(m.src, m.dst);
        mult_overlay[key] = multiplicity(key) + 1;
        alive_overlay[m.src] = true;
        alive_overlay[m.dst] = true;
        break;
      }
      case MutationOp::kRemoveEdge: {
        const std::uint64_t key = pair_key(m.src, m.dst);
        const std::uint64_t count = multiplicity(key);
        if (count == 0) {
          throw MutationError("remove_edge (" + std::to_string(m.src) + ", " +
                              std::to_string(m.dst) +
                              ") does not match a live edge at its point in the batch");
        }
        mult_overlay[key] = count - 1;
        break;
      }
      case MutationOp::kAddVertex: {
        if (is_alive(m.src)) {
          throw MutationError("add_vertex " + std::to_string(m.src) +
                              " names an already-live vertex");
        }
        alive_overlay[m.src] = true;
        break;
      }
      case MutationOp::kRemoveVertex: {
        if (!is_alive(m.src)) {
          throw MutationError("remove_vertex " + std::to_string(m.src) +
                              " names a vertex that is not live");
        }
        alive_overlay[m.src] = false;
        // Removing a vertex removes its incident live edges: zero their
        // multiplicities so a later remove_edge of one is the contradiction
        // it should be.  Pre-existing incident pairs come from the slots;
        // batch-added ones are already in the overlay.
        for (std::size_t i = 0; i < slots_.size(); ++i) {
          if (dead_[i] != 0) continue;
          const Edge& e = slots_[i];
          if (e.src != m.src && e.dst != m.src) continue;
          mult_overlay.emplace(pair_key(e.src, e.dst),
                               multiplicity(pair_key(e.src, e.dst)));
        }
        for (auto& [key, count] : mult_overlay) {
          const auto src = static_cast<VertexId>(key >> 32);
          const auto dst = static_cast<VertexId>(key & 0xFFFFFFFFu);
          if (src == m.src || dst == m.src) count = 0;
        }
        break;
      }
    }
  }

  // --- apply pass: the batch is valid; mutate for real ---------------------
  BatchResult result;
  for (const Mutation& m : batch) {
    switch (m.op) {
      case MutationOp::kAddEdge: {
        revive(m.src);
        revive(m.dst);
        const std::size_t slot = slots_.size();
        slots_.push_back(Edge{m.src, m.dst});
        dead_.push_back(0);
        live_index_[pair_key(m.src, m.dst)].push_back(slot);
        ++live_edges_;
        result.added_slots.push_back(slot);
        break;
      }
      case MutationOp::kRemoveEdge: {
        auto& slots = live_index_.at(pair_key(m.src, m.dst));
        const std::size_t slot = slots.front();  // first live match
        slots.erase(slots.begin());
        if (slots.empty()) live_index_.erase(pair_key(m.src, m.dst));
        dead_[slot] = 1;
        --live_edges_;
        result.removed_slots.push_back(slot);
        break;
      }
      case MutationOp::kAddVertex: {
        revive(m.src);
        break;
      }
      case MutationOp::kRemoveVertex: {
        alive_[m.src] = 0;
        --live_vertices_;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
          if (dead_[i] != 0) continue;
          const Edge& e = slots_[i];
          if (e.src != m.src && e.dst != m.src) continue;
          auto& slots = live_index_.at(pair_key(e.src, e.dst));
          slots.erase(std::find(slots.begin(), slots.end(), i));
          if (slots.empty()) live_index_.erase(pair_key(e.src, e.dst));
          dead_[i] = 1;
          --live_edges_;
          result.removed_slots.push_back(i);
        }
        break;
      }
    }
  }
  return result;
}

EdgeList LiveGraph::live_edge_list() const {
  EdgeList graph(num_vertices_);
  graph.reserve(live_edges_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (dead_[i] == 0) graph.add(slots_[i].src, slots_[i].dst);
  }
  return graph;
}

ExactHistogram LiveGraph::live_total_degree() const {
  std::vector<EdgeId> degree(num_vertices_, 0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (dead_[i] != 0) continue;
    ++degree[slots_[i].src];
    ++degree[slots_[i].dst];
  }
  ExactHistogram hist;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (alive_[v] != 0) hist.add(degree[v]);
  }
  return hist;
}

void LiveGraph::compact(std::vector<MachineId>* owners) {
  VertexId max_alive = 0;
  bool any_alive = false;
  for (VertexId v = 0; v < num_vertices_; ++v) {
    if (alive_[v] != 0) {
      max_alive = v;
      any_alive = true;
    }
  }
  std::vector<Edge> survivors;
  std::vector<MachineId> surviving_owners;
  survivors.reserve(live_edges_);
  if (owners != nullptr) surviving_owners.reserve(live_edges_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (dead_[i] != 0) continue;
    survivors.push_back(slots_[i]);
    if (owners != nullptr) surviving_owners.push_back((*owners)[i]);
  }
  slots_ = std::move(survivors);
  dead_.assign(slots_.size(), 0);
  if (owners != nullptr) *owners = std::move(surviving_owners);
  num_vertices_ = any_alive ? max_alive + 1 : 0;
  alive_.resize(num_vertices_);
  live_index_.clear();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    live_index_[pair_key(slots_[i].src, slots_[i].dst)].push_back(i);
  }
  live_edges_ = slots_.size();
}

std::size_t LiveGraph::nth_live_slot(std::uint64_t n) const {
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (dead_[i] != 0) {
      continue;
    }
    if (seen == n) return i;
    ++seen;
  }
  throw std::out_of_range("LiveGraph::nth_live_slot: fewer than n+1 live edges");
}

namespace {

/// Incident live degree of `v` in the mirror, counting only base slots not
/// yet removed by this batch.
std::uint64_t base_incident_degree(const LiveGraph& mirror, VertexId v,
                                   const std::vector<std::uint8_t>& slot_removed) {
  std::uint64_t degree = 0;
  for (std::size_t i = 0; i < mirror.slot_count(); ++i) {
    if (mirror.dead(i) || slot_removed[i] != 0) continue;
    const Edge& e = mirror.slot(i);
    if (e.src == v || e.dst == v) ++degree;
  }
  return degree;
}

}  // namespace

std::vector<Mutation> generate_mutation_batch(const LiveGraph& mirror,
                                              std::uint64_t seed,
                                              std::uint64_t batch_index,
                                              std::size_t edits) {
  std::uint64_t state = hash_u64(batch_index, seed);
  const auto next = [&state]() {
    state = hash_u64(state, 0x9e3779b97f4a7c15ull);
    return state;
  };

  std::vector<Mutation> batch;
  batch.reserve(edits);
  // Batch-local bookkeeping so every emitted mutation is valid for the
  // mirror's state at its point in the batch.
  std::vector<std::uint8_t> slot_removed(mirror.slot_count(), 0);
  std::uint64_t base_live_left = mirror.live_edge_count();
  std::vector<std::uint8_t> vertex_removed(mirror.num_vertices(), 0);
  std::vector<std::uint8_t> vertex_touched_by_add(mirror.num_vertices(), 0);
  VertexId births = 0;
  const VertexId space = mirror.num_vertices();

  const auto emit_add_edge = [&]() {
    VertexId src, dst;
    if (space == 0) {
      src = 0;
      dst = 1;
    } else {
      src = static_cast<VertexId>(next() % space);
      // A quarter of new edges attach to a low-id "hub" range so churn keeps
      // a power-law flavour instead of flattening the degree histogram.
      const VertexId hub_range = std::max<VertexId>(1, space / 8);
      dst = next() % 4 == 0 ? static_cast<VertexId>(next() % hub_range)
                            : static_cast<VertexId>(next() % space);
    }
    if (src < space) vertex_touched_by_add[src] = 1;
    if (dst < space) vertex_touched_by_add[dst] = 1;
    batch.push_back(Mutation::add_edge(src, dst));
  };

  for (std::size_t k = 0; k < edits; ++k) {
    const std::uint64_t roll = next() % 100;
    if (roll < 58 || base_live_left == 0) {
      emit_add_edge();
    } else if (roll < 88) {
      // Remove a base live edge not already taken by this batch and not
      // incident to a vertex this batch retires (conservative validity).
      const std::uint64_t start = next() % mirror.live_edge_count();
      bool emitted = false;
      for (std::uint64_t t = 0; t < mirror.live_edge_count(); ++t) {
        const std::size_t slot =
            mirror.nth_live_slot((start + t) % mirror.live_edge_count());
        if (slot_removed[slot] != 0) continue;
        const Edge& e = mirror.slot(slot);
        if ((e.src < space && vertex_removed[e.src] != 0) ||
            (e.dst < space && vertex_removed[e.dst] != 0)) {
          continue;
        }
        slot_removed[slot] = 1;
        --base_live_left;
        batch.push_back(Mutation::remove_edge(e.src, e.dst));
        emitted = true;
        break;
      }
      if (!emitted) emit_add_edge();
    } else if (roll < 94) {
      batch.push_back(Mutation::add_vertex(space + births));
      ++births;
    } else {
      // Retire a low-degree live vertex untouched by this batch; fall back
      // to an add when no candidate turns up within a bounded probe.
      bool emitted = false;
      if (space > 0) {
        const VertexId start = static_cast<VertexId>(next() % space);
        for (VertexId t = 0; t < std::min<VertexId>(space, 64); ++t) {
          const VertexId v = static_cast<VertexId>((start + t) % space);
          if (!mirror.vertex_alive(v) || vertex_removed[v] != 0 ||
              vertex_touched_by_add[v] != 0) {
            continue;
          }
          if (base_incident_degree(mirror, v, slot_removed) > 2) continue;
          vertex_removed[v] = 1;
          for (std::size_t i = 0; i < mirror.slot_count(); ++i) {
            if (mirror.dead(i) || slot_removed[i] != 0) continue;
            const Edge& e = mirror.slot(i);
            if (e.src == v || e.dst == v) {
              slot_removed[i] = 1;
              --base_live_left;
            }
          }
          batch.push_back(Mutation::remove_vertex(v));
          emitted = true;
          break;
        }
      }
      if (!emitted) emit_add_edge();
    }
  }
  return batch;
}

}  // namespace pglb::dynamic
