#pragma once
// Delta planning: first-class `delta` requests over named mutable base
// graphs (docs/DYNAMIC.md).
//
// A base is created by the first delta that names it (carrying `app` +
// `machines` alongside its mutation batch) and lives server-side as a
// LiveGraph plus a maintained streamed-partition assignment.  Subsequent
// deltas apply their batches atomically, extend the assignment through the
// saved scorer state (partition/incremental.hpp) — or a cheap recompute for
// chunking/random_hash — and re-cost the plan through the ordinary Planner
// path with the base's PINNED alpha, so the expensive CCR profile is a
// guaranteed cache hit while drift stays in bounds.
//
// Drift (core/drift.hpp) is tracked against the degree histogram snapshotted
// at the last profile.  When the policy fires (or reprofile=force), the base
// refits alpha from its live size, invalidates its profile key, re-plans —
// re-running CCR profiling — and then COMPACTS and rebuilds its assignment
// by replaying the surviving edges through a fresh scorer state.  That
// replay is byte-identical to a from-scratch plan of the mutated graph,
// which is the dynamic_drill equivalence gate.
//
// Concurrency: one mutex serializes the base registry, one mutex per base
// serializes its mutations — deltas to the same base are totally ordered,
// deltas to different bases proceed in parallel, and results are
// bit-identical at any server thread count.  Bases are never erased (a
// failed creation leaves a non-ready stub that the next creation attempt
// re-initializes), so per-base pointers stay stable without refcounting.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/drift.hpp"
#include "dynamic/mutation.hpp"
#include "partition/incremental.hpp"
#include "service/planner.hpp"

namespace pglb::dynamic {

struct DeltaOptions {
  std::size_t max_bases = 64;        ///< registry cap; typed error beyond
  std::size_t max_batch = 1'000'000; ///< mutations per request; typed error beyond
  DriftPolicy default_policy;        ///< thresholds when the request has none
  std::uint64_t default_seed = 42;   ///< partition seed when creation has none
};

class DeltaPlanner {
 public:
  explicit DeltaPlanner(Planner& planner, DeltaOptions options = {},
                        ServiceMetrics* metrics = nullptr);

  /// Serve one delta request end to end, returning the full response line:
  /// an ok plan response extended with a `delta` block, or a typed error.
  /// Never throws for bad requests; batch application is atomic, so a
  /// rejected batch leaves the base exactly as it was.
  std::string handle(const PlanRequest& request);

  std::size_t base_count() const;

  /// Live base names, sorted (diagnostics and tests).
  std::vector<std::string> base_names() const;

  // --- durable warm state (docs/PERSIST.md, section kDynamicState) ---------

  /// Serialize every ready base (graph, owners, scorer state, drift) with
  /// the persist payload primitives — the kDynamicState section body.
  std::string encode_state() const;

  /// Restore bases from an encode_state() payload.  Validates fully before
  /// touching the registry; throws persist::SnapshotError on any defect.
  /// Existing bases with the same name are left untouched (live state wins
  /// over a snapshot).  Returns the number of bases restored.
  std::size_t restore_state(const std::string& payload);

 private:
  struct BaseState {
    std::mutex mutex;          ///< serializes mutations to this base
    bool ready = false;        ///< creation completed (plan succeeded)
    AppKind app = AppKind::kPageRank;
    std::vector<std::string> machines;
    PartitionerKind kind = PartitionerKind::kHybrid;
    std::uint64_t seed = 0;
    double pinned_alpha = 0.0;     ///< refit only on re-profile
    std::string profile_key;       ///< invalidated when drift fires
    LiveGraph graph;
    std::vector<MachineId> owners; ///< slot-aligned; kInvalidMachine = dead
    std::vector<double> weights;   ///< normalized shares of the current plan
    std::unique_ptr<IncrementalState> inc;  ///< null for recompute kinds
    DriftStats drift;
    ExactHistogram profiled_hist;  ///< degree snapshot at the last profile
    std::uint64_t version = 0;     ///< batches applied since creation
  };

  std::string handle_creation(BaseState& base, const std::string& name,
                              const PlanRequest& request);
  std::string handle_update(BaseState& base, const std::string& name,
                            const PlanRequest& request);

  /// Rebuild `base.owners` from scratch over the live edge list (fresh
  /// scorer state, or the stateless partitioner for recompute kinds).
  void rebuild_assignment(BaseState& base);

  /// Extend the assignment with one applied batch: assign added slots in
  /// order, then retract removed ones.
  void extend_assignment(BaseState& base, const LiveGraph::BatchResult& applied);

  /// The ok response line with the delta block spliced in, plus observed
  /// partition metrics and the live-state digest.
  std::string finish(BaseState& base, const std::string& name,
                     PlanResponse& response, bool reprofiled,
                     std::uint64_t moved, double hist_distance);

  void count(const char* name, std::uint64_t value = 1);

  Planner& planner_;
  DeltaOptions options_;
  ServiceMetrics* metrics_;

  mutable std::mutex registry_mutex_;  ///< guards bases_ (map mutations)
  std::map<std::string, std::unique_ptr<BaseState>> bases_;
};

}  // namespace pglb::dynamic
