#pragma once
// Edge-list graph representation: the ingest format.  Streaming partitioners
// consume edges in list order, exactly like PowerGraph's loaders.

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pglb {

class EdgeList {
 public:
  EdgeList() = default;

  /// num_vertices fixes the vertex-id space [0, num_vertices); edges must
  /// stay inside it (checked in add()).
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  EdgeList(VertexId num_vertices, std::vector<Edge> edges);

  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Append a directed edge; throws std::out_of_range on bad endpoints.
  void add(VertexId src, VertexId dst);

  VertexId num_vertices() const noexcept { return num_vertices_; }
  EdgeId num_edges() const noexcept { return edges_.size(); }
  bool empty() const noexcept { return edges_.empty(); }

  std::span<const Edge> edges() const noexcept { return edges_; }
  const Edge& edge(EdgeId i) const { return edges_.at(i); }

  /// Grow the vertex-id space (never shrinks).
  void ensure_vertices(VertexId count) {
    if (count > num_vertices_) num_vertices_ = count;
  }

  /// Remove duplicate edges and self-loops (stable order of first
  /// occurrences is NOT preserved; edges are sorted).  Returns removed count.
  std::size_t dedup_and_strip_self_loops();

  /// Out-degree and in-degree of every vertex.
  std::vector<EdgeId> out_degrees() const;
  std::vector<EdgeId> in_degrees() const;
  /// Total degree (in + out) of every vertex.
  std::vector<EdgeId> total_degrees() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace pglb
