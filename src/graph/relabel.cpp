#include "graph/relabel.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pglb {

EdgeList apply_relabeling(const EdgeList& graph, std::span<const VertexId> forward,
                          VertexId new_size) {
  if (forward.size() != graph.num_vertices()) {
    throw std::invalid_argument("apply_relabeling: mapping size mismatch");
  }
  EdgeList out(new_size);
  out.reserve(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    const VertexId src = forward[e.src];
    const VertexId dst = forward[e.dst];
    if (src == kInvalidVertex || dst == kInvalidVertex) continue;
    if (src >= new_size || dst >= new_size) {
      throw std::invalid_argument("apply_relabeling: mapped id outside new vertex space");
    }
    out.add(src, dst);
  }
  return out;
}

RelabelResult compact_vertex_ids(const EdgeList& graph) {
  std::vector<char> present(graph.num_vertices(), 0);
  for (const Edge& e : graph.edges()) {
    present[e.src] = 1;
    present[e.dst] = 1;
  }
  RelabelResult result;
  result.forward.assign(graph.num_vertices(), kInvalidVertex);
  VertexId next = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (present[v]) result.forward[v] = next++;
  }
  result.graph = apply_relabeling(graph, result.forward, next);
  return result;
}

RelabelResult relabel_by_degree(const EdgeList& graph) {
  const auto degree = graph.total_degrees();
  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return degree[a] != degree[b] ? degree[a] > degree[b] : a < b;
  });

  RelabelResult result;
  result.forward.assign(graph.num_vertices(), kInvalidVertex);
  for (VertexId rank = 0; rank < graph.num_vertices(); ++rank) {
    result.forward[order[rank]] = rank;
  }
  result.graph = apply_relabeling(graph, result.forward, graph.num_vertices());
  return result;
}

}  // namespace pglb
