#pragma once
// Graph statistics: the quantities Table II and Fig. 6 report, plus the
// degree-skew measures the machine model consumes.

#include <cstdint>

#include "graph/edge_list.hpp"
#include "util/histogram.hpp"

namespace pglb {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  double mean_out_degree = 0.0;   ///< |E| / |V|, the paper's empirical E[d]
  EdgeId max_out_degree = 0;
  EdgeId max_total_degree = 0;
  std::uint64_t footprint_bytes = 0;  ///< SNAP-text footprint (Table II column)

  /// Skewness of the out-degree distribution: max / mean.  Drives the
  /// intra-machine load-imbalance term in the performance model (a handful of
  /// ultra-high-degree vertices serialise threads).
  double degree_skew = 0.0;

  /// Empirical power-law exponent fitted to the log-binned out-degree
  /// distribution (tail fit, least squares in log-log space).
  double empirical_alpha = 0.0;

  /// Fraction of vertices with zero out-degree.
  double sink_fraction = 0.0;
};

GraphStats compute_stats(const EdgeList& graph);

/// Exact out-degree histogram (the input to Fig. 6's log-log plot).
ExactHistogram out_degree_histogram(const EdgeList& graph);

}  // namespace pglb
