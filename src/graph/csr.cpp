#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace pglb {

Csr::Csr(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  if (offsets_.empty()) throw std::invalid_argument("Csr: offsets must have >= 1 entry");
  if (offsets_.front() != 0) throw std::invalid_argument("Csr: offsets[0] must be 0");
  if (!std::is_sorted(offsets_.begin(), offsets_.end())) {
    throw std::invalid_argument("Csr: offsets must be non-decreasing");
  }
  if (offsets_.back() != neighbors_.size()) {
    throw std::invalid_argument("Csr: offsets.back() must equal neighbors.size()");
  }
}

void Csr::sort_adjacency() {
  if (sorted_) return;
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    auto first = neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]);
    auto last = neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]);
    std::sort(first, last);
  }
  sorted_ = true;
}

EdgeId Csr::max_degree() const noexcept {
  EdgeId best = 0;
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    best = std::max(best, offsets_[v + 1] - offsets_[v]);
  }
  return best;
}

}  // namespace pglb
