#pragma once
// Fundamental identifier types shared by the whole library.

#include <cstdint>
#include <limits>

namespace pglb {

/// Vertex identifier.  32 bits comfortably covers the paper's corpus
/// (largest graph: 4.8M vertices).
using VertexId = std::uint32_t;

/// Edge index / edge count type.  64 bits: LiveJournal-scale graphs exceed
/// 2^32 half-edges once mirrored.
using EdgeId = std::uint64_t;

/// Index of a machine within a cluster.
using MachineId = std::uint32_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr MachineId kInvalidMachine = std::numeric_limits<MachineId>::max();

/// A directed edge src -> dst.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace pglb
