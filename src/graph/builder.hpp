#pragma once
// Construction of CSR views from edge lists (counting-sort based, O(V + E)).

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace pglb {

/// Adjacency by out-edges: neighbors(v) = { u : (v, u) in E }.
Csr build_out_csr(const EdgeList& graph);

/// Adjacency by in-edges: neighbors(v) = { u : (u, v) in E }.
Csr build_in_csr(const EdgeList& graph);

/// Undirected view: every edge contributes both directions; self-loops are
/// dropped; duplicate (v,u) pairs are removed.  Adjacency comes out sorted.
Csr build_undirected_csr(const EdgeList& graph);

}  // namespace pglb
