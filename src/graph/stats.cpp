#include "graph/stats.hpp"

#include <algorithm>

#include "graph/io.hpp"

namespace pglb {

ExactHistogram out_degree_histogram(const EdgeList& graph) {
  ExactHistogram hist;
  for (const EdgeId d : graph.out_degrees()) hist.add(d);
  return hist;
}

GraphStats compute_stats(const EdgeList& graph) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  if (s.num_vertices == 0) return s;

  const auto out_deg = graph.out_degrees();
  const auto total_deg = graph.total_degrees();
  s.mean_out_degree = static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  s.max_out_degree = *std::max_element(out_deg.begin(), out_deg.end());
  s.max_total_degree = *std::max_element(total_deg.begin(), total_deg.end());
  s.footprint_bytes = text_footprint_bytes(graph);
  s.degree_skew =
      s.mean_out_degree > 0.0
          ? static_cast<double>(s.max_out_degree) / s.mean_out_degree
          : 0.0;

  EdgeId sinks = 0;
  for (const EdgeId d : out_deg) {
    if (d == 0) ++sinks;
  }
  s.sink_fraction = static_cast<double>(sinks) / static_cast<double>(s.num_vertices);

  ExactHistogram hist;
  for (const EdgeId d : out_deg) hist.add(d);
  const auto bins = log_bin(hist);
  s.empirical_alpha = fit_powerlaw_exponent(bins);
  return s;
}

}  // namespace pglb
