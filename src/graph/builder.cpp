#include "graph/builder.hpp"

#include <algorithm>
#include <numeric>

namespace pglb {

namespace {

Csr build_from_degrees(const EdgeList& graph, std::vector<EdgeId> degrees, bool by_src) {
  const VertexId n = graph.num_vertices();
  std::vector<EdgeId> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degrees[v];

  std::vector<VertexId> neighbors(offsets[n]);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : graph.edges()) {
    if (by_src) {
      neighbors[cursor[e.src]++] = e.dst;
    } else {
      neighbors[cursor[e.dst]++] = e.src;
    }
  }
  return Csr(std::move(offsets), std::move(neighbors));
}

}  // namespace

Csr build_out_csr(const EdgeList& graph) {
  return build_from_degrees(graph, graph.out_degrees(), /*by_src=*/true);
}

Csr build_in_csr(const EdgeList& graph) {
  return build_from_degrees(graph, graph.in_degrees(), /*by_src=*/false);
}

Csr build_undirected_csr(const EdgeList& graph) {
  const VertexId n = graph.num_vertices();
  std::vector<EdgeId> degrees(n, 0);
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    ++degrees[e.src];
    ++degrees[e.dst];
  }
  std::vector<EdgeId> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degrees[v];

  std::vector<VertexId> neighbors(offsets[n]);
  std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : graph.edges()) {
    if (e.src == e.dst) continue;
    neighbors[cursor[e.src]++] = e.dst;
    neighbors[cursor[e.dst]++] = e.src;
  }

  // Sort each list and remove duplicate neighbours, compacting in place.
  std::vector<EdgeId> new_offsets(n + 1, 0);
  EdgeId write = 0;
  for (VertexId v = 0; v < n; ++v) {
    auto first = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
    auto last = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
    std::sort(first, last);
    auto unique_end = std::unique(first, last);
    for (auto it = first; it != unique_end; ++it) {
      neighbors[write++] = *it;
    }
    new_offsets[v + 1] = write;
  }
  neighbors.resize(write);

  Csr csr(std::move(new_offsets), std::move(neighbors));
  csr.sort_adjacency();  // already sorted per-list; marks the flag
  return csr;
}

}  // namespace pglb
