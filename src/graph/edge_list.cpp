#include "graph/edge_list.hpp"

#include <algorithm>
#include <stdexcept>

namespace pglb {

EdgeList::EdgeList(VertexId num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      throw std::out_of_range("EdgeList: edge endpoint outside vertex space");
    }
  }
}

void EdgeList::add(VertexId src, VertexId dst) {
  if (src >= num_vertices_ || dst >= num_vertices_) {
    throw std::out_of_range("EdgeList::add: edge endpoint outside vertex space");
  }
  edges_.push_back(Edge{src, dst});
}

std::size_t EdgeList::dedup_and_strip_self_loops() {
  const std::size_t before = edges_.size();
  std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  return before - edges_.size();
}

std::vector<EdgeId> EdgeList::out_degrees() const {
  std::vector<EdgeId> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.src];
  return deg;
}

std::vector<EdgeId> EdgeList::in_degrees() const {
  std::vector<EdgeId> deg(num_vertices_, 0);
  for (const Edge& e : edges_) ++deg[e.dst];
  return deg;
}

std::vector<EdgeId> EdgeList::total_degrees() const {
  std::vector<EdgeId> deg(num_vertices_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.src];
    ++deg[e.dst];
  }
  return deg;
}

}  // namespace pglb
