#pragma once
// Compressed sparse row adjacency.  The engine's reference implementations and
// the single-machine application kernels operate on CSR; the distributed
// engine builds per-machine CSRs over local edge partitions.

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace pglb {

class Csr {
 public:
  Csr() = default;

  /// offsets.size() == num_vertices + 1; neighbors.size() == offsets.back().
  Csr(std::vector<EdgeId> offsets, std::vector<VertexId> neighbors);

  VertexId num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  EdgeId num_edges() const noexcept { return neighbors_.size(); }

  EdgeId degree(VertexId v) const { return offsets_.at(v + 1) - offsets_.at(v); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return std::span<const VertexId>(neighbors_).subspan(offsets_.at(v), degree(v));
  }

  std::span<const EdgeId> offsets() const noexcept { return offsets_; }
  std::span<const VertexId> neighbor_array() const noexcept { return neighbors_; }

  /// Sort each adjacency list ascending (needed for O(d1+d2) triangle
  /// intersections).  Idempotent.
  void sort_adjacency();
  bool adjacency_sorted() const noexcept { return sorted_; }

  EdgeId max_degree() const noexcept;

 private:
  std::vector<EdgeId> offsets_;
  std::vector<VertexId> neighbors_;
  bool sorted_ = false;
};

}  // namespace pglb
