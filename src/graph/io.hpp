#pragma once
// Edge-list IO.  Two formats:
//  - SNAP-style text: one "src<TAB>dst" per line; '#' comment lines ignored.
//    This is the format of the paper's real-world inputs (Table II).
//  - A compact binary format (magic + counts + raw edges) for fast reload of
//    generated corpora.

#include <string>

#include "graph/edge_list.hpp"

namespace pglb {

/// Write SNAP-style text.  Throws std::runtime_error on IO failure.
void write_edge_list_text(const EdgeList& graph, const std::string& path);

/// Read SNAP-style text.  Vertex ids are used verbatim; the vertex space is
/// [0, max id + 1).  Throws std::runtime_error on parse/IO failure.
/// A first line starting with "%%" is recognized as a MatrixMarket banner
/// and the whole file is delegated to read_matrix_market — so .mtx corpora
/// feed any tool that takes SNAP text, with no format flag.  A "%%" banner
/// that is not valid MatrixMarket is an error (never silently parsed as
/// SNAP).
EdgeList read_edge_list_text(const std::string& path);

/// Binary round-trip.
void write_edge_list_binary(const EdgeList& graph, const std::string& path);
EdgeList read_edge_list_binary(const std::string& path);

/// Size in bytes the graph would occupy as SNAP text — the paper's "memory
/// footprint" column in Table II measures the on-disk text file.
std::uint64_t text_footprint_bytes(const EdgeList& graph);

/// MatrixMarket coordinate format ("%%MatrixMarket matrix coordinate ...").
/// Vertex ids are 1-based on disk per the standard; entry values (for
/// `real`/`integer` fields) are ignored on read, and `symmetric` matrices
/// expand to both edge directions.  Throws std::runtime_error on IO/parse
/// failure.
void write_matrix_market(const EdgeList& graph, const std::string& path);
EdgeList read_matrix_market(const std::string& path);

}  // namespace pglb
