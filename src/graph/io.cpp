#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace pglb {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x70676c625f656431ull;  // "pglb_ed1"

[[noreturn]] void io_fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

int decimal_digits(std::uint64_t v) {
  int digits = 1;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

}  // namespace

void write_edge_list_text(const EdgeList& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) io_fail("write_edge_list_text: cannot open", path);
  out << "# pglb edge list: " << graph.num_vertices() << " vertices, "
      << graph.num_edges() << " edges\n";
  std::array<char, 64> buf;
  // Reserve the final byte for the separator written after each to_chars.
  char* const limit = buf.data() + buf.size() - 1;
  for (const Edge& e : graph.edges()) {
    auto r1 = std::to_chars(buf.data(), limit, e.src);
    *r1.ptr = '\t';
    auto r2 = std::to_chars(r1.ptr + 1, limit, e.dst);
    *r2.ptr = '\n';
    out.write(buf.data(), r2.ptr + 1 - buf.data());
  }
  if (!out) io_fail("write_edge_list_text: write failed", path);
}

EdgeList read_edge_list_text(const std::string& path) {
  {
    // Format sniff: a MatrixMarket file announces itself with a "%%" banner
    // on the first line, which SNAP text can never produce ('%' is not a
    // digit or '#').  Delegate so pipelines pointed at .mtx inputs keep
    // working without a format flag; a "%%" banner that is not a valid
    // MatrixMarket header is rejected by read_matrix_market as usual.
    std::ifstream sniff(path);
    if (!sniff) io_fail("read_edge_list_text: cannot open", path);
    std::string first;
    if (std::getline(sniff, first) && first.rfind("%%", 0) == 0) {
      return read_matrix_market(path);
    }
  }
  std::ifstream in(path);
  if (!in) io_fail("read_edge_list_text: cannot open", path);
  std::vector<Edge> edges;
  VertexId max_vertex = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view sv(line);
    if (sv.empty() || sv.front() == '#') continue;
    std::uint64_t src = 0, dst = 0;
    const char* begin = sv.data();
    const char* end = sv.data() + sv.size();
    auto r1 = std::from_chars(begin, end, src);
    if (r1.ec != std::errc{}) io_fail("read_edge_list_text: bad src at line " + std::to_string(line_no), path);
    const char* p = r1.ptr;
    while (p < end && (*p == '\t' || *p == ' ')) ++p;
    auto r2 = std::from_chars(p, end, dst);
    if (r2.ec != std::errc{}) io_fail("read_edge_list_text: bad dst at line " + std::to_string(line_no), path);
    if (src > kInvalidVertex - 1 || dst > kInvalidVertex - 1) {
      io_fail("read_edge_list_text: vertex id overflow at line " + std::to_string(line_no), path);
    }
    edges.push_back(Edge{static_cast<VertexId>(src), static_cast<VertexId>(dst)});
    max_vertex = std::max({max_vertex, static_cast<VertexId>(src), static_cast<VertexId>(dst)});
  }
  const VertexId n = edges.empty() ? 0 : max_vertex + 1;
  return EdgeList(n, std::move(edges));
}

void write_edge_list_binary(const EdgeList& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail("write_edge_list_binary: cannot open", path);
  const std::uint64_t magic = kBinaryMagic;
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t m = graph.num_edges();
  out.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&m), sizeof m);
  const auto edges = graph.edges();
  out.write(reinterpret_cast<const char*>(edges.data()),
            static_cast<std::streamsize>(edges.size_bytes()));
  if (!out) io_fail("write_edge_list_binary: write failed", path);
}

EdgeList read_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_fail("read_edge_list_binary: cannot open", path);
  std::uint64_t magic = 0, n = 0, m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&m), sizeof m);
  if (!in || magic != kBinaryMagic) io_fail("read_edge_list_binary: bad header", path);
  std::vector<Edge> edges(m);
  in.read(reinterpret_cast<char*>(edges.data()),
          static_cast<std::streamsize>(m * sizeof(Edge)));
  if (!in) io_fail("read_edge_list_binary: truncated edge data", path);
  return EdgeList(static_cast<VertexId>(n), std::move(edges));
}

void write_matrix_market(const EdgeList& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) io_fail("write_matrix_market: cannot open", path);
  out << "%%MatrixMarket matrix coordinate pattern general\n";
  out << "% written by pglb\n";
  out << graph.num_vertices() << ' ' << graph.num_vertices() << ' '
      << graph.num_edges() << '\n';
  for (const Edge& e : graph.edges()) {
    out << (e.src + 1) << ' ' << (e.dst + 1) << '\n';  // 1-based per the spec
  }
  if (!out) io_fail("write_matrix_market: write failed", path);
}

EdgeList read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) io_fail("read_matrix_market: cannot open", path);

  std::string header;
  if (!std::getline(in, header) || header.rfind("%%MatrixMarket", 0) != 0) {
    io_fail("read_matrix_market: missing %%MatrixMarket banner", path);
  }
  if (header.find("coordinate") == std::string::npos) {
    io_fail("read_matrix_market: only coordinate format supported", path);
  }
  const bool symmetric = header.find("symmetric") != std::string::npos;

  std::string line;
  // Skip comment lines, then read the size line.
  std::uint64_t rows = 0, cols = 0, entries = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line.front() == '%') continue;
    std::istringstream ss(line);
    if (!(ss >> rows >> cols >> entries)) {
      io_fail("read_matrix_market: malformed size line", path);
    }
    break;
  }
  if (rows == 0 || rows != cols) {
    io_fail("read_matrix_market: adjacency matrices must be square and non-empty", path);
  }
  if (rows > kInvalidVertex - 1) io_fail("read_matrix_market: vertex id overflow", path);

  EdgeList graph(static_cast<VertexId>(rows));
  graph.reserve(symmetric ? entries * 2 : entries);
  std::uint64_t seen = 0;
  while (seen < entries && std::getline(in, line)) {
    if (line.empty() || line.front() == '%') continue;
    std::istringstream ss(line);
    std::uint64_t r = 0, c = 0;
    if (!(ss >> r >> c)) io_fail("read_matrix_market: malformed entry", path);
    if (r < 1 || c < 1 || r > rows || c > cols) {
      io_fail("read_matrix_market: entry outside matrix bounds", path);
    }
    ++seen;
    const auto src = static_cast<VertexId>(r - 1);
    const auto dst = static_cast<VertexId>(c - 1);
    graph.add(src, dst);
    if (symmetric && src != dst) graph.add(dst, src);
  }
  if (seen != entries) io_fail("read_matrix_market: truncated entry list", path);
  return graph;
}

std::uint64_t text_footprint_bytes(const EdgeList& graph) {
  std::uint64_t bytes = 0;
  for (const Edge& e : graph.edges()) {
    bytes += static_cast<std::uint64_t>(decimal_digits(e.src)) +
             static_cast<std::uint64_t>(decimal_digits(e.dst)) + 2;  // '\t' and '\n'
  }
  return bytes;
}

}  // namespace pglb
