#pragma once
// Vertex relabelling utilities.  Real edge-list files (SNAP dumps) often use
// sparse ids with large gaps; compaction normalises them into [0, n).
// Degree-ordered relabelling is the classic cache-locality transform for
// CSR traversals and also removes any information partitioners could leak
// from raw id order.

#include <vector>

#include "graph/edge_list.hpp"

namespace pglb {

struct RelabelResult {
  EdgeList graph;
  /// old vertex id -> new vertex id (kInvalidVertex for dropped ids when
  /// compacting: ids that never appear in any edge).
  std::vector<VertexId> forward;
};

/// Compact the vertex space to exactly the ids that occur in edges,
/// preserving relative order.  Isolated vertices are dropped.
RelabelResult compact_vertex_ids(const EdgeList& graph);

/// Renumber so that vertex 0 has the highest total degree, 1 the second
/// highest, and so on (ties by old id).  Keeps the vertex-space size.
RelabelResult relabel_by_degree(const EdgeList& graph);

/// Apply an explicit old->new mapping (entries may be kInvalidVertex to drop
/// a vertex; edges touching dropped vertices are removed).  `new_size` is the
/// size of the output vertex space; throws std::invalid_argument when a
/// mapped id falls outside it.
EdgeList apply_relabeling(const EdgeList& graph, std::span<const VertexId> forward,
                          VertexId new_size);

}  // namespace pglb
