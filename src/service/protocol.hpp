#pragma once
// Line-delimited JSON protocol of the planning service (docs/SERVICE.md):
// one request object per input line, one response object per output line.
// Parser and serializer are hand-rolled so the service has zero external
// dependencies and byte-stable output — the same plan always serializes to
// the same bytes (fixed key order, shortest-round-trip doubles), which is
// what lets a cached plan be compared byte-for-byte against a fresh one.

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/drift.hpp"
#include "dynamic/mutation.hpp"
#include "machine/app_profile.hpp"
#include "partition/factory.hpp"
#include "util/json.hpp"

namespace pglb {

/// Malformed request text or a request that violates the protocol schema.
class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what) : std::runtime_error(what) {}
};

/// Minimal JSON document tree.  Objects preserve key order; numbers are
/// doubles (the protocol never needs more than 53 bits of integer).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(value_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(value_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  /// First value under `key` in an object, or nullptr when absent.
  const JsonValue* find(std::string_view key) const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Parse one complete JSON document; trailing non-whitespace or any syntax
/// error throws ProtocolError with the byte offset.
JsonValue parse_json(std::string_view text);

// append_json_string / append_json_number are provided by util/json.hpp
// (included above) — one shared escaper for every JSON emitter.

// --- planning requests -----------------------------------------------------

enum class RequestType { kPlan, kMetrics, kWarmKeys, kDelta };

struct PlanRequest {
  RequestType type = RequestType::kPlan;
  std::string id;                       ///< echoed back verbatim
  AppKind app = AppKind::kPageRank;
  std::vector<std::string> machines;    ///< catalog names, defines MachineId order
  std::optional<double> alpha;          ///< power-law exponent of the input graph
  std::uint64_t vertices = 0;           ///< graph stats; used to fit alpha when
  std::uint64_t edges = 0;              ///< `alpha` is absent, and to scale estimates
  std::optional<PartitionerKind> partitioner;  ///< force instead of recommending
  /// Per-request deadline in milliseconds; a plan that cannot finish in time
  /// comes back as a typed "timeout" response instead of blocking.  Absent =
  /// the server's --default-timeout-ms (docs/ROBUSTNESS.md).
  std::optional<std::uint64_t> timeout_ms;
  /// warm_keys only: cap on reported keys (absent = server default).
  std::optional<std::uint64_t> limit;

  // --- delta only (docs/DYNAMIC.md) ---
  /// Name of the mutable base graph this delta extends.  A delta whose base
  /// does not exist yet must also carry `app` + `machines` (creation); after
  /// that, updates name the base alone.
  std::string base;
  /// The mutation batch, applied atomically in order (may be empty — an
  /// empty batch re-costs, and with reprofile=force re-profiles, the base).
  std::vector<dynamic::Mutation> mutations;
  std::optional<double> drift_churn;       ///< churn threshold override
  std::optional<double> drift_hist;        ///< TV-distance threshold override
  std::optional<ReprofileMode> reprofile;  ///< auto (default) / force / never
  std::optional<std::uint64_t> seed;       ///< partition seed at base creation
};

/// Parse + validate one request line.  Requires: `app`, non-empty `machines`,
/// and either `alpha` or both `vertices` and `edges` (metrics requests need
/// neither).  Unknown keys are an error, so client typos fail loudly.
PlanRequest parse_plan_request(const std::string& line);

/// Inverse of parse_plan_request (used by the load generator and tests).
std::string serialize_request(const PlanRequest& request);

// --- planning responses ----------------------------------------------------

/// Typed response outcomes (the "status" field; docs/ROBUSTNESS.md):
///  - ok:         a plan (possibly degraded — see PlanResponse::degraded);
///  - error:      malformed request or unrecoverable planning failure;
///  - timeout:    the request's deadline passed before a plan was ready;
///  - overloaded: admission control shed the request (queue at capacity).
enum class PlanStatus { kOk, kError, kTimeout, kOverloaded };

std::string_view to_string(PlanStatus status) noexcept;

struct PlanResponse {
  std::string id;
  bool ok = false;                      ///< status == kOk (kept in sync)
  PlanStatus status = PlanStatus::kError;
  std::string error;                    ///< set when !ok
  /// Non-empty when the planner fell back after a profiling failure:
  /// "thread_count" (LeBeane et al. heuristic weights) or "uniform".
  std::string degraded;
  std::uint64_t queue_depth = 0;        ///< kOverloaded: depth observed at shed
  std::uint64_t retry_after_ms = 0;     ///< kOverloaded: suggested backoff

  std::string app;
  double fitted_alpha = 0.0;            ///< request alpha (given or fitted from V/E)
  double proxy_alpha = 0.0;             ///< proxy distribution the plan profiled against
  std::vector<double> ccr;              ///< per machine, Eq. 1
  std::vector<double> weights;          ///< normalized partition shares
  std::string partitioner;              ///< recommended (or forced) algorithm
  double replication_factor = 0.0;      ///< predicted, analytic model
  double makespan_seconds = 0.0;        ///< predicted, balanced execution
  double energy_joules = 0.0;
  double cost_usd = 0.0;
};

/// One-line JSON with fixed key order.  Deliberately excludes any cache-hit
/// marker: a plan served from cache must be byte-identical to one computed
/// fresh (hit rates are reported via the metrics endpoint instead).
std::string serialize_response(const PlanResponse& response);

/// Parse a response line back into the struct (load generator and tests).
PlanResponse parse_plan_response(const std::string& line);

/// Canned error response for a request that could not even be parsed.
std::string serialize_error(const std::string& id, const std::string& message);

/// Canned "overloaded" response for a request shed by admission control.
std::string serialize_overloaded(const std::string& id, std::uint64_t queue_depth,
                                 std::uint64_t retry_after_ms);

// --- warm-keys reports (docs/PERSIST.md) -----------------------------------

/// One reported cache key: the profile key and its hit count on the replica.
struct WarmKey {
  std::string key;
  std::uint64_t hits = 0;
};

/// {"id":...,"status":"ok","warm_keys":[{"key":...,"hits":N},...]} — the
/// reply to a warm_keys request: the replica's hottest completed profile
/// keys, hottest first.  Fixed key order like every other response.
std::string serialize_warm_keys_response(const std::string& id,
                                         std::span<const WarmKey> keys);

/// Parse a warm_keys response line.  Throws ProtocolError when the line is
/// not an ok warm_keys report (routers treat that as "peer has nothing").
std::vector<WarmKey> parse_warm_keys_response(const std::string& line);

// --- delta responses (docs/DYNAMIC.md) -------------------------------------

/// The `delta` sub-object an ok delta response appends to the plan payload.
/// The plan portion of the line stays byte-identical to a plain plan
/// response for the same inputs — the block is strictly additive, which is
/// what the scratch-equivalence gate compares around.
struct DeltaInfo {
  std::string base;
  std::uint64_t version = 0;        ///< batches applied to the base so far
  std::uint64_t live_vertices = 0;
  std::uint64_t live_edges = 0;
  double churn = 0.0;               ///< drift since the last profile
  double hist_distance = 0.0;       ///< TV distance vs the profiled histogram
  bool reprofiled = false;          ///< this request re-ran CCR profiling
  std::uint64_t digest = 0;         ///< FNV over (src,dst,owner) in slot order
  std::uint64_t moved_edges = 0;    ///< owners changed by this batch
  double replication_factor = 0.0;  ///< observed on the maintained assignment
  double imbalance = 0.0;           ///< observed weighted imbalance
};

/// `{"base":...,...}` with fixed key order; digest serializes as a hex
/// string (u64 does not fit a JSON double).
std::string serialize_delta_block(const DeltaInfo& info);

/// Extract the `delta` block from a full response line, or nullopt when the
/// line carries none.  Throws ProtocolError on a malformed block.
std::optional<DeltaInfo> parse_delta_block(const std::string& line);

}  // namespace pglb
