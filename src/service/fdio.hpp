#pragma once
// Deadline-aware socket input for the serving loop (docs/ROBUSTNESS.md).
//
// serve_stream pumps a std::istream, which is the right shape for pipes and
// tests but hides the file descriptor — so a peer that connects and then
// never sends a byte (a slow-loris, a blackholed link, a crashed client with
// the socket half-open) parks a PlanServer connection slot forever.
// FdInStreambuf is a read-only streambuf over a connected socket fd that
// poll()s before every refill:
//
//  - Until the FIRST byte ever arrives, the handshake timeout applies: a peer
//    that cannot produce one byte of hello/request inside it is cut off.
//  - After that, the idle timeout applies per refill: a connection that goes
//    quiet mid-conversation is reaped instead of held open indefinitely.
//
// A timeout surfaces as ordinary EOF to the istream layer (the serving loop
// already handles peers that hang up), with a flag recording WHY so the
// caller can count wire.handshake_timeouts / wire.idle_reaped distinctly.
// Either timeout set to 0 means "wait forever" — the pre-hardening behavior.

#ifdef __unix__

#include <cstddef>
#include <cstdint>
#include <streambuf>

namespace pglb {

class FdInStreambuf : public std::streambuf {
 public:
  /// Does not own `fd`; the caller closes it after the stream is done.
  FdInStreambuf(int fd, std::uint64_t handshake_timeout_ms,
                std::uint64_t idle_timeout_ms);

  /// True when EOF was synthesized because the first byte never arrived
  /// within the handshake deadline.
  bool handshake_timed_out() const noexcept { return handshake_timed_out_; }

  /// True when EOF was synthesized because an established connection went
  /// idle past the idle deadline.
  bool idle_timed_out() const noexcept { return idle_timed_out_; }

 protected:
  int_type underflow() override;

 private:
  int fd_;
  std::uint64_t handshake_timeout_ms_;
  std::uint64_t idle_timeout_ms_;
  bool saw_first_byte_ = false;
  bool handshake_timed_out_ = false;
  bool idle_timed_out_ = false;
  char buffer_[4096];
};

}  // namespace pglb

#endif  // __unix__
