#pragma once
// Multiplexed binary wire transport of the planning service (docs/WIRE.md).
//
// The line-JSON protocol answers strictly in input order over one connection,
// so one slow request stalls every response behind it and every request burns
// a write syscall.  This header defines the negotiated upgrade that fixes
// both ends of that pipe:
//
//  - Frames: length-prefixed, request-id-tagged binary envelopes around the
//    SAME JSON payloads the line protocol uses.  The id lets a server answer
//    out of order and a client keep many requests in flight per connection
//    with exact response matching — no FIFO coupling.  Because the payload
//    bytes are unchanged, a plan served over frames is byte-identical to one
//    served over lines.
//  - Handshake: a client that wants frames sends one `{"hello":...}` JSON
//    line first.  A frame-aware server answers with the ack line and switches
//    the connection to binary; an older server answers with its usual typed
//    parse-error response, which the client reads as "no frames here" and
//    falls back to plain line-JSON — byte-identical to the pre-upgrade
//    protocol, no version flag days, no flag-day restarts.
//  - Errno classification: shared policy for blocking-socket IO loops.  EINTR
//    retries immediately (a stray signal is not a dead peer), transient
//    resource pressure retries after a breather, everything else tears the
//    connection down.
//
// Framing and negotiation live in service/ (not fleet/) because BOTH ends
// speak it: PlanServer::serve_stream upgrades inbound connections, and the
// fleet's TcpBackend negotiates outbound ones.

#include <cstdint>
#include <string>
#include <string_view>

namespace pglb::wire {

/// Protocol revision requested by the hello line and echoed by the ack.
inline constexpr std::uint32_t kVersion = 1;

/// First header field of every frame ("PGLB" read as a little-endian u32).
/// A mismatch means the stream lost framing; the only safe move is teardown.
inline constexpr std::uint32_t kMagic = 0x424C4750u;

/// Header bytes: [u32 magic][u8 type][u8 flags][u16 reserved][u32 len][u64 id].
inline constexpr std::size_t kHeaderSize = 20;

/// Sanity cap on one payload — a length above this is a corrupt header, not a
/// plausible plan request/response.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;

/// Flags bit: the payload is followed by a 4-byte little-endian CRC-32
/// (util/crc32.hpp) over the payload bytes.  Negotiated via the "crc" key in
/// the hello/ack exchange, so a peer that never asked for it never sees the
/// trailer and the un-upgraded framing stays byte-identical.
inline constexpr std::uint8_t kFlagCrc = 0x01;

/// Bytes of the CRC trailer that kFlagCrc appends after the payload.
inline constexpr std::size_t kCrcTrailerSize = 4;

enum class FrameType : std::uint8_t { kRequest = 1, kResponse = 2 };

struct Frame {
  FrameType type = FrameType::kRequest;
  std::uint64_t id = 0;
  std::string payload;  ///< the JSON text, no trailing newline
};

/// Append one encoded frame (header + payload) to `out`.  Appending several
/// frames into one buffer before a single flushed write is the batching path.
/// With `with_crc` the kFlagCrc bit is set and the CRC-32 trailer appended —
/// only do this on connections whose hello/ack negotiated it.
void append_frame(std::string& out, FrameType type, std::uint64_t id,
                  std::string_view payload, bool with_crc = false);

enum class DecodeStatus {
  kNeedMore,  ///< `buffer` ends mid-header or mid-payload; read more bytes
  kFrame,     ///< one frame decoded; `offset` advanced past it
  kBad,       ///< bad magic / type / length — the stream is desynchronized
  kCorrupt,   ///< CRC mismatch: framing intact (`offset` advanced past the
              ///< whole frame, id preserved) but the payload is untrustworthy.
              ///< Reject THIS frame with a typed error; keep the connection.
};

/// Try to decode one frame from `buffer` at `offset`.  On kFrame the frame is
/// filled and `offset` advances; on kBad `error` says what was wrong.  On
/// kCorrupt the id/type are filled, the payload cleared, and `offset` still
/// advances — the length prefix kept the stream in sync even though the bytes
/// inside were damaged.
DecodeStatus decode_frame(std::string_view buffer, std::size_t* offset,
                          Frame* frame, std::string* error);

// --- negotiation -----------------------------------------------------------

/// Client -> server upgrade request (no trailing newline).  `want_crc` adds
/// "crc":true, asking the server to exchange CRC-trailed frames.
std::string hello_line(bool want_crc = false);

/// Server -> client upgrade accept (no trailing newline).  `grant_crc`
/// confirms CRC-trailed frames for both directions of this connection.
std::string hello_ack_line(bool grant_crc = false);

/// True when `line` is a well-formed hello requesting a version we speak.
/// Cheap prefix test first, full JSON parse only on candidates.
bool is_hello_line(std::string_view line);

/// True when `line` is the server's ack.  An old server's typed error
/// response to the hello fails this test, which IS the fallback signal.
bool is_hello_ack(std::string_view line);

/// True when a valid hello also asks for CRC frames ("crc":true).  A server
/// that predates CRC ignores the extra key (is_hello_line tolerates it), so
/// the client must check the ack before trusting trailers: see ack_grants_crc.
bool hello_wants_crc(std::string_view line);

/// True when a valid ack confirms CRC frames.  An old server's plain ack
/// fails this, and the client falls back to untrailed frames.
bool ack_grants_crc(std::string_view line);

// --- blocking-socket errno policy ------------------------------------------

enum class IoClass {
  kRetry,      ///< EINTR: retry the syscall immediately
  kTransient,  ///< resource pressure (ENOBUFS, ENOMEM, EAGAIN): brief pause, retry
  kFatal,      ///< anything else: the connection is gone
};

IoClass classify_io_errno(int error) noexcept;

}  // namespace pglb::wire
