#include "service/fdio.hpp"

#ifdef __unix__

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>

#include "service/wire.hpp"

namespace pglb {

FdInStreambuf::FdInStreambuf(int fd, std::uint64_t handshake_timeout_ms,
                             std::uint64_t idle_timeout_ms)
    : fd_(fd),
      handshake_timeout_ms_(handshake_timeout_ms),
      idle_timeout_ms_(idle_timeout_ms) {
  setg(buffer_, buffer_, buffer_);
}

std::streambuf::int_type FdInStreambuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  for (;;) {
    const std::uint64_t timeout_ms =
        saw_first_byte_ ? idle_timeout_ms_ : handshake_timeout_ms_;
    // poll() takes an int of milliseconds; 0 here means "no deadline".
    const int wait =
        timeout_ms == 0
            ? -1
            : static_cast<int>(std::min<std::uint64_t>(
                  timeout_ms, static_cast<std::uint64_t>(
                                  std::numeric_limits<int>::max())));
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, wait);
    if (ready == 0) {
      // Deadline expired with no byte: synthesize EOF and record why.
      if (saw_first_byte_) {
        idle_timed_out_ = true;
      } else {
        handshake_timed_out_ = true;
      }
      return traits_type::eof();
    }
    if (ready < 0) {
      if (wire::classify_io_errno(errno) == wire::IoClass::kRetry) continue;
      return traits_type::eof();
    }
    const ssize_t n = ::read(fd_, buffer_, sizeof buffer_);
    if (n > 0) {
      saw_first_byte_ = true;
      setg(buffer_, buffer_, buffer_ + n);
      return traits_type::to_int_type(*gptr());
    }
    if (n == 0) return traits_type::eof();  // orderly peer close
    if (wire::classify_io_errno(errno) != wire::IoClass::kFatal) continue;
    return traits_type::eof();
  }
}

}  // namespace pglb

#endif  // __unix__
