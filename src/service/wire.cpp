#include "service/wire.hpp"

#include <cerrno>

#include "service/protocol.hpp"
#include "util/crc32.hpp"

namespace pglb::wire {

namespace {

void append_u16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
}

void append_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

std::uint32_t read_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return value;
}

std::uint64_t read_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<std::uint8_t>(bytes[at + static_cast<std::size_t>(i)]);
  }
  return value;
}

}  // namespace

void append_frame(std::string& out, FrameType type, std::uint64_t id,
                  std::string_view payload, bool with_crc) {
  out.reserve(out.size() + kHeaderSize + payload.size() +
              (with_crc ? kCrcTrailerSize : 0));
  append_u32(out, kMagic);
  out.push_back(static_cast<char>(type));
  out.push_back(with_crc ? static_cast<char>(kFlagCrc) : '\0');
  append_u16(out, 0);      // reserved
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u64(out, id);
  out.append(payload);
  if (with_crc) append_u32(out, crc32_ieee(payload));
}

DecodeStatus decode_frame(std::string_view buffer, std::size_t* offset,
                          Frame* frame, std::string* error) {
  const std::size_t at = *offset;
  if (buffer.size() - at < kHeaderSize) return DecodeStatus::kNeedMore;
  if (read_u32(buffer, at) != kMagic) {
    if (error != nullptr) *error = "bad frame magic";
    return DecodeStatus::kBad;
  }
  const auto raw_type = static_cast<std::uint8_t>(buffer[at + 4]);
  if (raw_type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      raw_type != static_cast<std::uint8_t>(FrameType::kResponse)) {
    if (error != nullptr) {
      *error = "unknown frame type " + std::to_string(raw_type);
    }
    return DecodeStatus::kBad;
  }
  const std::uint32_t length = read_u32(buffer, at + 8);
  if (length > kMaxPayload) {
    if (error != nullptr) {
      *error = "frame payload of " + std::to_string(length) + " bytes exceeds cap";
    }
    return DecodeStatus::kBad;
  }
  const auto flags = static_cast<std::uint8_t>(buffer[at + 5]);
  const std::size_t trailer = (flags & kFlagCrc) != 0 ? kCrcTrailerSize : 0;
  if (buffer.size() - at < kHeaderSize + length + trailer) {
    return DecodeStatus::kNeedMore;
  }
  frame->type = static_cast<FrameType>(raw_type);
  frame->id = read_u64(buffer, at + 12);
  const std::string_view payload = buffer.substr(at + kHeaderSize, length);
  *offset = at + kHeaderSize + length + trailer;
  if (trailer != 0) {
    const std::uint32_t stated = read_u32(buffer, at + kHeaderSize + length);
    const std::uint32_t actual = crc32_ieee(payload);
    if (stated != actual) {
      // Framing held (the length prefix is what keeps the stream in sync),
      // so the caller can reject exactly this frame and keep reading.
      frame->payload.clear();
      if (error != nullptr) *error = "frame payload failed crc check";
      return DecodeStatus::kCorrupt;
    }
  }
  frame->payload.assign(payload);
  return DecodeStatus::kFrame;
}

std::string hello_line(bool want_crc) {
  return R"({"hello":"pglb-wire","wire":)" + std::to_string(kVersion) +
         (want_crc ? R"(,"crc":true})" : "}");
}

std::string hello_ack_line(bool grant_crc) {
  return R"({"hello":"pglb-wire","ack":true,"wire":)" + std::to_string(kVersion) +
         (grant_crc ? R"(,"crc":true})" : "}");
}

namespace {

/// Shared schema check: an object whose "hello" is "pglb-wire" and whose
/// "wire" covers the version we speak.  `require_ack` selects the server ack.
bool is_hello_shaped(std::string_view line, bool require_ack) {
  // Both hello and ack start with this exact prefix (our serializers emit
  // fixed key order), so non-candidates skip the parse entirely.
  if (line.substr(0, 9) != R"({"hello":)") return false;
  try {
    const JsonValue doc = parse_json(line);
    const JsonValue* hello = doc.find("hello");
    if (hello == nullptr || !hello->is_string() ||
        hello->as_string() != "pglb-wire") {
      return false;
    }
    const JsonValue* version = doc.find("wire");
    if (version == nullptr || !version->is_number() ||
        version->as_number() < static_cast<double>(kVersion)) {
      return false;
    }
    const JsonValue* ack = doc.find("ack");
    if (require_ack) {
      return ack != nullptr && ack->is_bool() && ack->as_bool();
    }
    return ack == nullptr;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool is_hello_line(std::string_view line) { return is_hello_shaped(line, false); }

bool is_hello_ack(std::string_view line) { return is_hello_shaped(line, true); }

namespace {

bool crc_key_true(std::string_view line) {
  try {
    const JsonValue doc = parse_json(line);
    const JsonValue* crc = doc.find("crc");
    return crc != nullptr && crc->is_bool() && crc->as_bool();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

bool hello_wants_crc(std::string_view line) {
  return is_hello_line(line) && crc_key_true(line);
}

bool ack_grants_crc(std::string_view line) {
  return is_hello_ack(line) && crc_key_true(line);
}

IoClass classify_io_errno(int error) noexcept {
  switch (error) {
    case EINTR:
      return IoClass::kRetry;
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ENOBUFS:
    case ENOMEM:
      return IoClass::kTransient;
    default:
      return IoClass::kFatal;
  }
}

}  // namespace pglb::wire
